// Training pipeline: integrate DCT+Chop into a model training loop the
// way the paper's evaluation does (§4.1) — every training batch is
// compressed and decompressed before it reaches the network — and
// compare the resulting accuracy against the uncompressed baseline,
// while a simulated accelerator reports what the compression stage
// would cost on real hardware.
package main

import (
	"fmt"
	"log"

	"repro/internal/accel/cerebras"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	opts := experiments.TrainOpts{
		Epochs: 6, TrainSize: 128, TestSize: 64, BatchSize: 32, N: 32, Seed: 7,
	}

	fmt.Println("training the classify benchmark (ResNet-style CNN, 10 classes)")
	fmt.Println("with each batch round-tripped through DCT+Chop:")
	fmt.Println()

	base, err := experiments.RunClassify(experiments.Baseline(), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-10s final test accuracy %.1f%%\n", "base", 100*base.Final())

	for _, cf := range []int{7, 5, 3, 2} {
		tr, err := experiments.Chop(cf, opts.N)
		if err != nil {
			log.Fatal(err)
		}
		res, err := experiments.RunClassify(tr, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  CR=%-6s final test accuracy %.1f%% (%+.1f%% vs base)\n",
			tr.Label, 100*res.Final(), 100*(res.Final()-base.Final()))
	}

	// What would the compression stage cost in the pipeline? Compile the
	// compressor for this batch shape on the CS-2 simulator.
	comp, err := core.NewCompressor(core.Config{ChopFactor: 5, Serialization: 1}, opts.N)
	if err != nil {
		log.Fatal(err)
	}
	g, err := comp.BuildDecompressGraph(opts.BatchSize, 3)
	if err != nil {
		log.Fatal(err)
	}
	dev := cerebras.New()
	prog, err := dev.Compile(g)
	if err != nil {
		log.Fatal(err)
	}
	st := prog.Estimate()
	payload := 4 * opts.BatchSize * 3 * opts.N * opts.N
	fmt.Printf("\non the %s, decompressing one batch takes %v (%.1f GB/s):\n",
		dev.Name(), st.SimTime, st.ThroughputGBs(payload))
	fmt.Println("orders of magnitude faster than the forward+backward pass, so the")
	fmt.Println("compressor is masked inside the dataflow pipeline (§4.2.2).")
}
