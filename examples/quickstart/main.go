// Quickstart: compress and decompress a batch of images with DCT+Chop
// and inspect ratio and fidelity — the 30-second tour of the public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/metrics"
)

func main() {
	// A batch of 8 synthetic RGB images, 32×32 (CIFAR10-shaped).
	gen := datagen.NewClassify(42, 32, 10)
	batch, _ := gen.Batch(8)
	fmt.Printf("input: %v (%d bytes)\n", batch.Shape(), batch.SizeBytes())

	// "Compile" a compressor: chop factor 4 keeps the upper-left 4×4 of
	// every 8×8 DCT block → compression ratio 64/16 = 4.
	comp, err := core.NewCompressor(core.Config{ChopFactor: 4, Serialization: 1}, 32)
	if err != nil {
		log.Fatal(err)
	}

	compressed, err := comp.Compress(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed: %d bytes (ratio %.2f)\n",
		compressed.CompressedBytes(), compressed.EffectiveRatio())

	restored, err := comp.Decompress(compressed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored: %v\n", restored.Shape())
	fmt.Printf("fidelity: PSNR %.2f dB, MSE %.6f, max error %.4f\n",
		metrics.PSNR(batch, restored),
		metrics.MSE(batch, restored),
		metrics.MaxError(batch, restored))

	// The chop factor is the quality dial: sweep it.
	fmt.Println("\nchop factor sweep:")
	for cf := 2; cf <= 8; cf++ {
		c, err := core.NewCompressor(core.Config{ChopFactor: cf, Serialization: 1}, 32)
		if err != nil {
			log.Fatal(err)
		}
		back, err := c.RoundTrip(batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  CF=%d  CR=%5.2f  PSNR=%6.2f dB\n",
			cf, c.Config().Ratio(), metrics.PSNR(batch, back))
	}
}
