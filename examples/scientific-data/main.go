// Scientific data: compare DCT+Chop against the ZFP-style fixed-rate
// codec on electron-micrograph-like data (the em_denoise benchmark's
// domain), sweeping matched compression ratios — the same comparison as
// the paper's Fig. 9, but at the data-fidelity level.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/sz"
	"repro/internal/zfp"
)

func main() {
	gen := datagen.NewDenoise(11, 64)
	noisy, clean := gen.Batch(16)
	fmt.Printf("16 graphene micrographs, %v, noise MSE vs clean: %.5f\n\n",
		noisy.Shape(), metrics.MSE(noisy, clean))

	fmt.Println("ratio-matched fidelity (reconstruction vs the noisy input):")
	fmt.Printf("%-8s %-22s %-22s\n", "target", "DCT+Chop", "ZFP-style")
	fmt.Printf("%-8s %-11s %-10s %-11s %-10s\n", "CR", "PSNR (dB)", "measured", "PSNR (dB)", "measured")

	// Chop factors 2..7 give CR 16..1.31; pick the ZFP rate 32/CR to
	// match each.
	for cf := 2; cf <= 7; cf++ {
		comp, err := core.NewCompressor(core.Config{ChopFactor: cf, Serialization: 1}, 64)
		if err != nil {
			log.Fatal(err)
		}
		cr := comp.Config().Ratio()
		dctOut, err := comp.RoundTrip(noisy)
		if err != nil {
			log.Fatal(err)
		}
		codec, err := zfp.New(32 / cr)
		if err != nil {
			log.Fatal(err)
		}
		zfpOut, zfpBytes, err := codec.RoundTrip(noisy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.2f %-11.2f %-10.2f %-11.2f %-10.2f\n",
			cr,
			metrics.PSNR(noisy, dctOut), cr,
			metrics.PSNR(noisy, zfpOut), float64(noisy.SizeBytes())/float64(zfpBytes))
	}

	// The third design philosophy from §2.2: SZ-style error-bounded
	// compression, where the user fixes the pointwise error and the
	// ratio floats with the data.
	fmt.Println("\nerror-bounded (SZ-style) on the same data:")
	for _, eb := range []float64{0.05, 0.01, 0.001} {
		codec, err := sz.New(eb)
		if err != nil {
			log.Fatal(err)
		}
		out, bytes, err := codec.RoundTrip(noisy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  eb=%-7g CR=%5.2f  max error=%.4g  PSNR=%.2f dB\n",
			eb, float64(noisy.SizeBytes())/float64(bytes),
			metrics.MaxError(noisy, out), metrics.PSNR(noisy, out))
	}

	// The denoising effect (§4.2.1): chopping high-frequency DCT bands
	// removes injected noise, moving the image *closer* to the clean
	// signal — the reason compression improves em_denoise test loss.
	fmt.Println("\ndenoising side effect (MSE vs the CLEAN signal):")
	fmt.Printf("  %-12s %.5f\n", "no compress", metrics.MSE(noisy, clean))
	for _, cf := range []int{2, 4, 6} {
		comp, err := core.NewCompressor(core.Config{ChopFactor: cf, Serialization: 1}, 64)
		if err != nil {
			log.Fatal(err)
		}
		out, err := comp.RoundTrip(noisy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  CR=%-9.2f %.5f\n", comp.Config().Ratio(), metrics.MSE(out, clean))
	}
}
