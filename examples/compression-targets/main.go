// Compression targets: the paper's future-work section (§6, Fig. 1)
// names weights, activations and gradients as the compressor's next
// targets once accelerator APIs expose them. This example exercises the
// two wrappers this library provides for those targets on a small
// training run: compressed activation checkpoints (COMET/ActNN-style
// recompute-from-lossy) and compressed gradients with damped error
// feedback (3LC-style), both driven by the same DCT+Chop core.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func main() {
	const n = 16
	gen := datagen.NewClassify(21, n, 10)
	trainX, trainY := gen.Batch(128)
	testX, testY := gen.Batch(64)

	rt, err := core.NewFlatRoundTripper(core.Config{ChopFactor: 5, Serialization: 1}, 16)
	if err != nil {
		log.Fatal(err)
	}

	type variant struct {
		name  string
		build func() (*nn.Sequential, nn.Optimizer)
	}
	variants := []variant{
		{"baseline (no compression)", func() (*nn.Sequential, nn.Optimizer) {
			return buildModel(nil), nn.NewAdam(0.005)
		}},
		{"compressed activations (CF=5)", func() (*nn.Sequential, nn.Optimizer) {
			return buildModel(rt), nn.NewAdam(0.005)
		}},
		{"compressed gradients (CF=5)", func() (*nn.Sequential, nn.Optimizer) {
			return buildModel(nil), nn.NewGradCompressOptimizer(nn.NewAdam(0.005), rt)
		}},
	}

	for _, v := range variants {
		model, opt := v.build()
		var loss float64
		for epoch := 0; epoch < 6; epoch++ {
			for lo := 0; lo < 128; lo += 32 {
				x := trainX.SliceDim0(lo, lo+32).Clone()
				logits := model.Forward(x, true)
				var grad *tensor.Tensor
				loss, grad = nn.SoftmaxCrossEntropy(logits, trainY[lo:lo+32])
				model.ZeroGrad()
				model.Backward(grad)
				opt.Step(model.Params())
			}
		}
		acc := metrics.Accuracy(model.Forward(testX, false), testY)
		fmt.Printf("%-32s final train loss %.3f, test accuracy %.1f%%", v.name, loss, 100*acc)
		for _, l := range model.Layers {
			if cc, ok := l.(*nn.CheckpointCompress); ok {
				fmt.Printf(", activation memory saved %.2fx", cc.SavingsRatio())
				break
			}
		}
		if g, ok := opt.(*nn.GradCompressOptimizer); ok {
			fmt.Printf(", gradient traffic saved %.2fx", g.SavingsRatio())
		}
		fmt.Println()
	}

	fmt.Println("\nBoth targets reuse the training-data compressor unchanged: the")
	fmt.Println("FlatRoundTripper packs any tensor into the compiled static plane")
	fmt.Println("shape, which is what the accelerators' fixed-size constraint allows.")
}

// buildModel assembles a small CNN; when rt is non-nil the convolutions
// store their activations compressed.
func buildModel(rt nn.RoundTripper) *nn.Sequential {
	rng := tensor.NewRNG(9)
	wrap := func(l nn.Layer) nn.Layer {
		if rt == nil {
			return l
		}
		return nn.NewCheckpointCompress(l, rt)
	}
	return nn.NewSequential(
		wrap(nn.NewConv2d(rng, "c1", 3, 8, 3, 1, 1)),
		nn.NewReLU(),
		nn.NewMaxPool2d(2),
		wrap(nn.NewConv2d(rng, "c2", 8, 16, 3, 1, 1)),
		nn.NewReLU(),
		nn.NewMaxPool2d(2),
		nn.NewFlatten(),
		nn.NewLinear(rng, "fc", 16*4*4, 10),
	)
}
