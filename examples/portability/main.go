// Portability: compile the same compressor graphs on every simulated
// platform and print the support/compile matrix — the paper's central
// claim (one PyTorch-level design that runs across four accelerators)
// and its limits (scatter/gather only on the IPU, bit ops nowhere,
// memory walls at 512×512).
package main

import (
	"fmt"
	"log"

	"repro/internal/accel"
	"repro/internal/accel/platforms"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	devs := platforms.All()

	fmt.Println("compile matrix: DCT+Chop decompression (100 samples, 3 channels)")
	fmt.Printf("%-34s", "configuration")
	for _, d := range devs {
		fmt.Printf("%-10s", d.Name())
	}
	fmt.Println()

	type cfgCase struct {
		label string
		cfg   core.Config
		n     int
	}
	cases := []cfgCase{
		{"chop CF=4, 256x256", core.Config{ChopFactor: 4, Serialization: 1}, 256},
		{"chop CF=4, 512x512", core.Config{ChopFactor: 4, Serialization: 1}, 512},
		{"chop CF=4, 512x512, s=2", core.Config{ChopFactor: 4, Serialization: 2}, 512},
		{"scatter/gather CF=4, 32x32", core.Config{ChopFactor: 4, Mode: core.ModeSG, Serialization: 1}, 32},
	}
	for _, c := range cases {
		fmt.Printf("%-34s", c.label)
		for _, d := range devs {
			fmt.Printf("%-10s", compileCell(d, c.cfg, c.n))
		}
		fmt.Println()
	}

	// The operator that rules out classic VLE encoders everywhere but
	// the GPU (§3.1).
	b := graph.NewBuilder("vle-encode-stage")
	x := b.Input("coeffs", 100, 3, 64)
	b.Output(b.BitShift(x, 4))
	g, err := b.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s", "bit-shift (VLE packing stage)")
	for _, d := range devs {
		if _, err := d.Compile(g); err != nil {
			fmt.Printf("%-10s", "no")
		} else {
			fmt.Printf("%-10s", "ok")
		}
	}
	fmt.Println()

	fmt.Println("\nfailure details at 512x512 (the paper's §4.2.2 compile errors):")
	for _, name := range []string{"SN30", "GroqChip"} {
		d := platforms.ByName(name)
		comp, err := core.NewCompressor(core.Config{ChopFactor: 4, Serialization: 1}, 512)
		if err != nil {
			log.Fatal(err)
		}
		g, err := comp.BuildDecompressGraph(100, 3)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := d.Compile(g); err != nil {
			fmt.Printf("  %s\n", err)
		}
	}
}

func compileCell(d *accel.Device, cfg core.Config, n int) string {
	comp, err := core.NewCompressor(cfg, n)
	if err != nil {
		return "badcfg"
	}
	g, err := comp.BuildDecompressGraph(100, 3)
	if err != nil {
		return "badcfg"
	}
	if _, err := d.Compile(g); err != nil {
		return "no"
	}
	return "ok"
}
