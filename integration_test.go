package repro

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/accel/platforms"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/sz"
	"repro/internal/tensor"
	"repro/internal/zfp"
)

// These integration tests exercise the whole stack end to end — data
// generation → compression → device compilation/execution → training →
// baselines — the way the CLI harnesses do, at unit-test scale.

func TestEndToEndTrainingWithDeviceCompression(t *testing.T) {
	// Generate data, compile the compressor for the CS-2, compress each
	// training batch through the simulated device, decompress on the
	// host, train, and verify learning happened.
	const n, bd = 16, 16
	gen := datagen.NewClassify(3, n, 10)
	comp, err := core.NewCompressor(core.Config{ChopFactor: 5, Serialization: 1}, n)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := comp.BuildCompressGraph(bd, 3)
	if err != nil {
		t.Fatal(err)
	}
	dev := platforms.ByName("CS-2")
	prog, err := dev.Compile(cg)
	if err != nil {
		t.Fatal(err)
	}

	rng := tensor.NewRNG(4)
	model := nn.NewSequential(
		nn.NewConv2d(rng, "c1", 3, 8, 3, 1, 1),
		nn.NewReLU(),
		nn.NewMaxPool2d(2),
		nn.NewFlatten(),
		nn.NewLinear(rng, "fc", 8*8*8, 10),
	)
	opt := nn.NewAdam(0.005)
	var first, last float64
	for step := 0; step < 30; step++ {
		x, labels := gen.Batch(bd)
		// Device-side compression: run the compiled graph.
		outs, _, err := prog.Run(map[string]*tensor.Tensor{"A": x})
		if err != nil {
			t.Fatal(err)
		}
		compressed := &core.Compressed{
			Config: comp.Config(), BatchSize: bd, Channels: 3, N: n,
			Chunks: outs,
		}
		restored, err := comp.Decompress(compressed)
		if err != nil {
			t.Fatal(err)
		}
		logits := model.Forward(restored, true)
		loss, grad := nn.SoftmaxCrossEntropy(logits, labels)
		if step == 0 {
			first = loss
		}
		last = loss
		model.ZeroGrad()
		model.Backward(grad)
		opt.Step(model.Params())
	}
	if last >= first {
		t.Fatalf("no learning through device-compressed pipeline: %g → %g", first, last)
	}
}

func TestAllCompressorsOnSameScientificData(t *testing.T) {
	// The full baseline matrix on one dataset: DCT+Chop, ZFP-style
	// fixed-rate, SZ-style error-bounded. Each must hold its own
	// contract on the same micrographs.
	gen := datagen.NewDenoise(9, 32)
	noisy, _ := gen.Batch(4)

	comp, err := core.NewCompressor(core.Config{ChopFactor: 4, Serialization: 1}, 32)
	if err != nil {
		t.Fatal(err)
	}
	y, err := comp.Compress(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y.EffectiveRatio()-4) > 1e-9 {
		t.Fatalf("chop ratio %g, want exactly 4 (fixed at compile time)", y.EffectiveRatio())
	}

	zc, err := zfp.New(8)
	if err != nil {
		t.Fatal(err)
	}
	zOut, zBytes, err := zc.RoundTrip(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(noisy.Data())*4)/float64(zBytes) < 3.9 {
		t.Fatal("ZFP fixed-rate budget not honoured")
	}
	if metrics.PSNR(noisy, zOut) < 20 {
		t.Fatal("ZFP reconstruction implausibly bad")
	}

	sc, err := sz.New(0.01)
	if err != nil {
		t.Fatal(err)
	}
	sOut, _, err := sc.RoundTrip(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if sOut.MaxAbsDiff(noisy) > 0.01+1e-6 {
		t.Fatal("SZ error bound violated")
	}
}

func TestCompressedFileInterchange(t *testing.T) {
	// Compress on one "machine", serialize, deserialize, decompress
	// with a freshly compiled compressor — the acc-compress CLI flow.
	gen := datagen.NewClassify(5, 32, 10)
	x, _ := gen.Batch(4)
	cfg := core.Config{ChopFactor: 3, Serialization: 2}
	src, err := core.NewCompressor(cfg, 32)
	if err != nil {
		t.Fatal(err)
	}
	y, err := src.Compress(x)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := y.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := core.ReadCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := core.NewCompressor(parsed.Config, parsed.N)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := dst.Decompress(parsed)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := src.RoundTrip(x)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Equal(direct) {
		t.Fatal("file interchange changed the reconstruction")
	}
}

func TestHarnessSmoke(t *testing.T) {
	// One tiny end-to-end pass over each experiment family, as the CLIs
	// drive them.
	if testing.Short() {
		t.Skip("training smoke test")
	}
	o := experiments.TrainOpts{Epochs: 1, TrainSize: 16, TestSize: 8, BatchSize: 8, N: 16, Seed: 2}
	tr, err := experiments.Chop(4, o.N)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range experiments.Benchmarks() {
		if _, err := b.Run(tr, o); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
	}
	rows := experiments.SweepResolution(platforms.Accelerators(), experiments.Decompress, []int{64}, []int{4})
	if len(rows) != 4 {
		t.Fatalf("sweep rows %d", len(rows))
	}
	for _, r := range rows {
		if r.CompileErr != "" {
			t.Fatalf("%s: %s", r.Device, r.CompileErr)
		}
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	// The reproducibility contract behind EXPERIMENTS.md: identical
	// seeds give bit-identical results across the whole stack.
	run := func() []float64 {
		o := experiments.TrainOpts{Epochs: 2, TrainSize: 16, TestSize: 8, BatchSize: 8, N: 16, Seed: 11}
		tr, err := experiments.Chop(4, o.N)
		if err != nil {
			t.Fatal(err)
		}
		res, err := experiments.RunDenoise(tr, o)
		if err != nil {
			t.Fatal(err)
		}
		return append(append([]float64(nil), res.TrainLoss...), res.TestMetric...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %g vs %g", i, a[i], b[i])
		}
	}
}
