#!/bin/sh
# Repository gate: formatting, vet, build, and the race-enabled internal
# test suite. Run from the repo root; exits nonzero on the first failure.
set -eu
cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
# 32-bit smoke build: the framing code validates u32 lengths before
# converting to int, and this catches any reintroduced wrap-around.
GOOS=linux GOARCH=386 go build ./...
go test -race ./internal/...

# The zero-allocation gates skip themselves under -race (the race
# runtime allocates), so run them again without it: the entropy
# backend's steady-state pool discipline and the pooled registry round
# trips must both report 0 allocs/op.
go test ./internal/entropy/ -run TestZeroAllocSteadyState -count=1
go test ./internal/codec/ -run TestRoundTripIntoAllocs -count=1

# Stage-pipeline conformance: every registered family must round-trip
# both bare and through the "+fse" entropy stage, with the staged
# decode bit-identical to the unstaged one (and exact for lossless).
go test ./internal/codec/ -run 'TestStagedFamilies|TestLosslessExact|TestConformanceRoundTrip' -count=1

# Host-kernel bench smoke: exercises the fast/dense measurement path,
# the registry-codec round-trip benches, and the v2 stream-engine
# throughput matrix (serial + pipelined writer) end to end, leaving a
# fresh BENCH_smoke.json to diff against BENCH_seed.json. The short
# benchtime means the printed numbers are noisy — regenerate with the
# default benchtime before reading anything into them.
go run ./cmd/acc-bench -hostbench -benchquick -benchname smoke -benchdir . -benchtime 20ms

echo "check.sh: all green"
