#!/bin/sh
# Repository gate: formatting, vet, build, and the race-enabled internal
# test suite. Run from the repo root; exits nonzero on the first failure.
set -eu
cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
# 32-bit smoke: the framing code validates u32 lengths (and the index
# footer's u64 offsets) before converting to int, and element products
# accumulate in uint64 — build plus vet of the codec packages catches
# any reintroduced wrap-around or truncating conversion.
GOOS=linux GOARCH=386 go build ./...
GOOS=linux GOARCH=386 go vet ./...
# Cross-arch smoke builds for the dispatched kernels: arm64 exercises
# the non-amd64 stubs (constant-false dispatch), and GOAMD64=v1 checks
# the amd64 build makes no baseline-ISA assumptions outside the
# runtime-gated kernels.
GOOS=linux GOARCH=arm64 go build ./...
GOOS=linux GOARCH=amd64 GOAMD64=v1 go build ./...
go test -race ./internal/...
# Kernel-dispatch suite with SIMD force-disabled: the portable
# fallbacks must pass the same equivalence/golden tests the vector
# paths do (on non-AVX2 hosts this is a harmless re-run).
ACC_DISABLE_SIMD=1 go test -count=1 \
	./internal/cpufeat/ ./internal/dct/ ./internal/jpegq/ \
	./internal/zfp/ ./internal/vecops/ ./internal/vle/ ./internal/entropy/

# The zero-allocation gates skip themselves under -race (the race
# runtime allocates), so run them again without it: the entropy
# backend's steady-state pool discipline and the pooled registry round
# trips must both report 0 allocs/op.
go test ./internal/entropy/ -run TestZeroAllocSteadyState -count=1
go test ./internal/codec/ -run TestRoundTripIntoAllocs -count=1
# Telemetry alloc gates: the instrumented fused round trip must stay
# 0 allocs/op with telemetry enabled, and the pipelined stream engine
# must allocate no more with it on than off.
go test ./internal/codec/ -run 'TestInstrumentedRoundTripIntoAllocs|TestStreamEngineTelemetryAllocNeutral' -count=1

# Telemetry neutrality: the golden byte streams and conformance suite
# must pass identically with instrumentation on and off (the in-process
# on-vs-off byte diff is TestTelemetryByteNeutral), and the whole tree
# must build and pass with the layer compiled out entirely.
ACC_TELEMETRY=1 go test ./internal/codec/ -run 'TestGolden|TestConformanceRoundTrip|TestTelemetryByteNeutral' -count=1
ACC_TELEMETRY=0 go test ./internal/codec/ -run 'TestGolden|TestConformanceRoundTrip' -count=1
go build -tags acc_notelemetry ./...
go test -tags acc_notelemetry ./internal/telemetry/ ./internal/codec/ -count=1

# Stage-pipeline conformance: every registered family must round-trip
# both bare and through the "+fse" entropy stage, with the staged
# decode bit-identical to the unstaged one (and exact for lossless).
go test ./internal/codec/ -run 'TestStagedFamilies|TestLosslessExact|TestConformanceRoundTrip' -count=1

# Index conformance: seeking through the footer (DecodeAt and parallel
# DecodeRange) must decode tensor-identically to the sequential reader,
# seeks must read O(record) not O(stream), footer-less streams must
# still open (rebuilt index) and — via the pinned golden v2 fixture —
# stay byte-identical to the pre-index format.
go test ./internal/codec/ -run 'TestIndexedMatchesSequential|TestIndexedSeekIsO1|TestIndexRebuildFallback|TestGoldenStream' -count=1

# Host-kernel bench smoke: exercises the fast/dense measurement path,
# the registry-codec round-trip benches, the v2 stream-engine
# throughput matrix (serial + pipelined writer), and the seek matrix
# (scan-vs-seek, parallel range decode) end to end. The JSON
# goes to a temp dir so repeated runs never dirty the working tree; the
# short benchtime means the numbers are noisy — regenerate with the
# default benchtime before reading anything into them.
smokedir=$(mktemp -d)
trap 'rm -rf "$smokedir"' EXIT
go run ./cmd/acc-bench -hostbench -benchquick -benchname smoke -benchdir "$smokedir" -benchtime 20ms
# Regression screen against the pinned baseline. Timing from the smoke
# run is too noisy to gate on, so slowdowns only print (gate manually
# with -fail-on-regress on full-benchtime artifacts) — but allocs/op
# increases beyond pool-warmup jitter are reuse breaks, and the
# compare hard-fails on them whenever the row ran enough iterations
# to amortize warmup (tiny-N smoke rows print a note instead).
go run ./cmd/acc-bench -compare BENCH_pr9.json "$smokedir/BENCH_smoke.json"

echo "check.sh: all green"
