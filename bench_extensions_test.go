package repro

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/accel"
	"repro/internal/accel/graphcore"
	"repro/internal/colorspace"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sz"
	"repro/internal/tensor"
	"repro/internal/zfp"
)

// Extension benches: the future-work features layered on the paper's
// core (see DESIGN.md "System inventory" extension rows).

// BenchmarkZFPTransformVariant compares the two portable transforms at
// matched CR=4 in the same fused pipeline (future work §6).
func BenchmarkZFPTransformVariant(b *testing.B) {
	x := benchBatch(8, 3, 64)
	for _, cfg := range []core.Config{
		{ChopFactor: 4, Serialization: 1},                                // DCT8, CR 4
		{ChopFactor: 2, Serialization: 1, Transform: core.TransformZFP4}, // ZFP4, CR 4
	} {
		cfg := cfg
		b.Run(cfg.Transform.String(), func(b *testing.B) {
			comp := mustComp(b, cfg, 64)
			b.SetBytes(int64(x.SizeBytes()))
			for i := 0; i < b.N; i++ {
				if _, err := comp.RoundTrip(x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkColorspace measures the RGB↔YCbCr overhead the paper avoids
// by staying in RGB (§3.2).
func BenchmarkColorspace(b *testing.B) {
	x := benchBatch(8, 3, 64)
	b.SetBytes(int64(x.SizeBytes()))
	for i := 0; i < b.N; i++ {
		colorspace.YCbCrToRGB(colorspace.RGBToYCbCr(x))
	}
}

// BenchmarkCompressionTargets measures the three future-work targets'
// host-side cost on a realistic small layer.
func BenchmarkCompressionTargets(b *testing.B) {
	rng := tensor.NewRNG(1)
	rt, err := core.NewFlatRoundTripper(core.Config{ChopFactor: 5, Serialization: 1}, 16)
	if err != nil {
		b.Fatal(err)
	}
	x := rng.Uniform(0, 1, 8, 4, 16, 16)
	g := rng.Uniform(-0.1, 0.1, 8, 8, 16, 16)

	b.Run("activations", func(b *testing.B) {
		layer := nn.NewCheckpointCompress(nn.NewConv2d(rng, "c", 4, 8, 3, 1, 1), rt)
		for i := 0; i < b.N; i++ {
			layer.Forward(x, true)
			layer.Backward(g)
		}
	})
	b.Run("gradients", func(b *testing.B) {
		p := nn.NewParam("p", rng.Uniform(-1, 1, 4096))
		opt := nn.NewGradCompressOptimizer(nn.NewSGD(0.01, 0), rt)
		for i := 0; i < b.N; i++ {
			p.Grad.Fill(0.1)
			opt.Step([]*nn.Param{p})
		}
	})
	b.Run("weights", func(b *testing.B) {
		model := nn.NewSequential(
			nn.NewConv2d(rng, "c1", 3, 8, 3, 1, 1),
			nn.NewConv2d(rng, "c2", 8, 16, 3, 1, 1),
			nn.NewLinear(rng, "fc", 256, 10),
		)
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if _, _, err := nn.SaveCheckpoint(&buf, model.Params(), rt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkClusterScaling sweeps the data-parallel scaling model across
// deployed form factors (§4.2.2's scalability remark).
func BenchmarkClusterScaling(b *testing.B) {
	for _, size := range []int{1, 4, 16, 64} {
		size := size
		b.Run(fmt.Sprintf("IPUx%d", size), func(b *testing.B) {
			cluster, err := accel.NewCluster(graphcore.New(), size, 500*time.Microsecond)
			if err != nil {
				b.Fatal(err)
			}
			var st accel.Stats
			for i := 0; i < b.N; i++ {
				p, err := cluster.CompileSharded(128, func(shard int) (*graph.Graph, error) {
					comp, err := core.NewCompressor(core.Config{ChopFactor: 4, Serialization: 1}, 256)
					if err != nil {
						return nil, err
					}
					return comp.BuildDecompressGraph(shard, 3)
				})
				if err != nil {
					b.Fatal(err)
				}
				st = p.Estimate()
			}
			b.ReportMetric(st.ThroughputGBs(128*3*256*256*4), "sim_GB/s")
		})
	}
}

// BenchmarkAutotune measures the quality-driven configuration search.
func BenchmarkAutotune(b *testing.B) {
	r := tensor.NewRNG(3)
	sample := r.Uniform(0, 1, 4, 3, 32, 32)
	for i := 0; i < b.N; i++ {
		if _, _, err := core.ChooseChopFactor(sample, 20, core.Config{Serialization: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkErrorBoundedBaselines compares the host reference codecs
// (§2.2's two design philosophies) against DCT+Chop on micrograph-like
// data, reporting achieved compression ratio.
func BenchmarkErrorBoundedBaselines(b *testing.B) {
	x := benchBatch(4, 1, 64)
	b.Run("dct-chop-cr4", func(b *testing.B) {
		comp := mustComp(b, core.Config{ChopFactor: 4, Serialization: 1}, 64)
		b.SetBytes(int64(x.SizeBytes()))
		var ratio float64
		for i := 0; i < b.N; i++ {
			y, err := comp.Compress(x)
			if err != nil {
				b.Fatal(err)
			}
			ratio = y.EffectiveRatio()
		}
		b.ReportMetric(ratio, "ratio")
	})
	b.Run("sz-eb1e-2", func(b *testing.B) {
		codec, err := sz.New(1e-2)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(x.SizeBytes()))
		var ratio float64
		for i := 0; i < b.N; i++ {
			data, err := codec.Compress(x)
			if err != nil {
				b.Fatal(err)
			}
			ratio = float64(x.SizeBytes()) / float64(len(data))
		}
		b.ReportMetric(ratio, "ratio")
	})
	b.Run("zfp-rate8", func(b *testing.B) {
		codec, err := zfp.New(8)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(x.SizeBytes()))
		var ratio float64
		for i := 0; i < b.N; i++ {
			data, err := codec.Compress(x)
			if err != nil {
				b.Fatal(err)
			}
			ratio = float64(x.SizeBytes()) / float64(len(data))
		}
		b.ReportMetric(ratio, "ratio")
	})
}
