// Command acc-train regenerates the paper's accuracy evaluation:
// Table 2 (datasets), Table 3 (benchmark configurations), Fig. 7
// (training loss per epoch), Fig. 8 (test accuracy/loss percent
// difference vs the no-compression baseline), Fig. 9 (DCT+Chop vs ZFP)
// and Fig. 16 (the scatter/gather variant's accuracy).
//
// Each training batch is compressed and decompressed before it reaches
// the model, exactly as §4.1 describes. The benchmarks are the scaled
// synthetic stand-ins documented in DESIGN.md; -epochs/-train/-test/-n
// control the scale.
//
// Usage:
//
//	acc-train -table2 -table3
//	acc-train -fig7 -fig8            # full chop-factor sweep, 4 benchmarks
//	acc-train -fig9                  # classify + em_denoise vs ZFP
//	acc-train -fig16                 # SG variant, classify + em_denoise
//	acc-train -all -epochs 12
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/models"
	"repro/internal/report"
)

func main() {
	var (
		table2 = flag.Bool("table2", false, "print Table 2 dataset inventory")
		table3 = flag.Bool("table3", false, "print Table 3 benchmark configs")
		fig7   = flag.Bool("fig7", false, "training loss per epoch, all benchmarks x CR")
		fig8   = flag.Bool("fig8", false, "test metric percent difference vs baseline")
		fig9   = flag.Bool("fig9", false, "DCT+Chop vs ZFP (classify, em_denoise)")
		fig16  = flag.Bool("fig16", false, "scatter/gather accuracy (classify, em_denoise)")
		jpegQF = flag.Bool("jpeg", false, "related work [15]: classify accuracy vs JPEG quality factor")
		all    = flag.Bool("all", false, "run everything")
		epochs = flag.Int("epochs", 0, "override training epochs (default: harness default)")
		train  = flag.Int("train", 0, "override training-set size")
		test   = flag.Int("test", 0, "override test-set size")
		n      = flag.Int("n", 0, "override sample resolution")
		seed   = flag.Uint64("seed", 0, "override dataset/weight seed")
		csvDir = flag.String("csv", "", "directory to write per-figure CSV files")
	)
	flag.Parse()
	if *all {
		*table2, *table3, *fig7, *fig8, *fig9, *fig16, *jpegQF = true, true, true, true, true, true, true
	}
	if !(*table2 || *table3 || *fig7 || *fig8 || *fig9 || *fig16 || *jpegQF) {
		flag.Usage()
		os.Exit(2)
	}

	opts := experiments.DefaultTrainOpts()
	if *epochs > 0 {
		opts.Epochs = *epochs
	}
	if *train > 0 {
		opts.TrainSize = *train
	}
	if *test > 0 {
		opts.TestSize = *test
	}
	if *n > 0 {
		opts.N = *n
	}
	if *seed > 0 {
		opts.Seed = *seed
	}

	emit := func(name string, t *report.Table) {
		if _, err := t.WriteTo(os.Stdout); err != nil {
			fail(err)
		}
		fmt.Println()
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fail(err)
			}
			f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
			if err != nil {
				fail(err)
			}
			if err := t.WriteCSV(f); err != nil {
				fail(err)
			}
			f.Close()
		}
	}

	if *table2 {
		t := report.New("Table 2: benchmark datasets (paper originals; synthetic stand-ins per DESIGN.md)",
			"Dataset", "Size (GB)", "Type", "Task", "Sample Size")
		for _, d := range datagen.Table2() {
			t.Add(d.Name, d.SizeGB, d.Type, d.Task, d.SampleSize)
		}
		emit("table2", t)
	}
	if *table3 {
		t := report.New("Table 3: evaluation benchmarks",
			"Test", "Dataset", "Network", "Sample Size", "BS", "LR")
		for _, c := range models.Table3() {
			t.Add(c.Test, c.Dataset, c.Network, c.SampleSize, c.BatchSize, c.LearningRate)
		}
		emit("table3", t)
	}

	if *fig7 || *fig8 {
		transforms := []experiments.Transform{experiments.Baseline()}
		for _, cf := range []int{2, 3, 4, 5, 6, 7} {
			tr, err := experiments.Chop(cf, opts.N)
			if err != nil {
				fail(err)
			}
			transforms = append(transforms, tr)
		}
		lossT := report.New("Fig. 7: average training loss per epoch (series = CR)",
			header(opts.Epochs, "benchmark", "CR")...)
		diffT := report.New("Fig. 8: test accuracy/loss percent difference vs baseline",
			header(opts.Epochs, "benchmark", "CR")...)
		for _, b := range experiments.Benchmarks() {
			var base experiments.TrainResult
			for i, tr := range transforms {
				fmt.Fprintf(os.Stderr, "training %s / %s ...\n", b.Name, tr.Label)
				res, err := b.Run(tr, opts)
				if err != nil {
					fail(err)
				}
				if i == 0 {
					base = res
				}
				if *fig7 {
					lossT.Add(seriesCells(b.Name, tr.Label, res.TrainLoss)...)
				}
				if *fig8 && i > 0 {
					diffT.Add(seriesCells(b.Name, tr.Label, experiments.PercentDiffSeries(res, base))...)
				}
			}
		}
		if *fig7 {
			emit("fig7", lossT)
		}
		if *fig8 {
			emit("fig8", diffT)
		}
	}

	if *fig9 {
		t := report.New("Fig. 9: DCT+Chop vs ZFP, test metric percent difference vs baseline",
			header(opts.Epochs, "benchmark", "series")...)
		for _, b := range experiments.Benchmarks()[:2] { // classify, em_denoise
			base, err := b.Run(experiments.Baseline(), opts)
			if err != nil {
				fail(err)
			}
			var series []experiments.Transform
			for _, cf := range []int{2, 4, 6} {
				tr, err := experiments.Chop(cf, opts.N)
				if err != nil {
					fail(err)
				}
				tr.Label = "dct " + tr.Label
				series = append(series, tr)
			}
			for _, rate := range []float64{2, 8, 18} { // CR 16, 4, 1.78
				tr, err := experiments.ZFP(rate)
				if err != nil {
					fail(err)
				}
				series = append(series, tr)
			}
			for _, tr := range series {
				fmt.Fprintf(os.Stderr, "training %s / %s ...\n", b.Name, tr.Label)
				res, err := b.Run(tr, opts)
				if err != nil {
					fail(err)
				}
				t.Add(seriesCells(b.Name, tr.Label, experiments.PercentDiffSeries(res, base))...)
			}
		}
		emit("fig9", t)
	}

	if *jpegQF {
		// Dodge & Karam [15]: even a quality factor of 10 keeps image
		// classification accuracy close to the no-compression baseline.
		t := report.New("Related work [15]: classify test-accuracy percent difference vs JPEG quality factor",
			header(opts.Epochs, "benchmark", "series")...)
		base, err := experiments.RunClassify(experiments.Baseline(), opts)
		if err != nil {
			fail(err)
		}
		for _, q := range []int{10, 25, 50, 75, 95} {
			tr, err := experiments.JPEG(q)
			if err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "training classify / %s ...\n", tr.Label)
			res, err := experiments.RunClassify(tr, opts)
			if err != nil {
				fail(err)
			}
			t.Add(seriesCells("classify", tr.Label, experiments.PercentDiffSeries(res, base))...)
		}
		emit("jpeg-qf", t)
	}

	if *fig16 {
		lossT := report.New("Fig. 16 (left): training loss with scatter/gather",
			header(opts.Epochs, "benchmark", "series")...)
		diffT := report.New("Fig. 16 (right): test metric percent difference with scatter/gather",
			header(opts.Epochs, "benchmark", "series")...)
		for _, b := range experiments.Benchmarks()[:2] {
			base, err := b.Run(experiments.Baseline(), opts)
			if err != nil {
				fail(err)
			}
			for _, cf := range []int{2, 3, 4, 5, 6, 7} {
				tr, err := experiments.SG(cf, opts.N)
				if err != nil {
					fail(err)
				}
				fmt.Fprintf(os.Stderr, "training %s / %s ...\n", b.Name, tr.Label)
				res, err := b.Run(tr, opts)
				if err != nil {
					fail(err)
				}
				lossT.Add(seriesCells(b.Name, tr.Label, res.TrainLoss)...)
				diffT.Add(seriesCells(b.Name, tr.Label, experiments.PercentDiffSeries(res, base))...)
			}
		}
		emit("fig16-loss", lossT)
		emit("fig16-diff", diffT)
	}
}

func header(epochs int, first, second string) []string {
	h := []string{first, second}
	for e := 1; e <= epochs; e++ {
		h = append(h, fmt.Sprintf("ep%d", e))
	}
	return h
}

func seriesCells(benchmark, label string, series []float64) []any {
	cells := []any{benchmark, label}
	for _, v := range series {
		cells = append(cells, v)
	}
	return cells
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "acc-train:", err)
	os.Exit(1)
}
