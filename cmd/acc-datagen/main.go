// Command acc-datagen materializes the synthetic benchmark datasets as
// raw little-endian float32 files (the format acc-compress consumes),
// so the whole CLI pipeline — generate → compress → decompress →
// inspect — runs without leaving this repository.
//
// Usage:
//
//	acc-datagen -dataset classify -count 100 -n 32 -out cifar_like.f32
//	acc-datagen -dataset em_denoise -count 20 -n 64 -out noisy.f32 -aux clean.f32
//	acc-datagen -dataset optical_damage -count 10 -n 64 -out healthy.f32 -damaged
//	acc-datagen -dataset slstr_cloud -count 5 -n 64 -c 3 -out scenes.f32 -aux masks.f32
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/codec/tensorio"
	"repro/internal/datagen"
	"repro/internal/tensor"
)

func main() {
	var (
		dataset = flag.String("dataset", "classify", "classify | em_denoise | optical_damage | slstr_cloud")
		count   = flag.Int("count", 100, "number of samples")
		n       = flag.Int("n", 32, "resolution")
		ch      = flag.Int("c", 3, "channels (slstr_cloud only)")
		seed    = flag.Uint64("seed", 17, "generator seed")
		out     = flag.String("out", "", "output file (raw float32)")
		aux     = flag.String("aux", "", "auxiliary output: clean targets / masks / labels")
		damaged = flag.Bool("damaged", false, "optical_damage: emit damaged beams instead of healthy")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	switch *dataset {
	case "classify":
		gen := datagen.NewClassify(*seed, *n, 10)
		x, labels := gen.Batch(*count)
		writeTensor(*out, x)
		if *aux != "" {
			writeLabels(*aux, labels)
		}
		describe(x, "images")

	case "em_denoise":
		gen := datagen.NewDenoise(*seed, *n)
		noisy, clean := gen.Batch(*count)
		writeTensor(*out, noisy)
		if *aux != "" {
			writeTensor(*aux, clean)
		}
		describe(noisy, "noisy micrographs")

	case "optical_damage":
		gen := datagen.NewOptical(*seed, *n)
		var x *tensor.Tensor
		if *damaged {
			x = gen.DamagedBatch(*count)
		} else {
			x = gen.Batch(*count)
		}
		writeTensor(*out, x)
		describe(x, "beam images")

	case "slstr_cloud":
		gen := datagen.NewCloudSeg(*seed, *n, *ch)
		scenes, masks := gen.Batch(*count)
		writeTensor(*out, scenes)
		if *aux != "" {
			writeTensor(*aux, masks)
		}
		describe(scenes, "scenes")

	default:
		fail(fmt.Errorf("unknown dataset %q", *dataset))
	}
}

func describe(x *tensor.Tensor, what string) {
	fmt.Printf("wrote %v %s (%d bytes, range [%.3g, %.3g])\n",
		x.Shape(), what, x.SizeBytes(), x.Min(), x.Max())
}

func writeTensor(path string, t *tensor.Tensor) {
	if err := tensorio.WriteTensor(path, t); err != nil {
		fail(err)
	}
}

func writeLabels(path string, labels []int) {
	if err := tensorio.WriteLabels(path, labels); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "acc-datagen:", err)
	os.Exit(1)
}
