// Command acc-heatmap regenerates Fig. 3: the proportion of 8×8 blocks
// whose JPEG-quantized DCT coefficient is nonzero at each block
// position, across quality factors and color channels. The heatmaps
// motivate DCT+Chop: nonzero mass concentrates in the upper-left corner
// of every block, so retaining the CF×CF corner loses little.
//
// Usage:
//
//	acc-heatmap                         # 1000 images, QF 5,10,25,50,75,95
//	acc-heatmap -images 200 -quality 10,50
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/datagen"
	"repro/internal/jpegq"
)

func main() {
	var (
		images  = flag.Int("images", 1000, "number of 32x32 synthetic images")
		quality = flag.String("quality", "5,10,25,50,75,95", "comma-separated quality factors")
		seed    = flag.Uint64("seed", 3, "dataset seed")
	)
	flag.Parse()

	var qfs []int
	for _, s := range strings.Split(*quality, ",") {
		q, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "acc-heatmap: bad quality %q: %v\n", s, err)
			os.Exit(2)
		}
		qfs = append(qfs, q)
	}

	gen := datagen.NewClassify(*seed, 32, 10)
	imgs, _ := gen.Batch(*images)
	fmt.Printf("Fig. 3: fraction of 8x8 blocks with nonzero quantized DCT coefficient\n")
	fmt.Printf("(%d synthetic 3x32x32 images; rows = channel, columns = quality factor)\n\n", *images)
	for _, qf := range qfs {
		maps, err := jpegq.NonzeroHeatmaps(imgs, qf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "acc-heatmap:", err)
			os.Exit(1)
		}
		for _, h := range maps {
			fmt.Printf("channel %d, quality factor %d (%d blocks):\n", h.Channel, h.Quality, h.Blocks)
			for i := 0; i < jpegq.BlockSize; i++ {
				for j := 0; j < jpegq.BlockSize; j++ {
					fmt.Printf(" %5.2f", h.Frac[i][j])
				}
				fmt.Println()
			}
			fmt.Println()
		}
	}
}
