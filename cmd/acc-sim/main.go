// Command acc-sim explains the device models: for a given compressor
// configuration and workload it prints, per device, the compile outcome
// and the cost-model breakdown (transfer vs compute vs fill vs
// penalties) behind the simulated time — the "why" behind every number
// in Figs. 10–15.
//
// Usage:
//
//	acc-sim -op decompress -n 256 -bd 100 -cf 2
//	acc-sim -op compress -n 64 -bd 2000 -cf 4        # Groq batch wall
//	acc-sim -op decompress -n 512 -bd 100 -cf 4 -s 2 # partial serialization
//	acc-sim -cluster 4 -device IPU -op decompress -n 256 -bd 100 -cf 4
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/accel"
	"repro/internal/accel/platforms"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	var (
		op      = flag.String("op", "decompress", "compress | decompress")
		n       = flag.Int("n", 256, "resolution")
		bd      = flag.Int("bd", 100, "batch size")
		ch      = flag.Int("c", 3, "channels")
		cf      = flag.Int("cf", 4, "chop factor")
		sg      = flag.Bool("sg", false, "scatter/gather variant")
		serial  = flag.Int("s", 1, "partial-serialization factor")
		device  = flag.String("device", "", "restrict to one device")
		cluster = flag.Int("cluster", 1, "data-parallel device count")
	)
	flag.Parse()

	cfg := core.Config{ChopFactor: *cf, Serialization: *serial}
	if *sg {
		cfg.Mode = core.ModeSG
	}
	comp, err := core.NewCompressor(cfg, *n)
	if err != nil {
		fail(err)
	}
	build := func(shard int) (*graph.Graph, error) {
		if *op == "compress" {
			return comp.BuildCompressGraph(shard, *ch)
		}
		return comp.BuildDecompressGraph(shard, *ch)
	}

	devs := platforms.All()
	if *device != "" {
		d := platforms.ByName(*device)
		if d == nil {
			fail(fmt.Errorf("unknown device %q", *device))
		}
		devs = []*accel.Device{d}
	}

	payload := 4 * *bd * *ch * *n * *n
	fmt.Printf("%s of %dx%dx%dx%d (%s), %s, payload %.1f MB\n\n",
		*op, *bd, *ch, *n, *n, cfg, clusterLabel(*cluster), float64(payload)/1e6)

	for _, d := range devs {
		cl, err := accel.NewCluster(d, *cluster, 500*time.Microsecond)
		if err != nil {
			fail(err)
		}
		p, err := cl.CompileSharded(*bd, build)
		if err != nil {
			fmt.Printf("%-10s COMPILE FAIL: %v\n", d.Name(), err)
			continue
		}
		st := p.Estimate()
		runs := cfg.Serialization * cfg.Serialization
		total := time.Duration(runs) * st.SimTime
		b := p.Member().Estimate().Breakdown
		mode := "sum"
		if b.Overlap {
			mode = "max(transfer,compute)"
		}
		fmt.Printf("%-10s %v total (%.2f GB/s over uncompressed payload)\n",
			cl.Name(), total, float64(payload)/total.Seconds()/1e9)
		fmt.Printf("           per member-run: transfer %v | compute %v | penalty %v | fill %v  [%s]\n",
			b.Transfer, b.Compute, b.Penalty, b.Fill, mode)
		fmt.Printf("           traffic: %.2f MB to device, %.2f MB back; %.2f GFLOP across %d kernels\n\n",
			float64(st.HostToDeviceBytes)/1e6, float64(st.DeviceToHostBytes)/1e6, st.FLOPs/1e9, st.Kernels)
	}
}

func clusterLabel(n int) string {
	if n == 1 {
		return "single device"
	}
	return fmt.Sprintf("%d-way data parallel", n)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "acc-sim:", err)
	os.Exit(1)
}
