// Command acc-compress compresses raw float32 tensor files with any
// registered codec, producing self-describing container files that
// decompress with no out-of-band configuration, and round-trips
// batches on the host or on any of the simulated accelerators.
//
// The codec is picked by a spec string ("family:key=val,flag" with an
// optional "+stage" chain appended — "+fse" runs the shared entropy
// backend over the payload):
//
//	dctc:cf=4,s=2,sg   zfp:rate=8   sz:eb=1e-3   jpegq:q=50
//	dctc:cf=4+fse      lossless:bg=4+fse
//
// Input format for compress/roundtrip: raw little-endian float32
// values of a [BD, C, n, n] batch (dimensions given by flags).
// Decompress needs no shape or codec flags — the container header
// carries both.
//
// Usage:
//
//	acc-compress -mode compress   -in batch.f32 -out batch.accf -bd 10 -c 3 -n 64 -codec zfp:rate=8
//	acc-compress -mode decompress -in batch.accf -out restored.f32
//	acc-compress -mode roundtrip  -in batch.f32 -bd 10 -c 3 -n 64 -codec dctc:cf=4 -device CS-2
//
// With -stream the container format is ACCF v2, a multi-tensor stream
// of independently CRC-protected records:
//
//	acc-compress -mode compress   -stream -in a.f32,b.f32 -out batch.accs -bd 10 -c 3 -n 64 -codec zfp:rate=8 c.f32 d.f32
//	acc-compress -mode decompress -stream -in batch.accs -out restored
//
// Stream compression packs every input (comma-separated -in plus any
// positional arguments after the flags, all sharing the shape flags)
// into one stream;
// stream decompression writes each record to <out>.NNN.f32, decoding
// record by record with bounded memory.
//
// Streams carry a seek-index footer by default (-index=false omits
// it), and -record N extracts a single record without scanning:
//
//	acc-compress -mode decompress -stream -record 2 -in batch.accs -out c.f32
//
// The legacy DCT+Chop flags (-cf, -s, -sg, -transform) still work and
// map onto a dctc spec when -codec is not given.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/accel/platforms"
	"repro/internal/codec"
	"repro/internal/codec/tensorio"
	"repro/internal/metrics"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

func main() {
	var (
		mode   = flag.String("mode", "roundtrip", "compress | decompress | roundtrip")
		in     = flag.String("in", "", "input file")
		out    = flag.String("out", "", "output file (optional for roundtrip)")
		bd     = flag.Int("bd", 1, "batch size")
		ch     = flag.Int("c", 1, "channels")
		n      = flag.Int("n", 0, "resolution (images are n x n)")
		spec   = flag.String("codec", "", `codec spec, e.g. "dctc:cf=4,s=2,sg" or "zfp:rate=8"`)
		cf     = flag.Int("cf", 4, "legacy: chop factor (1-8)")
		sg     = flag.Bool("sg", false, "legacy: scatter/gather triangle variant")
		serial = flag.Int("s", 1, "legacy: partial-serialization factor")
		trans  = flag.String("transform", "dct8", "legacy: block transform: dct8 | zfp4")
		device = flag.String("device", "", "simulate on a device (CS-2, SN30, GroqChip, IPU, A100)")
		stream = flag.Bool("stream", false, "ACCF v2 stream mode: compress many inputs into one multi-tensor stream, decompress record by record")
		index  = flag.Bool("index", true, "stream compress: append the seek-index footer (readers that predate it skip it; -index=false reproduces the footer-less format)")
		record = flag.Int("record", -1, "stream decompress: extract only record N via the seek index, without scanning the stream")
		stats  = flag.Bool("stats", false, "print a telemetry summary (counters, latency histograms) to stderr after the run")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	switch *mode {
	case "compress":
		if *stream {
			compressStream(*in, *out, newCodec(*spec, *cf, *sg, *serial, *trans), *bd, *ch, *n, *index)
			break
		}
		x := readTensor(*in, *bd, *ch, *n)
		c := newCodec(*spec, *cf, *sg, *serial, *trans)
		data, err := c.Compress(x)
		check(err)
		check(os.WriteFile(*out, data, 0o644))
		fmt.Printf("%s: compressed %d bytes -> %d bytes (ratio %.2f)\n",
			c.Spec(), x.SizeBytes(), len(data), float64(x.SizeBytes())/float64(len(data)))

	case "decompress":
		if *stream {
			if *record >= 0 {
				extractRecord(*in, *out, *record)
				break
			}
			decompressStream(*in, *out)
			break
		}
		// Fully self-describing: codec and shape come from the container
		// header, so no -codec or shape flags are needed (or consulted).
		x, c, err := codec.DecodeFile(*in)
		check(err)
		if *out == "" {
			check(fmt.Errorf("missing -out"))
		}
		check(tensorio.WriteTensor(*out, x))
		fmt.Printf("%s: decompressed to %v (%d bytes)\n", c.Spec(), x.Shape(), x.SizeBytes())

	case "roundtrip":
		x := readTensor(*in, *bd, *ch, *n)
		c := newCodec(*spec, *cf, *sg, *serial, *trans)
		if *device != "" {
			dev := platforms.ByName(*device)
			if dev == nil {
				check(fmt.Errorf("unknown device %q", *device))
			}
			comp, err := codec.Compiler(c, *n)
			check(err)
			cg, err := comp.BuildCompressGraph(*bd, *ch)
			check(err)
			prog, err := dev.Compile(cg)
			check(err)
			_, stats, err := prog.Run(map[string]*tensor.Tensor{"A": x})
			check(err)
			fmt.Printf("%s: simulated compression %v (%.2f GB/s)\n",
				dev.Name(), stats.SimTime, stats.ThroughputGBs(x.SizeBytes()))
		}
		back, bytes, err := c.RoundTrip(x)
		check(err)
		fmt.Printf("codec: %s (%d payload bytes)\n", c.Spec(), bytes)
		fmt.Printf("PSNR: %.2f dB  MSE: %.6g  max error: %.6g\n",
			metrics.PSNR(x, back), metrics.MSE(x, back), metrics.MaxError(x, back))
		if *out != "" {
			check(tensorio.WriteTensor(*out, back))
		}

	default:
		check(fmt.Errorf("unknown mode %q", *mode))
	}

	if *stats {
		fmt.Fprintln(os.Stderr, "--- telemetry ---")
		check(telemetry.Default().Snapshot().WriteHuman(os.Stderr))
	}
}

// compressStream packs every input file (comma-separated `in` plus the
// positional arguments, all sharing the shape flags) into one ACCF v2
// stream at `out`.
func compressStream(in, out string, c codec.Codec, bd, ch, n int, index bool) {
	if out == "" {
		check(fmt.Errorf("missing -out"))
	}
	var ins []string
	for _, p := range strings.Split(in, ",") {
		if p != "" {
			ins = append(ins, p)
		}
	}
	ins = append(ins, flag.Args()...)
	f, err := os.Create(out)
	check(err)
	sw := codec.NewStreamWriter(f)
	check(sw.SetIndex(index))
	var raw int64
	for _, p := range ins {
		x := readTensor(p, bd, ch, n)
		check(sw.WriteTensor(context.Background(), c, x))
		raw += int64(x.SizeBytes())
	}
	check(sw.Close())
	check(f.Close())
	fi, err := os.Stat(out)
	check(err)
	fmt.Printf("%s: streamed %d tensors, %d bytes -> %d bytes (ratio %.2f)\n",
		c.Spec(), sw.Records(), raw, fi.Size(), float64(raw)/float64(fi.Size()))
}

// decompressStream unpacks an ACCF v2 stream record by record, writing
// tensor i to <out>.NNN.f32. Records decode with bounded memory: the
// reader streams each payload through one plane-group of scratch.
func decompressStream(in, out string) {
	if out == "" {
		check(fmt.Errorf("missing -out"))
	}
	f, err := os.Open(in)
	check(err)
	defer f.Close()
	sr, err := codec.NewStreamReader(f)
	check(err)
	for i := 0; ; i++ {
		hdr, err := sr.Next()
		if err == io.EOF {
			fmt.Printf("decoded %d records from %s\n", i, in)
			return
		}
		check(err)
		x, err := sr.Decode(context.Background())
		check(err)
		path := fmt.Sprintf("%s.%03d.f32", strings.TrimSuffix(out, ".f32"), i)
		check(tensorio.WriteTensor(path, x))
		fmt.Printf("%s: record %d %v -> %s (%d bytes)\n", hdr.Spec, i, hdr.Shape, path, x.SizeBytes())
	}
}

// extractRecord seeks straight to record `rec` of an ACCF v2 stream via
// the index footer (falling back to a one-time header walk when the
// stream has none) and writes just that tensor to `out`. Reads are
// proportional to the footer plus the one record, not the stream.
func extractRecord(in, out string, rec int) {
	if out == "" {
		check(fmt.Errorf("missing -out"))
	}
	f, err := os.Open(in)
	check(err)
	defer f.Close()
	fi, err := f.Stat()
	check(err)
	ix, err := codec.OpenIndexedStream(f, fi.Size())
	check(err)
	if rec >= ix.Len() {
		check(fmt.Errorf("record %d out of range: stream has %d records", rec, ix.Len()))
	}
	hdr, err := ix.Header(rec)
	check(err)
	x, err := ix.DecodeAt(context.Background(), rec)
	check(err)
	check(tensorio.WriteTensor(out, x))
	how := "seek index"
	if ix.Rebuilt() {
		how = "rebuilt index (no footer)"
	}
	fmt.Printf("%s: record %d/%d %v -> %s (%d bytes, via %s)\n",
		hdr.Spec, rec, ix.Len(), hdr.Shape, out, x.SizeBytes(), how)
}

// newCodec resolves the codec: an explicit -codec spec wins; otherwise
// the legacy DCT+Chop flags are mapped onto an equivalent dctc spec.
// A bad spec dies with the library's diagnosis (which names the
// offending token and the valid alternatives) plus the full grammar.
func newCodec(spec string, cf int, sg bool, serial int, transform string) codec.Codec {
	if spec == "" {
		spec = fmt.Sprintf("dctc:cf=%d", cf)
		if serial > 1 {
			spec += fmt.Sprintf(",s=%d", serial)
		}
		if sg {
			spec += ",sg"
		}
		if transform != "" && transform != "dct8" {
			spec += ",transform=" + transform
		}
	}
	c, err := codec.New(spec)
	if err != nil {
		check(fmt.Errorf("%w\n%s", err, specHelp(spec)))
	}
	return c
}

// specHelp renders the spec grammar with the live registry contents:
// every family with its valid option keys, and the registered stages.
func specHelp(spec string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  spec grammar: family[:key=val|flag,...][+stage...], e.g. %q or %q\n", "dctc:cf=4,s=2+fse", "lossless:bg=4+fse")
	b.WriteString("  families:\n")
	for _, fam := range codec.Families() {
		keys, err := codec.ValidKeys(fam)
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "    %-10s keys %v\n", fam, keys)
	}
	fmt.Fprintf(&b, "  stages: %v (appended with '+', no options)", codec.StageNames())
	if family, _, ok := strings.Cut(spec, ":"); ok {
		if keys, err := codec.ValidKeys(family); err == nil {
			fmt.Fprintf(&b, "\n  %s accepts: %v", family, keys)
		}
	}
	return b.String()
}

func readTensor(path string, bd, ch, n int) *tensor.Tensor {
	x, err := tensorio.ReadTensor(path, bd, ch, n, n)
	check(err)
	return x
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "acc-compress:", err)
		os.Exit(1)
	}
}
