// Command acc-compress applies the DCT+Chop compressor to raw float32
// tensor files, round-tripping on the host or on any of the simulated
// accelerators.
//
// Input format: raw little-endian float32 values of a [BD, C, n, n]
// batch (the dimensions are given by flags).
//
// Usage:
//
//	acc-compress -mode compress   -in batch.f32 -out batch.dctc -bd 10 -c 3 -n 64 -cf 4
//	acc-compress -mode decompress -in batch.dctc -out restored.f32
//	acc-compress -mode roundtrip  -in batch.f32 -bd 10 -c 3 -n 64 -cf 4 -device CS-2
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/accel/platforms"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

func main() {
	var (
		mode   = flag.String("mode", "roundtrip", "compress | decompress | roundtrip")
		in     = flag.String("in", "", "input file")
		out    = flag.String("out", "", "output file (optional for roundtrip)")
		bd     = flag.Int("bd", 1, "batch size")
		ch     = flag.Int("c", 1, "channels")
		n      = flag.Int("n", 0, "resolution (images are n x n)")
		cf     = flag.Int("cf", 4, "chop factor (1-8)")
		sg     = flag.Bool("sg", false, "use the scatter/gather triangle variant")
		serial = flag.Int("s", 1, "partial-serialization factor")
		trans  = flag.String("transform", "dct8", "block transform: dct8 | zfp4")
		device = flag.String("device", "", "simulate on a device (CS-2, SN30, GroqChip, IPU, A100)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	switch *mode {
	case "compress":
		x := readTensor(*in, *bd, *ch, *n)
		comp := newCompressor(*cf, *sg, *serial, *n, *trans)
		y, err := comp.Compress(x)
		check(err)
		f, err := os.Create(*out)
		check(err)
		defer f.Close()
		_, err = y.WriteTo(f)
		check(err)
		fmt.Printf("compressed %d bytes -> %d bytes (ratio %.2f)\n",
			y.OriginalBytes(), y.CompressedBytes(), y.EffectiveRatio())

	case "decompress":
		f, err := os.Open(*in)
		check(err)
		y, err := core.ReadCompressed(f)
		f.Close()
		check(err)
		comp, err := core.NewCompressor(y.Config, y.N)
		check(err)
		x, err := comp.Decompress(y)
		check(err)
		writeTensor(*out, x)
		fmt.Printf("decompressed to %v (%d bytes)\n", x.Shape(), x.SizeBytes())

	case "roundtrip":
		x := readTensor(*in, *bd, *ch, *n)
		comp := newCompressor(*cf, *sg, *serial, *n, *trans)
		if *device != "" {
			dev := platforms.ByName(*device)
			if dev == nil {
				check(fmt.Errorf("unknown device %q", *device))
			}
			cg, err := comp.BuildCompressGraph(*bd, *ch)
			check(err)
			prog, err := dev.Compile(cg)
			check(err)
			_, stats, err := prog.Run(map[string]*tensor.Tensor{"A": x})
			check(err)
			fmt.Printf("%s: simulated compression %v (%.2f GB/s)\n",
				dev.Name(), stats.SimTime, stats.ThroughputGBs(x.SizeBytes()))
		}
		back, err := comp.RoundTrip(x)
		check(err)
		fmt.Printf("config: %s\n", comp.Config())
		fmt.Printf("PSNR: %.2f dB  MSE: %.6g  max error: %.6g\n",
			metrics.PSNR(x, back), metrics.MSE(x, back), metrics.MaxError(x, back))
		if *out != "" {
			writeTensor(*out, back)
		}

	default:
		check(fmt.Errorf("unknown mode %q", *mode))
	}
}

func newCompressor(cf int, sg bool, serial, n int, transform string) *core.Compressor {
	cfg := core.Config{ChopFactor: cf, Serialization: serial}
	if sg {
		cfg.Mode = core.ModeSG
	}
	switch transform {
	case "dct8", "":
	case "zfp4":
		cfg.Transform = core.TransformZFP4
	default:
		check(fmt.Errorf("unknown transform %q (want dct8 or zfp4)", transform))
	}
	comp, err := core.NewCompressor(cfg, n)
	check(err)
	return comp
}

func readTensor(path string, bd, ch, n int) *tensor.Tensor {
	raw, err := os.ReadFile(path)
	check(err)
	want := bd * ch * n * n * 4
	if len(raw) != want {
		check(fmt.Errorf("%s: %d bytes, want %d for [%d,%d,%d,%d] float32", path, len(raw), want, bd, ch, n, n))
	}
	data := make([]float32, want/4)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return tensor.FromSlice(data, bd, ch, n, n)
}

func writeTensor(path string, t *tensor.Tensor) {
	if path == "" {
		check(fmt.Errorf("missing -out"))
	}
	raw := make([]byte, 4*t.Len())
	for i, v := range t.Data() {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	check(os.WriteFile(path, raw, 0o644))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "acc-compress:", err)
		os.Exit(1)
	}
}
