// Command acc-bench regenerates the paper's throughput evaluation:
// Table 1 (accelerator specs) and Figs. 10–15 and 17 (compression and
// decompression time/throughput across the four simulated AI
// accelerators plus the A100 reference).
//
// Usage:
//
//	acc-bench -table1          # accelerator specification table
//	acc-bench -fig10 -fig11    # time vs resolution sweeps
//	acc-bench -fig12 -fig13    # time vs batch-size sweeps
//	acc-bench -fig14           # A100 decompression sweep
//	acc-bench -fig15           # partial-serialization throughput
//	acc-bench -fig17           # scatter/gather vs chop on the IPU
//	acc-bench -all             # everything
//	acc-bench -all -csv out/   # additionally write one CSV per figure
//
// Host-kernel benchmark mode (no device simulation — measures this
// machine's fast vs dense compress path and writes BENCH_<name>.json):
//
//	acc-bench -hostbench -benchname seed
//	acc-bench -hostbench -benchquick -benchname smoke -benchtime 20ms
//
// Compare mode (diff two hostbench artifacts; see README for how to
// read the table):
//
//	acc-bench -compare BENCH_old.json BENCH_new.json
//	acc-bench -compare -fail-on-regress -regress-tol 0.10 old.json new.json
//
// Either mode accepts -cpuprofile/-memprofile for pprof output.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/accel"
	"repro/internal/accel/platforms"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	var (
		table1  = flag.Bool("table1", false, "print Table 1 accelerator specs")
		fig10   = flag.Bool("fig10", false, "compression time vs resolution")
		fig11   = flag.Bool("fig11", false, "decompression time vs resolution")
		fig12   = flag.Bool("fig12", false, "compression time vs batch size")
		fig13   = flag.Bool("fig13", false, "decompression time vs batch size")
		fig14   = flag.Bool("fig14", false, "A100 decompression vs resolution")
		fig15   = flag.Bool("fig15", false, "partial serialization, 512x512, s=2")
		fig17   = flag.Bool("fig17", false, "scatter/gather vs chop on IPU")
		zfp4    = flag.Bool("zfp4", false, "future work: ZFP block-transform variant across devices")
		overlap = flag.Bool("overlap", false, "pipeline-masking analysis (§4.2.2 samples/s comparison)")
		all     = flag.Bool("all", false, "run every table and figure")
		csvDir  = flag.String("csv", "", "directory to write per-figure CSV files")

		compare       = flag.Bool("compare", false, "diff two BENCH_*.json files: acc-bench -compare old.json new.json")
		regressTol    = flag.Float64("regress-tol", 0.10, "fractional slowdown flagged as a regression in -compare")
		failOnRegress = flag.Bool("fail-on-regress", false, "exit nonzero if -compare finds timing regressions beyond -regress-tol (allocs/op regressions always fail)")

		hostbench  = flag.Bool("hostbench", false, "measure host fast-vs-dense kernels, write BENCH_<name>.json")
		benchName  = flag.String("benchname", "host", "hostbench output label (BENCH_<name>.json)")
		benchDir   = flag.String("benchdir", ".", "directory for the hostbench JSON file")
		benchQuick = flag.Bool("benchquick", false, "hostbench smoke subset (n=64 only)")
		benchTime  = flag.String("benchtime", "300ms", "hostbench per-case measurement time")

		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()
	if *all {
		*table1, *fig10, *fig11, *fig12, *fig13, *fig14, *fig15, *fig17, *zfp4, *overlap =
			true, true, true, true, true, true, true, true, true, true
	}
	if !(*table1 || *fig10 || *fig11 || *fig12 || *fig13 || *fig14 || *fig15 || *fig17 || *zfp4 || *overlap || *hostbench || *compare) {
		flag.Usage()
		os.Exit(2)
	}

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: acc-bench -compare old.json new.json")
			os.Exit(2)
		}
		timeRegs, allocRegs, err := runCompare(flag.Arg(0), flag.Arg(1), *regressTol)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Allocs/op increases are deterministic pool/reuse breaks, not
		// measurement noise, so they fail the compare unconditionally;
		// timing regressions only fail under -fail-on-regress.
		if allocRegs > 0 {
			fmt.Fprintf(os.Stderr, "acc-bench: %d allocs/op regression(s) — failing regardless of -fail-on-regress\n", allocRegs)
			os.Exit(1)
		}
		if timeRegs > 0 && *failOnRegress {
			os.Exit(1)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date live-object stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *hostbench {
		if err := runHostBench(*benchName, *benchDir, *benchTime, !*benchQuick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	emit := func(name string, t *report.Table) {
		if _, err := t.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := t.WriteCSV(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
		}
	}

	cfs := []int{2, 3, 4, 5, 6, 7}
	resolutions := []int{32, 64, 128, 256, 512}
	batches := []int{10, 50, 100, 500, 1000, 2000, 5000}

	if *table1 {
		emit("table1", specTable())
	}
	if *fig10 {
		rows := experiments.SweepResolution(platforms.Accelerators(), experiments.Compress, resolutions, cfs)
		emit("fig10", sweepTable("Fig. 10: compression time vs resolution (100 samples, 3 channels)", rows, "n"))
	}
	if *fig11 {
		rows := experiments.SweepResolution(platforms.Accelerators(), experiments.Decompress, resolutions, cfs)
		emit("fig11", sweepTable("Fig. 11: decompression time vs resolution (100 samples, 3 channels)", rows, "n"))
	}
	if *fig12 {
		rows := experiments.SweepBatch(platforms.Accelerators(), experiments.Compress, batches, cfs)
		emit("fig12", sweepTable("Fig. 12: compression time vs batch size (3x64x64 samples)", rows, "batch"))
	}
	if *fig13 {
		rows := experiments.SweepBatch(platforms.Accelerators(), experiments.Decompress, batches, cfs)
		emit("fig13", sweepTable("Fig. 13: decompression time vs batch size (3x64x64 samples)", rows, "batch"))
	}
	if *fig14 {
		gpu := []*accel.Device{platforms.ByName("A100")}
		rows := experiments.SweepResolution(gpu, experiments.Decompress, resolutions, cfs)
		emit("fig14", sweepTable("Fig. 14: A100 decompression time vs resolution", rows, "n"))
	}
	if *fig15 {
		devs := []*accel.Device{platforms.ByName("SN30"), platforms.ByName("IPU")}
		rows := experiments.SweepPartialSerialization(devs, []int{7, 6, 5, 4, 3, 2})
		emit("fig15", sweepTable("Fig. 15: partial serialization s=2, 100x3x512x512, decompression", rows, "n"))
	}
	if *overlap {
		// §4.2.2: decompression vs training samples/s — the pipeline
		// masking argument. Training rates are the paper's citations.
		t := report.New("Pipeline masking: decompression vs training throughput (ResNet34/CIFAR10 scenario)",
			"device", "decomp samples/s", "train samples/s (paper)", "ratio", "masked")
		for _, r := range experiments.PipelineOverlap(platforms.Accelerators()) {
			if r.Err != "" {
				t.Add(r.Device, "-", "-", "-", "COMPILE FAIL")
				continue
			}
			train, ratio := "n/a", "n/a"
			masked := "n/a"
			if r.TrainSamplesPerSec > 0 {
				train = fmt.Sprintf("%.0f", r.TrainSamplesPerSec)
				ratio = fmt.Sprintf("%.0fx", r.Ratio)
				masked = fmt.Sprint(r.Masked)
			}
			t.Add(r.Device, fmt.Sprintf("%.0f", r.DecompSamplesPerSec), train, ratio, masked)
		}
		emit("overlap", t)
	}
	if *zfp4 {
		// Future work §6: the ZFP block transform through the same
		// portable pipeline, decompression at 256×256 on every device.
		t := report.New("Future work: ZFP block-transform variant, decompression, 100x3x256x256",
			"device", "CF", "CR", "time", "GB/s", "status")
		for _, d := range platforms.All() {
			for _, cf := range []int{1, 2, 3, 4} {
				cfg := core.Config{ChopFactor: cf, Serialization: 1, Transform: core.TransformZFP4}
				r := experiments.Measure(d, cfg, experiments.Decompress, 256, 100, 3)
				if r.CompileErr != "" {
					t.Add(r.Device, cf, cfg.Ratio(), "-", "-", "COMPILE FAIL: "+r.CompileErr)
					continue
				}
				t.Add(r.Device, cf, cfg.Ratio(), r.SimTime, r.Throughput, "ok")
			}
		}
		emit("zfp4-variant", t)
	}
	if *fig17 {
		rows := experiments.SweepSG(platforms.ByName("IPU"), cfs)
		t := report.New("Fig. 17: scatter/gather (opt) vs DCT+Chop (dct) decompression, IPU, 100x3x32x32",
			"mode", "CF", "CR", "time", "GB/s")
		for _, r := range rows {
			mode := "dct"
			if r.Config.Mode != 0 {
				mode = "opt"
			}
			t.Add(mode, r.Config.ChopFactor, r.Config.Ratio(), r.SimTime, r.Throughput)
		}
		emit("fig17", t)
	}
}

func specTable() *report.Table {
	t := report.New("Table 1: accelerator specifications",
		"", "CS-2", "SN30", "GroqChip", "IPU")
	devs := platforms.Accelerators()
	row := func(label string, f func(accel.Specs) string) {
		cells := []any{label}
		for _, d := range devs {
			cells = append(cells, f(d.Specs()))
		}
		t.Add(cells...)
	}
	row("CUs", func(s accel.Specs) string { return fmt.Sprint(s.ComputeUnits) })
	row("OCM", func(s accel.Specs) string { return fmtBytes(s.OnChipMemory) })
	row("OCM/CUs", func(s accel.Specs) string { return fmtBytes(s.PerUnitMemory) })
	row("Software", func(s accel.Specs) string { return strings.Join(s.Software, ", ") })
	row("Arch.", func(s accel.Specs) string { return s.Architecture.String() })
	return t
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.4g GB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.4g MB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.4g KB", float64(b)/(1<<10))
	}
}

func sweepTable(title string, rows []experiments.ThroughputRow, xlabel string) *report.Table {
	t := report.New(title, "device", "CF", "CR", xlabel, "time", "GB/s", "status")
	for _, r := range rows {
		x := r.N
		if xlabel == "batch" {
			x = r.Batch
		}
		status := "ok"
		if r.CompileErr != "" {
			status = "COMPILE FAIL: " + r.CompileErr
			t.Add(r.Device, r.Config.ChopFactor, r.Config.Ratio(), x, "-", "-", status)
			continue
		}
		t.Add(r.Device, r.Config.ChopFactor, r.Config.Ratio(), x, r.SimTime, r.Throughput, status)
	}
	return t
}
