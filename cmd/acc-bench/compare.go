package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// Compare mode: load two BENCH_*.json artifacts (as written by
// -hostbench) and print a per-config speedup/regression table. Entries
// are matched by their stable identity — host benchmarks by name,
// codec round-trips by spec, stream points by spec+workers, seek
// points by mode+spec+workers — so the two files may come from
// different bench matrices; only the intersection is compared.

type compareRow struct {
	kind     string
	key      string
	oldNs    float64
	newNs    float64
	oldAll   int64
	newAll   int64
	hasAll   bool
	newIters int
}

func loadBenchFile(path string) (*hostBenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f hostBenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// compareRows pairs up the entries the two files have in common.
func compareRows(oldF, newF *hostBenchFile) []compareRow {
	var rows []compareRow

	oldBench := map[string]hostBenchEntry{}
	for _, e := range oldF.Benchmarks {
		oldBench[e.Name] = e
	}
	for _, e := range newF.Benchmarks {
		o, ok := oldBench[e.Name]
		if !ok {
			continue
		}
		rows = append(rows, compareRow{
			kind: "bench", key: e.Name,
			oldNs: o.NsPerOp, newNs: e.NsPerOp,
			oldAll: o.AllocsPerOp, newAll: e.AllocsPerOp, hasAll: true,
			newIters: e.Iterations,
		})
	}

	oldCodec := map[string]codecBenchEntry{}
	for _, e := range oldF.Codecs {
		oldCodec[e.Spec] = e
	}
	for _, e := range newF.Codecs {
		o, ok := oldCodec[e.Spec]
		if !ok {
			continue
		}
		rows = append(rows, compareRow{
			kind: "codec", key: "roundtrip/" + e.Spec,
			oldNs: o.NsPerOp, newNs: e.NsPerOp,
			oldAll: o.AllocsPerOp, newAll: e.AllocsPerOp, hasAll: true,
			newIters: e.Iterations,
		})
	}

	oldStream := map[string]streamBenchEntry{}
	for _, e := range oldF.Stream {
		oldStream[fmt.Sprintf("%s/workers=%d", e.Spec, e.Workers)] = e
	}
	for _, e := range newF.Stream {
		key := fmt.Sprintf("%s/workers=%d", e.Spec, e.Workers)
		o, ok := oldStream[key]
		if !ok || o.RecordsPerS <= 0 || e.RecordsPerS <= 0 {
			continue
		}
		// Stream entries report records/s, not ns/op; invert so the
		// shared "old/new time ratio" speedup math applies.
		rows = append(rows, compareRow{
			kind: "stream", key: "compress/" + key,
			oldNs: 1e9 / o.RecordsPerS, newNs: 1e9 / e.RecordsPerS,
		})
	}

	seekKey := func(e seekBenchEntry) string {
		k := fmt.Sprintf("%s/%s", e.Mode, e.Spec)
		if e.Mode == "range" {
			k += fmt.Sprintf("/workers=%d", e.Workers)
		}
		return k
	}
	oldSeek := map[string]seekBenchEntry{}
	for _, e := range oldF.Seek {
		oldSeek[seekKey(e)] = e
	}
	for _, e := range newF.Seek {
		key := seekKey(e)
		o, ok := oldSeek[key]
		if !ok || o.Records != e.Records {
			continue
		}
		rows = append(rows, compareRow{
			kind: "seek", key: key,
			oldNs: o.NsPerOp, newNs: e.NsPerOp,
		})
	}
	return rows
}

// minAllocIters is the smallest iteration count at which allocs/op is
// gateable: below it the one-time pool and table warmup allocations
// are split over so few ops that they dominate the per-op count (a
// 20ms smoke run of a 19ms/op codec does its whole warmup inside
// b.N=1). Such rows print a note instead of failing the compare.
const minAllocIters = 8

// allocRegressed reports whether an allocs/op change is a structural
// regression rather than measurement jitter. The pooled codec paths
// amortize their pool-warmup allocations over b.N iterations, so the
// reported allocs/op wobbles by a few between runs even at full
// benchtime (GC clears pool victim caches mid-run); a genuine reuse
// break — an allocation per block, lane, or plane — jumps by tens.
// The gate therefore allows max(4, 10%) of slack, requires the new
// measurement to have at least minAllocIters iterations, and
// hard-fails anything beyond that.
func allocRegressed(oldAll, newAll int64, newIters int) bool {
	if newIters > 0 && newIters < minAllocIters {
		return false
	}
	slack := oldAll / 10
	if slack < 4 {
		slack = 4
	}
	return newAll > oldAll+slack
}

// runCompare prints the table and returns the number of timing
// regressions beyond tol (e.g. 0.10 flags anything >10% slower than
// old) and, separately, the number of allocs/op regressions. Timing is
// noise-prone and gated by the caller's -fail-on-regress; an allocs/op
// increase beyond warmup jitter (allocRegressed) is a pool or
// buffer-reuse break, so callers treat any count here as a hard
// failure.
func runCompare(oldPath, newPath string, tol float64) (timeRegressions, allocRegressions int, err error) {
	oldF, err := loadBenchFile(oldPath)
	if err != nil {
		return 0, 0, err
	}
	newF, err := loadBenchFile(newPath)
	if err != nil {
		return 0, 0, err
	}
	rows := compareRows(oldF, newF)
	if len(rows) == 0 {
		return 0, 0, fmt.Errorf("compare: no common entries between %s (%q) and %s (%q)",
			oldPath, oldF.Name, newPath, newF.Name)
	}

	fmt.Printf("comparing %s (%q) -> %s (%q), regression threshold %.0f%%\n",
		oldPath, oldF.Name, newPath, newF.Name, tol*100)
	fmt.Printf("%-52s %14s %14s %9s  %s\n", "config", "old ns/op", "new ns/op", "speedup", "")
	for _, r := range rows {
		if r.oldNs <= 0 || r.newNs <= 0 {
			continue
		}
		speedup := r.oldNs / r.newNs
		flag := ""
		if r.newNs > r.oldNs*(1+tol) {
			flag = "REGRESSION"
			timeRegressions++
		}
		if r.hasAll && allocRegressed(r.oldAll, r.newAll, r.newIters) {
			if flag != "" {
				flag += ", "
			}
			flag += fmt.Sprintf("ALLOC REGRESSION %d -> %d", r.oldAll, r.newAll)
			allocRegressions++
		} else if r.hasAll && r.newAll > r.oldAll {
			if flag != "" {
				flag += ", "
			}
			flag += fmt.Sprintf("allocs %d -> %d", r.oldAll, r.newAll)
			if r.newIters > 0 && r.newIters < minAllocIters {
				flag += fmt.Sprintf(" (N=%d, warmup-dominated; not gated)", r.newIters)
			}
		}
		fmt.Printf("%-52s %14.0f %14.0f %8.2fx  %s\n", r.kind+"/"+r.key, r.oldNs, r.newNs, speedup, flag)
	}
	if timeRegressions > 0 {
		fmt.Printf("%d timing regression(s) beyond %.0f%%\n", timeRegressions, tol*100)
	} else {
		fmt.Println("no timing regressions beyond threshold")
	}
	if allocRegressions > 0 {
		fmt.Printf("%d allocs/op regression(s)\n", allocRegressions)
	}
	return timeRegressions, allocRegressions, nil
}
