package main

import (
	"context"
	"fmt"
	"io"
	"testing"

	"repro/internal/codec"
	"repro/internal/tensor"
)

// Registry-codec and stream-engine benchmark extension to -hostbench:
// measures the baseline codecs' pooled round-trip path (the training
// hot loop) against recorded seed numbers, and the ACCF v2 stream
// writer's throughput across worker counts.

type codecBenchEntry struct {
	Spec            string  `json:"spec"`
	Shape           []int   `json:"shape"`
	Iterations      int     `json:"iterations"`
	NsPerOp         float64 `json:"ns_per_op"`
	MBPerS          float64 `json:"mb_per_s"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	PayloadBytes    int     `json:"payload_bytes"`
	Ratio           float64 `json:"ratio"` // uncompressed bytes / payload bytes
	SeedNsPerOp     float64 `json:"seed_ns_per_op,omitempty"`
	SeedAllocsPerOp int64   `json:"seed_allocs_per_op,omitempty"`
	SpeedupVsSeed   float64 `json:"speedup_vs_seed,omitempty"`
}

type streamBenchEntry struct {
	Spec        string  `json:"spec"`
	Workers     int     `json:"workers"`
	Records     int     `json:"records"`
	Shape       []int   `json:"shape"`
	RecordsPerS float64 `json:"records_per_s"`
	MBPerS      float64 `json:"mb_per_s"`
}

// codecSeedBaselines pins the pre-rewrite numbers for the baseline
// codecs' registry RoundTrip at [1,3,256,256] on this repository's
// reference container (GOMAXPROCS=1), measured at commit fef2392
// before the word-at-a-time bitstream port. The bench reports each
// current run against these so the speedup rides in the JSON artifact.
var codecSeedBaselines = map[string]struct {
	ns     float64
	allocs int64
}{
	"zfp:rate=8": {ns: 30314230, allocs: 110},
	"jpegq:q=50": {ns: 38933777, allocs: 157028},
	"sz:eb=1e-3": {ns: 18458537, allocs: 14370},
}

// codecBenchShape is the measurement point the seed baselines were
// recorded at: one 3-channel 256×256 sample.
var codecBenchShape = []int{1, 3, 256, 256}

// measureCodecCase benchmarks one spec's pooled round-trip.
func measureCodecCase(spec string) (codecBenchEntry, error) {
	c, err := codec.New(spec)
	if err != nil {
		return codecBenchEntry{}, fmt.Errorf("codecbench %s: %w", spec, err)
	}
	r := tensor.NewRNG(1)
	x := r.Uniform(0, 1, codecBenchShape...)
	dst := tensor.New(codecBenchShape...)
	// Warm the pools so steady state is what's measured; the warm-up's
	// reported payload size also yields the compression ratio.
	payload, err := codec.RoundTripInto(c, dst, x)
	if err != nil {
		return codecBenchEntry{}, fmt.Errorf("codecbench %s: %w", spec, err)
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(x.SizeBytes()))
		for i := 0; i < b.N; i++ {
			if _, err := codec.RoundTripInto(c, dst, x); err != nil {
				b.Fatal(err)
			}
		}
	})
	e := codecBenchEntry{
		Spec:         spec,
		Shape:        codecBenchShape,
		Iterations:   res.N,
		NsPerOp:      float64(res.T.Nanoseconds()) / float64(res.N),
		MBPerS:       float64(res.Bytes) * float64(res.N) / res.T.Seconds() / 1e6,
		AllocsPerOp:  res.AllocsPerOp(),
		BytesPerOp:   res.AllocedBytesPerOp(),
		PayloadBytes: payload,
		Ratio:        float64(x.SizeBytes()) / float64(payload),
	}
	if seed, ok := codecSeedBaselines[spec]; ok && e.NsPerOp > 0 {
		e.SeedNsPerOp = seed.ns
		e.SeedAllocsPerOp = seed.allocs
		e.SpeedupVsSeed = seed.ns / e.NsPerOp
	}
	return e, nil
}

// measureStreamCase benchmarks the v2 stream writer at one worker
// count: records of shape streamed to a discarding sink, reporting
// records/s and uncompressed MB/s.
func measureStreamCase(spec string, workers, records int, shape []int) (streamBenchEntry, error) {
	c, err := codec.New(spec)
	if err != nil {
		return streamBenchEntry{}, fmt.Errorf("streambench %s: %w", spec, err)
	}
	r := tensor.NewRNG(2)
	x := r.Uniform(0, 1, shape...)
	ctx := context.Background()
	res := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(records * x.SizeBytes()))
		for i := 0; i < b.N; i++ {
			sw := codec.NewStreamWriter(io.Discard)
			if workers != 1 {
				if err := sw.SetConcurrency(workers); err != nil {
					b.Fatal(err)
				}
			}
			for rec := 0; rec < records; rec++ {
				if err := sw.WriteTensor(ctx, c, x); err != nil {
					b.Fatal(err)
				}
			}
			if err := sw.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	secPerOp := res.T.Seconds() / float64(res.N)
	return streamBenchEntry{
		Spec:        spec,
		Workers:     workers,
		Records:     records,
		Shape:       shape,
		RecordsPerS: float64(records) / secPerOp,
		MBPerS:      float64(res.Bytes) * float64(res.N) / res.T.Seconds() / 1e6,
	}, nil
}

// runCodecBench measures the registry codecs and the stream engine,
// appending to the hostbench output file.
func runCodecBench(out *hostBenchFile, full bool, gomaxprocs int) error {
	// Each base spec is paired with its "+fse" staged variant so the
	// JSON artifact records what the shared entropy stage buys (or
	// costs) per family at the same measurement point. The "+huf"
	// rows measure the 4-stream Huffman backend against FSE on the
	// same inputs — lossless:bg=4 is the headline pair: its wide
	// mantissa-lane alphabets are exactly where huf's multi-symbol
	// table decode should pull ahead.
	for _, spec := range []string{
		"zfp:rate=8", "zfp:rate=8+fse",
		"jpegq:q=50", "jpegq:q=50+fse",
		"sz:eb=1e-3", "sz:eb=1e-3+fse",
		"dctc:cf=4", "dctc:cf=4+fse", "dctc:cf=4+huf",
		"lossless:bg=4", "lossless:bg=4+fse", "lossless:bg=4+huf",
	} {
		e, err := measureCodecCase(spec)
		if err != nil {
			return err
		}
		extra := ""
		if e.SpeedupVsSeed > 0 {
			extra = fmt.Sprintf("  %5.1fx vs seed", e.SpeedupVsSeed)
		}
		fmt.Printf("%-44s %12.0f ns/op %10.1f MB/s %6d allocs/op  ratio %.2f%s\n",
			"codec/roundtrip/"+e.Spec, e.NsPerOp, e.MBPerS, e.AllocsPerOp, e.Ratio, extra)
		out.Codecs = append(out.Codecs, e)
	}

	// Stream matrix: 1 worker (serial), 4, and the machine width. On a
	// single-core host these coincide in effect; the matrix still
	// records what the engine does at each setting.
	records, shape := 16, []int{4, 3, 64, 64}
	if !full {
		records = 4
	}
	seen := map[int]bool{}
	for _, w := range []int{1, 4, gomaxprocs} {
		if w < 1 || seen[w] {
			continue
		}
		seen[w] = true
		e, err := measureStreamCase("zfp:rate=8", w, records, shape)
		if err != nil {
			return err
		}
		fmt.Printf("%-44s %12.1f rec/s  %10.1f MB/s\n",
			fmt.Sprintf("stream/compress/%s/workers=%d", e.Spec, e.Workers), e.RecordsPerS, e.MBPerS)
		out.Stream = append(out.Stream, e)
	}
	return nil
}
