package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/cpufeat"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Host-kernel benchmark mode: measures the fast separable DCT kernel
// against the dense fused-matmul reference on this machine's CPU and
// writes the results as machine-readable BENCH_<name>.json, so CI and
// future sessions can diff throughput regressions numerically instead
// of eyeballing table output.

type hostBenchEntry struct {
	Name        string  `json:"name"`
	Config      string  `json:"config"`
	N           int     `json:"n"`
	Batch       int     `json:"batch"`
	Channels    int     `json:"channels"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type hostBenchFile struct {
	Name                string             `json:"name"`
	GOOS                string             `json:"goos"`
	GOARCH              string             `json:"goarch"`
	GOMAXPROCS          int                `json:"gomaxprocs"`
	CPUFeatures         string             `json:"cpu_features,omitempty"`
	RoundTrip512Speedup float64            `json:"roundtrip512_speedup_vs_dense,omitempty"`
	Benchmarks          []hostBenchEntry   `json:"benchmarks"`
	Codecs              []codecBenchEntry  `json:"codecs,omitempty"`
	Stream              []streamBenchEntry `json:"stream,omitempty"`
	Seek                []seekBenchEntry   `json:"seek,omitempty"`
	// Telemetry is the delta of the process-wide metric registry over
	// the benchmark run (see internal/telemetry): per-spec codec call
	// counts and latency histograms, stream-engine counters, and
	// SIMD-dispatch counters, so the artifact records which paths the
	// numbers actually measured. Omitted when telemetry is disabled.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

type hostBenchCase struct {
	cfg       core.Config
	n, bd, ch int
	op        string // compress | decompress | roundtrip
	dense     bool
}

func (c hostBenchCase) label() string {
	path := "fast"
	if c.dense {
		path = "dense"
	}
	return fmt.Sprintf("%s/%s/%s/n=%d", c.op, path, c.cfg.String(), c.n)
}

// hostBenchCases is the measurement matrix. The quick subset (smoke
// runs in check.sh) keeps one fast/dense pair at n=64; the full set
// sweeps resolution and covers the SG and partial-serialization
// variants, including the 512×512 fast-vs-dense pair the speedup
// headline is computed from.
func hostBenchCases(full bool) []hostBenchCase {
	base := core.Config{ChopFactor: 4, Serialization: 1}
	ops := []string{"compress", "decompress", "roundtrip"}
	var cases []hostBenchCase
	add := func(cfg core.Config, n int, dense bool) {
		for _, op := range ops {
			cases = append(cases, hostBenchCase{cfg: cfg, n: n, bd: 1, ch: 3, op: op, dense: dense})
		}
	}
	if !full {
		add(base, 64, false)
		cases = append(cases, hostBenchCase{cfg: base, n: 64, bd: 1, ch: 3, op: "roundtrip", dense: true})
		return cases
	}
	for _, n := range []int{64, 256, 512} {
		add(base, n, false)
	}
	add(base, 512, true)
	add(core.Config{ChopFactor: 4, Mode: core.ModeSG, Serialization: 1}, 256, false)
	add(core.Config{ChopFactor: 4, Serialization: 2}, 256, false)
	return cases
}

func measureHostCase(c hostBenchCase) (hostBenchEntry, error) {
	comp, err := core.NewCompressor(c.cfg, c.n)
	if err != nil {
		return hostBenchEntry{}, fmt.Errorf("hostbench %s: %w", c.label(), err)
	}
	r := tensor.NewRNG(1)
	x := r.Uniform(0, 1, c.bd, c.ch, c.n, c.n)
	dst := comp.NewCompressed(c.bd, c.ch)
	out := tensor.New(c.bd, c.ch, c.n, c.n)
	// Warm up pools so the fast path measures steady state.
	if err := comp.CompressInto(dst, x); err != nil {
		return hostBenchEntry{}, err
	}
	if err := comp.DecompressInto(out, dst); err != nil {
		return hostBenchEntry{}, err
	}
	denseY, err := comp.CompressDense(x)
	if err != nil {
		return hostBenchEntry{}, err
	}

	var body func(b *testing.B)
	switch {
	case !c.dense && c.op == "compress":
		body = func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := comp.CompressInto(dst, x); err != nil {
					b.Fatal(err)
				}
			}
		}
	case !c.dense && c.op == "decompress":
		body = func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := comp.DecompressInto(out, dst); err != nil {
					b.Fatal(err)
				}
			}
		}
	case !c.dense && c.op == "roundtrip":
		body = func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := comp.RoundTripInto(out, x); err != nil {
					b.Fatal(err)
				}
			}
		}
	case c.dense && c.op == "compress":
		body = func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := comp.CompressDense(x); err != nil {
					b.Fatal(err)
				}
			}
		}
	case c.dense && c.op == "decompress":
		body = func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := comp.DecompressDense(denseY); err != nil {
					b.Fatal(err)
				}
			}
		}
	default: // dense roundtrip
		body = func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := comp.RoundTripDense(x); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(x.SizeBytes()))
		body(b)
	})
	return hostBenchEntry{
		Name:        c.label(),
		Config:      c.cfg.String(),
		N:           c.n,
		Batch:       c.bd,
		Channels:    c.ch,
		Iterations:  res.N,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		MBPerS:      float64(res.Bytes) * float64(res.N) / res.T.Seconds() / 1e6,
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}, nil
}

// runHostBench measures every case and writes BENCH_<name>.json to dir.
func runHostBench(name, dir, benchtime string, full bool) error {
	// testing.Benchmark reads -test.benchtime; register the testing
	// flags (harmless after flag.Parse — they just take defaults) so the
	// measurement window is tunable without a test binary.
	testing.Init()
	if benchtime != "" {
		if err := flag.Set("test.benchtime", benchtime); err != nil {
			return fmt.Errorf("hostbench: bad -benchtime %q: %w", benchtime, err)
		}
	}
	out := hostBenchFile{
		Name:        name,
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		CPUFeatures: cpufeat.Summary(),
	}
	telemetryBefore := telemetry.Default().Snapshot()
	byName := map[string]hostBenchEntry{}
	for _, c := range hostBenchCases(full) {
		e, err := measureHostCase(c)
		if err != nil {
			return err
		}
		fmt.Printf("%-44s %12.0f ns/op %10.1f MB/s %6d allocs/op\n", e.Name, e.NsPerOp, e.MBPerS, e.AllocsPerOp)
		out.Benchmarks = append(out.Benchmarks, e)
		byName[e.Name] = e
	}
	if err := runCodecBench(&out, full, out.GOMAXPROCS); err != nil {
		return err
	}
	if err := runSeekBench(&out, full, out.GOMAXPROCS); err != nil {
		return err
	}
	fastKey := hostBenchCase{cfg: core.Config{ChopFactor: 4, Serialization: 1}, n: 512, op: "roundtrip"}.label()
	denseKey := hostBenchCase{cfg: core.Config{ChopFactor: 4, Serialization: 1}, n: 512, op: "roundtrip", dense: true}.label()
	if fast, ok := byName[fastKey]; ok {
		if dense, ok := byName[denseKey]; ok && fast.NsPerOp > 0 {
			out.RoundTrip512Speedup = dense.NsPerOp / fast.NsPerOp
			fmt.Printf("512x512 cf=4 roundtrip speedup vs dense: %.1fx\n", out.RoundTrip512Speedup)
		}
	}
	if telemetry.Enabled() {
		snap := telemetry.Default().Snapshot().Delta(telemetryBefore)
		out.Telemetry = &snap
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(out.Benchmarks))
	return nil
}
