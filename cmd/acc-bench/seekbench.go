package main

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/codec"
	"repro/internal/tensor"
)

// Seek benchmark extension to -hostbench: measures random access into
// ACCF v2 streams. Three modes on the same in-memory indexed stream:
//
//	scan_last  — sequential reader: Next/Skip past every record, then
//	             decode the final one (the only option pre-index)
//	seek_last  — OpenIndexedStream (footer load included) + DecodeAt
//	             on the final record
//	range      — parallel DecodeRange over the whole stream at each
//	             worker count
//
// scan_last vs seek_last is the headline the index footer buys; the
// range rows record what the bounded worker pool does with real codec
// work per record.

type seekBenchEntry struct {
	Spec        string  `json:"spec"`
	Mode        string  `json:"mode"` // scan_last | seek_last | range
	Workers     int     `json:"workers,omitempty"`
	Records     int     `json:"records"`
	Shape       []int   `json:"shape"`
	StreamBytes int     `json:"stream_bytes"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	RecordsPerS float64 `json:"records_per_s,omitempty"` // range mode only
}

// buildSeekStream writes the benchmark stream once: `records` copies of
// a deterministic tensor, index footer on.
func buildSeekStream(spec string, records int, shape []int) ([]byte, error) {
	c, err := codec.New(spec)
	if err != nil {
		return nil, fmt.Errorf("seekbench %s: %w", spec, err)
	}
	r := tensor.NewRNG(3)
	x := r.Uniform(0, 1, shape...)
	var buf bytes.Buffer
	sw := codec.NewStreamWriter(&buf)
	if err := sw.SetIndex(true); err != nil {
		return nil, err
	}
	ctx := context.Background()
	for i := 0; i < records; i++ {
		if err := sw.WriteTensor(ctx, c, x); err != nil {
			return nil, err
		}
	}
	if err := sw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// measureSeekCase benchmarks one access mode over a prebuilt stream.
// Every op includes the open (NewStreamReader or OpenIndexedStream), so
// scan_last and seek_last compare the full cost of "read the last
// record of this file".
func measureSeekCase(data []byte, spec, mode string, workers, records int, shape []int) (seekBenchEntry, error) {
	ctx := context.Background()
	var body func(b *testing.B)
	switch mode {
	case "scan_last":
		body = func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sr, err := codec.NewStreamReader(bytes.NewReader(data))
				if err != nil {
					b.Fatal(err)
				}
				for rec := 0; rec < records-1; rec++ {
					if _, err := sr.Next(); err != nil {
						b.Fatal(err)
					}
					if err := sr.Skip(); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := sr.Next(); err != nil {
					b.Fatal(err)
				}
				if _, err := sr.Decode(ctx); err != nil {
					b.Fatal(err)
				}
			}
		}
	case "seek_last":
		body = func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix, err := codec.OpenIndexedStream(bytes.NewReader(data), int64(len(data)))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ix.DecodeAt(ctx, records-1); err != nil {
					b.Fatal(err)
				}
			}
		}
	case "range":
		body = func(b *testing.B) {
			ix, err := codec.OpenIndexedStream(bytes.NewReader(data), int64(len(data)))
			if err != nil {
				b.Fatal(err)
			}
			if err := ix.SetConcurrency(workers); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ix.DecodeRange(ctx, 0, records); err != nil {
					b.Fatal(err)
				}
			}
		}
	default:
		return seekBenchEntry{}, fmt.Errorf("seekbench: unknown mode %q", mode)
	}
	res := testing.Benchmark(body)
	e := seekBenchEntry{
		Spec:        spec,
		Mode:        mode,
		Workers:     workers,
		Records:     records,
		Shape:       shape,
		StreamBytes: len(data),
		Iterations:  res.N,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
	}
	if mode == "range" && res.T.Seconds() > 0 {
		e.RecordsPerS = float64(records*res.N) / res.T.Seconds()
	}
	return e, nil
}

// runSeekBench measures the seek matrix, appending to the hostbench
// output file.
func runSeekBench(out *hostBenchFile, full bool, gomaxprocs int) error {
	const spec = "sz:eb=1e-3"
	records, shape := 64, []int{1, 3, 64, 64}
	if !full {
		records = 12
	}
	data, err := buildSeekStream(spec, records, shape)
	if err != nil {
		return err
	}
	print := func(e seekBenchEntry) {
		label := fmt.Sprintf("seek/%s/%s", e.Mode, e.Spec)
		if e.Mode == "range" {
			label += fmt.Sprintf("/workers=%d", e.Workers)
		}
		extra := ""
		if e.RecordsPerS > 0 {
			extra = fmt.Sprintf("  %10.1f rec/s", e.RecordsPerS)
		}
		fmt.Printf("%-44s %12.0f ns/op%s\n", label, e.NsPerOp, extra)
	}
	for _, mode := range []string{"scan_last", "seek_last"} {
		e, err := measureSeekCase(data, spec, mode, 0, records, shape)
		if err != nil {
			return err
		}
		print(e)
		out.Seek = append(out.Seek, e)
	}
	seen := map[int]bool{}
	for _, w := range []int{1, 4, gomaxprocs} {
		if w < 1 || seen[w] {
			continue
		}
		seen[w] = true
		e, err := measureSeekCase(data, spec, "range", w, records, shape)
		if err != nil {
			return err
		}
		print(e)
		out.Seek = append(out.Seek, e)
	}
	return nil
}
