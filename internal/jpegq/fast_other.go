//go:build !amd64 || purego

package jpegq

// simdOn is constant-false without compiled kernels, so the dispatch
// branches (and the kernel stubs below) are eliminated at compile time.
const simdOn = false

// SIMDAvailable reports whether vectorized kernels are compiled in and
// usable on this CPU.
func SIMDAvailable() bool { return false }

// SetSIMD is the testing hook for forcing kernels on or off; without
// compiled kernels it is a no-op.
func SetSIMD(on bool) bool { return false }

func mm8AVX2(c, a, b *[64]float32) { panic("jpegq: no simd kernels") }

func levelShift8AVX2(dst *[64]float32, src *float32, stride int) { panic("jpegq: no simd kernels") }

func storeShift8AVX2(dst *float32, stride int, rec *[64]float32) { panic("jpegq: no simd kernels") }
