package jpegq

import "repro/internal/telemetry"

// SIMD-dispatch counters, ticked once per plane (not per 8×8 block) so
// the block loops stay free of atomics.
var (
	simdVectorCalls   = telemetry.NewCounter("simd.jpegq.vector_calls")
	simdPortableCalls = telemetry.NewCounter("simd.jpegq.portable_calls")
)

// countPlaneCall records which path a quantize/dequantize plane pass
// dispatches to.
func countPlaneCall() {
	if simdOn {
		simdVectorCalls.Inc()
	} else {
		simdPortableCalls.Inc()
	}
}
