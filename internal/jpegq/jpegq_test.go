package jpegq

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/dct"
	"repro/internal/tensor"
)

func TestScaleTableQualityDirection(t *testing.T) {
	// Lower quality ⇒ larger divisors everywhere.
	lo, err := ScaleTable(LuminanceTable(), 10)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := ScaleTable(LuminanceTable(), 90)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lo {
		if lo[i] < hi[i] {
			t.Fatalf("entry %d: q10 divisor %d < q90 divisor %d", i, lo[i], hi[i])
		}
	}
}

func TestScaleTableQuality50IsBase(t *testing.T) {
	// At quality 50, S = 100: the table is unchanged.
	got, err := ScaleTable(LuminanceTable(), 50)
	if err != nil {
		t.Fatal(err)
	}
	base := LuminanceTable()
	for i := range got {
		if got[i] != base[i] {
			t.Fatalf("entry %d: %d != %d at q50", i, got[i], base[i])
		}
	}
}

func TestScaleTableValidation(t *testing.T) {
	for _, q := range []int{0, -5, 101} {
		if _, err := ScaleTable(LuminanceTable(), q); err == nil {
			t.Fatalf("quality %d must be rejected", q)
		}
	}
}

func TestScaleTableClamps(t *testing.T) {
	tab, err := ScaleTable(LuminanceTable(), 1) // S = 5000: everything saturates
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range tab {
		if v < 1 || v > 255 {
			t.Fatalf("entry %d = %d outside [1,255]", i, v)
		}
	}
}

func TestQuantizeDequantizeRoundTrip(t *testing.T) {
	r := tensor.NewRNG(1)
	d := r.Uniform(-200, 200, 8, 8)
	table := LuminanceTable()
	q := QuantizeBlock(d, table)
	back := DequantizeBlock(q, table)
	// Error bounded by half a quantization step per coefficient.
	for i := range d.Data() {
		if diff := float64(back.Data()[i] - d.Data()[i]); diff > float64(table[i])/2+1e-3 || diff < -float64(table[i])/2-1e-3 {
			t.Fatalf("coeff %d: error %g exceeds step %d", i, diff, table[i])
		}
	}
}

func TestQuantizeRoundsToNearest(t *testing.T) {
	d := tensor.New(8, 8)
	d.Set2(25, 0, 0) // divisor 16 → 25/16 = 1.5625 → 2
	d.Set2(-25, 0, 1)
	q := QuantizeBlock(d, LuminanceTable())
	if q[0] != 2 {
		t.Fatalf("quantize(25/16) = %d, want 2", q[0])
	}
	if q[1] != -2 { // divisor 11 → −25/11 ≈ −2.27 → −2
		t.Fatalf("quantize(-25/11) = %d, want -2", q[1])
	}
}

func TestNonzeroHeatmapsShape(t *testing.T) {
	gen := datagen.NewClassify(3, 32, 10)
	imgs, _ := gen.Batch(20)
	maps, err := NonzeroHeatmaps(imgs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) != 3 {
		t.Fatalf("got %d heatmaps, want one per channel", len(maps))
	}
	for _, h := range maps {
		if h.Blocks != 20*16 {
			t.Fatalf("channel %d counted %d blocks, want 320", h.Channel, h.Blocks)
		}
		for i := range h.Frac {
			for j := range h.Frac[i] {
				if h.Frac[i][j] < 0 || h.Frac[i][j] > 1 {
					t.Fatalf("fraction out of range: %g", h.Frac[i][j])
				}
			}
		}
	}
}

func TestHeatmapFig3Structure(t *testing.T) {
	// The Fig. 3 observations this reproduction relies on:
	//  1. the DC coefficient is almost always nonzero,
	//  2. nonzero frequency decays toward high-frequency corners,
	//  3. lower quality factor produces fewer nonzeros overall.
	gen := datagen.NewClassify(5, 32, 10)
	imgs, _ := gen.Batch(50)
	lowQ, err := NonzeroHeatmaps(imgs, 10)
	if err != nil {
		t.Fatal(err)
	}
	highQ, err := NonzeroHeatmaps(imgs, 90)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		if highQ[c].Frac[0][0] < 0.9 {
			t.Errorf("channel %d: DC nonzero fraction %g < 0.9 at q90", c, highQ[c].Frac[0][0])
		}
		if highQ[c].Frac[7][7] > highQ[c].Frac[0][0] {
			t.Errorf("channel %d: corner more active than DC", c)
		}
		var lowSum, highSum float64
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				lowSum += lowQ[c].Frac[i][j]
				highSum += highQ[c].Frac[i][j]
			}
		}
		if lowSum >= highSum {
			t.Errorf("channel %d: q10 has more nonzeros (%g) than q90 (%g)", c, lowSum, highSum)
		}
	}
}

func TestHeatmapUpperLeftDominance(t *testing.T) {
	// Chop's premise: the upper-left CF×CF corner holds most of the
	// nonzero mass. Compare 4×4 corner activity against the rest.
	gen := datagen.NewClassify(7, 32, 10)
	imgs, _ := gen.Batch(30)
	maps, err := NonzeroHeatmaps(imgs, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range maps {
		var corner, rest float64
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				if i < 4 && j < 4 {
					corner += h.Frac[i][j]
				} else {
					rest += h.Frac[i][j]
				}
			}
		}
		// 16 corner cells vs 48 outer cells: per-cell average must be
		// higher in the corner.
		if corner/16 <= rest/48 {
			t.Errorf("channel %d: corner density %g not above outer %g", h.Channel, corner/16, rest/48)
		}
	}
}

func TestNonzeroHeatmapsValidation(t *testing.T) {
	if _, err := NonzeroHeatmaps(tensor.New(2, 3, 30, 30), 50); err == nil {
		t.Fatal("non-multiple-of-8 resolution must be rejected")
	}
	if _, err := NonzeroHeatmaps(tensor.New(8, 8), 50); err == nil {
		t.Fatal("2-D input must be rejected")
	}
	if _, err := NonzeroHeatmaps(tensor.New(1, 1, 8, 8), 0); err == nil {
		t.Fatal("quality 0 must be rejected")
	}
}

func TestQuantizationCreatesZigzagSparsity(t *testing.T) {
	// After aggressive quantization, the zigzag tail should be mostly
	// zero — the property VLE exploits and chop approximates.
	gen := datagen.NewClassify(9, 32, 10)
	imgs, _ := gen.Batch(5)
	table, err := ScaleTable(LuminanceTable(), 10)
	if err != nil {
		t.Fatal(err)
	}
	order := dct.ZigZag(8)
	block := tensor.New(8, 8)
	tailNonzero, tailTotal := 0, 0
	for s := 0; s < 5; s++ {
		for bi := 0; bi < 32; bi += 8 {
			for bj := 0; bj < 32; bj += 8 {
				for i := 0; i < 8; i++ {
					for j := 0; j < 8; j++ {
						block.Set2(imgs.At4(s, 0, bi+i, bj+j)*255-128, i, j)
					}
				}
				q := QuantizeBlock(dct.Apply2D(block), table)
				for _, ix := range order[32:] {
					tailTotal++
					if q[ix] != 0 {
						tailNonzero++
					}
				}
			}
		}
	}
	if frac := float64(tailNonzero) / float64(tailTotal); frac > 0.25 {
		t.Fatalf("zigzag tail nonzero fraction %g too high at q10", frac)
	}
}
