package jpegq

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

func TestCodecValidation(t *testing.T) {
	if _, err := NewCodec(0); err == nil {
		t.Fatal("quality 0 must be rejected")
	}
	if _, err := NewCodec(101); err == nil {
		t.Fatal("quality 101 must be rejected")
	}
	c, err := NewCodec(50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compress(tensor.New(8, 8)); err == nil {
		t.Fatal("2-D input must be rejected")
	}
	if _, err := c.Compress(tensor.New(1, 1, 12, 12)); err == nil {
		t.Fatal("non-multiple-of-8 must be rejected")
	}
}

func TestCodecRoundTripQuality(t *testing.T) {
	gen := datagen.NewClassify(1, 32, 10)
	imgs, _ := gen.Batch(4)
	var prevPSNR, prevRatio float64
	prevRatio = 1e9
	for _, q := range []int{10, 50, 90} {
		c, err := NewCodec(q)
		if err != nil {
			t.Fatal(err)
		}
		out, bytes, err := c.RoundTrip(imgs)
		if err != nil {
			t.Fatal(err)
		}
		if !out.SameShape(imgs) {
			t.Fatalf("shape %v", out.Shape())
		}
		p := metrics.PSNR(imgs, out)
		ratio := float64(imgs.SizeBytes()) / float64(bytes)
		if p < prevPSNR {
			t.Fatalf("q=%d: PSNR %g below lower quality's %g", q, p, prevPSNR)
		}
		if ratio > prevRatio {
			t.Fatalf("q=%d: ratio %g above lower quality's %g", q, ratio, prevRatio)
		}
		prevPSNR, prevRatio = p, ratio
	}
	if prevPSNR < 25 {
		t.Fatalf("q=90 PSNR %g too low", prevPSNR)
	}
}

func TestCodecBeatsChopOnRatio(t *testing.T) {
	// The VLE stage that the accelerators cannot run buys JPEG real
	// compression: at moderate quality it should outcompress CF=4 chop
	// (CR 4) on the same images — the §3.2 trade-off quantified.
	gen := datagen.NewClassify(3, 32, 10)
	imgs, _ := gen.Batch(8)
	c, err := NewCodec(35)
	if err != nil {
		t.Fatal(err)
	}
	_, bytes, err := c.RoundTrip(imgs)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(imgs.SizeBytes()) / float64(bytes)
	if ratio < 4 {
		t.Fatalf("JPEG q=35 ratio %g does not beat chop's fixed 4", ratio)
	}
}

func TestCodecHeaderRejectsGarbage(t *testing.T) {
	if _, err := Decompress([]byte{1, 2, 3}); err == nil {
		t.Fatal("short stream must fail")
	}
	if _, err := Decompress(make([]byte, 64)); err == nil {
		t.Fatal("zero magic must fail")
	}
	// Valid header, truncated body.
	gen := datagen.NewClassify(2, 16, 10)
	imgs, _ := gen.Batch(1)
	c, err := NewCodec(50)
	if err != nil {
		t.Fatal(err)
	}
	data, err := c.Compress(imgs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(data[:30]); err == nil {
		t.Fatal("truncated body must fail")
	}
}

func TestPSNRAtQuality(t *testing.T) {
	gen := datagen.NewClassify(5, 16, 10)
	imgs, _ := gen.Batch(2)
	p10, r10, err := PSNRAtQuality(imgs, 10)
	if err != nil {
		t.Fatal(err)
	}
	p90, r90, err := PSNRAtQuality(imgs, 90)
	if err != nil {
		t.Fatal(err)
	}
	if p90 <= p10 || r90 >= r10 {
		t.Fatalf("q10 (%.1f dB, %.1fx) vs q90 (%.1f dB, %.1fx) ordering wrong", p10, r10, p90, r90)
	}
}

func TestCodecGrayscale(t *testing.T) {
	// Single-channel input uses the luminance table only.
	gen := datagen.NewDenoise(2, 16)
	noisy, _ := gen.Batch(2)
	c, err := NewCodec(75)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := c.RoundTrip(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.PSNR(noisy, out) < 25 {
		t.Fatalf("grayscale PSNR %g", metrics.PSNR(noisy, out))
	}
}
