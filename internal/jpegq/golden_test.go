package jpegq

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/tensor"
)

// goldenInput regenerates the fixed tensor the golden streams were
// recorded from (same generator as the capture tool).
func goldenInput(shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	d := x.Data()
	for i := range d {
		d[i] = float32((int64(i)*2654435761)%1000) / 999
	}
	return x
}

// TestGoldenStreams holds the cached-DCT flat-coefficient pipeline to
// the exact bytes the tensor-per-block implementation produced — the
// 8×8 kernel, rounding, zigzag and entropy stream must all be
// bit-identical — and requires the recorded bytes to reconstruct.
func TestGoldenStreams(t *testing.T) {
	raw, err := os.ReadFile("testdata/golden_v1.json")
	if err != nil {
		t.Fatal(err)
	}
	var cases []struct {
		Name  string `json:"name"`
		Shape []int  `json:"shape"`
		Hex   string `json:"hex"`
	}
	if err := json.Unmarshal(raw, &cases); err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("empty golden corpus")
	}
	quality := map[string]int{"q=50": 50, "q=90": 90, "q=10": 10}
	for _, tc := range cases {
		t.Run(tc.Name, func(t *testing.T) {
			q, ok := quality[tc.Name[:4]]
			if !ok {
				t.Fatalf("no quality for golden case %q", tc.Name)
			}
			c, err := NewCodec(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := hex.DecodeString(tc.Hex)
			if err != nil {
				t.Fatal(err)
			}
			x := goldenInput(tc.Shape...)
			var got []byte
			switch len(tc.Shape) {
			case 4: // whole-batch Compress
				got, err = c.Compress(x)
				if err != nil {
					t.Fatal(err)
				}
				back, err := Decompress(want)
				if err != nil {
					t.Fatal(err)
				}
				if back.Len() != x.Len() {
					t.Fatalf("decoded %d elements, want %d", back.Len(), x.Len())
				}
			case 2: // per-plane registry entry point (channel 1)
				got, err = c.EncodePlane(x, 1)
				if err != nil {
					t.Fatal(err)
				}
				out := tensor.New(tc.Shape...)
				if err := c.DecodePlane(want, out, 1); err != nil {
					t.Fatal(err)
				}
			default:
				t.Fatalf("unexpected golden shape %v", tc.Shape)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("compressed bytes diverge from recorded stream (len %d vs %d)", len(got), len(want))
			}
		})
	}
}

// TestRoundTripPlaneMatchesDecodePlane pins the pooled in-place round
// trip to the serialize-and-decode path: same bytes, same
// reconstruction, zero steady-state allocations.
func TestRoundTripPlaneMatchesDecodePlane(t *testing.T) {
	const h, w = 16, 24
	c, err := NewCodec(65)
	if err != nil {
		t.Fatal(err)
	}
	x := goldenInput(h, w)
	enc, err := c.EncodePlane(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref := tensor.New(h, w)
	if err := c.DecodePlane(enc, ref, 1); err != nil {
		t.Fatal(err)
	}
	in := goldenInput(h, w).Data()
	out := make([]float32, h*w)
	size, err := c.RoundTripPlane(out, in, h, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if size != len(enc) {
		t.Fatalf("RoundTripPlane size %d, EncodePlane size %d", size, len(enc))
	}
	for i, v := range ref.Data() {
		if out[i] != v {
			t.Fatalf("position %d: RoundTripPlane %g, DecodePlane %g", i, out[i], v)
		}
	}
	if raceEnabled {
		return // race instrumentation allocates; alloc counts only hold without -race
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := c.RoundTripPlane(out, in, h, w, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("RoundTripPlane allocates %v/op, want 0", allocs)
	}
}
