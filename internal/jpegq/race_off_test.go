//go:build !race

package jpegq

const raceEnabled = false
