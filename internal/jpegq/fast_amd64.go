//go:build amd64 && !purego

package jpegq

import "repro/internal/cpufeat"

// mm8AVX2 is the dispatched 8×8 matmul: bit-identical to mm8 (same
// accumulation order, zero-row skip, no FMA), vectorized across the 8
// output columns.
//
//go:noescape
func mm8AVX2(c, a, b *[64]float32)

// levelShift8AVX2 loads one 8×8 block from a plane at the given row
// stride and applies the v*255-128 level shift, matching the portable
// fill loop bit-for-bit.
//
//go:noescape
func levelShift8AVX2(dst *[64]float32, src *float32, stride int)

// storeShift8AVX2 writes one reconstructed 8×8 block back to a plane at
// the given row stride, applying (rec+128)/255.
//
//go:noescape
func storeShift8AVX2(dst *float32, stride int, rec *[64]float32)

// simdOn guards the direct calls to the dispatched kernels. A direct
// (not function-pointer) call is required so the //go:noescape contract
// keeps the callers' stack blocks off the heap.
var simdOn = cpufeat.Have().AVX2

// SIMDAvailable reports whether vectorized kernels are compiled in and
// usable on this CPU (after environment overrides).
func SIMDAvailable() bool { return cpufeat.Have().AVX2 }

// SetSIMD forces the vector kernels on or off and reports the previous
// state. A testing hook — not safe concurrently with running planes.
func SetSIMD(on bool) bool {
	prev := simdOn
	simdOn = on && SIMDAvailable()
	return prev
}
