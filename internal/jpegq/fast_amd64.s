//go:build amd64 && !purego

#include "textflag.h"

// AVX2 kernels for the jpegq plane engine. Each vector lane replays the
// portable scalar op sequence exactly (same order, no FMA), so the
// quantized coefficient stream is byte-identical in both modes.

DATA f255<>+0(SB)/4, $0x437f0000 // 255.0
GLOBL f255<>(SB), RODATA|NOPTR, $4
DATA f128<>+0(SB)/4, $0x43000000 // 128.0
GLOBL f128<>(SB), RODATA|NOPTR, $4

// func mm8AVX2(c, a, b *[64]float32)
//
// c = a·b with the serial i-k-j loop of the portable mm8: per output
// row, eight lane accumulators start at +0 and accumulate
// av*b[p*8+j] in ascending p order, skipping rows where av == 0
// (NaN av is kept, as in Go).
TEXT ·mm8AVX2(SB), NOSPLIT, $0-24
	MOVQ c+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	VXORPS X4, X4, X4
	VMOVUPS 0(DX), Y8
	VMOVUPS 32(DX), Y9
	VMOVUPS 64(DX), Y10
	VMOVUPS 96(DX), Y11
	VMOVUPS 128(DX), Y12
	VMOVUPS 160(DX), Y13
	VMOVUPS 192(DX), Y14
	VMOVUPS 224(DX), Y15
	MOVQ $8, CX

mm8row:
	VXORPS Y0, Y0, Y0
	VMOVSS   0(SI), X1
	VUCOMISS X4, X1
	JP       mm8p0
	JE       mm8s0

mm8p0:
	VBROADCASTSS X1, Y1
	VMULPS       Y8, Y1, Y1
	VADDPS       Y1, Y0, Y0

mm8s0:
	VMOVSS   4(SI), X1
	VUCOMISS X4, X1
	JP       mm8p1
	JE       mm8s1

mm8p1:
	VBROADCASTSS X1, Y1
	VMULPS       Y9, Y1, Y1
	VADDPS       Y1, Y0, Y0

mm8s1:
	VMOVSS   8(SI), X1
	VUCOMISS X4, X1
	JP       mm8p2
	JE       mm8s2

mm8p2:
	VBROADCASTSS X1, Y1
	VMULPS       Y10, Y1, Y1
	VADDPS       Y1, Y0, Y0

mm8s2:
	VMOVSS   12(SI), X1
	VUCOMISS X4, X1
	JP       mm8p3
	JE       mm8s3

mm8p3:
	VBROADCASTSS X1, Y1
	VMULPS       Y11, Y1, Y1
	VADDPS       Y1, Y0, Y0

mm8s3:
	VMOVSS   16(SI), X1
	VUCOMISS X4, X1
	JP       mm8p4
	JE       mm8s4

mm8p4:
	VBROADCASTSS X1, Y1
	VMULPS       Y12, Y1, Y1
	VADDPS       Y1, Y0, Y0

mm8s4:
	VMOVSS   20(SI), X1
	VUCOMISS X4, X1
	JP       mm8p5
	JE       mm8s5

mm8p5:
	VBROADCASTSS X1, Y1
	VMULPS       Y13, Y1, Y1
	VADDPS       Y1, Y0, Y0

mm8s5:
	VMOVSS   24(SI), X1
	VUCOMISS X4, X1
	JP       mm8p6
	JE       mm8s6

mm8p6:
	VBROADCASTSS X1, Y1
	VMULPS       Y14, Y1, Y1
	VADDPS       Y1, Y0, Y0

mm8s6:
	VMOVSS   28(SI), X1
	VUCOMISS X4, X1
	JP       mm8p7
	JE       mm8s7

mm8p7:
	VBROADCASTSS X1, Y1
	VMULPS       Y15, Y1, Y1
	VADDPS       Y1, Y0, Y0

mm8s7:
	VMOVUPS Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     mm8row
	VZEROUPPER
	RET

// func levelShift8AVX2(dst *[64]float32, src *float32, stride int)
//
// dst[i*8+j] = src[i*stride+j]*255 - 128 for one 8x8 block.
TEXT ·levelShift8AVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ stride+16(FP), DX
	SHLQ $2, DX
	VBROADCASTSS f255<>(SB), Y2
	VBROADCASTSS f128<>(SB), Y3
	VMOVUPS (SI), Y0
	VMULPS  Y2, Y0, Y0
	VSUBPS  Y3, Y0, Y0
	VMOVUPS Y0, 0(DI)
	ADDQ    DX, SI
	VMOVUPS (SI), Y0
	VMULPS  Y2, Y0, Y0
	VSUBPS  Y3, Y0, Y0
	VMOVUPS Y0, 32(DI)
	ADDQ    DX, SI
	VMOVUPS (SI), Y0
	VMULPS  Y2, Y0, Y0
	VSUBPS  Y3, Y0, Y0
	VMOVUPS Y0, 64(DI)
	ADDQ    DX, SI
	VMOVUPS (SI), Y0
	VMULPS  Y2, Y0, Y0
	VSUBPS  Y3, Y0, Y0
	VMOVUPS Y0, 96(DI)
	ADDQ    DX, SI
	VMOVUPS (SI), Y0
	VMULPS  Y2, Y0, Y0
	VSUBPS  Y3, Y0, Y0
	VMOVUPS Y0, 128(DI)
	ADDQ    DX, SI
	VMOVUPS (SI), Y0
	VMULPS  Y2, Y0, Y0
	VSUBPS  Y3, Y0, Y0
	VMOVUPS Y0, 160(DI)
	ADDQ    DX, SI
	VMOVUPS (SI), Y0
	VMULPS  Y2, Y0, Y0
	VSUBPS  Y3, Y0, Y0
	VMOVUPS Y0, 192(DI)
	ADDQ    DX, SI
	VMOVUPS (SI), Y0
	VMULPS  Y2, Y0, Y0
	VSUBPS  Y3, Y0, Y0
	VMOVUPS Y0, 224(DI)
	VZEROUPPER
	RET

// func storeShift8AVX2(dst *float32, stride int, rec *[64]float32)
//
// dst[i*stride+j] = (rec[i*8+j] + 128) / 255 for one 8x8 block.
TEXT ·storeShift8AVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ stride+8(FP), DX
	MOVQ rec+16(FP), SI
	SHLQ $2, DX
	VBROADCASTSS f255<>(SB), Y2
	VBROADCASTSS f128<>(SB), Y3
	VMOVUPS 0(SI), Y0
	VADDPS  Y3, Y0, Y0
	VDIVPS  Y2, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    DX, DI
	VMOVUPS 32(SI), Y0
	VADDPS  Y3, Y0, Y0
	VDIVPS  Y2, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    DX, DI
	VMOVUPS 64(SI), Y0
	VADDPS  Y3, Y0, Y0
	VDIVPS  Y2, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    DX, DI
	VMOVUPS 96(SI), Y0
	VADDPS  Y3, Y0, Y0
	VDIVPS  Y2, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    DX, DI
	VMOVUPS 128(SI), Y0
	VADDPS  Y3, Y0, Y0
	VDIVPS  Y2, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    DX, DI
	VMOVUPS 160(SI), Y0
	VADDPS  Y3, Y0, Y0
	VDIVPS  Y2, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    DX, DI
	VMOVUPS 192(SI), Y0
	VADDPS  Y3, Y0, Y0
	VDIVPS  Y2, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    DX, DI
	VMOVUPS 224(SI), Y0
	VADDPS  Y3, Y0, Y0
	VDIVPS  Y2, Y0, Y0
	VMOVUPS Y0, (DI)
	VZEROUPPER
	RET
