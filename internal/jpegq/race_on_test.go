//go:build race

package jpegq

// raceEnabled reports whether the race detector is compiled in; the
// zero-allocation assertions skip under race, where the instrumentation
// itself allocates.
const raceEnabled = true
