package jpegq

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/tensor"
	"repro/internal/vle"
)

// Codec assembles the complete JPEG-style pipeline from this
// repository's parts — level shift, 8×8 DCT-II, quality-scaled
// quantization, zigzag, RLE+Huffman — as the host baseline behind the
// paper's related work: Dodge & Karam [15] study exactly this codec's
// quality factor against model accuracy, and §3.2 explains why its
// encoding stage cannot run on the accelerators.
//
// Input batches are [BD, C, n, n] with pixel values in [0,1]; channel 0
// quantizes with the luminance table, the rest with chrominance
// (matching NonzeroHeatmaps). n must be a multiple of 8.
type Codec struct {
	// Quality is the JPEG quality factor in [1,100].
	Quality int
}

// NewCodec returns a codec at the given quality factor.
func NewCodec(quality int) (*Codec, error) {
	if quality < 1 || quality > 100 {
		return nil, fmt.Errorf("jpegq: quality %d outside [1,100]", quality)
	}
	return &Codec{Quality: quality}, nil
}

const codecMagic = 0x4A504751 // "JPGQ"

// Compress encodes the batch, returning the byte stream.
func (c *Codec) Compress(x *tensor.Tensor) ([]byte, error) {
	if x.Dims() != 4 {
		return nil, fmt.Errorf("jpegq: need [BD,C,n,n], got %v", x.Shape())
	}
	bd, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if h%BlockSize != 0 || w%BlockSize != 0 {
		return nil, fmt.Errorf("jpegq: %dx%d not a multiple of %d", h, w, BlockSize)
	}
	tables, err := c.tables(ch)
	if err != nil {
		return nil, err
	}
	blocksPerPlane := (h / BlockSize) * (w / BlockSize)
	coeffs, coeffsBox := getCoeffs(bd * ch * blocksPerPlane * 64)
	defer putCoeffs(coeffsBox)
	for s := 0; s < bd; s++ {
		for cc := 0; cc < ch; cc++ {
			plane := x.Data()[(s*ch+cc)*h*w : (s*ch+cc+1)*h*w]
			lo := (s*ch + cc) * blocksPerPlane * 64
			quantizePlane(coeffs[lo:lo+blocksPerPlane*64], plane, h, w, &tables[cc])
		}
	}
	body, err := vle.AppendFlat(nil, coeffs, 64)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 24, 24+len(body))
	binary.LittleEndian.PutUint32(out[0:], codecMagic)
	binary.LittleEndian.PutUint32(out[4:], uint32(c.Quality))
	binary.LittleEndian.PutUint32(out[8:], uint32(bd))
	binary.LittleEndian.PutUint32(out[12:], uint32(ch))
	binary.LittleEndian.PutUint32(out[16:], uint32(h))
	binary.LittleEndian.PutUint32(out[20:], uint32(w))
	return append(out, body...), nil
}

// Decompress reconstructs a batch from Compress output.
func Decompress(data []byte) (*tensor.Tensor, error) {
	if len(data) < 24 {
		return nil, fmt.Errorf("jpegq: truncated header")
	}
	if binary.LittleEndian.Uint32(data[0:]) != codecMagic {
		return nil, fmt.Errorf("jpegq: bad magic")
	}
	quality := int(binary.LittleEndian.Uint32(data[4:]))
	bd := int(binary.LittleEndian.Uint32(data[8:]))
	ch := int(binary.LittleEndian.Uint32(data[12:]))
	h := int(binary.LittleEndian.Uint32(data[16:]))
	w := int(binary.LittleEndian.Uint32(data[20:]))
	const maxDim = 1 << 14
	if quality < 1 || quality > 100 || bd < 1 || ch < 1 || h < 1 || w < 1 ||
		bd > maxDim || ch > maxDim || h > maxDim || w > maxDim || h%BlockSize != 0 || w%BlockSize != 0 {
		return nil, fmt.Errorf("jpegq: implausible header (q=%d %dx%dx%dx%d)", quality, bd, ch, h, w)
	}
	c := &Codec{Quality: quality}
	tables, err := c.tables(ch)
	if err != nil {
		return nil, err
	}
	blocksPerPlane := (h / BlockSize) * (w / BlockSize)
	coeffs, coeffsBox := getCoeffs(bd * ch * blocksPerPlane * 64)
	defer putCoeffs(coeffsBox)
	if err := vle.DecodeFlatInto(coeffs, data[24:], 64); err != nil {
		return nil, err
	}
	out := tensor.New(bd, ch, h, w)
	for s := 0; s < bd; s++ {
		for cc := 0; cc < ch; cc++ {
			plane := out.Data()[(s*ch+cc)*h*w : (s*ch+cc+1)*h*w]
			lo := (s*ch + cc) * blocksPerPlane * 64
			dequantizePlane(plane, coeffs[lo:lo+blocksPerPlane*64], h, w, &tables[cc])
		}
	}
	return out, nil
}

// TableFor returns the quality-scaled quantization table for a channel
// index: channel 0 quantizes with luminance, the rest with chrominance.
func (c *Codec) TableFor(channel int) ([64]int, error) {
	base := luminance
	if channel > 0 {
		base = chrominance
	}
	return ScaleTable(base, c.Quality)
}

// EncodePlane encodes one h×w plane (values in [0,1], dims multiples of
// 8) as a standalone RLE+Huffman stream quantized with the table for
// the given channel index — the plane-parallel entry point the codec
// registry's pipeline uses.
func (c *Codec) EncodePlane(plane *tensor.Tensor, channel int) ([]byte, error) {
	if plane.Dims() != 2 {
		return nil, fmt.Errorf("jpegq: EncodePlane needs a 2-D plane, got %v", plane.Shape())
	}
	h, w := plane.Dim(0), plane.Dim(1)
	if h%BlockSize != 0 || w%BlockSize != 0 {
		return nil, fmt.Errorf("jpegq: plane %dx%d not a multiple of %d", h, w, BlockSize)
	}
	table, err := c.TableFor(channel)
	if err != nil {
		return nil, err
	}
	coeffs, coeffsBox := getCoeffs((h / BlockSize) * (w / BlockSize) * 64)
	defer putCoeffs(coeffsBox)
	quantizePlane(coeffs, plane.Data(), h, w, &table)
	return vle.AppendFlat(nil, coeffs, 64)
}

// DecodePlane reconstructs one plane from an EncodePlane stream,
// writing into the caller's plane tensor.
func (c *Codec) DecodePlane(data []byte, plane *tensor.Tensor, channel int) error {
	if plane.Dims() != 2 {
		return fmt.Errorf("jpegq: DecodePlane needs a 2-D plane, got %v", plane.Shape())
	}
	h, w := plane.Dim(0), plane.Dim(1)
	if h%BlockSize != 0 || w%BlockSize != 0 {
		return fmt.Errorf("jpegq: plane %dx%d not a multiple of %d", h, w, BlockSize)
	}
	table, err := c.TableFor(channel)
	if err != nil {
		return err
	}
	coeffs, coeffsBox := getCoeffs((h / BlockSize) * (w / BlockSize) * 64)
	defer putCoeffs(coeffsBox)
	if err := vle.DecodeFlatInto(coeffs, data, 64); err != nil {
		return err
	}
	dequantizePlane(plane.Data(), coeffs, h, w, &table)
	return nil
}

// RoundTrip compresses and decompresses the batch, returning the
// reconstruction and compressed size.
func (c *Codec) RoundTrip(x *tensor.Tensor) (*tensor.Tensor, int, error) {
	data, err := c.Compress(x)
	if err != nil {
		return nil, 0, err
	}
	out, err := Decompress(data)
	if err != nil {
		return nil, 0, err
	}
	return out, len(data), nil
}

// tables builds per-channel quantization tables at the codec quality.
func (c *Codec) tables(channels int) ([][64]int, error) {
	out := make([][64]int, channels)
	for cc := range out {
		t, err := c.TableFor(cc)
		if err != nil {
			return nil, err
		}
		out[cc] = t
	}
	return out, nil
}

// PSNRAtQuality is a convenience for quality-sweep studies: compress at
// the given quality and report (PSNR, compression ratio).
func PSNRAtQuality(x *tensor.Tensor, quality int) (psnr, ratio float64, err error) {
	c, err := NewCodec(quality)
	if err != nil {
		return 0, 0, err
	}
	out, bytes, err := c.RoundTrip(x)
	if err != nil {
		return 0, 0, err
	}
	mse := 0.0
	xd, od := x.Data(), out.Data()
	for i := range xd {
		d := float64(xd[i]) - float64(od[i])
		mse += d * d
	}
	mse /= float64(len(xd))
	if mse == 0 {
		psnr = math.Inf(1)
	} else {
		psnr = -10 * math.Log10(mse)
	}
	return psnr, float64(x.SizeBytes()) / float64(bytes), nil
}
