package jpegq

import (
	"sync"

	"repro/internal/dct"
	"repro/internal/vle"
)

// This file is the allocation-free plane engine behind the codec: a
// cached 8×8 DCT pair that replays tensor.MatMul's serial kernel
// bit-for-bit (so quantized coefficients — and therefore the entropy
// stream — are byte-identical to the tensor-based pipeline it
// replaced), plus flat quantize/dequantize loops over pooled int32
// zigzag buffers.

var (
	// dctT is the 8×8 DCT-II matrix of dct.Transform(8) and dctTt its
	// transpose, both flattened row-major.
	dctT  [64]float32
	dctTt [64]float32
	// zzOrder is the zigzag traversal of an 8×8 block.
	zzOrder [64]int
)

func init() {
	t := dct.Transform(BlockSize).Data()
	copy(dctT[:], t)
	for i := 0; i < BlockSize; i++ {
		for j := 0; j < BlockSize; j++ {
			dctTt[j*BlockSize+i] = t[i*BlockSize+j]
		}
	}
	copy(zzOrder[:], dct.ZigZag(BlockSize))
}

// mm8 computes the 8×8 product c = a·b with exactly the loop the
// general matmul kernel runs for this size (serial i-k-j with the
// zero-row skip and float32 accumulation), so results match
// tensor.MatMul to the last bit.
func mm8(c, a, b *[64]float32) {
	for i := 0; i < BlockSize; i++ {
		ai := a[i*BlockSize : i*BlockSize+BlockSize : i*BlockSize+BlockSize]
		// Accumulate the output row in registers instead of memory: the
		// adds happen in the same p-ascending order (and keep the same
		// zero-row skip) as the general kernel, so every rounding step —
		// and therefore the quantized stream — is unchanged.
		var c0, c1, c2, c3, c4, c5, c6, c7 float32
		for p := 0; p < BlockSize; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*BlockSize : p*BlockSize+BlockSize : p*BlockSize+BlockSize]
			c0 += av * bp[0]
			c1 += av * bp[1]
			c2 += av * bp[2]
			c3 += av * bp[3]
			c4 += av * bp[4]
			c5 += av * bp[5]
			c6 += av * bp[6]
			c7 += av * bp[7]
		}
		ci := c[i*BlockSize : i*BlockSize+BlockSize : i*BlockSize+BlockSize]
		ci[0], ci[1], ci[2], ci[3] = c0, c1, c2, c3
		ci[4], ci[5], ci[6], ci[7] = c4, c5, c6, c7
	}
}

// forwardDCT8 computes dst = T·src·Tᵀ (the 2-D DCT-II), matching
// dct.Apply2D bit-for-bit.
func forwardDCT8(dst, src *[64]float32) {
	var tmp [64]float32
	if simdOn {
		mm8AVX2(&tmp, &dctT, src)
		mm8AVX2(dst, &tmp, &dctTt)
		return
	}
	mm8(&tmp, &dctT, src)
	mm8(dst, &tmp, &dctTt)
}

// inverseDCT8 computes dst = Tᵀ·src·T, matching dct.Invert2D.
func inverseDCT8(dst, src *[64]float32) {
	var tmp [64]float32
	if simdOn {
		mm8AVX2(&tmp, &dctTt, src)
		mm8AVX2(dst, &tmp, &dctT)
		return
	}
	mm8(&tmp, &dctTt, src)
	mm8(dst, &tmp, &dctT)
}

// quantizePlane runs the lossy half of the pipeline — level shift, 8×8
// DCT, quantization, zigzag — over one h×w plane (values in [0,1]),
// writing 64 coefficients per block into dst in block raster order.
// dst must have length (h/8)·(w/8)·64.
func quantizePlane(dst []int32, plane []float32, h, w int, table *[64]int) {
	countPlaneCall()
	var blk, d [64]float32
	k := 0
	for bi := 0; bi < h; bi += BlockSize {
		for bj := 0; bj < w; bj += BlockSize {
			if simdOn {
				levelShift8AVX2(&blk, &plane[bi*w+bj], w)
			} else {
				for i := 0; i < BlockSize; i++ {
					row := plane[(bi+i)*w+bj : (bi+i)*w+bj+BlockSize]
					for j, v := range row {
						blk[i*BlockSize+j] = v*255 - 128
					}
				}
			}
			forwardDCT8(&d, &blk)
			for z, ix := range zzOrder {
				q := float64(d[ix]) / float64(table[ix])
				if q >= 0 {
					dst[k+z] = int32(q + 0.5)
				} else {
					dst[k+z] = int32(q - 0.5)
				}
			}
			k += 64
		}
	}
}

// dequantizePlane inverts quantizePlane: src holds 64 zigzagged
// coefficients per block in block raster order.
func dequantizePlane(plane []float32, src []int32, h, w int, table *[64]int) {
	countPlaneCall()
	var d, rec [64]float32
	k := 0
	for bi := 0; bi < h; bi += BlockSize {
		for bj := 0; bj < w; bj += BlockSize {
			for z, ix := range zzOrder {
				d[ix] = float32(int(src[k+z]) * table[ix])
			}
			k += 64
			inverseDCT8(&rec, &d)
			if simdOn {
				storeShift8AVX2(&plane[bi*w+bj], w, &rec)
			} else {
				for i := 0; i < BlockSize; i++ {
					row := plane[(bi+i)*w+bj : (bi+i)*w+bj+BlockSize]
					for j := range row {
						row[j] = (rec[i*BlockSize+j] + 128) / 255
					}
				}
			}
		}
	}
}

// coeffPool recycles flat coefficient buffers across planes and calls.
var coeffPool = sync.Pool{New: func() any { return new([]int32) }}

// getCoeffs returns a coefficient buffer of length n with arbitrary
// contents — every caller overwrites all of it before reading — plus
// the pool box to hand back to putCoeffs (re-boxing the slice on Put
// would itself allocate).
func getCoeffs(n int) ([]int32, *[]int32) {
	bp := coeffPool.Get().(*[]int32)
	if cap(*bp) < n {
		*bp = make([]int32, n)
	}
	return (*bp)[:n], bp
}

func putCoeffs(bp *[]int32) { coeffPool.Put(bp) }

// encBufPool recycles entropy-stream buffers for RoundTripPlane, whose
// compressed bytes never escape.
var encBufPool = sync.Pool{New: func() any { return new([]byte) }}

// RoundTripPlane compresses one h×w plane (values in [0,1], dims
// multiples of 8) and reconstructs it into out, returning the
// compressed size in bytes. in and out may alias. All scratch —
// coefficients, entropy buffers, Huffman state — is pooled, so
// steady-state round trips allocate nothing.
func (c *Codec) RoundTripPlane(out, in []float32, h, w, channel int) (int, error) {
	table, err := c.TableFor(channel)
	if err != nil {
		return 0, err
	}
	coeffs, coeffsBox := getCoeffs((h / BlockSize) * (w / BlockSize) * 64)
	defer putCoeffs(coeffsBox)
	quantizePlane(coeffs, in, h, w, &table)
	bp := encBufPool.Get().(*[]byte)
	defer encBufPool.Put(bp)
	enc, err := vle.AppendFlat((*bp)[:0], coeffs, 64)
	if err != nil {
		return 0, err
	}
	*bp = enc
	if err := vle.DecodeFlatInto(coeffs, enc, 64); err != nil {
		return 0, err
	}
	dequantizePlane(out, coeffs, h, w, &table)
	return len(enc), nil
}
