package jpegq

import (
	"math"
	"math/rand"
	"testing"
)

// adversarialFloats mixes ordinary noise with float32 edge cases.
func adversarialFloats(r *rand.Rand, s []float32) {
	specials := []float32{
		0, float32(math.Copysign(0, -1)),
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
		math.SmallestNonzeroFloat32, math.MaxFloat32, -math.MaxFloat32, 1e-30,
	}
	for i := range s {
		if r.Intn(3) == 0 {
			s[i] = specials[r.Intn(len(specials))]
		} else {
			s[i] = float32(r.NormFloat64())
		}
	}
}

func isNaN32(b uint32) bool {
	return b&0x7f800000 == 0x7f800000 && b&0x007fffff != 0
}

func bitsEqual(t *testing.T, name string, want, got []float32) {
	t.Helper()
	for i := range want {
		if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
			t.Fatalf("%s: index %d portable %08x simd %08x",
				name, i, math.Float32bits(want[i]), math.Float32bits(got[i]))
		}
	}
}

// TestMM8SIMDEquivalence checks mm8AVX2 against the portable mm8
// bit-for-bit, including zero-skip rows and NaN/Inf propagation.
func TestMM8SIMDEquivalence(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no SIMD kernels on this platform")
	}
	defer SetSIMD(true)
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		var a, b, cp, cs [64]float32
		adversarialFloats(r, a[:])
		adversarialFloats(r, b[:])
		for i := range a {
			if r.Intn(4) == 0 {
				a[i] = 0
			}
		}
		mm8(&cp, &a, &b)
		mm8AVX2(&cs, &a, &b)
		// NaN payloads may differ between the two: the compiler's
		// register-spill choices make the portable add's operand order
		// (and so which NaN propagates) vary per lane. Downstream this
		// is unobservable — int32 conversion and comparisons are NaN-
		// payload-independent — so equivalence here is bits-equal with
		// any NaN matching any NaN. The plane-level test below stays
		// strictly bit-exact.
		for i := range cp {
			pb, sb := math.Float32bits(cp[i]), math.Float32bits(cs[i])
			if pb == sb {
				continue
			}
			if isNaN32(pb) && isNaN32(sb) {
				continue
			}
			t.Fatalf("mm8: index %d portable %08x simd %08x", i, pb, sb)
		}
	}
}

// TestPlaneSIMDEquivalence runs quantize/dequantize over full planes in
// both modes: coefficients must be identical and reconstructions
// bit-identical.
func TestPlaneSIMDEquivalence(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no SIMD kernels on this platform")
	}
	defer SetSIMD(true)
	r := rand.New(rand.NewSource(5))
	c, err := NewCodec(50)
	if err != nil {
		t.Fatal(err)
	}
	table, err := c.TableFor(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, hw := range [][2]int{{8, 8}, {16, 24}, {32, 32}} {
		h, w := hw[0], hw[1]
		plane := make([]float32, h*w)
		for trial := 0; trial < 3; trial++ {
			if trial == 2 {
				adversarialFloats(r, plane)
			} else {
				for i := range plane {
					plane[i] = r.Float32()
				}
			}
			nc := (h / BlockSize) * (w / BlockSize) * 64
			cA := make([]int32, nc)
			cB := make([]int32, nc)
			outA := make([]float32, h*w)
			outB := make([]float32, h*w)

			SetSIMD(false)
			quantizePlane(cA, plane, h, w, &table)
			dequantizePlane(outA, cA, h, w, &table)
			SetSIMD(true)
			quantizePlane(cB, plane, h, w, &table)
			dequantizePlane(outB, cB, h, w, &table)

			for i := range cA {
				if cA[i] != cB[i] {
					t.Fatalf("h=%d w=%d trial=%d: coeff %d portable %d simd %d", h, w, trial, i, cA[i], cB[i])
				}
			}
			bitsEqual(t, "dequantizePlane", outA, outB)
		}
	}
}

// TestPlaneSIMDAllocs verifies the dispatched plane path allocates
// nothing in either mode.
func TestPlaneSIMDAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	c, err := NewCodec(50)
	if err != nil {
		t.Fatal(err)
	}
	table, err := c.TableFor(0)
	if err != nil {
		t.Fatal(err)
	}
	h, w := 32, 32
	plane := make([]float32, h*w)
	for i := range plane {
		plane[i] = r.Float32()
	}
	coeffs := make([]int32, (h/8)*(w/8)*64)
	out := make([]float32, h*w)
	for _, mode := range []bool{false, true} {
		if mode && !SIMDAvailable() {
			continue
		}
		SetSIMD(mode)
		allocs := testing.AllocsPerRun(10, func() {
			quantizePlane(coeffs, plane, h, w, &table)
			dequantizePlane(out, coeffs, h, w, &table)
		})
		if allocs != 0 {
			t.Fatalf("simd=%v: plane pipeline allocated %v times per run", mode, allocs)
		}
	}
	SetSIMD(true)
}
