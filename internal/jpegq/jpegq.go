// Package jpegq implements the JPEG quantization machinery behind the
// paper's Fig. 3 motivation study: the standard luminance/chrominance
// quantization tables, quality-factor scaling, block quantization after
// DCT, and the heatmap of nonzero-coefficient frequency per block
// position that shows why retaining only the upper-left coefficients
// (chop) loses little information.
package jpegq

import (
	"fmt"

	"repro/internal/dct"
	"repro/internal/tensor"
)

// BlockSize is the JPEG transform block size.
const BlockSize = 8

// luminance is the Annex K luminance quantization table.
var luminance = [64]int{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// chrominance is the Annex K chrominance quantization table.
var chrominance = [64]int{
	17, 18, 24, 47, 99, 99, 99, 99,
	18, 21, 26, 66, 99, 99, 99, 99,
	24, 26, 56, 99, 99, 99, 99, 99,
	47, 66, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
}

// LuminanceTable returns a copy of the base luminance table.
func LuminanceTable() [64]int { return luminance }

// ChrominanceTable returns a copy of the base chrominance table.
func ChrominanceTable() [64]int { return chrominance }

// ScaleTable applies the libjpeg quality-factor scaling to a base table:
// lower quality factor ⇒ larger divisors ⇒ more zeros after rounding.
func ScaleTable(base [64]int, quality int) ([64]int, error) {
	if quality < 1 || quality > 100 {
		return base, fmt.Errorf("jpegq: quality %d outside [1,100]", quality)
	}
	var s int
	if quality < 50 {
		s = 5000 / quality
	} else {
		s = 200 - 2*quality
	}
	var out [64]int
	for i, q := range base {
		v := (q*s + 50) / 100
		if v < 1 {
			v = 1
		}
		if v > 255 {
			v = 255
		}
		out[i] = v
	}
	return out, nil
}

// QuantizeBlock divides an 8×8 DCT coefficient block elementwise by the
// table, rounding to nearest (the loss-introducing step of JPEG).
func QuantizeBlock(d *tensor.Tensor, table [64]int) [64]int {
	if d.Dim(0) != BlockSize || d.Dim(1) != BlockSize {
		panic(fmt.Sprintf("jpegq: QuantizeBlock needs 8x8, got %v", d.Shape()))
	}
	var out [64]int
	for i, v := range d.Data() {
		q := float64(v) / float64(table[i])
		if q >= 0 {
			out[i] = int(q + 0.5)
		} else {
			out[i] = int(q - 0.5)
		}
	}
	return out
}

// DequantizeBlock multiplies quantized coefficients back by the table.
func DequantizeBlock(q [64]int, table [64]int) *tensor.Tensor {
	out := tensor.New(BlockSize, BlockSize)
	for i, v := range q {
		out.Data()[i] = float32(v * table[i])
	}
	return out
}

// Heatmap is one Fig. 3 cell grid: Frac[i][j] is the fraction of 8×8
// blocks whose quantized DCT coefficient at (i,j) is nonzero.
type Heatmap struct {
	Quality int
	Channel int
	Frac    [BlockSize][BlockSize]float64
	Blocks  int
}

// NonzeroHeatmaps reproduces Fig. 3 for a [N, C, n, n] image batch with
// pixel values in [0,1]: for every channel it applies the level-shifted
// 8-bit JPEG pipeline (scale to [0,255], subtract 128, DCT, quantize at
// the given quality factor) and tallies nonzero frequencies per block
// position. Channel 0 uses the luminance table; the rest use
// chrominance, as JPEG does after color transform.
func NonzeroHeatmaps(images *tensor.Tensor, quality int) ([]Heatmap, error) {
	if images.Dims() != 4 {
		return nil, fmt.Errorf("jpegq: need [N,C,n,n], got %v", images.Shape())
	}
	n := images.Dim(2)
	if n%BlockSize != 0 || images.Dim(3) != n {
		return nil, fmt.Errorf("jpegq: resolution %dx%d not square blocks", n, images.Dim(3))
	}
	channels := images.Dim(1)
	maps := make([]Heatmap, channels)
	for c := range maps {
		base := luminance
		if c > 0 {
			base = chrominance
		}
		table, err := ScaleTable(base, quality)
		if err != nil {
			return nil, err
		}
		h := Heatmap{Quality: quality, Channel: c}
		block := tensor.New(BlockSize, BlockSize)
		for s := 0; s < images.Dim(0); s++ {
			for bi := 0; bi < n; bi += BlockSize {
				for bj := 0; bj < n; bj += BlockSize {
					for i := 0; i < BlockSize; i++ {
						for j := 0; j < BlockSize; j++ {
							// Level-shifted 8-bit pixel, as in JPEG.
							px := images.At4(s, c, bi+i, bj+j)*255 - 128
							block.Set2(px, i, j)
						}
					}
					q := QuantizeBlock(dct.Apply2D(block), table)
					h.Blocks++
					for i := 0; i < BlockSize; i++ {
						for j := 0; j < BlockSize; j++ {
							if q[i*BlockSize+j] != 0 {
								h.Frac[i][j]++
							}
						}
					}
				}
			}
		}
		if h.Blocks > 0 {
			for i := range h.Frac {
				for j := range h.Frac[i] {
					h.Frac[i][j] /= float64(h.Blocks)
				}
			}
		}
		maps[c] = h
	}
	return maps, nil
}
