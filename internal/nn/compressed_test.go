package nn

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/tensor"
)

// identityRT is a lossless RoundTripper fake with a fixed claimed ratio.
type identityRT struct{ calls int }

func (i *identityRT) RoundTrip(values []float32) ([]float32, int, error) {
	i.calls++
	out := make([]float32, len(values))
	copy(out, values)
	return out, len(values), nil // "compressed" to 1 byte per value
}

func dctRT(t *testing.T, cf int) RoundTripper {
	t.Helper()
	rt, err := core.NewFlatRoundTripper(core.Config{ChopFactor: cf, Serialization: 1}, 16)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestFlatRoundTripperArbitraryShapes(t *testing.T) {
	rt, err := core.NewFlatRoundTripper(core.Config{ChopFactor: 8, Serialization: 1}, 16)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(1)
	for _, n := range []int{1, 7, 256, 300, 1000} {
		vals := r.Uniform(-1, 1, n).Data()
		back, bytes, err := rt.RoundTrip(vals)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(back) != n {
			t.Fatalf("n=%d: got %d values back", n, len(back))
		}
		if bytes <= 0 {
			t.Fatalf("n=%d: compressed bytes %d", n, bytes)
		}
		// CF=8 is lossless up to float32 rounding.
		for i := range vals {
			if math.Abs(float64(back[i]-vals[i])) > 1e-4 {
				t.Fatalf("n=%d index %d: %g != %g", n, i, back[i], vals[i])
			}
		}
	}
}

func TestFlatRoundTripperCompression(t *testing.T) {
	rt, err := core.NewFlatRoundTripper(core.Config{ChopFactor: 4, Serialization: 1}, 16)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float32, 1024)
	for i := range vals {
		vals[i] = float32(i % 10)
	}
	_, bytes, err := rt.RoundTrip(vals)
	if err != nil {
		t.Fatal(err)
	}
	if bytes*4 != 4*1024 {
		t.Fatalf("CF=4 payload %d bytes, want 1/4 of %d", bytes, 4*1024)
	}
	if _, _, err := rt.RoundTrip(nil); err == nil {
		t.Fatal("empty input must be rejected")
	}
}

func TestCheckpointCompressExactWithLosslessRT(t *testing.T) {
	// With a lossless round-tripper the wrapper must produce exactly
	// the gradients of the unwrapped layer.
	rng := tensor.NewRNG(2)
	plain := NewConv2d(rng, "c", 2, 3, 3, 1, 1)
	wrapped := NewCheckpointCompress(cloneConv(plain), &identityRT{})
	x := rng.Uniform(-1, 1, 2, 2, 8, 8)
	g := rng.Uniform(-1, 1, 2, 3, 8, 8)

	plain.Forward(x, true)
	dxPlain := plain.Backward(g)

	wrapped.Forward(x, true)
	dxWrapped := wrapped.Backward(g)

	if d := dxPlain.MaxAbsDiff(dxWrapped); d > 1e-6 {
		t.Fatalf("lossless checkpoint changed input grad by %g", d)
	}
	for i := range plain.Params() {
		if d := plain.Params()[i].Grad.MaxAbsDiff(wrapped.Params()[i].Grad); d > 1e-6 {
			t.Fatalf("param %d grad deviates by %g", i, d)
		}
	}
}

// cloneConv duplicates a Conv2d with identical weights.
func cloneConv(c *Conv2d) *Conv2d {
	out := &Conv2d{InC: c.InC, OutC: c.OutC, K: c.K, Stride: c.Stride, Pad: c.Pad,
		W: NewParam(c.W.Name, c.W.Value.Clone()),
		B: NewParam(c.B.Name, c.B.Value.Clone())}
	return out
}

func TestCheckpointCompressLossyGradientsApproximate(t *testing.T) {
	// With a lossy round-tripper the gradients deviate, but boundedly —
	// and the wrapper's savings accounting reflects the chop ratio.
	rng := tensor.NewRNG(3)
	plain := NewConv2d(rng, "c", 1, 2, 3, 1, 1)
	wrapped := NewCheckpointCompress(cloneConv(plain), dctRT(t, 6))
	x := rng.Uniform(0, 1, 2, 1, 16, 16)
	g := rng.Uniform(-0.1, 0.1, 2, 2, 16, 16)

	plain.Forward(x, true)
	plain.Backward(g)
	wrapped.Forward(x, true)
	wrapped.Backward(g)

	wNormPlain := plain.W.Grad.Norm2()
	diff := plain.W.Grad.Sub(wrapped.Params()[0].Grad).Norm2()
	if diff == 0 {
		t.Fatal("lossy checkpoint should perturb gradients")
	}
	// Spectrally flat (random) activations are the worst case for a
	// chop projection; the error stays below the gradient's own norm.
	if diff > 0.9*wNormPlain {
		t.Fatalf("gradient error %g too large vs norm %g", diff, wNormPlain)
	}
	if r := wrapped.SavingsRatio(); math.Abs(r-64.0/36) > 1e-6 {
		t.Fatalf("savings ratio %g, want %g", r, 64.0/36)
	}
}

func TestCheckpointCompressOnlyStoresWhenTraining(t *testing.T) {
	rng := tensor.NewRNG(4)
	rt := &identityRT{}
	wrapped := NewCheckpointCompress(NewConv2d(rng, "c", 1, 1, 3, 1, 1), rt)
	x := rng.Uniform(0, 1, 1, 1, 8, 8)
	wrapped.Forward(x, false)
	if rt.calls != 0 {
		t.Fatal("eval-mode forward must not compress activations")
	}
	wrapped.Forward(x, true)
	if rt.calls != 1 {
		t.Fatal("train-mode forward must compress activations once")
	}
}

func TestCheckpointCompressTrainsEndToEnd(t *testing.T) {
	// A model whose every conv stores compressed activations must still
	// converge on the stripes task (the paper's premise that lossy
	// compression need not break training).
	rng := tensor.NewRNG(5)
	rt := dctRT(t, 6)
	model := NewSequential(
		NewCheckpointCompress(NewConv2d(rng, "c1", 1, 4, 3, 1, 1), rt),
		NewReLU(),
		NewMaxPool2d(2),
		NewFlatten(),
		NewLinear(rng, "fc", 4*4*4, 2),
	)
	opt := NewSGD(0.05, 0.9)
	var loss float64
	for step := 0; step < 80; step++ {
		x, labels := stripeBatch(rng, 16)
		logits := model.Forward(x, true)
		var grad *tensor.Tensor
		loss, grad = SoftmaxCrossEntropy(logits, labels)
		model.ZeroGrad()
		model.Backward(grad)
		opt.Step(model.Params())
	}
	if loss > 0.3 {
		t.Fatalf("compressed-activation training did not converge: loss %g", loss)
	}
}

// stripeBatch is the two-class stripes task shared with nn_test.
func stripeBatch(rng *tensor.RNG, bd int) (*tensor.Tensor, []int) {
	x := tensor.New(bd, 1, 8, 8)
	labels := make([]int, bd)
	for b := 0; b < bd; b++ {
		label := rng.Intn(2)
		labels[b] = label
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				var v float32
				if (label == 0 && i%2 == 0) || (label == 1 && j%2 == 0) {
					v = 1
				}
				x.Set4(v+0.1*float32(rng.Norm()), b, 0, i, j)
			}
		}
	}
	return x, labels
}

func TestGradCompressOptimizer(t *testing.T) {
	rng := tensor.NewRNG(6)
	// 256 values fill the adapter's 16×16 plane exactly, so the payload
	// accounting is padding-free.
	p := NewParam("p", rng.Uniform(-1, 1, 256))
	p.Grad.CopyFrom(rng.Uniform(-1, 1, 256))
	gradBefore := p.Grad.Clone()

	inner := NewSGD(0.1, 0)
	opt := NewGradCompressOptimizer(inner, dctRT(t, 4))
	valBefore := p.Value.Clone()
	opt.Step([]*Param{p})

	// The step must have been taken along the *compressed* gradient.
	applied := valBefore.Sub(p.Value).Scale(10) // (v0−v1)/lr = effective grad
	if applied.Equal(gradBefore) {
		t.Fatal("gradient was not perturbed by compression")
	}
	// Direction preserved on average (chop keeps the low band).
	var dot float64
	for i := range applied.Data() {
		dot += float64(applied.Data()[i]) * float64(gradBefore.Data()[i])
	}
	cos := dot / (applied.Norm2() * gradBefore.Norm2())
	if cos < 0.2 {
		t.Fatalf("compressed gradient direction cosine %g too low", cos)
	}
	if opt.SavingsRatio() != 4 {
		t.Fatalf("savings ratio %g, want 4", opt.SavingsRatio())
	}
}

func TestGradCompressErrorFeedbackInvariant(t *testing.T) {
	// The error-feedback identity: transmitted + new residual ==
	// gradient + old residual, exactly (compression loses nothing
	// permanently).
	rng := tensor.NewRNG(8)
	p := NewParam("p", rng.Uniform(-1, 1, 50))
	opt := NewGradCompressOptimizer(NewSGD(0, 0), dctRT(t, 3)) // lr=0: params frozen
	var carried *tensor.Tensor
	for step := 0; step < 5; step++ {
		g := rng.Uniform(-1, 1, 50)
		p.Grad.CopyFrom(g)
		want := g.Clone()
		if carried != nil {
			want.AddInPlace(carried)
		}
		opt.Step([]*Param{p})
		// p.Grad now holds the transmitted (compressed) gradient.
		carried = want.Sub(p.Grad) // residual the optimizer must have kept
		// Re-derive: next step's effective input must include carried.
		// Verified implicitly by convergence test; here check the
		// residual is nonzero (chop drops something) yet bounded.
		if step > 0 && carried.Norm2() == 0 {
			t.Fatal("chop at CF=3 should leave a residual")
		}
		if carried.Norm2() > 10*want.Norm2() {
			t.Fatal("residual exploding")
		}
	}
}

func TestGradCompressOptimizerConvergesWithErrorFeedback(t *testing.T) {
	// Quadratic minimization converges under CF=4 gradient compression
	// thanks to error feedback (3LC-style robustness)...
	rng := tensor.NewRNG(7)
	p := NewParam("p", rng.Uniform(-4, 4, 32))
	start := p.Value.Norm2()
	opt := NewGradCompressOptimizer(NewSGD(0.1, 0), dctRT(t, 4))
	for i := 0; i < 1500; i++ {
		p.Grad.Zero()
		p.Grad.Axpy(2, p.Value)
		opt.Step([]*Param{p})
	}
	if got := p.Value.Norm2(); got > 0.1 || got > start/20 {
		t.Fatalf("did not converge under gradient compression: |p| = %g (start %g)", got, start)
	}

	// ...while the ablation without error feedback or full sync stalls:
	// the chop kernel's components are never transmitted.
	p2 := NewParam("p", tensor.NewRNG(7).Uniform(-4, 4, 32))
	naive := NewGradCompressOptimizer(NewSGD(0.1, 0), dctRT(t, 4))
	naive.DisableErrorFeedback = true
	naive.DisableRotation = true
	naive.FullSyncEvery = 0
	for i := 0; i < 400; i++ {
		p2.Grad.Zero()
		p2.Grad.Axpy(2, p2.Value)
		naive.Step([]*Param{p2})
	}
	if p2.Value.Norm2() < 1 {
		t.Fatalf("naive compression unexpectedly converged (|p| = %g); the error-feedback ablation should stall", p2.Value.Norm2())
	}
}
