package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestStepDecay(t *testing.T) {
	s := StepDecay{Base: 0.1, Gamma: 0.5, StepSize: 3}
	want := []float64{0.1, 0.1, 0.1, 0.05, 0.05, 0.05, 0.025}
	for e, w := range want {
		if got := s.LR(e); math.Abs(got-w) > 1e-12 {
			t.Fatalf("epoch %d: LR %g, want %g", e, got, w)
		}
	}
	if (StepDecay{Base: 0.1}).LR(5) != 0.1 {
		t.Fatal("zero StepSize must hold the base rate")
	}
}

func TestCosineDecay(t *testing.T) {
	c := CosineDecay{Base: 1, Floor: 0.1, Span: 10}
	if got := c.LR(0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("epoch 0: %g", got)
	}
	if got := c.LR(5); math.Abs(got-0.55) > 1e-9 { // midpoint of [0.1,1]
		t.Fatalf("midpoint: %g", got)
	}
	if c.LR(10) != 0.1 || c.LR(50) != 0.1 {
		t.Fatal("past the span the floor must hold")
	}
	// Monotone non-increasing.
	prev := math.MaxFloat64
	for e := 0; e <= 10; e++ {
		if lr := c.LR(e); lr > prev+1e-12 {
			t.Fatalf("cosine LR rose at epoch %d", e)
		} else {
			prev = lr
		}
	}
}

func TestSetLR(t *testing.T) {
	sgd := NewSGD(0.1, 0.9)
	if err := SetLR(sgd, 0.01); err != nil || sgd.LR != 0.01 {
		t.Fatalf("SetLR on SGD: %v, LR=%g", err, sgd.LR)
	}
	adam := NewAdam(0.1)
	if err := SetLR(adam, 0.02); err != nil || adam.LR != 0.02 {
		t.Fatalf("SetLR on Adam: %v", err)
	}
	wrapped := NewGradCompressOptimizer(NewSGD(0.1, 0), &identityRT{})
	if err := SetLR(wrapped, 0.03); err != nil {
		t.Fatal(err)
	}
	if wrapped.Inner.(*SGD).LR != 0.03 {
		t.Fatal("SetLR must reach through GradCompressOptimizer")
	}
	if err := SetLR(nil, 0.1); err == nil {
		t.Fatal("unsupported optimizer must error")
	}
}

func TestClipGradNorm(t *testing.T) {
	rng := tensor.NewRNG(1)
	a := NewParam("a", rng.Uniform(-1, 1, 10))
	b := NewParam("b", rng.Uniform(-1, 1, 10))
	a.Grad.Fill(3)
	b.Grad.Fill(4)
	// Global norm = sqrt(10·9 + 10·16) = sqrt(250).
	pre := ClipGradNorm([]*Param{a, b}, 1)
	if math.Abs(pre-math.Sqrt(250)) > 1e-4 {
		t.Fatalf("pre-clip norm %g", pre)
	}
	var sq float64
	for _, p := range []*Param{a, b} {
		n := p.Grad.Norm2()
		sq += n * n
	}
	if math.Abs(math.Sqrt(sq)-1) > 1e-4 {
		t.Fatalf("post-clip norm %g, want 1", math.Sqrt(sq))
	}
	// Below the threshold nothing changes.
	a.Grad.Fill(0.01)
	b.Grad.Fill(0.01)
	ClipGradNorm([]*Param{a, b}, 10)
	if a.Grad.Data()[0] != 0.01 {
		t.Fatal("clip must not touch small gradients")
	}
}

func TestScheduledTrainingImproves(t *testing.T) {
	// Cosine-annealed SGD on the stripes task: end-to-end use of the
	// scheduler API.
	rng := tensor.NewRNG(2)
	model := NewSequential(
		NewConv2d(rng, "c1", 1, 4, 3, 1, 1),
		NewReLU(),
		NewMaxPool2d(2),
		NewFlatten(),
		NewLinear(rng, "fc", 4*4*4, 2),
	)
	opt := NewSGD(0.1, 0.9)
	sched := CosineDecay{Base: 0.1, Floor: 0.005, Span: 8}
	var loss float64
	for epoch := 0; epoch < 8; epoch++ {
		if err := SetLR(opt, sched.LR(epoch)); err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 8; step++ {
			x, labels := stripeBatch(rng, 16)
			logits := model.Forward(x, true)
			var grad *tensor.Tensor
			loss, grad = SoftmaxCrossEntropy(logits, labels)
			model.ZeroGrad()
			model.Backward(grad)
			ClipGradNorm(model.Params(), 5)
			opt.Step(model.Params())
		}
	}
	if loss > 0.3 {
		t.Fatalf("scheduled training did not converge: %g", loss)
	}
}
