package nn

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/tensor"
)

func checkpointModel(seed uint64) *Sequential {
	// Big enough (≈2k parameters) that the compressed stream spans
	// several of the adapter's planes, keeping padding negligible.
	rng := tensor.NewRNG(seed)
	return NewSequential(
		NewConv2d(rng, "c1", 3, 8, 3, 1, 1),
		NewBatchNorm2d("bn", 8),
		NewConv2d(rng, "c2", 8, 16, 3, 1, 1),
		NewLinear(rng, "fc", 64, 10),
	)
}

func TestCheckpointLosslessRoundTrip(t *testing.T) {
	src := checkpointModel(1)
	var buf bytes.Buffer
	raw, comp, err := SaveCheckpoint(&buf, src.Params(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if raw != comp {
		t.Fatalf("lossless checkpoint raw %d != compressed %d", raw, comp)
	}
	dst := checkpointModel(2) // different weights, same architecture
	if err := LoadCheckpoint(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range src.Params() {
		if !p.Value.Equal(dst.Params()[i].Value) {
			t.Fatalf("parameter %s not restored exactly", p.Name)
		}
	}
}

func TestCheckpointCompressedRoundTrip(t *testing.T) {
	src := checkpointModel(3)
	rt := dctRT(t, 6)
	var buf bytes.Buffer
	raw, comp, err := SaveCheckpoint(&buf, src.Params(), rt)
	if err != nil {
		t.Fatal(err)
	}
	if comp >= raw {
		t.Fatalf("compressed payload %d not below raw %d", comp, raw)
	}
	dst := checkpointModel(4)
	if err := LoadCheckpoint(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	// Lossy but close: the restored weights approximate the originals.
	for i, p := range src.Params() {
		got := dst.Params()[i].Value
		if p.Value.Equal(got) && p.Value.MaxAbs() > 0 && p.Value.Len() > 8 {
			// Some loss is expected on non-trivial tensors.
			t.Logf("parameter %s restored exactly (may be DC-only)", p.Name)
		}
		if mse := metrics.MSE(p.Value, got); mse > 0.1 {
			t.Fatalf("parameter %s MSE %g too high", p.Name, mse)
		}
	}
}

func TestCheckpointCompressedModelStillWorks(t *testing.T) {
	// The deployment scenario: quantify accuracy of a model whose
	// weights went through the compressed checkpoint.
	rng := tensor.NewRNG(5)
	model := NewSequential(
		NewConv2d(rng, "c1", 1, 4, 3, 1, 1),
		NewReLU(),
		NewMaxPool2d(2),
		NewFlatten(),
		NewLinear(rng, "fc", 4*4*4, 2),
	)
	opt := NewSGD(0.05, 0.9)
	for step := 0; step < 60; step++ {
		x, labels := stripeBatch(rng, 16)
		logits := model.Forward(x, true)
		_, grad := SoftmaxCrossEntropy(logits, labels)
		model.ZeroGrad()
		model.Backward(grad)
		opt.Step(model.Params())
	}
	testX, testY := stripeBatch(rng, 64)
	baseAcc := metrics.Accuracy(model.Forward(testX, false), testY)

	var buf bytes.Buffer
	if _, _, err := SaveCheckpoint(&buf, model.Params(), dctRT(t, 6)); err != nil {
		t.Fatal(err)
	}
	if err := LoadCheckpoint(&buf, model.Params()); err != nil {
		t.Fatal(err)
	}
	compAcc := metrics.Accuracy(model.Forward(testX, false), testY)
	if baseAcc-compAcc > 0.15 {
		t.Fatalf("compressed weights dropped accuracy %.2f → %.2f", baseAcc, compAcc)
	}
}

func TestCheckpointRejectsMismatches(t *testing.T) {
	src := checkpointModel(6)
	var buf bytes.Buffer
	if _, _, err := SaveCheckpoint(&buf, src.Params(), nil); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Wrong parameter count.
	rng := tensor.NewRNG(7)
	small := NewSequential(NewLinear(rng, "fc", 4, 2))
	if err := LoadCheckpoint(bytes.NewReader(data), small.Params()); err == nil {
		t.Fatal("parameter-count mismatch must fail")
	}

	// Wrong name.
	renamed := checkpointModel(8)
	renamed.Params()[0].Name = "other"
	if err := LoadCheckpoint(bytes.NewReader(data), renamed.Params()); err == nil {
		t.Fatal("name mismatch must fail")
	} else if !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("unexpected error %v", err)
	}

	// Garbage.
	if err := LoadCheckpoint(bytes.NewReader([]byte{1, 2, 3}), src.Params()); err == nil {
		t.Fatal("truncated checkpoint must fail")
	}
	if err := LoadCheckpoint(bytes.NewReader(make([]byte, 16)), src.Params()); err == nil {
		t.Fatal("bad magic must fail")
	}
}
