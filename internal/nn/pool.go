package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// MaxPool2d is a k×k max pooling with stride k (non-overlapping).
type MaxPool2d struct {
	K       int
	argmax  []int
	inShape []int
}

// NewMaxPool2d returns a k×k/stride-k max pool.
func NewMaxPool2d(k int) *MaxPool2d {
	if k <= 0 {
		panic("nn: MaxPool2d needs positive k")
	}
	return &MaxPool2d{K: k}
}

// Forward pools each k×k window to its max, recording argmax positions.
func (m *MaxPool2d) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkShape4(x, "MaxPool2d")
	bd, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if h%m.K != 0 || w%m.K != 0 {
		panic(fmt.Sprintf("nn: MaxPool2d %d does not divide %dx%d", m.K, h, w))
	}
	oh, ow := h/m.K, w/m.K
	m.inShape = x.Shape()
	out := tensor.New(bd, ch, oh, ow)
	m.argmax = make([]int, out.Len())
	xd, od := x.Data(), out.Data()
	for b := 0; b < bd; b++ {
		for c := 0; c < ch; c++ {
			plane := (b*ch + c) * h * w
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					best := float32(0)
					bi := -1
					for ki := 0; ki < m.K; ki++ {
						for kj := 0; kj < m.K; kj++ {
							ix := plane + (oi*m.K+ki)*w + oj*m.K + kj
							if bi < 0 || xd[ix] > best {
								best, bi = xd[ix], ix
							}
						}
					}
					oix := ((b*ch+c)*oh+oi)*ow + oj
					od[oix] = best
					m.argmax[oix] = bi
				}
			}
		}
	}
	return out
}

// Backward routes each gradient to its argmax position.
func (m *MaxPool2d) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(m.inShape...)
	gd, dd := grad.Data(), dx.Data()
	for i, v := range gd {
		dd[m.argmax[i]] += v
	}
	return dx
}

// Params returns nil: pooling has no parameters.
func (m *MaxPool2d) Params() []*Param { return nil }

// GlobalAvgPool averages each channel plane to a single value,
// producing [BD, C] — the ResNet classification head's input.
type GlobalAvgPool struct {
	inShape []int
}

// NewGlobalAvgPool returns a global average pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Forward averages over the spatial dimensions.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkShape4(x, "GlobalAvgPool")
	bd, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	g.inShape = x.Shape()
	out := tensor.New(bd, ch)
	xd := x.Data()
	inv := 1 / float32(h*w)
	for b := 0; b < bd; b++ {
		for c := 0; c < ch; c++ {
			var s float32
			for _, v := range xd[(b*ch+c)*h*w : (b*ch+c+1)*h*w] {
				s += v
			}
			out.Set2(s*inv, b, c)
		}
	}
	return out
}

// Backward spreads each gradient uniformly over its plane.
func (g *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	bd, ch := g.inShape[0], g.inShape[1]
	h, w := g.inShape[2], g.inShape[3]
	dx := tensor.New(g.inShape...)
	dd := dx.Data()
	inv := 1 / float32(h*w)
	for b := 0; b < bd; b++ {
		for c := 0; c < ch; c++ {
			v := grad.At2(b, c) * inv
			plane := dd[(b*ch+c)*h*w : (b*ch+c+1)*h*w]
			for i := range plane {
				plane[i] = v
			}
		}
	}
	return dx
}

// Params returns nil: pooling has no parameters.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// Upsample2x doubles spatial resolution by nearest-neighbour copy — the
// decoder-side counterpart to MaxPool2d(2) in the encoder-decoder,
// autoencoder and UNet benchmarks.
type Upsample2x struct {
	inShape []int
}

// NewUpsample2x returns a 2× nearest-neighbour upsampler.
func NewUpsample2x() *Upsample2x { return &Upsample2x{} }

// Forward repeats every pixel into a 2×2 block.
func (u *Upsample2x) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkShape4(x, "Upsample2x")
	bd, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	u.inShape = x.Shape()
	out := tensor.New(bd, ch, 2*h, 2*w)
	xd, od := x.Data(), out.Data()
	for b := 0; b < bd; b++ {
		for c := 0; c < ch; c++ {
			for i := 0; i < h; i++ {
				src := xd[((b*ch+c)*h+i)*w : ((b*ch+c)*h+i+1)*w]
				for di := 0; di < 2; di++ {
					dst := od[((b*ch+c)*2*h+2*i+di)*2*w : ((b*ch+c)*2*h+2*i+di+1)*2*w]
					for j, v := range src {
						dst[2*j] = v
						dst[2*j+1] = v
					}
				}
			}
		}
	}
	return out
}

// Backward sums each 2×2 block's gradients.
func (u *Upsample2x) Backward(grad *tensor.Tensor) *tensor.Tensor {
	bd, ch, h, w := u.inShape[0], u.inShape[1], u.inShape[2], u.inShape[3]
	dx := tensor.New(u.inShape...)
	gd, dd := grad.Data(), dx.Data()
	for b := 0; b < bd; b++ {
		for c := 0; c < ch; c++ {
			for i := 0; i < h; i++ {
				for j := 0; j < w; j++ {
					var s float32
					for di := 0; di < 2; di++ {
						for dj := 0; dj < 2; dj++ {
							s += gd[((b*ch+c)*2*h+2*i+di)*2*w+2*j+dj]
						}
					}
					dd[((b*ch+c)*h+i)*w+j] = s
				}
			}
		}
	}
	return dx
}

// Params returns nil: upsampling has no parameters.
func (u *Upsample2x) Params() []*Param { return nil }
