package nn

import (
	"fmt"
	"math"
)

// LRScheduler adjusts an optimizer's learning rate across epochs. The
// schedulers mutate the wrapped optimizer's LR field directly, matching
// how the paper's fixed-LR benchmarks would be extended for longer runs.
type LRScheduler interface {
	// LR returns the learning rate for the given 0-based epoch.
	LR(epoch int) float64
}

// StepDecay multiplies the base rate by Gamma every StepSize epochs.
type StepDecay struct {
	Base     float64
	Gamma    float64
	StepSize int
}

// LR returns Base·Gamma^⌊epoch/StepSize⌋.
func (s StepDecay) LR(epoch int) float64 {
	if s.StepSize <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Gamma, float64(epoch/s.StepSize))
}

// CosineDecay anneals from Base to Floor over Span epochs.
type CosineDecay struct {
	Base  float64
	Floor float64
	Span  int
}

// LR returns the half-cosine interpolation, clamped at Floor past Span.
func (c CosineDecay) LR(epoch int) float64 {
	if c.Span <= 0 || epoch >= c.Span {
		return c.Floor
	}
	t := float64(epoch) / float64(c.Span)
	return c.Floor + (c.Base-c.Floor)*(1+math.Cos(math.Pi*t))/2
}

// SetLR updates an optimizer's learning rate; it supports the
// optimizers of this package (including wrapped gradient compression).
func SetLR(opt Optimizer, lr float64) error {
	switch o := opt.(type) {
	case *SGD:
		o.LR = lr
	case *Adam:
		o.LR = lr
	case *GradCompressOptimizer:
		return SetLR(o.Inner, lr)
	default:
		return fmt.Errorf("nn: SetLR: unsupported optimizer %T", opt)
	}
	return nil
}

// ClipGradNorm rescales all gradients so their global L2 norm does not
// exceed maxNorm, returning the pre-clip norm. A standard stabilizer
// for the compressed-gradient training path, where chop error can spike
// individual steps.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		n := p.Grad.Norm2()
		sq += n * n
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		scale := float32(maxNorm / norm)
		for _, p := range params {
			p.Grad.ScaleInPlace(scale)
		}
	}
	return norm
}
