package nn

import (
	"repro/internal/tensor"
)

// RoundTripper is the lossy compress→decompress interface the
// compression-target wrappers consume (core.FlatRoundTripper satisfies
// it via an adapter; tests inject fakes).
type RoundTripper interface {
	// RoundTrip returns the lossy reconstruction of values and the
	// compressed payload size in bytes.
	RoundTrip(values []float32) ([]float32, int, error)
}

// CheckpointCompress implements the paper's future-work *activation*
// compression target (§6, Fig. 1): during training, the input
// activation a layer would cache for its backward pass is stored
// compressed instead. At backward time the activation is decompressed
// and the wrapped layer's forward is re-run to rebuild its caches
// before backpropagating — the same recompute-from-lossy-activations
// scheme as COMET/ActNN, expressed over any Layer.
//
// The forward *output* is exact; only the gradient is computed from the
// lossy activation, which is precisely the error mode activation
// compression introduces ("data loss can lead to incorrectly calculated
// gradients", §3.1).
type CheckpointCompress struct {
	Inner Layer
	RT    RoundTripper

	// Stats accumulated across forward passes (training mode only).
	RawBytes        int
	CompressedBytes int

	stored   []float32
	shape    []int
	trained  bool
	rtFailed error
}

// NewCheckpointCompress wraps inner with compressed activation storage.
func NewCheckpointCompress(inner Layer, rt RoundTripper) *CheckpointCompress {
	return &CheckpointCompress{Inner: inner, RT: rt}
}

// Forward runs the wrapped layer and stores its input compressed.
func (c *CheckpointCompress) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := c.Inner.Forward(x, train)
	c.trained = train
	if train {
		vals, bytes, err := c.RT.RoundTrip(x.Data())
		if err != nil {
			c.rtFailed = err
			return out
		}
		c.stored = vals
		c.shape = x.Shape()
		c.RawBytes += x.SizeBytes()
		c.CompressedBytes += bytes
	}
	return out
}

// Backward decompresses the stored activation, re-runs the inner
// forward to rebuild its caches from the lossy input, then
// backpropagates through it.
func (c *CheckpointCompress) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.rtFailed != nil {
		panic("nn: CheckpointCompress forward round-trip failed: " + c.rtFailed.Error())
	}
	if c.trained && c.stored != nil {
		restored := tensor.FromSlice(c.stored, c.shape...)
		c.Inner.Forward(restored, true)
	}
	return c.Inner.Backward(grad)
}

// Params returns the wrapped layer's parameters.
func (c *CheckpointCompress) Params() []*Param { return c.Inner.Params() }

// SavingsRatio returns raw/compressed activation bytes so far.
func (c *CheckpointCompress) SavingsRatio() float64 {
	if c.CompressedBytes == 0 {
		return 0
	}
	return float64(c.RawBytes) / float64(c.CompressedBytes)
}

// GradCompressOptimizer implements the *gradient* compression target
// (§6, and the distributed-training motivation of §2.2): every
// parameter gradient is round-tripped through the lossy compressor
// before the wrapped optimizer consumes it, simulating a compressed
// all-reduce. Stats record the traffic saved.
//
// Because DCT+Chop is a projection, naively compressing each step's
// gradient would permanently lose the components in the chop's kernel
// and training would stall. Like the gradient-compression systems the
// paper cites (3LC; error-feedback SGD generally), the wrapper
// therefore keeps a per-parameter residual: each step compresses
// gradient+residual and carries the compression error into the next
// step, so every component is eventually transmitted.
type GradCompressOptimizer struct {
	Inner Optimizer
	RT    RoundTripper
	// DisableErrorFeedback turns the residual accumulation off (for
	// ablation; expect stalls on spectrally flat gradients).
	DisableErrorFeedback bool
	// DisableRotation turns off the per-step packing rotation (for
	// ablation). Error feedback alone cannot drain a *fixed* chop
	// kernel — a projection never transmits those components — so each
	// step packs the gradient at a different circular offset, moving
	// the kernel around; combined with error feedback every component
	// is transmitted within a few steps.
	DisableRotation bool
	// FullSyncEvery additionally sends the accumulated gradient
	// uncompressed every k-th step (0, the default, disables). With
	// rotation enabled it is unnecessary; it exists for experiments
	// with rotation off.
	FullSyncEvery int
	// ResidualDecay scales the carried residual each step (damped error
	// feedback). Undamped feedback (1.0) through a *non-contractive*
	// compressor like chop lets stale high-frequency residual resonate
	// with the optimizer and diverge; the constructor defaults to 0.5,
	// which bounds the residual at ~2 steps of dropped gradient while
	// still re-transmitting most of what the chop removed.
	ResidualDecay float64

	RawBytes        int
	CompressedBytes int
	// Err holds the first round-trip failure; Step panics on it rather
	// than silently training on unmodified gradients.
	Err error

	residual map[*Param]*tensor.Tensor
	step     int
}

// NewGradCompressOptimizer wraps inner with gradient compression, error
// feedback and packing rotation on.
func NewGradCompressOptimizer(inner Optimizer, rt RoundTripper) *GradCompressOptimizer {
	return &GradCompressOptimizer{
		Inner: inner, RT: rt,
		ResidualDecay: 0.5,
		residual:      map[*Param]*tensor.Tensor{},
	}
}

// Step compresses every gradient in place (with error feedback and
// periodic full sync), then delegates to the wrapped optimizer.
func (g *GradCompressOptimizer) Step(params []*Param) {
	if g.Err != nil {
		panic("nn: GradCompressOptimizer: " + g.Err.Error())
	}
	g.step++
	fullSync := g.FullSyncEvery > 0 && g.step%g.FullSyncEvery == 0
	for _, p := range params {
		if !g.DisableErrorFeedback {
			res, ok := g.residual[p]
			if !ok {
				res = tensor.New(p.Grad.Shape()...)
				g.residual[p] = res
			}
			p.Grad.AddInPlace(res)
		}
		if fullSync {
			// Transmit gradient+residual uncompressed; residual clears.
			if !g.DisableErrorFeedback {
				g.residual[p].Zero()
			}
			g.RawBytes += p.Grad.SizeBytes()
			g.CompressedBytes += p.Grad.SizeBytes()
			continue
		}
		payload := p.Grad.Data()
		offset := 0
		if !g.DisableRotation && len(payload) > 1 {
			// Deterministic stride coprime-ish with typical lengths.
			offset = (g.step * 9973) % len(payload)
			payload = rotated(payload, offset)
		}
		vals, bytes, err := g.RT.RoundTrip(payload)
		if err != nil {
			g.Err = err
			panic("nn: GradCompressOptimizer: " + err.Error())
		}
		if offset != 0 {
			vals = rotated(vals, len(vals)-offset)
		}
		if !g.DisableErrorFeedback {
			res := g.residual[p]
			decay := float32(g.ResidualDecay)
			rd, gd := res.Data(), p.Grad.Data()
			for i := range rd {
				rd[i] = decay * (gd[i] - vals[i]) // carry what the chop dropped
			}
		}
		copy(p.Grad.Data(), vals)
		g.RawBytes += p.Grad.SizeBytes()
		g.CompressedBytes += bytes
	}
	g.Inner.Step(params)
}

// rotated returns values circularly shifted left by k.
func rotated(values []float32, k int) []float32 {
	n := len(values)
	out := make([]float32, n)
	copy(out, values[k:])
	copy(out[n-k:], values[:k])
	return out
}

// SavingsRatio returns raw/compressed gradient bytes so far.
func (g *GradCompressOptimizer) SavingsRatio() float64 {
	if g.CompressedBytes == 0 {
		return 0
	}
	return float64(g.RawBytes) / float64(g.CompressedBytes)
}
