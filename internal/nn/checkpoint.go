package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// This file implements the *weights* compression target (§6, Fig. 1):
// serializing a model's parameters, optionally through the lossy
// round-tripper, "enabling easier deployment to memory-constrained edge
// devices" (§2.2). The format is self-describing: a header, then one
// record per parameter (name, shape, raw float32 payload). When a
// RoundTripper is supplied the payload is the lossy reconstruction —
// the on-disk bytes stay float32 (simple and portable) while the
// *information content* matches what a deployed compressed checkpoint
// would carry; SaveCompressed reports the compressed payload size the
// round-tripper achieved.

const checkpointMagic = 0x434B5054 // "CKPT"

// SaveCheckpoint writes the model's parameters to w. rt may be nil for
// a lossless checkpoint; otherwise the *concatenated* parameter stream
// is round-tripped in one pass — amortizing the compressor's fixed
// plane size across all tensors instead of padding each small bias
// separately — and the compressed-payload size is returned alongside
// the raw bytes written.
func SaveCheckpoint(w io.Writer, params []*Param, rt RoundTripper) (rawBytes, compressedBytes int, err error) {
	// Concatenate every parameter's values.
	total := 0
	for _, p := range params {
		total += p.Value.Len()
	}
	all := make([]float32, 0, total)
	for _, p := range params {
		all = append(all, p.Value.Data()...)
	}
	rawBytes = 4 * total
	if rt != nil && total > 0 {
		vals, cb, rtErr := rt.RoundTrip(all)
		if rtErr != nil {
			return 0, 0, fmt.Errorf("nn: compressing checkpoint: %w", rtErr)
		}
		all = vals
		compressedBytes = cb
	} else {
		compressedBytes = rawBytes
	}

	writeU32 := func(v uint32) error { return binary.Write(w, binary.LittleEndian, v) }
	if err := writeU32(checkpointMagic); err != nil {
		return 0, 0, err
	}
	if err := writeU32(uint32(len(params))); err != nil {
		return 0, 0, err
	}
	off := 0
	for _, p := range params {
		name := []byte(p.Name)
		if err := writeU32(uint32(len(name))); err != nil {
			return rawBytes, compressedBytes, err
		}
		if _, err := w.Write(name); err != nil {
			return rawBytes, compressedBytes, err
		}
		shape := p.Value.Shape()
		if err := writeU32(uint32(len(shape))); err != nil {
			return rawBytes, compressedBytes, err
		}
		for _, d := range shape {
			if err := writeU32(uint32(d)); err != nil {
				return rawBytes, compressedBytes, err
			}
		}
		payload := all[off : off+p.Value.Len()]
		off += p.Value.Len()
		buf := make([]byte, 4*len(payload))
		for i, v := range payload {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return rawBytes, compressedBytes, err
		}
	}
	return rawBytes, compressedBytes, nil
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint into the
// given parameters, matching by position. Names and shapes must agree —
// a model-architecture mismatch is an error, not a silent truncation.
func LoadCheckpoint(r io.Reader, params []*Param) error {
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(r, binary.LittleEndian, &v)
		return v, err
	}
	magic, err := readU32()
	if err != nil {
		return fmt.Errorf("nn: reading checkpoint magic: %w", err)
	}
	if magic != checkpointMagic {
		return fmt.Errorf("nn: bad checkpoint magic %#x", magic)
	}
	count, err := readU32()
	if err != nil {
		return err
	}
	if int(count) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d parameters, model has %d", count, len(params))
	}
	for _, p := range params {
		nameLen, err := readU32()
		if err != nil {
			return err
		}
		if nameLen > 4096 {
			return fmt.Errorf("nn: implausible name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return err
		}
		if string(name) != p.Name {
			return fmt.Errorf("nn: checkpoint parameter %q does not match model parameter %q", name, p.Name)
		}
		rank, err := readU32()
		if err != nil {
			return err
		}
		if rank > 8 {
			return fmt.Errorf("nn: implausible rank %d for %s", rank, p.Name)
		}
		elems := 1
		shape := make([]int, rank)
		for i := range shape {
			d, err := readU32()
			if err != nil {
				return err
			}
			shape[i] = int(d)
			elems *= int(d)
		}
		want := p.Value.Shape()
		if len(shape) != len(want) {
			return fmt.Errorf("nn: %s rank mismatch %v vs %v", p.Name, shape, want)
		}
		for i := range shape {
			if shape[i] != want[i] {
				return fmt.Errorf("nn: %s shape mismatch %v vs %v", p.Name, shape, want)
			}
		}
		buf := make([]byte, 4*elems)
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("nn: reading %s payload: %w", p.Name, err)
		}
		dst := p.Value.Data()
		for i := range dst {
			dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	}
	return nil
}
