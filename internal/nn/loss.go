package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy of logits
// [BD, classes] against integer labels, returning the loss and the
// gradient with respect to the logits.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	bd, k := logits.Dim(0), logits.Dim(1)
	if bd != len(labels) {
		panic(fmt.Sprintf("nn: cross-entropy batch %d vs %d labels", bd, len(labels)))
	}
	grad := tensor.New(bd, k)
	var loss float64
	ld, gd := logits.Data(), grad.Data()
	inv := 1 / float64(bd)
	for b := 0; b < bd; b++ {
		row := ld[b*k : (b+1)*k]
		// Stable softmax.
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logSum := math.Log(sum)
		label := labels[b]
		if label < 0 || label >= k {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", label, k))
		}
		loss += inv * (logSum - float64(row[label]-maxv))
		grow := gd[b*k : (b+1)*k]
		for j, v := range row {
			p := math.Exp(float64(v-maxv)) / sum
			grow[j] = float32(inv * p)
		}
		grow[label] -= float32(inv)
	}
	return loss, grad
}

// MSELoss returns mean squared error and its gradient w.r.t. pred.
func MSELoss(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("nn: MSE shape mismatch %v vs %v", pred.Shape(), target.Shape()))
	}
	n := float64(pred.Len())
	grad := tensor.New(pred.Shape()...)
	var loss float64
	pd, td, gd := pred.Data(), target.Data(), grad.Data()
	for i := range pd {
		d := float64(pd[i]) - float64(td[i])
		loss += d * d
		gd[i] = float32(2 * d / n)
	}
	return loss / n, grad
}

// BCEWithLogits returns the mean binary cross-entropy between logits and
// {0,1} targets (numerically stable log-sum-exp form) and its gradient.
func BCEWithLogits(logits, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if !logits.SameShape(target) {
		panic(fmt.Sprintf("nn: BCE shape mismatch %v vs %v", logits.Shape(), target.Shape()))
	}
	n := float64(logits.Len())
	grad := tensor.New(logits.Shape()...)
	var loss float64
	ld, td, gd := logits.Data(), target.Data(), grad.Data()
	for i := range ld {
		x := float64(ld[i])
		t := float64(td[i])
		// loss = max(x,0) − x·t + log(1 + e^{−|x|})
		loss += math.Max(x, 0) - x*t + math.Log1p(math.Exp(-math.Abs(x)))
		sig := 1 / (1 + math.Exp(-x))
		gd[i] = float32((sig - t) / n)
	}
	return loss / n, grad
}
