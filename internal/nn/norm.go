package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BatchNorm2d normalizes each channel over (batch, height, width) with
// learnable scale γ and shift β, tracking running statistics for
// evaluation mode.
type BatchNorm2d struct {
	C        int
	Eps      float64
	Momentum float64

	Gamma *Param // [C]
	Beta  *Param // [C]

	RunningMean []float64
	RunningVar  []float64

	// Cached forward state.
	xhat    *tensor.Tensor
	invStd  []float64
	inShape []int
}

// NewBatchNorm2d returns a batch-norm layer for c channels.
func NewBatchNorm2d(name string, c int) *BatchNorm2d {
	bn := &BatchNorm2d{
		C:           c,
		Eps:         1e-5,
		Momentum:    0.1,
		Gamma:       NewParam(name+".gamma", tensor.Full(1, c)),
		Beta:        NewParam(name+".beta", tensor.New(c)),
		RunningMean: make([]float64, c),
		RunningVar:  make([]float64, c),
	}
	for i := range bn.RunningVar {
		bn.RunningVar[i] = 1
	}
	return bn
}

// Forward normalizes with batch statistics when training, running
// statistics otherwise.
func (bn *BatchNorm2d) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkShape4(x, "BatchNorm2d")
	bd, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if ch != bn.C {
		panic(fmt.Sprintf("nn: BatchNorm2d expects %d channels, got %d", bn.C, ch))
	}
	bn.inShape = x.Shape()
	n := float64(bd * h * w)
	out := tensor.New(x.Shape()...)
	bn.xhat = tensor.New(x.Shape()...)
	bn.invStd = make([]float64, ch)
	xd, od, xh := x.Data(), out.Data(), bn.xhat.Data()
	gamma, beta := bn.Gamma.Value.Data(), bn.Beta.Value.Data()
	for c := 0; c < ch; c++ {
		var mean, varv float64
		if train {
			var sum float64
			forEachChannel(bd, ch, h, w, c, func(ix int) { sum += float64(xd[ix]) })
			mean = sum / n
			var sq float64
			forEachChannel(bd, ch, h, w, c, func(ix int) {
				d := float64(xd[ix]) - mean
				sq += d * d
			})
			varv = sq / n
			bn.RunningMean[c] = (1-bn.Momentum)*bn.RunningMean[c] + bn.Momentum*mean
			bn.RunningVar[c] = (1-bn.Momentum)*bn.RunningVar[c] + bn.Momentum*varv
		} else {
			mean = bn.RunningMean[c]
			varv = bn.RunningVar[c]
		}
		inv := 1 / math.Sqrt(varv+bn.Eps)
		bn.invStd[c] = inv
		g, b := float64(gamma[c]), float64(beta[c])
		forEachChannel(bd, ch, h, w, c, func(ix int) {
			xn := (float64(xd[ix]) - mean) * inv
			xh[ix] = float32(xn)
			od[ix] = float32(g*xn + b)
		})
	}
	return out
}

// Backward implements the standard batch-norm gradient.
func (bn *BatchNorm2d) Backward(grad *tensor.Tensor) *tensor.Tensor {
	bd, ch := bn.inShape[0], bn.inShape[1]
	h, w := bn.inShape[2], bn.inShape[3]
	n := float64(bd * h * w)
	dx := tensor.New(bn.inShape...)
	gd, dd, xh := grad.Data(), dx.Data(), bn.xhat.Data()
	dgamma, dbeta := bn.Gamma.Grad.Data(), bn.Beta.Grad.Data()
	gamma := bn.Gamma.Value.Data()
	for c := 0; c < ch; c++ {
		var sumG, sumGX float64
		forEachChannel(bd, ch, h, w, c, func(ix int) {
			sumG += float64(gd[ix])
			sumGX += float64(gd[ix]) * float64(xh[ix])
		})
		dgamma[c] += float32(sumGX)
		dbeta[c] += float32(sumG)
		coef := float64(gamma[c]) * bn.invStd[c]
		forEachChannel(bd, ch, h, w, c, func(ix int) {
			dd[ix] = float32(coef * (float64(gd[ix]) - sumG/n - float64(xh[ix])*sumGX/n))
		})
	}
	return dx
}

// Params returns γ and β.
func (bn *BatchNorm2d) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// forEachChannel visits every flat index of channel c in a [bd,ch,h,w]
// layout.
func forEachChannel(bd, ch, h, w, c int, f func(ix int)) {
	plane := h * w
	for b := 0; b < bd; b++ {
		base := (b*ch + c) * plane
		for i := 0; i < plane; i++ {
			f(base + i)
		}
	}
}

// Residual wraps a body and adds a skip connection: y = body(x) + proj(x),
// where proj is identity when shapes match or a 1×1 strided convolution
// otherwise — the ResNet basic-block pattern.
type Residual struct {
	Body *Sequential
	Proj *Conv2d // nil for identity skip
}

// NewResidual builds a residual block around body; proj may be nil.
func NewResidual(body *Sequential, proj *Conv2d) *Residual {
	return &Residual{Body: body, Proj: proj}
}

// Forward computes body(x) + skip(x).
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := r.Body.Forward(x, train)
	if r.Proj != nil {
		return y.Add(r.Proj.Forward(x, train))
	}
	return y.Add(x)
}

// Backward splits the gradient between the body and the skip path.
func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := r.Body.Backward(grad)
	if r.Proj != nil {
		dx = dx.Add(r.Proj.Backward(grad))
	} else {
		dx = dx.Add(grad)
	}
	return dx
}

// Params returns the body's and projection's parameters.
func (r *Residual) Params() []*Param {
	ps := r.Body.Params()
	if r.Proj != nil {
		ps = append(ps, r.Proj.Params()...)
	}
	return ps
}
