package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Dropout zeroes each activation with probability P during training and
// rescales the survivors by 1/(1−P) (inverted dropout), so evaluation
// needs no adjustment. Randomness comes from an injected seeded RNG,
// keeping training runs exactly reproducible.
type Dropout struct {
	P    float64
	rng  *tensor.RNG
	mask []bool
}

// NewDropout returns a dropout layer with drop probability p ∈ [0,1).
func NewDropout(rng *tensor.RNG, p float64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %g outside [0,1)", p))
	}
	return &Dropout{P: p, rng: rng}
}

// Forward applies the mask in training mode and is the identity in eval.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		d.mask = nil
		return x
	}
	out := x.Clone()
	data := out.Data()
	if cap(d.mask) < len(data) {
		d.mask = make([]bool, len(data))
	}
	d.mask = d.mask[:len(data)]
	scale := float32(1 / (1 - d.P))
	for i := range data {
		if d.rng.Float64() < d.P {
			d.mask[i] = false
			data[i] = 0
		} else {
			d.mask[i] = true
			data[i] *= scale
		}
	}
	return out
}

// Backward routes gradients through the surviving units only.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return grad
	}
	out := grad.Clone()
	data := out.Data()
	scale := float32(1 / (1 - d.P))
	for i := range data {
		if d.mask[i] {
			data[i] *= scale
		} else {
			data[i] = 0
		}
	}
	return out
}

// Params returns nil: dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }

// AvgPool2d is non-overlapping k×k average pooling.
type AvgPool2d struct {
	K       int
	inShape []int
}

// NewAvgPool2d returns a k×k/stride-k average pool.
func NewAvgPool2d(k int) *AvgPool2d {
	if k <= 0 {
		panic("nn: AvgPool2d needs positive k")
	}
	return &AvgPool2d{K: k}
}

// Forward averages each k×k window.
func (a *AvgPool2d) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkShape4(x, "AvgPool2d")
	bd, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if h%a.K != 0 || w%a.K != 0 {
		panic(fmt.Sprintf("nn: AvgPool2d %d does not divide %dx%d", a.K, h, w))
	}
	a.inShape = x.Shape()
	oh, ow := h/a.K, w/a.K
	out := tensor.New(bd, ch, oh, ow)
	inv := 1 / float32(a.K*a.K)
	xd, od := x.Data(), out.Data()
	for b := 0; b < bd; b++ {
		for c := 0; c < ch; c++ {
			plane := (b*ch + c) * h * w
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					var s float32
					for ki := 0; ki < a.K; ki++ {
						for kj := 0; kj < a.K; kj++ {
							s += xd[plane+(oi*a.K+ki)*w+oj*a.K+kj]
						}
					}
					od[((b*ch+c)*oh+oi)*ow+oj] = s * inv
				}
			}
		}
	}
	return out
}

// Backward spreads each gradient uniformly over its window.
func (a *AvgPool2d) Backward(grad *tensor.Tensor) *tensor.Tensor {
	bd, ch := a.inShape[0], a.inShape[1]
	h, w := a.inShape[2], a.inShape[3]
	oh, ow := h/a.K, w/a.K
	dx := tensor.New(a.inShape...)
	inv := 1 / float32(a.K*a.K)
	gd, dd := grad.Data(), dx.Data()
	for b := 0; b < bd; b++ {
		for c := 0; c < ch; c++ {
			plane := (b*ch + c) * h * w
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					g := gd[((b*ch+c)*oh+oi)*ow+oj] * inv
					for ki := 0; ki < a.K; ki++ {
						for kj := 0; kj < a.K; kj++ {
							dd[plane+(oi*a.K+ki)*w+oj*a.K+kj] = g
						}
					}
				}
			}
		}
	}
	return dx
}

// Params returns nil: pooling has no parameters.
func (a *AvgPool2d) Params() []*Param { return nil }

// LeakyReLU is max(x, αx) for small α, avoiding dead units.
type LeakyReLU struct {
	Alpha float32
	neg   []bool
}

// NewLeakyReLU returns a leaky ReLU with the given negative slope.
func NewLeakyReLU(alpha float32) *LeakyReLU {
	return &LeakyReLU{Alpha: alpha}
}

// Forward scales negative inputs by Alpha.
func (l *LeakyReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	data := out.Data()
	if cap(l.neg) < len(data) {
		l.neg = make([]bool, len(data))
	}
	l.neg = l.neg[:len(data)]
	for i, v := range data {
		if v < 0 {
			l.neg[i] = true
			data[i] = l.Alpha * v
		} else {
			l.neg[i] = false
		}
	}
	return out
}

// Backward scales gradients of negative-input units by Alpha.
func (l *LeakyReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	data := out.Data()
	for i := range data {
		if l.neg[i] {
			data[i] *= l.Alpha
		}
	}
	return out
}

// Params returns nil: LeakyReLU has no parameters.
func (l *LeakyReLU) Params() []*Param { return nil }
