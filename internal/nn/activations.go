package nn

import (
	"math"

	"repro/internal/tensor"
)

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward computes max(x, 0) and records the active mask.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	if cap(r.mask) < len(d) {
		r.mask = make([]bool, len(d))
	}
	r.mask = r.mask[:len(d)]
	for i, v := range d {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			d[i] = 0
		}
	}
	return out
}

// Backward zeroes gradients where the input was non-positive.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	d := out.Data()
	for i := range d {
		if !r.mask[i] {
			d[i] = 0
		}
	}
	return out
}

// Params returns nil: ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Sigmoid is the logistic activation.
type Sigmoid struct {
	out *tensor.Tensor
}

// NewSigmoid returns a Sigmoid layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward computes 1/(1+e^-x).
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Apply(func(v float32) float32 {
		return float32(1 / (1 + math.Exp(-float64(v))))
	})
	s.out = out
	return out
}

// Backward multiplies by σ(x)(1−σ(x)).
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	d := out.Data()
	o := s.out.Data()
	for i := range d {
		d[i] *= o[i] * (1 - o[i])
	}
	return out
}

// Params returns nil: Sigmoid has no parameters.
func (s *Sigmoid) Params() []*Param { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	out *tensor.Tensor
}

// NewTanh returns a Tanh layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward computes tanh(x).
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Apply(func(v float32) float32 { return float32(math.Tanh(float64(v))) })
	t.out = out
	return out
}

// Backward multiplies by 1−tanh²(x).
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	d := out.Data()
	o := t.out.Data()
	for i := range d {
		d[i] *= 1 - o[i]*o[i]
	}
	return out
}

// Params returns nil: Tanh has no parameters.
func (t *Tanh) Params() []*Param { return nil }

// Flatten reshapes [BD, ...] to [BD, rest].
type Flatten struct {
	inShape []int
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all but the batch dimension.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = x.Shape()
	return x.Reshape(x.Dim(0), -1)
}

// Backward restores the cached input shape.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// Params returns nil: Flatten has no parameters.
func (f *Flatten) Params() []*Param { return nil }
