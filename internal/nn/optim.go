package nn

import (
	"math"

	"repro/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and leaves gradients untouched (callers
	// zero them via Sequential.ZeroGrad).
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity map[*Param]*tensor.Tensor
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: map[*Param]*tensor.Tensor{}}
}

// Step applies v = µv − lr·g; p += v (or plain p −= lr·g without
// momentum).
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if s.Momentum == 0 {
			p.Value.Axpy(float32(-s.LR), p.Grad)
			continue
		}
		v, ok := s.velocity[p]
		if !ok {
			v = tensor.New(p.Value.Shape()...)
			s.velocity[p] = v
		}
		v.ScaleInPlace(float32(s.Momentum))
		v.Axpy(float32(-s.LR), p.Grad)
		p.Value.AddInPlace(v)
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*Param]*tensor.Tensor
}

// NewAdam returns an Adam optimizer with the standard β defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*Param]*tensor.Tensor{}, v: map[*Param]*tensor.Tensor{},
	}
}

// Step applies one Adam update.
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.Value.Shape()...)
			a.m[p] = m
			a.v[p] = tensor.New(p.Value.Shape()...)
		}
		v := a.v[p]
		md, vd, gd, pd := m.Data(), v.Data(), p.Grad.Data(), p.Value.Data()
		for i := range gd {
			g := float64(gd[i])
			md[i] = float32(a.Beta1*float64(md[i]) + (1-a.Beta1)*g)
			vd[i] = float32(a.Beta2*float64(vd[i]) + (1-a.Beta2)*g*g)
			mhat := float64(md[i]) / c1
			vhat := float64(vd[i]) / c2
			pd[i] -= float32(a.LR * mhat / (math.Sqrt(vhat) + a.Eps))
		}
	}
}
