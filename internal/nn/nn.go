// Package nn is the training substrate for the accuracy experiments
// (Figs. 7/8/9/16): a compact neural-network library with explicit
// forward/backward passes, the layers the four benchmark networks need
// (convolutions via im2col, batch norm, pooling, upsampling, residual
// blocks), the three losses (cross-entropy, MSE, BCE-with-logits), and
// SGD/Adam optimizers.
//
// The library is deliberately deterministic: weight initialization draws
// from a caller-supplied seeded RNG and there is no hidden global state,
// so every training curve in EXPERIMENTS.md reproduces exactly.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter and a zeroed gradient of the same shape.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// Layer is one differentiable module. Forward caches whatever Backward
// needs; Backward consumes the cached state and returns the gradient
// with respect to the layer input. Layers are stateful and not safe for
// concurrent use (one trainer per model).
type Layer interface {
	// Forward computes the layer output. train selects training-time
	// behaviour (batch-norm statistics).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward propagates the output gradient to the input gradient and
	// accumulates parameter gradients.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
}

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a sequential model.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward runs every layer in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs every layer's backward pass in reverse order.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params collects all trainable parameters.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears every parameter gradient.
func (s *Sequential) ZeroGrad() {
	for _, p := range s.Params() {
		p.Grad.Zero()
	}
}

// ParamCount returns the total number of trainable scalars.
func (s *Sequential) ParamCount() int {
	n := 0
	for _, p := range s.Params() {
		n += p.Value.Len()
	}
	return n
}

// checkShape4 panics with a labelled message when x is not 4-D — the
// convolutional layers' contract.
func checkShape4(x *tensor.Tensor, layer string) {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: %s expects [BD,C,H,W], got %v", layer, x.Shape()))
	}
}
