package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestAvgPoolGradCheck(t *testing.T) {
	rng := tensor.NewRNG(21)
	x := rng.Uniform(-1, 1, 2, 2, 4, 4)
	gradCheck(t, "AvgPool2d", NewAvgPool2d(2), x, 2e-2)
}

func TestAvgPoolForwardValues(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 1, 1, 4, 4)
	y := NewAvgPool2d(2).Forward(x, true)
	want := []float32{(1 + 2 + 5 + 6) / 4.0, (3 + 4 + 7 + 8) / 4.0, (9 + 10 + 13 + 14) / 4.0, (11 + 12 + 15 + 16) / 4.0}
	for i, w := range want {
		if y.Data()[i] != w {
			t.Fatalf("AvgPool output %v, want %v", y.Data(), want)
		}
	}
}

func TestLeakyReLUGradCheck(t *testing.T) {
	rng := tensor.NewRNG(22)
	// Keep away from the kink.
	pos := rng.Uniform(0.2, 2, 2, 8)
	neg := rng.Uniform(-2, -0.2, 2, 8)
	gradCheck(t, "LeakyReLU+", NewLeakyReLU(0.1), pos, 2e-2)
	gradCheck(t, "LeakyReLU-", NewLeakyReLU(0.1), neg, 2e-2)
}

func TestLeakyReLUForward(t *testing.T) {
	l := NewLeakyReLU(0.1)
	x := tensor.FromSlice([]float32{-2, 0, 3}, 3)
	y := l.Forward(x, true)
	want := []float32{-0.2, 0, 3}
	for i, w := range want {
		if math.Abs(float64(y.Data()[i]-w)) > 1e-6 {
			t.Fatalf("LeakyReLU %v, want %v", y.Data(), want)
		}
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	rng := tensor.NewRNG(23)
	d := NewDropout(rng, 0.5)
	x := rng.Uniform(-1, 1, 100)
	if !d.Forward(x, false).Equal(x) {
		t.Fatal("eval-mode dropout must be identity")
	}
}

func TestDropoutTrainStatistics(t *testing.T) {
	rng := tensor.NewRNG(24)
	d := NewDropout(rng, 0.3)
	x := tensor.Full(1, 10000)
	y := d.Forward(x, true)
	zeros := 0
	for _, v := range y.Data() {
		switch v {
		case 0:
			zeros++
		case float32(1 / 0.7):
		default:
			t.Fatalf("unexpected value %g", v)
		}
	}
	frac := float64(zeros) / 10000
	if math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("dropped fraction %g, want ≈0.3", frac)
	}
	// Inverted dropout keeps the expectation: mean ≈ 1.
	if m := y.Mean(); math.Abs(m-1) > 0.05 {
		t.Fatalf("post-dropout mean %g", m)
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	rng := tensor.NewRNG(25)
	d := NewDropout(rng, 0.5)
	x := rng.Uniform(0.5, 1, 64)
	y := d.Forward(x, true)
	g := tensor.Full(1, 64)
	dx := d.Backward(g)
	for i := range y.Data() {
		if (y.Data()[i] == 0) != (dx.Data()[i] == 0) {
			t.Fatal("backward mask disagrees with forward mask")
		}
		if y.Data()[i] != 0 && math.Abs(float64(dx.Data()[i]-2)) > 1e-6 {
			t.Fatalf("survivor gradient %g, want 1/(1-p)=2", dx.Data()[i])
		}
	}
}

func TestDropoutValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=1 must panic")
		}
	}()
	NewDropout(tensor.NewRNG(1), 1)
}

func TestDropoutInTraining(t *testing.T) {
	// A model with dropout still learns the stripes task.
	rng := tensor.NewRNG(26)
	model := NewSequential(
		NewConv2d(rng, "c1", 1, 4, 3, 1, 1),
		NewLeakyReLU(0.05),
		NewAvgPool2d(2),
		NewFlatten(),
		NewDropout(rng, 0.2),
		NewLinear(rng, "fc", 4*4*4, 2),
	)
	opt := NewSGD(0.05, 0.9)
	var loss float64
	for step := 0; step < 120; step++ {
		x, labels := stripeBatch(rng, 16)
		logits := model.Forward(x, true)
		var grad *tensor.Tensor
		loss, grad = SoftmaxCrossEntropy(logits, labels)
		model.ZeroGrad()
		model.Backward(grad)
		opt.Step(model.Params())
	}
	if loss > 0.4 {
		t.Fatalf("dropout model did not converge: %g", loss)
	}
}
