package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// scalarize turns a layer output into a scalar loss L = Σ w·y with fixed
// random weights, whose gradient w.r.t. y is simply w.
func scalarize(rng *tensor.RNG, shape []int) (*tensor.Tensor, func(*tensor.Tensor) float64) {
	w := rng.Uniform(-1, 1, shape...)
	return w, func(y *tensor.Tensor) float64 {
		var s float64
		wd, yd := w.Data(), y.Data()
		for i := range wd {
			s += float64(wd[i]) * float64(yd[i])
		}
		return s
	}
}

// gradCheck verifies a layer's analytic gradients (input and parameters)
// against central finite differences.
func gradCheck(t *testing.T, name string, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	rng := tensor.NewRNG(99)
	y := layer.Forward(x, true)
	w, loss := scalarize(rng, y.Shape())

	// Analytic gradients.
	for _, p := range layer.Params() {
		p.Grad.Zero()
	}
	dx := layer.Backward(w)

	eps := 1e-2
	// Input gradient check on a sample of positions.
	checkAt := func(get func() float32, set func(float32), analytic float64, what string) {
		orig := get()
		set(orig + float32(eps))
		lp := loss(layer.Forward(x, true))
		set(orig - float32(eps))
		lm := loss(layer.Forward(x, true))
		set(orig)
		layer.Forward(x, true) // restore cached state
		numeric := (lp - lm) / (2 * eps)
		scale := math.Max(1, math.Abs(numeric))
		if math.Abs(numeric-analytic) > tol*scale {
			t.Errorf("%s %s: analytic %g vs numeric %g", name, what, analytic, numeric)
		}
	}
	idxs := samplePositions(rng, x.Len(), 6)
	for _, ix := range idxs {
		ix := ix
		checkAt(
			func() float32 { return x.Data()[ix] },
			func(v float32) { x.Data()[ix] = v },
			float64(dx.Data()[ix]),
			"input",
		)
	}
	for _, p := range layer.Params() {
		for _, ix := range samplePositions(rng, p.Value.Len(), 4) {
			ix := ix
			p := p
			checkAt(
				func() float32 { return p.Value.Data()[ix] },
				func(v float32) { p.Value.Data()[ix] = v },
				float64(p.Grad.Data()[ix]),
				p.Name,
			)
		}
	}
}

func samplePositions(rng *tensor.RNG, n, k int) []int {
	if k > n {
		k = n
	}
	return rng.Perm(n)[:k]
}

func TestConv2dGradCheck(t *testing.T) {
	rng := tensor.NewRNG(1)
	layer := NewConv2d(rng, "c", 2, 3, 3, 1, 1)
	x := rng.Uniform(-1, 1, 2, 2, 6, 6)
	gradCheck(t, "Conv2d", layer, x, 2e-2)
}

func TestConv2dStridedGradCheck(t *testing.T) {
	rng := tensor.NewRNG(2)
	layer := NewConv2d(rng, "c", 2, 4, 3, 2, 1)
	x := rng.Uniform(-1, 1, 1, 2, 8, 8)
	gradCheck(t, "Conv2dStride2", layer, x, 2e-2)
}

func TestLinearGradCheck(t *testing.T) {
	rng := tensor.NewRNG(3)
	layer := NewLinear(rng, "fc", 6, 4)
	x := rng.Uniform(-1, 1, 3, 6)
	gradCheck(t, "Linear", layer, x, 2e-2)
}

func TestBatchNormGradCheck(t *testing.T) {
	rng := tensor.NewRNG(4)
	layer := NewBatchNorm2d("bn", 3)
	x := rng.Uniform(-2, 2, 4, 3, 3, 3)
	gradCheck(t, "BatchNorm2d", layer, x, 4e-2)
}

func TestReLUGradCheck(t *testing.T) {
	rng := tensor.NewRNG(5)
	// Keep inputs away from the kink at 0 for finite differences.
	x := rng.Uniform(0.2, 2, 2, 3, 4, 4)
	neg := rng.Uniform(-2, -0.2, 2, 3, 4, 4)
	x = x.Add(tensor.New(2, 3, 4, 4)) // no-op add to keep types clear
	gradCheck(t, "ReLU+", NewReLU(), x, 2e-2)
	gradCheck(t, "ReLU-", NewReLU(), neg, 2e-2)
}

func TestSigmoidTanhGradCheck(t *testing.T) {
	rng := tensor.NewRNG(6)
	x := rng.Uniform(-2, 2, 2, 8)
	gradCheck(t, "Sigmoid", NewSigmoid(), x, 2e-2)
	gradCheck(t, "Tanh", NewTanh(), x.Clone(), 2e-2)
}

func TestMaxPoolGradCheck(t *testing.T) {
	rng := tensor.NewRNG(7)
	// Well-separated values avoid argmax flips under ±ε.
	x := rng.Uniform(-4, 4, 1, 2, 4, 4)
	gradCheck(t, "MaxPool2d", NewMaxPool2d(2), x, 2e-2)
}

func TestGlobalAvgPoolGradCheck(t *testing.T) {
	rng := tensor.NewRNG(8)
	x := rng.Uniform(-1, 1, 2, 3, 4, 4)
	gradCheck(t, "GlobalAvgPool", NewGlobalAvgPool(), x, 2e-2)
}

func TestUpsampleGradCheck(t *testing.T) {
	rng := tensor.NewRNG(9)
	x := rng.Uniform(-1, 1, 1, 2, 3, 3)
	gradCheck(t, "Upsample2x", NewUpsample2x(), x, 2e-2)
}

func TestFlattenGradCheck(t *testing.T) {
	rng := tensor.NewRNG(10)
	x := rng.Uniform(-1, 1, 2, 3, 2, 2)
	gradCheck(t, "Flatten", NewFlatten(), x, 2e-2)
}

func TestResidualGradCheck(t *testing.T) {
	rng := tensor.NewRNG(11)
	body := NewSequential(
		NewConv2d(rng, "r1", 2, 2, 3, 1, 1),
		NewTanh(),
	)
	layer := NewResidual(body, nil)
	x := rng.Uniform(-1, 1, 1, 2, 4, 4)
	gradCheck(t, "ResidualIdentity", layer, x, 2e-2)

	proj := NewConv2d(rng, "proj", 2, 3, 1, 2, 0)
	body2 := NewSequential(NewConv2d(rng, "r2", 2, 3, 3, 2, 1), NewTanh())
	layer2 := NewResidual(body2, proj)
	gradCheck(t, "ResidualProj", layer2, rng.Uniform(-1, 1, 1, 2, 4, 4), 2e-2)
}

func TestSequentialGradCheck(t *testing.T) {
	rng := tensor.NewRNG(12)
	// Smooth activations only: ReLU kinks and MaxPool argmax flips break
	// finite differences through a deep stack (each layer is checked at
	// a kink-safe point in its own test above).
	model := NewSequential(
		NewConv2d(rng, "c1", 1, 2, 3, 1, 1),
		NewTanh(),
		NewGlobalAvgPool(),
		NewLinear(rng, "fc", 2, 3),
	)
	x := rng.Uniform(0.1, 1, 2, 1, 4, 4)
	gradCheck(t, "Sequential", seqAsLayer{model}, x, 3e-2)
}

// seqAsLayer adapts Sequential to the Layer interface for gradCheck.
type seqAsLayer struct{ s *Sequential }

func (a seqAsLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return a.s.Forward(x, train)
}
func (a seqAsLayer) Backward(g *tensor.Tensor) *tensor.Tensor { return a.s.Backward(g) }
func (a seqAsLayer) Params() []*Param                         { return a.s.Params() }
