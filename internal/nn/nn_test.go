package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over k classes: loss = ln(k).
	logits := tensor.New(2, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("uniform loss %g, want ln4=%g", loss, math.Log(4))
	}
	// Gradient rows sum to zero (softmax minus one-hot).
	for b := 0; b < 2; b++ {
		var s float64
		for j := 0; j < 4; j++ {
			s += float64(grad.At2(b, j))
		}
		if math.Abs(s) > 1e-6 {
			t.Fatalf("grad row %d sums to %g", b, s)
		}
	}
	// True-label entries are negative, others positive.
	if grad.At2(0, 0) >= 0 || grad.At2(0, 1) <= 0 {
		t.Fatal("cross-entropy gradient signs wrong")
	}
}

func TestSoftmaxCrossEntropyNumericGrad(t *testing.T) {
	rng := tensor.NewRNG(1)
	logits := rng.Uniform(-2, 2, 3, 5)
	labels := []int{1, 4, 0}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	eps := 1e-3
	for _, ix := range []int{0, 4, 7, 14} {
		orig := logits.Data()[ix]
		logits.Data()[ix] = orig + float32(eps)
		lp, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data()[ix] = orig - float32(eps)
		lm, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data()[ix] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-float64(grad.Data()[ix])) > 1e-3 {
			t.Fatalf("index %d: numeric %g vs analytic %g", ix, numeric, grad.Data()[ix])
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	// Huge logits must not overflow.
	logits := tensor.FromSlice([]float32{1000, 999, -1000, 0}, 1, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss = %g", loss)
	}
	for _, g := range grad.Data() {
		if math.IsNaN(float64(g)) {
			t.Fatal("NaN gradient")
		}
	}
}

func TestMSELossAndGrad(t *testing.T) {
	p := tensor.FromSlice([]float32{1, 2}, 2)
	q := tensor.FromSlice([]float32{0, 4}, 2)
	loss, grad := MSELoss(p, q)
	if math.Abs(loss-(1+4)/2.0) > 1e-6 {
		t.Fatalf("MSE = %g", loss)
	}
	// d/dp mean((p-q)²) = 2(p-q)/n
	if math.Abs(float64(grad.Data()[0])-1) > 1e-6 || math.Abs(float64(grad.Data()[1])+2) > 1e-6 {
		t.Fatalf("MSE grad %v", grad.Data())
	}
}

func TestBCEWithLogitsMatchesDefinition(t *testing.T) {
	rng := tensor.NewRNG(2)
	logits := rng.Uniform(-3, 3, 10)
	target := tensor.New(10)
	for i := range target.Data() {
		if rng.Float64() < 0.5 {
			target.Data()[i] = 1
		}
	}
	loss, grad := BCEWithLogits(logits, target)
	// Reference: −[t·ln σ(x) + (1−t)·ln(1−σ(x))]
	var want float64
	for i, x := range logits.Data() {
		s := 1 / (1 + math.Exp(-float64(x)))
		tt := float64(target.Data()[i])
		want += -(tt*math.Log(s) + (1-tt)*math.Log(1-s))
	}
	want /= 10
	if math.Abs(loss-want) > 1e-6 {
		t.Fatalf("BCE = %g, want %g", loss, want)
	}
	// Numeric gradient.
	eps := 1e-3
	orig := logits.Data()[3]
	logits.Data()[3] = orig + float32(eps)
	lp, _ := BCEWithLogits(logits, target)
	logits.Data()[3] = orig - float32(eps)
	lm, _ := BCEWithLogits(logits, target)
	logits.Data()[3] = orig
	if math.Abs((lp-lm)/(2*eps)-float64(grad.Data()[3])) > 1e-3 {
		t.Fatal("BCE gradient mismatch")
	}
}

func TestSGDQuadratic(t *testing.T) {
	// Minimize ||p||² with and without momentum.
	for _, mom := range []float64{0, 0.9} {
		p := NewParam("p", tensor.FromSlice([]float32{4, -3}, 2))
		opt := NewSGD(0.1, mom)
		for i := 0; i < 300; i++ {
			p.Grad.Zero()
			p.Grad.Axpy(2, p.Value) // ∇||p||² = 2p
			opt.Step([]*Param{p})
		}
		if p.Value.Norm2() > 1e-2 {
			t.Fatalf("momentum=%g: SGD did not converge, |p| = %g", mom, p.Value.Norm2())
		}
	}
}

func TestAdamQuadratic(t *testing.T) {
	p := NewParam("p", tensor.FromSlice([]float32{5, -7, 0.5}, 3))
	opt := NewAdam(0.1)
	for i := 0; i < 400; i++ {
		p.Grad.Zero()
		p.Grad.Axpy(2, p.Value)
		opt.Step([]*Param{p})
	}
	if p.Value.Norm2() > 1e-2 {
		t.Fatalf("Adam did not converge, |p| = %g", p.Value.Norm2())
	}
}

func TestBatchNormNormalizesTraining(t *testing.T) {
	rng := tensor.NewRNG(3)
	bn := NewBatchNorm2d("bn", 2)
	x := rng.Normal(5, 3, 8, 2, 4, 4)
	y := bn.Forward(x, true)
	// Per-channel output mean ≈ 0, variance ≈ 1 (γ=1, β=0 at init).
	for c := 0; c < 2; c++ {
		var sum, sq float64
		n := 0
		forEachChannel(8, 2, 4, 4, c, func(ix int) {
			v := float64(y.Data()[ix])
			sum += v
			sq += v * v
			n++
		})
		mean := sum / float64(n)
		variance := sq/float64(n) - mean*mean
		if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 1e-3 {
			t.Fatalf("channel %d: mean %g var %g", c, mean, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := tensor.NewRNG(4)
	bn := NewBatchNorm2d("bn", 1)
	for i := 0; i < 50; i++ {
		bn.Forward(rng.Normal(2, 1, 4, 1, 3, 3), true)
	}
	// In eval mode a constant input shifted by the learned running mean
	// must map near (x − µ)/σ.
	x := tensor.Full(2, 1, 1, 3, 3)
	y := bn.Forward(x, false)
	want := (2 - bn.RunningMean[0]) / math.Sqrt(bn.RunningVar[0]+bn.Eps)
	if math.Abs(float64(y.Data()[0])-want) > 1e-4 {
		t.Fatalf("eval output %g, want %g", y.Data()[0], want)
	}
}

func TestMaxPoolForwardValues(t *testing.T) {
	x := tensor.FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		-1, -2, 0, 0,
		-3, -4, 0, 9,
	}, 1, 1, 4, 4)
	y := NewMaxPool2d(2).Forward(x, true)
	want := []float32{4, 8, -1, 9}
	for i, w := range want {
		if y.Data()[i] != w {
			t.Fatalf("MaxPool output %v, want %v", y.Data(), want)
		}
	}
}

func TestUpsampleForwardValues(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	y := NewUpsample2x().Forward(x, true)
	want := []float32{1, 1, 2, 2, 1, 1, 2, 2, 3, 3, 4, 4, 3, 3, 4, 4}
	for i, w := range want {
		if y.Data()[i] != w {
			t.Fatalf("Upsample output %v", y.Data())
		}
	}
}

func TestConvOutSize(t *testing.T) {
	rng := tensor.NewRNG(5)
	c := NewConv2d(rng, "c", 1, 1, 3, 2, 1)
	if c.OutSize(32) != 16 {
		t.Fatalf("OutSize(32) = %d, want 16", c.OutSize(32))
	}
	c2 := NewConv2d(rng, "c2", 1, 1, 3, 1, 1)
	if c2.OutSize(32) != 32 {
		t.Fatalf("same-pad OutSize(32) = %d", c2.OutSize(32))
	}
}

func TestSequentialTrainsXORLikeTask(t *testing.T) {
	// End-to-end sanity: a small conv net must learn to separate two
	// pattern classes (horizontal vs vertical stripes).
	rng := tensor.NewRNG(6)
	model := NewSequential(
		NewConv2d(rng, "c1", 1, 4, 3, 1, 1),
		NewReLU(),
		NewMaxPool2d(2),
		NewFlatten(),
		NewLinear(rng, "fc", 4*4*4, 2),
	)
	opt := NewSGD(0.05, 0.9)
	makeBatch := func(bd int) (*tensor.Tensor, []int) {
		x := tensor.New(bd, 1, 8, 8)
		labels := make([]int, bd)
		for b := 0; b < bd; b++ {
			label := rng.Intn(2)
			labels[b] = label
			for i := 0; i < 8; i++ {
				for j := 0; j < 8; j++ {
					var v float32
					if label == 0 && i%2 == 0 {
						v = 1
					}
					if label == 1 && j%2 == 0 {
						v = 1
					}
					v += 0.1 * float32(rng.Norm())
					x.Set4(v, b, 0, i, j)
				}
			}
		}
		return x, labels
	}
	var loss float64
	for step := 0; step < 60; step++ {
		x, labels := makeBatch(16)
		logits := model.Forward(x, true)
		var grad *tensor.Tensor
		loss, grad = SoftmaxCrossEntropy(logits, labels)
		model.ZeroGrad()
		model.Backward(grad)
		opt.Step(model.Params())
	}
	if loss > 0.2 {
		t.Fatalf("training did not converge: final loss %g", loss)
	}
	// Check accuracy on fresh data.
	x, labels := makeBatch(32)
	logits := model.Forward(x, false)
	correct := 0
	for b := 0; b < 32; b++ {
		if logits.Index(b).Argmax() == labels[b] {
			correct++
		}
	}
	if correct < 28 {
		t.Fatalf("accuracy %d/32 too low", correct)
	}
}

func TestParamCountAndZeroGrad(t *testing.T) {
	rng := tensor.NewRNG(7)
	model := NewSequential(
		NewConv2d(rng, "c", 1, 2, 3, 1, 1), // 2*9 + 2 = 20
		NewLinear(rng, "fc", 4, 3),         // 12 + 3 = 15
	)
	if model.ParamCount() != 35 {
		t.Fatalf("ParamCount = %d, want 35", model.ParamCount())
	}
	for _, p := range model.Params() {
		p.Grad.Fill(3)
	}
	model.ZeroGrad()
	for _, p := range model.Params() {
		if p.Grad.MaxAbs() != 0 {
			t.Fatal("ZeroGrad left nonzero gradients")
		}
	}
}
