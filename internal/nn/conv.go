package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Conv2d is a 2-D convolution implemented with im2col + matmul — the
// same lowering the accelerator toolchains use, which keeps the training
// substrate's hot loop on the parallel matmul kernel.
type Conv2d struct {
	InC, OutC, K, Stride, Pad int

	W *Param // [OutC, InC*K*K]
	B *Param // [OutC]

	// Cached forward state for Backward.
	cols    []*tensor.Tensor // per-sample im2col matrices
	inShape []int
	outH    int
	outW    int
}

// NewConv2d builds a convolution with He-normal initialization drawn
// from rng.
func NewConv2d(rng *tensor.RNG, name string, inC, outC, k, stride, pad int) *Conv2d {
	if k <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: Conv2d %s invalid k=%d stride=%d pad=%d", name, k, stride, pad))
	}
	fanIn := inC * k * k
	std := float32(math.Sqrt(2 / float64(fanIn)))
	return &Conv2d{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		W: NewParam(name+".W", rng.Normal(0, std, outC, fanIn)),
		B: NewParam(name+".b", tensor.New(outC)),
	}
}

// OutSize returns the output spatial size for input size h.
func (c *Conv2d) OutSize(h int) int { return (h+2*c.Pad-c.K)/c.Stride + 1 }

// Forward computes the convolution over a [BD, InC, H, W] batch.
func (c *Conv2d) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	checkShape4(x, "Conv2d")
	bd, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if ch != c.InC {
		panic(fmt.Sprintf("nn: Conv2d %s expects %d channels, got %d", c.W.Name, c.InC, ch))
	}
	oh, ow := c.OutSize(h), c.OutSize(w)
	c.inShape = x.Shape()
	c.outH, c.outW = oh, ow
	c.cols = make([]*tensor.Tensor, bd)
	out := tensor.New(bd, c.OutC, oh, ow)
	tensor.ParallelFor(bd, func(b int) {
		col := im2col(x, b, c.K, c.Stride, c.Pad, oh, ow)
		c.cols[b] = col
		y := tensor.MatMul(c.W.Value, col) // [OutC, oh*ow]
		yd := y.Data()
		bias := c.B.Value.Data()
		dst := out.Data()[b*c.OutC*oh*ow : (b+1)*c.OutC*oh*ow]
		for o := 0; o < c.OutC; o++ {
			bo := bias[o]
			row := yd[o*oh*ow : (o+1)*oh*ow]
			for i, v := range row {
				dst[o*oh*ow+i] = v + bo
			}
		}
	})
	return out
}

// Backward accumulates dW, dB and returns dX.
func (c *Conv2d) Backward(grad *tensor.Tensor) *tensor.Tensor {
	bd := grad.Dim(0)
	oh, ow := c.outH, c.outW
	dx := tensor.New(c.inShape...)
	// Per-sample weight gradients are accumulated into per-worker
	// buffers then reduced, so the parallel loop never races on W.Grad.
	dws := make([]*tensor.Tensor, bd)
	dbs := make([]*tensor.Tensor, bd)
	wT := c.W.Value.Transpose()
	tensor.ParallelFor(bd, func(b int) {
		g := grad.Index(b).Reshape(c.OutC, oh*ow)
		col := c.cols[b]
		dws[b] = tensor.MatMul(g, col.Transpose())
		db := tensor.New(c.OutC)
		gd := g.Data()
		for o := 0; o < c.OutC; o++ {
			var s float32
			for _, v := range gd[o*oh*ow : (o+1)*oh*ow] {
				s += v
			}
			db.Data()[o] = s
		}
		dbs[b] = db
		dcol := tensor.MatMul(wT, g)
		col2im(dcol, dx, b, c.K, c.Stride, c.Pad, oh, ow)
	})
	for b := 0; b < bd; b++ {
		c.W.Grad.AddInPlace(dws[b])
		c.B.Grad.AddInPlace(dbs[b])
	}
	return dx
}

// Params returns the kernel and bias.
func (c *Conv2d) Params() []*Param { return []*Param{c.W, c.B} }

// im2col unrolls sample b of x into a [C*K*K, oh*ow] matrix.
func im2col(x *tensor.Tensor, b, k, stride, pad, oh, ow int) *tensor.Tensor {
	ch, h, w := x.Dim(1), x.Dim(2), x.Dim(3)
	col := tensor.New(ch*k*k, oh*ow)
	cd := col.Data()
	xd := x.Data()
	base := b * ch * h * w
	for c := 0; c < ch; c++ {
		for ki := 0; ki < k; ki++ {
			for kj := 0; kj < k; kj++ {
				row := ((c*k+ki)*k + kj) * oh * ow
				for oi := 0; oi < oh; oi++ {
					si := oi*stride + ki - pad
					if si < 0 || si >= h {
						continue
					}
					srcRow := base + (c*h+si)*w
					dstRow := row + oi*ow
					for oj := 0; oj < ow; oj++ {
						sj := oj*stride + kj - pad
						if sj < 0 || sj >= w {
							continue
						}
						cd[dstRow+oj] = xd[srcRow+sj]
					}
				}
			}
		}
	}
	return col
}

// col2im scatter-adds a [C*K*K, oh*ow] gradient back into dx[b].
func col2im(col, dx *tensor.Tensor, b, k, stride, pad, oh, ow int) {
	ch, h, w := dx.Dim(1), dx.Dim(2), dx.Dim(3)
	cd := col.Data()
	xd := dx.Data()
	base := b * ch * h * w
	for c := 0; c < ch; c++ {
		for ki := 0; ki < k; ki++ {
			for kj := 0; kj < k; kj++ {
				row := ((c*k+ki)*k + kj) * oh * ow
				for oi := 0; oi < oh; oi++ {
					si := oi*stride + ki - pad
					if si < 0 || si >= h {
						continue
					}
					dstRow := base + (c*h+si)*w
					srcRow := row + oi*ow
					for oj := 0; oj < ow; oj++ {
						sj := oj*stride + kj - pad
						if sj < 0 || sj >= w {
							continue
						}
						xd[dstRow+sj] += cd[srcRow+oj]
					}
				}
			}
		}
	}
}

// Linear is a fully-connected layer: y = xW + b for x of shape [BD, in].
type Linear struct {
	In, Out int
	W       *Param // [in, out]
	B       *Param // [out]
	x       *tensor.Tensor
}

// NewLinear builds a fully-connected layer with He initialization.
func NewLinear(rng *tensor.RNG, name string, in, out int) *Linear {
	std := float32(math.Sqrt(2 / float64(in)))
	return &Linear{
		In: in, Out: out,
		W: NewParam(name+".W", rng.Normal(0, std, in, out)),
		B: NewParam(name+".b", tensor.New(out)),
	}
}

// Forward computes xW + b.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: Linear %s expects [BD,%d], got %v", l.W.Name, l.In, x.Shape()))
	}
	l.x = x
	out := tensor.MatMul(x, l.W.Value)
	bd := out.Dim(0)
	bias := l.B.Value.Data()
	for b := 0; b < bd; b++ {
		row := out.Data()[b*l.Out : (b+1)*l.Out]
		for i := range row {
			row[i] += bias[i]
		}
	}
	return out
}

// Backward accumulates dW = xᵀg, dB = Σg and returns gWᵀ.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	l.W.Grad.AddInPlace(tensor.MatMul(l.x.Transpose(), grad))
	bd := grad.Dim(0)
	db := l.B.Grad.Data()
	for b := 0; b < bd; b++ {
		row := grad.Data()[b*l.Out : (b+1)*l.Out]
		for i, v := range row {
			db[i] += v
		}
	}
	return tensor.MatMul(grad, l.W.Value.Transpose())
}

// Params returns the weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }
