// Package sz implements a compact error-bounded lossy compressor in the
// style of SZ (Di & Cappello, IPDPS 2016; §2.2 of the paper): a
// first-order 2-D Lorenzo predictor, linear-scale quantization of the
// prediction residual against a user-set absolute error bound, Huffman
// coding of the quantization codes, and verbatim storage of
// unpredictable values.
//
// It is the "error-bounded" counterpart to the fixed-rate ZFP baseline:
// the user bounds the pointwise error and the rate follows from the
// data, the opposite trade of DCT+Chop's compile-time fixed ratio —
// which is exactly why SZ-style codecs cannot run on the paper's
// accelerators (data-dependent sizes, bit-level encoding) and live here
// as a host reference.
package sz

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"repro/internal/tensor"
	"repro/internal/vle"
)

// Pooled scratch: the residual coder runs per plane inside the codec
// registry's pipeline, so quantization codes, the reconstruction state
// and staging byte buffers are all recycled across calls.
var (
	codePool = sync.Pool{New: func() any { return new([]int32) }}
	f32Pool  = sync.Pool{New: func() any { return new([]float32) }}
	bytePool = sync.Pool{New: func() any { return new([]byte) }}
)

// getCodes returns an int32 buffer of length n with arbitrary contents
// plus its pool box (hand the box back, not the slice — re-boxing on
// Put would allocate).
func getCodes(n int) ([]int32, *[]int32) {
	bp := codePool.Get().(*[]int32)
	if cap(*bp) < n {
		*bp = make([]int32, n)
	}
	return (*bp)[:n], bp
}

// getF32 returns a float32 buffer of length n with arbitrary contents
// plus its pool box. The Lorenzo recurrences write every cell before
// reading it, so no zeroing is needed.
func getF32(n int) ([]float32, *[]float32) {
	bp := f32Pool.Get().(*[]float32)
	if cap(*bp) < n {
		*bp = make([]float32, n)
	}
	return (*bp)[:n], bp
}

// Codec is an error-bounded compressor. Every reconstructed value is
// within ErrorBound of its original (absolute error).
type Codec struct {
	// ErrorBound is the absolute pointwise bound ε.
	ErrorBound float64
	// Bins is the quantization-code radius: residuals within
	// ±Bins·2ε are predictable, the rest stored verbatim.
	Bins int
}

// New returns a codec with the given absolute error bound and the
// standard 65536-bin radius.
func New(errorBound float64) (*Codec, error) {
	if errorBound <= 0 || math.IsNaN(errorBound) || math.IsInf(errorBound, 0) {
		return nil, fmt.Errorf("sz: error bound %g must be positive and finite", errorBound)
	}
	return &Codec{ErrorBound: errorBound, Bins: 1 << 16}, nil
}

const magic = 0x535A3244 // "SZ2D"

// Compress encodes every trailing 2-D plane of x.
func (c *Codec) Compress(x *tensor.Tensor) ([]byte, error) {
	if x.Dims() < 2 {
		return nil, fmt.Errorf("sz: need at least 2-D input, got %v", x.Shape())
	}
	h, w := x.Dim(-2), x.Dim(-1)
	if h == 0 || w == 0 {
		return nil, fmt.Errorf("sz: empty plane %dx%d", h, w)
	}
	planes := x.Len() / (h * w)
	// The unpredictable sentinel sits just past the code radius.
	sentinel := c.Bins + 1
	// Quantize against the bound exactly as the decompressor will see
	// it (stored as float32); the guard below still enforces the user's
	// full-precision bound.
	eb := float64(float32(c.ErrorBound))

	// Every cell of recon is written before it is read (the predictor
	// only looks west/north/northwest), so neither buffer needs zeroing.
	codes, codesBox := getCodes(planes * h * w)
	defer codePool.Put(codesBox)
	recon, reconBox := getF32(h * w)
	defer f32Pool.Put(reconBox)
	rawsBox := f32Pool.Get().(*[]float32)
	defer f32Pool.Put(rawsBox)
	raws := (*rawsBox)[:0]
	for p := 0; p < planes; p++ {
		plane := x.Data()[p*h*w : (p+1)*h*w]
		for i := 0; i < h; i++ {
			row := codes[(p*h+i)*w : (p*h+i+1)*w]
			for j := 0; j < w; j++ {
				pred := lorenzo(recon, i, j, w)
				v := float64(plane[i*w+j])
				q := math.Round((v - float64(pred)) / (2 * eb))
				if math.Abs(q) <= float64(c.Bins) {
					rec := float64(pred) + 2*eb*q
					// Guard against float32 rounding pushing the
					// reconstruction outside the bound.
					if r32 := float32(rec); math.Abs(float64(r32)-v) <= c.ErrorBound {
						row[j] = int32(q)
						recon[i*w+j] = r32
						continue
					}
				}
				row[j] = int32(sentinel)
				raws = append(raws, plane[i*w+j])
				recon[i*w+j] = plane[i*w+j]
			}
		}
	}
	*rawsBox = raws
	csBox := bytePool.Get().(*[]byte)
	defer bytePool.Put(csBox)
	codeStream, err := vle.AppendFlat((*csBox)[:0], codes, w)
	if err != nil {
		return nil, err
	}
	*csBox = codeStream

	out := make([]byte, 0, 28+len(codeStream)+4*len(raws))
	out = binary.LittleEndian.AppendUint32(out, magic)
	out = binary.LittleEndian.AppendUint32(out, math.Float32bits(float32(c.ErrorBound)))
	out = binary.LittleEndian.AppendUint32(out, uint32(planes))
	out = binary.LittleEndian.AppendUint32(out, uint32(h))
	out = binary.LittleEndian.AppendUint32(out, uint32(w))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(codeStream)))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(raws)))
	out = append(out, codeStream...)
	for _, v := range raws {
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(v))
	}
	return out, nil
}

// StreamDims reads the plane geometry recorded in a compressed stream's
// header without decoding it — callers use it to validate a stream
// against an expected shape before allocating the output.
func StreamDims(data []byte) (planes, h, w int, err error) {
	if len(data) < 28 {
		return 0, 0, 0, fmt.Errorf("sz: truncated header (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data) != magic {
		return 0, 0, 0, fmt.Errorf("sz: bad magic %#x", binary.LittleEndian.Uint32(data))
	}
	planes = int(binary.LittleEndian.Uint32(data[8:]))
	h = int(binary.LittleEndian.Uint32(data[12:]))
	w = int(binary.LittleEndian.Uint32(data[16:]))
	return planes, h, w, nil
}

// Decompress reconstructs a tensor of the given shape.
func (c *Codec) Decompress(data []byte, shape ...int) (*tensor.Tensor, error) {
	get := func(off int) (uint32, error) {
		if off+4 > len(data) {
			return 0, fmt.Errorf("sz: truncated stream at byte %d", off)
		}
		return binary.LittleEndian.Uint32(data[off:]), nil
	}
	m, err := get(0)
	if err != nil {
		return nil, err
	}
	if m != magic {
		return nil, fmt.Errorf("sz: bad magic %#x", m)
	}
	ebBits, err := get(4)
	if err != nil {
		return nil, err
	}
	eb := float64(math.Float32frombits(ebBits))
	if eb <= 0 || math.IsNaN(eb) || math.IsInf(eb, 0) {
		return nil, fmt.Errorf("sz: invalid stored error bound %g", eb)
	}
	var planes32, h32, w32, codeLen, rawLen uint32
	for i, dst := range []*uint32{&planes32, &h32, &w32, &codeLen, &rawLen} {
		v, err := get(8 + 4*i)
		if err != nil {
			return nil, err
		}
		*dst = v
	}
	planes, h, w := int(planes32), int(h32), int(w32)
	out := tensor.New(shape...)
	if out.Dims() < 2 || out.Dim(-2) != h || out.Dim(-1) != w || out.Len() != planes*h*w {
		return nil, fmt.Errorf("sz: shape %v does not match stream (%d planes of %dx%d)", shape, planes, h, w)
	}
	if err := c.decompressBody(out.Data(), data, eb, planes, h, w, codeLen, rawLen); err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressInto reconstructs a stream straight into dst (length
// planes·h·w as recorded in the stream header, which must also match
// the caller's expected plane geometry). It is the allocation-free
// counterpart of Decompress used by the codec registry's plane
// pipeline.
func (c *Codec) DecompressInto(dst []float32, data []byte, h, w int) error {
	planes, sh, sw, err := StreamDims(data)
	if err != nil {
		return err
	}
	if sh != h || sw != w || planes*h*w != len(dst) {
		return fmt.Errorf("sz: stream is %d×%dx%d, want %d values of %dx%d", planes, sh, sw, len(dst), h, w)
	}
	eb := float64(math.Float32frombits(binary.LittleEndian.Uint32(data[4:])))
	if eb <= 0 || math.IsNaN(eb) || math.IsInf(eb, 0) {
		return fmt.Errorf("sz: invalid stored error bound %g", eb)
	}
	codeLen := binary.LittleEndian.Uint32(data[20:])
	rawLen := binary.LittleEndian.Uint32(data[24:])
	return c.decompressBody(dst, data, eb, planes, h, w, codeLen, rawLen)
}

// decompressBody decodes the residual codes and replays the Lorenzo
// recurrence into dst, reading unpredictable values straight from the
// raw section (no staging copy).
func (c *Codec) decompressBody(dst []float32, data []byte, eb float64, planes, h, w int, codeLen, rawLen uint32) error {
	body := 28
	if body+int(codeLen) > len(data) {
		return fmt.Errorf("sz: truncated code stream")
	}
	codes, codesBox := getCodes(planes * h * w)
	defer codePool.Put(codesBox)
	if err := vle.DecodeFlatInto(codes, data[body:body+int(codeLen)], w); err != nil {
		return err
	}
	rawOff := body + int(codeLen)
	if rawOff+4*int(rawLen) > len(data) {
		return fmt.Errorf("sz: truncated raw-value section")
	}

	sentinel := int32(c.Bins + 1)
	rawIx := 0
	recon, reconBox := getF32(h * w)
	defer f32Pool.Put(reconBox)
	for p := 0; p < planes; p++ {
		plane := dst[p*h*w : (p+1)*h*w]
		for i := 0; i < h; i++ {
			row := codes[(p*h+i)*w : (p*h+i+1)*w]
			for j := 0; j < w; j++ {
				q := row[j]
				if q == sentinel {
					if rawIx >= int(rawLen) {
						return fmt.Errorf("sz: raw-value section exhausted")
					}
					recon[i*w+j] = math.Float32frombits(binary.LittleEndian.Uint32(data[rawOff+4*rawIx:]))
					rawIx++
				} else {
					pred := lorenzo(recon, i, j, w)
					recon[i*w+j] = float32(float64(pred) + 2*eb*float64(q))
				}
				plane[i*w+j] = recon[i*w+j]
			}
		}
	}
	return nil
}

// RoundTrip compresses and decompresses, returning the reconstruction
// and compressed size.
func (c *Codec) RoundTrip(x *tensor.Tensor) (*tensor.Tensor, int, error) {
	data, err := c.Compress(x)
	if err != nil {
		return nil, 0, err
	}
	out, err := c.Decompress(data, x.Shape()...)
	if err != nil {
		return nil, 0, err
	}
	return out, len(data), nil
}

// lorenzo is the first-order 2-D Lorenzo predictor over the
// reconstructed plane: west + north − northwest, degrading gracefully at
// the plane borders.
func lorenzo(recon []float32, i, j, w int) float32 {
	switch {
	case i == 0 && j == 0:
		return 0
	case i == 0:
		return recon[j-1]
	case j == 0:
		return recon[(i-1)*w]
	default:
		return recon[i*w+j-1] + recon[(i-1)*w+j] - recon[(i-1)*w+j-1]
	}
}
