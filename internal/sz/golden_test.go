package sz

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/tensor"
)

// goldenTensor regenerates the fixed input the golden streams were
// recorded from (same generator as the capture tool).
func goldenTensor(shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	d := x.Data()
	for i := range d {
		d[i] = float32((int64(i)*2654435761)%1000) / 999
		if i%11 == 0 {
			d[i] = d[i] * 1e6 // unpredictable values
		}
	}
	return x
}

// TestGoldenStreams holds the flat residual coder to the exact bytes
// the row-slice implementation produced, and requires the recorded
// bytes to reconstruct within the error bound through both Decompress
// and the allocation-free DecompressInto.
func TestGoldenStreams(t *testing.T) {
	raw, err := os.ReadFile("testdata/golden_v1.json")
	if err != nil {
		t.Fatal(err)
	}
	var cases []struct {
		Name  string `json:"name"`
		Shape []int  `json:"shape"`
		Hex   string `json:"hex"`
	}
	if err := json.Unmarshal(raw, &cases); err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("empty golden corpus")
	}
	for _, tc := range cases {
		t.Run(tc.Name, func(t *testing.T) {
			eb, err := strconv.ParseFloat(strings.TrimPrefix(tc.Name, "eb="), 64)
			if err != nil {
				t.Fatal(err)
			}
			c, err := New(eb)
			if err != nil {
				t.Fatal(err)
			}
			x := goldenTensor(tc.Shape...)
			data, err := c.Compress(x)
			if err != nil {
				t.Fatal(err)
			}
			want, err := hex.DecodeString(tc.Hex)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, want) {
				t.Fatalf("compressed bytes diverge from recorded stream (len %d vs %d)", len(data), len(want))
			}
			out, err := c.Decompress(want, tc.Shape...)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range x.Data() {
				if d := math.Abs(float64(out.Data()[i]) - float64(v)); d > eb {
					t.Fatalf("position %d: |%g - %g| = %g exceeds bound %g", i, out.Data()[i], v, d, eb)
				}
			}
			h, w := tc.Shape[len(tc.Shape)-2], tc.Shape[len(tc.Shape)-1]
			flat := make([]float32, x.Len())
			if err := c.DecompressInto(flat, want, h, w); err != nil {
				t.Fatal(err)
			}
			for i, v := range out.Data() {
				if flat[i] != v {
					t.Fatalf("position %d: DecompressInto %g, Decompress %g", i, flat[i], v)
				}
			}
		})
	}
}

// TestDecompressIntoAllocs proves the decode path is allocation-free at
// steady state.
func TestDecompressIntoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts only hold without -race")
	}
	c, err := New(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	x := goldenTensor(4, 16, 16)
	data, err := c.Compress(x)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float32, x.Len())
	if err := c.DecompressInto(dst, data, 16, 16); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := c.DecompressInto(dst, data, 16, 16); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecompressInto allocates %v/op, want 0", allocs)
	}
}
