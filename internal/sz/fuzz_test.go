package sz

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// FuzzDecompress hardens the SZ stream decoder: arbitrary bytes must
// produce an error or a finite reconstruction, never a panic.
func FuzzDecompress(f *testing.F) {
	c, err := New(1e-2)
	if err != nil {
		f.Fatal(err)
	}
	r := tensor.NewRNG(1)
	valid, err := c.Compress(r.Uniform(0, 1, 8, 8))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	corrupt[10] ^= 0xFF
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := c.Decompress(data, 8, 8)
		if err != nil {
			return
		}
		for _, v := range out.Data() {
			if math.IsNaN(float64(v)) {
				t.Fatal("NaN from arbitrary stream")
			}
		}
	})
}
