//go:build race

package sz

// raceEnabled reports whether the race detector is compiled in; the
// zero-allocation assertions skip under race, where the instrumentation
// itself allocates.
const raceEnabled = true
