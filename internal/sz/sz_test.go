package sz

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/datagen"
	"repro/internal/tensor"
	"repro/internal/zfp"
)

func TestNewValidation(t *testing.T) {
	for _, eb := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := New(eb); err == nil {
			t.Errorf("error bound %g must be rejected", eb)
		}
	}
	if _, err := New(1e-3); err != nil {
		t.Fatal(err)
	}
}

func TestErrorBoundRespected(t *testing.T) {
	r := tensor.NewRNG(1)
	x := smooth(r, 32)
	for _, eb := range []float64{1e-1, 1e-2, 1e-3, 1e-4} {
		c, err := New(eb)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := c.RoundTrip(x)
		if err != nil {
			t.Fatal(err)
		}
		if d := out.MaxAbsDiff(x); d > eb+1e-7 {
			t.Fatalf("eb=%g: max error %g exceeds bound", eb, d)
		}
	}
}

func TestSmoothDataCompressesWell(t *testing.T) {
	r := tensor.NewRNG(2)
	x := smooth(r, 64)
	c, err := New(1e-2)
	if err != nil {
		t.Fatal(err)
	}
	_, bytes, err := c.RoundTrip(x)
	if err != nil {
		t.Fatal(err)
	}
	cr := float64(x.SizeBytes()) / float64(bytes)
	if cr < 4 {
		t.Fatalf("smooth-data CR %g too low for eb=1e-2", cr)
	}
}

func TestTighterBoundLowerRatio(t *testing.T) {
	r := tensor.NewRNG(3)
	x := smooth(r, 32)
	var prev float64 = math.MaxFloat64
	for _, eb := range []float64{1e-1, 1e-2, 1e-3, 1e-5} {
		c, err := New(eb)
		if err != nil {
			t.Fatal(err)
		}
		_, bytes, err := c.RoundTrip(x)
		if err != nil {
			t.Fatal(err)
		}
		cr := float64(x.SizeBytes()) / float64(bytes)
		if cr > prev+1e-9 {
			t.Fatalf("eb=%g: CR %g rose above looser bound's %g", eb, cr, prev)
		}
		prev = cr
	}
}

func TestUnpredictablePathExact(t *testing.T) {
	// Spiky data defeats the Lorenzo predictor: those values go through
	// the verbatim path and must reconstruct exactly.
	x := tensor.New(8, 8)
	x.Set2(1e8, 3, 3)
	x.Set2(-1e8, 5, 5)
	c, err := New(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := c.RoundTrip(x)
	if err != nil {
		t.Fatal(err)
	}
	if out.At2(3, 3) != 1e8 || out.At2(5, 5) != -1e8 {
		t.Fatal("unpredictable values must be stored verbatim")
	}
	if d := out.MaxAbsDiff(x); d > 1e-6 {
		t.Fatalf("max error %g", d)
	}
}

func TestMultiPlane(t *testing.T) {
	r := tensor.NewRNG(4)
	x := r.Uniform(0, 1, 2, 3, 16, 16)
	c, err := New(5e-3)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := c.RoundTrip(x)
	if err != nil {
		t.Fatal(err)
	}
	if !out.SameShape(x) {
		t.Fatalf("shape %v", out.Shape())
	}
	if d := out.MaxAbsDiff(x); d > 5e-3+1e-7 {
		t.Fatalf("max error %g", d)
	}
}

func TestDecompressValidation(t *testing.T) {
	c, err := New(1e-2)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(5)
	x := r.Uniform(0, 1, 8, 8)
	data, err := c.Compress(x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress(data, 4, 4); err == nil {
		t.Fatal("wrong shape must be rejected")
	}
	if _, err := c.Decompress(data[:8], 8, 8); err == nil {
		t.Fatal("truncated stream must be rejected")
	}
	if _, err := c.Decompress([]byte{1, 2, 3, 4, 5}, 8, 8); err == nil {
		t.Fatal("bad magic must be rejected")
	}
	if _, err := c.Compress(tensor.New(8)); err == nil {
		t.Fatal("1-D input must be rejected")
	}
}

func TestDeterministic(t *testing.T) {
	r := tensor.NewRNG(6)
	x := r.Uniform(0, 1, 16, 16)
	c, err := New(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress(x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Compress(x)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("compression must be deterministic")
	}
}

// Property: the error bound holds for arbitrary data and bounds.
func TestErrorBoundProperty(t *testing.T) {
	f := func(seed uint64, rawEB uint8) bool {
		eb := math.Pow(10, -1-float64(rawEB%5)) // 1e-1 … 1e-5
		c, err := New(eb)
		if err != nil {
			return false
		}
		r := tensor.NewRNG(seed)
		x := r.Uniform(-3, 3, 12, 12)
		out, _, err := c.RoundTrip(x)
		if err != nil {
			return false
		}
		return out.MaxAbsDiff(x) <= eb+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSZVsZFPOnMicrographs(t *testing.T) {
	// The two scientific-data baselines side by side, as §2.2 frames
	// them: SZ bounds error and lets rate float; ZFP fixes rate and
	// lets error float. Both must deliver usable reconstructions.
	gen := datagen.NewDenoise(7, 32)
	noisy, _ := gen.Batch(2)
	szc, err := New(0.02)
	if err != nil {
		t.Fatal(err)
	}
	szOut, szBytes, err := szc.RoundTrip(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if szOut.MaxAbsDiff(noisy) > 0.02+1e-6 {
		t.Fatal("SZ bound violated on micrographs")
	}
	zc, err := zfp.New(8)
	if err != nil {
		t.Fatal(err)
	}
	_, zBytes, err := zc.RoundTrip(noisy)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("micrographs: SZ(eb=0.02) CR %.2f vs ZFP(rate 8) CR %.2f",
		float64(noisy.SizeBytes())/float64(szBytes),
		float64(noisy.SizeBytes())/float64(zBytes))
}

func smooth(r *tensor.RNG, n int) *tensor.Tensor {
	x := tensor.New(n, n)
	fx := 1 + r.Float64()
	fy := 1 + r.Float64()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := math.Sin(fx*math.Pi*float64(i)/float64(n))*math.Cos(fy*math.Pi*float64(j)/float64(n)) +
				0.3*math.Sin(3*math.Pi*float64(i+j)/float64(n))
			x.Set2(float32(v), i, j)
		}
	}
	return x
}
