//go:build !race

package dct

const raceEnabled = false
