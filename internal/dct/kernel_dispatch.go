package dct

// Dispatched kernel entry points, selected once at init from the
// detected CPU features (see internal/cpufeat, including its
// ACC_DISABLE_* environment overrides). A nil pointer selects the
// portable Go path, which is the semantic oracle: every dispatched
// implementation must produce bit-identical float32 results on the
// same inputs.
var (
	fwdBand8 func(dst *float32, dstStride int, src *float32, srcStride int, nblks, cf int, fwd *float32, mask *int32)
	invBand8 func(dst *float32, dstStride int, src *float32, srcStride int, nblks, cf int, inv *float32, mask *int32)
	colPass8 func(dst *float32, src *float32, srcStride int, coef *float32, nc, m int)
)

// laneMask[c] has its first c lanes set to all-ones: the load/store
// masks for cf-wide masked vector ops inside the band kernels.
var laneMask [9][8]int32

func init() {
	for c := 1; c <= 8; c++ {
		for j := 0; j < c; j++ {
			laneMask[c][j] = -1
		}
	}
	if archSIMDAvailable() {
		archEnable()
	}
}

// SIMDAvailable reports whether vectorized kernels are compiled in and
// usable on this CPU (after environment overrides).
func SIMDAvailable() bool { return archSIMDAvailable() }

// SetSIMD forces the vector kernels on or off and reports the previous
// state. Enabling is a no-op when SIMDAvailable is false. It is a
// testing hook — not safe to call concurrently with running transforms.
func SetSIMD(on bool) bool {
	prev := colPass8 != nil
	if on && archSIMDAvailable() {
		archEnable()
	} else {
		fwdBand8, invBand8, colPass8 = nil, nil, nil
	}
	return prev
}
