//go:build amd64 && !purego

#include "textflag.h"

// AVX2 kernels for the separable block transform in kernel.go. Each
// routine performs, per output lane, exactly the scalar arithmetic of
// the portable Go path — same operand order, same +0 accumulator seed,
// same zero-coefficient skip (colPass8 only), multiply-then-add with no
// FMA contraction — so results are bit-identical to the portable
// implementation, which remains the test oracle.
//
// The row-pass kernels process 8 consecutive plane rows per call,
// vectorizing across rows: an 8x8 tile is loaded, transposed so each
// source column p becomes one YMM register (lane i = row i), the cf (or
// 8) output channels accumulate via broadcast multiply-adds, and the
// accumulator tile is transposed back and stored row-wise. The two 8x8
// transposes are the standard unpack/shuf/perm2f128 sequence.

// TRANSPOSE8: transpose the 8x8 float32 matrix whose rows are Y0..Y7
// into Y8..Y15 (Y8+j = column j, lane i = row i). Clobbers Y0..Y15.
#define TRANSPOSE8 \
	VUNPCKLPS  Y1, Y0, Y8   \ // [a00 a10 a01 a11 | a04 a14 a05 a15]
	VUNPCKHPS  Y1, Y0, Y9   \
	VUNPCKLPS  Y3, Y2, Y10  \
	VUNPCKHPS  Y3, Y2, Y11  \
	VUNPCKLPS  Y5, Y4, Y12  \
	VUNPCKHPS  Y5, Y4, Y13  \
	VUNPCKLPS  Y7, Y6, Y14  \
	VUNPCKHPS  Y7, Y6, Y15  \
	VSHUFPS    $0x44, Y10, Y8, Y0  \ // [a00 a10 a20 a30 | a04 a14 a24 a34]
	VSHUFPS    $0xEE, Y10, Y8, Y1  \
	VSHUFPS    $0x44, Y11, Y9, Y2  \
	VSHUFPS    $0xEE, Y11, Y9, Y3  \
	VSHUFPS    $0x44, Y14, Y12, Y4 \
	VSHUFPS    $0xEE, Y14, Y12, Y5 \
	VSHUFPS    $0x44, Y15, Y13, Y6 \
	VSHUFPS    $0xEE, Y15, Y13, Y7 \
	VPERM2F128 $0x20, Y4, Y0, Y8   \ // column 0
	VPERM2F128 $0x20, Y5, Y1, Y9   \
	VPERM2F128 $0x20, Y6, Y2, Y10  \
	VPERM2F128 $0x20, Y7, Y3, Y11  \
	VPERM2F128 $0x31, Y4, Y0, Y12  \
	VPERM2F128 $0x31, Y5, Y1, Y13  \
	VPERM2F128 $0x31, Y6, Y2, Y14  \
	VPERM2F128 $0x31, Y7, Y3, Y15

// func fwdBand8AVX2(dst *float32, dstStride int, src *float32, srcStride int, nblks, cf int, fwd *float32, mask *int32)
//
// For 8 consecutive rows r and every block blk:
//
//	dst[r*dstStride + blk*cf + c] = sum_{p<8} src[r*srcStride + blk*8 + p] * fwd[c*8+p]
//
// accumulated from +0 in ascending p order. mask points at 8 int32
// lanes, the first cf of them set, for the masked cf-wide stores.
TEXT ·fwdBand8AVX2(SB), NOSPLIT, $544-64
	MOVQ dst+0(FP), DI
	MOVQ dstStride+8(FP), R8
	MOVQ src+16(FP), SI
	MOVQ srcStride+24(FP), DX
	MOVQ nblks+32(FP), CX
	MOVQ cf+40(FP), R9
	MOVQ fwd+48(FP), R10
	MOVQ mask+56(FP), R11
	SHLQ $2, DX               // src row stride in bytes
	SHLQ $2, R8               // dst row stride in bytes
	LEAQ (DX)(DX*2), AX       // 3*srcStride
	LEAQ (DX)(DX*4), BX       // 5*srcStride
	LEAQ (AX)(DX*4), R12      // 7*srcStride

fwdblock:
	// Load the 8x8 tile (8 rows, one block's 8 columns).
	VMOVUPS (SI), Y0
	VMOVUPS (SI)(DX*1), Y1
	VMOVUPS (SI)(DX*2), Y2
	VMOVUPS (SI)(AX*1), Y3
	VMOVUPS (SI)(DX*4), Y4
	VMOVUPS (SI)(BX*1), Y5
	VMOVUPS (SI)(AX*2), Y6
	VMOVUPS (SI)(R12*1), Y7
	TRANSPOSE8

	// Spill the transposed columns T_p.
	VMOVUPS Y8, tile-544(SP)
	VMOVUPS Y9, tile-512(SP)
	VMOVUPS Y10, tile-480(SP)
	VMOVUPS Y11, tile-448(SP)
	VMOVUPS Y12, tile-416(SP)
	VMOVUPS Y13, tile-384(SP)
	VMOVUPS Y14, tile-352(SP)
	VMOVUPS Y15, tile-320(SP)

	// otile[c] = sum_p fwd[c*8+p] * T_p  (lane = row)
	MOVQ R9, R13              // c counter
	MOVQ R10, R14             // fwd row walk
	LEAQ otile-288(SP), R15

fwdcloop:
	VXORPS       Y0, Y0, Y0
	VBROADCASTSS (R14), Y1
	VMOVUPS      tile-544(SP), Y2
	VMULPS       Y1, Y2, Y2
	VADDPS       Y2, Y0, Y0
	VBROADCASTSS 4(R14), Y1
	VMOVUPS      tile-512(SP), Y2
	VMULPS       Y1, Y2, Y2
	VADDPS       Y2, Y0, Y0
	VBROADCASTSS 8(R14), Y1
	VMOVUPS      tile-480(SP), Y2
	VMULPS       Y1, Y2, Y2
	VADDPS       Y2, Y0, Y0
	VBROADCASTSS 12(R14), Y1
	VMOVUPS      tile-448(SP), Y2
	VMULPS       Y1, Y2, Y2
	VADDPS       Y2, Y0, Y0
	VBROADCASTSS 16(R14), Y1
	VMOVUPS      tile-416(SP), Y2
	VMULPS       Y1, Y2, Y2
	VADDPS       Y2, Y0, Y0
	VBROADCASTSS 20(R14), Y1
	VMOVUPS      tile-384(SP), Y2
	VMULPS       Y1, Y2, Y2
	VADDPS       Y2, Y0, Y0
	VBROADCASTSS 24(R14), Y1
	VMOVUPS      tile-352(SP), Y2
	VMULPS       Y1, Y2, Y2
	VADDPS       Y2, Y0, Y0
	VBROADCASTSS 28(R14), Y1
	VMOVUPS      tile-320(SP), Y2
	VMULPS       Y1, Y2, Y2
	VADDPS       Y2, Y0, Y0
	VMOVUPS      Y0, (R15)
	ADDQ         $32, R14
	ADDQ         $32, R15
	DECQ         R13
	JNZ          fwdcloop

	// Transpose the accumulator tile back to row-major and store the
	// first cf lanes of each row.
	VMOVUPS otile-288(SP), Y0
	VMOVUPS otile-256(SP), Y1
	VMOVUPS otile-224(SP), Y2
	VMOVUPS otile-192(SP), Y3
	VMOVUPS otile-160(SP), Y4
	VMOVUPS otile-128(SP), Y5
	VMOVUPS otile-96(SP), Y6
	VMOVUPS otile-64(SP), Y7
	TRANSPOSE8
	VMOVUPS (R11), Y0         // lane mask (first cf lanes set)
	LEAQ (R8)(R8*2), R13      // 3*dstStride
	LEAQ (R8)(R8*4), R14      // 5*dstStride
	LEAQ (R13)(R8*4), R15     // 7*dstStride
	VMASKMOVPS Y8, Y0, (DI)
	VMASKMOVPS Y9, Y0, (DI)(R8*1)
	VMASKMOVPS Y10, Y0, (DI)(R8*2)
	VMASKMOVPS Y11, Y0, (DI)(R13*1)
	VMASKMOVPS Y12, Y0, (DI)(R8*4)
	VMASKMOVPS Y13, Y0, (DI)(R14*1)
	VMASKMOVPS Y14, Y0, (DI)(R13*2)
	VMASKMOVPS Y15, Y0, (DI)(R15*1)

	ADDQ $32, SI              // next 8-column source block
	LEAQ (DI)(R9*4), DI       // next cf-column dst block
	DECQ CX
	JNZ  fwdblock
	VZEROUPPER
	RET

// func invBand8AVX2(dst *float32, dstStride int, src *float32, srcStride int, nblks, cf int, inv *float32, mask *int32)
//
// For 8 consecutive rows r and every block blk:
//
//	dst[r*dstStride + blk*8 + q] = sum_{c<cf} src[r*srcStride + blk*cf + c] * inv[q*cf+c]
//
// accumulated from +0 in ascending c order.
TEXT ·invBand8AVX2(SB), NOSPLIT, $544-64
	MOVQ dst+0(FP), DI
	MOVQ dstStride+8(FP), R8
	MOVQ src+16(FP), SI
	MOVQ srcStride+24(FP), DX
	MOVQ nblks+32(FP), CX
	MOVQ cf+40(FP), R9
	MOVQ inv+48(FP), R10
	MOVQ mask+56(FP), R11
	SHLQ $2, DX
	SHLQ $2, R8

invblock:
	LEAQ (DX)(DX*2), AX       // 3*srcStride (AX/BX reused below, rebuilt per block)
	LEAQ (DX)(DX*4), BX       // 5*srcStride
	LEAQ (AX)(DX*4), R12      // 7*srcStride

	// Masked-load the 8 x cf tile (lanes >= cf read as zero and are
	// never used after the transpose).
	VMOVUPS (R11), Y8
	VMASKMOVPS (SI), Y8, Y0
	VMASKMOVPS (SI)(DX*1), Y8, Y1
	VMASKMOVPS (SI)(DX*2), Y8, Y2
	VMASKMOVPS (SI)(AX*1), Y8, Y3
	VMASKMOVPS (SI)(DX*4), Y8, Y4
	VMASKMOVPS (SI)(BX*1), Y8, Y5
	VMASKMOVPS (SI)(AX*2), Y8, Y6
	VMASKMOVPS (SI)(R12*1), Y8, Y7
	TRANSPOSE8

	VMOVUPS Y8, tile-544(SP)
	VMOVUPS Y9, tile-512(SP)
	VMOVUPS Y10, tile-480(SP)
	VMOVUPS Y11, tile-448(SP)
	VMOVUPS Y12, tile-416(SP)
	VMOVUPS Y13, tile-384(SP)
	VMOVUPS Y14, tile-352(SP)
	VMOVUPS Y15, tile-320(SP)

	// otile[q] = sum_{c<cf} inv[q*cf+c] * T_c  (lane = row)
	MOVQ $8, R13              // q counter
	MOVQ R10, R15             // inv walk (contiguous across the q loop)
	LEAQ otile-288(SP), R14

invqloop:
	VXORPS Y0, Y0, Y0
	MOVQ   R9, AX             // c counter
	LEAQ   tile-544(SP), BX

invcloop:
	VBROADCASTSS (R15), Y1
	VMOVUPS      (BX), Y2
	VMULPS       Y1, Y2, Y2
	VADDPS       Y2, Y0, Y0
	ADDQ         $4, R15
	ADDQ         $32, BX
	DECQ         AX
	JNZ          invcloop
	VMOVUPS      Y0, (R14)
	ADDQ         $32, R14
	DECQ         R13
	JNZ          invqloop

	// Transpose back and store full 8-wide rows.
	VMOVUPS otile-288(SP), Y0
	VMOVUPS otile-256(SP), Y1
	VMOVUPS otile-224(SP), Y2
	VMOVUPS otile-192(SP), Y3
	VMOVUPS otile-160(SP), Y4
	VMOVUPS otile-128(SP), Y5
	VMOVUPS otile-96(SP), Y6
	VMOVUPS otile-64(SP), Y7
	TRANSPOSE8
	LEAQ (R8)(R8*2), R13      // 3*dstStride
	LEAQ (R8)(R8*4), R14      // 5*dstStride
	LEAQ (R13)(R8*4), R15     // 7*dstStride
	VMOVUPS Y8, (DI)
	VMOVUPS Y9, (DI)(R8*1)
	VMOVUPS Y10, (DI)(R8*2)
	VMOVUPS Y11, (DI)(R13*1)
	VMOVUPS Y12, (DI)(R8*4)
	VMOVUPS Y13, (DI)(R14*1)
	VMOVUPS Y14, (DI)(R13*2)
	VMOVUPS Y15, (DI)(R15*1)

	LEAQ (SI)(R9*4), SI       // next cf-column source block
	ADDQ $32, DI              // next 8-column dst block
	DECQ CX
	JNZ  invblock
	VZEROUPPER
	RET

// func colPass8AVX2(dst *float32, src *float32, srcStride int, coef *float32, nc, m int)
//
// dst[j] = sum over p<nc with coef[p] != 0 of coef[p]*src[p*srcStride+j]
// for j < m, accumulated from +0 in ascending p order — the column-pass
// axpy chain of the portable path with the destination kept in
// registers. Zero coefficients are skipped exactly as in Go (NaN
// coefficients are kept: the UCOMISS parity check routes unordered
// compares to the accumulate path).
TEXT ·colPass8AVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ srcStride+16(FP), DX
	MOVQ coef+24(FP), R8
	MOVQ nc+32(FP), R9
	MOVQ m+40(FP), R10
	SHLQ $2, DX
	VXORPS X4, X4, X4         // scalar zero for the skip compares

col16:
	CMPQ R10, $16
	JLT  col8
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	MOVQ   SI, CX             // row cursor
	MOVQ   R8, R11            // coef cursor
	MOVQ   R9, R12            // p counter

col16p:
	VMOVSS   (R11), X2
	VUCOMISS X4, X2
	JP      col16do           // NaN coefficient: accumulate
	JE      col16skip         // zero coefficient: skip row

col16do:
	VBROADCASTSS X2, Y2
	VMOVUPS      (CX), Y3
	VMULPS       Y2, Y3, Y3
	VADDPS       Y0, Y3, Y0
	VMOVUPS      32(CX), Y3
	VMULPS       Y2, Y3, Y3
	VADDPS       Y1, Y3, Y1

col16skip:
	ADDQ DX, CX
	ADDQ $4, R11
	DECQ R12
	JNZ  col16p
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $16, R10
	JMP     col16

col8:
	CMPQ R10, $8
	JLT  coltail
	VXORPS Y0, Y0, Y0
	MOVQ   SI, CX
	MOVQ   R8, R11
	MOVQ   R9, R12

col8p:
	VMOVSS   (R11), X2
	VUCOMISS X4, X2
	JP      col8do
	JE      col8skip

col8do:
	VBROADCASTSS X2, Y2
	VMOVUPS      (CX), Y3
	VMULPS       Y2, Y3, Y3
	VADDPS       Y0, Y3, Y0

col8skip:
	ADDQ DX, CX
	ADDQ $4, R11
	DECQ R12
	JNZ  col8p
	VMOVUPS Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $8, R10
	JMP     col8

coltail:
	TESTQ R10, R10
	JZ    coldone
	VXORPS X0, X0, X0
	MOVQ   SI, CX
	MOVQ   R8, R11
	MOVQ   R9, R12

coltailp:
	VMOVSS   (R11), X2
	VUCOMISS X4, X2
	JP      coltaildo
	JE      coltailskip

coltaildo:
	VMOVSS (CX), X3
	VMULSS X2, X3, X3
	VADDSS X0, X3, X0

coltailskip:
	ADDQ DX, CX
	ADDQ $4, R11
	DECQ R12
	JNZ  coltailp
	VMOVSS X0, (DI)
	ADDQ  $4, SI
	ADDQ  $4, DI
	DECQ  R10
	JNZ   coltail

coldone:
	VZEROUPPER
	RET
