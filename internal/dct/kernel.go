package dct

import (
	"fmt"

	"repro/internal/tensor"
)

// Kernel is the structure-aware fast execution path for the fused
// DCT+Chop round trip. The dense formulation runs Y = (M·T_L)·A·(T_Lᵀ·Mᵀ)
// as full matrix products even though the fused LHS is block-diagonal
// with only CF of every b rows non-zero per block. The kernel exploits
// that structure directly: per b×b block of the plane,
//
//	Y_IJ = F · A_IJ · Fᵀ   (compress)
//	A_IJ = G · Y_IJ · Gᵀ   (decompress)
//
// where F is the CF×b matrix of *retained* transform rows (the non-zero
// rows of M·T_L restricted to one block) and G is the b×CF expansion
// matrix (Fᵀ for the orthonormal DCT; the first CF columns of T⁻¹ for
// the non-orthogonal ZFP transform). Chopped rows are never computed or
// read. Each plane is processed in two separable passes (a row pass then
// a column pass), so the per-plane cost falls from the dense
// O(m·n² + m²·n) to O(n²·CF + m²·b): roughly 20–40× fewer multiply-adds
// at n=512, CF=4.
//
// Both passes accept a row stride for the full-resolution operand, so
// partially-serialized (s>1) chunks are transformed in place inside the
// parent plane without materializing chunk copies.
type Kernel struct {
	b  int // transform block edge
	cf int // retained rows/columns per block

	fwd []float32 // F, cf×b row-major: retained rows of the transform
	inv []float32 // G, b×cf row-major: retained columns of the inverse
}

// NewKernel builds the fast kernel for a b×b transform matrix t, its
// inverse it (pass the transpose for orthonormal transforms), and chop
// factor cf.
func NewKernel(t, it *tensor.Tensor, cf int) *Kernel {
	if t.Dims() != 2 || t.Dim(0) != t.Dim(1) {
		panic(fmt.Sprintf("dct: NewKernel transform must be square, got %v", t.Shape()))
	}
	b := t.Dim(0)
	if !t.SameShape(it) {
		panic(fmt.Sprintf("dct: NewKernel inverse shape %v does not match transform %v", it.Shape(), t.Shape()))
	}
	if cf < 1 || cf > b {
		panic(fmt.Sprintf("dct: NewKernel chop factor %d outside [1,%d]", cf, b))
	}
	k := &Kernel{b: b, cf: cf, fwd: make([]float32, cf*b), inv: make([]float32, b*cf)}
	for r := 0; r < cf; r++ {
		for j := 0; j < b; j++ {
			k.fwd[r*b+j] = t.At2(r, j)
		}
	}
	for q := 0; q < b; q++ {
		for c := 0; c < cf; c++ {
			k.inv[q*cf+c] = it.At2(q, c)
		}
	}
	return k
}

// BlockSize returns the transform block edge b.
func (k *Kernel) BlockSize() int { return k.b }

// ChopFactor returns the retained row/column count CF.
func (k *Kernel) ChopFactor() int { return k.cf }

// M returns the compressed plane edge cf·n/b for an n-edge input plane.
func (k *Kernel) M(n int) int { return k.cf * n / k.b }

// ScratchLen returns the intermediate-buffer length both passes need for
// an n-edge plane: the n×m (forward) / m×n (inverse) half-transformed
// plane.
func (k *Kernel) ScratchLen(n int) int { return n * k.M(n) }

// Forward computes the fused compression Y = F_L·A·F_Lᵀ of one n×n plane.
// src holds the plane rows at srcStride; dst receives the m×m chopped
// plane (m = cf·n/b) at dstStride. scratch must hold ScratchLen(n)
// float32s and is fully overwritten. n must be a multiple of the block
// size. Forward performs no allocation.
func (k *Kernel) Forward(dst []float32, dstStride int, src []float32, srcStride, n int, scratch []float32) {
	countKernelCall()
	b, cf := k.b, k.cf
	if n%b != 0 {
		panic(fmt.Sprintf("dct: Kernel.Forward n=%d not a multiple of block size %d", n, b))
	}
	nblks := n / b
	m := cf * nblks
	if len(scratch) < n*m {
		panic(fmt.Sprintf("dct: Kernel.Forward scratch %d < %d", len(scratch), n*m))
	}
	// Row pass: R = A·F_Lᵀ (n×m). Each source row contracts every b-wide
	// block segment against the cf retained transform rows. The
	// dispatched kernel handles 8-row bands of 8-wide blocks; everything
	// else (b != 8, no SIMD) takes the portable loop.
	if band := fwdBand8; band != nil && b == 8 && nblks > 0 {
		mask := &laneMask[cf][0]
		for i := 0; i+8 <= n; i += 8 {
			band(&scratch[i*m], m, &src[i*srcStride], srcStride, nblks, cf, &k.fwd[0], mask)
		}
		// b == 8 forces n%8 == 0: no remainder rows.
	} else {
		k.forwardRows(scratch, m, src, srcStride, n, 0, n)
	}
	// Column pass: Y = F_L·R (m×m). Output row I·cf+r accumulates the b
	// half-transformed rows of block-row I, weighted by transform row r —
	// a contiguous axpy per source row, so both streams stay sequential.
	col := colPass8
	for blkI := 0; blkI < nblks; blkI++ {
		for r := 0; r < cf; r++ {
			d := dst[(blkI*cf+r)*dstStride : (blkI*cf+r)*dstStride+m]
			f := k.fwd[r*b : (r+1)*b]
			if col != nil {
				col(&d[0], &scratch[blkI*b*m], m, &f[0], b, m)
				continue
			}
			portableColPass(d, scratch[blkI*b*m:], m, f)
		}
	}
}

// forwardRows is the portable forward row pass over rows [lo, hi) — the
// oracle the dispatched band kernel must match bit-for-bit.
func (k *Kernel) forwardRows(scratch []float32, m int, src []float32, srcStride, n, lo, hi int) {
	b, cf := k.b, k.cf
	nblks := n / b
	for i := lo; i < hi; i++ {
		row := src[i*srcStride : i*srcStride+n]
		out := scratch[i*m : (i+1)*m]
		for blk := 0; blk < nblks; blk++ {
			a := row[blk*b : (blk+1)*b]
			o := out[blk*cf : (blk+1)*cf]
			for c := 0; c < cf; c++ {
				f := k.fwd[c*b : (c+1)*b]
				var s float32
				for p, av := range a {
					s += av * f[p]
				}
				o[c] = s
			}
		}
	}
}

// portableColPass computes one column-pass output row d from the rows
// of scratch (at stride m): d[j] = Σ coef[p]·scratch[p*m+j], skipping
// zero coefficients. The dispatched colPass8 kernel must match it
// bit-for-bit.
func portableColPass(d, scratch []float32, m int, coef []float32) {
	for x := range d {
		d[x] = 0
	}
	for p := range coef {
		fv := coef[p]
		if fv == 0 {
			continue
		}
		srow := scratch[p*m : (p+1)*m]
		for j, sv := range srow {
			d[j] += fv * sv
		}
	}
}

// Inverse computes the fused decompression A' = G_L·Y·G_Lᵀ of one m×m
// chopped plane back to n×n. src holds the m×m plane rows at srcStride;
// dst receives the n×n reconstruction at dstStride. scratch must hold
// ScratchLen(n) float32s. Inverse performs no allocation.
func (k *Kernel) Inverse(dst []float32, dstStride int, src []float32, srcStride, n int, scratch []float32) {
	countKernelCall()
	b, cf := k.b, k.cf
	if n%b != 0 {
		panic(fmt.Sprintf("dct: Kernel.Inverse n=%d not a multiple of block size %d", n, b))
	}
	nblks := n / b
	m := cf * nblks
	if len(scratch) < m*n {
		panic(fmt.Sprintf("dct: Kernel.Inverse scratch %d < %d", len(scratch), m*n))
	}
	// Row pass: R = Y·G_Lᵀ (m×n). Each chopped row expands every cf-wide
	// block segment back to b columns through G. The dispatched kernel
	// takes 8-row bands; remainder rows (m%8) run the portable loop.
	lo := 0
	if band := invBand8; band != nil && b == 8 && nblks > 0 {
		mask := &laneMask[cf][0]
		for ; lo+8 <= m; lo += 8 {
			band(&scratch[lo*n], n, &src[lo*srcStride], srcStride, nblks, cf, &k.inv[0], mask)
		}
	}
	k.inverseRows(scratch, n, src, srcStride, m, lo, m)
	// Column pass: A' = G_L·R (n×n). Only the cf retained rows of each
	// block-row exist in R; every output row is a cf-term axpy sum.
	col := colPass8
	for blkI := 0; blkI < nblks; blkI++ {
		for q := 0; q < b; q++ {
			d := dst[(blkI*b+q)*dstStride : (blkI*b+q)*dstStride+n]
			g := k.inv[q*cf : (q+1)*cf]
			if col != nil {
				col(&d[0], &scratch[blkI*cf*n], n, &g[0], cf, n)
				continue
			}
			portableColPass(d, scratch[blkI*cf*n:], n, g)
		}
	}
}

// inverseRows is the portable inverse row pass over rows [lo, hi) — the
// oracle the dispatched band kernel must match bit-for-bit.
func (k *Kernel) inverseRows(scratch []float32, n int, src []float32, srcStride, m, lo, hi int) {
	b, cf := k.b, k.cf
	nblks := n / b
	for i := lo; i < hi; i++ {
		row := src[i*srcStride : i*srcStride+m]
		out := scratch[i*n : (i+1)*n]
		for blk := 0; blk < nblks; blk++ {
			y := row[blk*cf : (blk+1)*cf]
			o := out[blk*b : (blk+1)*b]
			for q := 0; q < b; q++ {
				g := k.inv[q*cf : (q+1)*cf]
				var s float32
				for c, yv := range y {
					s += yv * g[c]
				}
				o[q] = s
			}
		}
	}
}
