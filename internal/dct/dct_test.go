package dct

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestTransformOrthonormal(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		tr := Transform(n)
		prod := tensor.MatMul(tr, tr.Transpose())
		if d := prod.MaxAbsDiff(tensor.Eye(n)); d > 1e-5 {
			t.Fatalf("n=%d: T·Tᵀ deviates from I by %g", n, d)
		}
	}
}

func TestTransformFirstRowConstant(t *testing.T) {
	tr := Transform(8)
	want := float32(1 / math.Sqrt(8))
	for j := 0; j < 8; j++ {
		if math.Abs(float64(tr.At2(0, j)-want)) > 1e-6 {
			t.Fatalf("T[0][%d] = %g, want %g", j, tr.At2(0, j), want)
		}
	}
}

func TestApply2DMatchesDirect(t *testing.T) {
	r := tensor.NewRNG(3)
	for _, n := range []int{4, 8} {
		a := r.Uniform(-1, 1, n, n)
		matrixForm := Apply2D(a)
		direct := Direct2D(a)
		if d := matrixForm.MaxAbsDiff(direct); d > 1e-4 {
			t.Fatalf("n=%d: matrix DCT deviates from Eq. 1 double sum by %g", n, d)
		}
	}
}

func TestDCCoefficientIsScaledMean(t *testing.T) {
	// The paper notes D[0,0] "is representative of the average value of A":
	// with orthonormal T, D[0,0] = n · mean(A).
	r := tensor.NewRNG(5)
	a := r.Uniform(0, 10, 8, 8)
	d := Apply2D(a)
	want := 8 * a.Mean()
	if math.Abs(float64(d.At2(0, 0))-want) > 1e-3 {
		t.Fatalf("DC = %g, want %g", d.At2(0, 0), want)
	}
}

func TestInvert2DRoundTrip(t *testing.T) {
	r := tensor.NewRNG(7)
	a := r.Uniform(-5, 5, 8, 8)
	back := Invert2D(Apply2D(a))
	if d := back.MaxAbsDiff(a); d > 1e-4 {
		t.Fatalf("DCT round trip error %g", d)
	}
}

func TestParsevalEnergyPreserved(t *testing.T) {
	// Orthonormal transform preserves Frobenius norm.
	r := tensor.NewRNG(9)
	a := r.Uniform(-2, 2, 8, 8)
	d := Apply2D(a)
	if diff := math.Abs(a.Norm2() - d.Norm2()); diff > 1e-4 {
		t.Fatalf("energy not preserved: |A|=%g |D|=%g", a.Norm2(), d.Norm2())
	}
}

func TestConstantBlockCompactsToDC(t *testing.T) {
	a := tensor.Full(3, 8, 8)
	d := Apply2D(a)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			v := float64(d.At2(i, j))
			if i == 0 && j == 0 {
				if math.Abs(v-24) > 1e-4 { // 8 · mean(3)
					t.Fatalf("DC = %g, want 24", v)
				}
			} else if math.Abs(v) > 1e-4 {
				t.Fatalf("AC coefficient (%d,%d) = %g, want 0", i, j, v)
			}
		}
	}
}

func TestBlockDiagTransform(t *testing.T) {
	tl := BlockDiagTransform(8, 3)
	if tl.Dim(0) != 24 || tl.Dim(1) != 24 {
		t.Fatalf("T_L shape %v", tl.Shape())
	}
	// Block-diagonal structure: off-diagonal blocks are zero.
	tr := Transform(8)
	for bi := 0; bi < 3; bi++ {
		for bj := 0; bj < 3; bj++ {
			for i := 0; i < 8; i++ {
				for j := 0; j < 8; j++ {
					got := tl.At2(bi*8+i, bj*8+j)
					var want float32
					if bi == bj {
						want = tr.At2(i, j)
					}
					if got != want {
						t.Fatalf("T_L[%d,%d] block (%d,%d) wrong", bi*8+i, bj*8+j, bi, bj)
					}
				}
			}
		}
	}
	// T_L is itself orthonormal.
	if d := tensor.MatMul(tl, tl.Transpose()).MaxAbsDiff(tensor.Eye(24)); d > 1e-5 {
		t.Fatalf("T_L not orthonormal: %g", d)
	}
}

func TestChopMaskStructure(t *testing.T) {
	// Fig. 4: n=24, CF=5 → M is 15×24 with one 1 per row at blk*8+i.
	m := ChopMask(24, 5, 8)
	if m.Dim(0) != 15 || m.Dim(1) != 24 {
		t.Fatalf("M shape %v", m.Shape())
	}
	ones := 0
	for i := 0; i < 15; i++ {
		for j := 0; j < 24; j++ {
			v := m.At2(i, j)
			if v != 0 && v != 1 {
				t.Fatalf("M[%d,%d] = %g", i, j, v)
			}
			if v == 1 {
				ones++
				blk, off := i/5, i%5
				if j != blk*8+off {
					t.Fatalf("M 1 at (%d,%d), want column %d", i, j, blk*8+off)
				}
			}
		}
	}
	if ones != 15 {
		t.Fatalf("M has %d ones, want one per row (15)", ones)
	}
}

func TestChopMaskSelectsUpperLeft(t *testing.T) {
	// M·D·Mᵀ must equal the upper-left cf×cf corner of each 8×8 block.
	r := tensor.NewRNG(11)
	n, cf := 16, 3
	d := r.Uniform(-1, 1, n, n)
	m := ChopMask(n, cf, 8)
	y := tensor.MatMul(tensor.MatMul(m, d), m.Transpose())
	if y.Dim(0) != cf*n/8 {
		t.Fatalf("Y shape %v", y.Shape())
	}
	for bi := 0; bi < n/8; bi++ {
		for bj := 0; bj < n/8; bj++ {
			for i := 0; i < cf; i++ {
				for j := 0; j < cf; j++ {
					got := y.At2(bi*cf+i, bj*cf+j)
					want := d.At2(bi*8+i, bj*8+j)
					if got != want {
						t.Fatalf("chopped (%d,%d,%d,%d) = %g, want %g", bi, bj, i, j, got, want)
					}
				}
			}
		}
	}
}

func TestChopMaskValidation(t *testing.T) {
	defer expectPanic(t, "n not multiple of block")
	ChopMask(20, 3, 8)
}

func TestLHSRHSTransposeIdentity(t *testing.T) {
	for _, cf := range []int{1, 3, 5, 8} {
		lhs := LHS(24, cf, 8)
		rhs := RHS(24, cf, 8)
		if d := rhs.MaxAbsDiff(lhs.Transpose()); d != 0 {
			t.Fatalf("cf=%d: RHS != LHSᵀ (%g)", cf, d)
		}
		if lhs.Dim(0) != cf*3 || lhs.Dim(1) != 24 {
			t.Fatalf("cf=%d: LHS shape %v, want [%d 24]", cf, lhs.Shape(), cf*3)
		}
	}
}

func TestZigZagIsPermutation(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		z := ZigZag(n)
		if len(z) != n*n {
			t.Fatalf("n=%d: zigzag length %d", n, len(z))
		}
		seen := make([]bool, n*n)
		for _, ix := range z {
			if ix < 0 || ix >= n*n || seen[ix] {
				t.Fatalf("n=%d: zigzag not a permutation: %v", n, z)
			}
			seen[ix] = true
		}
	}
}

func TestZigZag4Known(t *testing.T) {
	// Standard 4×4 zigzag path.
	want := []int{0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15}
	got := ZigZag(4)
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("ZigZag(4) = %v, want %v", got, want)
		}
	}
}

func TestZigZagVisitsDiagonalsInOrder(t *testing.T) {
	// Anti-diagonal index i+j must be non-decreasing along the walk.
	n := 8
	last := -1
	for _, ix := range ZigZag(n) {
		d := ix/n + ix%n
		if d < last {
			t.Fatalf("zigzag visits diagonal %d after %d", d, last)
		}
		last = d
	}
}

func TestTriangleIndices(t *testing.T) {
	// cf=3, b=8: rows i with i+j<3 → (0,0),(0,1),(0,2),(1,0),(1,1),(2,0).
	want := []int{0, 1, 2, 8, 9, 16}
	got := TriangleIndices(3, 8)
	if len(got) != TriangleCount(3) {
		t.Fatalf("TriangleIndices count %d, want %d", len(got), TriangleCount(3))
	}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("TriangleIndices(3,8) = %v, want %v", got, want)
		}
	}
}

func TestTriangleSubsetOfZigZagPrefix(t *testing.T) {
	// The cf-triangle is exactly the first cf(cf+1)/2 cells of the zigzag
	// walk (as sets) — the paper's rationale for why triangle retention
	// keeps the most significant coefficients.
	for cf := 1; cf <= 8; cf++ {
		tri := TriangleIndices(cf, 8)
		prefix := ZigZag(8)[:TriangleCount(cf)]
		inPrefix := make(map[int]bool)
		for _, ix := range prefix {
			inPrefix[ix] = true
		}
		for _, ix := range tri {
			if !inPrefix[ix] {
				t.Fatalf("cf=%d: triangle index %d not in zigzag prefix", cf, ix)
			}
		}
	}
}

func TestFLOPFormulas(t *testing.T) {
	// Eq. 5/7 at n=8, cf=8 (no chop): both reduce to the cost of two
	// dense 8×8 matmuls minus the load terms.
	c := CompressFLOPs(8, 8)
	d := DecompressFLOPs(8, 8)
	wantC := (2.0*512*8/8)*(2) - 64*(1+1)
	if math.Abs(c-wantC) > 1e-9 {
		t.Fatalf("CompressFLOPs(8,8) = %g, want %g", c, wantC)
	}
	// Paper: decompression needs fewer FLOPs than compression for CF<8.
	for cf := 1; cf < 8; cf++ {
		if DecompressFLOPs(64, cf) >= CompressFLOPs(64, cf) {
			t.Fatalf("cf=%d: decompress FLOPs not lower", cf)
		}
	}
	// And at CF=8 they coincide up to the load terms' sign.
	if d > c {
		t.Fatalf("cf=8: decompress %g > compress %g", d, c)
	}
}

func TestFLOPsScaleCubically(t *testing.T) {
	// Doubling n should scale the leading term by 8×.
	r := CompressFLOPs(256, 4) / CompressFLOPs(128, 4)
	if r < 7.5 || r > 8.5 {
		t.Fatalf("FLOPs(256)/FLOPs(128) = %g, want ≈8", r)
	}
}

// Property: chop-then-invert error is bounded by the energy in the
// discarded coefficients (Parseval), and cf=8 is lossless.
func TestChopErrorBoundedProperty(t *testing.T) {
	f := func(seed uint64, rawCF uint8) bool {
		cf := int(rawCF%8) + 1
		r := tensor.NewRNG(seed)
		a := r.Uniform(-1, 1, 8, 8)
		d := Apply2D(a)
		// Zero everything outside the cf×cf corner.
		chopped := tensor.New(8, 8)
		var discarded float64
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				if i < cf && j < cf {
					chopped.Set2(d.At2(i, j), i, j)
				} else {
					discarded += float64(d.At2(i, j)) * float64(d.At2(i, j))
				}
			}
		}
		back := Invert2D(chopped)
		errNorm := back.Sub(a).Norm2()
		if cf == 8 {
			return errNorm < 1e-4
		}
		return errNorm <= math.Sqrt(discarded)+1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("expected panic: %s", what)
	}
}
