//go:build !amd64 || purego

package dct

func archSIMDAvailable() bool { return false }

func archEnable() {}
