//go:build race

package dct

// raceEnabled reports whether the race detector is compiled in. The
// SIMD equivalence tests relax NaN-payload matching under race (the
// instrumentation changes the portable path's operand scheduling) and
// the zero-allocation assertions skip, since the race runtime
// allocates.
const raceEnabled = true
