package dct

import "repro/internal/telemetry"

// SIMD-dispatch counters (see the telemetry package naming scheme):
// one pair per kernel package, counted at the per-plane/per-transform
// entry points so hot block loops never touch an atomic.
var (
	simdVectorCalls   = telemetry.NewCounter("simd.dct.vector_calls")
	simdPortableCalls = telemetry.NewCounter("simd.dct.portable_calls")
)

// countKernelCall records which path a Forward/Inverse call dispatches
// to. colPass8 is non-nil exactly when the vector kernels are enabled.
func countKernelCall() {
	if colPass8 != nil {
		simdVectorCalls.Inc()
	} else {
		simdPortableCalls.Inc()
	}
}
