//go:build amd64 && !purego

package dct

import "repro/internal/cpufeat"

// fwdBand8AVX2 runs the forward row pass over 8 consecutive plane rows:
// for each row r < 8 and block blk < nblks,
// dst[r*dstStride+blk*cf+c] = Σ_{p<8} src[r*srcStride+blk*8+p]·fwd[c*8+p],
// bit-identical to the portable loop. mask must point at 8 int32 lanes
// with the first cf set (laneMask[cf]).
//
//go:noescape
func fwdBand8AVX2(dst *float32, dstStride int, src *float32, srcStride int, nblks, cf int, fwd *float32, mask *int32)

// invBand8AVX2 runs the inverse row pass over 8 consecutive chopped
// rows: dst[r*dstStride+blk*8+q] = Σ_{c<cf} src[r*srcStride+blk*cf+c]·inv[q*cf+c].
//
//go:noescape
func invBand8AVX2(dst *float32, dstStride int, src *float32, srcStride int, nblks, cf int, inv *float32, mask *int32)

// colPass8AVX2 runs one column-pass output row: dst[j] = Σ over p < nc
// with coef[p] != 0 of coef[p]·src[p*srcStride+j] for j < m, matching
// the portable axpy chain including its zero-coefficient skip.
//
//go:noescape
func colPass8AVX2(dst *float32, src *float32, srcStride int, coef *float32, nc, m int)

func archSIMDAvailable() bool { return cpufeat.Have().AVX2 }

func archEnable() {
	fwdBand8 = fwdBand8AVX2
	invBand8 = invBand8AVX2
	colPass8 = colPass8AVX2
}
