// Package dct implements the discrete cosine transform machinery behind
// the DCT+Chop compressor: the DCT-II transform matrix T (paper Eq. 2),
// the direct double-sum form (Eq. 1) used as a reference, the
// block-diagonal T_L and chop mask M that fuse into the compressor's LHS
// and RHS matrices (Fig. 4, Eq. 4/6), zigzag traversal order, the
// upper-left-triangle index sets used by the Graphcore scatter/gather
// optimization, and the FLOP-count formulas (Eq. 5, 7).
package dct

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BlockSize is the paper's fixed transform block size: DCT+Chop operates
// on 8×8 chunks, the JPEG-standard size that balances transform cost
// against locality (§3.2).
const BlockSize = 8

// Transform returns the n×n DCT-II matrix T of Eq. 2:
//
//	T[i][j] = 1/√n                        if i == 0
//	T[i][j] = √(2/n)·cos(π(2j+1)i / 2n)   if i > 0
//
// T is orthonormal: T·Tᵀ = I, so D = T·A·Tᵀ applies the 2-D DCT and
// A = Tᵀ·D·T inverts it.
func Transform(n int) *tensor.Tensor {
	if n <= 0 {
		panic(fmt.Sprintf("dct: Transform size %d must be positive", n))
	}
	t := tensor.New(n, n)
	inv := 1 / math.Sqrt(float64(n))
	scale := math.Sqrt(2 / float64(n))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var v float64
			if i == 0 {
				v = inv
			} else {
				v = scale * math.Cos(math.Pi*float64(2*j+1)*float64(i)/(2*float64(n)))
			}
			t.Set2(float32(v), i, j)
		}
	}
	return t
}

// Apply2D computes D = T·A·Tᵀ for an n×n block A, the matrix form of the
// 2-D DCT-II.
func Apply2D(a *tensor.Tensor) *tensor.Tensor {
	n := a.Dim(0)
	t := Transform(n)
	return tensor.MatMul(tensor.MatMul(t, a), t.Transpose())
}

// Invert2D computes A = Tᵀ·D·T, the inverse 2-D DCT-II.
func Invert2D(d *tensor.Tensor) *tensor.Tensor {
	n := d.Dim(0)
	t := Transform(n)
	return tensor.MatMul(tensor.MatMul(t.Transpose(), d), t)
}

// Direct2D evaluates the double-sum DCT-II of Eq. 1 in float64. It is
// O(n⁴) and exists purely as the reference against which the matrix
// formulation is validated.
func Direct2D(a *tensor.Tensor) *tensor.Tensor {
	n := a.Dim(0)
	out := tensor.New(n, n)
	c := func(w int) float64 {
		if w == 0 {
			return 1 / math.Sqrt2
		}
		return 1
	}
	s := func(u, v int) float64 {
		return math.Cos(float64(2*u+1) * float64(v) * math.Pi / (2 * float64(n)))
	}
	// Normalization: (2/n)·C(i)C(j) makes the double sum agree with the
	// orthonormal matrix form T·A·Tᵀ of Eq. 2 (Eq. 1's 1/√(2N)·C(i)C(j)
	// with the factor-of-2 of the cosine product absorbed).
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for x := 0; x < n; x++ {
				for y := 0; y < n; y++ {
					sum += float64(a.At2(x, y)) * s(x, i) * s(y, j)
				}
			}
			v := (2 / float64(n)) * c(i) * c(j) * sum
			out.Set2(float32(v), i, j)
		}
	}
	return out
}

// BlockDiagTransform returns T_L: nblks copies of the b×b transform T
// placed along the diagonal of an (nblks·b)×(nblks·b) zero matrix
// (Fig. 4), so that T_L·A·T_Lᵀ applies the DCT to every b×b block of A
// at once.
func BlockDiagTransform(b, nblks int) *tensor.Tensor {
	return BlockDiag(Transform(b), nblks)
}

// ChopMask returns the mask matrix M of Fig. 4 for an n×n input with
// chop factor cf: a (cf·n/b)×n matrix of cf×cf identity sub-blocks, one
// per b-wide block column, so that M·D·Mᵀ retains the upper-left cf×cf
// corner of every b×b block of D. n must be a multiple of b.
func ChopMask(n, cf, b int) *tensor.Tensor {
	if n%b != 0 {
		panic(fmt.Sprintf("dct: ChopMask n=%d not a multiple of block size %d", n, b))
	}
	if cf < 1 || cf > b {
		panic(fmt.Sprintf("dct: ChopMask chop factor %d outside [1,%d]", cf, b))
	}
	nblks := n / b
	out := tensor.New(cf*nblks, n)
	for blk := 0; blk < nblks; blk++ {
		for i := 0; i < cf; i++ {
			// Row blk*cf+i has its single 1 at column blk*b+i.
			out.Set2(1, blk*cf+i, blk*b+i)
		}
	}
	return out
}

// LHS returns the fused compression matrix M·T_L of Eq. 4, of size
// (cf·n/b)×n. The paper computes LHS offline, at compile time; callers
// should do the same and reuse it across batches.
func LHS(n, cf, b int) *tensor.Tensor {
	return tensor.MatMul(ChopMask(n, cf, b), BlockDiagTransform(b, n/b))
}

// RHS returns the fused compression matrix T_Lᵀ·Mᵀ of Eq. 4, of size
// n×(cf·n/b). RHS(n,cf,b) == LHS(n,cf,b)ᵀ because T_L is applied
// symmetrically; the identity is asserted in tests.
func RHS(n, cf, b int) *tensor.Tensor {
	return LHS(n, cf, b).Transpose()
}

// ZigZag returns the classic JPEG zigzag traversal order of an n×n
// block: a permutation of flat indices i*n+j visiting anti-diagonals
// alternately upward and downward (Fig. 2, green path).
func ZigZag(n int) []int {
	order := make([]int, 0, n*n)
	for d := 0; d < 2*n-1; d++ {
		if d%2 == 0 {
			// Upward: start at bottom of the anti-diagonal.
			i := d
			if i > n-1 {
				i = n - 1
			}
			j := d - i
			for i >= 0 && j < n {
				order = append(order, i*n+j)
				i--
				j++
			}
		} else {
			j := d
			if j > n-1 {
				j = n - 1
			}
			i := d - j
			for j >= 0 && i < n {
				order = append(order, i*n+j)
				i++
				j--
			}
		}
	}
	return order
}

// TriangleIndices returns the flat indices (i*b+j with i+j < cf) of the
// upper-left triangle of a b×b block — the values the Graphcore SG
// optimization retains instead of the full cf×cf square (§3.5.2, Fig. 6).
// Indices are emitted in row-major order.
func TriangleIndices(cf, b int) []int {
	if cf < 1 || cf > b {
		panic(fmt.Sprintf("dct: TriangleIndices chop factor %d outside [1,%d]", cf, b))
	}
	idx := make([]int, 0, cf*(cf+1)/2)
	for i := 0; i < cf; i++ {
		for j := 0; i+j < cf; j++ {
			idx = append(idx, i*b+j)
		}
	}
	return idx
}

// TriangleCount returns cf(cf+1)/2, the number of coefficients the SG
// variant keeps per block.
func TriangleCount(cf int) int { return cf * (cf + 1) / 2 }

// CompressFLOPs evaluates Eq. 5, the floating-point operation count of
// compressing one n×n plane with chop factor cf (block size 8):
//
//	FLOPs = (2n³·cf/8)·(cf/8 + 1) − n²·(cf/8 + cf²/64)
func CompressFLOPs(n, cf int) float64 {
	nf, c := float64(n), float64(cf)
	return (2*nf*nf*nf*c/8)*(c/8+1) - nf*nf*(c/8+c*c/64)
}

// DecompressFLOPs evaluates Eq. 7, the operation count of decompressing
// one plane:
//
//	FLOPs = (2n³·cf/8)·(cf/8 + 1) − n²·(cf/8 + 1)
func DecompressFLOPs(n, cf int) float64 {
	nf, c := float64(n), float64(cf)
	return (2*nf*nf*nf*c/8)*(c/8+1) - nf*nf*(c/8+1)
}
