package dct

import "repro/internal/tensor"

// ZFPBlockSize is the ZFP decorrelating transform's block edge.
const ZFPBlockSize = 4

// ZFPBlockTransform returns the 4×4 ZFP decorrelating transform
// (Lindstrom, "Fixed-Rate Compressed Floating-Point Arrays", TVCG 2014):
//
//	L = 1/16 · ⎡ 4  4  4  4⎤
//	           ⎢ 5  1 -1 -5⎥
//	           ⎢-4  4  4 -4⎥
//	           ⎣-2  6 -6  2⎦
//
// Unlike DCT-II it is *not* orthogonal (L⁻¹ ≠ Lᵀ), but it is linear, so
// it slots into the same fused two-matmul compressor — the "ZFP block
// transform instead of DCT-II" variant the paper's future-work section
// proposes for general scientific floating-point data. The compressor
// computes L⁻¹ once at compile time via tensor.Inverse.
func ZFPBlockTransform() *tensor.Tensor {
	v := []float32{
		4, 4, 4, 4,
		5, 1, -1, -5,
		-4, 4, 4, -4,
		-2, 6, -6, 2,
	}
	t := tensor.FromSlice(v, 4, 4)
	t.ScaleInPlace(1.0 / 16)
	return t
}

// BlockDiag generalizes BlockDiagTransform: nblks copies of an
// arbitrary b×b matrix placed along the diagonal of a zero matrix.
func BlockDiag(m *tensor.Tensor, nblks int) *tensor.Tensor {
	b := m.Dim(0)
	n := b * nblks
	out := tensor.New(n, n)
	for blk := 0; blk < nblks; blk++ {
		off := blk * b
		for i := 0; i < b; i++ {
			for j := 0; j < b; j++ {
				out.Set2(m.At2(i, j), off+i, off+j)
			}
		}
	}
	return out
}

// DenseCompressFLOPs is the dense-matmul operation count of the fused
// two-product pipeline Y = LHS·A·RHS for an n×n plane chopped to m×m:
// 2mn² + 2m²n. It generalizes Eq. 5 to transforms whose block-diagonal
// sparsity the device compilers do not exploit (the ZFP-transform
// variant); for DCT-II at block size 8 use CompressFLOPs (Eq. 5).
func DenseCompressFLOPs(n, m int) float64 {
	nf, mf := float64(n), float64(m)
	return 2*mf*nf*nf + 2*mf*mf*nf
}
