package dct

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// adversarialFill seeds a slice with values that stress float32 edge
// cases: ±0, NaN, ±Inf, denormals, and huge magnitudes, mixed with
// ordinary noise.
func adversarialFill(r *rand.Rand, s []float32) {
	specials := []float32{
		0, float32(math.Copysign(0, -1)),
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
		math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32,
		math.MaxFloat32, -math.MaxFloat32, 1e-30, -1e-30,
	}
	for i := range s {
		if r.Intn(3) == 0 {
			s[i] = specials[r.Intn(len(specials))]
		} else {
			s[i] = float32(r.NormFloat64() * 100)
		}
	}
}

// sameBits reports whether two float32 slices are bit-identical
// (NaN payloads included) and returns the first differing index.
//
// Under the race detector the instrumentation changes the portable
// path's codegen (inlining and spills), which changes which operand
// lands in src1 of the two-NaN float ops — so NaN payloads stop
// matching the assembly's. Payloads are unobservable downstream
// (float→int conversion of any NaN is the same value), so the race
// build compares NaNs as a class and stays bit-exact everywhere else.
func sameBits(a, b []float32) (int, bool) {
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			if raceEnabled && math.IsNaN(float64(a[i])) && math.IsNaN(float64(b[i])) {
				continue
			}
			return i, false
		}
	}
	return -1, true
}

// randKernel builds a Kernel over a random b×b transform. Some entries
// are forced to exactly zero to exercise the column-pass skip branch.
func randKernel(r *rand.Rand, b, cf int) *Kernel {
	t := tensor.New(b, b)
	it := tensor.New(b, b)
	td, itd := t.Data(), it.Data()
	for i := 0; i < b*b; i++ {
		td[i] = float32(r.NormFloat64())
		itd[i] = float32(r.NormFloat64())
		if r.Intn(5) == 0 {
			td[i] = 0
		}
		if r.Intn(5) == 0 {
			itd[i] = 0
		}
	}
	return NewKernel(t, it, cf)
}

// TestKernelSIMDEquivalence checks that the dispatched vector kernels
// produce bit-identical output to the portable path across block sizes,
// chop factors, strides, and adversarial inputs.
func TestKernelSIMDEquivalence(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no SIMD kernels on this platform")
	}
	defer SetSIMD(true)
	r := rand.New(rand.NewSource(7))
	for _, b := range []int{4, 8} {
		for cf := 1; cf <= b; cf++ {
			for _, nblkRows := range []int{1, 2, 3, 5} {
				n := b * nblkRows
				k := randKernel(r, b, cf)
				m := k.M(n)
				for trial := 0; trial < 4; trial++ {
					name := fmt.Sprintf("b=%d/cf=%d/n=%d/trial=%d", b, cf, n, trial)
					srcStride := n + r.Intn(5)
					dstStride := m + r.Intn(5)
					src := make([]float32, n*srcStride+n)
					if trial%2 == 0 {
						adversarialFill(r, src)
					} else {
						for i := range src {
							src[i] = float32(r.NormFloat64())
						}
					}
					scratchA := make([]float32, k.ScratchLen(n))
					scratchB := make([]float32, k.ScratchLen(n))
					fwdA := make([]float32, m*dstStride+m)
					fwdB := make([]float32, m*dstStride+m)

					SetSIMD(false)
					k.Forward(fwdA, dstStride, src, srcStride, n, scratchA)
					SetSIMD(true)
					k.Forward(fwdB, dstStride, src, srcStride, n, scratchB)
					if i, ok := sameBits(fwdA, fwdB); !ok {
						t.Fatalf("%s: Forward diverges at %d: portable %08x simd %08x",
							name, i, math.Float32bits(fwdA[i]), math.Float32bits(fwdB[i]))
					}

					// Inverse over an independent m×m input (reusing the
					// forward output would propagate NaNs everywhere and
					// weaken the comparison less interestingly).
					isrc := make([]float32, m*srcStride+m)
					if trial%2 == 0 {
						adversarialFill(r, isrc)
					} else {
						for i := range isrc {
							isrc[i] = float32(r.NormFloat64())
						}
					}
					invA := make([]float32, n*dstStride+n)
					invB := make([]float32, n*dstStride+n)
					SetSIMD(false)
					k.Inverse(invA, dstStride, isrc, srcStride, n, scratchA)
					SetSIMD(true)
					k.Inverse(invB, dstStride, isrc, srcStride, n, scratchB)
					if i, ok := sameBits(invA, invB); !ok {
						t.Fatalf("%s: Inverse diverges at %d: portable %08x simd %08x",
							name, i, math.Float32bits(invA[i]), math.Float32bits(invB[i]))
					}
				}
			}
		}
	}
}

// TestKernelSIMDAllocs verifies the dispatched paths stay
// allocation-free in both modes.
func TestKernelSIMDAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	k := randKernel(r, 8, 4)
	n := 64
	m := k.M(n)
	src := make([]float32, n*n)
	for i := range src {
		src[i] = float32(r.NormFloat64())
	}
	dst := make([]float32, m*m)
	rec := make([]float32, n*n)
	scratch := make([]float32, k.ScratchLen(n))
	for _, mode := range []bool{false, true} {
		if mode && !SIMDAvailable() {
			continue
		}
		SetSIMD(mode)
		allocs := testing.AllocsPerRun(10, func() {
			k.Forward(dst, m, src, n, n, scratch)
			k.Inverse(rec, n, dst, m, n, scratch)
		})
		if allocs != 0 {
			t.Fatalf("simd=%v: Forward+Inverse allocated %v times per run", mode, allocs)
		}
	}
	SetSIMD(true)
}
