package dct

import (
	"fmt"
	"testing"

	"repro/internal/tensor"
)

// denseRoundTripOps builds the fused dense operands for one plane:
// compress Y = L·A·Lᵀ with L = M·T_L, decompress A' = G_L·Y·G_Lᵀ with
// G_L = BlockDiag(inv)·Mᵀ — exactly what core.Compressor compiles.
func denseOps(t *testing.T, tr, inv *tensor.Tensor, n, cf int) (lhs, dlhs *tensor.Tensor) {
	t.Helper()
	b := tr.Dim(0)
	mask := ChopMask(n, cf, b)
	lhs = tensor.MatMul(mask, BlockDiag(tr, n/b))
	dlhs = tensor.MatMul(BlockDiag(inv, n/b), mask.Transpose())
	return lhs, dlhs
}

func testPlane(n int, seed float32) *tensor.Tensor {
	x := tensor.New(n, n)
	d := x.Data()
	for i := range d {
		d[i] = seed + float32((int64(i)*2654435761)%1000)/1000 - 0.5
	}
	return x
}

// TestKernelMatchesDense proves the separable fast kernel reproduces the
// dense fused-matmul reference to ≤1e-5 max abs error for every chop
// factor of both transforms.
func TestKernelMatchesDense(t *testing.T) {
	cases := []struct {
		name string
		tr   *tensor.Tensor
		inv  *tensor.Tensor
		n    int
	}{
		{"dct8", Transform(8), Transform(8).Transpose(), 32},
		{"zfp4", ZFPBlockTransform(), mustInverse(t, ZFPBlockTransform()), 32},
	}
	for _, tc := range cases {
		b := tc.tr.Dim(0)
		for cf := 1; cf <= b; cf++ {
			tc, cf := tc, cf
			t.Run(fmt.Sprintf("%s/cf%d", tc.name, cf), func(t *testing.T) {
				k := NewKernel(tc.tr, tc.inv, cf)
				lhs, dlhs := denseOps(t, tc.tr, tc.inv, tc.n, cf)
				x := testPlane(tc.n, 0.1)
				m := k.M(tc.n)

				wantY := tensor.MatMul(tensor.MatMul(lhs, x), lhs.Transpose())
				gotY := tensor.New(m, m)
				scratch := make([]float32, k.ScratchLen(tc.n))
				k.Forward(gotY.Data(), m, x.Data(), tc.n, tc.n, scratch)
				if d := gotY.MaxAbsDiff(wantY); d > 1e-5 {
					t.Fatalf("forward diverges from dense: max abs diff %g", d)
				}

				wantA := tensor.MatMul(tensor.MatMul(dlhs, wantY), dlhs.Transpose())
				gotA := tensor.New(tc.n, tc.n)
				k.Inverse(gotA.Data(), tc.n, gotY.Data(), m, tc.n, scratch)
				if d := gotA.MaxAbsDiff(wantA); d > 1e-5 {
					t.Fatalf("inverse diverges from dense: max abs diff %g", d)
				}
			})
		}
	}
}

// TestKernelStridedChunk exercises the stride support partial
// serialization relies on: transforming an embedded chunk of a larger
// plane in place must agree with transforming the extracted chunk.
func TestKernelStridedChunk(t *testing.T) {
	const n, cn, cf = 32, 16, 3
	tr := Transform(8)
	k := NewKernel(tr, tr.Transpose(), cf)
	parent := testPlane(n, 0.7)
	mc := k.M(cn)
	scratch := make([]float32, k.ScratchLen(cn))

	for _, corner := range []struct{ r, q int }{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		base := corner.r*cn*n + corner.q*cn
		// Extract the chunk densely for the reference.
		chunk := tensor.New(cn, cn)
		for i := 0; i < cn; i++ {
			copy(chunk.Data()[i*cn:(i+1)*cn], parent.Data()[base+i*n:base+i*n+cn])
		}
		want := tensor.New(mc, mc)
		k.Forward(want.Data(), mc, chunk.Data(), cn, cn, scratch)

		got := tensor.New(mc, mc)
		k.Forward(got.Data(), mc, parent.Data()[base:], n, cn, scratch)
		if d := got.MaxAbsDiff(want); d > 0 {
			t.Fatalf("chunk (%d,%d): strided forward differs (max %g)", corner.r, corner.q, d)
		}

		// Inverse written back into a strided destination.
		back := tensor.New(n, n)
		k.Inverse(back.Data()[base:], n, got.Data(), mc, cn, scratch)
		backChunk := tensor.New(cn, cn)
		k.Inverse(backChunk.Data(), cn, got.Data(), mc, cn, scratch)
		for i := 0; i < cn; i++ {
			for j := 0; j < cn; j++ {
				if back.Data()[base+i*n+j] != backChunk.At2(i, j) {
					t.Fatalf("chunk (%d,%d): strided inverse differs at (%d,%d)", corner.r, corner.q, i, j)
				}
			}
		}
	}
}

// TestKernelForwardAllocs pins the kernel's no-allocation contract.
func TestKernelForwardAllocs(t *testing.T) {
	const n, cf = 64, 4
	tr := Transform(8)
	k := NewKernel(tr, tr.Transpose(), cf)
	x := testPlane(n, 0.3)
	m := k.M(n)
	dst := make([]float32, m*m)
	back := make([]float32, n*n)
	scratch := make([]float32, k.ScratchLen(n))
	allocs := testing.AllocsPerRun(20, func() {
		k.Forward(dst, m, x.Data(), n, n, scratch)
		k.Inverse(back, n, dst, m, n, scratch)
	})
	if allocs != 0 {
		t.Fatalf("kernel allocated %.1f objects per round trip, want 0", allocs)
	}
}

func mustInverse(t *testing.T, m *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	inv, err := tensor.Inverse(m)
	if err != nil {
		t.Fatal(err)
	}
	return inv
}
