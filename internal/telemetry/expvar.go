package telemetry

import (
	"expvar"
	"sync"
)

// expvarOnce guards against the duplicate-name panic in expvar.Publish:
// PublishExpvar is callable from any number of entry points (the HTTP
// handler, acc-serve, tests) and only the first call registers.
var expvarOnce sync.Once

// PublishExpvar exposes the default registry under the expvar name
// "acc_telemetry": /debug/vars then carries the full JSON snapshot next
// to the runtime's memstats. Snapshotting happens per scrape, not per
// metric update, so publication adds nothing to the hot path.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("acc_telemetry", expvar.Func(func() any {
			return std.Snapshot()
		}))
	})
}
