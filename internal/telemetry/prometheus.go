package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative le-bucketed series with _sum and
// _count. Dotted metric names are sanitized to the Prometheus charset
// and prefixed "acc_", so "codec.zfp:rate=8.compress_calls" becomes
// acc_codec_zfp_rate_8_compress_calls.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		// Cumulative buckets up to the last non-empty one; +Inf always.
		last := -1
		for i, n := range h.Buckets {
			if n != 0 {
				last = i
			}
		}
		var cum uint64
		for i := 0; i <= last; i++ {
			cum += h.Buckets[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, BucketUpper(i), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			pn, h.Count, pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a dotted metric name onto the Prometheus metric-name
// charset [a-zA-Z0-9_] with an "acc_" namespace prefix; every illegal
// rune becomes '_' and runs of '_' collapse, so distinct readable names
// stay distinct in practice.
func promName(name string) string {
	var b strings.Builder
	b.Grow(4 + len(name))
	b.WriteString("acc_")
	prevUnderscore := false
	for _, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			r = '_'
		}
		if r == '_' {
			if prevUnderscore {
				continue
			}
			prevUnderscore = true
		} else {
			prevUnderscore = false
		}
		b.WriteRune(r)
	}
	return strings.TrimSuffix(b.String(), "_")
}
