package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// withEnabled runs fn with the global switch forced to v, restoring the
// previous state after. Tests that need recording on are skipped when
// the package is compiled out (-tags acc_notelemetry).
func withEnabled(t *testing.T, v bool, fn func()) {
	t.Helper()
	if v && !compiled {
		t.Skip("telemetry compiled out (acc_notelemetry)")
	}
	prev := SetEnabled(v)
	defer SetEnabled(prev)
	fn()
}

func TestCounterGaugeBasics(t *testing.T) {
	withEnabled(t, true, func() {
		r := NewRegistry()
		c := r.Counter("test.counter")
		c.Inc()
		c.Add(4)
		if got := c.Value(); got != 5 {
			t.Errorf("counter = %d, want 5", got)
		}
		if r.Counter("test.counter") != c {
			t.Error("counter lookup is not idempotent")
		}
		g := r.Gauge("test.gauge")
		g.Set(7)
		g.Add(-3)
		if got := g.Value(); got != 4 {
			t.Errorf("gauge = %d, want 4", got)
		}
	})
}

func TestNilReceiversAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(10)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveSince(1)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Error("nil receivers must read as zero")
	}
}

func TestDisabledRecordsNothing(t *testing.T) {
	withEnabled(t, false, func() {
		r := NewRegistry()
		c := r.Counter("off.counter")
		g := r.Gauge("off.gauge")
		h := r.Histogram("off.hist")
		c.Inc()
		g.Set(9)
		h.Observe(100)
		if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
			t.Error("disabled telemetry must record nothing")
		}
		if NowNanos() != 0 {
			t.Error("NowNanos must return 0 while disabled")
		}
	})
	// The paired ObserveSince of a disabled-start stamp is a no-op even
	// if telemetry is enabled in between (no garbage duration).
	var start int64
	withEnabled(t, false, func() { start = NowNanos() })
	withEnabled(t, true, func() {
		h := NewRegistry().Histogram("flip.hist")
		h.ObserveSince(start)
		if h.Snapshot().Count != 0 {
			t.Error("ObserveSince(0) must record nothing")
		}
	})
}

func TestBucketLayout(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1 << 61, 62}, {math.MaxInt64, 62}}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	if BucketUpper(0) != 0 || BucketUpper(1) != 1 || BucketUpper(3) != 7 {
		t.Error("BucketUpper low bounds wrong")
	}
	if BucketUpper(histBuckets-1) != math.MaxUint64 {
		t.Error("last bucket must be unbounded")
	}
	// Every value must land in a bucket whose bound covers it.
	for _, v := range []int64{0, 1, 5, 1000, 123456789, math.MaxInt64} {
		i := bucketIndex(v)
		if uint64(v) > BucketUpper(i) {
			t.Errorf("value %d overruns bucket %d bound %d", v, i, BucketUpper(i))
		}
		if i > 0 && uint64(v) <= BucketUpper(i-1) {
			t.Errorf("value %d fits bucket %d, placed in %d", v, i-1, i)
		}
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	withEnabled(t, true, func() {
		h := NewRegistry().Histogram("q.hist")
		for i := 0; i < 100; i++ {
			h.Observe(10) // bucket 4, upper bound 15
		}
		h.Observe(1 << 20) // one outlier
		s := h.Snapshot()
		if s.Count != 101 {
			t.Fatalf("count = %d, want 101", s.Count)
		}
		if got := s.Quantile(0.5); got != 15 {
			t.Errorf("p50 = %d, want 15 (bucket upper bound)", got)
		}
		if got := s.Quantile(1.0); got != BucketUpper(21) {
			t.Errorf("p100 = %d, want %d", got, BucketUpper(21))
		}
		wantMean := (100*10.0 + float64(1<<20)) / 101
		if math.Abs(s.Mean()-wantMean) > 1e-9 {
			t.Errorf("mean = %g, want %g", s.Mean(), wantMean)
		}
	})
}

func TestHistogramMerge(t *testing.T) {
	withEnabled(t, true, func() {
		r := NewRegistry()
		a := r.Histogram("m.a")
		b := r.Histogram("m.b")
		for i := int64(1); i <= 10; i++ {
			a.Observe(i)
			b.Observe(i * 1000)
		}
		sa, sb := a.Snapshot(), b.Snapshot()
		merged := sa
		merged.Merge(sb)
		if merged.Count != sa.Count+sb.Count {
			t.Errorf("merged count %d, want %d", merged.Count, sa.Count+sb.Count)
		}
		if merged.Sum != sa.Sum+sb.Sum {
			t.Errorf("merged sum %d, want %d", merged.Sum, sa.Sum+sb.Sum)
		}
		for i := range merged.Buckets {
			if merged.Buckets[i] != sa.Buckets[i]+sb.Buckets[i] {
				t.Fatalf("bucket %d: %d, want %d", i, merged.Buckets[i], sa.Buckets[i]+sb.Buckets[i])
			}
		}
	})
}

func TestHistogramSnapshotJSONRoundTrip(t *testing.T) {
	withEnabled(t, true, func() {
		h := NewRegistry().Histogram("j.hist")
		for _, v := range []int64{0, 1, 3, 100, 1 << 30} {
			h.Observe(v)
		}
		s := h.Snapshot()
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back HistogramSnapshot
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != s {
			t.Errorf("JSON round trip changed the snapshot:\n got %+v\nwant %+v", back, s)
		}
		// Idle histograms must marshal tiny (no 63-element array).
		empty, err := json.Marshal(HistogramSnapshot{})
		if err != nil {
			t.Fatal(err)
		}
		if len(empty) > 32 {
			t.Errorf("empty snapshot marshals to %d bytes: %s", len(empty), empty)
		}
	})
}

func TestRegistrySnapshotElisionAndDelta(t *testing.T) {
	withEnabled(t, true, func() {
		r := NewRegistry()
		r.Counter("zero.counter") // never incremented: elided
		r.Histogram("zero.hist")  // never observed: elided
		r.Gauge("zero.gauge")     // gauges are kept even at zero
		c := r.Counter("live.counter")
		c.Add(3)
		s := r.Snapshot()
		if _, ok := s.Counters["zero.counter"]; ok {
			t.Error("zero counter must be elided from the snapshot")
		}
		if _, ok := s.Histograms["zero.hist"]; ok {
			t.Error("empty histogram must be elided from the snapshot")
		}
		if _, ok := s.Gauges["zero.gauge"]; !ok {
			t.Error("zero gauge must be kept in the snapshot")
		}
		if s.Counters["live.counter"] != 3 {
			t.Errorf("live.counter = %d, want 3", s.Counters["live.counter"])
		}
		c.Add(4)
		d := r.Snapshot().Delta(s)
		if d.Counters["live.counter"] != 4 {
			t.Errorf("delta = %d, want 4", d.Counters["live.counter"])
		}
	})
}

func TestWriteHuman(t *testing.T) {
	withEnabled(t, true, func() {
		r := NewRegistry()
		r.Counter("c.calls").Add(2)
		r.Gauge("g.bytes").Set(42)
		r.Histogram("h.latency_ns").Observe(1500)
		var b strings.Builder
		if err := r.Snapshot().WriteHuman(&b); err != nil {
			t.Fatal(err)
		}
		out := b.String()
		for _, want := range []string{"c.calls", "g.bytes", "h.latency_ns", "count 1"} {
			if !strings.Contains(out, want) {
				t.Errorf("human output missing %q:\n%s", want, out)
			}
		}
		// _ns histograms render with duration units.
		if !strings.Contains(out, "µs") && !strings.Contains(out, "ms") {
			t.Errorf("duration histogram not scaled to time units:\n%s", out)
		}
	})
}

func TestWritePrometheus(t *testing.T) {
	withEnabled(t, true, func() {
		r := NewRegistry()
		r.Counter("codec.zfp:rate=8.compress_calls").Add(7)
		r.Gauge("stream.writer.inflight_bytes").Set(12)
		h := r.Histogram("stage.fse.forward_ns")
		h.Observe(3)
		h.Observe(100)
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		out := b.String()
		for _, want := range []string{
			"# TYPE acc_codec_zfp_rate_8_compress_calls counter",
			"acc_codec_zfp_rate_8_compress_calls 7",
			"# TYPE acc_stream_writer_inflight_bytes gauge",
			"acc_stream_writer_inflight_bytes 12",
			"# TYPE acc_stage_fse_forward_ns histogram",
			`acc_stage_fse_forward_ns_bucket{le="+Inf"} 2`,
			"acc_stage_fse_forward_ns_sum 103",
			"acc_stage_fse_forward_ns_count 2",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("prometheus output missing %q:\n%s", want, out)
			}
		}
		// Bucket counts must be cumulative.
		if !strings.Contains(out, `acc_stage_fse_forward_ns_bucket{le="3"} 1`) {
			t.Errorf("missing cumulative bucket for value 3:\n%s", out)
		}
	})
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"codec.zfp:rate=8.compress_calls": "acc_codec_zfp_rate_8_compress_calls",
		"simple":                          "acc_simple",
		"a..b":                            "acc_a_b",
		"trailing.":                       "acc_trailing",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTraceRing(t *testing.T) {
	withEnabled(t, true, func() {
		prev := SetTraceEnabled(true)
		defer SetTraceEnabled(prev)
		ResetTrace()
		defer ResetTrace()
		TraceRecord(1, PhaseAdmitted)
		TraceRecord(1, PhaseEncoded)
		TraceRecord(1, PhaseEmitted)
		TraceRecord(2, PhaseAdmitted)
		evs := TraceEvents()
		if len(evs) != 4 {
			t.Fatalf("got %d events, want 4", len(evs))
		}
		if evs[0].Record != 1 || evs[0].Phase != "admitted" {
			t.Errorf("first event = %+v", evs[0])
		}
		if evs[3].Record != 2 || evs[3].Phase != "admitted" {
			t.Errorf("last event = %+v", evs[3])
		}
		for _, e := range evs {
			if e.UnixNanos == 0 {
				t.Error("event missing timestamp")
			}
		}
	})
}

func TestTraceRingWraps(t *testing.T) {
	withEnabled(t, true, func() {
		prev := SetTraceEnabled(true)
		defer SetTraceEnabled(prev)
		ResetTrace()
		defer ResetTrace()
		total := traceRingSize + 100
		for i := 0; i < total; i++ {
			TraceRecord(int64(i), PhaseAdmitted)
		}
		evs := TraceEvents()
		if len(evs) != traceRingSize {
			t.Fatalf("got %d events, want ring size %d", len(evs), traceRingSize)
		}
		if evs[0].Record != int64(total-traceRingSize) {
			t.Errorf("oldest surviving record = %d, want %d", evs[0].Record, total-traceRingSize)
		}
		if evs[len(evs)-1].Record != int64(total-1) {
			t.Errorf("newest record = %d, want %d", evs[len(evs)-1].Record, total-1)
		}
	})
}

func TestTraceDisabledByDefault(t *testing.T) {
	withEnabled(t, true, func() {
		ResetTrace()
		defer ResetTrace()
		TraceRecord(9, PhaseAdmitted)
		if evs := TraceEvents(); len(evs) != 0 {
			t.Errorf("trace recorded %d events while disabled", len(evs))
		}
	})
}

// TestConcurrentWriters hammers one counter, gauge, and histogram from
// many goroutines; run under -race this is the data-race gate, and the
// totals prove no increment is lost.
func TestConcurrentWriters(t *testing.T) {
	withEnabled(t, true, func() {
		r := NewRegistry()
		c := r.Counter("conc.counter")
		g := r.Gauge("conc.gauge")
		h := r.Histogram("conc.hist")
		const workers = 8
		const perWorker = 10000
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					c.Inc()
					g.Add(1)
					h.Observe(int64(i))
					if i%64 == 0 {
						_ = r.Snapshot() // concurrent reader
					}
				}
			}(w)
		}
		wg.Wait()
		if got := c.Value(); got != workers*perWorker {
			t.Errorf("counter = %d, want %d", got, workers*perWorker)
		}
		if got := g.Value(); got != workers*perWorker {
			t.Errorf("gauge = %d, want %d", got, workers*perWorker)
		}
		if got := h.Snapshot().Count; got != workers*perWorker {
			t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
		}
	})
}

// TestRecordingAllocs is the package's own zero-allocation gate: one
// counter add, gauge set, histogram observe, and timing pair must not
// allocate, enabled or disabled.
func TestRecordingAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc.counter")
	g := r.Gauge("alloc.gauge")
	h := r.Histogram("alloc.hist")
	for _, enabled := range []bool{true, false} {
		withEnabled(t, enabled, func() {
			allocs := testing.AllocsPerRun(100, func() {
				c.Inc()
				g.Set(1)
				h.Observe(42)
				start := NowNanos()
				h.ObserveSince(start)
				TraceRecord(1, PhaseAdmitted)
			})
			if allocs != 0 {
				t.Errorf("enabled=%v: recording allocates %v/op, want 0", enabled, allocs)
			}
		})
	}
}

func TestHTTPHandler(t *testing.T) {
	withEnabled(t, true, func() {
		NewCounter("http.test.calls").Add(5)
		srv := httptest.NewServer(Handler())
		defer srv.Close()
		get := func(path string) (string, string) {
			t.Helper()
			resp, err := srv.Client().Get(srv.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != 200 {
				t.Fatalf("GET %s: status %d", path, resp.StatusCode)
			}
			return string(body), resp.Header.Get("Content-Type")
		}
		if body, _ := get("/metrics"); !strings.Contains(body, "acc_http_test_calls 5") {
			t.Errorf("/metrics missing counter:\n%s", body)
		}
		body, ctype := get("/debug/telemetry")
		if !strings.Contains(ctype, "application/json") {
			t.Errorf("/debug/telemetry content type %q", ctype)
		}
		var snap Snapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("/debug/telemetry is not a JSON snapshot: %v", err)
		}
		if snap.Counters["http.test.calls"] == 0 {
			t.Errorf("/debug/telemetry missing counter:\n%s", body)
		}
		if body, _ := get("/debug/vars"); !strings.Contains(body, "acc_telemetry") {
			t.Errorf("/debug/vars missing published acc_telemetry var:\n%s", body)
		}
		if body, _ := get("/debug/pprof/cmdline"); len(body) == 0 {
			t.Error("/debug/pprof/cmdline empty")
		}
	})
}

func TestSetEnabledRoundTrip(t *testing.T) {
	if !compiled {
		t.Skip("telemetry compiled out (acc_notelemetry)")
	}
	orig := Enabled()
	defer SetEnabled(orig)
	if prev := SetEnabled(false); prev != orig {
		t.Errorf("SetEnabled returned %v, want previous state %v", prev, orig)
	}
	if Enabled() {
		t.Error("Enabled() true after SetEnabled(false)")
	}
	SetEnabled(true)
	if !Enabled() {
		t.Error("Enabled() false after SetEnabled(true)")
	}
}

func TestEnvSwitchParsing(t *testing.T) {
	for _, off := range []string{"0", "false", "off", "no", "FALSE", "Off"} {
		if !envDisabled(off) {
			t.Errorf("envDisabled(%q) = false, want true", off)
		}
	}
	for _, on := range []string{"", "1", "true", "yes", "anything"} {
		if envDisabled(on) {
			t.Errorf("envDisabled(%q) = true, want false", on)
		}
	}
	if envSet("") || envSet("0") {
		t.Error("envSet must be false for empty/disabled values")
	}
	if !envSet("1") {
		t.Error("envSet(\"1\") must be true")
	}
}
