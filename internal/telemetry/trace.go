package telemetry

import (
	"sync/atomic"
	"time"
)

// The pipeline trace is an optional, lock-free ring buffer of
// per-record lifecycle events: the stream engine stamps each record as
// it is admitted, encoded, and emitted, and the ring keeps the most
// recent traceRingSize events for a post-hoc look at pipeline dwell
// times (admit→encode = queueing, encode→emit = reorder/sink stall).
//
// Emitting an event is one atomic cursor bump plus two atomic stores
// into a pre-allocated slot — no locks, no allocation — so tracing can
// stay on in production. The two words of a slot are stored (and read)
// independently; a reader racing a writer on a wrapping slot can see a
// torn event, which is acceptable for an advisory trace and keeps the
// hot path free of seqlock retries. Tracing is off by default: enable
// with ACC_TRACE=1 or SetTraceEnabled(true); the master telemetry
// switch gates it too.

// traceRingSize is the ring capacity (a power of two, so slot indexing
// is a mask).
const traceRingSize = 4096

// Trace phases, in lifecycle order.
const (
	PhaseAdmitted uint8 = iota + 1 // record accepted into the pipeline
	PhaseEncoded                   // payload encode finished
	PhaseEmitted                   // record written to the sink
)

// PhaseName returns the human name of a trace phase.
func PhaseName(p uint8) string {
	switch p {
	case PhaseAdmitted:
		return "admitted"
	case PhaseEncoded:
		return "encoded"
	case PhaseEmitted:
		return "emitted"
	}
	return "unknown"
}

// TraceEvent is one decoded ring entry.
type TraceEvent struct {
	Record    int64  `json:"record"` // pipeline sequence number of the record
	Phase     string `json:"phase"`
	UnixNanos int64  `json:"unix_nanos"`
}

// traceSlot packs one event into two independently-atomic words:
// w0 = timestamp nanos, w1 = record<<8 | phase.
type traceSlot struct {
	w0 atomic.Uint64
	w1 atomic.Uint64
}

var (
	traceOn     atomic.Bool
	traceCursor atomic.Uint64
	traceRing   [traceRingSize]traceSlot
)

// TraceEnabled reports whether the pipeline trace is recording.
func TraceEnabled() bool { return Enabled() && traceOn.Load() }

// SetTraceEnabled turns the pipeline trace on or off and returns the
// previous state.
func SetTraceEnabled(v bool) bool {
	prev := traceOn.Load()
	traceOn.Store(v && compiled)
	return prev
}

// TraceRecord stamps one lifecycle event for a record. record is the
// caller's sequence number (the stream engine uses the admission
// index); values are truncated to 56 bits on the wire.
func TraceRecord(record int64, phase uint8) {
	if !TraceEnabled() {
		return
	}
	i := traceCursor.Add(1) - 1
	slot := &traceRing[i&(traceRingSize-1)]
	slot.w0.Store(uint64(time.Now().UnixNano()))
	slot.w1.Store(uint64(record)<<8 | uint64(phase))
}

// TraceEvents decodes the ring, oldest first. Only slots that have
// been written are returned; the result is a snapshot, racing writers
// may overwrite the oldest entries while it is taken.
func TraceEvents() []TraceEvent {
	n := traceCursor.Load()
	if n == 0 {
		return nil
	}
	count := n
	start := uint64(0)
	if n > traceRingSize {
		count = traceRingSize
		start = n - traceRingSize
	}
	out := make([]TraceEvent, 0, count)
	for i := start; i < n; i++ {
		slot := &traceRing[i&(traceRingSize-1)]
		w1 := slot.w1.Load()
		if w1 == 0 {
			continue
		}
		out = append(out, TraceEvent{
			Record:    int64(w1 >> 8),
			Phase:     PhaseName(uint8(w1)),
			UnixNanos: int64(slot.w0.Load()),
		})
	}
	return out
}

// ResetTrace clears the ring (tests; not safe concurrently with
// writers).
func ResetTrace() {
	traceCursor.Store(0)
	for i := range traceRing {
		traceRing[i].w0.Store(0)
		traceRing[i].w1.Store(0)
	}
}
