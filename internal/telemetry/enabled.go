//go:build !acc_notelemetry

package telemetry

// compiled reports whether instrumentation is compiled into the binary.
// The default build keeps it on; -tags acc_notelemetry flips this file
// out for disabled.go, making Enabled() a constant false so the
// compiler dead-codes every instrumentation branch.
const compiled = true
