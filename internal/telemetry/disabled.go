//go:build acc_notelemetry

package telemetry

// compiled is constant false under -tags acc_notelemetry: Enabled()
// folds to false and instrumentation branches vanish at compile time.
const compiled = false
