package telemetry

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Handler returns the observability endpoint: one mux serving
//
//	/metrics          Prometheus text exposition of the default registry
//	/debug/telemetry  the JSON snapshot (the same shape Stats/-stats use)
//	/debug/vars       expvar (including the published acc_telemetry var)
//	/debug/pprof/...  the standard pprof index, profiles, and trace
//
// acc-serve (ROADMAP item 1) mounts this for its ops port; tests and
// ad-hoc debugging can http.ListenAndServe(addr, telemetry.Handler()).
// The handler is read-only and allocation happens per scrape, never on
// the instrumented hot paths.
func Handler() http.Handler {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = std.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/telemetry", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Snapshot
			Trace []TraceEvent `json:"trace,omitempty"`
		}{std.Snapshot(), TraceEvents()})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeHTTP serves the observability endpoint directly, so the package
// itself satisfies the shape callers expect from an http.Handler-style
// entry point: http.ListenAndServe(addr, http.HandlerFunc(telemetry.ServeHTTP)).
func ServeHTTP(w http.ResponseWriter, r *http.Request) {
	handlerOnce.Do(func() { handler = Handler() })
	handler.ServeHTTP(w, r)
}

var (
	handlerOnce sync.Once
	handler     http.Handler
)
