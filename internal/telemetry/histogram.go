package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the fixed bucket count of every histogram: bucket i
// holds observations whose value has bit-length i, i.e. the half-open
// ranges [0,0], [1,1], [2,3], [4,7], … — powers of two, so a value's
// bucket is one bits.Len64 and the whole layout fits in a cache-line
// handful of atomics with no configuration. Values ≥ 2⁶² land in the
// last bucket.
const histBuckets = 63

// Histogram is a lock-free fixed-bucket log₂-scale histogram for
// latencies (nanoseconds) and sizes (bytes). Observe is two atomic adds;
// there are no locks, no allocation, and snapshots are mergeable across
// histograms of the same (fixed) layout. Negative observations clamp to
// zero. The zero value is ready to use; nil receivers record nothing.
type Histogram struct {
	name    string
	sum     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// Name returns the registry name the histogram was created under.
func (h *Histogram) Name() string { return h.name }

// bucketIndex maps a value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// BucketUpper returns the inclusive upper bound of bucket i (the "le"
// edge the Prometheus encoder publishes).
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= histBuckets-1 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil || !Enabled() {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// ObserveSince records the nanoseconds elapsed since a NowNanos start
// stamp. A zero start (NowNanos taken while disabled) records nothing,
// so enable flips mid-operation never record a garbage duration.
func (h *Histogram) ObserveSince(startNanos int64) {
	if h == nil || startNanos == 0 || !Enabled() {
		return
	}
	h.Observe(NowNanos() - startNanos)
}

// Snapshot returns a point-in-time copy. Concurrent observers may land
// between the bucket loads; each observation is still counted exactly
// once by a later snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	return s
}

// HistogramSnapshot is a frozen histogram: mergeable, comparable, and
// JSON-serializable. Buckets share the fixed log₂ layout, so Merge is
// element-wise addition.
type HistogramSnapshot struct {
	Count   uint64
	Sum     int64
	Buckets [histBuckets]uint64
}

// Merge adds other into s.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	s.Count += other.Count
	s.Sum += other.Sum
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
}

// Mean returns the average observed value, or 0 for an empty snapshot.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 ≤ q ≤ 1) — a conservative estimate whose error is bounded
// by the 2× bucket width. Empty snapshots return 0.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(histBuckets - 1)
}

// histJSON is the wire form of a snapshot: only non-empty buckets ride,
// as [upper-bound, count] pairs, so idle histograms stay tiny.
type histJSON struct {
	Count   uint64      `json:"count"`
	Sum     int64       `json:"sum"`
	Buckets [][2]uint64 `json:"buckets,omitempty"`
}

// MarshalJSON emits the compact non-empty-bucket form.
func (s HistogramSnapshot) MarshalJSON() ([]byte, error) {
	out := histJSON{Count: s.Count, Sum: s.Sum}
	for i, n := range s.Buckets {
		if n != 0 {
			out.Buckets = append(out.Buckets, [2]uint64{BucketUpper(i), n})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON inverts MarshalJSON (snapshots round-trip through the
// BENCH_*.json artifacts).
func (s *HistogramSnapshot) UnmarshalJSON(data []byte) error {
	var in histJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*s = HistogramSnapshot{Count: in.Count, Sum: in.Sum}
	for _, pair := range in.Buckets {
		idx := -1
		for i := 0; i < histBuckets; i++ {
			if BucketUpper(i) == pair[0] {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("telemetry: unknown histogram bucket bound %d", pair[0])
		}
		s.Buckets[idx] += pair[1]
	}
	return nil
}
