package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Registry is a named collection of metrics. Lookup/create is
// mutex-guarded (cold path: callers hoist the returned pointer and
// record through atomics); creation is idempotent, so re-building a
// codec for a spec that already has metrics reuses them.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry. Most callers want Default.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// std is the process-wide registry every package-level helper uses.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{name: name}
		r.histograms[name] = h
	}
	return h
}

// NewCounter returns the named counter from the default registry.
func NewCounter(name string) *Counter { return std.Counter(name) }

// NewGauge returns the named gauge from the default registry.
func NewGauge(name string) *Gauge { return std.Gauge(name) }

// NewHistogram returns the named histogram from the default registry.
func NewHistogram(name string) *Histogram { return std.Histogram(name) }

// Snapshot is a frozen, JSON-serializable view of a registry. Metrics
// that never recorded anything (zero counters, empty histograms) are
// elided, so a snapshot reflects what actually ran; gauges are kept
// even at zero, since zero is a meaningful instantaneous value once the
// gauge exists.
type Snapshot struct {
	TakenUnixNanos int64                        `json:"taken_unix_nanos,omitempty"`
	Counters       map[string]uint64            `json:"counters,omitempty"`
	Gauges         map[string]int64             `json:"gauges,omitempty"`
	Histograms     map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		TakenUnixNanos: time.Now().UnixNano(),
		Counters:       map[string]uint64{},
		Gauges:         map[string]int64{},
		Histograms:     map[string]HistogramSnapshot{},
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		hists = append(hists, h)
	}
	r.mu.Unlock()
	for _, c := range counters {
		if v := c.Value(); v != 0 {
			s.Counters[c.Name()] = v
		}
	}
	for _, g := range gauges {
		s.Gauges[g.Name()] = g.Value()
	}
	for _, h := range hists {
		if hs := h.Snapshot(); hs.Count != 0 {
			s.Histograms[h.Name()] = hs
		}
	}
	return s
}

// Delta returns the change from an earlier snapshot of the same
// registry: counters and histogram buckets subtract; gauges keep their
// current (instantaneous) value. Metrics absent from the earlier
// snapshot pass through unchanged.
func (s Snapshot) Delta(earlier Snapshot) Snapshot {
	out := Snapshot{
		TakenUnixNanos: s.TakenUnixNanos,
		Counters:       map[string]uint64{},
		Gauges:         map[string]int64{},
		Histograms:     map[string]HistogramSnapshot{},
	}
	for name, v := range s.Counters {
		if d := v - earlier.Counters[name]; d != 0 {
			out.Counters[name] = d
		}
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		prev := earlier.Histograms[name]
		d := HistogramSnapshot{Count: h.Count - prev.Count, Sum: h.Sum - prev.Sum}
		for i := range h.Buckets {
			d.Buckets[i] = h.Buckets[i] - prev.Buckets[i]
		}
		if d.Count != 0 {
			out.Histograms[name] = d
		}
	}
	return out
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteHuman renders the snapshot as an aligned human-readable summary
// (the acc-compress -stats output): counters and gauges as name/value
// lines, histograms as count/mean/p50/p99 lines. Durations (metrics
// named *_ns) are scaled to human units.
func (s Snapshot) WriteHuman(w io.Writer) error {
	if len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0 {
		_, err := fmt.Fprintln(w, "telemetry: no metrics recorded")
		return err
	}
	width := 0
	for _, m := range []int{maxKeyLen(s.Counters), maxKeyLen(s.Gauges), maxKeyLen(s.Histograms)} {
		if m > width {
			width = m
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "%-*s %d\n", width, name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "%-*s %d\n", width, name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		ns := len(name) > 3 && name[len(name)-3:] == "_ns"
		if _, err := fmt.Fprintf(w, "%-*s count %d  mean %s  p50 %s  p99 %s\n",
			width, name, h.Count,
			histUnit(h.Mean(), ns), histUnit(float64(h.Quantile(0.50)), ns), histUnit(float64(h.Quantile(0.99)), ns)); err != nil {
			return err
		}
	}
	return nil
}

// maxKeyLen returns the longest key length in m.
func maxKeyLen[V any](m map[string]V) int {
	n := 0
	for k := range m {
		if len(k) > n {
			n = len(k)
		}
	}
	return n
}

// histUnit renders a histogram statistic: durations (ns metrics) via
// time.Duration's unit scaling, sizes as plain numbers (≈ upper bucket
// bounds, so precision beyond two digits would be false).
func histUnit(v float64, ns bool) string {
	if ns {
		return time.Duration(v).Round(time.Microsecond / 10).String()
	}
	return fmt.Sprintf("%.0f", v)
}
