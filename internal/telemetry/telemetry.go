// Package telemetry is the repository's instrumentation layer: atomic
// counters and gauges, fixed-bucket log-scale histograms, a named
// registry with expvar and Prometheus-text exposition, and a lock-free
// ring-buffer event trace. Everything here is dependency-free (stdlib
// only) and allocation-free on the hot path: recording a metric is one
// or two uncontended atomic adds, so instrumented code passes the same
// 0 allocs/op gates as uninstrumented code and never changes the bytes
// it produces.
//
// # Enable/disable switches
//
// Instrumentation is on by default and can be turned off two ways:
//
//   - ACC_TELEMETRY=0 (or "false"/"off") in the environment disables
//     every metric at startup; SetEnabled flips it at runtime (tests
//     use this to prove instrumentation is behavior-neutral).
//   - Building with -tags acc_notelemetry compiles the switch to a
//     constant false, so every Enabled() guard — and the instrumentation
//     behind it — is dead-coded out of the binary entirely.
//
// Metric values are monotonic from process start; there is no reset.
// Consumers that want per-run deltas (the stream engines' Stats, the
// bench harness) snapshot before and after.
//
// # Naming scheme
//
// Metric names are dot-separated paths, lowercase, with the variable
// part (a codec spec, a stage name) as one path segment:
//
//	codec.<spec>.compress_calls      counter
//	codec.<spec>.compress_ns         histogram
//	stage.<name>.forward_ns          histogram
//	stream.writer.inflight_bytes     gauge
//	simd.<pkg>.<tier>_calls          counter
//
// The Prometheus encoder sanitizes names to its charset; the JSON
// snapshot and expvar forms keep them verbatim.
package telemetry

import (
	"os"
	"strings"
	"sync/atomic"
	"time"
)

// on is the runtime half of the enable switch; the compile-time half is
// the `compiled` constant (see enabled.go / disabled.go).
var on atomic.Bool

func init() {
	on.Store(compiled && !envDisabled(os.Getenv("ACC_TELEMETRY")))
	traceOn.Store(compiled && envSet(os.Getenv("ACC_TRACE")))
}

// envDisabled reports whether an ACC_TELEMETRY value asks for
// instrumentation off. Unset (or any other value) leaves it on.
func envDisabled(v string) bool {
	switch strings.ToLower(v) {
	case "0", "false", "off", "no":
		return true
	}
	return false
}

// envSet reports whether an opt-in variable (ACC_TRACE) is set to a
// truthy value.
func envSet(v string) bool {
	return v != "" && !envDisabled(v)
}

// Enabled reports whether instrumentation is recording. When the
// package is compiled out (-tags acc_notelemetry) this is a constant
// false and callers' instrumentation branches are eliminated.
func Enabled() bool { return compiled && on.Load() }

// SetEnabled turns recording on or off at runtime and returns the
// previous state. With the package compiled out it is a no-op.
func SetEnabled(v bool) bool {
	prev := on.Load()
	on.Store(v && compiled)
	return prev
}

// NowNanos returns the current wall clock in nanoseconds, or 0 when
// instrumentation is off — the zero start value makes the paired
// ObserveSince a no-op, so "start := NowNanos(); …; h.ObserveSince(start)"
// costs two branches when disabled.
func NowNanos() int64 {
	if !Enabled() {
		return 0
	}
	return time.Now().UnixNano()
}

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter is safe to record into (and records
// nothing), so optional wiring needs no nil checks at call sites.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Name returns the registry name the counter was created under.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil || !Enabled() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value (in-flight bytes, occupancy).
// Like Counter, nil receivers record nothing.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the registry name the gauge was created under.
func (g *Gauge) Name() string { return g.name }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil || !Enabled() {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil || !Enabled() {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
