// Package colorspace implements the RGB ↔ YCbCr conversion that
// standard JPEG applies before its DCT and that the paper deliberately
// omits "in an effort to keep compression fast and lightweight" (§3.2).
// It exists so the ablation benches can quantify that trade-off: YCbCr
// concentrates energy in the luma channel, letting chroma channels be
// chopped harder for the same perceived fidelity, at the cost of two
// extra elementwise passes per batch.
//
// The conversion is BT.601 full-range for pixel data in [0,1], with
// chroma centred at 0.5.
package colorspace

import (
	"fmt"

	"repro/internal/tensor"
)

// RGBToYCbCr converts a [BD, 3, n, n] batch in RGB order to YCbCr.
func RGBToYCbCr(x *tensor.Tensor) *tensor.Tensor {
	checkRGB(x, "RGBToYCbCr")
	out := tensor.New(x.Shape()...)
	forEachPixel(x, out, func(r, g, b float32) (float32, float32, float32) {
		y := 0.299*r + 0.587*g + 0.114*b
		cb := 0.5 - 0.168736*r - 0.331264*g + 0.5*b
		cr := 0.5 + 0.5*r - 0.418688*g - 0.081312*b
		return y, cb, cr
	})
	return out
}

// YCbCrToRGB inverts RGBToYCbCr.
func YCbCrToRGB(x *tensor.Tensor) *tensor.Tensor {
	checkRGB(x, "YCbCrToRGB")
	out := tensor.New(x.Shape()...)
	forEachPixel(x, out, func(y, cb, cr float32) (float32, float32, float32) {
		r := y + 1.402*(cr-0.5)
		g := y - 0.344136*(cb-0.5) - 0.714136*(cr-0.5)
		b := y + 1.772*(cb-0.5)
		return r, g, b
	})
	return out
}

func checkRGB(x *tensor.Tensor, op string) {
	if x.Dims() != 4 || x.Dim(1) != 3 {
		panic(fmt.Sprintf("colorspace: %s needs [BD,3,n,n], got %v", op, x.Shape()))
	}
}

// forEachPixel maps a per-pixel 3-channel function over the batch.
func forEachPixel(x, out *tensor.Tensor, f func(a, b, c float32) (float32, float32, float32)) {
	bd := x.Dim(0)
	plane := x.Dim(2) * x.Dim(3)
	xd, od := x.Data(), out.Data()
	tensor.ParallelFor(bd, func(s int) {
		base := s * 3 * plane
		c0 := xd[base : base+plane]
		c1 := xd[base+plane : base+2*plane]
		c2 := xd[base+2*plane : base+3*plane]
		o0 := od[base : base+plane]
		o1 := od[base+plane : base+2*plane]
		o2 := od[base+2*plane : base+3*plane]
		for i := 0; i < plane; i++ {
			o0[i], o1[i], o2[i] = f(c0[i], c1[i], c2[i])
		}
	})
}
