package colorspace

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

func TestRoundTrip(t *testing.T) {
	r := tensor.NewRNG(1)
	x := r.Uniform(0, 1, 2, 3, 8, 8)
	back := YCbCrToRGB(RGBToYCbCr(x))
	if d := back.MaxAbsDiff(x); d > 1e-5 {
		t.Fatalf("round-trip error %g", d)
	}
}

func TestGrayIsLumaOnly(t *testing.T) {
	// Equal RGB → Y = value, Cb = Cr = 0.5.
	x := tensor.Full(0.7, 1, 3, 2, 2)
	y := RGBToYCbCr(x)
	if math.Abs(float64(y.At4(0, 0, 0, 0))-0.7) > 1e-5 {
		t.Fatalf("Y = %g, want 0.7", y.At4(0, 0, 0, 0))
	}
	for _, c := range []int{1, 2} {
		if math.Abs(float64(y.At4(0, c, 0, 0))-0.5) > 1e-5 {
			t.Fatalf("chroma %d = %g, want 0.5", c, y.At4(0, c, 0, 0))
		}
	}
}

func TestPrimaries(t *testing.T) {
	// Pure red: Y = 0.299.
	x := tensor.New(1, 3, 1, 1)
	x.Set4(1, 0, 0, 0, 0)
	y := RGBToYCbCr(x)
	if math.Abs(float64(y.At4(0, 0, 0, 0))-0.299) > 1e-5 {
		t.Fatalf("red luma %g", y.At4(0, 0, 0, 0))
	}
	// Cr of pure red is 1.0 (0.5 + 0.5).
	if math.Abs(float64(y.At4(0, 2, 0, 0))-1.0) > 1e-5 {
		t.Fatalf("red Cr %g", y.At4(0, 2, 0, 0))
	}
}

func TestRejectsBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 1-channel input")
		}
	}()
	RGBToYCbCr(tensor.New(1, 1, 4, 4))
}

// Property: conversion is invertible for arbitrary (even out-of-gamut)
// values, since both maps are affine.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		x := r.Uniform(-0.5, 1.5, 1, 3, 4, 4)
		return YCbCrToRGB(RGBToYCbCr(x)).MaxAbsDiff(x) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestYCbCrConcentratesEnergyInLuma(t *testing.T) {
	// The rationale for JPEG's conversion: on natural-ish images the
	// luma channel carries more variance than either chroma channel, so
	// chroma compresses harder at equal fidelity.
	gen := datagen.NewClassify(3, 32, 10)
	imgs, _ := gen.Batch(16)
	y := RGBToYCbCr(imgs)
	variance := func(t4 *tensor.Tensor, c int) float64 {
		var sum, sq float64
		n := 0
		for b := 0; b < t4.Dim(0); b++ {
			plane := t4.Index(b).Index(c)
			for _, v := range plane.Data() {
				sum += float64(v)
				sq += float64(v) * float64(v)
				n++
			}
		}
		mean := sum / float64(n)
		return sq/float64(n) - mean*mean
	}
	luma := variance(y, 0)
	if luma <= variance(y, 1) || luma <= variance(y, 2) {
		t.Fatalf("luma variance %g not dominant (%g, %g)", luma, variance(y, 1), variance(y, 2))
	}
}

func TestChopInYCbCrSpace(t *testing.T) {
	// The ablation itself: chop harder on chroma (CF=2) than luma
	// (CF=6) via per-channel compressors, convert back, and compare
	// against uniform-CF RGB chop at a similar total ratio.
	gen := datagen.NewClassify(7, 32, 10)
	imgs, _ := gen.Batch(8)

	lumaC, err := core.NewCompressor(core.Config{ChopFactor: 6, Serialization: 1}, 32)
	if err != nil {
		t.Fatal(err)
	}
	chromaC, err := core.NewCompressor(core.Config{ChopFactor: 2, Serialization: 1}, 32)
	if err != nil {
		t.Fatal(err)
	}
	ycc := RGBToYCbCr(imgs)
	out := tensor.New(ycc.Shape()...)
	for c := 0; c < 3; c++ {
		comp := chromaC
		if c == 0 {
			comp = lumaC
		}
		channel := tensor.New(8, 1, 32, 32)
		for b := 0; b < 8; b++ {
			channel.SliceDim0(b, b+1).CopyFrom(ycc.Index(b).Index(c).Reshape(1, 1, 32, 32))
		}
		rt, err := comp.RoundTrip(channel)
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < 8; b++ {
			out.Index(b).Index(c).CopyFrom(rt.Index(b).Index(0))
		}
	}
	mixed := YCbCrToRGB(out)
	// Mixed-CF YCbCr ratio: channels at CR 64/36, 16, 16 → overall
	// 3/(36/64 + 1/16 + 1/16) ≈ 4.36, comparable to uniform CF=4 (CR 4).
	uniform, err := core.NewCompressor(core.Config{ChopFactor: 4, Serialization: 1}, 32)
	if err != nil {
		t.Fatal(err)
	}
	rgbOut, err := uniform.RoundTrip(imgs)
	if err != nil {
		t.Fatal(err)
	}
	pMixed := metrics.PSNR(imgs, mixed)
	pRGB := metrics.PSNR(imgs, rgbOut)
	// Both must be usable reconstructions; the exact winner depends on
	// the chroma content, which is the point of the ablation.
	if pMixed < 15 || pRGB < 15 {
		t.Fatalf("PSNR too low: YCbCr-mixed %g, RGB-uniform %g", pMixed, pRGB)
	}
	t.Logf("ablation: YCbCr mixed-CF PSNR %.2f dB vs RGB uniform-CF PSNR %.2f dB", pMixed, pRGB)
}
