package tensor

import (
	"fmt"
	"math"
)

func (t *Tensor) checkSame(o *Tensor, op string) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.shape, o.shape))
	}
}

// Add returns t + o elementwise.
func (t *Tensor) Add(o *Tensor) *Tensor {
	t.checkSame(o, "Add")
	out := New(t.shape...)
	for i := range t.data {
		out.data[i] = t.data[i] + o.data[i]
	}
	return out
}

// AddInPlace sets t += o.
func (t *Tensor) AddInPlace(o *Tensor) {
	t.checkSame(o, "AddInPlace")
	for i := range t.data {
		t.data[i] += o.data[i]
	}
}

// Sub returns t - o elementwise.
func (t *Tensor) Sub(o *Tensor) *Tensor {
	t.checkSame(o, "Sub")
	out := New(t.shape...)
	for i := range t.data {
		out.data[i] = t.data[i] - o.data[i]
	}
	return out
}

// Mul returns the elementwise (Hadamard) product.
func (t *Tensor) Mul(o *Tensor) *Tensor {
	t.checkSame(o, "Mul")
	out := New(t.shape...)
	for i := range t.data {
		out.data[i] = t.data[i] * o.data[i]
	}
	return out
}

// Scale returns t * s elementwise.
func (t *Tensor) Scale(s float32) *Tensor {
	out := New(t.shape...)
	for i := range t.data {
		out.data[i] = t.data[i] * s
	}
	return out
}

// ScaleInPlace sets t *= s.
func (t *Tensor) ScaleInPlace(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AddScalar returns t + s elementwise.
func (t *Tensor) AddScalar(s float32) *Tensor {
	out := New(t.shape...)
	for i := range t.data {
		out.data[i] = t.data[i] + s
	}
	return out
}

// Axpy sets t += alpha*o (the BLAS update used by the optimizers).
func (t *Tensor) Axpy(alpha float32, o *Tensor) {
	t.checkSame(o, "Axpy")
	for i := range t.data {
		t.data[i] += alpha * o.data[i]
	}
}

// Apply returns f mapped over every element.
func (t *Tensor) Apply(f func(float32) float32) *Tensor {
	out := New(t.shape...)
	for i, v := range t.data {
		out.data[i] = f(v)
	}
	return out
}

// ApplyInPlace maps f over every element in place.
func (t *Tensor) ApplyInPlace(f func(float32) float32) {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
}

// Sum returns the sum of all elements (float64 accumulator).
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Min returns the smallest element.
func (t *Tensor) Min() float32 {
	if len(t.data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest element.
func (t *Tensor) Max() float32 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// MaxAbs returns the largest absolute element value.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// Argmax returns the flat index of the largest element.
func (t *Tensor) Argmax() int {
	if len(t.data) == 0 {
		panic("tensor: Argmax of empty tensor")
	}
	best, bi := t.data[0], 0
	for i, v := range t.data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// Norm2 returns the Euclidean norm (float64 accumulator).
func (t *Tensor) Norm2() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// CountNonzero returns the number of elements with |v| > eps.
func (t *Tensor) CountNonzero(eps float32) int {
	n := 0
	for _, v := range t.data {
		if v > eps || v < -eps {
			n++
		}
	}
	return n
}

// Clamp limits every element to [lo, hi] in place.
func (t *Tensor) Clamp(lo, hi float32) {
	for i, v := range t.data {
		if v < lo {
			t.data[i] = lo
		} else if v > hi {
			t.data[i] = hi
		}
	}
}
