package tensor

import (
	"testing"
	"testing/quick"
)

func TestGatherLast(t *testing.T) {
	x := Arange(0, 1, 12).Reshape(3, 4)
	g := GatherLast(x, []int{3, 0})
	if g.Dim(1) != 2 {
		t.Fatalf("GatherLast shape %v", g.Shape())
	}
	want := []float32{3, 0, 7, 4, 11, 8}
	for i, w := range want {
		if g.Data()[i] != w {
			t.Fatalf("GatherLast data %v, want %v", g.Data(), want)
		}
	}
}

func TestGatherLastRepeatedIndices(t *testing.T) {
	x := Arange(0, 1, 4).Reshape(1, 4)
	g := GatherLast(x, []int{2, 2, 2})
	for _, v := range g.Data() {
		if v != 2 {
			t.Fatalf("repeated gather = %v", g.Data())
		}
	}
}

func TestScatterLastInvertsGather(t *testing.T) {
	x := Arange(1, 1, 8).Reshape(2, 4)
	idx := []int{1, 3}
	g := GatherLast(x, idx)
	s := ScatterLast(g, idx, 4)
	// Positions 1 and 3 restored, 0 and 2 zeroed.
	want := []float32{0, 2, 0, 4, 0, 6, 0, 8}
	for i, w := range want {
		if s.Data()[i] != w {
			t.Fatalf("ScatterLast data %v, want %v", s.Data(), want)
		}
	}
}

func TestGatherOutOfRangePanics(t *testing.T) {
	defer expectPanic(t, "gather index out of range")
	GatherLast(New(2, 3), []int{3})
}

func TestScatterWidthMismatchPanics(t *testing.T) {
	defer expectPanic(t, "scatter width mismatch")
	ScatterLast(New(2, 3), []int{0, 1}, 5)
}

func TestGatherScatterFlatRoundTrip(t *testing.T) {
	x := Arange(0, 1, 16).Reshape(4, 4)
	idx := []int{0, 5, 10, 15, 3}
	g := GatherFlat(x, idx)
	if g.Len() != 5 || g.At(1) != 5 {
		t.Fatalf("GatherFlat = %v", g.Data())
	}
	s := ScatterFlat(g, idx, 4, 4)
	for _, ix := range idx {
		if s.Data()[ix] != x.Data()[ix] {
			t.Fatalf("ScatterFlat lost index %d", ix)
		}
	}
	if s.CountNonzero(0) > len(idx) {
		t.Fatal("ScatterFlat wrote extra positions")
	}
}

// Property: for distinct indices, ScatterLast∘GatherLast restores exactly
// the gathered positions and zeroes the rest — the invariant the SG
// decompression path (torch.scatter then DCT decompress) relies on.
func TestGatherScatterProperty(t *testing.T) {
	f := func(seed uint64, rawRows, rawK uint8) bool {
		rows := int(rawRows%6) + 1
		k := int(rawK%12) + 2
		r := NewRNG(seed)
		x := r.Uniform(-4, 4, rows, k)
		// Random subset of distinct indices.
		perm := r.Perm(k)
		m := r.Intn(k) + 1
		idx := perm[:m]
		restored := ScatterLast(GatherLast(x, idx), idx, k)
		inIdx := make(map[int]bool, m)
		for _, ix := range idx {
			inIdx[ix] = true
		}
		for row := 0; row < rows; row++ {
			for j := 0; j < k; j++ {
				got := restored.At2(row, j)
				if inIdx[j] {
					if got != x.At2(row, j) {
						return false
					}
				} else if got != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
