// Package tensor implements a dense float32 N-dimensional tensor with the
// operations the DCT+Chop compressor and the neural-network training
// substrate require: parallel blocked matrix multiplication, batched
// matmul, gather/scatter, reshape/chunk/cat, elementwise arithmetic and
// reductions.
//
// Tensors are always contiguous and row-major. All device arithmetic in
// this repository is float32, matching the paper's portability choice of
// 32-bit floats across every accelerator (§3.1 "Arithmetic Precision
// Support"); float64 appears only in test reference implementations.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, contiguous, row-major float32 array with a shape.
// The zero value is an empty scalar-less tensor; use the constructors.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor of the given shape. It panics if any
// dimension is negative; a zero-dimension yields an empty tensor.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: cloneInts(shape), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	return &Tensor{shape: cloneInts(shape), data: data}
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Tensor {
	t := New(n, n)
	for i := 0; i < n; i++ {
		t.data[i*n+i] = 1
	}
	return t
}

// Arange returns a 1-D tensor [start, start+step, ...) of n elements.
func Arange(start, step float32, n int) *Tensor {
	t := New(n)
	v := start
	for i := 0; i < n; i++ {
		t.data[i] = v
		v += step
	}
	return t
}

func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

func cloneInts(s []int) []int {
	out := make([]int, len(s))
	copy(out, s)
	return out
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return cloneInts(t.shape) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i. Negative i counts from the end.
func (t *Tensor) Dim(i int) int {
	if i < 0 {
		i += len(t.shape)
	}
	return t.shape[i]
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. Mutating it mutates the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	data := make([]float32, len(t.data))
	copy(data, t.data)
	return &Tensor{shape: cloneInts(t.shape), data: data}
}

// CopyFrom copies src's data into t. Shapes must have equal element counts.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.data, src.data)
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// offset converts a multi-index to a flat offset.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.shape))
	}
	off := 0
	for i, v := range idx {
		if v < 0 || v >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + v
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

// At2 is the fast path for 2-D tensors.
func (t *Tensor) At2(i, j int) float32 { return t.data[i*t.shape[1]+j] }

// Set2 is the fast 2-D assignment path.
func (t *Tensor) Set2(v float32, i, j int) { t.data[i*t.shape[1]+j] = v }

// At4 is the fast path for 4-D (batch, channel, row, col) tensors.
func (t *Tensor) At4(b, c, i, j int) float32 {
	return t.data[((b*t.shape[1]+c)*t.shape[2]+i)*t.shape[3]+j]
}

// Set4 is the fast 4-D assignment path.
func (t *Tensor) Set4(v float32, b, c, i, j int) {
	t.data[((b*t.shape[1]+c)*t.shape[2]+i)*t.shape[3]+j] = v
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Equal reports exact element-wise equality (shapes must match).
func (t *Tensor) Equal(o *Tensor) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.data {
		if t.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether every element of t is within tol of o.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.data {
		if math.Abs(float64(t.data[i])-float64(o.data[i])) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference.
func (t *Tensor) MaxAbsDiff(o *Tensor) float64 {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: MaxAbsDiff shape mismatch %v vs %v", t.shape, o.shape))
	}
	max := 0.0
	for i := range t.data {
		d := math.Abs(float64(t.data[i]) - float64(o.data[i]))
		if d > max {
			max = d
		}
	}
	return max
}

// String renders small tensors in full and large ones as a summary.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 64 {
		fmt.Fprintf(&b, " %v", t.data)
	} else {
		fmt.Fprintf(&b, " [%g %g %g ... %g] (%d elements)",
			t.data[0], t.data[1], t.data[2], t.data[len(t.data)-1], len(t.data))
	}
	return b.String()
}

// SizeBytes returns the storage footprint in bytes (4 bytes per element),
// which is what the throughput harness charges for host-device transfer.
func (t *Tensor) SizeBytes() int { return 4 * len(t.data) }
