package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// matmulParallelFlops is the multiply-add count (m·n·k) above which
// MatMul fans work out across GOMAXPROCS workers. Gating on FLOPs rather
// than output size m·n keeps skinny products with a huge inner dimension
// k parallel (their work is real even though the output is small) while
// the 8×8 block transforms that dominate unit tests stay single-threaded,
// avoiding goroutine overhead swamping the arithmetic. The value is the
// cost of a 64³ product, the old 64×64-output threshold at its typical
// inner dimension.
const matmulParallelFlops = 64 * 64 * 64

// MatMul returns the matrix product A×B of two 2-D tensors. It uses a
// cache-blocked i-k-j loop and parallelizes across row bands when the
// output is large enough to amortize the fan-out.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires 2-D operands, got %v × %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.shape, b.shape))
	}
	c := New(m, n)
	matmulInto(c.data, a.data, b.data, m, k, n)
	return c
}

// MatMulInto computes dst = A×B, reusing dst's storage. dst must be m×n.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch dst %v = %v × %v", dst.shape, a.shape, b.shape))
	}
	matmulInto(dst.data, a.data, b.data, m, k, n)
}

func matmulInto(c, a, b []float32, m, k, n int) {
	if m*n*k >= matmulParallelFlops && m > 1 {
		matmulParallel(c, a, b, m, k, n)
		return
	}
	matmulRange(c, a, b, 0, m, k, n)
}

// matmulRange computes rows [lo,hi) of C = A×B with an i-k-j loop: the
// innermost loop walks both B and C rows contiguously, which keeps the
// float32 streams prefetch-friendly without explicit tiling.
func matmulRange(c, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		for x := range ci {
			ci[x] = 0
		}
		ai := a[i*k : (i+1)*k]
		for p, av := range ai {
			if av == 0 {
				continue // chop masks and block-diagonal transforms are sparse
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

func matmulParallel(c, a, b []float32, m, k, n int) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * m / workers
		hi := (w + 1) * m / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matmulRange(c, a, b, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMulNaive is the textbook triple loop, kept as the reference
// implementation for tests and the ablation bench.
func MatMulNaive(a, b *Tensor) *Tensor {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulNaive inner dimension mismatch %v × %v", a.shape, b.shape))
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.data[i*k+p] * b.data[p*n+j]
			}
			c.data[i*n+j] = s
		}
	}
	return c
}

// BatchedMatMul multiplies every trailing m×k matrix of a by b (k×n).
// a has shape [..., m, k]; the result has shape [..., m, n]. This is the
// exact operation the compressor issues: one shared LHS/RHS against a
// whole BD×C batch of image planes. Batches are processed in parallel.
func BatchedMatMul(a, b *Tensor) *Tensor {
	if len(a.shape) < 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: BatchedMatMul requires [...,m,k] × [k,n], got %v × %v", a.shape, b.shape))
	}
	m := a.shape[len(a.shape)-2]
	k := a.shape[len(a.shape)-1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: BatchedMatMul inner dimension mismatch %v × %v", a.shape, b.shape))
	}
	n := b.shape[1]
	batch := len(a.data) / (m * k)
	outShape := cloneInts(a.shape)
	outShape[len(outShape)-1] = n
	c := New(outShape...)
	parallelFor(batch, func(i int) {
		matmulRange(c.data[i*m*n:(i+1)*m*n], a.data[i*m*k:(i+1)*m*k], b.data, 0, m, k, n)
	})
	return c
}

// BatchedMatMulInto computes dst = BatchedMatMul(a, b), reusing dst's
// storage. dst must have a's shape with the last dimension replaced by
// b's column count. It allocates nothing, so steady-state compress loops
// can reuse one output across batches.
func BatchedMatMulInto(dst, a, b *Tensor) {
	if len(a.shape) < 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: BatchedMatMulInto requires [...,m,k] × [k,n], got %v × %v", a.shape, b.shape))
	}
	m := a.shape[len(a.shape)-2]
	k := a.shape[len(a.shape)-1]
	n := b.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: BatchedMatMulInto inner dimension mismatch %v × %v", a.shape, b.shape))
	}
	batch := len(a.data) / (m * k)
	if len(dst.shape) != len(a.shape) || dst.shape[len(dst.shape)-2] != m ||
		dst.shape[len(dst.shape)-1] != n || len(dst.data) != batch*m*n {
		panic(fmt.Sprintf("tensor: BatchedMatMulInto dst %v = %v × %v", dst.shape, a.shape, b.shape))
	}
	parallelFor(batch, func(i int) {
		matmulRange(dst.data[i*m*n:(i+1)*m*n], a.data[i*m*k:(i+1)*m*k], b.data, 0, m, k, n)
	})
}

// BatchedMatMulLeft multiplies b (m×k) by every trailing k×n matrix of a:
// out[i] = b × a[i]. Used for the left multiplication in Eq. 4/6.
func BatchedMatMulLeft(b, a *Tensor) *Tensor {
	if len(a.shape) < 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: BatchedMatMulLeft requires [m,k] × [...,k,n], got %v × %v", b.shape, a.shape))
	}
	k := a.shape[len(a.shape)-2]
	n := a.shape[len(a.shape)-1]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: BatchedMatMulLeft inner dimension mismatch %v × %v", b.shape, a.shape))
	}
	m := b.shape[0]
	batch := len(a.data) / (k * n)
	outShape := cloneInts(a.shape)
	outShape[len(outShape)-2] = m
	c := New(outShape...)
	parallelFor(batch, func(i int) {
		matmulRange(c.data[i*m*n:(i+1)*m*n], b.data, a.data[i*k*n:(i+1)*k*n], 0, m, k, n)
	})
	return c
}

// BatchedMatMulLeftInto computes dst = BatchedMatMulLeft(b, a), reusing
// dst's storage: dst[i] = b × a[i]. dst must have a's shape with the
// second-to-last dimension replaced by b's row count.
func BatchedMatMulLeftInto(dst, b, a *Tensor) {
	if len(a.shape) < 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: BatchedMatMulLeftInto requires [m,k] × [...,k,n], got %v × %v", b.shape, a.shape))
	}
	k := a.shape[len(a.shape)-2]
	n := a.shape[len(a.shape)-1]
	m := b.shape[0]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: BatchedMatMulLeftInto inner dimension mismatch %v × %v", b.shape, a.shape))
	}
	batch := len(a.data) / (k * n)
	if len(dst.shape) != len(a.shape) || dst.shape[len(dst.shape)-2] != m ||
		dst.shape[len(dst.shape)-1] != n || len(dst.data) != batch*m*n {
		panic(fmt.Sprintf("tensor: BatchedMatMulLeftInto dst %v = %v × %v", dst.shape, b.shape, a.shape))
	}
	parallelFor(batch, func(i int) {
		matmulRange(dst.data[i*m*n:(i+1)*m*n], b.data, a.data[i*k*n:(i+1)*k*n], 0, m, k, n)
	})
}

// parallelFor runs f(i) for i in [0,n), fanning out across GOMAXPROCS
// workers when n is large enough to justify it.
func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if n < 2 || workers < 2 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelFor exposes the worker-pool loop for other packages (the NN
// substrate uses it for per-sample convolution work).
func ParallelFor(n int, f func(i int)) { parallelFor(n, f) }
