package tensor

import (
	"testing"
	"testing/quick"
)

func TestInverseIdentity(t *testing.T) {
	inv, err := Inverse(Eye(5))
	if err != nil {
		t.Fatal(err)
	}
	if d := inv.MaxAbsDiff(Eye(5)); d > 1e-6 {
		t.Fatalf("I⁻¹ deviates from I by %g", d)
	}
}

func TestInverseKnown2x2(t *testing.T) {
	a := FromSlice([]float32{4, 7, 2, 6}, 2, 2) // det = 10
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	want := FromSlice([]float32{0.6, -0.7, -0.2, 0.4}, 2, 2)
	if d := inv.MaxAbsDiff(want); d > 1e-6 {
		t.Fatalf("2x2 inverse wrong by %g: %v", d, inv.Data())
	}
}

func TestInverseSingularFails(t *testing.T) {
	a := FromSlice([]float32{1, 2, 2, 4}, 2, 2)
	if _, err := Inverse(a); err == nil {
		t.Fatal("singular matrix must be rejected")
	}
	if _, err := Inverse(New(2, 3)); err == nil {
		t.Fatal("non-square must be rejected")
	}
}

func TestInverseNeedsPivoting(t *testing.T) {
	// Zero on the diagonal: only works with partial pivoting.
	a := FromSlice([]float32{0, 1, 1, 0}, 2, 2)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := MatMul(a, inv).MaxAbsDiff(Eye(2)); d > 1e-6 {
		t.Fatalf("pivoted inverse wrong by %g", d)
	}
}

// Property: A·A⁻¹ = I for random well-conditioned matrices.
func TestInverseProperty(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN%6) + 1
		r := NewRNG(seed)
		// Diagonally dominant ⇒ invertible and well-conditioned.
		a := r.Uniform(-1, 1, n, n)
		for i := 0; i < n; i++ {
			a.Set2(a.At2(i, i)+float32(n)+1, i, i)
		}
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return MatMul(a, inv).MaxAbsDiff(Eye(n)) < 1e-4 &&
			MatMul(inv, a).MaxAbsDiff(Eye(n)) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
