package tensor

import "math"

// RNG is a small, deterministic xorshift64* generator. Every experiment
// in this repository seeds its own RNG so that datasets, weight
// initializations and reported numbers are exactly reproducible run to
// run (math/rand's global state would couple experiments to each other).
type RNG struct {
	state uint64
	// spare holds the second Box-Muller normal deviate between calls.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed (0 is remapped so the
// xorshift state is never the fixed point).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform deviate in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform deviate in [0,1).
func (r *RNG) Float32() float32 { return float32(r.Float64()) }

// Intn returns a uniform integer in [0,n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal deviate (Box-Muller).
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Uniform fills a new tensor of the given shape with uniform deviates in
// [lo, hi).
func (r *RNG) Uniform(lo, hi float32, shape ...int) *Tensor {
	t := New(shape...)
	span := hi - lo
	for i := range t.data {
		t.data[i] = lo + span*r.Float32()
	}
	return t
}

// Normal fills a new tensor with normal deviates of the given mean and
// standard deviation.
func (r *RNG) Normal(mean, std float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = mean + std*float32(r.Norm())
	}
	return t
}
