package tensor

import (
	"math"
	"strings"
	"testing"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %g, want 0", i, v)
		}
	}
}

func TestShapeIsCopied(t *testing.T) {
	x := New(2, 3)
	s := x.Shape()
	s[0] = 99
	if x.Dim(0) != 2 {
		t.Fatal("Shape() must return a copy")
	}
}

func TestFromSliceSharesStorage(t *testing.T) {
	d := []float32{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[0] = 42
	if x.At2(0, 0) != 42 {
		t.Fatal("FromSlice must wrap the slice, not copy it")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer expectPanic(t, "FromSlice with wrong length")
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetMultiIndex(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7.5, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %g, want 7.5", got)
	}
	// Flat layout: ((1*3)+2)*4+3 = 23.
	if x.Data()[23] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestAt4MatchesAt(t *testing.T) {
	x := New(2, 3, 4, 5)
	r := NewRNG(1)
	for i := range x.Data() {
		x.Data()[i] = r.Float32()
	}
	for b := 0; b < 2; b++ {
		for c := 0; c < 3; c++ {
			for i := 0; i < 4; i++ {
				for j := 0; j < 5; j++ {
					if x.At4(b, c, i, j) != x.At(b, c, i, j) {
						t.Fatalf("At4(%d,%d,%d,%d) disagrees with At", b, c, i, j)
					}
				}
			}
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer expectPanic(t, "out-of-range At")
	x.At(2, 0)
}

func TestEye(t *testing.T) {
	id := Eye(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := float32(0)
			if i == j {
				want = 1
			}
			if id.At2(i, j) != want {
				t.Fatalf("Eye(3)[%d,%d] = %g", i, j, id.At2(i, j))
			}
		}
	}
}

func TestArange(t *testing.T) {
	x := Arange(1, 0.5, 4)
	want := []float32{1, 1.5, 2, 2.5}
	for i, w := range want {
		if x.Data()[i] != w {
			t.Fatalf("Arange[%d] = %g, want %g", i, x.Data()[i], w)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := Full(3, 2, 2)
	y := x.Clone()
	y.Set2(9, 0, 0)
	if x.At2(0, 0) != 3 {
		t.Fatal("Clone must not share storage")
	}
}

func TestEqualAndAllClose(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("identical tensors must be Equal")
	}
	b.Set2(4.0001, 1, 1)
	if a.Equal(b) {
		t.Fatal("perturbed tensor must not be Equal")
	}
	if !a.AllClose(b, 1e-3) {
		t.Fatal("perturbed tensor must be AllClose at 1e-3")
	}
	if a.AllClose(New(2, 3), 1e9) {
		t.Fatal("AllClose must reject shape mismatch")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{1.5, 1}, 2)
	if d := a.MaxAbsDiff(b); math.Abs(d-1) > 1e-9 {
		t.Fatalf("MaxAbsDiff = %g, want 1", d)
	}
}

func TestSizeBytes(t *testing.T) {
	// The throughput harness charges 4 bytes per float32 element.
	x := New(100, 3, 32, 32)
	if x.SizeBytes() != 4*100*3*32*32 {
		t.Fatalf("SizeBytes = %d", x.SizeBytes())
	}
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("expected panic: %s", what)
	}
}

func TestCopyFromZeroFill(t *testing.T) {
	a := Full(3, 2, 2)
	b := New(2, 2)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Fatal("CopyFrom must copy values")
	}
	b.Fill(7)
	if b.At2(0, 0) != 7 {
		t.Fatal("Fill failed")
	}
	b.Zero()
	if b.MaxAbs() != 0 {
		t.Fatal("Zero failed")
	}
	defer expectPanic(t, "CopyFrom size mismatch")
	b.CopyFrom(New(3))
}

func TestSet4(t *testing.T) {
	x := New(2, 2, 3, 3)
	x.Set4(9, 1, 0, 2, 1)
	if x.At(1, 0, 2, 1) != 9 {
		t.Fatal("Set4 wrote the wrong cell")
	}
}

func TestStringRendering(t *testing.T) {
	small := FromSlice([]float32{1, 2}, 2)
	if s := small.String(); !strings.Contains(s, "Tensor[2]") || !strings.Contains(s, "1") {
		t.Fatalf("small String = %q", s)
	}
	big := New(100)
	if s := big.String(); !strings.Contains(s, "100 elements") {
		t.Fatalf("big String = %q", s)
	}
}

func TestMeanEmptyAndIntnPanic(t *testing.T) {
	if New(0).Mean() != 0 {
		t.Fatal("empty Mean must be 0")
	}
	r := NewRNG(0) // zero seed remaps internally
	if r.Intn(5) < 0 {
		t.Fatal("Intn out of range")
	}
	defer expectPanic(t, "Intn(0)")
	r.Intn(0)
}
