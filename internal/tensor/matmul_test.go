package tensor

import (
	"testing"
	"testing/quick"
)

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul[%d] = %g, want %g", i, c.Data()[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := NewRNG(7)
	a := r.Uniform(-1, 1, 9, 9)
	c := MatMul(a, Eye(9))
	if !c.Equal(a) {
		t.Fatal("A×I must equal A exactly")
	}
	c = MatMul(Eye(9), a)
	if !c.Equal(a) {
		t.Fatal("I×A must equal A exactly")
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	r := NewRNG(11)
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {8, 8, 8}, {17, 31, 13}, {64, 48, 96}, {130, 70, 90}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := r.Uniform(-2, 2, m, k)
		b := r.Uniform(-2, 2, k, n)
		fast := MatMul(a, b)
		ref := MatMulNaive(a, b)
		if d := fast.MaxAbsDiff(ref); d > 1e-4 {
			t.Fatalf("MatMul(%dx%dx%d) deviates from naive by %g", m, k, n, d)
		}
	}
}

func TestMatMulParallelPathMatchesNaive(t *testing.T) {
	// Large enough to cross matmulParallelThreshold.
	r := NewRNG(13)
	a := r.Uniform(-1, 1, 80, 60)
	b := r.Uniform(-1, 1, 60, 80)
	if d := MatMul(a, b).MaxAbsDiff(MatMulNaive(a, b)); d > 1e-4 {
		t.Fatalf("parallel matmul deviates by %g", d)
	}
}

func TestMatMulDimensionMismatchPanics(t *testing.T) {
	defer expectPanic(t, "inner dim mismatch")
	MatMul(New(2, 3), New(4, 2))
}

func TestMatMulInto(t *testing.T) {
	r := NewRNG(17)
	a := r.Uniform(-1, 1, 5, 6)
	b := r.Uniform(-1, 1, 6, 4)
	dst := Full(99, 5, 4) // stale contents must be overwritten
	MatMulInto(dst, a, b)
	if d := dst.MaxAbsDiff(MatMul(a, b)); d != 0 {
		t.Fatalf("MatMulInto deviates by %g", d)
	}
}

func TestBatchedMatMul(t *testing.T) {
	r := NewRNG(19)
	a := r.Uniform(-1, 1, 4, 3, 5, 6) // [BD=4, C=3, 5, 6]
	b := r.Uniform(-1, 1, 6, 7)
	c := BatchedMatMul(a, b)
	wantShape := []int{4, 3, 5, 7}
	for i, d := range c.Shape() {
		if d != wantShape[i] {
			t.Fatalf("BatchedMatMul shape %v, want %v", c.Shape(), wantShape)
		}
	}
	// Spot-check every plane against the 2-D product.
	for bd := 0; bd < 4; bd++ {
		for ch := 0; ch < 3; ch++ {
			plane := a.Index(bd).Index(ch)
			want := MatMul(plane, b)
			got := c.Index(bd).Index(ch)
			if d := got.MaxAbsDiff(want); d > 1e-5 {
				t.Fatalf("batch (%d,%d) deviates by %g", bd, ch, d)
			}
		}
	}
}

func TestBatchedMatMulLeft(t *testing.T) {
	r := NewRNG(23)
	a := r.Uniform(-1, 1, 2, 3, 6, 5)
	b := r.Uniform(-1, 1, 4, 6)
	c := BatchedMatMulLeft(b, a)
	if c.Dim(-2) != 4 || c.Dim(-1) != 5 {
		t.Fatalf("BatchedMatMulLeft shape %v", c.Shape())
	}
	for bd := 0; bd < 2; bd++ {
		for ch := 0; ch < 3; ch++ {
			want := MatMul(b, a.Index(bd).Index(ch))
			got := c.Index(bd).Index(ch)
			if d := got.MaxAbsDiff(want); d > 1e-5 {
				t.Fatalf("batch (%d,%d) deviates by %g", bd, ch, d)
			}
		}
	}
}

// Property: (A×B)ᵀ = Bᵀ×Aᵀ — exercises MatMul and Transpose together on
// randomized shapes and contents.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed uint64, rawM, rawK, rawN uint8) bool {
		m := int(rawM%12) + 1
		k := int(rawK%12) + 1
		n := int(rawN%12) + 1
		r := NewRNG(seed)
		a := r.Uniform(-3, 3, m, k)
		b := r.Uniform(-3, 3, k, n)
		lhs := MatMul(a, b).Transpose()
		rhs := MatMul(b.Transpose(), a.Transpose())
		return lhs.MaxAbsDiff(rhs) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over addition: A×(B+C) = A×B + A×C.
func TestMatMulDistributesProperty(t *testing.T) {
	f := func(seed uint64, rawM, rawK, rawN uint8) bool {
		m := int(rawM%10) + 1
		k := int(rawK%10) + 1
		n := int(rawN%10) + 1
		r := NewRNG(seed)
		a := r.Uniform(-2, 2, m, k)
		b := r.Uniform(-2, 2, k, n)
		c := r.Uniform(-2, 2, k, n)
		lhs := MatMul(a, b.Add(c))
		rhs := MatMul(a, b).Add(MatMul(a, c))
		return lhs.MaxAbsDiff(rhs) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 3, 7, 100, 1000} {
		hits := make([]int32, n)
		ParallelFor(n, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}
