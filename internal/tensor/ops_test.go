package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestElementwiseArithmetic(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{10, 20, 30, 40}, 2, 2)
	if got := a.Add(b).Data()[3]; got != 44 {
		t.Fatalf("Add = %g", got)
	}
	if got := b.Sub(a).Data()[0]; got != 9 {
		t.Fatalf("Sub = %g", got)
	}
	if got := a.Mul(b).Data()[1]; got != 40 {
		t.Fatalf("Mul = %g", got)
	}
	if got := a.Scale(2).Data()[2]; got != 6 {
		t.Fatalf("Scale = %g", got)
	}
	if got := a.AddScalar(-1).Data()[0]; got != 0 {
		t.Fatalf("AddScalar = %g", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{3, 5}, 2)
	a.AddInPlace(b)
	if a.Data()[1] != 7 {
		t.Fatalf("AddInPlace = %v", a.Data())
	}
	a.ScaleInPlace(0.5)
	if a.Data()[0] != 2 {
		t.Fatalf("ScaleInPlace = %v", a.Data())
	}
	a.Axpy(2, b)
	if a.Data()[1] != 3.5+10 {
		t.Fatalf("Axpy = %v", a.Data())
	}
}

func TestApply(t *testing.T) {
	a := FromSlice([]float32{-1, 2, -3}, 3)
	abs := a.Apply(func(v float32) float32 {
		if v < 0 {
			return -v
		}
		return v
	})
	if abs.Data()[0] != 1 || abs.Data()[2] != 3 {
		t.Fatalf("Apply = %v", abs.Data())
	}
	a.ApplyInPlace(func(v float32) float32 { return v * v })
	if a.Data()[2] != 9 {
		t.Fatalf("ApplyInPlace = %v", a.Data())
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float32{-3, 1, 4, -1}, 4)
	if a.Sum() != 1 {
		t.Fatalf("Sum = %g", a.Sum())
	}
	if a.Mean() != 0.25 {
		t.Fatalf("Mean = %g", a.Mean())
	}
	if a.Min() != -3 || a.Max() != 4 || a.MaxAbs() != 4 {
		t.Fatal("Min/Max/MaxAbs wrong")
	}
	if a.Argmax() != 2 {
		t.Fatalf("Argmax = %d", a.Argmax())
	}
	if got := a.Norm2(); math.Abs(got-math.Sqrt(9+1+16+1)) > 1e-9 {
		t.Fatalf("Norm2 = %g", got)
	}
	if a.CountNonzero(1.5) != 2 {
		t.Fatalf("CountNonzero = %d", a.CountNonzero(1.5))
	}
}

func TestClamp(t *testing.T) {
	a := FromSlice([]float32{-2, 0.5, 3}, 3)
	a.Clamp(-1, 1)
	want := []float32{-1, 0.5, 1}
	for i, w := range want {
		if a.Data()[i] != w {
			t.Fatalf("Clamp = %v", a.Data())
		}
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "Add shape mismatch")
	New(2, 2).Add(New(4))
}

// Property: Add is commutative and Sub is its inverse.
func TestAddSubProperty(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN%32) + 1
		r := NewRNG(seed)
		a := r.Uniform(-10, 10, n)
		b := r.Uniform(-10, 10, n)
		if !a.Add(b).Equal(b.Add(a)) {
			return false
		}
		return a.Add(b).Sub(b).AllClose(a, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42).Uniform(0, 1, 100)
	b := NewRNG(42).Uniform(0, 1, 100)
	if !a.Equal(b) {
		t.Fatal("same seed must reproduce the same stream")
	}
	c := NewRNG(43).Uniform(0, 1, 100)
	if a.Equal(c) {
		t.Fatal("different seeds must differ")
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(7)
	x := r.Normal(2, 3, 20000)
	mean := x.Mean()
	if math.Abs(mean-2) > 0.1 {
		t.Fatalf("Normal mean = %g, want ≈2", mean)
	}
	var varsum float64
	for _, v := range x.Data() {
		d := float64(v) - mean
		varsum += d * d
	}
	std := math.Sqrt(varsum / float64(x.Len()))
	if math.Abs(std-3) > 0.15 {
		t.Fatalf("Normal std = %g, want ≈3", std)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGUniformRange(t *testing.T) {
	r := NewRNG(1)
	x := r.Uniform(-3, 5, 1000)
	if x.Min() < -3 || x.Max() >= 5 {
		t.Fatalf("Uniform out of range: [%g, %g]", x.Min(), x.Max())
	}
}
