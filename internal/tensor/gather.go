package tensor

import "fmt"

// GatherLast collects elements along the last dimension: for every
// leading index b, out[b][j] = t[b][indices[j]]. This mirrors the
// torch.gather call of the Graphcore SG optimization (§3.5.2), where
// precomputed upper-left-triangle indices pull the retained DCT
// coefficients out of each chopped block row.
//
// t has shape [..., k]; the result has shape [..., len(indices)].
func GatherLast(t *Tensor, indices []int) *Tensor {
	if len(t.shape) == 0 {
		panic("tensor: GatherLast on 0-d tensor")
	}
	k := t.shape[len(t.shape)-1]
	for _, ix := range indices {
		if ix < 0 || ix >= k {
			panic(fmt.Sprintf("tensor: GatherLast index %d out of range [0,%d)", ix, k))
		}
	}
	rows := len(t.data) / k
	outShape := cloneInts(t.shape)
	outShape[len(outShape)-1] = len(indices)
	out := New(outShape...)
	for r := 0; r < rows; r++ {
		src := t.data[r*k : (r+1)*k]
		dst := out.data[r*len(indices) : (r+1)*len(indices)]
		for j, ix := range indices {
			dst[j] = src[ix]
		}
	}
	return out
}

// ScatterLast is the inverse of GatherLast: it places t's last-dimension
// elements at the given indices of a zero-initialized output with last
// dimension k (torch.scatter in the paper's decompression path).
//
// t has shape [..., len(indices)]; the result has shape [..., k].
func ScatterLast(t *Tensor, indices []int, k int) *Tensor {
	if len(t.shape) == 0 {
		panic("tensor: ScatterLast on 0-d tensor")
	}
	w := t.shape[len(t.shape)-1]
	if w != len(indices) {
		panic(fmt.Sprintf("tensor: ScatterLast last dim %d != len(indices) %d", w, len(indices)))
	}
	for _, ix := range indices {
		if ix < 0 || ix >= k {
			panic(fmt.Sprintf("tensor: ScatterLast index %d out of range [0,%d)", ix, k))
		}
	}
	rows := len(t.data) / w
	outShape := cloneInts(t.shape)
	outShape[len(outShape)-1] = k
	out := New(outShape...)
	for r := 0; r < rows; r++ {
		src := t.data[r*w : (r+1)*w]
		dst := out.data[r*k : (r+1)*k]
		for j, ix := range indices {
			dst[ix] = src[j]
		}
	}
	return out
}

// GatherFlat collects t's elements at the given flat offsets into a 1-D
// tensor. The SG variant uses it to pack a whole plane's triangle values
// into one contiguous payload.
func GatherFlat(t *Tensor, indices []int) *Tensor {
	out := New(len(indices))
	for j, ix := range indices {
		if ix < 0 || ix >= len(t.data) {
			panic(fmt.Sprintf("tensor: GatherFlat index %d out of range [0,%d)", ix, len(t.data)))
		}
		out.data[j] = t.data[ix]
	}
	return out
}

// ScatterFlat places a 1-D tensor's values at the given flat offsets of a
// zero-initialized tensor of the given shape.
func ScatterFlat(t *Tensor, indices []int, shape ...int) *Tensor {
	if len(t.shape) != 1 || t.shape[0] != len(indices) {
		panic(fmt.Sprintf("tensor: ScatterFlat needs 1-D input of %d values, got %v", len(indices), t.shape))
	}
	out := New(shape...)
	for j, ix := range indices {
		if ix < 0 || ix >= len(out.data) {
			panic(fmt.Sprintf("tensor: ScatterFlat index %d out of range [0,%d)", ix, len(out.data)))
		}
		out.data[ix] = t.data[j]
	}
	return out
}
