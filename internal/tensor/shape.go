package tensor

import "fmt"

// Reshape returns a tensor sharing t's storage with a new shape. One
// dimension may be -1, in which case it is inferred. Element counts must
// match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = cloneInts(shape)
	infer := -1
	known := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic(fmt.Sprintf("tensor: Reshape with multiple -1 dims %v", shape))
			}
			infer = i
		} else {
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || len(t.data)%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer Reshape %v from %v", shape, t.shape))
		}
		shape[infer] = len(t.data) / known
		known *= shape[infer]
	}
	if known != len(t.data) {
		panic(fmt.Sprintf("tensor: Reshape %v incompatible with %v", shape, t.shape))
	}
	return &Tensor{shape: shape, data: t.data}
}

// Transpose returns the transpose of a 2-D tensor (materialized).
func (t *Tensor) Transpose() *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Transpose requires 2-D, got %v", t.shape))
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		for j, v := range row {
			out.data[j*m+i] = v
		}
	}
	return out
}

// Row returns row i of a 2-D tensor as a view (shares storage).
func (t *Tensor) Row(i int) *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Row requires 2-D, got %v", t.shape))
	}
	n := t.shape[1]
	return &Tensor{shape: []int{n}, data: t.data[i*n : (i+1)*n]}
}

// SliceDim0 returns the sub-tensor t[lo:hi] along dimension 0 as a view.
func (t *Tensor) SliceDim0(lo, hi int) *Tensor {
	if len(t.shape) == 0 {
		panic("tensor: SliceDim0 on 0-d tensor")
	}
	if lo < 0 || hi > t.shape[0] || lo > hi {
		panic(fmt.Sprintf("tensor: SliceDim0 [%d:%d] out of range for %v", lo, hi, t.shape))
	}
	inner := 1
	for _, d := range t.shape[1:] {
		inner *= d
	}
	shape := cloneInts(t.shape)
	shape[0] = hi - lo
	return &Tensor{shape: shape, data: t.data[lo*inner : hi*inner]}
}

// Index returns the sub-tensor t[i] along dimension 0 as a view.
func (t *Tensor) Index(i int) *Tensor {
	sub := t.SliceDim0(i, i+1)
	return sub.Reshape(sub.shape[1:]...)
}

// Cat concatenates tensors along dimension 0. All trailing dimensions
// must match.
func Cat(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Cat of nothing")
	}
	first := ts[0]
	total := 0
	for _, t := range ts {
		if len(t.shape) != len(first.shape) {
			panic("tensor: Cat rank mismatch")
		}
		for d := 1; d < len(first.shape); d++ {
			if t.shape[d] != first.shape[d] {
				panic(fmt.Sprintf("tensor: Cat trailing-shape mismatch %v vs %v", t.shape, first.shape))
			}
		}
		total += t.shape[0]
	}
	shape := cloneInts(first.shape)
	shape[0] = total
	out := New(shape...)
	off := 0
	for _, t := range ts {
		copy(out.data[off:], t.data)
		off += len(t.data)
	}
	return out
}

// SpatialChunk splits a [BD, C, n, n] tensor into s×s spatial chunks of
// shape [BD, C, n/s, n/s], returned in row-major chunk order. This is the
// subdivision used by partially-serialized compression (Fig. 5): chunk
// (r,c) holds rows r*n/s..(r+1)*n/s and the matching column band of every
// sample and channel.
func SpatialChunk(t *Tensor, s int) []*Tensor {
	if len(t.shape) != 4 {
		panic(fmt.Sprintf("tensor: SpatialChunk requires 4-D [BD,C,n,n], got %v", t.shape))
	}
	bd, c, h, w := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	if s <= 0 || h%s != 0 || w%s != 0 {
		panic(fmt.Sprintf("tensor: SpatialChunk factor %d does not divide %dx%d", s, h, w))
	}
	ch, cw := h/s, w/s
	chunks := make([]*Tensor, 0, s*s)
	for r := 0; r < s; r++ {
		for q := 0; q < s; q++ {
			chunk := New(bd, c, ch, cw)
			for b := 0; b < bd; b++ {
				for k := 0; k < c; k++ {
					for i := 0; i < ch; i++ {
						srcOff := ((b*t.shape[1]+k)*h+(r*ch+i))*w + q*cw
						dstOff := ((b*c+k)*ch + i) * cw
						copy(chunk.data[dstOff:dstOff+cw], t.data[srcOff:srcOff+cw])
					}
				}
			}
			chunks = append(chunks, chunk)
		}
	}
	return chunks
}

// SpatialUnchunk reverses SpatialChunk: it reassembles s×s chunks of
// shape [BD, C, n/s, n/s] into one [BD, C, n, n] tensor.
func SpatialUnchunk(chunks []*Tensor, s int) *Tensor {
	if len(chunks) != s*s {
		panic(fmt.Sprintf("tensor: SpatialUnchunk expects %d chunks, got %d", s*s, len(chunks)))
	}
	first := chunks[0]
	if len(first.shape) != 4 {
		panic(fmt.Sprintf("tensor: SpatialUnchunk requires 4-D chunks, got %v", first.shape))
	}
	bd, c, ch, cw := first.shape[0], first.shape[1], first.shape[2], first.shape[3]
	out := New(bd, c, ch*s, cw*s)
	h, w := ch*s, cw*s
	for idx, chunk := range chunks {
		if !chunk.SameShape(first) {
			panic("tensor: SpatialUnchunk chunk shape mismatch")
		}
		r, q := idx/s, idx%s
		for b := 0; b < bd; b++ {
			for k := 0; k < c; k++ {
				for i := 0; i < ch; i++ {
					dstOff := ((b*c+k)*h+(r*ch+i))*w + q*cw
					srcOff := ((b*c+k)*ch + i) * cw
					copy(out.data[dstOff:dstOff+cw], chunk.data[srcOff:srcOff+cw])
				}
			}
		}
	}
	return out
}

// Pad2D zero-pads the last two dimensions of a 4-D tensor by p on every
// side.
func Pad2D(t *Tensor, p int) *Tensor {
	if len(t.shape) != 4 {
		panic(fmt.Sprintf("tensor: Pad2D requires 4-D, got %v", t.shape))
	}
	if p == 0 {
		return t.Clone()
	}
	bd, c, h, w := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	out := New(bd, c, h+2*p, w+2*p)
	ow := w + 2*p
	for b := 0; b < bd; b++ {
		for k := 0; k < c; k++ {
			for i := 0; i < h; i++ {
				srcOff := ((b*c+k)*h + i) * w
				dstOff := ((b*c+k)*(h+2*p)+(i+p))*ow + p
				copy(out.data[dstOff:dstOff+w], t.data[srcOff:srcOff+w])
			}
		}
	}
	return out
}
