package tensor

import (
	"testing"
	"testing/quick"
)

func TestReshapeSharesStorage(t *testing.T) {
	x := Arange(0, 1, 12).Reshape(3, 4)
	y := x.Reshape(4, 3)
	y.Set2(99, 0, 0)
	if x.At2(0, 0) != 99 {
		t.Fatal("Reshape must be a view")
	}
}

func TestReshapeInfer(t *testing.T) {
	x := New(2, 3, 4)
	y := x.Reshape(6, -1)
	if y.Dim(1) != 4 {
		t.Fatalf("inferred dim = %d, want 4", y.Dim(1))
	}
}

func TestReshapeBadPanics(t *testing.T) {
	defer expectPanic(t, "incompatible reshape")
	New(2, 3).Reshape(4, 2)
}

func TestTransposeRoundTrip(t *testing.T) {
	r := NewRNG(3)
	x := r.Uniform(-1, 1, 5, 9)
	y := x.Transpose().Transpose()
	if !x.Equal(y) {
		t.Fatal("double transpose must be identity")
	}
	if x.Transpose().At2(3, 2) != x.At2(2, 3) {
		t.Fatal("transpose element mapping wrong")
	}
}

func TestRowIsView(t *testing.T) {
	x := Arange(0, 1, 6).Reshape(2, 3)
	row := x.Row(1)
	if row.At(0) != 3 {
		t.Fatalf("Row(1)[0] = %g, want 3", row.At(0))
	}
	row.Set(42, 0)
	if x.At2(1, 0) != 42 {
		t.Fatal("Row must be a view")
	}
}

func TestSliceDim0AndIndex(t *testing.T) {
	x := Arange(0, 1, 24).Reshape(4, 3, 2)
	s := x.SliceDim0(1, 3)
	if s.Dim(0) != 2 || s.At(0, 0, 0) != 6 {
		t.Fatalf("SliceDim0 wrong: shape %v first %g", s.Shape(), s.At(0, 0, 0))
	}
	ix := x.Index(2)
	if ix.Dims() != 2 || ix.At2(0, 0) != 12 {
		t.Fatalf("Index wrong: shape %v first %g", ix.Shape(), ix.At2(0, 0))
	}
}

func TestCat(t *testing.T) {
	a := Full(1, 2, 3)
	b := Full(2, 1, 3)
	c := Cat(a, b)
	if c.Dim(0) != 3 {
		t.Fatalf("Cat dim0 = %d", c.Dim(0))
	}
	if c.At2(2, 0) != 2 || c.At2(1, 2) != 1 {
		t.Fatal("Cat content wrong")
	}
}

func TestCatShapeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "Cat trailing mismatch")
	Cat(New(2, 3), New(2, 4))
}

func TestSpatialChunkRoundTrip(t *testing.T) {
	r := NewRNG(5)
	x := r.Uniform(-1, 1, 2, 3, 8, 8)
	for _, s := range []int{1, 2, 4} {
		chunks := SpatialChunk(x, s)
		if len(chunks) != s*s {
			t.Fatalf("s=%d: got %d chunks", s, len(chunks))
		}
		back := SpatialUnchunk(chunks, s)
		if !back.Equal(x) {
			t.Fatalf("s=%d: chunk/unchunk is not identity", s)
		}
	}
}

func TestSpatialChunkContent(t *testing.T) {
	// 1 sample, 1 channel, 4×4; s=2 → chunk order must be row-major:
	// top-left, top-right, bottom-left, bottom-right.
	x := Arange(0, 1, 16).Reshape(1, 1, 4, 4)
	chunks := SpatialChunk(x, 2)
	wantFirst := [][]float32{
		{0, 1, 4, 5},     // top-left
		{2, 3, 6, 7},     // top-right
		{8, 9, 12, 13},   // bottom-left
		{10, 11, 14, 15}, // bottom-right
	}
	for ci, want := range wantFirst {
		for i, w := range want {
			if chunks[ci].Data()[i] != w {
				t.Fatalf("chunk %d element %d = %g, want %g", ci, i, chunks[ci].Data()[i], w)
			}
		}
	}
}

func TestSpatialChunkBadFactorPanics(t *testing.T) {
	defer expectPanic(t, "non-dividing chunk factor")
	SpatialChunk(New(1, 1, 6, 6), 4)
}

// Property: SpatialUnchunk(SpatialChunk(x,s),s) == x for random shapes.
func TestSpatialChunkProperty(t *testing.T) {
	f := func(seed uint64, rawBD, rawC uint8, rawS uint8) bool {
		bd := int(rawBD%4) + 1
		c := int(rawC%3) + 1
		s := []int{1, 2, 4}[rawS%3]
		n := s * (int(seed%4) + 1) * 2
		r := NewRNG(seed)
		x := r.Uniform(-5, 5, bd, c, n, n)
		return SpatialUnchunk(SpatialChunk(x, s), s).Equal(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPad2D(t *testing.T) {
	x := Full(3, 1, 1, 2, 2)
	p := Pad2D(x, 1)
	if p.Dim(2) != 4 || p.Dim(3) != 4 {
		t.Fatalf("Pad2D shape %v", p.Shape())
	}
	if p.At4(0, 0, 0, 0) != 0 || p.At4(0, 0, 1, 1) != 3 {
		t.Fatal("Pad2D content wrong")
	}
	if s := p.Sum(); s != 4*3 {
		t.Fatalf("Pad2D sum = %g, want 12", s)
	}
}
