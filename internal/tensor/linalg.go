package tensor

import (
	"fmt"
	"math"
)

// Inverse returns the inverse of a square 2-D tensor, computed by
// Gauss-Jordan elimination with partial pivoting in float64. It exists
// for the non-orthogonal block transforms (the ZFP transform's inverse
// is not its transpose, unlike DCT-II's). Singular matrices return an
// error.
func Inverse(t *Tensor) (*Tensor, error) {
	if len(t.shape) != 2 || t.shape[0] != t.shape[1] {
		return nil, fmt.Errorf("tensor: Inverse requires a square matrix, got %v", t.shape)
	}
	n := t.shape[0]
	// Augmented [A | I] in float64.
	a := make([][]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, 2*n)
		for j := 0; j < n; j++ {
			a[i][j] = float64(t.data[i*n+j])
		}
		a[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in the column.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("tensor: Inverse of singular matrix (pivot %d)", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv := 1 / a[col][col]
		for j := 0; j < 2*n; j++ {
			a[col][j] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			if f == 0 {
				continue
			}
			for j := 0; j < 2*n; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	out := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.data[i*n+j] = float32(a[i][n+j])
		}
	}
	return out, nil
}
