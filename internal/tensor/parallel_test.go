package tensor

import (
	"sync/atomic"
	"testing"
)

func TestBatchedMatMulInto(t *testing.T) {
	r := NewRNG(29)
	a := r.Uniform(-1, 1, 4, 3, 5, 6)
	b := r.Uniform(-1, 1, 6, 7)
	want := BatchedMatMul(a, b)
	dst := Full(99, 4, 3, 5, 7) // stale contents must be overwritten
	BatchedMatMulInto(dst, a, b)
	if d := dst.MaxAbsDiff(want); d != 0 {
		t.Fatalf("BatchedMatMulInto deviates from BatchedMatMul by %g", d)
	}
}

func TestBatchedMatMulLeftInto(t *testing.T) {
	r := NewRNG(31)
	a := r.Uniform(-1, 1, 2, 3, 6, 5)
	b := r.Uniform(-1, 1, 4, 6)
	want := BatchedMatMulLeft(b, a)
	dst := Full(-7, 2, 3, 4, 5)
	BatchedMatMulLeftInto(dst, b, a)
	if d := dst.MaxAbsDiff(want); d != 0 {
		t.Fatalf("BatchedMatMulLeftInto deviates from BatchedMatMulLeft by %g", d)
	}
}

func TestBatchedMatMulIntoShapeMismatchPanics(t *testing.T) {
	a := New(2, 5, 6)
	b := New(6, 7)
	defer expectPanic(t, "dst shape mismatch")
	BatchedMatMulInto(New(2, 5, 6), a, b) // last dim must be 7
}

func TestBatchedMatMulLeftIntoShapeMismatchPanics(t *testing.T) {
	a := New(2, 6, 5)
	b := New(4, 6)
	defer expectPanic(t, "dst shape mismatch")
	BatchedMatMulLeftInto(New(2, 3, 5), b, a) // second-to-last dim must be 4
}

// TestMatMulFlopGate pins the parallel-gate fix: the decision must track
// m·n·k, not output size m·n. A skinny product with a huge inner
// dimension does real work and must still match the reference, and a
// wide output with a tiny inner dimension must stay correct on the
// serial path. Both paths land in matmulRange, so this is a correctness
// check at the exact boundary sizes the gate separates.
func TestMatMulFlopGate(t *testing.T) {
	r := NewRNG(37)
	cases := [][3]int{
		{2, 70000, 2},  // m·n = 4 (tiny output), m·n·k ≫ gate: parallel path
		{256, 1, 256},  // m·n = 65536 (old gate fired), m·n·k < gate: serial
		{64, 64, 64},   // exactly at the gate
		{64, 63, 64},   // one FLOP-row under the gate
		{1, 70000, 64}, // big work but m=1: single row bands, serial
	}
	for _, dims := range cases {
		m, k, n := dims[0], dims[1], dims[2]
		a := r.Uniform(-1, 1, m, k)
		b := r.Uniform(-1, 1, k, n)
		got := MatMul(a, b)
		ref := MatMulNaive(a, b)
		// k up to 70000 accumulates real float32 rounding; scale the
		// tolerance with the summation length.
		tol := 1e-4 * float64(k)
		if d := got.MaxAbsDiff(ref); d > tol {
			t.Fatalf("MatMul(%dx%dx%d) deviates from naive by %g (tol %g)", m, k, n, d, tol)
		}
	}
}

// countJob counts RunPlane invocations per index.
type countJob struct {
	hits []int32
}

func (j *countJob) RunPlane(p int) { atomic.AddInt32(&j.hits[p], 1) }

func TestParallelPlanesCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 100, 1000} {
		j := &countJob{hits: make([]int32, n)}
		ParallelPlanes(n, j)
		for i, h := range j.hits {
			if h != 1 {
				t.Fatalf("n=%d: plane %d visited %d times", n, i, h)
			}
		}
	}
}

// reentrantJob calls ParallelPlanes from inside RunPlane. The outer
// round holds the pool, so the inner call must fall back to serial
// execution instead of deadlocking.
type reentrantJob struct {
	inner *countJob
}

func (j *reentrantJob) RunPlane(p int) {
	if p == 0 {
		ParallelPlanes(len(j.inner.hits), j.inner)
	}
}

func TestParallelPlanesBusyPoolFallsBackToSerial(t *testing.T) {
	inner := &countJob{hits: make([]int32, 8)}
	ParallelPlanes(4, &reentrantJob{inner: inner})
	for i, h := range inner.hits {
		if h != 1 {
			t.Fatalf("inner plane %d visited %d times", i, h)
		}
	}
}

// TestParallelPlanesAllocs pins the dispatch contract: handing a round
// to the persistent pool must not allocate. The job is a pooled struct
// pointer, so the interface conversion doesn't allocate either.
func TestParallelPlanesAllocs(t *testing.T) {
	j := &countJob{hits: make([]int32, 64)}
	ParallelPlanes(64, j) // warm up: spawn workers
	allocs := testing.AllocsPerRun(20, func() {
		ParallelPlanes(64, j)
	})
	if allocs != 0 {
		t.Fatalf("ParallelPlanes allocates %.1f objects per round, want 0", allocs)
	}
}
