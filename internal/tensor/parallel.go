package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// PlaneJob is a unit of batched per-plane work for ParallelPlanes. It is
// an interface rather than a func so callers can pass a pooled struct
// pointer: interface conversion of a pointer does not allocate, which is
// what keeps the steady-state compress/decompress path allocation-free.
type PlaneJob interface {
	// RunPlane processes plane p. Implementations must be safe to call
	// concurrently for distinct p and must not call ParallelPlanes
	// (directly or transitively).
	RunPlane(p int)
}

// planePool is the process-wide persistent worker pool behind
// ParallelPlanes. Workers are spawned once, on first parallel use, and
// live for the life of the process; a round hands them work through
// plain field writes plus a token channel, so dispatching a round
// performs no heap allocation (no closures, no per-round goroutines).
var planePool struct {
	mu      sync.Mutex // serializes rounds; TryLock'd, never waited on
	once    sync.Once
	workers int
	wake    chan struct{}
	wg      sync.WaitGroup
	next    atomic.Int64
	planes  int
	job     PlaneJob
}

func planePoolSpawn() {
	pp := &planePool
	pp.workers = runtime.GOMAXPROCS(0)
	pp.wake = make(chan struct{}, pp.workers)
	for w := 0; w < pp.workers; w++ {
		go func() {
			for range pp.wake {
				job, planes := pp.job, pp.planes
				for {
					p := int(pp.next.Add(1)) - 1
					if p >= planes {
						break
					}
					job.RunPlane(p)
				}
				pp.wg.Done()
			}
		}()
	}
}

// ParallelPlanes runs job.RunPlane(p) for p in [0, planes), fanning out
// across a persistent shared worker pool when both the machine and the
// plane count allow it. Unlike ParallelFor it allocates nothing per
// call, so it is the iteration primitive for the zero-allocation
// compress/decompress path. If the pool is busy serving another round
// (or parallelism cannot help) the planes run serially on the caller's
// goroutine — correctness never depends on the pool being free.
func ParallelPlanes(planes int, job PlaneJob) {
	if planes <= 0 {
		return
	}
	pp := &planePool
	if planes < 2 || runtime.GOMAXPROCS(0) < 2 || !pp.mu.TryLock() {
		for p := 0; p < planes; p++ {
			job.RunPlane(p)
		}
		return
	}
	defer pp.mu.Unlock()
	pp.once.Do(planePoolSpawn)
	workers := pp.workers
	if workers > planes {
		workers = planes
	}
	pp.job = job
	pp.planes = planes
	pp.next.Store(0)
	pp.wg.Add(workers)
	for w := 0; w < workers; w++ {
		pp.wake <- struct{}{}
	}
	pp.wg.Wait()
	pp.job = nil
}
