// Package groq models the Groq GroqChip tensor streaming processor: a
// compiler-scheduled SIMD/dataflow hybrid with 5120 ALUs, 230 MB of
// on-chip memory shared across ALU layers, and matrix-multiply modules
// limited to 320×320 operands (§2.1.3, §4.2.2).
package groq

import (
	"time"

	"repro/internal/accel"
)

// MXMDim is the matrix-multiply module's maximum operand dimension
// (Ahmed et al., "Answer Fast: Accelerating BERT on the Tensor
// Streaming Processor").
const MXMDim = 320

// New returns a GroqChip device model.
//
// Cost-model calibration (targets from §4.2.2 "GroqChip"): compression
// ≈150 MB/s with low variance across chop factors, decompression
// ≈200 MB/s and stratified by CR (higher CR faster), both far below the
// dataflow machines.
//
//   - The TSP streams one input-matrix row per compiler-issued
//     instruction slot; 6.5 µs per slot plus 0.3 ms per plane of
//     schedule overhead reproduces the observed band. Compression
//     streams full n-row planes regardless of CF (hence the low
//     variance); decompression streams the CF·n/8-row compressed planes
//     (hence the stratification and the across-the-board win).
//   - Host link 4 GB/s effective; transfers are minor next to slots.
//
// Placement: operands above 320×320 cannot be scheduled on the MXM,
// failing 512×512 at compile time, and the working set — including
// 20 KB of compiler-generated instruction schedule per streamed plane —
// must fit the 230 MB of on-chip memory, which fails beyond batch 1000
// at 64×64 exactly as the paper reports.
func New() *accel.Device {
	specs := accel.Specs{
		Name:          "GroqChip",
		ComputeUnits:  5120,
		OnChipMemory:  230 << 20, // 230 MB
		PerUnitMemory: 46080,     // 0.045 MB shared per ALU (Table 1)
		Software:      []string{"PT", "Keras", "ONNX"},
		Architecture:  accel.ArchSIMD,
	}
	cost := accel.CostModel{
		HostLinkGBs:     4,
		HostLinkLatency: 20 * time.Microsecond,
		RowSlotTime:     6500 * time.Nanosecond,
		PlaneOverhead:   300 * time.Microsecond,
	}
	return accel.NewDevice(specs, accel.CommonSupport(), cost,
		accel.MaxMatrixDim(MXMDim),
		accel.WorkingSetFits(20<<10),
	)
}
