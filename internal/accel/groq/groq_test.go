package groq

import (
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/graph"
)

func prog(t *testing.T, cf int, op string, n, bd int) (*accel.Program, error) {
	t.Helper()
	comp, err := core.NewCompressor(core.Config{ChopFactor: cf, Serialization: 1}, n)
	if err != nil {
		t.Fatal(err)
	}
	var g *graph.Graph
	if op == "compress" {
		g, err = comp.BuildCompressGraph(bd, 3)
	} else {
		g, err = comp.BuildDecompressGraph(bd, 3)
	}
	if err != nil {
		t.Fatal(err)
	}
	return New().Compile(g)
}

func TestSpecsMatchTable1(t *testing.T) {
	s := New().Specs()
	if s.Name != "GroqChip" || s.ComputeUnits != 5120 || s.OnChipMemory != 230<<20 {
		t.Fatalf("specs %+v", s)
	}
	if s.Architecture != accel.ArchSIMD {
		t.Fatal("GroqChip is the SIMD/dataflow hybrid")
	}
}

func TestCompressionLowVariance(t *testing.T) {
	// §4.2.2: "across all compression ratios, the throughput does not
	// vary significantly (≈150 MB/s)" — compression streams full input
	// planes regardless of CF.
	payload := 100 * 3 * 256 * 256 * 4
	var min, max float64
	for cf := 2; cf <= 7; cf++ {
		p, err := prog(t, cf, "compress", 256, 100)
		if err != nil {
			t.Fatal(err)
		}
		gbs := p.Estimate().ThroughputGBs(payload)
		if min == 0 || gbs < min {
			min = gbs
		}
		if gbs > max {
			max = gbs
		}
	}
	if max/min > 1.1 {
		t.Fatalf("compression variance %.2fx too high (%.3f–%.3f GB/s)", max/min, min, max)
	}
	if min < 0.08 || max > 0.3 {
		t.Fatalf("compression %.3f–%.3f GB/s outside the ≈150 MB/s band", min, max)
	}
}

func TestDecompressionStratifiedAndFaster(t *testing.T) {
	// §4.2.2: decompression "across the board performs better than
	// compression" and is stratified by CR.
	payload := 100 * 3 * 256 * 256 * 4
	var prev float64
	for cf := 2; cf <= 7; cf++ {
		pc, err := prog(t, cf, "compress", 256, 100)
		if err != nil {
			t.Fatal(err)
		}
		pd, err := prog(t, cf, "decompress", 256, 100)
		if err != nil {
			t.Fatal(err)
		}
		dec := pd.Estimate().ThroughputGBs(payload)
		if dec <= pc.Estimate().ThroughputGBs(payload) {
			t.Errorf("cf=%d: decompression not faster than compression", cf)
		}
		if prev != 0 && dec > prev {
			t.Errorf("cf=%d: decompression throughput must fall as CF rises", cf)
		}
		prev = dec
	}
}

func TestMXMLimitAt512(t *testing.T) {
	if _, err := prog(t, 4, "compress", 512, 100); err == nil {
		t.Fatal("512 must fail on the 320x320 MXM")
	} else if !strings.Contains(err.Error(), "320") {
		t.Fatalf("want MXM error, got %v", err)
	}
	// 256 ≤ 320 compiles.
	if _, err := prog(t, 4, "compress", 256, 100); err != nil {
		t.Fatalf("256 must compile: %v", err)
	}
}

func TestBatchWallBeyond1000(t *testing.T) {
	for cf := 2; cf <= 7; cf++ {
		if _, err := prog(t, cf, "compress", 64, 1000); err != nil {
			t.Errorf("cf=%d batch 1000 must compile: %v", cf, err)
		}
		if _, err := prog(t, cf, "compress", 64, 2000); err == nil {
			t.Errorf("cf=%d batch 2000 must fail", cf)
		} else if !strings.Contains(err.Error(), "instruction schedule") {
			t.Errorf("want schedule-memory error, got %v", err)
		}
	}
}

func TestMXMDimConstant(t *testing.T) {
	if MXMDim != 320 {
		t.Fatalf("MXMDim = %d", MXMDim)
	}
}
