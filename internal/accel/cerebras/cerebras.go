// Package cerebras models the Cerebras CS-2 wafer-scale engine: 850,000
// processing elements, each with 48 KB of local memory (>40 GB total),
// arranged in a 2-D mesh and programmed as a dataflow pipeline (§2.1.1).
package cerebras

import (
	"time"

	"repro/internal/accel"
)

// New returns a CS-2 device model.
//
// Cost-model calibration (targets from §4.2.2 "CS-2"): throughput
// "generally ranging from 16 to 26 GB/s", compression slower than
// decompression, little batch sensitivity until the pipeline saturates
// around batch 2000.
//
//   - Host link 26 GB/s effective: compression is input-stream bound, so
//     its throughput tops out at the link rate minus fill overhead
//     (observed ≈22 GB/s at 256×256).
//   - On-chip traffic at 60 GB/s effective across the fabric bounds
//     decompression (whose host transfer is CR× smaller), reproducing
//     the 16–26 GB/s spread across chop factors.
//   - 1.5 ms pipeline fill dominates small batches, flattening the
//     batch-size curve below ≈2000 samples exactly as Fig. 12/13 show.
//   - Compute rate 500 TFLOP/s effective: with 850k PEs the matmul
//     arithmetic itself is never the bottleneck.
func New() *accel.Device {
	specs := accel.Specs{
		Name:          "CS-2",
		ComputeUnits:  850000,
		OnChipMemory:  40 << 30, // 40 GB
		PerUnitMemory: 48 << 10, // 48 KB per PE
		Software:      []string{"TF", "PT", "CSL"},
		Architecture:  accel.ArchDataflow,
	}
	cost := accel.CostModel{
		HostLinkGBs:     26,
		HostLinkLatency: 20 * time.Microsecond,
		ComputeGFLOPs:   500000,
		OnChipGBs:       60,
		PipelineFill:    1500 * time.Microsecond,
		Overlap:         true,
	}
	// The compiler physically maps computation onto the wafer; with 40 GB
	// of on-chip memory no configuration in the evaluation fails placement.
	return accel.NewDevice(specs, accel.CommonSupport(), cost, accel.WorkingSetFits(0))
}
