package cerebras

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/graph"
)

func prog(t *testing.T, op string, cf, n, bd int) *accel.Program {
	t.Helper()
	comp, err := core.NewCompressor(core.Config{ChopFactor: cf, Serialization: 1}, n)
	if err != nil {
		t.Fatal(err)
	}
	var g *graph.Graph
	if op == "compress" {
		g, err = comp.BuildCompressGraph(bd, 3)
	} else {
		g, err = comp.BuildDecompressGraph(bd, 3)
	}
	if err != nil {
		t.Fatal(err)
	}
	p, err := New().Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSpecsMatchTable1(t *testing.T) {
	s := New().Specs()
	if s.Name != "CS-2" || s.ComputeUnits != 850000 || s.OnChipMemory != 40<<30 || s.PerUnitMemory != 48<<10 {
		t.Fatalf("specs %+v", s)
	}
	if s.Architecture != accel.ArchDataflow {
		t.Fatal("CS-2 is a dataflow architecture")
	}
}

func TestThroughputInPaperBand(t *testing.T) {
	// §4.2.2: "generally ranging from 16 to 26 GB/s".
	payload := 100 * 3 * 256 * 256 * 4
	for cf := 2; cf <= 7; cf++ {
		for _, op := range []string{"compress", "decompress"} {
			gbs := prog(t, op, cf, 256, 100).Estimate().ThroughputGBs(payload)
			if gbs < 14 || gbs > 28 {
				t.Errorf("%s cf=%d: %.1f GB/s outside the CS-2 band", op, cf, gbs)
			}
		}
	}
}

func TestHighestThroughputOfAllPlatforms(t *testing.T) {
	// The CS-2 "has the highest compression and decompression
	// throughput across all of the accelerators" — sanity floor.
	gbs := prog(t, "compress", 4, 256, 100).Estimate().ThroughputGBs(100 * 3 * 256 * 256 * 4)
	if gbs < 15 {
		t.Fatalf("CS-2 compression %.1f GB/s below expected floor", gbs)
	}
}

func TestEveryEvaluatedConfigCompiles(t *testing.T) {
	// The paper reports no CS-2 compile failures anywhere in the sweep.
	for _, n := range []int{32, 64, 128, 256, 512} {
		prog(t, "compress", 2, n, 100)
		prog(t, "decompress", 7, n, 100)
	}
	for _, bd := range []int{10, 1000, 5000} {
		prog(t, "compress", 4, 64, bd)
	}
}

func TestPipelineFillDominatesSmallBatches(t *testing.T) {
	// Fig. 12: flat until the pipeline saturates.
	small := prog(t, "compress", 4, 64, 10).Estimate().SimTime
	mid := prog(t, "compress", 4, 64, 500).Estimate().SimTime
	if float64(mid) > 2.5*float64(small) {
		t.Fatalf("batch 10→500 scaled %v→%v; fill should dominate", small, mid)
	}
}

func TestDecompressionSpreadsWithCR(t *testing.T) {
	// Fig. 11: "wider spread of decompression times ... with higher
	// compression ratio having significant speedup".
	fast := prog(t, "decompress", 2, 256, 100).Estimate().SimTime
	slow := prog(t, "decompress", 7, 256, 100).Estimate().SimTime
	if float64(slow) < 1.3*float64(fast) {
		t.Fatalf("CR spread too narrow: cf2 %v vs cf7 %v", fast, slow)
	}
}
