package accel

import (
	"fmt"
	"time"

	"repro/internal/graph"
)

// Cluster models data-parallel scaling across identical devices — the
// deployment the paper's GPU comparison points to: "the Graphcore
// Bow-Pod64 contains 64 IPUs and the GroqNode has eight GroqCards ...
// GroqChip and IPU rely on scalability to outperform GPU" (§4.2.2).
//
// Data parallelism shards the batch: each device compiles the per-shard
// graph and runs its shard concurrently, then pays a synchronization
// cost per run. Compression of training data is embarrassingly parallel
// across samples (§3.2), so no gradient exchange is modelled — SyncCost
// covers collective setup and host fan-out.
type Cluster struct {
	// Device is the member model (all members identical).
	Device *Device
	// Size is the number of devices.
	Size int
	// SyncCost is charged once per clustered run.
	SyncCost time.Duration
}

// NewCluster returns a cluster of size copies of the device.
func NewCluster(d *Device, size int, sync time.Duration) (*Cluster, error) {
	if size < 1 {
		return nil, fmt.Errorf("accel: cluster size %d must be ≥ 1", size)
	}
	return &Cluster{Device: d, Size: size, SyncCost: sync}, nil
}

// Name describes the cluster ("8x GroqChip").
func (c *Cluster) Name() string {
	return fmt.Sprintf("%dx %s", c.Size, c.Device.Name())
}

// CompileSharded compiles the per-shard graph produced by buildShard,
// which receives the per-device batch size. The total batch must divide
// evenly (static shapes: every member must compile the same graph).
func (c *Cluster) CompileSharded(totalBatch int, buildShard func(shardBatch int) (*graph.Graph, error)) (*ClusterProgram, error) {
	if totalBatch%c.Size != 0 {
		return nil, fmt.Errorf("accel: batch %d does not shard evenly across %d devices (tensor sizes are fixed at compile time)", totalBatch, c.Size)
	}
	g, err := buildShard(totalBatch / c.Size)
	if err != nil {
		return nil, err
	}
	p, err := c.Device.Compile(g)
	if err != nil {
		return nil, err
	}
	return &ClusterProgram{cluster: c, member: p}, nil
}

// ClusterProgram is a compiled data-parallel execution.
type ClusterProgram struct {
	cluster *Cluster
	member  *Program
}

// Member returns the per-device compiled program.
func (p *ClusterProgram) Member() *Program { return p.member }

// Estimate returns whole-cluster stats: members run concurrently, so
// the time is one member's time plus the synchronization cost, while
// traffic and FLOPs aggregate.
func (p *ClusterProgram) Estimate() Stats {
	s := p.member.Estimate()
	n := p.cluster.Size
	s.HostToDeviceBytes *= n
	s.DeviceToHostBytes *= n
	s.FLOPs *= float64(n)
	s.Kernels *= n
	s.SimTime += p.cluster.SyncCost
	return s
}
