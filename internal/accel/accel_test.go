package accel_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/accel"
	"repro/internal/accel/cerebras"
	"repro/internal/accel/gpu"
	"repro/internal/accel/graphcore"
	"repro/internal/accel/groq"
	"repro/internal/accel/platforms"
	"repro/internal/accel/sambanova"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// buildGraphs returns compress/decompress graphs for the standard
// throughput workload: bd samples × 3 channels × n×n, chop factor cf.
func buildGraphs(t *testing.T, cfg core.Config, n, bd int) (*graph.Graph, *graph.Graph) {
	t.Helper()
	c, err := core.NewCompressor(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := c.BuildCompressGraph(bd, 3)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := c.BuildDecompressGraph(bd, 3)
	if err != nil {
		t.Fatal(err)
	}
	return cg, dg
}

func chopCfg(cf int) core.Config {
	return core.Config{ChopFactor: cf, Serialization: 1}
}

func TestTable1Specs(t *testing.T) {
	// The Table 1 rows the simulators must advertise.
	want := []struct {
		name string
		cus  int
		ocm  int64
		arch accel.Arch
	}{
		{"CS-2", 850000, 40 << 30, accel.ArchDataflow},
		{"SN30", 1280, 640 << 20, accel.ArchDataflow},
		{"GroqChip", 5120, 230 << 20, accel.ArchSIMD},
		{"IPU", 1472, 900 << 20, accel.ArchMIMD},
	}
	devs := platforms.Accelerators()
	if len(devs) != 4 {
		t.Fatalf("expected 4 accelerators, got %d", len(devs))
	}
	for i, w := range want {
		s := devs[i].Specs()
		if s.Name != w.name || s.ComputeUnits != w.cus || s.OnChipMemory != w.ocm || s.Architecture != w.arch {
			t.Fatalf("device %d specs %+v, want %+v", i, s, w)
		}
	}
}

func TestByName(t *testing.T) {
	if platforms.ByName("IPU") == nil || platforms.ByName("A100") == nil {
		t.Fatal("ByName must find IPU and A100")
	}
	if platforms.ByName("TPU") != nil {
		t.Fatal("ByName must return nil for unknown devices")
	}
}

func TestAllDevicesCompileChopGraphs(t *testing.T) {
	// 256×256 at batch 100 compiles everywhere (the paper's standard
	// throughput point).
	for _, d := range platforms.All() {
		for _, cf := range []int{2, 4, 7} {
			cg, dg := buildGraphs(t, chopCfg(cf), 256, 100)
			if _, err := d.Compile(cg); err != nil {
				t.Errorf("%s cf=%d compress: %v", d.Name(), cf, err)
			}
			if _, err := d.Compile(dg); err != nil {
				t.Errorf("%s cf=%d decompress: %v", d.Name(), cf, err)
			}
		}
	}
}

func TestSN30FailsAt512(t *testing.T) {
	// §4.2.2: "compilation fails for 512×512 resolution since the PMUs
	// cannot fit the entire output matrix along with matrices required
	// for compression/decompression."
	d := sambanova.New()
	for _, cf := range []int{2, 4, 7} {
		cg, dg := buildGraphs(t, chopCfg(cf), 512, 100)
		if _, err := d.Compile(cg); err == nil {
			t.Errorf("cf=%d: SN30 must fail to compile 512 compression", cf)
		} else {
			var ce *accel.CompileError
			if !errors.As(err, &ce) || !strings.Contains(ce.Reason, "memory") {
				t.Errorf("cf=%d: want CompileError about memory, got %v", cf, err)
			}
		}
		if _, err := d.Compile(dg); err == nil {
			t.Errorf("cf=%d: SN30 must fail to compile 512 decompression", cf)
		}
	}
	// ... while 256 compiles.
	cg, _ := buildGraphs(t, chopCfg(7), 256, 100)
	if _, err := d.Compile(cg); err != nil {
		t.Errorf("SN30 must compile 256: %v", err)
	}
}

func TestSN30PartialSerializationEnables512(t *testing.T) {
	// §4.2.3 / Fig. 15: s=2 partial serialization brings 512×512 back
	// within PMU capacity on the SN30 (and IPU).
	d := sambanova.New()
	for _, cf := range []int{2, 4, 7} {
		cfg := core.Config{ChopFactor: cf, Serialization: 2}
		cg, dg := buildGraphs(t, cfg, 512, 100)
		if _, err := d.Compile(cg); err != nil {
			t.Errorf("cf=%d: SN30 s=2 compression must compile: %v", cf, err)
		}
		if _, err := d.Compile(dg); err != nil {
			t.Errorf("cf=%d: SN30 s=2 decompression must compile: %v", cf, err)
		}
	}
}

func TestGroqFailsAt512(t *testing.T) {
	// §4.2.2: GroqChip fails 512×512 due to on-chip memory and the
	// 320×320 matrix-multiply module limit.
	d := groq.New()
	cg, dg := buildGraphs(t, chopCfg(4), 512, 100)
	for _, g := range []*graph.Graph{cg, dg} {
		if _, err := d.Compile(g); err == nil {
			t.Errorf("GroqChip must fail to compile %q at 512", g.Name)
		} else if !strings.Contains(err.Error(), "320") {
			t.Errorf("want MXM-limit error, got %v", err)
		}
	}
}

func TestGroqBatchWall(t *testing.T) {
	// §4.2.2: "the GroqChip fails to compile beyond a batch size of 1000
	// since on-chip memory is exhausted" (64×64 workload).
	d := groq.New()
	for _, cf := range []int{2, 4, 7} {
		okC, okD := buildGraphs(t, chopCfg(cf), 64, 1000)
		if _, err := d.Compile(okC); err != nil {
			t.Errorf("cf=%d: batch 1000 compression must compile: %v", cf, err)
		}
		if _, err := d.Compile(okD); err != nil {
			t.Errorf("cf=%d: batch 1000 decompression must compile: %v", cf, err)
		}
		failC, failD := buildGraphs(t, chopCfg(cf), 64, 2000)
		if _, err := d.Compile(failC); err == nil {
			t.Errorf("cf=%d: batch 2000 compression must fail", cf)
		}
		if _, err := d.Compile(failD); err == nil {
			t.Errorf("cf=%d: batch 2000 decompression must fail", cf)
		}
	}
}

func TestCS2AndIPUCompileAt512(t *testing.T) {
	// The CS-2 runs every configuration; the IPU "successfully ran
	// no-serialization decompression for 512×512 images" (§4.2.3).
	for _, d := range []*accel.Device{cerebras.New(), graphcore.New()} {
		cg, dg := buildGraphs(t, chopCfg(4), 512, 100)
		if _, err := d.Compile(cg); err != nil {
			t.Errorf("%s 512 compression: %v", d.Name(), err)
		}
		if _, err := d.Compile(dg); err != nil {
			t.Errorf("%s 512 decompression: %v", d.Name(), err)
		}
	}
}

func TestSGOnlyCompilesOnIPUAndGPU(t *testing.T) {
	// §3.5.2: torch.scatter/torch.gather are "not yet supported across
	// all accelerators" — only the IPU (and the GPU reference) compile
	// the SG graphs.
	sgCfg := core.Config{ChopFactor: 4, Mode: core.ModeSG, Serialization: 1}
	cg, dg := buildGraphs(t, sgCfg, 32, 100)
	for _, d := range platforms.All() {
		_, errC := d.Compile(cg)
		_, errD := d.Compile(dg)
		supported := d.Name() == "IPU" || d.Name() == "A100"
		if supported && (errC != nil || errD != nil) {
			t.Errorf("%s must compile SG graphs: %v / %v", d.Name(), errC, errD)
		}
		if !supported {
			if errC == nil || errD == nil {
				t.Errorf("%s must reject SG graphs", d.Name())
			} else if !strings.Contains(errC.Error(), "unsupported operators") {
				t.Errorf("%s: want unsupported-operator error, got %v", d.Name(), errC)
			}
		}
	}
}

func TestBitwiseOpsRejectedEverywhereButGPU(t *testing.T) {
	// §3.1: bitwise shift operators, "integral to many variable length
	// encoding schemes", are missing from every accelerator's PyTorch
	// support — which is the design constraint that motivates DCT+Chop.
	b := graph.NewBuilder("vle-like")
	x := b.Input("x", 8, 8)
	b.Output(b.BitShift(x, 3))
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range platforms.All() {
		_, err := d.Compile(g)
		if d.Name() == "A100" {
			if err != nil {
				t.Errorf("A100 must compile bitshift: %v", err)
			}
		} else if err == nil {
			t.Errorf("%s must reject bitshift", d.Name())
		}
	}
}

func TestRunExecutesFunctionally(t *testing.T) {
	// Compiled programs must produce bit-identical results to the host
	// compressor on every device.
	cfg := chopCfg(4)
	comp, err := core.NewCompressor(cfg, 32)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(7)
	x := r.Uniform(-1, 1, 2, 3, 32, 32)
	want, err := comp.Compress(x)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := comp.BuildCompressGraph(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range platforms.All() {
		p, err := d.Compile(cg)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		outs, stats, err := p.Run(map[string]*tensor.Tensor{"A": x})
		if err != nil {
			t.Fatalf("%s run: %v", d.Name(), err)
		}
		// Devices execute the dense fused matmuls; the host compressor
		// runs the structure-aware fast kernel, so compare within its
		// conformance tolerance rather than bit-exactly.
		if !outs[0].AllClose(want.Chunks[0], 1e-5) {
			t.Errorf("%s produced different compressed data", d.Name())
		}
		if stats.SimTime <= 0 {
			t.Errorf("%s reported non-positive simulated time", d.Name())
		}
		if stats.HostToDeviceBytes != x.SizeBytes() {
			t.Errorf("%s H2D bytes %d, want %d", d.Name(), stats.HostToDeviceBytes, x.SizeBytes())
		}
	}
}

// throughput returns the simulated uncompressed-payload throughput in
// GB/s for a compiled graph.
func throughput(t *testing.T, d *accel.Device, g *graph.Graph, payloadBytes int) float64 {
	t.Helper()
	p, err := d.Compile(g)
	if err != nil {
		t.Fatalf("%s: %v", d.Name(), err)
	}
	return p.Estimate().ThroughputGBs(payloadBytes)
}

func TestThroughputRanges(t *testing.T) {
	// §4.2.2 headline numbers at the standard 100×3×256×256 workload.
	payload := 100 * 3 * 256 * 256 * 4
	type band struct{ lo, hi float64 }
	cases := []struct {
		dev        *accel.Device
		compress   band
		decompress band
	}{
		{cerebras.New(), band{14, 28}, band{14, 30}},   // "16 to 26 GB/s"
		{sambanova.New(), band{5, 12}, band{5, 13}},    // "7 to 10 GB/s"
		{groq.New(), band{0.08, 0.3}, band{0.1, 0.7}},  // "≈150/200 MB/s"
		{graphcore.New(), band{0.8, 1.6}, band{1, 25}}, // "≈1.2 / 2–21 GB/s"
		{gpu.New(), band{1, 4.5}, band{1.5, 4}},        // "≈2.5 GB/s"
	}
	for _, tc := range cases {
		for cf := 2; cf <= 7; cf++ {
			cg, dg := buildGraphs(t, chopCfg(cf), 256, 100)
			ct := throughput(t, tc.dev, cg, payload)
			dt := throughput(t, tc.dev, dg, payload)
			if ct < tc.compress.lo || ct > tc.compress.hi {
				t.Errorf("%s cf=%d compression %.2f GB/s outside [%g,%g]", tc.dev.Name(), cf, ct, tc.compress.lo, tc.compress.hi)
			}
			if dt < tc.decompress.lo || dt > tc.decompress.hi {
				t.Errorf("%s cf=%d decompression %.2f GB/s outside [%g,%g]", tc.dev.Name(), cf, dt, tc.decompress.lo, tc.decompress.hi)
			}
		}
	}
}

func TestDecompressionFasterThanCompression(t *testing.T) {
	// §4.2.2 key takeaway: "Compression generally is slower than
	// decompression" — less data to load, fewer FLOPs.
	for _, d := range platforms.All() {
		for cf := 2; cf <= 7; cf++ {
			cg, dg := buildGraphs(t, chopCfg(cf), 256, 100)
			pc, err := d.Compile(cg)
			if err != nil {
				t.Fatal(err)
			}
			pd, err := d.Compile(dg)
			if err != nil {
				t.Fatal(err)
			}
			if pd.Estimate().SimTime > pc.Estimate().SimTime {
				t.Errorf("%s cf=%d: decompression (%v) slower than compression (%v)", d.Name(), cf, pd.Estimate().SimTime, pc.Estimate().SimTime)
			}
		}
	}
}

func TestHigherCRFasterDecompression(t *testing.T) {
	// §4.2.2 key takeaway: "Higher compression ratios often have faster
	// decompression" — strictly monotone on IPU and CS-2 where transfer
	// dominates.
	for _, d := range []*accel.Device{cerebras.New(), graphcore.New()} {
		var prev time.Duration
		for cf := 2; cf <= 7; cf++ { // increasing CF = decreasing CR
			_, dg := buildGraphs(t, chopCfg(cf), 256, 100)
			p, err := d.Compile(dg)
			if err != nil {
				t.Fatal(err)
			}
			if p.Estimate().SimTime < prev {
				t.Errorf("%s: decompression time not monotone in CF at cf=%d", d.Name(), cf)
			}
			prev = p.Estimate().SimTime
		}
	}
}

func TestSN30SmallTensorOverhead(t *testing.T) {
	// §4.2.2: "the highest compression ratio, 16.0, is slower than both
	// 4.0 and 7.11" on the SN30.
	d := sambanova.New()
	times := map[int]time.Duration{}
	for _, cf := range []int{2, 3, 4} {
		_, dg := buildGraphs(t, chopCfg(cf), 256, 100)
		p, err := d.Compile(dg)
		if err != nil {
			t.Fatal(err)
		}
		times[cf] = p.Estimate().SimTime
	}
	if times[2] <= times[4] || times[2] <= times[3] {
		t.Errorf("CR 16 (cf=2, %v) must be slower than CR 4 (cf=4, %v) and CR 7.11 (cf=3, %v)", times[2], times[4], times[3])
	}
}

func TestBatchLinearity(t *testing.T) {
	// §4.2.2 key takeaway: execution time and batch size are linearly
	// related once past the pipeline-fill regime.
	for _, d := range []*accel.Device{sambanova.New(), graphcore.New()} {
		cg1, _ := buildGraphs(t, chopCfg(4), 64, 1000)
		cg2, _ := buildGraphs(t, chopCfg(4), 64, 2000)
		p1, err := d.Compile(cg1)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := d.Compile(cg2)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(p2.Estimate().SimTime) / float64(p1.Estimate().SimTime)
		if ratio < 1.6 || ratio > 2.4 {
			t.Errorf("%s: doubling batch scales time by %.2f, want ≈2", d.Name(), ratio)
		}
	}
}

func TestCS2FlatUntilPipelineFull(t *testing.T) {
	// §4.2.2: "As batch size increases, the CS-2 performance does not
	// change significantly, until batch size surpasses 2000."
	d := cerebras.New()
	timeAt := func(bd int) time.Duration {
		cg, _ := buildGraphs(t, chopCfg(4), 64, bd)
		p, err := d.Compile(cg)
		if err != nil {
			t.Fatal(err)
		}
		return p.Estimate().SimTime
	}
	small := timeAt(10)
	mid := timeAt(1000)
	big := timeAt(5000)
	if float64(mid) > 3*float64(small) {
		t.Errorf("CS-2 batch 10→1000 scaled %v → %v; should be pipeline-fill dominated", small, mid)
	}
	if float64(big) < 2*float64(mid) {
		t.Errorf("CS-2 batch 1000→5000 scaled %v → %v; should be stream-bound", mid, big)
	}
}

func TestEstimateMatchesRunStats(t *testing.T) {
	d := graphcore.New()
	cg, _ := buildGraphs(t, chopCfg(4), 32, 2)
	p, err := d.Compile(cg)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(1)
	_, stats, err := p.Run(map[string]*tensor.Tensor{"A": r.Uniform(0, 1, 2, 3, 32, 32)})
	if err != nil {
		t.Fatal(err)
	}
	if stats != p.Estimate() {
		t.Fatal("Run stats must equal Estimate (the cost model is deterministic)")
	}
}

func TestCompileErrorMessage(t *testing.T) {
	e := &accel.CompileError{Device: "SN30", Graph: "g", Reason: "out of memory"}
	if !strings.Contains(e.Error(), "SN30") || !strings.Contains(e.Error(), "out of memory") {
		t.Fatalf("CompileError message %q", e.Error())
	}
}

func TestArchString(t *testing.T) {
	for a, want := range map[accel.Arch]string{
		accel.ArchDataflow: "Dataflow",
		accel.ArchSIMD:     "SIMD",
		accel.ArchMIMD:     "MIMD",
		accel.ArchGPU:      "GPU",
	} {
		if a.String() != want {
			t.Errorf("Arch %d = %q", int(a), a.String())
		}
	}
}
