package sambanova

import (
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/graph"
)

func prog(t *testing.T, cfg core.Config, op string, n, bd int) (*accel.Program, error) {
	t.Helper()
	comp, err := core.NewCompressor(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	var g *graph.Graph
	if op == "compress" {
		g, err = comp.BuildCompressGraph(bd, 3)
	} else {
		g, err = comp.BuildDecompressGraph(bd, 3)
	}
	if err != nil {
		t.Fatal(err)
	}
	return New().Compile(g)
}

func chop(cf, s int) core.Config {
	return core.Config{ChopFactor: cf, Serialization: s}
}

func TestSpecsMatchTable1(t *testing.T) {
	s := New().Specs()
	if s.Name != "SN30" || s.ComputeUnits != 1280 || s.OnChipMemory != 640<<20 {
		t.Fatalf("specs %+v", s)
	}
	// The 0.5 MB PMU the paper's §3.5.1 sizing argument rests on.
	if s.PerUnitMemory != 512<<10 {
		t.Fatalf("PMU size %d, want 0.5 MB", s.PerUnitMemory)
	}
}

func TestThroughputInPaperBand(t *testing.T) {
	// §4.2.2: "around 7 to 10 GB/s" including PCIe 4.0 transfer.
	payload := 100 * 3 * 256 * 256 * 4
	for cf := 2; cf <= 7; cf++ {
		for _, op := range []string{"compress", "decompress"} {
			p, err := prog(t, chop(cf, 1), op, 256, 100)
			if err != nil {
				t.Fatal(err)
			}
			gbs := p.Estimate().ThroughputGBs(payload)
			if gbs < 5 || gbs > 13 {
				t.Errorf("%s cf=%d: %.1f GB/s outside the SN30 band", op, cf, gbs)
			}
		}
	}
}

func TestCR4And711Fastest(t *testing.T) {
	// §4.2.2: "Compression ratios of 4.0 and 7.11 perform best ... the
	// highest compression ratio, 16.0, is slower than both".
	times := map[int]float64{}
	for _, cf := range []int{2, 3, 4, 5, 6, 7} {
		p, err := prog(t, chop(cf, 1), "decompress", 256, 100)
		if err != nil {
			t.Fatal(err)
		}
		times[cf] = p.Estimate().SimTime.Seconds()
	}
	if times[2] <= times[3] || times[2] <= times[4] {
		t.Fatalf("CR 16 (%.3gs) must be slower than CR 7.11 (%.3gs) and CR 4 (%.3gs)", times[2], times[3], times[4])
	}
	best := times[3]
	if times[4] < best {
		best = times[4]
	}
	for _, cf := range []int{5, 6, 7} {
		if times[cf] < best-1e-9 {
			t.Fatalf("cf=%d (%.3gs) beats the CR 4/7.11 optimum (%.3gs)", cf, times[cf], best)
		}
	}
}

func TestPMUWallAt512(t *testing.T) {
	// "Compilation fails for 512×512 resolution since the PMUs cannot
	// fit the entire output matrix along with matrices required".
	for cf := 2; cf <= 7; cf++ {
		for _, op := range []string{"compress", "decompress"} {
			if _, err := prog(t, chop(cf, 1), op, 512, 100); err == nil {
				t.Errorf("%s cf=%d at 512 must fail", op, cf)
			} else if !strings.Contains(err.Error(), "memory unit") {
				t.Errorf("want PMU-capacity error, got %v", err)
			}
		}
	}
}

func TestPartialSerializationRestores512(t *testing.T) {
	// Fig. 15: s=2 fits the chunk planes back into the PMUs.
	for cf := 2; cf <= 7; cf++ {
		if _, err := prog(t, chop(cf, 2), "decompress", 512, 100); err != nil {
			t.Errorf("s=2 cf=%d must compile: %v", cf, err)
		}
	}
}

func TestSmallTensorPenaltyOnlyBelowThreshold(t *testing.T) {
	// The CR 16 penalty comes from sub-20 KB planes; CR 4's 128×128
	// planes (64 KB) must not be charged. Compare per-byte cost.
	p2, err := prog(t, chop(2, 1), "decompress", 256, 100)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := prog(t, chop(4, 1), "decompress", 256, 100)
	if err != nil {
		t.Fatal(err)
	}
	// CF=2 moves 1/4 the data of CF=4 yet must take longer.
	if p2.Estimate().SimTime <= p4.Estimate().SimTime {
		t.Fatalf("CR 16 (%v) should be slower than CR 4 (%v) despite less data", p2.Estimate().SimTime, p4.Estimate().SimTime)
	}
}

func TestScatterGatherUnsupported(t *testing.T) {
	// §3.5.2: the SG optimization cannot compile on the SN30.
	cfg := core.Config{ChopFactor: 4, Mode: core.ModeSG, Serialization: 1}
	if _, err := prog(t, cfg, "decompress", 32, 100); err == nil {
		t.Fatal("SG graph must be rejected")
	} else if !strings.Contains(err.Error(), "unsupported operators") {
		t.Fatalf("want operator-support error, got %v", err)
	}
}
