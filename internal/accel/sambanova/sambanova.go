// Package sambanova models one SambaNova SN30 reconfigurable dataflow
// unit (RDU): 1280 pattern compute units and 1280 pattern memory units
// of 0.5 MB each (640 MB on-chip), programmed by tracing a computation
// graph whose operators the compiler places onto tiles (§2.1.2). The
// paper evaluates a single RDU; so does this model.
package sambanova

import (
	"time"

	"repro/internal/accel"
)

// New returns an SN30 (single RDU) device model.
//
// Cost-model calibration (targets from §4.2.2 "SN30"): 7–10 GB/s for
// both directions over PCIe 4.0, compression ratios 4.0 and 7.11
// fastest, CR 16.0 slower than both despite needing fewer FLOPs, and
// time linear in batch size.
//
//   - Host link 10 GB/s effective (PCIe 4.0 ×16 with protocol overhead).
//   - On-chip traffic at 20 GB/s effective across PMUs bounds the
//     compute side; with overlap this puts 256×256 compression at
//     ≈9 GB/s and decompression at ≈10 GB/s for CR 4.
//   - A 10 µs penalty per sub-20 KB tensor plane models the RDU's
//     small-tensor overhead ("higher throughput … on fewer, large
//     tensors compared to many small tensors"): at CR 16 the 64×64
//     compressed planes fall under the threshold, making CR 16 slower
//     than CR 4/7.11 exactly as the paper observes.
//
// Placement: every runtime tensor plane, together with the constant
// matrices the producing node needs, must fit a 0.5 MB PMU. 512×512
// therefore fails to compile ("the PMUs cannot fit the entire output
// matrix along with matrices required for compression/decompression"),
// while partial serialization with s=2 brings the chunk planes back
// under the limit and compiles.
func New() *accel.Device {
	specs := accel.Specs{
		Name:          "SN30",
		ComputeUnits:  1280,
		OnChipMemory:  640 << 20, // 640 MB
		PerUnitMemory: 512 << 10, // 0.5 MB per PMU
		Software:      []string{"SF", "PT"},
		Architecture:  accel.ArchDataflow,
	}
	cost := accel.CostModel{
		HostLinkGBs:        10,
		HostLinkLatency:    20 * time.Microsecond,
		ComputeGFLOPs:      50000,
		OnChipGBs:          20,
		PipelineFill:       time.Millisecond,
		Overlap:            true,
		SmallTensorBytes:   20 << 10,
		SmallTensorPenalty: 10 * time.Microsecond,
	}
	return accel.NewDevice(specs, accel.CommonSupport(), cost,
		accel.MaxPlaneFitsPerUnit(),
		accel.WorkingSetFits(0),
	)
}
