// Package accel simulates the four AI accelerators of the paper (plus an
// A100 GPU reference) well enough to reproduce the evaluation's shape:
// each Device owns an operator-support table, compile-time placement
// rules that enforce on-chip memory limits, and an analytic cost model
// calibrated to the throughput ranges reported in §4.2.2.
//
// Compile mirrors the real toolchains: it walks a static graph, rejects
// unsupported operators (the reason VLE-style encoders cannot ship to
// these devices), and runs placement checks that fail with the same
// out-of-memory errors the paper hits (SN30/GroqChip at 512×512,
// GroqChip beyond batch 1000). Run executes the graph functionally on
// the host tensor engine — results are real — while the reported time is
// the deterministic cost-model estimate, since the wall-clock of this
// machine says nothing about a CS-2.
package accel

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Arch is the paper's Table 1 architecture classification.
type Arch int

const (
	// ArchDataflow covers CS-2 and SN30: compute placed physically
	// on-chip, samples streamed through a deep pipeline.
	ArchDataflow Arch = iota
	// ArchSIMD is the GroqChip TSP: compiler-scheduled SIMD streaming.
	ArchSIMD
	// ArchMIMD is the Graphcore IPU: independent instruction streams per
	// tile.
	ArchMIMD
	// ArchGPU is the A100 reference platform.
	ArchGPU
)

func (a Arch) String() string {
	switch a {
	case ArchDataflow:
		return "Dataflow"
	case ArchSIMD:
		return "SIMD"
	case ArchMIMD:
		return "MIMD"
	case ArchGPU:
		return "GPU"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// Specs is a Table 1 row: the device's published resource counts.
type Specs struct {
	Name          string
	ComputeUnits  int
	OnChipMemory  int64 // bytes
	PerUnitMemory int64 // bytes of on-chip memory local to one CU
	Software      []string
	Architecture  Arch
}

// CostModel parameterizes the analytic timing estimate. All rates are
// "effective" — calibrated against §4.2.2's reported throughputs, not
// datasheet peaks — and each device's constructor documents the
// derivation.
type CostModel struct {
	// HostLinkGBs is the effective host→device bandwidth in GB/s.
	HostLinkGBs float64
	// HostLinkLatency is the fixed per-run transfer setup cost.
	HostLinkLatency time.Duration
	// CountOutputTransfer includes device→host output traffic in the
	// transfer term. Dataflow devices leave results on-chip for the
	// training pipeline (the paper's integration), so only the GPU
	// counts it.
	CountOutputTransfer bool
	// ComputeGFLOPs is the effective matmul rate in GFLOP/s.
	ComputeGFLOPs float64
	// OnChipGBs is the effective on-chip memory bandwidth applied to
	// every intermediate tensor touched ("the compressor is
	// memory-bounded", §4.2.2 IPU discussion).
	OnChipGBs float64
	// KernelOverhead is charged once per graph node executed.
	KernelOverhead time.Duration
	// PipelineFill is charged once per run: the dataflow pipeline (or
	// instruction schedule) priming cost.
	PipelineFill time.Duration
	// Overlap selects dataflow composition: total = fill +
	// max(transfer, compute) instead of their sum.
	Overlap bool
	// SmallTensorBytes/SmallTensorPenalty model the SN30 RDU's overhead
	// on many small tensors (§4.2.2: CR 16.0 slower than 4.0): every
	// plane smaller than the threshold is charged the penalty.
	SmallTensorBytes   int
	SmallTensorPenalty time.Duration
	// GatherScatterGBs is the effective rate at which gather/scatter
	// outputs materialize. Index-driven access defeats the contiguous
	// tile layout, so it is far below the dense on-chip bandwidth —
	// this is why the SG optimization trades 1.5–2.7× decompression
	// throughput for its compression-ratio gain (Fig. 17). Zero means
	// the device never compiles those ops anyway.
	GatherScatterGBs float64
	// RowSlotTime models the GroqChip TSP: each row of every runtime
	// input streams through the ALU pipeline in one instruction slot,
	// so time scales with streamed row count rather than FLOPs.
	RowSlotTime time.Duration
	// PlaneOverhead is a fixed per-plane scheduling cost (GroqChip).
	PlaneOverhead time.Duration
}

// PlacementRule is one compile-time resource check; it returns a
// CompileError when the graph cannot be placed on the device.
type PlacementRule func(d *Device, g *graph.Graph) error

// Device is a simulated accelerator.
type Device struct {
	specs   Specs
	support map[graph.OpKind]bool
	cost    CostModel
	rules   []PlacementRule
}

// NewDevice assembles a device from its parts; used by the platform
// subpackages (cerebras, sambanova, groq, graphcore, gpu).
func NewDevice(specs Specs, support map[graph.OpKind]bool, cost CostModel, rules ...PlacementRule) *Device {
	return &Device{specs: specs, support: support, cost: cost, rules: rules}
}

// Specs returns the device's Table 1 row.
func (d *Device) Specs() Specs { return d.specs }

// Name returns the device name.
func (d *Device) Name() string { return d.specs.Name }

// Cost exposes the calibrated cost model (read-only by convention).
func (d *Device) Cost() CostModel { return d.cost }

// Supports reports operator support — the §3.1 programmability table.
func (d *Device) Supports(k graph.OpKind) bool { return d.support[k] }

// CompileError explains why a graph cannot run on a device, mirroring
// the paper's compile failures.
type CompileError struct {
	Device string
	Graph  string
	Reason string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("accel: %s cannot compile %q: %s", e.Device, e.Graph, e.Reason)
}

// Compile checks operator support and placement, returning an executable
// Program. Like the real toolchains, all tensor shapes are fixed here.
func (d *Device) Compile(g *graph.Graph) (*Program, error) {
	var unsupported []string
	seen := map[graph.OpKind]bool{}
	for _, n := range g.Nodes {
		if !d.support[n.Kind] && !seen[n.Kind] {
			seen[n.Kind] = true
			unsupported = append(unsupported, n.Kind.String())
		}
	}
	if len(unsupported) > 0 {
		sort.Strings(unsupported)
		return nil, &CompileError{
			Device: d.specs.Name,
			Graph:  g.Name,
			Reason: fmt.Sprintf("unsupported operators %v", unsupported),
		}
	}
	for _, rule := range d.rules {
		if err := rule(d, g); err != nil {
			return nil, err
		}
	}
	return &Program{device: d, graph: g, estimate: d.estimate(g)}, nil
}

// Program is a compiled graph bound to a device.
type Program struct {
	device   *Device
	graph    *graph.Graph
	estimate Stats
}

// Device returns the program's device.
func (p *Program) Device() *Device { return p.device }

// Graph returns the compiled graph.
func (p *Program) Graph() *graph.Graph { return p.graph }

// Stats describes one simulated execution.
type Stats struct {
	HostToDeviceBytes int
	DeviceToHostBytes int
	FLOPs             float64
	Kernels           int
	// SimTime is the cost-model execution time, including host-device
	// transfer exactly as the paper's measurements do (§4.1).
	SimTime time.Duration
	// Breakdown decomposes SimTime into the model's terms, so harness
	// output can explain *why* a configuration lands where it does.
	Breakdown CostBreakdown
}

// CostBreakdown is the per-term decomposition of a simulated execution.
// For Overlap (dataflow) devices, Transfer and Compute race and only
// the larger contributes to SimTime; for the others they add.
type CostBreakdown struct {
	Transfer time.Duration // host-link traffic + setup latency
	Compute  time.Duration // FLOPs, on-chip traffic, kernels, TSP slots
	Penalty  time.Duration // small-tensor handling (SN30)
	Fill     time.Duration // pipeline/program fill
	Overlap  bool
}

// ThroughputGBs converts a payload size into the paper's throughput
// metric: payload bytes divided by simulated time.
func (s Stats) ThroughputGBs(payloadBytes int) float64 {
	sec := s.SimTime.Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(payloadBytes) / sec / 1e9
}

// Estimate returns the cost-model stats without executing — what the
// sweep harness uses for configurations too large to run functionally.
func (p *Program) Estimate() Stats { return p.estimate }

// Run executes the graph functionally on the host engine and returns
// outputs plus the simulated stats.
func (p *Program) Run(inputs map[string]*tensor.Tensor) ([]*tensor.Tensor, Stats, error) {
	outs, err := p.graph.Execute(inputs)
	if err != nil {
		return nil, Stats{}, err
	}
	return outs, p.estimate, nil
}

// estimate evaluates the cost model for one execution of g.
func (d *Device) estimate(g *graph.Graph) Stats {
	c := d.cost
	h2d := g.InputBytes()
	d2h := g.OutputBytes()

	transfer := c.HostLinkLatency.Seconds()
	if c.HostLinkGBs > 0 {
		transfer += float64(h2d) / (c.HostLinkGBs * 1e9)
		if c.CountOutputTransfer {
			transfer += float64(d2h) / (c.HostLinkGBs * 1e9)
		}
	}

	var compute float64
	touched := 0
	kernels := 0
	for _, n := range g.Nodes {
		if n.Kind == graph.OpConst || n.Kind == graph.OpInput {
			continue
		}
		kernels++
		touched += n.Bytes()
		if (n.Kind == graph.OpGather || n.Kind == graph.OpScatter) && c.GatherScatterGBs > 0 {
			compute += float64(n.Bytes()) / (c.GatherScatterGBs * 1e9)
		}
	}
	// Inputs are touched on-chip too (read into the compute fabric).
	touched += h2d
	if c.ComputeGFLOPs > 0 {
		compute += g.TotalFLOPs() / (c.ComputeGFLOPs * 1e9)
	}
	if c.OnChipGBs > 0 {
		compute += float64(touched) / (c.OnChipGBs * 1e9)
	}
	compute += float64(kernels) * c.KernelOverhead.Seconds()
	if c.RowSlotTime > 0 || c.PlaneOverhead > 0 {
		rows, planes := streamedRows(g)
		compute += float64(rows)*c.RowSlotTime.Seconds() + float64(planes)*c.PlaneOverhead.Seconds()
	}

	var penalty float64
	if c.SmallTensorPenalty > 0 && c.SmallTensorBytes > 0 {
		// Inputs are included: streaming many small tensors into the
		// memory units is precisely the SN30 overhead the paper observes.
		for _, n := range g.Nodes {
			if n.Kind == graph.OpConst {
				continue
			}
			pb, np := planeBytes(n.Shape)
			if pb > 0 && pb < c.SmallTensorBytes {
				penalty += float64(np) * c.SmallTensorPenalty.Seconds()
			}
		}
	}

	var total float64
	if c.Overlap {
		total = c.PipelineFill.Seconds() + maxF(transfer, compute) + penalty
	} else {
		total = c.PipelineFill.Seconds() + transfer + compute + penalty
	}
	sec := func(v float64) time.Duration { return time.Duration(v * float64(time.Second)) }
	return Stats{
		HostToDeviceBytes: h2d,
		DeviceToHostBytes: d2h,
		FLOPs:             g.TotalFLOPs(),
		Kernels:           kernels,
		SimTime:           sec(total),
		Breakdown: CostBreakdown{
			Transfer: sec(transfer),
			Compute:  sec(compute),
			Penalty:  sec(penalty),
			Fill:     c.PipelineFill,
			Overlap:  c.Overlap,
		},
	}
}

// streamedRows counts, across runtime inputs, the matrix rows that flow
// through the compute pipeline (the TSP slot model) and the number of
// trailing 2-D planes.
func streamedRows(g *graph.Graph) (rows, planes int) {
	for _, n := range g.Inputs {
		if len(n.Shape) < 2 {
			planes++
			rows++
			continue
		}
		rowLen := n.Shape[len(n.Shape)-1]
		if rowLen == 0 {
			continue
		}
		rows += n.Elems() / rowLen
		planes += n.Elems() / (rowLen * n.Shape[len(n.Shape)-2])
	}
	return rows, planes
}

// planeBytes returns the byte size of a node's trailing 2-D plane and
// the number of such planes (0,0 for sub-2-D shapes).
func planeBytes(shape []int) (bytes, planes int) {
	if len(shape) < 2 {
		return 0, 0
	}
	p := 4 * shape[len(shape)-1] * shape[len(shape)-2]
	e := 4
	for _, d := range shape {
		e *= d
	}
	if p == 0 {
		return 0, 0
	}
	return p, e / p
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
