package gpu

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tensor"
)

func prog(t *testing.T, cfg core.Config, op string, n, bd int) *accel.Program {
	t.Helper()
	comp, err := core.NewCompressor(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	var g *graph.Graph
	if op == "compress" {
		g, err = comp.BuildCompressGraph(bd, 3)
	} else {
		g, err = comp.BuildDecompressGraph(bd, 3)
	}
	if err != nil {
		t.Fatal(err)
	}
	p, err := New().Compile(g)
	if err != nil {
		t.Fatalf("%v: %v", cfg, err)
	}
	return p
}

func TestSpecs(t *testing.T) {
	s := New().Specs()
	if s.Name != "A100" || s.Architecture != accel.ArchGPU {
		t.Fatalf("specs %+v", s)
	}
}

func TestFig14Band(t *testing.T) {
	// Fig. 14: "the A100 GPU performs decompression at ≈2.5 GB/s, with
	// little variation across each compression ratio".
	payload := 100 * 3 * 256 * 256 * 4
	var min, max float64
	for cf := 2; cf <= 7; cf++ {
		gbs := prog(t, core.Config{ChopFactor: cf, Serialization: 1}, "decompress", 256, 100).Estimate().ThroughputGBs(payload)
		if min == 0 || gbs < min {
			min = gbs
		}
		if gbs > max {
			max = gbs
		}
	}
	if min < 1.5 || max > 4 {
		t.Fatalf("A100 decompression %.2f–%.2f GB/s outside the ≈2.5 GB/s band", min, max)
	}
	if max/min > 2 {
		t.Fatalf("variation %.2fx larger than 'little variation' permits", max/min)
	}
}

func TestOrderingVsAccelerators(t *testing.T) {
	// §4.2.2: "Both the CS-2 and SN30 RDU outperform the A100, while a
	// single GroqChip and single IPU are outperformed by the A100" —
	// the IPU comparison holds at low CR (its CR-16 decompression beats
	// the GPU, which the paper's scalability remark acknowledges).
	payload := 100 * 3 * 256 * 256 * 4
	gpuT := prog(t, core.Config{ChopFactor: 5, Serialization: 1}, "decompress", 256, 100).Estimate().ThroughputGBs(payload)
	if gpuT < 1.5 || gpuT > 3.5 {
		t.Fatalf("A100 reference point %.2f GB/s", gpuT)
	}
}

func TestGPURunsEverything(t *testing.T) {
	// The A100 compiles all modes — including SG and the 512 cases that
	// kill SN30/GroqChip.
	prog(t, core.Config{ChopFactor: 4, Serialization: 1}, "compress", 512, 100)
	prog(t, core.Config{ChopFactor: 4, Mode: core.ModeSG, Serialization: 1}, "decompress", 32, 100)
	// And it executes functionally.
	comp, err := core.NewCompressor(core.Config{ChopFactor: 4, Serialization: 1}, 32)
	if err != nil {
		t.Fatal(err)
	}
	g, err := comp.BuildCompressGraph(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New().Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(1)
	x := r.Uniform(0, 1, 2, 3, 32, 32)
	outs, _, err := p.Run(map[string]*tensor.Tensor{"A": x})
	if err != nil {
		t.Fatal(err)
	}
	want, err := comp.Compress(x)
	if err != nil {
		t.Fatal(err)
	}
	// Dense graph vs host fast kernel: tolerance, not bit-equality.
	if !outs[0].AllClose(want.Chunks[0], 1e-5) {
		t.Fatal("GPU execution differs from host compressor")
	}
}

func TestBitOpsSupported(t *testing.T) {
	// The GPU is the only platform whose backend has the bit ops VLE
	// needs (§3.1) — the portability contrast the paper draws.
	b := graph.NewBuilder("vle")
	x := b.Input("x", 4, 4)
	b.Output(b.BitAnd(b.BitShift(x, 2), b.Const("mask", tensor.Full(1, 4, 4))))
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New().Compile(g); err != nil {
		t.Fatalf("A100 must compile bit ops: %v", err)
	}
}
