// Package gpu models the NVIDIA A100 (PCIe 4.0) reference platform of
// §4.2.2 "Comparison with GPU". Unlike the dataflow machines, the GPU
// measurement round-trips data over PCIe in both directions, and its
// PyTorch backend supports every operator in the IR, including the
// bitwise ops the AI accelerators lack.
package gpu

import (
	"time"

	"repro/internal/accel"
	"repro/internal/graph"
)

// New returns an A100 device model.
//
// Cost-model calibration (targets from Fig. 14): decompression ≈2.5 GB/s
// with little variation across compression ratios, below the CS-2 and
// SN30 but above a single GroqChip or IPU.
//
//   - Host link 3.2 GB/s effective in each direction, with both the
//     compressed input and the full-size output transferred. The
//     output leg is CR-independent, which is what flattens the curve.
//   - Compute 10 TFLOP/s effective and 10 µs per kernel launch: the
//     matmuls are negligible next to PCIe, as on real hardware.
//
// 80 GB of HBM stands in for the capacity check — no configuration in
// the evaluation comes close, so the A100 never fails to compile.
func New() *accel.Device {
	specs := accel.Specs{
		Name:          "A100",
		ComputeUnits:  6912,
		OnChipMemory:  80 << 30, // 80 GB HBM2e (device memory)
		PerUnitMemory: 192 << 10,
		Software:      []string{"PT", "TF", "CUDA"},
		Architecture:  accel.ArchGPU,
	}
	cost := accel.CostModel{
		HostLinkGBs:         3.2,
		HostLinkLatency:     30 * time.Microsecond,
		CountOutputTransfer: true,
		ComputeGFLOPs:       10000,
		OnChipGBs:           1200,
		KernelOverhead:      10 * time.Microsecond,
		GatherScatterGBs:    200, // HBM-resident index ops are cheap
	}
	support := accel.CommonSupport()
	support[graph.OpGather] = true
	support[graph.OpScatter] = true
	support[graph.OpBitShift] = true
	support[graph.OpBitAnd] = true
	return accel.NewDevice(specs, support, cost, accel.WorkingSetFits(0))
}
