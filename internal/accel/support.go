package accel

import "repro/internal/graph"

// CommonSupport returns the operator set every platform's PyTorch
// backend handles (§3.1): matrix multiplication, reshape, elementwise
// add, constants and inputs. Gather/scatter and the bitwise ops are
// deliberately absent — platforms that support them add them explicitly.
func CommonSupport() map[graph.OpKind]bool {
	return map[graph.OpKind]bool{
		graph.OpInput:       true,
		graph.OpConst:       true,
		graph.OpMatMulRight: true,
		graph.OpMatMulLeft:  true,
		graph.OpReshape:     true,
		graph.OpAdd:         true,
	}
}
