package accel

import (
	"fmt"

	"repro/internal/graph"
)

// This file provides the reusable placement rules the platform packages
// compose. Each rule reproduces one of the compile-failure modes the
// paper reports (§4.2.2): per-memory-unit capacity on the SN30 RDU,
// matrix-width limits on the GroqChip MXM, and whole-chip working-set
// exhaustion.

// MaxPlaneFitsPerUnit fails compilation when any runtime tensor's
// trailing 2-D plane, plus the constant operands of the node that
// produces or consumes it, exceeds one memory unit's capacity. This is
// the SN30 PMU rule: "one PMU has 0.5 MB of space and can hold up to
// one, single-channel 362×362 matrix of 32-bit floating point values"
// (§3.5.1), and compilation of 512×512 fails because "the PMUs cannot
// fit the entire output matrix along with matrices required for
// compression/decompression" (§4.2.2).
func MaxPlaneFitsPerUnit() PlacementRule {
	return func(d *Device, g *graph.Graph) error {
		cap := int(d.specs.PerUnitMemory)
		for _, n := range g.Nodes {
			if n.Kind == graph.OpConst {
				continue
			}
			pb, _ := planeBytes(n.Shape)
			constBytes := 0
			for _, in := range n.Inputs {
				if in.Kind == graph.OpConst {
					constBytes += in.Bytes()
				}
			}
			if pb+constBytes > cap {
				return &CompileError{
					Device: d.specs.Name,
					Graph:  g.Name,
					Reason: fmt.Sprintf("out of memory on-chip: node %d (%s) needs a %d-byte plane plus %d bytes of operand matrices in one %d-byte memory unit", n.ID, n.Kind, pb, constBytes, cap),
				}
			}
		}
		return nil
	}
}

// MaxMatrixDim fails compilation when a matmul operand's matrix
// dimension exceeds the hardware multiplier width — the GroqChip MXM
// handles up to 320×320 operands (§4.2.2, citing Ahmed et al.), so
// 512×512 planes cannot be scheduled.
func MaxMatrixDim(limit int) PlacementRule {
	return func(d *Device, g *graph.Graph) error {
		for _, n := range g.Nodes {
			if n.Kind != graph.OpMatMulLeft && n.Kind != graph.OpMatMulRight {
				continue
			}
			for _, in := range n.Inputs {
				s := in.Shape
				if len(s) < 2 {
					continue
				}
				r, c := s[len(s)-2], s[len(s)-1]
				if r > limit || c > limit {
					return &CompileError{
						Device: d.specs.Name,
						Graph:  g.Name,
						Reason: fmt.Sprintf("matrix operand %dx%d exceeds %dx%d matrix-multiply module limit", r, c, limit, limit),
					}
				}
			}
		}
		return nil
	}
}

// WorkingSetFits fails compilation when the whole graph's resident
// footprint — runtime tensors, constants, and scheduleBytesPerPlane of
// compiler-generated instruction schedule per streamed plane — exceeds
// the chip's total on-chip memory. With a nonzero schedule term this is
// the GroqChip batch-size wall ("fails to compile beyond a batch size of
// 1000 since on-chip memory is exhausted", §4.2.2); with zero it is the
// generic capacity check the IPU and CS-2 apply.
func WorkingSetFits(scheduleBytesPerPlane int) PlacementRule {
	return func(d *Device, g *graph.Graph) error {
		total := 0
		planes := 0
		for _, n := range g.Nodes {
			total += n.Bytes()
			if n.Kind == graph.OpInput {
				_, np := planeBytes(n.Shape)
				planes += np
			}
		}
		total += planes * scheduleBytesPerPlane
		if int64(total) > d.specs.OnChipMemory {
			return &CompileError{
				Device: d.specs.Name,
				Graph:  g.Name,
				Reason: fmt.Sprintf("out of memory on-chip: working set %d bytes (incl. %d planes of instruction schedule) exceeds %d bytes of on-chip memory", total, planes, d.specs.OnChipMemory),
			}
		}
		return nil
	}
}
