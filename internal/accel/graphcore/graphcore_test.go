package graphcore

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/graph"
)

func prog(t *testing.T, cfg core.Config, op string, n, bd int) *accel.Program {
	t.Helper()
	comp, err := core.NewCompressor(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	var g *graph.Graph
	if op == "compress" {
		g, err = comp.BuildCompressGraph(bd, 3)
	} else {
		g, err = comp.BuildDecompressGraph(bd, 3)
	}
	if err != nil {
		t.Fatal(err)
	}
	p, err := New().Compile(g)
	if err != nil {
		t.Fatalf("%s cfg=%v: %v", op, cfg, err)
	}
	return p
}

func chop(cf int) core.Config { return core.Config{ChopFactor: cf, Serialization: 1} }

func TestSpecsMatchTable1(t *testing.T) {
	s := New().Specs()
	if s.Name != "IPU" || s.ComputeUnits != 1472 || s.OnChipMemory != 900<<20 {
		t.Fatalf("specs %+v", s)
	}
	if s.Architecture != accel.ArchMIMD {
		t.Fatal("the IPU is the most MIMD-like architecture")
	}
}

func TestCompressionLeastVariance(t *testing.T) {
	// §4.2.2: "the IPU has the least variance for compression throughput
	// across compression ratios (≈1.2 GB/s)".
	payload := 100 * 3 * 256 * 256 * 4
	var min, max float64
	for cf := 2; cf <= 7; cf++ {
		gbs := prog(t, chop(cf), "compress", 256, 100).Estimate().ThroughputGBs(payload)
		if min == 0 || gbs < min {
			min = gbs
		}
		if gbs > max {
			max = gbs
		}
	}
	if max/min > 1.1 {
		t.Fatalf("compression variance %.2fx (%.2f–%.2f GB/s)", max/min, min, max)
	}
	if min < 0.9 || max > 1.6 {
		t.Fatalf("compression %.2f–%.2f GB/s outside the ≈1.2 GB/s band", min, max)
	}
}

func TestDecompressionScalesWithCR(t *testing.T) {
	// §4.2.2: "significant throughput improvement for higher compression
	// ratios (up to 21 GB/s), while lower compression ratios perform
	// modestly (≈2 GB/s)".
	payload := 100 * 3 * 256 * 256 * 4
	hi := prog(t, chop(2), "decompress", 256, 100).Estimate().ThroughputGBs(payload)
	lo := prog(t, chop(7), "decompress", 256, 100).Estimate().ThroughputGBs(payload)
	if hi < 14 || hi > 25 {
		t.Fatalf("CR 16 decompression %.1f GB/s outside the band", hi)
	}
	if lo < 1 || lo > 3 {
		t.Fatalf("CR 1.31 decompression %.1f GB/s outside the band", lo)
	}
}

func Test512CompilesWithoutSerialization(t *testing.T) {
	// §4.2.3: "The Graphcore IPU successfully ran no-serialization
	// decompression for 512×512 images".
	prog(t, chop(4), "decompress", 512, 100)
	prog(t, chop(4), "compress", 512, 100)
}

func TestNoSerializationOnlySlightlyFaster(t *testing.T) {
	// §4.2.3: at 512×512, no-serialization is "only 1-8% faster" than
	// s=2 on the IPU.
	noSer := prog(t, chop(4), "decompress", 512, 100).Estimate().SimTime
	ser := prog(t, core.Config{ChopFactor: 4, Serialization: 2}, "decompress", 512, 100).Estimate().SimTime
	total := 4 * ser // four chunk runs
	ratio := float64(total) / float64(noSer)
	if ratio < 1.005 || ratio > 1.1 {
		t.Fatalf("s=2 vs s=1 time ratio %.3f; paper reports a 1-8%% gap", ratio)
	}
}

func TestSGCompilesAndCostsThroughput(t *testing.T) {
	// §3.5.2/Fig. 17: the IPU is the platform that runs SG, 1.5–2.7×
	// slower than chop.
	sgCfg := core.Config{ChopFactor: 4, Mode: core.ModeSG, Serialization: 1}
	sg := prog(t, sgCfg, "decompress", 32, 100).Estimate().SimTime
	dc := prog(t, chop(4), "decompress", 32, 100).Estimate().SimTime
	ratio := float64(sg) / float64(dc)
	if ratio < 1.5 || ratio > 2.7 {
		t.Fatalf("SG slowdown %.2f outside the paper's 1.5–2.7x", ratio)
	}
}
