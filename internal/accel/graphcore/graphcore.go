// Package graphcore models one Graphcore IPU: 1472 MIMD tiles with
// 900 MB of on-chip memory distributed evenly across them (§2.1.4). The
// IPU is the only accelerator in the study whose PyTorch backend exposes
// torch.scatter and torch.gather, which is what enables the SG
// optimization (§3.5.2).
package graphcore

import (
	"time"

	"repro/internal/accel"
	"repro/internal/graph"
)

// New returns an IPU device model.
//
// Cost-model calibration (targets from §4.2.2 "IPU"): compression
// ≈1.2 GB/s with the least variance of any platform; decompression from
// ≈2 GB/s at low CR up to 21 GB/s at CR 16; time linear in pixel count
// (the compressor is memory-bound, not compute-bound).
//
//   - Host streaming link 1.3 GB/s effective: compression is bound by
//     loading the full-resolution input (1.3 GB/s ≈ the observed
//     1.2 GB/s after fill), while decompression loads only the
//     compressed planes, so its throughput scales ≈ CR × 1.3 GB/s —
//     19–21 GB/s at CR 16, ≈1.7 GB/s at CR 1.31, matching the spread.
//   - Aggregate tile SRAM bandwidth 500 GB/s effective keeps the
//     compute term small; per-tile exchange costs appear as the 50 µs
//     program fill and 30 µs transfer setup.
//   - Gather/scatter materialize at 0.6 GB/s effective: index-driven
//     exchange traffic across tiles, which is what makes the SG
//     optimization 1.5–2.7× slower than plain DCT+Chop (Fig. 17).
//   - 0.4 ms per compute-set (kernel) covers poplar program and
//     exchange scheduling; it is why running four s=2 chunk programs is
//     1–8% slower than one no-serialization program at 512×512 (§4.2.3)
//     and contributes to the SG variant's extra cost.
//
// Placement: the compiler shards tensors element-wise across tiles, so
// the only capacity limit is the full 900 MB — 512×512 at batch 100
// fits (the paper ran no-serialization 512×512 decompression on the
// IPU), unlike on the SN30 and GroqChip.
func New() *accel.Device {
	specs := accel.Specs{
		Name:          "IPU",
		ComputeUnits:  1472,
		OnChipMemory:  900 << 20, // 900 MB
		PerUnitMemory: 640 << 10, // ≈0.61 MB per tile
		Software:      []string{"TF", "PT", "PopArt"},
		Architecture:  accel.ArchMIMD,
	}
	cost := accel.CostModel{
		HostLinkGBs:      1.3,
		HostLinkLatency:  30 * time.Microsecond,
		ComputeGFLOPs:    30000,
		OnChipGBs:        500,
		PipelineFill:     50 * time.Microsecond,
		KernelOverhead:   400 * time.Microsecond,
		GatherScatterGBs: 0.6,
	}
	support := accel.CommonSupport()
	support[graph.OpGather] = true
	support[graph.OpScatter] = true
	return accel.NewDevice(specs, support, cost, accel.WorkingSetFits(0))
}
