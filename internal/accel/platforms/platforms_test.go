package platforms

import (
	"testing"

	"repro/internal/graph"
)

func TestAcceleratorsTable1Order(t *testing.T) {
	devs := Accelerators()
	want := []string{"CS-2", "SN30", "GroqChip", "IPU"}
	if len(devs) != len(want) {
		t.Fatalf("%d accelerators", len(devs))
	}
	for i, w := range want {
		if devs[i].Name() != w {
			t.Fatalf("position %d: %s, want %s", i, devs[i].Name(), w)
		}
	}
}

func TestAllIncludesGPU(t *testing.T) {
	devs := All()
	if len(devs) != 5 || devs[4].Name() != "A100" {
		t.Fatalf("All() = %v devices, last %s", len(devs), devs[len(devs)-1].Name())
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"CS-2", "SN30", "GroqChip", "IPU", "A100"} {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if ByName("cs-2") != nil {
		t.Error("ByName is case-sensitive like Table 1")
	}
	if ByName("") != nil {
		t.Error("empty name must not match")
	}
}

func TestFreshInstancesPerCall(t *testing.T) {
	// Each call returns fresh devices so callers can't alias state.
	a := Accelerators()
	b := Accelerators()
	for i := range a {
		if a[i] == b[i] {
			t.Fatal("Accelerators must construct fresh devices")
		}
	}
}

func TestOperatorSupportMatrix(t *testing.T) {
	// §3.1/§3.5.2: the portability matrix the paper's design navigates.
	type row struct {
		op       graph.OpKind
		expected map[string]bool
	}
	all := func(v bool) map[string]bool {
		return map[string]bool{"CS-2": v, "SN30": v, "GroqChip": v, "IPU": v, "A100": v}
	}
	matmulEverywhere := all(true)
	gatherScatter := all(false)
	gatherScatter["IPU"] = true
	gatherScatter["A100"] = true
	bitOps := all(false)
	bitOps["A100"] = true
	rows := []row{
		{graph.OpMatMulRight, matmulEverywhere},
		{graph.OpMatMulLeft, matmulEverywhere},
		{graph.OpReshape, matmulEverywhere},
		{graph.OpGather, gatherScatter},
		{graph.OpScatter, gatherScatter},
		{graph.OpBitShift, bitOps},
		{graph.OpBitAnd, bitOps},
	}
	for _, d := range All() {
		for _, r := range rows {
			if got := d.Supports(r.op); got != r.expected[d.Name()] {
				t.Errorf("%s supports %v = %v, want %v", d.Name(), r.op, got, r.expected[d.Name()])
			}
		}
	}
}
