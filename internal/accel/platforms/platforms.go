// Package platforms aggregates the five device models so harnesses and
// examples can iterate "across four state-of-the-art AI accelerators"
// (plus the A100 reference) the way the paper's evaluation does.
package platforms

import (
	"repro/internal/accel"
	"repro/internal/accel/cerebras"
	"repro/internal/accel/gpu"
	"repro/internal/accel/graphcore"
	"repro/internal/accel/groq"
	"repro/internal/accel/sambanova"
)

// Accelerators returns the four AI accelerators of Table 1 in the
// paper's column order: CS-2, SN30, GroqChip, IPU.
func Accelerators() []*accel.Device {
	return []*accel.Device{cerebras.New(), sambanova.New(), groq.New(), graphcore.New()}
}

// All returns the accelerators plus the A100 GPU reference.
func All() []*accel.Device {
	return append(Accelerators(), gpu.New())
}

// ByName returns the device with the given name (case-sensitive, as in
// Table 1: "CS-2", "SN30", "GroqChip", "IPU", "A100"), or nil.
func ByName(name string) *accel.Device {
	for _, d := range All() {
		if d.Name() == name {
			return d
		}
	}
	return nil
}
