package accel_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/accel"
	"repro/internal/accel/gpu"
	"repro/internal/accel/graphcore"
	"repro/internal/accel/groq"
	"repro/internal/core"
	"repro/internal/graph"
)

// decompressShard builds the standard Fig. 11 decompression graph for a
// per-device shard of the 100×3×256×256 workload.
func decompressShard(t *testing.T, cf, n int) func(int) (*graph.Graph, error) {
	t.Helper()
	return func(shardBatch int) (*graph.Graph, error) {
		comp, err := core.NewCompressor(core.Config{ChopFactor: cf, Serialization: 1}, n)
		if err != nil {
			return nil, err
		}
		return comp.BuildDecompressGraph(shardBatch, 3)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := accel.NewCluster(graphcore.New(), 0, 0); err == nil {
		t.Fatal("size 0 must be rejected")
	}
	c, err := accel.NewCluster(graphcore.New(), 4, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "4x IPU" {
		t.Fatalf("Name = %q", c.Name())
	}
	if _, err := c.CompileSharded(102, decompressShard(t, 4, 256)); err == nil {
		t.Fatal("uneven shard must be rejected")
	} else if !strings.Contains(err.Error(), "shard") {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestClusterSpeedsUpLinearly(t *testing.T) {
	// 4 IPUs on a 100-batch workload should approach 4× a single IPU
	// (transfer-bound, minus sync).
	single, err := accel.NewCluster(graphcore.New(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	quad, err := accel.NewCluster(graphcore.New(), 4, 100*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := single.CompileSharded(100, decompressShard(t, 7, 256))
	if err != nil {
		t.Fatal(err)
	}
	p4, err := quad.CompileSharded(100, decompressShard(t, 7, 256))
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(p1.Estimate().SimTime) / float64(p4.Estimate().SimTime)
	if speedup < 3 || speedup > 4.1 {
		t.Fatalf("4-IPU speedup %.2f, want ≈4 (transfer-bound workload)", speedup)
	}
	// Aggregate accounting scales with members.
	if p4.Estimate().HostToDeviceBytes != 4*p4.Member().Estimate().HostToDeviceBytes {
		t.Fatal("cluster H2D bytes must aggregate members")
	}
}

func TestScalabilityBeatsGPU(t *testing.T) {
	// §4.2.2: a single GroqChip/IPU loses to the A100, but their
	// deployed form factors (GroqNode ×8, Bow-Pod64 ×64) win.
	payload := 100 * 3 * 256 * 256 * 4
	gpuProg, err := gpu.New().Compile(mustGraph(t, 7, 256, 100))
	if err != nil {
		t.Fatal(err)
	}
	gpuGBs := gpuProg.Estimate().ThroughputGBs(payload)

	singleIPU, err := accel.NewCluster(graphcore.New(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := singleIPU.CompileSharded(100, decompressShard(t, 7, 256))
	if err != nil {
		t.Fatal(err)
	}
	if p1.Estimate().ThroughputGBs(payload) >= gpuGBs {
		t.Fatalf("single IPU should lose to the A100 at CR 1.31")
	}

	pod, err := accel.NewCluster(graphcore.New(), 4, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := pod.CompileSharded(100, decompressShard(t, 7, 256))
	if err != nil {
		t.Fatal(err)
	}
	if p4.Estimate().ThroughputGBs(payload) <= gpuGBs {
		t.Fatalf("4 IPUs (%.2f GB/s) should beat the A100 (%.2f GB/s)", p4.Estimate().ThroughputGBs(payload), gpuGBs)
	}

	node, err := accel.NewCluster(groq.New(), 8, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := node.CompileSharded(96, decompressShard(t, 2, 256))
	if err != nil {
		t.Fatal(err)
	}
	if pg.Estimate().SimTime <= 0 {
		t.Fatal("GroqNode estimate must be positive")
	}
}

func TestClusterMembersStillHitDeviceWalls(t *testing.T) {
	// Sharding reduces the batch but not the resolution: 512×512 still
	// fails on every GroqChip in the node (static-shape walls are
	// per-device).
	node, err := accel.NewCluster(groq.New(), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.CompileSharded(96, decompressShard(t, 4, 512)); err == nil {
		t.Fatal("512 must fail on each member")
	}
}

func mustGraph(t *testing.T, cf, n, bd int) *graph.Graph {
	t.Helper()
	comp, err := core.NewCompressor(core.Config{ChopFactor: cf, Serialization: 1}, n)
	if err != nil {
		t.Fatal(err)
	}
	g, err := comp.BuildDecompressGraph(bd, 3)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCostBreakdownExplainsTotal(t *testing.T) {
	for _, d := range []*accel.Device{graphcore.New(), gpu.New(), groq.New()} {
		p, err := d.Compile(mustGraph(t, 4, 256, 100))
		if err != nil {
			t.Fatal(err)
		}
		st := p.Estimate()
		b := st.Breakdown
		var want time.Duration
		if b.Overlap {
			want = b.Fill + maxDur(b.Transfer, b.Compute) + b.Penalty
		} else {
			want = b.Fill + b.Transfer + b.Compute + b.Penalty
		}
		if diff := st.SimTime - want; diff > time.Microsecond || diff < -time.Microsecond {
			t.Errorf("%s: breakdown sums to %v, SimTime %v", d.Name(), want, st.SimTime)
		}
	}
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
