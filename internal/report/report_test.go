package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := New("Fig. X", "device", "CR", "GB/s")
	t.Add("CS-2", 4.0, 22.31234)
	t.Add("IPU", float32(16), "COMPILE FAIL")
	return t
}

func TestWriteToAlignsColumns(t *testing.T) {
	var sb strings.Builder
	if _, err := sample().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "== Fig. X ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, separator, 2 rows → 5? title+header+sep+2 = 5
		if len(lines) != 5 {
			t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
		}
	}
	// Columns align: every data line has the header's column starts.
	header := lines[1]
	crCol := strings.Index(header, "CR")
	for _, line := range lines[3:] {
		if len(line) <= crCol {
			t.Fatalf("row shorter than header: %q", line)
		}
	}
	if !strings.Contains(out, "22.31") {
		t.Fatalf("float formatting missing: %s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := sample().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if lines[0] != "device,CR,GB/s" {
		t.Fatalf("CSV header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "CS-2,4,") {
		t.Fatalf("CSV row %q", lines[1])
	}
}

func TestEmptyTable(t *testing.T) {
	tb := New("", "a", "b")
	var sb strings.Builder
	if _, err := tb.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "==") {
		t.Fatal("untitled table must not render a title banner")
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("t", "v")
	tb.Add(3.14159265)
	tb.Add(1e-7)
	var sb strings.Builder
	if _, err := tb.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "3.142") {
		t.Fatalf("want 4-sig-fig float: %s", sb.String())
	}
}
