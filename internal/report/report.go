// Package report renders the experiment harnesses' results as aligned
// text tables (for the terminal) and CSV (for plotting), one table per
// paper figure or table.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is an ordered set of rows under fixed headers.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New returns an empty table.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; cells are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// WriteTo renders the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// WriteCSV emits the table as CSV with the headers first.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
