package models

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// UNet is the slstr_cloud segmentation network: a two-level U-shaped
// encoder-decoder with channel-concatenation skip connections, emitting
// one logit per pixel. It implements nn.Layer, so it composes with the
// same trainer as the sequential models.
type UNet struct {
	enc1, enc2, mid *nn.Sequential
	pool1, pool2    *nn.MaxPool2d
	up2, up1        *nn.Upsample2x
	dec2, dec1      *nn.Sequential
	head            *nn.Conv2d

	c1, c2 int // skip channel widths
}

// NewUNet builds a UNet for inC input channels with base width w.
func NewUNet(rng *tensor.RNG, inC, w int) *UNet {
	u := &UNet{c1: w, c2: 2 * w}
	u.enc1 = nn.NewSequential(nn.NewConv2d(rng, "u.e1", inC, w, 3, 1, 1), nn.NewReLU())
	u.pool1 = nn.NewMaxPool2d(2)
	u.enc2 = nn.NewSequential(nn.NewConv2d(rng, "u.e2", w, 2*w, 3, 1, 1), nn.NewReLU())
	u.pool2 = nn.NewMaxPool2d(2)
	u.mid = nn.NewSequential(nn.NewConv2d(rng, "u.mid", 2*w, 4*w, 3, 1, 1), nn.NewReLU())
	u.up2 = nn.NewUpsample2x()
	u.dec2 = nn.NewSequential(nn.NewConv2d(rng, "u.d2", 6*w, 2*w, 3, 1, 1), nn.NewReLU())
	u.up1 = nn.NewUpsample2x()
	u.dec1 = nn.NewSequential(nn.NewConv2d(rng, "u.d1", 3*w, w, 3, 1, 1), nn.NewReLU())
	u.head = nn.NewConv2d(rng, "u.head", w, 1, 1, 1, 0)
	return u
}

// Forward computes per-pixel logits [BD, 1, n, n].
func (u *UNet) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	s1 := u.enc1.Forward(x, train) // [_, w, n, n]
	p1 := u.pool1.Forward(s1, train)
	s2 := u.enc2.Forward(p1, train) // [_, 2w, n/2, n/2]
	p2 := u.pool2.Forward(s2, train)
	m := u.mid.Forward(p2, train)     // [_, 4w, n/4, n/4]
	up2 := u.up2.Forward(m, train)    // [_, 4w, n/2, n/2]
	d2in := catChannels(s2, up2)      // [_, 6w, ...]
	d2 := u.dec2.Forward(d2in, train) // [_, 2w, n/2, n/2]
	up1 := u.up1.Forward(d2, train)   // [_, 2w, n, n]
	d1in := catChannels(s1, up1)      // [_, 3w, n, n]
	d1 := u.dec1.Forward(d1in, train) // [_, w, n, n]
	return u.head.Forward(d1, train)  // [_, 1, n, n]
}

// Backward propagates through the U, splitting gradients at each skip
// concatenation and summing them where the paths rejoin.
func (u *UNet) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := u.head.Backward(grad)
	g = u.dec1.Backward(g)
	gSkip1, gUp1 := splitChannels(g, u.c1)
	g = u.up1.Backward(gUp1)
	g = u.dec2.Backward(g)
	gSkip2, gUp2 := splitChannels(g, u.c2)
	g = u.up2.Backward(gUp2)
	g = u.mid.Backward(g)
	g = u.pool2.Backward(g)
	g = g.Add(gSkip2)
	g = u.enc2.Backward(g)
	g = u.pool1.Backward(g)
	g = g.Add(gSkip1)
	return u.enc1.Backward(g)
}

// Params returns every sub-module's parameters.
func (u *UNet) Params() []*nn.Param {
	var ps []*nn.Param
	for _, s := range []*nn.Sequential{u.enc1, u.enc2, u.mid, u.dec2, u.dec1} {
		ps = append(ps, s.Params()...)
	}
	return append(ps, u.head.Params()...)
}

// catChannels concatenates two [BD, C, H, W] tensors along the channel
// dimension (a first, then b).
func catChannels(a, b *tensor.Tensor) *tensor.Tensor {
	bd, ca, h, w := a.Dim(0), a.Dim(1), a.Dim(2), a.Dim(3)
	cb := b.Dim(1)
	out := tensor.New(bd, ca+cb, h, w)
	plane := h * w
	for s := 0; s < bd; s++ {
		aOff := s * ca * plane
		bOff := s * cb * plane
		oOff := s * (ca + cb) * plane
		copy(out.Data()[oOff:oOff+ca*plane], a.Data()[aOff:aOff+ca*plane])
		copy(out.Data()[oOff+ca*plane:oOff+(ca+cb)*plane], b.Data()[bOff:bOff+cb*plane])
	}
	return out
}

// splitChannels is the inverse of catChannels: it splits grad into the
// first ca channels and the rest.
func splitChannels(grad *tensor.Tensor, ca int) (*tensor.Tensor, *tensor.Tensor) {
	bd, c, h, w := grad.Dim(0), grad.Dim(1), grad.Dim(2), grad.Dim(3)
	cb := c - ca
	a := tensor.New(bd, ca, h, w)
	b := tensor.New(bd, cb, h, w)
	plane := h * w
	for s := 0; s < bd; s++ {
		gOff := s * c * plane
		copy(a.Data()[s*ca*plane:(s+1)*ca*plane], grad.Data()[gOff:gOff+ca*plane])
		copy(b.Data()[s*cb*plane:(s+1)*cb*plane], grad.Data()[gOff+ca*plane:gOff+c*plane])
	}
	return a, b
}
