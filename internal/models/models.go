// Package models builds the four benchmark networks of Table 3 —
// classify (residual CNN à la ResNet34), em_denoise (deep
// encoder-decoder), optical_damage (autoencoder) and slstr_cloud (UNet)
// — scaled to widths that train on a CPU-only Go substrate. The
// architectures keep the paper's topologies (residual blocks with
// projection shortcuts, strided encoders with upsampling decoders, UNet
// skip connections); DESIGN.md documents the width/epoch scaling.
package models

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// TestConfig is a Table 3 row.
type TestConfig struct {
	Test         string
	Dataset      string
	Task         string
	Network      string
	SampleSize   string
	BatchSize    int
	LearningRate float64
}

// Table3 returns the paper's benchmark configurations.
func Table3() []TestConfig {
	return []TestConfig{
		{"classify", "CIFAR10", "Classify images into 10 classes", "ResNet34", "3x32x32", 100, 0.001},
		{"em_denoise", "em_graphene_sim", "Denoise electron micrographs", "Deep Encoder-Decoder", "1x256x256", 32, 0.0005},
		{"optical_damage", "optical_damage_ds1", "Reconstruct laser optics images", "Autoencoder", "1x200x200", 2, 0.0005},
		{"slstr_cloud", "cloud_slstr_ds1", "Identify pixels that are clouds", "UNet", "9x256x256", 4, 0.0005},
	}
}

// basicBlock is a two-convolution residual block; stride > 1 downsamples
// and adds a 1×1 projection shortcut, as in ResNet.
func basicBlock(rng *tensor.RNG, name string, in, out, stride int) *nn.Residual {
	body := nn.NewSequential(
		nn.NewConv2d(rng, name+".c1", in, out, 3, stride, 1),
		nn.NewBatchNorm2d(name+".bn1", out),
		nn.NewReLU(),
		nn.NewConv2d(rng, name+".c2", out, out, 3, 1, 1),
		nn.NewBatchNorm2d(name+".bn2", out),
	)
	var proj *nn.Conv2d
	if stride != 1 || in != out {
		proj = nn.NewConv2d(rng, name+".proj", in, out, 1, stride, 0)
	}
	return nn.NewResidual(body, proj)
}

// NewResNetS builds the classify network: a scaled-down ResNet (stem +
// three residual stages + global average pooling + linear head) for
// 3×32×32 inputs and the given class count.
func NewResNetS(rng *tensor.RNG, classes int) *nn.Sequential {
	return nn.NewSequential(
		nn.NewConv2d(rng, "stem", 3, 8, 3, 1, 1),
		nn.NewBatchNorm2d("stem.bn", 8),
		nn.NewReLU(),
		basicBlock(rng, "s1", 8, 8, 1),
		nn.NewReLU(),
		basicBlock(rng, "s2", 8, 16, 2), // 16×16
		nn.NewReLU(),
		basicBlock(rng, "s3", 16, 32, 2), // 8×8
		nn.NewReLU(),
		nn.NewGlobalAvgPool(),
		nn.NewFlatten(),
		nn.NewLinear(rng, "head", 32, classes),
	)
}

// NewEncDec builds the em_denoise network: a deep encoder-decoder that
// maps a noisy 1×n×n micrograph to its clean version.
func NewEncDec(rng *tensor.RNG) *nn.Sequential {
	return nn.NewSequential(
		nn.NewConv2d(rng, "e1", 1, 8, 3, 1, 1),
		nn.NewReLU(),
		nn.NewMaxPool2d(2),
		nn.NewConv2d(rng, "e2", 8, 16, 3, 1, 1),
		nn.NewReLU(),
		nn.NewMaxPool2d(2),
		nn.NewConv2d(rng, "mid", 16, 16, 3, 1, 1),
		nn.NewReLU(),
		nn.NewUpsample2x(),
		nn.NewConv2d(rng, "d2", 16, 8, 3, 1, 1),
		nn.NewReLU(),
		nn.NewUpsample2x(),
		nn.NewConv2d(rng, "d1", 8, 1, 3, 1, 1),
	)
}

// NewAutoencoder builds the optical_damage network: an autoencoder with
// a spatial bottleneck, trained to reconstruct healthy beam images so
// damaged inputs reconstruct poorly (high MSE flags damage).
func NewAutoencoder(rng *tensor.RNG) *nn.Sequential {
	return nn.NewSequential(
		nn.NewConv2d(rng, "e1", 1, 8, 3, 2, 1), // n/2
		nn.NewReLU(),
		nn.NewConv2d(rng, "e2", 8, 4, 3, 2, 1), // n/4 bottleneck
		nn.NewReLU(),
		nn.NewUpsample2x(),
		nn.NewConv2d(rng, "d2", 4, 8, 3, 1, 1),
		nn.NewReLU(),
		nn.NewUpsample2x(),
		nn.NewConv2d(rng, "d1", 8, 1, 3, 1, 1),
		nn.NewSigmoid(),
	)
}
