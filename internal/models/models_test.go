package models

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestTable3(t *testing.T) {
	rows := Table3()
	if len(rows) != 4 {
		t.Fatalf("Table3 rows = %d", len(rows))
	}
	if rows[0].Test != "classify" || rows[0].BatchSize != 100 || rows[0].LearningRate != 0.001 {
		t.Fatalf("classify row %+v", rows[0])
	}
	if rows[3].Network != "UNet" || rows[3].BatchSize != 4 {
		t.Fatalf("slstr_cloud row %+v", rows[3])
	}
}

func TestResNetSShapes(t *testing.T) {
	rng := tensor.NewRNG(1)
	m := NewResNetS(rng, 10)
	x := rng.Uniform(0, 1, 4, 3, 32, 32)
	y := m.Forward(x, true)
	if y.Dim(0) != 4 || y.Dim(1) != 10 {
		t.Fatalf("ResNetS output %v", y.Shape())
	}
	if m.ParamCount() < 1000 {
		t.Fatalf("ResNetS too small: %d params", m.ParamCount())
	}
}

func TestResNetSBackwardShapes(t *testing.T) {
	rng := tensor.NewRNG(2)
	m := NewResNetS(rng, 10)
	x := rng.Uniform(0, 1, 2, 3, 32, 32)
	logits := m.Forward(x, true)
	_, grad := nn.SoftmaxCrossEntropy(logits, []int{1, 7})
	m.ZeroGrad()
	dx := m.Backward(grad)
	if !dx.SameShape(x) {
		t.Fatalf("input grad shape %v", dx.Shape())
	}
	nonzero := 0
	for _, p := range m.Params() {
		if p.Grad.MaxAbs() > 0 {
			nonzero++
		}
	}
	if nonzero < len(m.Params())/2 {
		t.Fatalf("only %d/%d params received gradient", nonzero, len(m.Params()))
	}
}

func TestEncDecPreservesShape(t *testing.T) {
	rng := tensor.NewRNG(3)
	m := NewEncDec(rng)
	x := rng.Uniform(0, 1, 2, 1, 32, 32)
	y := m.Forward(x, true)
	if !y.SameShape(x) {
		t.Fatalf("EncDec output %v, want %v", y.Shape(), x.Shape())
	}
}

func TestAutoencoderPreservesShape(t *testing.T) {
	rng := tensor.NewRNG(4)
	m := NewAutoencoder(rng)
	x := rng.Uniform(0, 1, 2, 1, 32, 32)
	y := m.Forward(x, true)
	if !y.SameShape(x) {
		t.Fatalf("Autoencoder output %v", y.Shape())
	}
	// Sigmoid output in (0,1).
	if y.Min() <= 0 || y.Max() >= 1 {
		t.Fatalf("Autoencoder output range [%g,%g]", y.Min(), y.Max())
	}
}

func TestUNetShapes(t *testing.T) {
	rng := tensor.NewRNG(5)
	u := NewUNet(rng, 9, 4)
	x := rng.Uniform(0, 1, 2, 9, 16, 16)
	y := u.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 1 || y.Dim(2) != 16 || y.Dim(3) != 16 {
		t.Fatalf("UNet output %v", y.Shape())
	}
}

func TestUNetGradCheck(t *testing.T) {
	// Full finite-difference check through the skip connections: the
	// concat/split bookkeeping is the riskiest part of the UNet.
	rng := tensor.NewRNG(6)
	u := NewUNet(rng, 2, 2)
	x := rng.Uniform(0.1, 1, 1, 2, 8, 8)
	target := rng.Uniform(0, 1, 1, 1, 8, 8)
	target.ApplyInPlace(func(v float32) float32 {
		if v > 0.5 {
			return 1
		}
		return 0
	})
	forward := func() float64 {
		loss, _ := nn.MSELoss(u.Forward(x, true), target)
		return loss
	}
	loss0 := forward()
	_ = loss0
	_, grad := nn.MSELoss(u.Forward(x, true), target)
	for _, p := range u.Params() {
		p.Grad.Zero()
	}
	u.Backward(grad)
	eps := 1e-2
	checked := 0
	for _, p := range u.Params() {
		for _, ix := range []int{0, p.Value.Len() / 2} {
			orig := p.Value.Data()[ix]
			p.Value.Data()[ix] = orig + float32(eps)
			lp := forward()
			p.Value.Data()[ix] = orig - float32(eps)
			lm := forward()
			p.Value.Data()[ix] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(p.Grad.Data()[ix])
			// ReLU kinks make some positions noisy; require agreement
			// when the numeric gradient is meaningfully large.
			if math.Abs(numeric) > 1e-3 {
				if math.Abs(numeric-analytic) > 0.35*math.Abs(numeric)+1e-4 {
					t.Errorf("%s[%d]: analytic %g vs numeric %g", p.Name, ix, analytic, numeric)
				}
				checked++
			}
		}
	}
	if checked < 4 {
		t.Fatalf("only %d gradient positions were informative", checked)
	}
}

func TestCatSplitChannelsRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(7)
	a := rng.Uniform(-1, 1, 2, 3, 4, 4)
	b := rng.Uniform(-1, 1, 2, 5, 4, 4)
	cat := catChannels(a, b)
	if cat.Dim(1) != 8 {
		t.Fatalf("cat channels %v", cat.Shape())
	}
	a2, b2 := splitChannels(cat, 3)
	if !a2.Equal(a) || !b2.Equal(b) {
		t.Fatal("splitChannels(catChannels) is not identity")
	}
}

func TestUNetLearnsCloudMask(t *testing.T) {
	// End-to-end: a tiny UNet must beat chance on synthetic cloud
	// segmentation within a few steps.
	rng := tensor.NewRNG(8)
	u := NewUNet(rng, 3, 4)
	gen := datagen.NewCloudSeg(1, 16, 3)
	opt := nn.NewAdam(0.01)
	var loss float64
	for step := 0; step < 30; step++ {
		scenes, masks := gen.Batch(8)
		logits := u.Forward(scenes, true)
		var grad *tensor.Tensor
		loss, grad = nn.BCEWithLogits(logits, masks)
		for _, p := range u.Params() {
			p.Grad.Zero()
		}
		u.Backward(grad)
		opt.Step(u.Params())
	}
	if loss > 0.45 {
		t.Fatalf("UNet did not learn: BCE %g (chance ≈ 0.69)", loss)
	}
}
