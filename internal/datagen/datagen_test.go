package datagen

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

func TestTable2(t *testing.T) {
	rows := Table2()
	if len(rows) != 4 {
		t.Fatalf("Table2 has %d rows, want 4", len(rows))
	}
	if rows[0].Name != "ILSVRC 2012-17" || rows[3].Task != "Pixel Segmentation" {
		t.Fatalf("Table2 content wrong: %+v", rows)
	}
}

func TestClassifyDeterministic(t *testing.T) {
	a, la := NewClassify(42, 32, 10).Batch(8)
	b, lb := NewClassify(42, 32, 10).Batch(8)
	if !a.Equal(b) {
		t.Fatal("same seed must reproduce images")
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("same seed must reproduce labels")
		}
	}
}

func TestClassifyShapesAndLabels(t *testing.T) {
	g := NewClassify(1, 32, 10)
	x, labels := g.Batch(20)
	shape := x.Shape()
	if shape[0] != 20 || shape[1] != 3 || shape[2] != 32 || shape[3] != 32 {
		t.Fatalf("batch shape %v", shape)
	}
	seen := map[int]bool{}
	for _, l := range labels {
		if l < 0 || l >= 10 {
			t.Fatalf("label %d out of range", l)
		}
		seen[l] = true
	}
	if len(seen) < 3 {
		t.Fatalf("only %d distinct labels in 20 samples", len(seen))
	}
	if x.Min() < -1 || x.Max() > 2 {
		t.Fatalf("pixel range [%g, %g] implausible", x.Min(), x.Max())
	}
}

func TestClassifyClassesAreSeparable(t *testing.T) {
	// Same-class samples must be closer (on average) than cross-class
	// samples in raw pixel space — a proxy for learnability.
	g := NewClassify(7, 32, 10)
	byClass := map[int][]*tensor.Tensor{}
	for len(byClass[0]) < 3 || len(byClass[1]) < 3 {
		x, labels := g.Batch(20)
		for i, l := range labels {
			if l <= 1 {
				byClass[l] = append(byClass[l], x.Index(i).Clone())
			}
		}
	}
	same := metrics.MSE(byClass[0][0], byClass[0][1]) + metrics.MSE(byClass[1][0], byClass[1][1])
	cross := metrics.MSE(byClass[0][0], byClass[1][0]) + metrics.MSE(byClass[0][1], byClass[1][1])
	if same >= cross {
		t.Fatalf("same-class MSE %g not below cross-class %g", same, cross)
	}
}

func TestDenoisePairs(t *testing.T) {
	g := NewDenoise(3, 64)
	noisy, clean := g.Batch(4)
	if !noisy.SameShape(clean) {
		t.Fatal("noisy/clean shapes differ")
	}
	if noisy.Equal(clean) {
		t.Fatal("noise must actually be added")
	}
	// The clean lattice is bounded; noise spreads the range.
	if clean.Max() > 1.2 || clean.Min() < -0.2 {
		t.Fatalf("clean range [%g,%g]", clean.Min(), clean.Max())
	}
	mse := metrics.MSE(noisy, clean)
	if mse < 0.01 || mse > 0.3 {
		t.Fatalf("noise MSE %g outside plausible band", mse)
	}
}

func TestDenoiseNoiseIsHighFrequency(t *testing.T) {
	// The injected noise must be more damaged by DCT+Chop than the
	// lattice signal is — the property behind the paper's observation
	// that compression *improves* em_denoise loss.
	g := NewDenoise(5, 32)
	noisy, clean := g.Batch(4)
	c, err := core.NewCompressor(core.Config{ChopFactor: 4, Serialization: 1}, 32)
	if err != nil {
		t.Fatal(err)
	}
	rtNoisy, err := c.RoundTrip(noisy)
	if err != nil {
		t.Fatal(err)
	}
	// Compressing the noisy image must move it *closer* to the clean
	// signal: chop removes the high-frequency noise band.
	if metrics.MSE(rtNoisy, clean) >= metrics.MSE(noisy, clean) {
		t.Fatalf("chop did not denoise: MSE after %g, before %g",
			metrics.MSE(rtNoisy, clean), metrics.MSE(noisy, clean))
	}
}

func TestOpticalDamage(t *testing.T) {
	g := NewOptical(9, 64)
	healthy := g.Batch(3)
	damaged := NewOptical(9, 64).DamagedBatch(3)
	if healthy.SameShape(damaged) == false {
		t.Fatal("shape mismatch")
	}
	// Damage darkens: damaged mean below healthy mean.
	if damaged.Mean() >= healthy.Mean() {
		t.Fatalf("damaged mean %g not below healthy %g", damaged.Mean(), healthy.Mean())
	}
	// Beam is centered: central pixel much brighter than corners.
	b := healthy.Index(0).Index(0)
	if b.At2(32, 32) < 4*b.At2(0, 0)+0.01 {
		t.Fatalf("beam profile implausible: center %g corner %g", b.At2(32, 32), b.At2(0, 0))
	}
}

func TestCloudSegMasksMatchScenes(t *testing.T) {
	g := NewCloudSeg(11, 32, 3)
	scenes, masks := g.Batch(6)
	if scenes.Dim(1) != 3 || masks.Dim(1) != 1 {
		t.Fatalf("shapes %v / %v", scenes.Shape(), masks.Shape())
	}
	// Masks are binary.
	for _, v := range masks.Data() {
		if v != 0 && v != 1 {
			t.Fatalf("mask value %g not binary", v)
		}
	}
	// Cloud pixels are brighter than clear pixels in every channel.
	var cloudSum, clearSum float64
	var cloudN, clearN int
	for b := 0; b < 6; b++ {
		for i := 0; i < 32; i++ {
			for j := 0; j < 32; j++ {
				v := float64(scenes.At4(b, 0, i, j))
				if masks.At4(b, 0, i, j) == 1 {
					cloudSum += v
					cloudN++
				} else {
					clearSum += v
					clearN++
				}
			}
		}
	}
	if cloudN == 0 || clearN == 0 {
		t.Fatal("degenerate masks: need both cloud and clear pixels")
	}
	if cloudSum/float64(cloudN) <= clearSum/float64(clearN) {
		t.Fatal("cloud pixels must be brighter than clear pixels")
	}
	// Cloud fraction plausible (not empty, not everything).
	frac := float64(cloudN) / float64(cloudN+clearN)
	if frac < 0.02 || frac > 0.9 {
		t.Fatalf("cloud fraction %g implausible", frac)
	}
}

func TestGeneratorsProduceFiniteValues(t *testing.T) {
	check := func(name string, ts ...*tensor.Tensor) {
		for _, x := range ts {
			for _, v := range x.Data() {
				if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
					t.Fatalf("%s produced non-finite value", name)
				}
			}
		}
	}
	x, _ := NewClassify(1, 16, 10).Batch(2)
	check("classify", x)
	n, c := NewDenoise(1, 16).Batch(2)
	check("denoise", n, c)
	check("optical", NewOptical(1, 16).Batch(2), NewOptical(1, 16).DamagedBatch(2))
	s, m := NewCloudSeg(1, 16, 9).Batch(2)
	check("cloudseg", s, m)
}
