// Package datagen generates the deterministic synthetic datasets that
// stand in for the paper's benchmarks (Table 2/3): a CIFAR10-like
// 10-class image set (classify), graphene electron micrographs with
// injected noise (em_denoise), laser-optics beam images with damage
// artifacts (optical_damage), and multi-channel remote-sensing fields
// with per-pixel cloud masks (slstr_cloud).
//
// Every generator is seeded and procedural: the same seed reproduces
// the same dataset bit-for-bit, which keeps the accuracy experiments of
// Figs. 7/8/9/16 exactly reproducible. The generators are built so that
// the structure a model must learn lives in low spatial frequencies
// (orientation, large-scale shape) while the nuisance content is
// high-frequency — the same statistics that make DCT compaction work on
// the paper's natural and scientific images.
package datagen

import (
	"math"

	"repro/internal/tensor"
)

// DatasetInfo is a Table 2 row.
type DatasetInfo struct {
	Name       string
	SizeGB     float64 // size of the dataset the paper used
	Type       string
	Task       string
	SampleSize string
}

// Table2 lists the paper's benchmark datasets; the harness prints it for
// reference alongside each synthetic stand-in.
func Table2() []DatasetInfo {
	return []DatasetInfo{
		{"ILSVRC 2012-17", 167.62, "General Images", "Classification", "3x256x256"},
		{"em_graphene_sim", 5, "Electron Micrographs", "Denoising", "1x256x256"},
		{"optical_damage_ds1", 27, "Laser Optics", "Reconstruction", "3x492x656"},
		{"cloud_slstr_ds1", 187, "Remote Sensing", "Pixel Segmentation", "3x1200x1500"},
	}
}

// Classify generates a 10-class image dataset in which each class is a
// distinct oriented-grating pattern with a class-specific color balance —
// a learnable synthetic stand-in for CIFAR10.
type Classify struct {
	rng     *tensor.RNG
	n       int
	classes int
}

// NewClassify returns a generator of classes-way n×n RGB images.
func NewClassify(seed uint64, n, classes int) *Classify {
	return &Classify{rng: tensor.NewRNG(seed), n: n, classes: classes}
}

// Classes returns the number of classes.
func (c *Classify) Classes() int { return c.classes }

// Batch returns bd images [bd, 3, n, n] with values in roughly [0,1]
// and their labels.
func (c *Classify) Batch(bd int) (*tensor.Tensor, []int) {
	x := tensor.New(bd, 3, c.n, c.n)
	labels := make([]int, bd)
	for b := 0; b < bd; b++ {
		label := c.rng.Intn(c.classes)
		labels[b] = label
		c.render(x, b, label)
	}
	return x, labels
}

// render draws one sample of the given class into x[b]. The class
// determines grating orientation, spatial frequency and the dominant
// color channel; phase and noise vary per sample.
func (c *Classify) render(x *tensor.Tensor, b, label int) {
	theta := math.Pi * float64(label) / float64(c.classes)
	freq := 2 + float64(label%3)
	phase := c.rng.Float64() * 2 * math.Pi
	dom := label % 3
	nf := float64(c.n)
	for ch := 0; ch < 3; ch++ {
		amp := 0.15
		if ch == dom {
			amp = 0.4
		}
		offset := 0.5 + 0.1*float64((label+ch)%3-1)
		for i := 0; i < c.n; i++ {
			for j := 0; j < c.n; j++ {
				u := (float64(i)*math.Cos(theta) + float64(j)*math.Sin(theta)) / nf
				v := offset + amp*math.Sin(2*math.Pi*freq*u+phase) +
					0.08*c.rng.Norm()
				x.Set4(float32(v), b, ch, i, j)
			}
		}
	}
}

// Denoise generates (noisy, clean) pairs of graphene-like electron
// micrographs: the clean signal is the classic three-beam interference
// lattice (cosine waves 60° apart), the noise is Gaussian plus speckle —
// exactly the high-frequency content DCT+Chop removes, which is why
// compression can *improve* the em_denoise benchmark (§4.2.1).
type Denoise struct {
	rng *tensor.RNG
	n   int
	// NoiseStd is the Gaussian noise level (default 0.25).
	NoiseStd float64
}

// NewDenoise returns a generator of 1×n×n micrograph pairs.
func NewDenoise(seed uint64, n int) *Denoise {
	return &Denoise{rng: tensor.NewRNG(seed), n: n, NoiseStd: 0.25}
}

// Batch returns matched noisy and clean tensors of shape [bd, 1, n, n].
func (d *Denoise) Batch(bd int) (noisy, clean *tensor.Tensor) {
	noisy = tensor.New(bd, 1, d.n, d.n)
	clean = tensor.New(bd, 1, d.n, d.n)
	for b := 0; b < bd; b++ {
		orient := d.rng.Float64() * math.Pi / 3
		k := 4 + 2*d.rng.Float64() // lattice spatial frequency
		var phases [3]float64
		for m := range phases {
			phases[m] = d.rng.Float64() * 2 * math.Pi
		}
		nf := float64(d.n)
		for i := 0; i < d.n; i++ {
			for j := 0; j < d.n; j++ {
				var s float64
				for m := 0; m < 3; m++ {
					a := orient + float64(m)*math.Pi/3
					s += math.Cos(2*math.Pi*k*(float64(i)*math.Cos(a)+float64(j)*math.Sin(a))/nf + phases[m])
				}
				v := 0.5 + s/6
				clean.Set4(float32(v), b, 0, i, j)
				nz := d.NoiseStd * d.rng.Norm()
				// Speckle: occasional hot pixels, as in electron imaging.
				if d.rng.Float64() < 0.01 {
					nz += 0.8
				}
				noisy.Set4(float32(v+nz), b, 0, i, j)
			}
		}
	}
	return noisy, clean
}

// Optical generates laser-optics beam images: a Gaussian beam envelope
// modulated by diffraction rings. Healthy images are what the
// optical_damage autoencoder trains on; DamagedBatch adds the streak
// and spot artifacts whose reconstructions show high MSE at test time.
type Optical struct {
	rng *tensor.RNG
	n   int
}

// NewOptical returns a generator of 1×n×n beam images.
func NewOptical(seed uint64, n int) *Optical {
	return &Optical{rng: tensor.NewRNG(seed), n: n}
}

// Batch returns bd healthy beam images [bd, 1, n, n].
func (o *Optical) Batch(bd int) *tensor.Tensor {
	x := tensor.New(bd, 1, o.n, o.n)
	for b := 0; b < bd; b++ {
		o.renderBeam(x, b)
	}
	return x
}

// DamagedBatch returns beam images with damage artifacts superimposed.
func (o *Optical) DamagedBatch(bd int) *tensor.Tensor {
	x := o.Batch(bd)
	for b := 0; b < bd; b++ {
		o.addDamage(x, b)
	}
	return x
}

func (o *Optical) renderBeam(x *tensor.Tensor, b int) {
	nf := float64(o.n)
	cx := nf/2 + o.rng.Norm()*nf/20
	cy := nf/2 + o.rng.Norm()*nf/20
	sigma := nf / 4 * (0.9 + 0.2*o.rng.Float64())
	ringF := 6 + 3*o.rng.Float64()
	for i := 0; i < o.n; i++ {
		for j := 0; j < o.n; j++ {
			r2 := (float64(i)-cx)*(float64(i)-cx) + (float64(j)-cy)*(float64(j)-cy)
			r := math.Sqrt(r2)
			env := math.Exp(-r2 / (2 * sigma * sigma))
			rings := 1 + 0.25*math.Cos(2*math.Pi*ringF*r/nf)
			v := env*rings + 0.02*o.rng.Norm()
			x.Set4(float32(v), b, 0, i, j)
		}
	}
}

func (o *Optical) addDamage(x *tensor.Tensor, b int) {
	// A handful of dark spots (sites) and one streak (scratch).
	spots := 2 + o.rng.Intn(4)
	for s := 0; s < spots; s++ {
		ci := o.rng.Intn(o.n)
		cj := o.rng.Intn(o.n)
		rad := 1 + o.rng.Intn(o.n/16+1)
		for i := max(0, ci-rad); i < min(o.n, ci+rad); i++ {
			for j := max(0, cj-rad); j < min(o.n, cj+rad); j++ {
				di, dj := i-ci, j-cj
				if di*di+dj*dj <= rad*rad {
					x.Set4(x.At4(b, 0, i, j)*0.2, b, 0, i, j)
				}
			}
		}
	}
	row := o.rng.Intn(o.n)
	for j := 0; j < o.n; j++ {
		x.Set4(x.At4(b, 0, row, j)*0.4, b, 0, row, j)
	}
}

// CloudSeg generates multi-channel remote-sensing scenes plus per-pixel
// cloud masks for the slstr_cloud segmentation benchmark: each channel
// is a smooth "surface radiance" field; clouds are smooth blobs that
// brighten every channel where present, and the mask is their support.
type CloudSeg struct {
	rng      *tensor.RNG
	n        int
	channels int
}

// NewCloudSeg returns a generator of channels×n×n scenes.
func NewCloudSeg(seed uint64, n, channels int) *CloudSeg {
	return &CloudSeg{rng: tensor.NewRNG(seed), n: n, channels: channels}
}

// Channels returns the scene channel count.
func (c *CloudSeg) Channels() int { return c.channels }

// Batch returns scenes [bd, C, n, n] and binary masks [bd, 1, n, n].
func (c *CloudSeg) Batch(bd int) (scenes, masks *tensor.Tensor) {
	scenes = tensor.New(bd, c.channels, c.n, c.n)
	masks = tensor.New(bd, 1, c.n, c.n)
	nf := float64(c.n)
	for b := 0; b < bd; b++ {
		// Cloud field: sum of a few Gaussian blobs, thresholded.
		type blob struct{ cx, cy, sig, amp float64 }
		blobs := make([]blob, 2+c.rng.Intn(3))
		for i := range blobs {
			blobs[i] = blob{
				cx:  c.rng.Float64() * nf,
				cy:  c.rng.Float64() * nf,
				sig: nf / 8 * (0.7 + c.rng.Float64()),
				amp: 0.7 + 0.6*c.rng.Float64(),
			}
		}
		// Surface: per-channel low-frequency sinusoid mix.
		type wave struct{ fx, fy, ph, amp float64 }
		surf := make([][]wave, c.channels)
		for ch := range surf {
			surf[ch] = make([]wave, 3)
			for w := range surf[ch] {
				surf[ch][w] = wave{
					fx:  (c.rng.Float64() - 0.5) * 4,
					fy:  (c.rng.Float64() - 0.5) * 4,
					ph:  c.rng.Float64() * 2 * math.Pi,
					amp: 0.1 + 0.1*c.rng.Float64(),
				}
			}
		}
		for i := 0; i < c.n; i++ {
			for j := 0; j < c.n; j++ {
				var cloud float64
				for _, bl := range blobs {
					d2 := (float64(i)-bl.cx)*(float64(i)-bl.cx) + (float64(j)-bl.cy)*(float64(j)-bl.cy)
					cloud += bl.amp * math.Exp(-d2/(2*bl.sig*bl.sig))
				}
				isCloud := cloud > 0.5
				if isCloud {
					masks.Set4(1, b, 0, i, j)
				}
				for ch := 0; ch < c.channels; ch++ {
					v := 0.35
					for _, w := range surf[ch] {
						v += w.amp * math.Sin(2*math.Pi*(w.fx*float64(i)+w.fy*float64(j))/nf+w.ph)
					}
					if isCloud {
						// Clouds are bright and channel-flat.
						v = 0.8 + 0.15*(cloud-0.5) + 0.02*c.rng.Norm()
					} else {
						v += 0.02 * c.rng.Norm()
					}
					scenes.Set4(float32(v), b, ch, i, j)
				}
			}
		}
	}
	return scenes, masks
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
