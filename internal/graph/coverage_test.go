package graph

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestOpKindStrings(t *testing.T) {
	for k, want := range map[OpKind]string{
		OpInput:       "input",
		OpConst:       "const",
		OpMatMulRight: "matmul",
		OpMatMulLeft:  "matmul_left",
		OpGather:      "gather",
		OpScatter:     "scatter",
		OpReshape:     "reshape",
		OpAdd:         "add",
		OpBitShift:    "bitshift",
		OpBitAnd:      "bitand",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if OpKind(99).String() != "op(99)" {
		t.Errorf("unknown op renders %q", OpKind(99).String())
	}
}

func TestMatMulLeftFLOPs(t *testing.T) {
	b := NewBuilder("f")
	w := b.Const("w", tensor.New(4, 8))
	x := b.Input("x", 2, 3, 8, 5)
	y := b.MatMulLeft(w, x)
	b.Output(y)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// 2·batch·m·k·cols = 2·6·4·8·5.
	want := 2.0 * 6 * 4 * 8 * 5
	if g.TotalFLOPs() != want {
		t.Fatalf("FLOPs = %g, want %g", g.TotalFLOPs(), want)
	}
}

func TestAddFLOPsAndExec(t *testing.T) {
	b := NewBuilder("add")
	x := b.Input("x", 2, 3)
	y := b.Input("y", 2, 3)
	sum := b.Add(x, y)
	if sum.FLOPs() != 6 {
		t.Fatalf("add FLOPs = %g", sum.FLOPs())
	}
	b.Output(sum)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(1)
	xt, yt := r.Uniform(-1, 1, 2, 3), r.Uniform(-1, 1, 2, 3)
	outs, err := g.Execute(map[string]*tensor.Tensor{"x": xt, "y": yt})
	if err != nil {
		t.Fatal(err)
	}
	if !outs[0].Equal(xt.Add(yt)) {
		t.Fatal("add execution wrong")
	}
}

func TestBitAndExec(t *testing.T) {
	b := NewBuilder("bitand")
	x := b.Input("x", 4)
	mask := b.Const("mask", tensor.Full(math.Float32frombits(0xFFFFFFFF), 4))
	b.Output(b.BitAnd(x, mask))
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.FromSlice([]float32{1.5, -2.25, 0, 7}, 4)
	outs, err := g.Execute(map[string]*tensor.Tensor{"x": in})
	if err != nil {
		t.Fatal(err)
	}
	// AND with all-ones mask is identity on the bit pattern.
	if !outs[0].Equal(in) {
		t.Fatalf("bitand with all-ones mask changed data: %v", outs[0].Data())
	}
	// AND with zero mask clears everything.
	b2 := NewBuilder("bitand0")
	x2 := b2.Input("x", 4)
	zero := b2.Const("mask", tensor.New(4))
	b2.Output(b2.BitAnd(x2, zero))
	g2, err := b2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	outs2, err := g2.Execute(map[string]*tensor.Tensor{"x": in})
	if err != nil {
		t.Fatal(err)
	}
	if outs2[0].MaxAbs() != 0 {
		t.Fatal("bitand with zero mask must clear")
	}
}

func TestBitShiftLeftExec(t *testing.T) {
	b := NewBuilder("shl")
	x := b.Input("x", 2)
	b.Output(b.BitShift(x, 1))
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.FromSlice([]float32{1, 2}, 2)
	outs, err := g.Execute(map[string]*tensor.Tensor{"x": in})
	if err != nil {
		t.Fatal(err)
	}
	// Left shift of the float bits doubles the exponent field's
	// contribution for these power-of-two values: 1<<1 bitwise gives a
	// larger-magnitude pattern than the input.
	for i, v := range outs[0].Data() {
		bits := math.Float32bits(in.Data()[i]) << 1
		if v != math.Float32frombits(bits) {
			t.Fatalf("bitshift-left result %g, want bit pattern %#x", v, bits)
		}
	}
}
