package graph

import (
	"strings"
	"testing"

	"repro/internal/tensor"
)

func buildSimple(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("simple")
	x := b.Input("x", 2, 3, 4, 4)
	w := b.Const("w", tensor.Eye(4))
	y := b.MatMulRight(x, w)
	b.Output(y)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderShapeInference(t *testing.T) {
	b := NewBuilder("shapes")
	x := b.Input("x", 2, 3, 8, 8)
	lhs := b.Const("lhs", tensor.New(4, 8))
	rhs := b.Const("rhs", tensor.New(8, 4))
	y1 := b.MatMulLeft(lhs, x)
	if y1.Shape[2] != 4 || y1.Shape[3] != 8 {
		t.Fatalf("matmul_left shape %v", y1.Shape)
	}
	y2 := b.MatMulRight(y1, rhs)
	if y2.Shape[2] != 4 || y2.Shape[3] != 4 {
		t.Fatalf("matmul shape %v", y2.Shape)
	}
	flat := b.Reshape(y2, 2, 3, 16)
	g := b.Gather(flat, []int{0, 5, 10})
	if g.Shape[2] != 3 {
		t.Fatalf("gather shape %v", g.Shape)
	}
	s := b.Scatter(g, []int{0, 5, 10}, 16)
	if s.Shape[2] != 16 {
		t.Fatalf("scatter shape %v", s.Shape)
	}
	b.Output(s)
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderErrorsLatch(t *testing.T) {
	b := NewBuilder("bad")
	x := b.Input("x", 2, 4)
	w := b.Const("w", tensor.New(5, 3)) // inner dim mismatch
	y := b.MatMulRight(x, w)
	b.Output(y)
	if _, err := b.Finish(); err == nil {
		t.Fatal("mismatched matmul must fail Finish")
	} else if !strings.Contains(err.Error(), "inner dims") {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestBuilderRequiresOutput(t *testing.T) {
	b := NewBuilder("noout")
	b.Input("x", 2)
	if _, err := b.Finish(); err == nil {
		t.Fatal("graph without outputs must fail")
	}
}

func TestBuilderRejectsBadInputs(t *testing.T) {
	cases := []func(b *Builder){
		func(b *Builder) { b.Input("x", -1) },
		func(b *Builder) { b.Gather(b.Input("x", 2, 3), []int{3}) },
		func(b *Builder) { b.Scatter(b.Input("x", 2, 3), []int{0, 1, 5}, 4) },
		func(b *Builder) { b.Reshape(b.Input("x", 2, 3), 7) },
		func(b *Builder) { b.Add(b.Input("x", 2), b.Input("y", 3)) },
	}
	for i, f := range cases {
		b := NewBuilder("bad")
		f(b)
		b.Output(b.Input("z", 1))
		if _, err := b.Finish(); err == nil {
			t.Fatalf("case %d: expected builder error", i)
		}
	}
}

func TestExecuteMatchesTensorOps(t *testing.T) {
	r := tensor.NewRNG(1)
	lhsT := r.Uniform(-1, 1, 4, 8)
	rhsT := lhsT.Transpose()

	b := NewBuilder("compress-like")
	x := b.Input("A", 2, 3, 8, 8)
	lhs := b.Const("LHS", lhsT)
	rhs := b.Const("RHS", rhsT)
	b.Output(b.MatMulRight(b.MatMulLeft(lhs, x), rhs))
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}

	a := r.Uniform(-1, 1, 2, 3, 8, 8)
	outs, err := g.Execute(map[string]*tensor.Tensor{"A": a})
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.BatchedMatMul(tensor.BatchedMatMulLeft(lhsT, a), rhsT)
	if d := outs[0].MaxAbsDiff(want); d > 1e-6 {
		t.Fatalf("graph execution deviates from direct ops by %g", d)
	}
}

func TestExecuteGatherScatterAddReshape(t *testing.T) {
	r := tensor.NewRNG(2)
	b := NewBuilder("gsa")
	x := b.Input("x", 2, 6)
	idx := []int{5, 1, 3}
	g1 := b.Gather(x, idx)
	s1 := b.Scatter(g1, idx, 6)
	sum := b.Add(x, s1)
	b.Output(b.Reshape(sum, 3, 4))
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	xt := r.Uniform(-1, 1, 2, 6)
	outs, err := g.Execute(map[string]*tensor.Tensor{"x": xt})
	if err != nil {
		t.Fatal(err)
	}
	want := xt.Add(tensor.ScatterLast(tensor.GatherLast(xt, idx), idx, 6)).Reshape(3, 4)
	if !outs[0].Equal(want) {
		t.Fatal("gather/scatter/add/reshape chain wrong")
	}
}

func TestExecuteStaticShapeContract(t *testing.T) {
	g := buildSimple(t)
	r := tensor.NewRNG(3)
	// Wrong shape must be rejected: compiled tensor sizes are static.
	if _, err := g.Execute(map[string]*tensor.Tensor{"x": r.Uniform(0, 1, 2, 3, 8, 8)}); err == nil {
		t.Fatal("shape mismatch must fail Execute")
	}
	// Missing input must be rejected.
	if _, err := g.Execute(nil); err == nil {
		t.Fatal("missing input must fail Execute")
	}
}

func TestExecuteBitOps(t *testing.T) {
	b := NewBuilder("bits")
	x := b.Input("x", 4)
	b.Output(b.BitShift(x, -1))
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.FromSlice([]float32{2, 4, 8, 16}, 4)
	outs, err := g.Execute(map[string]*tensor.Tensor{"x": in})
	if err != nil {
		t.Fatal(err)
	}
	// Right-shifting a float's bits by 1 halves the exponent field's
	// contribution — for powers of two with zero mantissa this yields a
	// positive value smaller than the input.
	for i := range in.Data() {
		if outs[0].Data()[i] >= in.Data()[i] || outs[0].Data()[i] <= 0 {
			t.Fatalf("bitshift output %v not plausible", outs[0].Data())
		}
	}
}

func TestFLOPAccounting(t *testing.T) {
	b := NewBuilder("flops")
	x := b.Input("x", 10, 3, 16, 8) // 30 matrices of 16×8
	w := b.Const("w", tensor.New(8, 4))
	b.Output(b.MatMulRight(x, w))
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 * 30 * 16 * 8 * 4
	if g.TotalFLOPs() != want {
		t.Fatalf("TotalFLOPs = %g, want %g", g.TotalFLOPs(), want)
	}
}

func TestByteAccounting(t *testing.T) {
	g := buildSimple(t)
	if g.InputBytes() != 4*2*3*4*4 {
		t.Fatalf("InputBytes = %d", g.InputBytes())
	}
	if g.OutputBytes() != 4*2*3*4*4 {
		t.Fatalf("OutputBytes = %d", g.OutputBytes())
	}
	if g.ConstBytes() != 4*16 {
		t.Fatalf("ConstBytes = %d", g.ConstBytes())
	}
	counts := g.OpCounts()
	if counts[OpMatMulRight] != 1 || counts[OpInput] != 1 || counts[OpConst] != 1 {
		t.Fatalf("OpCounts = %v", counts)
	}
}
