package graph

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Execute evaluates the graph on the host tensor engine. Inputs are
// bound by name; every declared input must be supplied with exactly the
// compiled shape (the static-shape contract all four accelerator
// compilers impose). Returns one tensor per declared output.
func (g *Graph) Execute(inputs map[string]*tensor.Tensor) ([]*tensor.Tensor, error) {
	vals := make([]*tensor.Tensor, len(g.Nodes))
	for _, in := range g.Inputs {
		t, ok := inputs[in.Name]
		if !ok {
			return nil, fmt.Errorf("graph %q: missing input %q", g.Name, in.Name)
		}
		if !shapeEq(t.Shape(), in.Shape) {
			return nil, fmt.Errorf("graph %q: input %q has shape %v, compiled for %v (tensor sizes are fixed at compile time)", g.Name, in.Name, t.Shape(), in.Shape)
		}
		vals[in.ID] = t
	}
	for _, n := range g.Nodes {
		if vals[n.ID] != nil {
			continue // input already bound
		}
		v, err := evalNode(n, vals)
		if err != nil {
			return nil, fmt.Errorf("graph %q node %d (%s): %w", g.Name, n.ID, n.Kind, err)
		}
		vals[n.ID] = v
	}
	outs := make([]*tensor.Tensor, len(g.Outputs))
	for i, o := range g.Outputs {
		outs[i] = vals[o.ID]
	}
	return outs, nil
}

func evalNode(n *Node, vals []*tensor.Tensor) (*tensor.Tensor, error) {
	in := func(i int) *tensor.Tensor { return vals[n.Inputs[i].ID] }
	switch n.Kind {
	case OpConst:
		return n.Value, nil
	case OpMatMulRight:
		return tensor.BatchedMatMul(in(0), in(1)), nil
	case OpMatMulLeft:
		return tensor.BatchedMatMulLeft(in(0), in(1)), nil
	case OpGather:
		return tensor.GatherLast(in(0), n.Indices), nil
	case OpScatter:
		return tensor.ScatterLast(in(0), n.Indices, n.K), nil
	case OpReshape:
		return in(0).Reshape(n.Shape...), nil
	case OpAdd:
		return in(0).Add(in(1)), nil
	case OpBitShift:
		// Reinterpret the float32 bits as uint32 and shift — the packing
		// primitive VLE encoders need. Host execution supports it; the
		// accelerator compilers reject it before Run is ever reached.
		out := in(0).Clone()
		d := out.Data()
		for i, v := range d {
			bits := math.Float32bits(v)
			if n.K >= 0 {
				bits <<= uint(n.K)
			} else {
				bits >>= uint(-n.K)
			}
			d[i] = math.Float32frombits(bits)
		}
		return out, nil
	case OpBitAnd:
		x, m := in(0), in(1)
		if x.Len() != m.Len() {
			return nil, fmt.Errorf("bitand operand sizes %d vs %d", x.Len(), m.Len())
		}
		out := x.Clone()
		d, md := out.Data(), m.Data()
		for i := range d {
			d[i] = math.Float32frombits(math.Float32bits(d[i]) & math.Float32bits(md[i]))
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unknown op kind %v", n.Kind)
	}
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
