// Package graph provides the static computation-graph IR that the
// accelerator simulators compile. Every platform in the paper (§3.1
// "Tensor Sizes") converts models to computation graphs whose tensor
// sizes must be known at compile time; this package enforces exactly
// that: shapes are inferred when a node is added and are immutable
// afterwards, so a compiled program can never see a differently-shaped
// tensor.
//
// The op vocabulary is deliberately the compressor's vocabulary — batched
// matmul against compile-time constants, gather/scatter with compile-time
// indices, reshape — plus the bit-manipulation ops (shift/and) that
// variable-length encoders need, which exist here so device compilers can
// *reject* them the way the real PyTorch backends do (§3.1
// "Programmability and Operator Support").
package graph

import (
	"fmt"

	"repro/internal/tensor"
)

// OpKind enumerates the graph operators.
type OpKind int

const (
	// OpInput is a runtime-bound input tensor.
	OpInput OpKind = iota
	// OpConst is a compile-time constant (the fused LHS/RHS matrices).
	OpConst
	// OpMatMulRight computes x × W for constant-or-node W: batched over
	// the leading dimensions of x.
	OpMatMulRight
	// OpMatMulLeft computes W × x batched over x's leading dimensions.
	OpMatMulLeft
	// OpGather gathers along the last dimension with compile-time indices.
	OpGather
	// OpScatter scatters along the last dimension into width K.
	OpScatter
	// OpReshape reinterprets the shape (element count preserved).
	OpReshape
	// OpAdd is elementwise addition of two equal-shaped nodes.
	OpAdd
	// OpBitShift is a per-element integer bit shift. No AI accelerator
	// in the paper supports it from PyTorch; it exists so compilation
	// fails in the right place for VLE-style encoders.
	OpBitShift
	// OpBitAnd is a per-element integer AND, unsupported like OpBitShift.
	OpBitAnd
)

var opNames = map[OpKind]string{
	OpInput:       "input",
	OpConst:       "const",
	OpMatMulRight: "matmul",
	OpMatMulLeft:  "matmul_left",
	OpGather:      "gather",
	OpScatter:     "scatter",
	OpReshape:     "reshape",
	OpAdd:         "add",
	OpBitShift:    "bitshift",
	OpBitAnd:      "bitand",
}

func (k OpKind) String() string {
	if s, ok := opNames[k]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Node is one operator instance with a fixed output shape.
type Node struct {
	ID      int
	Kind    OpKind
	Name    string
	Inputs  []*Node
	Shape   []int
	Value   *tensor.Tensor // OpConst payload
	Indices []int          // OpGather/OpScatter compile-time indices
	K       int            // OpScatter target width; OpBitShift amount
}

// Elems returns the number of elements in the node's output.
func (n *Node) Elems() int {
	e := 1
	for _, d := range n.Shape {
		e *= d
	}
	return e
}

// Bytes returns the output footprint at 4 bytes per element.
func (n *Node) Bytes() int { return 4 * n.Elems() }

// FLOPs returns the floating-point work of evaluating this node once.
func (n *Node) FLOPs() float64 {
	switch n.Kind {
	case OpMatMulRight:
		// x [..., m, k] × W [k, n]: 2mkn per trailing matrix.
		x, w := n.Inputs[0], n.Inputs[1]
		m := x.Shape[len(x.Shape)-2]
		k := x.Shape[len(x.Shape)-1]
		batch := x.Elems() / (m * k)
		return 2 * float64(batch) * float64(m) * float64(k) * float64(w.Shape[1])
	case OpMatMulLeft:
		w, x := n.Inputs[0], n.Inputs[1]
		k := x.Shape[len(x.Shape)-2]
		cols := x.Shape[len(x.Shape)-1]
		batch := x.Elems() / (k * cols)
		return 2 * float64(batch) * float64(w.Shape[0]) * float64(k) * float64(cols)
	case OpAdd:
		return float64(n.Elems())
	default:
		return 0
	}
}

// Graph is an ordered DAG of nodes: Inputs feed the body, Outputs name
// the results. Nodes are stored in construction (topological) order.
type Graph struct {
	Name    string
	Nodes   []*Node
	Inputs  []*Node
	Outputs []*Node
}

// Builder constructs graphs with shape inference; the first error is
// latched and reported by Finish.
type Builder struct {
	g   *Graph
	err error
}

// NewBuilder returns a Builder for a graph with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{g: &Graph{Name: name}}
}

func (b *Builder) fail(format string, args ...any) *Node {
	if b.err == nil {
		b.err = fmt.Errorf("graph %q: "+format, append([]any{b.g.Name}, args...)...)
	}
	// Return a placeholder so construction can continue; Finish reports.
	return &Node{ID: -1, Shape: []int{0}}
}

func (b *Builder) add(n *Node) *Node {
	n.ID = len(b.g.Nodes)
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

// Input declares a runtime input of fixed shape.
func (b *Builder) Input(name string, shape ...int) *Node {
	for _, d := range shape {
		if d <= 0 {
			return b.fail("input %q has non-positive dimension in %v", name, shape)
		}
	}
	n := b.add(&Node{Kind: OpInput, Name: name, Shape: append([]int(nil), shape...)})
	b.g.Inputs = append(b.g.Inputs, n)
	return n
}

// Const embeds a compile-time constant tensor.
func (b *Builder) Const(name string, v *tensor.Tensor) *Node {
	return b.add(&Node{Kind: OpConst, Name: name, Shape: v.Shape(), Value: v})
}

// MatMulRight returns x × w (batched over x's leading dims).
func (b *Builder) MatMulRight(x, w *Node) *Node {
	if len(x.Shape) < 2 || len(w.Shape) != 2 {
		return b.fail("matmul needs [...,m,k] × [k,n], got %v × %v", x.Shape, w.Shape)
	}
	k := x.Shape[len(x.Shape)-1]
	if w.Shape[0] != k {
		return b.fail("matmul inner dims %v × %v", x.Shape, w.Shape)
	}
	shape := append([]int(nil), x.Shape...)
	shape[len(shape)-1] = w.Shape[1]
	return b.add(&Node{Kind: OpMatMulRight, Inputs: []*Node{x, w}, Shape: shape})
}

// MatMulLeft returns w × x (batched over x's leading dims).
func (b *Builder) MatMulLeft(w, x *Node) *Node {
	if len(x.Shape) < 2 || len(w.Shape) != 2 {
		return b.fail("matmul_left needs [m,k] × [...,k,n], got %v × %v", w.Shape, x.Shape)
	}
	if w.Shape[1] != x.Shape[len(x.Shape)-2] {
		return b.fail("matmul_left inner dims %v × %v", w.Shape, x.Shape)
	}
	shape := append([]int(nil), x.Shape...)
	shape[len(shape)-2] = w.Shape[0]
	return b.add(&Node{Kind: OpMatMulLeft, Inputs: []*Node{w, x}, Shape: shape})
}

// Gather gathers along the last dimension with compile-time indices.
func (b *Builder) Gather(x *Node, indices []int) *Node {
	if len(x.Shape) == 0 {
		return b.fail("gather on scalar")
	}
	k := x.Shape[len(x.Shape)-1]
	for _, ix := range indices {
		if ix < 0 || ix >= k {
			return b.fail("gather index %d out of [0,%d)", ix, k)
		}
	}
	shape := append([]int(nil), x.Shape...)
	shape[len(shape)-1] = len(indices)
	return b.add(&Node{Kind: OpGather, Inputs: []*Node{x}, Shape: shape, Indices: append([]int(nil), indices...)})
}

// Scatter scatters x's last dimension to width k at the given indices.
func (b *Builder) Scatter(x *Node, indices []int, k int) *Node {
	if len(x.Shape) == 0 || x.Shape[len(x.Shape)-1] != len(indices) {
		return b.fail("scatter needs last dim == len(indices)")
	}
	for _, ix := range indices {
		if ix < 0 || ix >= k {
			return b.fail("scatter index %d out of [0,%d)", ix, k)
		}
	}
	shape := append([]int(nil), x.Shape...)
	shape[len(shape)-1] = k
	return b.add(&Node{Kind: OpScatter, Inputs: []*Node{x}, Shape: shape, Indices: append([]int(nil), indices...), K: k})
}

// Reshape reinterprets x's shape.
func (b *Builder) Reshape(x *Node, shape ...int) *Node {
	e := 1
	for _, d := range shape {
		if d <= 0 {
			return b.fail("reshape to non-positive dim %v", shape)
		}
		e *= d
	}
	if e != x.Elems() {
		return b.fail("reshape %v → %v changes element count", x.Shape, shape)
	}
	return b.add(&Node{Kind: OpReshape, Inputs: []*Node{x}, Shape: append([]int(nil), shape...)})
}

// Add returns x + y elementwise.
func (b *Builder) Add(x, y *Node) *Node {
	if fmt.Sprint(x.Shape) != fmt.Sprint(y.Shape) {
		return b.fail("add shape mismatch %v vs %v", x.Shape, y.Shape)
	}
	return b.add(&Node{Kind: OpAdd, Inputs: []*Node{x, y}, Shape: append([]int(nil), x.Shape...)})
}

// BitShift declares an integer bit shift by k (semantically on the
// float bits reinterpreted as int32, as a VLE packing step would do).
func (b *Builder) BitShift(x *Node, k int) *Node {
	return b.add(&Node{Kind: OpBitShift, Inputs: []*Node{x}, Shape: append([]int(nil), x.Shape...), K: k})
}

// BitAnd declares an integer AND against a constant mask node.
func (b *Builder) BitAnd(x, mask *Node) *Node {
	return b.add(&Node{Kind: OpBitAnd, Inputs: []*Node{x, mask}, Shape: append([]int(nil), x.Shape...)})
}

// Output marks a node as a graph output.
func (b *Builder) Output(n *Node) {
	if n.ID < 0 {
		b.fail("output of failed node")
		return
	}
	b.g.Outputs = append(b.g.Outputs, n)
}

// Finish returns the constructed graph or the first construction error.
func (b *Builder) Finish() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.g.Outputs) == 0 {
		return nil, fmt.Errorf("graph %q: no outputs", b.g.Name)
	}
	return b.g, nil
}

// TotalFLOPs sums the floating-point work of one execution.
func (g *Graph) TotalFLOPs() float64 {
	var f float64
	for _, n := range g.Nodes {
		f += n.FLOPs()
	}
	return f
}

// InputBytes sums the runtime input footprints (host→device traffic).
func (g *Graph) InputBytes() int {
	b := 0
	for _, n := range g.Inputs {
		b += n.Bytes()
	}
	return b
}

// OutputBytes sums the output footprints (device→host traffic).
func (g *Graph) OutputBytes() int {
	b := 0
	for _, n := range g.Outputs {
		b += n.Bytes()
	}
	return b
}

// ConstBytes sums the compile-time constant footprints (the fused
// matrices that must be resident on-chip).
func (g *Graph) ConstBytes() int {
	b := 0
	for _, n := range g.Nodes {
		if n.Kind == OpConst {
			b += n.Bytes()
		}
	}
	return b
}

// OpCounts tallies nodes by kind (the device compilers' support check
// and the kernel-count term of the cost models).
func (g *Graph) OpCounts() map[OpKind]int {
	m := make(map[OpKind]int)
	for _, n := range g.Nodes {
		m[n.Kind]++
	}
	return m
}
