//go:build !race

package entropy

const raceEnabled = false
