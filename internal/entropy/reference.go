package entropy

import (
	"encoding/binary"
	"fmt"
)

// This file is the slow, obviously-correct bit-serial implementation of
// the package's block format, kept as the equivalence oracle for the
// table-driven fast path — the same idiom as core.CompressDense for the
// fast DCT kernel. ReferenceCompress produces byte-identical output to
// Compress, and ReferenceDecompress accepts exactly the inputs
// Decompress accepts (the two may differ only in error wording). The
// shared format-defining pieces — histogram/normalize, tableLogFor,
// spreadStep, the block framing constants — are reused directly; the
// state machine itself is re-derived from first principles: explicit
// symbol tables, per-bit I/O, linear searches instead of packed lookup
// tables.

// ReferenceCompress encodes src with the bit-serial oracle encoder. The
// output is byte-identical to Compress(nil, src).
func ReferenceCompress(src []byte) []byte {
	var dst []byte
	for len(src) > 0 {
		n := len(src)
		if n > maxBlock {
			n = maxBlock
		}
		dst = refCompressBlock(dst, src[:n])
		src = src[n:]
	}
	return dst
}

// refTable is the oracle's explicit view of one normalized table: the
// spread symbol at every position and, per position, which occurrence
// x ∈ [freq, 2·freq) of that symbol it represents.
type refTable struct {
	size int
	tsym []uint8
	occ  []int // occ[p] = freq(tsym[p]) + (# earlier positions of tsym[p])
	// positions of each symbol in ascending table order; the (q-freq)-th
	// entry is the encode successor state for quotient q.
	posOf [256][]int
	freq  [256]int
}

// buildRefTable spreads the normalized counts exactly as the fast path
// does and derives the occurrence bookkeeping by plain counting.
func buildRefTable(st *scratch, nsym, tableLog int) *refTable {
	size := 1 << tableLog
	t := &refTable{size: size, tsym: make([]uint8, size), occ: make([]int, size)}
	step := spreadStep(size)
	pos := 0
	for i := 0; i < nsym; i++ {
		sym := st.syms[i]
		t.freq[sym] = int(st.norm[sym])
		for c := 0; c < int(st.norm[sym]); c++ {
			t.tsym[pos&(size-1)] = sym
			pos = (pos + step) & (size - 1)
		}
	}
	seen := make([]int, 256)
	for p := 0; p < size; p++ {
		sym := t.tsym[p]
		t.occ[p] = t.freq[sym] + seen[sym]
		t.posOf[sym] = append(t.posOf[sym], p)
		seen[sym]++
	}
	return t
}

// refBits collects single bits and packs them MSB-first, zero-padded to
// a byte — the Writer's layout, one bit at a time.
type refBits struct{ bits []uint8 }

func (b *refBits) writeBits(v uint64, width int) {
	for k := width - 1; k >= 0; k-- {
		b.bits = append(b.bits, uint8(v>>uint(k))&1)
	}
}

func (b *refBits) pack() []byte {
	out := make([]byte, (len(b.bits)+7)/8)
	for i, bit := range b.bits {
		out[i/8] |= bit << (7 - uint(i%8))
	}
	return out
}

func refCompressBlock(dst, block []byte) []byte {
	st := new(scratch)
	nsym := st.histogram(block)
	if nsym == 1 {
		dst = appendBlockHeader(dst, modeRLE, len(block))
		return append(dst, block[0])
	}
	if len(block) < minCompressBlock {
		dst = appendBlockHeader(dst, modeRaw, len(block))
		return append(dst, block...)
	}

	tableLog := tableLogFor(len(block), nsym)
	size := 1 << tableLog
	st.sized(size, len(block))
	st.normalize(len(block), nsym, tableLog)
	t := buildRefTable(st, nsym, tableLog)

	// Encode backwards, alternating two states by symbol-index parity.
	// Each step shifts the state down until the quotient q lands in
	// [freq, 2·freq), emits the shifted-out bits, and steps to the
	// table position representing (symbol, q).
	type chunk struct {
		v  uint64
		nb int
	}
	var chunks []chunk
	v0, v1 := size*2-1, size*2-1
	for i := len(block) - 1; i >= 0; i-- {
		sym := block[i]
		v := &v0
		if i&1 == 1 {
			v = &v1
		}
		f := t.freq[sym]
		nb := 0
		for *v>>uint(nb) >= 2*f {
			nb++
		}
		chunks = append(chunks, chunk{v: uint64(*v) & (1<<uint(nb) - 1), nb: nb})
		q := *v >> uint(nb)
		*v = size + t.posOf[sym][q-f]
	}

	var bw refBits
	bw.writeBits(uint64(v0-size), tableLog)
	bw.writeBits(uint64(v1-size), tableLog)
	for i := len(chunks) - 1; i >= 0; i-- {
		bw.writeBits(chunks[i].v, chunks[i].nb)
	}
	body := bw.pack()

	bodyLen := 2 + 3*nsym + len(body)
	headLen := 1 + uvarintLen(uint64(len(block))) + uvarintLen(uint64(bodyLen))
	if headLen+bodyLen >= 1+uvarintLen(uint64(len(block)))+len(block) {
		dst = appendBlockHeader(dst, modeRaw, len(block))
		return append(dst, block...)
	}

	dst = appendBlockHeader(dst, modeFSE, len(block))
	dst = binary.AppendUvarint(dst, uint64(bodyLen))
	dst = append(dst, byte(tableLog), byte(nsym-1))
	for i := 0; i < nsym; i++ {
		sym := st.syms[i]
		dst = append(dst, sym, byte(st.norm[sym]), byte(st.norm[sym]>>8))
	}
	return append(dst, body...)
}

// refReader reads bits MSB-first one at a time, reproducing the fast
// Reader's two styles: strict reads that fail on exhaustion, and padded
// reads that return zeros past the end and set a sticky overread flag.
type refReader struct {
	buf  []byte
	pos  int // bit position
	over bool
}

func (r *refReader) total() int { return 8 * len(r.buf) }

func (r *refReader) bitAt(p int) uint64 {
	if p >= r.total() {
		return 0
	}
	return uint64(r.buf[p/8]>>(7-uint(p%8))) & 1
}

// readStrict mirrors Reader.ReadBits: error without consuming when
// fewer than width bits remain.
func (r *refReader) readStrict(width int) (uint64, error) {
	if r.pos+width > r.total() {
		return 0, fmt.Errorf("entropy: oracle bitstream exhausted")
	}
	var v uint64
	for k := 0; k < width; k++ {
		v = v<<1 | r.bitAt(r.pos+k)
	}
	r.pos += width
	return v, nil
}

// readPadded mirrors Peek+Consume: zeros past the end, sticky overread.
func (r *refReader) readPadded(width int) uint64 {
	var v uint64
	for k := 0; k < width; k++ {
		v = v<<1 | r.bitAt(r.pos+k)
	}
	if r.pos+width > r.total() {
		r.over = true
		r.pos = r.total()
	} else {
		r.pos += width
	}
	return v
}

// ReferenceDecompress decodes src with the bit-serial oracle decoder.
// It accepts exactly the inputs Decompress accepts and produces the
// same bytes.
func ReferenceDecompress(src []byte) ([]byte, error) {
	var dst []byte
	for len(src) > 0 {
		var err error
		dst, src, err = refDecompressBlock(dst, src)
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func refDecompressBlock(dst, src []byte) ([]byte, []byte, error) {
	mode, rawLen, src, err := blockHeader(src)
	if err != nil {
		return nil, nil, err
	}
	switch mode {
	case modeRaw:
		if len(src) < rawLen {
			return nil, nil, fmt.Errorf("entropy: oracle raw block truncated")
		}
		return append(dst, src[:rawLen]...), src[rawLen:], nil
	case modeRLE:
		if len(src) < 1 {
			return nil, nil, fmt.Errorf("entropy: oracle rle block missing symbol")
		}
		for i := 0; i < rawLen; i++ {
			dst = append(dst, src[0])
		}
		return dst, src[1:], nil
	case modeFSE:
		bodyLen, used := binary.Uvarint(src)
		if used <= 0 || bodyLen > uint64(len(src)-used) {
			return nil, nil, fmt.Errorf("entropy: oracle bad fse body length")
		}
		src = src[used:]
		dst, err := refDecodeFSEBody(dst, src[:bodyLen], rawLen)
		if err != nil {
			return nil, nil, err
		}
		return dst, src[bodyLen:], nil
	case modeHUF:
		bodyLen, used := binary.Uvarint(src)
		if used <= 0 || bodyLen > uint64(len(src)-used) {
			return nil, nil, fmt.Errorf("entropy: oracle bad huf body length")
		}
		src = src[used:]
		dst, err := refDecodeHufBody(dst, src[:bodyLen], rawLen)
		if err != nil {
			return nil, nil, err
		}
		return dst, src[bodyLen:], nil
	default:
		return nil, nil, fmt.Errorf("entropy: oracle unknown block mode %d", mode)
	}
}

// refParseTable applies the same validity rules as the fast parseTable
// and returns the oracle's explicit table.
func refParseTable(body []byte) (*refTable, int, []byte, error) {
	if len(body) < 2 {
		return nil, 0, nil, fmt.Errorf("entropy: oracle fse body truncated")
	}
	tableLog := int(body[0])
	nsym := int(body[1]) + 1
	if tableLog < minTableLog || tableLog > maxTableLog {
		return nil, 0, nil, fmt.Errorf("entropy: oracle table log %d out of range", tableLog)
	}
	if nsym < 2 {
		return nil, 0, nil, fmt.Errorf("entropy: oracle fse block with %d symbols", nsym)
	}
	if len(body) < 2+3*nsym {
		return nil, 0, nil, fmt.Errorf("entropy: oracle table description truncated")
	}
	size := 1 << tableLog
	st := new(scratch)
	sum, prev := 0, -1
	for i := 0; i < nsym; i++ {
		sym := body[2+3*i]
		if int(sym) <= prev {
			return nil, 0, nil, fmt.Errorf("entropy: oracle table symbols not ascending")
		}
		prev = int(sym)
		n := int(body[3+3*i]) | int(body[4+3*i])<<8
		if n == 0 || n > size {
			return nil, 0, nil, fmt.Errorf("entropy: oracle normalized count out of range")
		}
		st.syms[i] = sym
		st.norm[sym] = uint16(n)
		sum += n
	}
	if sum != size {
		return nil, 0, nil, fmt.Errorf("entropy: oracle counts sum %d != %d", sum, size)
	}
	return buildRefTable(st, nsym, tableLog), tableLog, body[2+3*nsym:], nil
}

func refDecodeFSEBody(dst, body []byte, rawLen int) ([]byte, error) {
	t, tableLog, stream, err := refParseTable(body)
	if err != nil {
		return nil, err
	}
	br := &refReader{buf: stream}
	s0, err := br.readStrict(tableLog)
	if err != nil {
		return nil, err
	}
	s1, err := br.readStrict(tableLog)
	if err != nil {
		return nil, err
	}
	p0, p1 := int(s0), int(s1)
	for i := 0; i < rawLen; i++ {
		p := &p0
		if i&1 == 1 {
			p = &p1
		}
		sym := t.tsym[*p]
		dst = append(dst, sym)
		// Invert one encode step: the state's occurrence index x shifts
		// back up into [size, 2·size) and refills its low bits from the
		// stream.
		x := t.occ[*p]
		nb := 0
		for x<<uint(nb) < t.size {
			nb++
		}
		*p = x<<uint(nb) - t.size + int(br.readPadded(nb))
	}
	if br.over {
		return nil, fmt.Errorf("entropy: oracle bitstream truncated mid-block")
	}
	return dst, nil
}
