package entropy

import "repro/internal/telemetry"

// Backend-selection counters: one tick per emitted block, keyed by the
// representation the encoder actually chose (CompressHuf can emit any
// of the four; Compress emits raw/rle/fse).
var (
	backendRaw = telemetry.NewCounter("entropy.backend.raw")
	backendRLE = telemetry.NewCounter("entropy.backend.rle")
	backendFSE = telemetry.NewCounter("entropy.backend.fse")
	backendHuf = telemetry.NewCounter("entropy.backend.huf")
)

// Dispatch counters for the 4-stream huf decode kernel, mirroring the
// simd.vecops.* pair: one tick per decoded huf block, keyed by whether
// the AVX2 bulk kernel ran or the portable loop did all the work.
var (
	hufVectorCalls   = telemetry.NewCounter("simd.entropy.vector_calls")
	hufPortableCalls = telemetry.NewCounter("simd.entropy.portable_calls")
)
