package entropy

import (
	"bytes"
	"testing"
)

// hufCorpus extends the shared corpus with byte-group-lane shapes —
// wide-alphabet, moderately skewed — where the huf backend should win
// the size selection (the fse table cost dominates at 100+ symbols).
func hufCorpus() map[string][]byte {
	c := corpus()
	rng := testRNG(0x6a09e667f3bcc909)
	mantissa := make([]byte, 3*maxBlock/2)
	for i := range mantissa {
		// Gaussian-ish wide alphabet: sum of uniforms, like the low
		// mantissa lane of trained-weight float32s.
		v := (rng.next()&0xFF + rng.next()&0xFF + rng.next()&0xFF) / 3
		mantissa[i] = byte(v)
	}
	c["mantissa-lane"] = mantissa
	exponents := make([]byte, maxBlock)
	for i := range exponents {
		exponents[i] = 0xBA + byte(rng.next()&0x07) // bf16-style exponent lane
	}
	c["exponent-lane"] = exponents
	return c
}

// hufBlockModes walks a compressed stream's block framing and returns
// the sequence of mode bytes, so tests can assert which backend the
// selector actually chose.
func hufBlockModes(t *testing.T, comp []byte) []byte {
	t.Helper()
	var modes []byte
	for len(comp) > 0 {
		mode, rawLen, rest, err := blockHeader(comp)
		if err != nil {
			t.Fatalf("walking own output: %v", err)
		}
		modes = append(modes, mode)
		switch mode {
		case modeRaw:
			comp = rest[rawLen:]
		case modeRLE:
			comp = rest[1:]
		case modeFSE, modeHUF:
			bodyLen, used := uvarint(t, rest)
			comp = rest[used+bodyLen:]
		default:
			t.Fatalf("unknown mode %d in own output", mode)
		}
	}
	return modes
}

func uvarint(t *testing.T, b []byte) (int, int) {
	t.Helper()
	v, n := 0, 0
	for shift := 0; ; shift += 7 {
		if n >= len(b) {
			t.Fatal("truncated uvarint in own output")
		}
		c := b[n]
		n++
		v |= int(c&0x7F) << shift
		if c < 0x80 {
			return v, n
		}
	}
}

func TestHufRoundTrip(t *testing.T) {
	for name, src := range hufCorpus() {
		comp := CompressHuf(nil, src)
		got, err := Decompress(nil, comp)
		if err != nil {
			t.Fatalf("%s: decompress: %v", name, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("%s: round trip mismatch: got %d bytes, want %d", name, len(got), len(src))
		}
		blocks := (len(src) + maxBlock - 1) / maxBlock
		if max := len(src) + 4*blocks; len(comp) > max {
			t.Fatalf("%s: compressed %d bytes exceeds bound %d", name, len(comp), max)
		}
	}
}

// TestHufSelection pins the block-mode selector: wide-alphabet lanes
// must actually choose huf blocks, skewed small-alphabet data must
// stay on fse, and constant lanes on rle.
func TestHufSelection(t *testing.T) {
	c := hufCorpus()
	want := map[string]byte{
		"mantissa-lane": modeHUF,
		"text":          modeFSE, // ~35 symbols: the 3n-byte fse table beats huf's fixed 134
		"skewed-4k":     modeFSE,
		"exponent-lane": modeFSE, // 8 symbols: tiny fse table wins
		"rle":           modeRLE,
	}
	for name, mode := range want {
		comp := CompressHuf(nil, c[name])
		for i, m := range hufBlockModes(t, comp) {
			if m != mode {
				t.Errorf("%s block %d: selected mode %d, want %d", name, i, m, mode)
			}
		}
	}
}

// TestHufReferenceEquivalence pins CompressHuf to the bit-serial oracle
// in both directions, mirroring TestReferenceEquivalence for fse.
func TestHufReferenceEquivalence(t *testing.T) {
	for name, src := range hufCorpus() {
		fast := CompressHuf(nil, src)
		ref := ReferenceCompressHuf(src)
		if !bytes.Equal(fast, ref) {
			t.Fatalf("%s: fast and reference compressed bytes differ (%d vs %d bytes)", name, len(fast), len(ref))
		}
		got, err := ReferenceDecompress(fast)
		if err != nil {
			t.Fatalf("%s: reference decode of fast output: %v", name, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("%s: reference decode mismatch", name)
		}
	}
}

// TestHufSIMDEquivalence decodes every corpus stream with the 4-stream
// kernel forced on and off; the outputs must be bit-identical. On
// hardware without the kernel both runs take the portable path and the
// test degenerates to a round-trip check.
func TestHufSIMDEquivalence(t *testing.T) {
	prev := SetSIMD(true)
	defer SetSIMD(prev)
	for name, src := range hufCorpus() {
		comp := CompressHuf(nil, src)
		SetSIMD(true)
		vec, vecErr := Decompress(nil, comp)
		SetSIMD(false)
		port, portErr := Decompress(nil, comp)
		if vecErr != nil || portErr != nil {
			t.Fatalf("%s: vec err=%v, portable err=%v", name, vecErr, portErr)
		}
		if !bytes.Equal(vec, port) {
			t.Fatalf("%s: kernel and portable decodes differ", name)
		}
		if !bytes.Equal(port, src) {
			t.Fatalf("%s: portable decode mismatch", name)
		}
	}
}

func TestHufShrinksWideAlphabet(t *testing.T) {
	c := hufCorpus()
	for _, name := range []string{"mantissa-lane", "text", "exp-heavy"} {
		src := c[name]
		comp := CompressHuf(nil, src)
		if len(comp) >= len(src) {
			t.Errorf("%s: expected compression, got %d -> %d bytes", name, len(src), len(comp))
		}
		// The selector must never do worse than the fse-only path by
		// more than the per-block mode slack.
		fse := Compress(nil, src)
		if len(comp) > len(fse) {
			t.Errorf("%s: huf-selected stream (%d bytes) larger than fse-only (%d bytes)", name, len(comp), len(fse))
		}
	}
}

func TestHufTruncatedStream(t *testing.T) {
	comp := CompressHuf(nil, hufCorpus()["mantissa-lane"][:8192])
	if modes := hufBlockModes(t, comp); modes[0] != modeHUF {
		t.Fatalf("setup: expected a huf block, got mode %d", modes[0])
	}
	for cut := 1; cut < len(comp); cut += 101 {
		if _, err := Decompress(nil, comp[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(comp))
		}
		if _, err := ReferenceDecompress(comp[:cut]); err == nil {
			t.Fatalf("oracle: prefix of %d/%d bytes decoded without error", cut, len(comp))
		}
	}
}

// TestHufCorruptAgreement flips bytes across a huf-bearing stream —
// covering the length table, jump table, and all four bitstreams — and
// requires the fast path and the oracle to agree exactly.
func TestHufCorruptAgreement(t *testing.T) {
	comp := CompressHuf(nil, hufCorpus()["mantissa-lane"][:8192])
	mut := make([]byte, len(comp))
	for pos := 0; pos < len(comp); pos += 11 {
		for _, flip := range []byte{0x01, 0x80, 0xFF} {
			copy(mut, comp)
			mut[pos] ^= flip
			fast, fastErr := Decompress(nil, mut)
			ref, refErr := ReferenceDecompress(mut)
			if (fastErr == nil) != (refErr == nil) {
				t.Fatalf("pos %d flip %#x: fast err=%v, oracle err=%v", pos, flip, fastErr, refErr)
			}
			if fastErr == nil && !bytes.Equal(fast, ref) {
				t.Fatalf("pos %d flip %#x: fast and oracle decoded different bytes", pos, flip)
			}
		}
	}
}

// TestHufCorruptRejected hand-builds structurally invalid huf blocks:
// every one must be rejected by both paths, never decoded to bytes.
func TestHufCorruptRejected(t *testing.T) {
	valid := CompressHuf(nil, hufCorpus()["mantissa-lane"][:4096])
	if valid[0] != modeHUF {
		t.Fatalf("setup: expected a huf block, got mode %d", valid[0])
	}
	forge := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		mutate(b)
		return b
	}
	// Offsets inside the block: [0]=mode, [1,2]=rawLen uvarint (4096),
	// then bodyLen uvarint (2 bytes), then the 128-byte nibble table,
	// the 6-byte jump table, and the streams.
	lensOff := 1 + 2 + 2
	jumpOff := lensOff + hufTableBytes
	cases := map[string][]byte{
		"huf-no-body":      {modeHUF, 0x20},
		"huf-body-overrun": {modeHUF, 0x20, 9, 1, 2},
		// rawLen below the encoder minimum (the fse path would store
		// such blocks raw, so a huf header claiming one is a forgery —
		// and would drive stream 3's segment length negative).
		"huf-tiny-rawlen": forge(func(b []byte) { b[1], b[2] = 16, b[2]&0x7F }),
		"huf-nibble-high": forge(func(b []byte) { b[lensOff] = 0xFF }), // length 15 > 11
		"huf-kraft-under": forge(func(b []byte) {
			// Zero out the first present length: the code becomes
			// incomplete, kraft sum below 1<<11.
			for i := lensOff; i < jumpOff; i++ {
				if b[i] != 0 {
					b[i] = 0
					return
				}
			}
		}),
		"huf-jump-overrun": forge(func(b []byte) { b[jumpOff], b[jumpOff+1] = 0xFF, 0xFF }),
	}
	for name, src := range cases {
		if _, err := Decompress(nil, src); err == nil {
			t.Errorf("%s: fast path accepted corrupt input", name)
		}
		if _, err := ReferenceDecompress(src); err == nil {
			t.Errorf("%s: oracle accepted corrupt input", name)
		}
	}
	// Tiny-rawLen also through the bodyLen-intact variant: rebuild the
	// header so the framing stays self-consistent and only the huf body
	// validation can catch it.
	body := valid[1+2+2:]
	tiny := []byte{modeHUF, 31}
	tiny = append(tiny, valid[3:5]...) // original bodyLen uvarint
	tiny = append(tiny, body...)
	if _, err := Decompress(nil, tiny); err == nil {
		t.Error("reframed tiny-rawlen huf block accepted by fast path")
	}
	if _, err := ReferenceDecompress(tiny); err == nil {
		t.Error("reframed tiny-rawlen huf block accepted by oracle")
	}
}

func TestHufDecompressCap(t *testing.T) {
	src := hufCorpus()["mantissa-lane"][:4096]
	comp := CompressHuf(nil, src)
	if _, err := DecompressCap(nil, comp, len(src)); err != nil {
		t.Fatalf("cap == decoded size must succeed: %v", err)
	}
	if _, err := DecompressCap(nil, comp, len(src)-1); err == nil {
		t.Fatal("cap below decoded size must fail")
	}
}

// TestHufZeroAllocSteadyState is the huf-path counterpart of the
// alloc-regression gate: with reused dst buffers, encode (including
// the selector) and decode (including the 4-stream kernel) must not
// allocate.
func TestHufZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts only hold without -race")
	}
	src := hufCorpus()["mantissa-lane"][:maxBlock]
	dst := CompressHuf(nil, src)
	comp := append([]byte(nil), dst...)
	out, err := Decompress(nil, comp)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		dst = CompressHuf(dst[:0], src)
		out, err = Decompress(out[:0], comp)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state huf encode+decode allocates %.1f/op, want 0", allocs)
	}
}

func FuzzHufRoundTrip(f *testing.F) {
	for _, src := range hufCorpus() {
		if len(src) <= 8192 {
			f.Add(src)
		}
	}
	f.Add(hufCorpus()["mantissa-lane"][:4096])
	f.Fuzz(func(t *testing.T, data []byte) {
		comp := CompressHuf(nil, data)
		got, err := Decompress(nil, comp)
		if err != nil {
			t.Fatalf("decompress own output: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("round trip mismatch")
		}
		if len(data) <= 4096 {
			if ref := ReferenceCompressHuf(data); !bytes.Equal(comp, ref) {
				t.Fatal("fast and reference compressed bytes differ")
			}
		}
	})
}

func BenchmarkCompressHufWide(b *testing.B) {
	src := hufCorpus()["mantissa-lane"][:maxBlock]
	var dst []byte
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = CompressHuf(dst[:0], src)
	}
}

func BenchmarkDecompressHufWide(b *testing.B) {
	src := hufCorpus()["mantissa-lane"][:maxBlock]
	comp := CompressHuf(nil, src)
	var dst []byte
	var err error
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, err = Decompress(dst[:0], comp)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecompressFSEWide decodes the same wide-alphabet payload
// through the fse-only encoder — the direct baseline the huf fast path
// is measured against.
func BenchmarkDecompressFSEWide(b *testing.B) {
	src := hufCorpus()["mantissa-lane"][:maxBlock]
	comp := Compress(nil, src)
	var dst []byte
	var err error
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, err = Decompress(dst[:0], comp)
		if err != nil {
			b.Fatal(err)
		}
	}
}
