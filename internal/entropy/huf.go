package entropy

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"slices"

	"repro/internal/bitstream"
	"repro/internal/vecops"
)

// This file is the huff0-style multi-symbol fast path: a canonical
// length-limited Huffman coder whose blocks ride in the same framing as
// the fse coder (entropy.go) under mode 3, so raw, rle, fse, and huf
// blocks coexist in one stream and one decoder:
//
//	block := u8 mode=3, uvarint rawLen, uvarint bodyLen, body
//	body  :=
//	  128 bytes  code lengths, one nibble per symbol 0..255 (even
//	             symbol in the low nibble), 0 = absent, max length 11;
//	             the lengths must describe a *complete* canonical code
//	             (Kraft weights summing to exactly 2^11), so every
//	             decode-LUT probe lands on a defined entry
//	  3 × u16le  jump table: byte lengths of streams 0..2 (stream 3
//	             runs to the end of the body)
//	  4 streams  independent MSB-first bitstreams, each zero-padded to
//	             a byte; stream i encodes raw bytes
//	             [i·segLen, min((i+1)·segLen, rawLen)) with
//	             segLen = ceil(rawLen/4)
//
// Codes are canonical: lengths are assigned by a two-queue Huffman
// build over (frequency, symbol)-sorted leaves, length-limited to 11
// bits by the deterministic histogram repair in hufBuildLengths, and
// code values are assigned in (length, symbol) ascending order. The
// whole construction is a pure function of the block's histogram —
// format-defining, shared with the reference oracle.
//
// Decoding uses an 11-bit multi-symbol LUT: each probe returns up to
// two symbols plus the total bit length consumed, and the four streams
// decode independently (the asm kernel interleaves them for ILP; the
// portable path runs them back to back and doubles as the oracle for
// the kernel).
//
// CompressHuf is the encoder entry point: per block it picks the
// cheapest of raw, rle, fse, and huf, comparing the exact huf
// table+payload size against a deterministic fse size estimate (see
// fseEstimateBody). Decompress handles all four modes, so "+huf"
// streams need no decoder-side configuration.

const (
	// hufLutBits is the decode-LUT probe width; hufMaxLen (the code
	// length cap) must not exceed it so one probe always resolves at
	// least one symbol.
	hufLutBits = 11
	hufLutSize = 1 << hufLutBits
	hufMaxLen  = 11

	// hufTableBytes is the nibble-packed code-length table (256 symbols
	// × 4 bits); hufJumpBytes the 3 × u16le stream jump table.
	hufTableBytes = 128
	hufJumpBytes  = 6
	hufNumStreams = 4
)

// CompressHuf appends the multi-symbol entropy-coded form of src to
// dst and returns the extended slice. It frames src exactly like
// Compress — independent ≤ 64 KiB blocks — but per block picks the
// cheapest of raw, rle, fse, and the 4-stream canonical-Huffman (huf)
// representation, so Decompress reads its output unchanged. It never
// fails and never expands a payload by more than the per-block framing
// overhead. Reusing dst across calls makes the steady state
// allocation-free.
func CompressHuf(dst, src []byte) []byte {
	st := getScratch()
	for len(src) > 0 {
		n := len(src)
		if n > maxBlock {
			n = maxBlock
		}
		dst = compressHufBlock(dst, src[:n], st)
		src = src[n:]
	}
	putScratch(st)
	return dst
}

// compressHufBlock encodes one ≤ maxBlock slice, choosing the backend
// by measured (huf) or deterministically estimated (fse) table+payload
// size.
func compressHufBlock(dst, block []byte, st *scratch) []byte {
	nsym := st.histogram(block)
	if nsym == 1 {
		backendRLE.Inc()
		dst = appendBlockHeader(dst, modeRLE, len(block))
		return append(dst, block[0])
	}
	if len(block) < minCompressBlock {
		backendRaw.Inc()
		dst = appendBlockHeader(dst, modeRaw, len(block))
		return append(dst, block...)
	}
	hufBody := st.hufBuildLengths(nsym)
	fseBody := st.fseEstimateBody(len(block), nsym)
	// Incompressible early out: when neither body beats storing the
	// block raw, skip the trial encode entirely — both backends' raw
	// fallbacks would fire anyway, and on near-uniform data (float32
	// mantissa lanes) the discarded fse walk is the dominant cost.
	// Like the fse-vs-huf comparison this rule runs on the estimates,
	// is format-defining, and is shared with the reference oracle.
	if hufBody >= len(block) && fseBody >= len(block) {
		backendRaw.Inc()
		dst = appendBlockHeader(dst, modeRaw, len(block))
		return append(dst, block...)
	}
	if fseBody < hufBody {
		return appendFSEBlock(dst, block, st, nsym)
	}
	return appendHufBlock(dst, block, st)
}

// hufBuildLengths fills st.hlen with the canonical length-limited code
// lengths for the current histogram and returns the huf body size those
// lengths imply (table + jump + payload, padding bounded). The whole
// derivation — frequency-sorted two-queue Huffman build, clamp to
// hufMaxLen, deterministic Kraft repair, monotone length reassignment —
// is format-defining and shared with the reference oracle. Requires
// nsym ≥ 2.
func (s *scratch) hufBuildLengths(nsym int) int {
	// Leaves sorted by (frequency, symbol) ascending: block length caps
	// at 1<<16, so hist<<8|sym is collision-free in a uint32.
	for i := 0; i < nsym; i++ {
		sym := s.syms[i]
		s.hkeys[i] = uint32(s.hist[sym])<<8 | uint32(sym)
	}
	slices.Sort(s.hkeys[:nsym])

	// Two-queue Huffman build: leaves 0..nsym-1 carry the sorted
	// frequencies, internal nodes are created in nondecreasing
	// frequency order, and ties prefer the leaf queue (deterministic,
	// and biased toward shallower leaves).
	for i := 0; i < nsym; i++ {
		s.hfreq[i] = int32(s.hkeys[i] >> 8)
	}
	total := 2*nsym - 1
	leaf, internal := 0, nsym
	for created := nsym; created < total; created++ {
		take := func() int {
			if leaf < nsym && (internal >= created || s.hfreq[leaf] <= s.hfreq[internal]) {
				leaf++
				return leaf - 1
			}
			internal++
			return internal - 1
		}
		a, b := take(), take()
		s.hfreq[created] = s.hfreq[a] + s.hfreq[b]
		s.hparent[a], s.hparent[b] = int16(created), int16(created)
	}
	s.hdepth[total-1] = 0
	for k := total - 2; k >= 0; k-- {
		s.hdepth[k] = s.hdepth[s.hparent[k]] + 1
	}

	// Clamp depths to hufMaxLen and repair the length histogram until
	// the Kraft weights sum exactly to the LUT size again: each step
	// turns the deepest available shorter leaf into an internal node
	// whose children are that leaf and one promoted max-length leaf,
	// reducing the integer Kraft sum by exactly 1.
	for l := range s.hcnt {
		s.hcnt[l] = 0
	}
	kraft := int32(0)
	for i := 0; i < nsym; i++ {
		d := int(s.hdepth[i])
		if d > hufMaxLen {
			d = hufMaxLen
		}
		s.hcnt[d]++
		kraft += 1 << (hufMaxLen - d)
	}
	for debt := kraft - hufLutSize; debt > 0; debt-- {
		b := hufMaxLen - 1
		for s.hcnt[b] == 0 {
			b--
		}
		s.hcnt[b]--
		s.hcnt[b+1] += 2
		s.hcnt[hufMaxLen]--
	}

	// Reassign lengths monotonically: walking the repaired histogram
	// from the longest length down hands the longest codes to the
	// least frequent symbols (the sorted key order).
	for i := range s.hlen {
		s.hlen[i] = 0
	}
	idx := 0
	for l := hufMaxLen; l >= 1; l-- {
		for c := s.hcnt[l]; c > 0; c-- {
			s.hlen[byte(s.hkeys[idx])] = uint8(l)
			idx++
		}
	}

	payloadBits := int64(0)
	for i := 0; i < nsym; i++ {
		sym := s.syms[i]
		payloadBits += int64(s.hist[sym]) * int64(s.hlen[sym])
	}
	// +3: the 4 per-stream byte paddings cost at most 28 bits beyond
	// the rounded total.
	return hufTableBytes + hufJumpBytes + int((payloadBits+7)/8) + 3
}

// fseEstimateBody returns a deterministic estimate of the fse body size
// for the current histogram, without running the encoder: per symbol
// with normalized count f, a step emits mb = tableLog-floor(log2 f)
// bits from states at or above f<<mb and mb-1 below it, so averaging
// over the state range gives the expected payload exactly up to state
// path effects. Used only for backend selection, so the (format-
// defining) rule is "estimate, not measurement" — shared with the
// oracle.
func (s *scratch) fseEstimateBody(blockLen, nsym int) int {
	tableLog := tableLogFor(blockLen, nsym)
	size := int32(1) << tableLog
	s.normalize(blockLen, nsym, tableLog)
	var num int64
	for i := 0; i < nsym; i++ {
		sym := s.syms[i]
		f := uint32(s.norm[sym])
		mb := uint32(tableLog) - uint32(bits.Len32(f)-1)
		below := int64(f)<<mb - int64(size) // states emitting mb-1 bits
		num += int64(s.hist[sym]) * (int64(mb)*int64(size) - below)
	}
	estBits := (num + int64(size) - 1) / int64(size)
	return 2 + 3*nsym + int((2*int64(tableLog)+estBits+7)/8)
}

// hufAssignCodes derives the canonical code values from st.hlen and
// st.hcnt: codes are assigned in (length, symbol) ascending order, the
// textbook canonical numbering.
func (s *scratch) hufAssignCodes() {
	var first [hufMaxLen + 2]uint16
	code := uint16(0)
	for l := 1; l <= hufMaxLen; l++ {
		first[l] = code
		code = (code + uint16(s.hcnt[l])) << 1
	}
	for sym := 0; sym < 256; sym++ {
		if l := s.hlen[sym]; l > 0 {
			s.henc[sym] = first[l]<<4 | uint16(l)
			first[l]++
		}
	}
}

// appendHufBlock emits one huf block from the lengths hufBuildLengths
// left in the scratch, falling back to raw if the measured size does
// not beat it.
func appendHufBlock(dst, block []byte, st *scratch) []byte {
	st.hufAssignCodes()
	segLen := (len(block) + 3) / 4
	var bws [hufNumStreams]*bitstream.Writer
	var streams [hufNumStreams][]byte
	bodyLen := hufTableBytes + hufJumpBytes
	for s := 0; s < hufNumStreams; s++ {
		lo := s * segLen
		hi := lo + segLen
		if hi > len(block) {
			hi = len(block)
		}
		bw := bitstream.GetWriter()
		bw.Grow(hi - lo + 16) // streams beyond raw size fall back below
		// Four symbols per WriteBits call: codes cap at 11 bits, so a
		// quad is ≤ 44 bits and fits one accumulator push, amortizing
		// the writer's bounds/flush logic. Bit order is identical to
		// the one-symbol loop (each code lands above the next).
		seg := block[lo:hi]
		i := 0
		for ; i+4 <= len(seg); i += 4 {
			e0, e1 := st.henc[seg[i]], st.henc[seg[i+1]]
			e2, e3 := st.henc[seg[i+2]], st.henc[seg[i+3]]
			v := uint64(e0 >> 4)
			w := uint(e0 & 0xF)
			v = v<<(e1&0xF) | uint64(e1>>4)
			w += uint(e1 & 0xF)
			v = v<<(e2&0xF) | uint64(e2>>4)
			w += uint(e2 & 0xF)
			v = v<<(e3&0xF) | uint64(e3>>4)
			w += uint(e3 & 0xF)
			bw.WriteBits(v, w)
		}
		for ; i < len(seg); i++ {
			e := st.henc[seg[i]]
			bw.WriteBits(uint64(e>>4), uint(e&0xF))
		}
		bws[s], streams[s] = bw, bw.Bytes()
		bodyLen += len(streams[s])
	}

	headLen := 1 + uvarintLen(uint64(len(block))) + uvarintLen(uint64(bodyLen))
	if headLen+bodyLen >= 1+uvarintLen(uint64(len(block)))+len(block) {
		for s := 0; s < hufNumStreams; s++ {
			bitstream.PutWriter(bws[s])
		}
		backendRaw.Inc()
		dst = appendBlockHeader(dst, modeRaw, len(block))
		return append(dst, block...)
	}

	backendHuf.Inc()
	dst = appendBlockHeader(dst, modeHUF, len(block))
	dst = binary.AppendUvarint(dst, uint64(bodyLen))
	for i := 0; i < hufTableBytes; i++ {
		dst = append(dst, st.hlen[2*i]|st.hlen[2*i+1]<<4)
	}
	for s := 0; s < hufNumStreams-1; s++ {
		n := len(streams[s]) // ≤ 16384 symbols × 11 bits: fits u16
		dst = append(dst, byte(n), byte(n>>8))
	}
	for s := 0; s < hufNumStreams; s++ {
		dst = append(dst, streams[s]...)
		bitstream.PutWriter(bws[s])
	}
	return dst
}

// hufParseLens reads a block's nibble-packed code-length table into
// st.hlen/st.hcnt, rejecting out-of-range lengths and any length set
// that is not a complete canonical code — the property the decode
// LUT's total coverage (and thus the loop's in-range guarantee) rests
// on.
func (s *scratch) hufParseLens(table []byte) error {
	for l := range s.hcnt {
		s.hcnt[l] = 0
	}
	kraft := int32(0)
	for i := 0; i < hufTableBytes; i++ {
		b := table[i]
		for half := 0; half < 2; half++ {
			l := b & 0xF
			b >>= 4
			s.hlen[2*i+half] = l
			if l > hufMaxLen {
				return fmt.Errorf("entropy: huf code length %d exceeds %d (symbol %d)", l, hufMaxLen, 2*i+half)
			}
			if l > 0 {
				s.hcnt[l]++
				kraft += 1 << (hufMaxLen - l)
			}
		}
	}
	if kraft != hufLutSize {
		return fmt.Errorf("entropy: huf code lengths are not a complete code (kraft sum %d, want %d)", kraft, hufLutSize)
	}
	return nil
}

// hufBuildLUT builds the decode tables from st.hlen/st.hcnt: first the
// single-symbol LUT by bulk span fills (one span per code, the
// canonical layout making every span contiguous), then the
// multi-symbol LUT by probing the single-symbol table for a second
// code inside each probe's remainder. Entry layout:
//
//	sym2<<24 | sym1<<16 | pair<<15 | totalBits<<8 | len1
func (s *scratch) hufBuildLUT() {
	s.hufAssignCodes()
	for sym := 0; sym < 256; sym++ {
		l := uint32(s.hlen[sym])
		if l == 0 {
			continue
		}
		code := uint32(s.henc[sym]) >> 4
		lo := code << (hufLutBits - l)
		hi := lo + 1<<(hufLutBits-l)
		vecops.FillUint16(s.hlut1[lo:hi], uint16(sym)<<8|uint16(l))
	}
	for i := 0; i < hufLutSize; i++ {
		e1 := uint32(s.hlut1[i])
		l1 := e1 & 0xFF
		entry := (e1>>8)<<16 | l1<<8 | l1
		if rem := hufLutBits - l1; rem > 0 {
			e2 := uint32(s.hlut1[(i<<l1)&(hufLutSize-1)])
			if l2 := e2 & 0xFF; l2 <= rem {
				entry = (e2>>8)<<24 | (e1>>8)<<16 | 1<<15 | (l1+l2)<<8 | l1
			}
		}
		s.hlut[i] = entry
	}
}

// decodeHufBody rebuilds rawLen bytes from one huf body: parse and
// validate the code-length table, split the four streams via the jump
// table, and decode each stream into its contiguous output segment.
func decodeHufBody(dst, body []byte, rawLen int, st *scratch) ([]byte, error) {
	if rawLen < minCompressBlock {
		return nil, fmt.Errorf("entropy: huf block claims %d raw bytes, encoder minimum is %d", rawLen, minCompressBlock)
	}
	if len(body) < hufTableBytes+hufJumpBytes {
		return nil, fmt.Errorf("entropy: huf body truncated (%d bytes)", len(body))
	}
	if err := st.hufParseLens(body[:hufTableBytes]); err != nil {
		return nil, err
	}
	st.hufBuildLUT()

	jump := body[hufTableBytes : hufTableBytes+hufJumpBytes]
	j0 := int(binary.LittleEndian.Uint16(jump[0:]))
	j1 := int(binary.LittleEndian.Uint16(jump[2:]))
	j2 := int(binary.LittleEndian.Uint16(jump[4:]))
	streamBytes := body[hufTableBytes+hufJumpBytes:]
	if j0+j1+j2 > len(streamBytes) {
		return nil, fmt.Errorf("entropy: huf jump table claims %d stream bytes, body holds %d", j0+j1+j2, len(streamBytes))
	}
	var srcs [hufNumStreams][]byte
	srcs[0] = streamBytes[:j0]
	srcs[1] = streamBytes[j0 : j0+j1]
	srcs[2] = streamBytes[j0+j1 : j0+j1+j2]
	srcs[3] = streamBytes[j0+j1+j2:]

	segLen := (rawLen + 3) / 4
	base := len(dst)
	dst = slices.Grow(dst, rawLen)[:base+rawLen]
	out := dst[base:]
	var outs [hufNumStreams][]byte
	outs[0] = out[:segLen]
	outs[1] = out[segLen : 2*segLen]
	outs[2] = out[2*segLen : 3*segLen]
	outs[3] = out[3*segLen:]

	// Bulk decode: the asm kernel runs the four streams interleaved (one
	// probe per stream per iteration) while every stream has ≥ 8
	// readable source bytes and ≥ 2 writable output bytes; the portable
	// per-stream loop finishes each stream from wherever the kernel
	// stopped (or does everything when the kernel is unavailable).
	var pos, oi [hufNumStreams]int
	var buf [hufNumStreams]uint64
	var cnt [hufNumStreams]uint
	if hufSIMD() && hufKernelViable(&srcs, &outs) {
		hufVectorCalls.Inc()
		hufDecode4(st, &srcs, &outs, &pos, &oi, &buf, &cnt)
	} else {
		hufPortableCalls.Inc()
	}
	for s := 0; s < hufNumStreams; s++ {
		if !st.hufDecodeStream(outs[s], srcs[s], oi[s], pos[s], buf[s], cnt[s]) {
			return nil, fmt.Errorf("entropy: huf stream %d truncated mid-block", s)
		}
	}
	return dst, nil
}

// hufKernelViable reports whether every stream meets the asm kernel's
// entry bounds (8 readable bytes, 2 writable output slots).
func hufKernelViable(srcs, outs *[hufNumStreams][]byte) bool {
	for s := 0; s < hufNumStreams; s++ {
		if len(srcs[s]) < 8 || len(outs[s]) < 2 {
			return false
		}
	}
	return true
}

// hufDecodeStream decodes one stream into out, resuming from the
// position (output index, source byte position, bit buffer, bit count)
// the asm kernel left off at (all zero when starting fresh). The bulk
// loop keeps a left-aligned 64-bit buffer refilled 8 bytes at a time;
// the bit-serial tail reads the final probes with zero padding. It
// reports false when the stream consumed more bits than it holds —
// truncation, or a forged jump table.
func (st *scratch) hufDecodeStream(out []byte, stream []byte, i, pos int, buf uint64, cnt uint) bool {
	n := len(out)
	for i+2 <= n && pos+8 <= len(stream) {
		if cnt <= 56 {
			buf |= binary.BigEndian.Uint64(stream[pos:]) >> cnt
			k := (64 - cnt) >> 3
			pos += int(k)
			cnt += k << 3
		}
		e := st.hlut[buf>>(64-hufLutBits)]
		out[i] = byte(e >> 16)
		out[i+1] = byte(e >> 24)
		i += 1 + int(e>>15&1)
		tb := uint(e>>8) & 0x1F
		buf <<= tb
		cnt -= tb
	}
	bit := pos*8 - int(cnt)
	totalBits := 8 * len(stream)
	for i < n {
		v := 0
		for k := 0; k < hufLutBits; k++ {
			v <<= 1
			if p := bit + k; p < totalBits {
				v |= int(stream[p>>3]>>(7-uint(p&7))) & 1
			}
		}
		e := st.hlut1[v]
		out[i] = byte(e >> 8)
		i++
		bit += int(e & 0xFF)
	}
	return bit <= totalBits
}
