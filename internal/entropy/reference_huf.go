package entropy

import (
	"encoding/binary"
	"fmt"
)

// Bit-serial oracle for the huf (mode 3) block format, mirroring
// reference.go's role for fse: ReferenceCompressHuf is byte-identical
// to CompressHuf, and the oracle decoder accepts exactly the inputs the
// fast path accepts. The format-defining derivations — code lengths
// (hufBuildLengths), the fse-vs-huf selection estimate
// (fseEstimateBody), canonical code assignment (hufAssignCodes) — are
// reused directly, like normalize/tableLogFor on the fse side; the
// encode and decode state machines are re-derived bit-serially: codes
// written one bit at a time, decode by walking the canonical
// first-code ladder instead of the multi-symbol LUT.

// ReferenceCompressHuf encodes src with the bit-serial oracle encoder.
// The output is byte-identical to CompressHuf(nil, src).
func ReferenceCompressHuf(src []byte) []byte {
	var dst []byte
	for len(src) > 0 {
		n := len(src)
		if n > maxBlock {
			n = maxBlock
		}
		dst = refCompressHufBlock(dst, src[:n])
		src = src[n:]
	}
	return dst
}

func refCompressHufBlock(dst, block []byte) []byte {
	st := new(scratch)
	nsym := st.histogram(block)
	if nsym == 1 {
		dst = appendBlockHeader(dst, modeRLE, len(block))
		return append(dst, block[0])
	}
	if len(block) < minCompressBlock {
		dst = appendBlockHeader(dst, modeRaw, len(block))
		return append(dst, block...)
	}
	hufBody := st.hufBuildLengths(nsym)
	fseBody := st.fseEstimateBody(len(block), nsym)
	// Incompressible early out, mirrored from compressHufBlock: the
	// estimate-based raw decision is part of the encoder spec.
	if hufBody >= len(block) && fseBody >= len(block) {
		dst = appendBlockHeader(dst, modeRaw, len(block))
		return append(dst, block...)
	}
	if fseBody < hufBody {
		// The fse encoder wins the size estimate; its whole block path
		// (including the raw fallback) is the existing oracle.
		return refCompressBlock(dst, block)
	}

	st.hufAssignCodes()
	segLen := (len(block) + 3) / 4
	var streams [hufNumStreams][]byte
	bodyLen := hufTableBytes + hufJumpBytes
	for s := 0; s < hufNumStreams; s++ {
		lo := s * segLen
		hi := lo + segLen
		if hi > len(block) {
			hi = len(block)
		}
		var bw refBits
		for _, v := range block[lo:hi] {
			e := st.henc[v]
			bw.writeBits(uint64(e>>4), int(e&0xF))
		}
		streams[s] = bw.pack()
		bodyLen += len(streams[s])
	}

	headLen := 1 + uvarintLen(uint64(len(block))) + uvarintLen(uint64(bodyLen))
	if headLen+bodyLen >= 1+uvarintLen(uint64(len(block)))+len(block) {
		dst = appendBlockHeader(dst, modeRaw, len(block))
		return append(dst, block...)
	}

	dst = appendBlockHeader(dst, modeHUF, len(block))
	dst = binary.AppendUvarint(dst, uint64(bodyLen))
	for i := 0; i < hufTableBytes; i++ {
		dst = append(dst, st.hlen[2*i]|st.hlen[2*i+1]<<4)
	}
	for s := 0; s < hufNumStreams-1; s++ {
		n := len(streams[s])
		dst = append(dst, byte(n), byte(n>>8))
	}
	for s := 0; s < hufNumStreams; s++ {
		dst = append(dst, streams[s]...)
	}
	return dst
}

// refDecodeHufBody decodes one huf body bit-serially: per output byte,
// extend a code one bit at a time down the canonical first-code ladder
// until it lands inside some length's code range. Reads past the end of
// a stream see zero padding, and the block is rejected if any stream's
// final bit position passed its actual length — the fast path's exact
// accept rule.
func refDecodeHufBody(dst, body []byte, rawLen int) ([]byte, error) {
	if rawLen < minCompressBlock {
		return nil, fmt.Errorf("entropy: oracle huf block claims %d raw bytes, below the encoder minimum", rawLen)
	}
	if len(body) < hufTableBytes+hufJumpBytes {
		return nil, fmt.Errorf("entropy: oracle huf body truncated")
	}

	// Parse the nibble table with the fast path's validity rules.
	var hlen [256]int
	var cnt [hufMaxLen + 1]int
	kraft := 0
	for i := 0; i < hufTableBytes; i++ {
		for half := 0; half < 2; half++ {
			l := int(body[i]>>(4*half)) & 0xF
			hlen[2*i+half] = l
			if l > hufMaxLen {
				return nil, fmt.Errorf("entropy: oracle huf code length %d out of range", l)
			}
			if l > 0 {
				cnt[l]++
				kraft += 1 << (hufMaxLen - l)
			}
		}
	}
	if kraft != hufLutSize {
		return nil, fmt.Errorf("entropy: oracle huf lengths not a complete code (kraft %d)", kraft)
	}

	// Canonical ladder: first[l] is the first code value of length l;
	// symsOf[l] the symbols of that length in ascending order, so code
	// value first[l]+k decodes to symsOf[l][k].
	var first [hufMaxLen + 2]int
	code := 0
	for l := 1; l <= hufMaxLen; l++ {
		first[l] = code
		code = (code + cnt[l]) << 1
	}
	var symsOf [hufMaxLen + 1][]int
	for sym := 0; sym < 256; sym++ {
		if l := hlen[sym]; l > 0 {
			symsOf[l] = append(symsOf[l], sym)
		}
	}

	jump := body[hufTableBytes : hufTableBytes+hufJumpBytes]
	j0 := int(binary.LittleEndian.Uint16(jump[0:]))
	j1 := int(binary.LittleEndian.Uint16(jump[2:]))
	j2 := int(binary.LittleEndian.Uint16(jump[4:]))
	streamBytes := body[hufTableBytes+hufJumpBytes:]
	if j0+j1+j2 > len(streamBytes) {
		return nil, fmt.Errorf("entropy: oracle huf jump table exceeds body")
	}
	bounds := [hufNumStreams + 1]int{0, j0, j0 + j1, j0 + j1 + j2, len(streamBytes)}

	segLen := (rawLen + 3) / 4
	out := make([]byte, rawLen)
	for s := 0; s < hufNumStreams; s++ {
		stream := streamBytes[bounds[s]:bounds[s+1]]
		lo := s * segLen
		hi := lo + segLen
		if hi > rawLen {
			hi = rawLen
		}
		r := &refReader{buf: stream}
		bit := 0
		for i := lo; i < hi; i++ {
			v, l := 0, 0
			for {
				v = v<<1 | int(r.bitAt(bit+l))
				l++
				if l > hufMaxLen {
					// Unreachable for a complete code; defensive.
					return nil, fmt.Errorf("entropy: oracle huf code overran max length")
				}
				if v-first[l] < cnt[l] {
					break
				}
			}
			out[i] = byte(symsOf[l][v-first[l]])
			bit += l
		}
		if bit > r.total() {
			return nil, fmt.Errorf("entropy: oracle huf stream %d truncated mid-block", s)
		}
	}
	return append(dst, out...), nil
}
