// Package entropy is the shared table-driven entropy backend for the
// codec stage pipeline: a tANS/FSE-style coder (histogram → normalized
// power-of-two table → two-state interleaved encode/decode) over byte
// payloads, in the style of klauspost/compress's FSE/huff0 but built on
// this repository's word-at-a-time internal/bitstream.
//
// The coder is byte-oriented and payload-agnostic: any codec family's
// serialized payload — quantized DCT coefficient bytes, zfp bit-planes,
// sz/jpegq Huffman streams, lossless byte-group lanes — can be appended
// through it as a container stage ("+fse" in a codec spec). Streams are
// framed as independent blocks so encode scratch stays bounded no
// matter how large the payload is:
//
//	stream := block*                      (until the source is exhausted)
//	block  := u8 mode, uvarint rawLen, body
//	  mode 0 (raw): body = rawLen verbatim bytes
//	  mode 1 (rle): body = 1 symbol byte, repeated rawLen times
//	  mode 2 (fse): body = uvarint bodyLen, then bodyLen bytes:
//	    u8  tableLog L (5..12)
//	    u8  nsym-1    (number of distinct symbols, ≥ 2)
//	    nsym × { u8 symbol, u16le normalized count }   (counts sum to 1<<L)
//	    bitstream, MSB-first, zero-padded to a byte:
//	      state0 (L bits), state1 (L bits), then per decoded symbol i the
//	      bits that step consumes (≤ L each)
//
// The fse bitstream is the standard ANS arrangement: the encoder walks
// the block backwards (symbol n-1 first), alternating two states by
// symbol-index parity, and the decoder walks forwards consuming bits in
// exactly the reverse order of emission — so the encoder records each
// step's bit chunk and replays them reversed through the bit writer.
// Every step reads table-bounded state transitions, so a decoder fed a
// valid table never indexes out of range; truncation surfaces on the
// reader's sticky overread flag.
//
// Compress never fails and never expands a payload by more than the
// per-block framing overhead: blocks whose fse body would match or
// exceed the raw bytes are stored raw. Both directions run with zero
// heap allocations at steady state when the caller reuses dst buffers
// (scratch is pooled via sync.Pool).
//
// ReferenceCompress and ReferenceDecompress are the slow, obviously
// correct bit-serial implementations of the same format, kept as the
// equivalence oracle for this fast path — the same idiom as
// core.CompressDense for the fast DCT kernel.
package entropy

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"slices"
	"sync"

	"repro/internal/bitstream"
	"repro/internal/vecops"
)

const (
	modeRaw = 0
	modeRLE = 1
	modeFSE = 2
	modeHUF = 3

	// maxBlock bounds the raw bytes one block encodes; encode scratch is
	// proportional to it (2 bytes per symbol), decode scratch constant.
	maxBlock = 1 << 16

	// minTableLog..maxTableLog bound the normalized table size. 12 keeps
	// every per-step bit chunk (≤ tableLog bits) packable in a uint16
	// alongside its 4-bit width.
	minTableLog = 5
	maxTableLog = 12

	// minCompressBlock: blocks shorter than this are stored raw — the
	// table description alone would dwarf any coding gain.
	minCompressBlock = 32
)

// scratch carries every per-block working buffer so steady-state
// encode/decode allocates nothing.
type scratch struct {
	hist [256]int32
	norm [256]uint16
	syms [256]uint8 // present symbols, in ascending order
	cum  [257]int32 // cumulative normalized counts over present symbols

	// decode table: sym<<24 | nbBits<<16 | newStateBase (base < 1<<12).
	dtable []uint32
	// encode table: posTable[cum[s]+(x-freq)] = table position of x.
	ptable []uint16
	// per-symbol encode params, indexed by symbol value. cumStart[s] is
	// cum[rank(s)] - norm[s], so ptable[cumStart[s]+q] maps an encode
	// step's quotient q ∈ [norm, 2·norm) straight to its table position.
	maxBits   [256]uint8
	threshold [256]uint32
	cumStart  [256]int32

	// chunks records the encoder's per-step emissions (width<<12 | bits)
	// for the reversed replay.
	chunks []uint16

	// spread order scratch for table construction.
	tsym []uint8

	// huf scratch: canonical code-length construction (two-queue Huffman
	// over frequency-sorted keys), the per-symbol encode table, and the
	// single- and multi-symbol decode LUTs (see huf.go).
	hkeys   [256]uint32 // hist<<8 | sym, sorted ascending for the build
	hfreq   [512]int32  // two-queue node frequencies (leaves + internals)
	hparent [512]int16
	hdepth  [512]uint8
	hcnt    [hufMaxLen + 2]int32 // symbols per code length
	hlen    [256]uint8           // code length per symbol (0 = absent)
	henc    [256]uint16          // canonical code<<4 | length
	hlut1   [hufLutSize]uint16   // symbol<<8 | length per 11-bit probe
	hlut    [hufLutSize]uint32   // multi-symbol entries (see hufBuildLUT)
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch  { return scratchPool.Get().(*scratch) }
func putScratch(s *scratch) { scratchPool.Put(s) }

func (s *scratch) sized(tableSize, blockLen int) {
	if cap(s.dtable) < tableSize {
		s.dtable = make([]uint32, tableSize)
		s.ptable = make([]uint16, tableSize)
		s.tsym = make([]uint8, tableSize)
	}
	s.dtable = s.dtable[:tableSize]
	s.ptable = s.ptable[:tableSize]
	s.tsym = s.tsym[:tableSize]
	if cap(s.chunks) < blockLen+2 {
		s.chunks = make([]uint16, blockLen+2)
	}
	s.chunks = s.chunks[:0]
}

// Compress appends the entropy-coded form of src to dst and returns the
// extended slice. It never fails: incompressible blocks are stored raw,
// so the output is at most a few framing bytes per 64 KiB block larger
// than src. Reusing dst across calls makes the steady state
// allocation-free.
func Compress(dst, src []byte) []byte {
	st := getScratch()
	for len(src) > 0 {
		n := len(src)
		if n > maxBlock {
			n = maxBlock
		}
		dst = compressBlock(dst, src[:n], st)
		src = src[n:]
	}
	putScratch(st)
	return dst
}

// CompressedIsSmaller reports whether Compress would shrink src. It is
// a convenience for callers that want to branch without keeping the
// output (the encode still runs).
func CompressedIsSmaller(src []byte) bool {
	out := Compress(nil, src)
	return len(out) < len(src)
}

// histogram fills s.hist and s.syms for block, returning the number of
// distinct symbols.
func (s *scratch) histogram(block []byte) int {
	for i := range s.hist {
		s.hist[i] = 0
	}
	vecops.Histogram256(&s.hist, block)
	nsym := 0
	for v := 0; v < 256; v++ {
		if s.hist[v] > 0 {
			s.syms[nsym] = uint8(v)
			nsym++
		}
	}
	return nsym
}

// tableLogFor picks the table size for a block: large enough to give
// every present symbol a slot, small enough not to dwarf short blocks.
func tableLogFor(blockLen, nsym int) int {
	tl := maxTableLog - 1 // 11: the FSE default
	for tl > minTableLog && 1<<tl > blockLen {
		tl--
	}
	for 1<<tl < nsym {
		tl++
	}
	return tl
}

// normalize scales the histogram of the present symbols to sum exactly
// 1<<tableLog with every present count ≥ 1, filling s.norm and s.cum.
// The largest-remainder rounding plus the deterministic fix-up loops
// below are format-defining: the reference implementation must produce
// the identical table, so both paths share this function.
func (s *scratch) normalize(blockLen, nsym, tableLog int) {
	target := int32(1) << tableLog
	total := int64(blockLen)
	var sum int32
	for i := 0; i < nsym; i++ {
		c := int64(s.hist[s.syms[i]])
		n := int32(c * int64(target) / total)
		if n == 0 {
			n = 1
		}
		s.norm[s.syms[i]] = uint16(n)
		sum += n
	}
	// Deterministic drift repair: shrink the largest counts while over
	// target, grow the largest while under. Ties break on the lower
	// symbol value, so the result is a pure function of the histogram.
	for sum > target {
		best := -1
		var bestN uint16
		for i := 0; i < nsym; i++ {
			if n := s.norm[s.syms[i]]; n > 1 && (best < 0 || n > bestN) {
				best, bestN = i, n
			}
		}
		s.norm[s.syms[best]]--
		sum--
	}
	for sum < target {
		best := 0
		bestN := s.norm[s.syms[0]]
		for i := 1; i < nsym; i++ {
			if n := s.norm[s.syms[i]]; n > bestN {
				best, bestN = i, n
			}
		}
		s.norm[s.syms[best]]++
		sum++
	}
	s.cum[0] = 0
	for i := 0; i < nsym; i++ {
		s.cum[i+1] = s.cum[i] + int32(s.norm[s.syms[i]])
	}
}

// spreadStep returns the position increment used to scatter symbol
// occurrences over the table; odd, so it cycles the whole power-of-two
// table exactly once.
func spreadStep(tableSize int) int {
	return (tableSize >> 1) + (tableSize >> 3) + 3
}

// buildTables constructs the decode table (position → symbol, bit
// count, next-state base) and the encode tables (per-symbol position
// lookup and bit-count thresholds) from the normalized counts.
func (s *scratch) buildTables(nsym, tableLog int) {
	size := 1 << tableLog
	step, mask := spreadStep(size), size-1

	// Scatter symbol occurrences over the table positions.
	pos := 0
	for i := 0; i < nsym; i++ {
		sym := s.syms[i]
		for c := uint16(0); c < s.norm[sym]; c++ {
			s.tsym[pos&mask] = sym
			pos = (pos + step) & mask
		}
	}

	// Per-symbol occurrence counters walk x through [freq, 2·freq) in
	// table-position order; the decode entry at p inverts the encode
	// step that landed on x, and the encode table remembers p for x.
	var next [256]int32
	var symIndex [256]int32
	for i := 0; i < nsym; i++ {
		sym := s.syms[i]
		next[sym] = int32(s.norm[sym])
		symIndex[sym] = s.cum[i]
		f := uint32(s.norm[sym])
		mb := uint8(tableLog) - uint8(bits.Len32(f)-1)
		s.maxBits[sym] = mb
		s.threshold[sym] = f << mb
		s.cumStart[sym] = s.cum[i] - int32(f)
	}
	for p := 0; p < size; p++ {
		sym := s.tsym[p]
		x := next[sym]
		next[sym]++
		nb := uint32(tableLog) - uint32(bits.Len32(uint32(x))-1)
		base := uint32(x)<<nb - uint32(size)
		s.dtable[p] = uint32(sym)<<24 | nb<<16 | base
		s.ptable[symIndex[sym]+x-int32(s.norm[sym])] = uint16(p)
	}
}

// appendBlockHeader writes a block's mode byte and raw length.
func appendBlockHeader(dst []byte, mode byte, rawLen int) []byte {
	dst = append(dst, mode)
	return binary.AppendUvarint(dst, uint64(rawLen))
}

// compressBlock encodes one ≤ maxBlock slice as a raw, rle, or fse
// block, whichever is smallest.
func compressBlock(dst, block []byte, st *scratch) []byte {
	nsym := st.histogram(block)
	if nsym == 1 {
		backendRLE.Inc()
		dst = appendBlockHeader(dst, modeRLE, len(block))
		return append(dst, block[0])
	}
	if len(block) < minCompressBlock {
		backendRaw.Inc()
		dst = appendBlockHeader(dst, modeRaw, len(block))
		return append(dst, block...)
	}
	return appendFSEBlock(dst, block, st, nsym)
}

// appendFSEBlock runs the fse encoder over one block (histogram already
// taken), falling back to a raw block when the coded form would not
// shrink it. Shared by the fse-only Compress path and the selecting
// CompressHuf path.
func appendFSEBlock(dst, block []byte, st *scratch, nsym int) []byte {
	tableLog := tableLogFor(len(block), nsym)
	size := 1 << tableLog
	st.sized(size, len(block))
	st.normalize(len(block), nsym, tableLog)
	st.buildTables(nsym, tableLog)

	// Walk the block backwards, alternating states by index parity, and
	// record each step's emitted chunk for the reversed replay.
	v0, v1 := uint32(2*size-1), uint32(2*size-1)
	for i := len(block) - 1; i >= 0; i-- {
		sym := block[i]
		v := &v0
		if i&1 == 1 {
			v = &v1
		}
		nb := uint32(st.maxBits[sym])
		if *v < st.threshold[sym] {
			nb--
		}
		st.chunks = append(st.chunks, uint16(nb<<12)|uint16(*v&(1<<nb-1)))
		q := *v >> nb // ∈ [freq, 2·freq)
		*v = uint32(size) + uint32(st.ptable[st.cumStart[sym]+int32(q)])
	}

	bw := bitstream.GetWriter()
	// A body larger than the block falls back to raw below, so the
	// block length bounds the useful stream size; one Grow spares a
	// cold pool Writer the growth ladder.
	bw.Grow(len(block) + 16)
	bw.WriteBits(uint64(v0)-uint64(size), uint(tableLog))
	bw.WriteBits(uint64(v1)-uint64(size), uint(tableLog))
	for i := len(st.chunks) - 1; i >= 0; i-- {
		c := st.chunks[i]
		bw.WriteBits(uint64(c&0xFFF), uint(c>>12))
	}
	body := bw.Bytes()

	bodyLen := 2 + 3*nsym + len(body)
	headLen := 1 + uvarintLen(uint64(len(block))) + uvarintLen(uint64(bodyLen))
	if headLen+bodyLen >= 1+uvarintLen(uint64(len(block)))+len(block) {
		bitstream.PutWriter(bw)
		backendRaw.Inc()
		dst = appendBlockHeader(dst, modeRaw, len(block))
		return append(dst, block...)
	}

	backendFSE.Inc()
	dst = appendBlockHeader(dst, modeFSE, len(block))
	dst = binary.AppendUvarint(dst, uint64(bodyLen))
	dst = append(dst, byte(tableLog), byte(nsym-1))
	for i := 0; i < nsym; i++ {
		sym := st.syms[i]
		dst = append(dst, sym, byte(st.norm[sym]), byte(st.norm[sym]>>8))
	}
	dst = append(dst, body...)
	bitstream.PutWriter(bw)
	return dst
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Decompress appends the decoded form of src to dst, returning the
// extended slice. Corrupt input — bad modes, impossible tables,
// truncated bitstreams, length overflows — returns an error; a
// successful decode is exactly the bytes Compress consumed. Reusing dst
// across calls makes the steady state allocation-free.
func Decompress(dst, src []byte) ([]byte, error) {
	return DecompressCap(dst, src, maxInt)
}

const maxInt = int(^uint(0) >> 1)

// DecompressCap is Decompress with an output bound: decoding fails as
// soon as the blocks' claimed raw lengths would push the appended
// output past limit bytes. Untrusted streams can claim ~32k× expansion
// per byte, so callers that know a plausible decoded size (a container
// stage inverting a payload for a known tensor shape) should pass it
// here and fail before the allocation, not after.
func DecompressCap(dst, src []byte, limit int) ([]byte, error) {
	st := getScratch()
	defer putScratch(st)
	produced := 0
	for len(src) > 0 {
		var err error
		var n int
		dst, src, n, err = decompressBlock(dst, src, st, limit-produced)
		if err != nil {
			return nil, err
		}
		produced += n
	}
	return dst, nil
}

// blockHeader parses a block's mode, raw length, and remaining input.
func blockHeader(src []byte) (mode byte, rawLen int, rest []byte, err error) {
	if len(src) < 2 {
		return 0, 0, nil, fmt.Errorf("entropy: truncated block header (%d bytes)", len(src))
	}
	mode = src[0]
	n, used := binary.Uvarint(src[1:])
	if used <= 0 || n > maxBlock {
		return 0, 0, nil, fmt.Errorf("entropy: bad block length")
	}
	return mode, int(n), src[1+used:], nil
}

func decompressBlock(dst, src []byte, st *scratch, limit int) ([]byte, []byte, int, error) {
	mode, rawLen, src, err := blockHeader(src)
	if err != nil {
		return nil, nil, 0, err
	}
	if rawLen > limit {
		return nil, nil, 0, fmt.Errorf("entropy: block claims %d bytes, exceeding the caller's %d-byte output bound", rawLen, limit)
	}
	// The block's exact output size is known up front, so one Grow here
	// replaces the per-append growth ladder in every body decoder (the
	// claimed rawLen is already capped by the caller's bound above).
	dst = slices.Grow(dst, rawLen)
	switch mode {
	case modeRaw:
		if len(src) < rawLen {
			return nil, nil, 0, fmt.Errorf("entropy: raw block truncated (%d of %d bytes)", len(src), rawLen)
		}
		return append(dst, src[:rawLen]...), src[rawLen:], rawLen, nil
	case modeRLE:
		if len(src) < 1 {
			return nil, nil, 0, fmt.Errorf("entropy: rle block missing symbol")
		}
		sym := src[0]
		base := len(dst)
		dst = slices.Grow(dst, rawLen)[:base+rawLen]
		vecops.FillBytes(dst[base:], sym)
		return dst, src[1:], rawLen, nil
	case modeFSE:
		bodyLen64, used := binary.Uvarint(src)
		if used <= 0 || bodyLen64 > uint64(len(src)-used) {
			return nil, nil, 0, fmt.Errorf("entropy: bad fse body length")
		}
		src = src[used:]
		body := src[:bodyLen64]
		dst, err := decodeFSEBody(dst, body, rawLen, st)
		if err != nil {
			return nil, nil, 0, err
		}
		return dst, src[bodyLen64:], rawLen, nil
	case modeHUF:
		bodyLen64, used := binary.Uvarint(src)
		if used <= 0 || bodyLen64 > uint64(len(src)-used) {
			return nil, nil, 0, fmt.Errorf("entropy: bad huf body length")
		}
		src = src[used:]
		body := src[:bodyLen64]
		dst, err := decodeHufBody(dst, body, rawLen, st)
		if err != nil {
			return nil, nil, 0, err
		}
		return dst, src[bodyLen64:], rawLen, nil
	default:
		return nil, nil, 0, fmt.Errorf("entropy: unknown block mode %d", mode)
	}
}

// parseTable reads an fse body's table description into the scratch,
// returning the table log and the bitstream remainder. It rejects
// out-of-range logs, duplicate or unsorted symbols, zero counts, and
// count sums that do not exactly fill the table — the properties the
// table-driven decode loop's in-range guarantees rest on.
func parseTable(body []byte, st *scratch) (tableLog int, stream []byte, err error) {
	if len(body) < 2 {
		return 0, nil, fmt.Errorf("entropy: fse body truncated")
	}
	tableLog = int(body[0])
	nsym := int(body[1]) + 1
	if tableLog < minTableLog || tableLog > maxTableLog {
		return 0, nil, fmt.Errorf("entropy: table log %d outside [%d,%d]", tableLog, minTableLog, maxTableLog)
	}
	if nsym < 2 {
		return 0, nil, fmt.Errorf("entropy: fse block with %d symbols", nsym)
	}
	if len(body) < 2+3*nsym {
		return 0, nil, fmt.Errorf("entropy: table description truncated")
	}
	size := 1 << tableLog
	var sum int32
	prev := -1
	for i := 0; i < nsym; i++ {
		sym := body[2+3*i]
		if int(sym) <= prev {
			return 0, nil, fmt.Errorf("entropy: table symbols not strictly ascending")
		}
		prev = int(sym)
		n := uint16(body[3+3*i]) | uint16(body[4+3*i])<<8
		if n == 0 || int(n) > size {
			return 0, nil, fmt.Errorf("entropy: normalized count %d outside [1,%d]", n, size)
		}
		st.syms[i] = sym
		st.norm[sym] = n
		sum += int32(n)
	}
	if sum != int32(size) {
		return 0, nil, fmt.Errorf("entropy: normalized counts sum %d, table holds %d", sum, size)
	}
	st.cum[0] = 0
	for i := 0; i < nsym; i++ {
		st.cum[i+1] = st.cum[i] + int32(st.norm[st.syms[i]])
	}
	st.sized(size, 0)
	st.buildTables(nsym, tableLog)
	return tableLog, body[2+3*nsym:], nil
}

// decodeFSEBody rebuilds rawLen bytes from one fse body using the fast
// table-driven two-state loop.
func decodeFSEBody(dst, body []byte, rawLen int, st *scratch) ([]byte, error) {
	tableLog, stream, err := parseTable(body, st)
	if err != nil {
		return nil, err
	}
	var br bitstream.Reader
	br.Reset(stream)
	s0, err := br.ReadBits(uint(tableLog))
	if err != nil {
		return nil, fmt.Errorf("entropy: bitstream truncated before initial states")
	}
	s1, err := br.ReadBits(uint(tableLog))
	if err != nil {
		return nil, fmt.Errorf("entropy: bitstream truncated before initial states")
	}
	p0, p1 := uint32(s0), uint32(s1)
	// Two-state interleave: even output positions decode on p0, odd on
	// p1. Table construction bounds every transition inside the table,
	// so the loop needs no per-step range checks; truncation is caught
	// by the reader's sticky overread flag after the loop.
	for i := 0; i < rawLen; i += 2 {
		e := st.dtable[p0]
		dst = append(dst, byte(e>>24))
		nb := uint(e>>16) & 0xFF
		p0 = e&0xFFFF + uint32(br.Peek(nb))
		br.Consume(nb)
		if i+1 == rawLen {
			break
		}
		e = st.dtable[p1]
		dst = append(dst, byte(e>>24))
		nb = uint(e>>16) & 0xFF
		p1 = e&0xFFFF + uint32(br.Peek(nb))
		br.Consume(nb)
	}
	if br.Overread() {
		return nil, fmt.Errorf("entropy: bitstream truncated mid-block")
	}
	return dst, nil
}
