package entropy

import (
	"bytes"
	"testing"
)

// testRNG is a small deterministic xorshift generator so the corpora
// are stable across runs and platforms.
type testRNG uint64

func (r *testRNG) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = testRNG(x)
	return x
}

// corpus returns named byte patterns spanning the coder's block modes:
// rle, raw (short and incompressible), fse (skewed, text-like,
// exponent-heavy), and multi-block sizes straddling maxBlock.
func corpus() map[string][]byte {
	rng := testRNG(0x9e3779b97f4a7c15)
	skewed := func(n int) []byte {
		// Geometric-ish: low byte values dominate, like quantized DCT
		// coefficient magnitudes.
		out := make([]byte, n)
		for i := range out {
			v := rng.next()
			b := byte(0)
			for v&1 == 1 && b < 12 {
				b++
				v >>= 1
			}
			out[i] = b
		}
		return out
	}
	uniform := func(n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = byte(rng.next())
		}
		return out
	}
	text := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog — ношу 1e-3 "), 200)
	expHeavy := make([]byte, 4096)
	for i := range expHeavy {
		if i%4 == 3 {
			expHeavy[i] = 0x3e | byte(rng.next()&1) // float32 exponent lane
		} else {
			expHeavy[i] = byte(rng.next())
		}
	}
	c := map[string][]byte{
		"empty":       nil,
		"one":         {42},
		"two":         {42, 43},
		"short-raw":   uniform(minCompressBlock - 1),
		"rle":         bytes.Repeat([]byte{7}, 1000),
		"rle-2block":  bytes.Repeat([]byte{9}, maxBlock+17),
		"text":        text,
		"skewed-4k":   skewed(4096),
		"skewed-1blk": skewed(maxBlock),
		"skewed-big":  skewed(2*maxBlock + 100),
		"uniform-4k":  uniform(4096),
		"uniform-big": uniform(maxBlock + 5000),
		"exp-heavy":   expHeavy,
		"min-fse":     skewed(minCompressBlock),
		"all-bytes":   nil,
	}
	all := make([]byte, 0, 256*16)
	for r := 0; r < 16; r++ {
		for v := 0; v < 256; v++ {
			all = append(all, byte(v))
		}
	}
	c["all-bytes"] = all
	return c
}

func TestRoundTrip(t *testing.T) {
	for name, src := range corpus() {
		comp := Compress(nil, src)
		got, err := Decompress(nil, comp)
		if err != nil {
			t.Fatalf("%s: decompress: %v", name, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("%s: round trip mismatch: got %d bytes, want %d", name, len(got), len(src))
		}
		// Framing overhead is bounded: ≤ 4 bytes per 64 KiB block.
		blocks := (len(src) + maxBlock - 1) / maxBlock
		if max := len(src) + 4*blocks; len(comp) > max {
			t.Fatalf("%s: compressed %d bytes exceeds bound %d", name, len(comp), max)
		}
	}
}

// TestReferenceEquivalence pins the fast path to the bit-serial oracle
// in both directions: identical compressed bytes, and each side decodes
// the other's output.
func TestReferenceEquivalence(t *testing.T) {
	for name, src := range corpus() {
		fast := Compress(nil, src)
		ref := ReferenceCompress(src)
		if !bytes.Equal(fast, ref) {
			t.Fatalf("%s: fast and reference compressed bytes differ (%d vs %d bytes)", name, len(fast), len(ref))
		}
		got, err := ReferenceDecompress(fast)
		if err != nil {
			t.Fatalf("%s: reference decode of fast output: %v", name, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("%s: reference decode mismatch", name)
		}
	}
}

func TestSkewedDataShrinks(t *testing.T) {
	for _, name := range []string{"skewed-4k", "skewed-1blk", "text", "rle"} {
		src := corpus()[name]
		comp := Compress(nil, src)
		if len(comp) >= len(src) {
			t.Errorf("%s: expected compression, got %d -> %d bytes", name, len(src), len(comp))
		}
	}
}

// TestTruncatedStream checks every proper prefix of a compressed stream
// fails to decode (the body-length framing catches all of them), on
// both the fast path and the oracle.
func TestTruncatedStream(t *testing.T) {
	comp := Compress(nil, corpus()["skewed-4k"])
	for cut := 1; cut < len(comp); cut += 97 {
		if _, err := Decompress(nil, comp[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(comp))
		}
		if _, err := ReferenceDecompress(comp[:cut]); err == nil {
			t.Fatalf("oracle: prefix of %d/%d bytes decoded without error", cut, len(comp))
		}
	}
}

// TestCorruptAgreement flips bytes across a compressed stream and
// requires the fast path and the oracle to agree exactly: both error,
// or both succeed with identical output.
func TestCorruptAgreement(t *testing.T) {
	comp := Compress(nil, corpus()["skewed-4k"])
	mut := make([]byte, len(comp))
	for pos := 0; pos < len(comp); pos += 13 {
		for _, flip := range []byte{0x01, 0x80, 0xFF} {
			copy(mut, comp)
			mut[pos] ^= flip
			fast, fastErr := Decompress(nil, mut)
			ref, refErr := ReferenceDecompress(mut)
			if (fastErr == nil) != (refErr == nil) {
				t.Fatalf("pos %d flip %#x: fast err=%v, oracle err=%v", pos, flip, fastErr, refErr)
			}
			if fastErr == nil && !bytes.Equal(fast, ref) {
				t.Fatalf("pos %d flip %#x: fast and oracle decoded different bytes", pos, flip)
			}
		}
	}
}

func TestCorruptRejected(t *testing.T) {
	cases := map[string][]byte{
		"unknown-mode":     {9, 0},
		"rawlen-too-big":   {modeRaw, 0x81, 0x80, 0x04}, // 65537 > maxBlock
		"raw-truncated":    {modeRaw, 5, 1, 2},
		"rle-missing-sym":  {modeRLE, 5},
		"fse-no-body":      {modeFSE, 0x20},
		"fse-body-overrun": {modeFSE, 0x20, 9, 5, 1},
		"tablelog-low":     {modeFSE, 0x20, 2, 4, 1},
		"tablelog-high":    {modeFSE, 0x20, 2, 13, 1},
		"one-symbol":       {modeFSE, 0x20, 2, 5, 0},
		"table-truncated":  {modeFSE, 0x20, 3, 5, 1, 0},
		"zero-count":       {modeFSE, 0x20, 8, 5, 1, 0, 0, 0, 1, 1, 0},
		"unsorted-syms":    {modeFSE, 0x20, 8, 5, 1, 5, 1, 0, 3, 1, 0},
		"bad-count-sum":    {modeFSE, 0x20, 8, 5, 1, 0, 1, 0, 1, 1, 0},
		"missing-states":   {modeFSE, 0x20, 8, 5, 1, 0, 16, 0, 1, 16, 0},
	}
	for name, src := range cases {
		if _, err := Decompress(nil, src); err == nil {
			t.Errorf("%s: fast path accepted corrupt input", name)
		}
		if _, err := ReferenceDecompress(src); err == nil {
			t.Errorf("%s: oracle accepted corrupt input", name)
		}
	}
}

// TestDecompressCap checks the output bound trips on claimed lengths
// before any oversized append.
func TestDecompressCap(t *testing.T) {
	src := corpus()["skewed-4k"]
	comp := Compress(nil, src)
	if _, err := DecompressCap(nil, comp, len(src)); err != nil {
		t.Fatalf("cap == decoded size must succeed: %v", err)
	}
	if _, err := DecompressCap(nil, comp, len(src)-1); err == nil {
		t.Fatal("cap below decoded size must fail")
	}
	// A tiny rle block claiming maxBlock output against a small cap.
	bomb := []byte{modeRLE, 0x80, 0x80, 0x04, 7} // rawLen = 65536
	if _, err := DecompressCap(nil, bomb, 1024); err == nil {
		t.Fatal("expansion bomb must trip the cap")
	}
}

// TestZeroAllocSteadyState is the alloc-regression gate check.sh runs:
// with reused dst buffers, encode and decode must not allocate.
func TestZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts only hold without -race")
	}
	src := corpus()["skewed-4k"]
	dst := Compress(nil, src)
	comp := append([]byte(nil), dst...)
	out, err := Decompress(nil, comp)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		dst = Compress(dst[:0], src)
		out, err = Decompress(out[:0], comp)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state encode+decode allocates %.1f/op, want 0", allocs)
	}
}

func FuzzRoundTrip(f *testing.F) {
	for _, src := range corpus() {
		if len(src) <= 8192 {
			f.Add(src)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		comp := Compress(nil, data)
		got, err := Decompress(nil, comp)
		if err != nil {
			t.Fatalf("decompress own output: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("round trip mismatch")
		}
		if len(data) <= 4096 {
			if ref := ReferenceCompress(data); !bytes.Equal(comp, ref) {
				t.Fatal("fast and reference compressed bytes differ")
			}
		}
	})
}

func FuzzDecode(f *testing.F) {
	for _, src := range corpus() {
		if len(src) > 0 && len(src) <= 8192 {
			f.Add(Compress(nil, src))
		}
	}
	f.Add([]byte{modeFSE, 0x20, 8, 5, 1, 0, 16, 0, 1, 16, 0, 0xAA, 0xBB})
	// Huf-mode seeds: the wide-alphabet lanes select huf blocks, so the
	// fuzzer starts inside the huf table and 4-stream parsers too.
	for _, name := range []string{"mantissa-lane", "exponent-lane"} {
		src := hufCorpus()[name]
		if len(src) > 8192 {
			src = src[:8192]
		}
		f.Add(CompressHuf(nil, src))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fast, fastErr := Decompress(nil, data)
		if len(data) > 1<<16 {
			return // keep the bit-serial oracle affordable
		}
		ref, refErr := ReferenceDecompress(data)
		if (fastErr == nil) != (refErr == nil) {
			t.Fatalf("fast err=%v, oracle err=%v", fastErr, refErr)
		}
		if fastErr == nil && !bytes.Equal(fast, ref) {
			t.Fatal("fast and oracle decoded different bytes")
		}
	})
}

func BenchmarkCompressSkewed(b *testing.B) {
	src := corpus()["skewed-1blk"]
	var dst []byte
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = Compress(dst[:0], src)
	}
}

func BenchmarkDecompressSkewed(b *testing.B) {
	comp := Compress(nil, corpus()["skewed-1blk"])
	src := corpus()["skewed-1blk"]
	var dst []byte
	var err error
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, err = Decompress(dst[:0], comp)
		if err != nil {
			b.Fatal(err)
		}
	}
}
