//go:build !amd64 || purego

package entropy

// hufSIMD reports whether the 4-stream AVX2 huf decode kernel is
// available; on non-amd64 (or purego) builds it never is and the
// portable per-stream loop does all the work.
func hufSIMD() bool { return false }

// SetSIMD is a test hook matching the amd64 build; without a kernel it
// always leaves SIMD off and reports the previous (false) state.
func SetSIMD(on bool) bool { return false }

func hufDecode4(st *scratch, srcs, outs *[hufNumStreams][]byte, pos, oi *[hufNumStreams]int, buf *[hufNumStreams]uint64, cnt *[hufNumStreams]uint) {
	panic("entropy: hufDecode4 called without SIMD support")
}
