//go:build amd64 && !purego

package entropy

import (
	"unsafe"

	"repro/internal/cpufeat"
)

// huf4State is the register file of the 4-stream decode kernel. Field
// offsets are hard-coded in huf_amd64.s — keep them in sync. Pointers
// are raw cursors into the caller's slices: srcEnd[s]/dstEnd[s] are the
// last positions at which the kernel may still run an iteration for
// stream s (base+len−8 source bytes readable, base+len−2 outputs
// writable), giving the same loop bounds as the portable fast loop.
type huf4State struct {
	lut    unsafe.Pointer                // +0
	srcPtr [hufNumStreams]unsafe.Pointer // +8
	srcEnd [hufNumStreams]unsafe.Pointer // +40
	dstPtr [hufNumStreams]unsafe.Pointer // +72
	dstEnd [hufNumStreams]unsafe.Pointer // +104
	bitBuf [hufNumStreams]uint64         // +136
	bitCnt [hufNumStreams]uint64         // +168
}

// hufDecode4BMI2 runs the four streams interleaved — one LUT probe per
// stream per iteration — until any stream exhausts its kernel bounds,
// leaving the cursors and bit state where the portable loop resumes.
//
//go:noescape
func hufDecode4BMI2(st *huf4State)

// hufSIMDOn gates the 4-stream kernel. The kernel is scalar 4-way ILP
// over general-purpose registers; its only ISA requirement is BMI2
// (flag-free SHLX/SHRX variable shifts).
var hufSIMDOn = cpufeat.Have().BMI2

func hufSIMD() bool { return hufSIMDOn }

// SetSIMD forcibly enables or disables the huf decode kernel for
// tests, returning the previous state. Enabling still requires the CPU
// to have the feature.
func SetSIMD(on bool) bool {
	prev := hufSIMDOn
	hufSIMDOn = on && cpufeat.Have().BMI2
	return prev
}

// hufDecode4 adapts the slice-world decode state to the kernel's raw
// cursors and back. Callers guarantee every stream has ≥ 8 source
// bytes and ≥ 2 output slots (hufKernelViable), so the end cursors
// never underflow their slices.
func hufDecode4(st *scratch, srcs, outs *[hufNumStreams][]byte, pos, oi *[hufNumStreams]int, buf *[hufNumStreams]uint64, cnt *[hufNumStreams]uint) {
	var hs huf4State
	hs.lut = unsafe.Pointer(&st.hlut[0])
	for s := 0; s < hufNumStreams; s++ {
		sp := unsafe.Pointer(unsafe.SliceData(srcs[s]))
		hs.srcPtr[s] = sp
		hs.srcEnd[s] = unsafe.Add(sp, len(srcs[s])-8)
		dp := unsafe.Pointer(unsafe.SliceData(outs[s]))
		hs.dstPtr[s] = dp
		hs.dstEnd[s] = unsafe.Add(dp, len(outs[s])-2)
	}
	hufDecode4BMI2(&hs)
	for s := 0; s < hufNumStreams; s++ {
		pos[s] = int(uintptr(hs.srcPtr[s]) - uintptr(unsafe.Pointer(unsafe.SliceData(srcs[s]))))
		oi[s] = int(uintptr(hs.dstPtr[s]) - uintptr(unsafe.Pointer(unsafe.SliceData(outs[s]))))
		buf[s] = hs.bitBuf[s]
		cnt[s] = uint(hs.bitCnt[s])
	}
}
