//go:build race

package entropy

// raceEnabled reports whether the race detector is compiled in; the
// alloc-regression gate skips under race, where pool and closure
// instrumentation allocates.
const raceEnabled = true
