//go:build amd64 && !purego

#include "textflag.h"

// 4-stream interleaved huf decode kernel. Register plan:
//
//	DI          *huf4State (all cursors live in the struct; only the
//	            bit buffers and counters are register-resident)
//	SI          decode LUT base (st.hlut)
//	R8 –R11     bit buffers, streams 0–3 (MSB-aligned)
//	R12–R15     bit counts,  streams 0–3
//	AX,BX,CX,DX scratch
//
// Each loop iteration decodes one LUT probe (1–2 symbols) from every
// stream; the four dependency chains are independent, which is where
// the speedup over the one-stream portable loop comes from. The loop
// re-checks all eight cursor bounds per iteration, exactly matching the
// portable fast loop's `i+2 <= n && pos+8 <= len(stream)` condition, so
// the kernel and the portable path stop at identical states.
//
// BMI2-only: SHLXQ/SHRXQ take the shift count from any register with no
// flag writes, keeping the four chains free of CL contention.

// REFILL tops up one stream's bit buffer to >56 valid bits: big-endian
// load at the byte cursor, shifted down by the current count and OR'd
// in (re-reading already-buffered bits is idempotent — identical bits
// land on identical positions), then the cursor advances by the number
// of whole bytes that fit.
#define REFILL(BUF, CNT, SRCOFF, skip) \
	CMPQ   CNT, $56          \
	JA     skip              \
	MOVQ   SRCOFF(DI), AX    \
	MOVQ   (AX), BX          \
	BSWAPQ BX                \
	SHRXQ  CNT, BX, BX       \
	ORQ    BX, BUF           \
	MOVQ   $64, BX           \
	SUBQ   CNT, BX           \
	SHRQ   $3, BX            \
	ADDQ   BX, AX            \
	MOVQ   AX, SRCOFF(DI)    \
	SHLQ   $3, BX            \
	ADDQ   BX, CNT           \
skip:

// PROBE decodes one LUT entry for one stream: index by the top 11
// buffer bits, store the entry's symbol pair (MOVW writes sym1 then
// sym2 in output order; a single-symbol entry carries 0 in the pair
// byte and advances by 1, so the 0 is overwritten next iteration),
// advance the output cursor by 1+pairFlag, and consume totalBits.
#define PROBE(BUF, CNT, DSTOFF) \
	MOVQ  BUF, AX            \
	SHRQ  $53, AX            \
	MOVL  (SI)(AX*4), AX     \
	MOVQ  DSTOFF(DI), BX     \
	MOVL  AX, DX             \
	SHRL  $16, DX            \
	MOVW  DX, (BX)           \
	MOVL  AX, DX             \
	SHRL  $15, DX            \
	ANDL  $1, DX             \
	LEAQ  1(BX)(DX*1), BX    \
	MOVQ  BX, DSTOFF(DI)     \
	MOVL  AX, CX             \
	SHRL  $8, CX             \
	ANDL  $0x1F, CX          \
	SHLXQ CX, BUF, BUF       \
	SUBQ  CX, CNT

// func hufDecode4BMI2(st *huf4State)
TEXT ·hufDecode4BMI2(SB), NOSPLIT, $0-8
	MOVQ st+0(FP), DI
	MOVQ 0(DI), SI      // LUT base
	MOVQ 136(DI), R8    // bit buffers
	MOVQ 144(DI), R9
	MOVQ 152(DI), R10
	MOVQ 160(DI), R11
	MOVQ 168(DI), R12   // bit counts
	MOVQ 176(DI), R13
	MOVQ 184(DI), R14
	MOVQ 192(DI), R15

loop:
	// Every stream needs 8 readable source bytes and 2 writable output
	// slots for this iteration (srcEnd = base+len-8, dstEnd = base+len-2).
	MOVQ 8(DI), AX
	CMPQ AX, 40(DI)
	JA   done
	MOVQ 16(DI), AX
	CMPQ AX, 48(DI)
	JA   done
	MOVQ 24(DI), AX
	CMPQ AX, 56(DI)
	JA   done
	MOVQ 32(DI), AX
	CMPQ AX, 64(DI)
	JA   done
	MOVQ 72(DI), AX
	CMPQ AX, 104(DI)
	JA   done
	MOVQ 80(DI), AX
	CMPQ AX, 112(DI)
	JA   done
	MOVQ 88(DI), AX
	CMPQ AX, 120(DI)
	JA   done
	MOVQ 96(DI), AX
	CMPQ AX, 128(DI)
	JA   done

	REFILL(R8, R12, 8, noref0)
	PROBE(R8, R12, 72)
	REFILL(R9, R13, 16, noref1)
	PROBE(R9, R13, 80)
	REFILL(R10, R14, 24, noref2)
	PROBE(R10, R14, 88)
	REFILL(R11, R15, 32, noref3)
	PROBE(R11, R15, 96)
	JMP  loop

done:
	MOVQ R8, 136(DI)
	MOVQ R9, 144(DI)
	MOVQ R10, 152(DI)
	MOVQ R11, 160(DI)
	MOVQ R12, 168(DI)
	MOVQ R13, 176(DI)
	MOVQ R14, 184(DI)
	MOVQ R15, 192(DI)
	RET
