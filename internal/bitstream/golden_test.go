package bitstream

import (
	"encoding/hex"
	"encoding/json"
	"os"
	"strconv"
	"testing"
)

// goldenStream is one recorded byte-at-a-time-era stream: a write
// script, the exact bytes it produced (including partial-byte zero
// padding), a read-back script with expected values, and the position
// at which ErrOutOfBits fired.
type goldenStream struct {
	Name      string          `json:"name"`
	Writes    [][2]any        `json:"writes"` // [valueHex, width]
	Hex       string          `json:"hex"`
	Bits      int             `json:"bits"`
	Reads     []uint          `json:"reads,omitempty"`
	Want      []string        `json:"want,omitempty"`
	FailAfter int             `json:"fail_after,omitempty"`
	FailWidth uint            `json:"fail_width,omitempty"`
	raw       json.RawMessage `json:"-"`
}

func loadGolden(t *testing.T) []goldenStream {
	t.Helper()
	data, err := os.ReadFile("testdata/golden_v1.json")
	if err != nil {
		t.Fatal(err)
	}
	var gs []goldenStream
	if err := json.Unmarshal(data, &gs); err != nil {
		t.Fatal(err)
	}
	if len(gs) == 0 {
		t.Fatal("empty golden corpus")
	}
	return gs
}

// TestGoldenWriter replays each recorded write script and requires the
// word-at-a-time Writer to produce byte-identical output, including the
// zero padding of the final partial byte.
func TestGoldenWriter(t *testing.T) {
	for _, g := range loadGolden(t) {
		t.Run(g.Name, func(t *testing.T) {
			w := NewWriter()
			for _, wr := range g.Writes {
				v, err := strconv.ParseUint(wr[0].(string), 16, 64)
				if err != nil {
					t.Fatal(err)
				}
				w.WriteBits(v, uint(wr[1].(float64)))
			}
			if w.Bits() != g.Bits {
				t.Fatalf("Bits = %d, recorded %d", w.Bits(), g.Bits)
			}
			got := hex.EncodeToString(w.Bytes())
			if got != g.Hex {
				t.Fatalf("bytes diverge from recorded stream:\n got %s\nwant %s", got, g.Hex)
			}
		})
	}
}

// TestGoldenReader replays each recorded read script against the
// recorded bytes and requires identical values and an identical
// ErrOutOfBits position (erroring without consuming).
func TestGoldenReader(t *testing.T) {
	for _, g := range loadGolden(t) {
		t.Run(g.Name, func(t *testing.T) {
			buf, err := hex.DecodeString(g.Hex)
			if err != nil {
				t.Fatal(err)
			}
			r := NewReader(buf)
			for i, width := range g.Reads {
				want, err := strconv.ParseUint(g.Want[i], 16, 64)
				if err != nil {
					t.Fatal(err)
				}
				got, err := r.ReadBits(width)
				if err != nil {
					t.Fatalf("read %d (width %d): %v", i, width, err)
				}
				if got != want {
					t.Fatalf("read %d (width %d) = %#x, recorded %#x", i, width, got, want)
				}
			}
			if g.FailWidth > 0 {
				before := r.Remaining()
				if _, err := r.ReadBits(g.FailWidth); err != ErrOutOfBits {
					t.Fatalf("after %d reads, width %d: err = %v, recorded ErrOutOfBits", g.FailAfter, g.FailWidth, err)
				}
				if r.Remaining() != before {
					t.Fatalf("failed read consumed bits: remaining %d -> %d", before, r.Remaining())
				}
			}
		})
	}
}

// TestGoldenPeekConsume decodes every golden stream a second time
// through the Peek/Consume API, which must agree with ReadBits.
func TestGoldenPeekConsume(t *testing.T) {
	for _, g := range loadGolden(t) {
		t.Run(g.Name, func(t *testing.T) {
			buf, err := hex.DecodeString(g.Hex)
			if err != nil {
				t.Fatal(err)
			}
			r := NewReader(buf)
			for i, width := range g.Reads {
				want, _ := strconv.ParseUint(g.Want[i], 16, 64)
				var got uint64
				if width > 56 {
					// Peek is capped at 56 bits; split wide reads.
					hi := r.Peek(56)
					r.Consume(56)
					lo := r.Peek(width - 56)
					r.Consume(width - 56)
					got = hi<<(width-56) | lo
				} else {
					got = r.Peek(width)
					r.Consume(width)
				}
				if r.Overread() {
					t.Fatalf("read %d (width %d): unexpected overread", i, width)
				}
				if got != want {
					t.Fatalf("read %d (width %d) = %#x, recorded %#x", i, width, got, want)
				}
			}
		})
	}
}
