// Package bitstream provides MSB-first bit-level I/O for the ZFP-style
// fixed-rate codec and the host-side variable-length encoders. These are
// exactly the bit-shift/bit-mask operations the paper's accelerators
// cannot express from PyTorch (§3.1) — which is why they live here, on
// the host, and never inside a device graph.
package bitstream

import (
	"errors"
	"fmt"
)

// Writer accumulates bits MSB-first into a byte slice.
type Writer struct {
	buf  []byte
	acc  uint64 // pending bits, left-aligned in the low `n` positions
	n    uint   // number of pending bits in acc
	bits int    // total bits written
}

// NewWriter returns an empty bit writer.
func NewWriter() *Writer { return &Writer{} }

// WriteBits appends the low `width` bits of v, most significant first.
// width must be ≤ 64.
func (w *Writer) WriteBits(v uint64, width uint) {
	if width > 64 {
		panic(fmt.Sprintf("bitstream: width %d > 64", width))
	}
	if width == 0 {
		return
	}
	if width < 64 {
		v &= (1 << width) - 1
	}
	w.bits += int(width)
	for width > 0 {
		space := 8 - w.n%8
		if w.n%8 == 0 {
			w.buf = append(w.buf, 0)
			space = 8
		}
		take := space
		if width < take {
			take = width
		}
		chunk := byte(v >> (width - take))
		w.buf[len(w.buf)-1] |= chunk << (space - take)
		w.n += take
		width -= take
	}
}

// WriteBit appends one bit.
func (w *Writer) WriteBit(b uint) { w.WriteBits(uint64(b&1), 1) }

// Bits returns the total number of bits written.
func (w *Writer) Bits() int { return w.bits }

// Bytes returns the encoded buffer (final partial byte zero-padded).
func (w *Writer) Bytes() []byte { return w.buf }

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf []byte
	pos int // bit position
}

// NewReader wraps buf for reading.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ErrOutOfBits reports an over-read.
var ErrOutOfBits = errors.New("bitstream: read past end of stream")

// ReadBits consumes `width` bits and returns them in the low positions.
func (r *Reader) ReadBits(width uint) (uint64, error) {
	if width > 64 {
		panic(fmt.Sprintf("bitstream: width %d > 64", width))
	}
	if r.pos+int(width) > 8*len(r.buf) {
		return 0, ErrOutOfBits
	}
	var v uint64
	for width > 0 {
		byteIx := r.pos / 8
		bitIx := uint(r.pos % 8)
		avail := 8 - bitIx
		take := avail
		if width < take {
			take = width
		}
		chunk := (r.buf[byteIx] >> (avail - take)) & ((1 << take) - 1)
		v = v<<take | uint64(chunk)
		r.pos += int(take)
		width -= take
	}
	return v, nil
}

// ReadBit consumes one bit.
func (r *Reader) ReadBit() (uint, error) {
	v, err := r.ReadBits(1)
	return uint(v), err
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return 8*len(r.buf) - r.pos }

// Skip advances past n bits.
func (r *Reader) Skip(n int) error {
	if r.pos+n > 8*len(r.buf) {
		return ErrOutOfBits
	}
	r.pos += n
	return nil
}
