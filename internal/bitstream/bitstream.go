// Package bitstream provides MSB-first bit-level I/O for the ZFP-style
// fixed-rate codec and the host-side variable-length encoders. These are
// exactly the bit-shift/bit-mask operations the paper's accelerators
// cannot express from PyTorch (§3.1) — which is why they live here, on
// the host, and never inside a device graph.
//
// Both ends run on a 64-bit accumulator: the Writer packs bits into a
// word and flushes eight bytes at a time, and the Reader refills a word
// and serves Peek/Consume out of it, so the per-bit inner loops of the
// bit-plane and Huffman coders touch memory once per word instead of
// once per byte. The byte stream produced is identical, bit for bit, to
// the original byte-at-a-time implementation.
package bitstream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"slices"
	"sync"
)

// Writer accumulates bits MSB-first into a growable byte buffer.
//
// The zero value is ready to use. A Writer may be reused across streams
// with Reset, which retains the underlying buffer; pool Writers with
// GetWriter/PutWriter to make steady-state encoding allocation-free.
type Writer struct {
	buf    []byte
	acc    uint64 // pending bits, left-aligned (top n bits valid)
	n      uint   // number of pending bits in acc, < 64 between calls
	bits   int    // total bits written
	sealed bool   // Bytes has been called; writes are rejected until Reset
}

// NewWriter returns an empty bit writer.
func NewWriter() *Writer { return &Writer{} }

var writerPool = sync.Pool{New: func() any { return &Writer{} }}

// GetWriter returns a reset Writer from a package pool.
func GetWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset()
	return w
}

// PutWriter returns w to the package pool. The caller must not use w —
// or any slice previously obtained from w.Bytes() — afterwards.
func PutWriter(w *Writer) { writerPool.Put(w) }

// Reset discards all written bits and un-seals the writer, retaining
// the underlying buffer for reuse. Any slice previously returned by
// Bytes aliases that buffer and is invalidated.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.acc = 0
	w.n = 0
	w.bits = 0
	w.sealed = false
}

// Grow ensures the buffer can absorb n more bytes without
// reallocating, so encoders that know a stream's size bound can
// collapse the append-growth ladder (a pool Writer that survived a GC
// restarts from an empty buffer) into at most one allocation.
func (w *Writer) Grow(n int) {
	if cap(w.buf)-len(w.buf) < n {
		w.buf = slices.Grow(w.buf, n)
	}
}

func (w *Writer) flushWord() {
	w.buf = binary.BigEndian.AppendUint64(w.buf, w.acc)
	w.acc = 0
	w.n = 0
}

// WriteBits appends the low `width` bits of v, most significant first.
// width must be ≤ 64.
func (w *Writer) WriteBits(v uint64, width uint) {
	if width > 64 {
		panic(fmt.Sprintf("bitstream: width %d > 64", width))
	}
	if w.sealed {
		panic("bitstream: WriteBits after Bytes; call Reset first")
	}
	if width == 0 {
		return
	}
	if width < 64 {
		v &= (1 << width) - 1
	}
	w.bits += int(width)
	if space := 64 - w.n; width <= space {
		w.acc |= v << (space - width)
		w.n += width
		if w.n == 64 {
			w.flushWord()
		}
		return
	}
	// Split across the word boundary: top `space` bits complete the
	// accumulator, the low remainder starts the next word.
	space := 64 - w.n
	w.acc |= v >> (width - space)
	w.flushWord()
	rem := width - space // ≥ 1 and ≤ 63
	w.acc = v << (64 - rem)
	w.n = rem
}

// WriteBit appends one bit.
func (w *Writer) WriteBit(b uint) {
	if w.sealed {
		panic("bitstream: WriteBit after Bytes; call Reset first")
	}
	w.bits++
	w.acc |= uint64(b&1) << (63 - w.n)
	w.n++
	if w.n == 64 {
		w.flushWord()
	}
}

// Bits returns the total number of bits written.
func (w *Writer) Bits() int { return w.bits }

// Bytes seals the writer and returns the encoded buffer, with the final
// partial byte zero-padded. The returned slice aliases the Writer's
// internal buffer: it is invalidated by Reset (and by returning the
// Writer to the pool), so callers handing the bytes to longer-lived
// owners must copy. Further writes without an intervening Reset panic;
// repeated Bytes calls return the same sealed buffer.
func (w *Writer) Bytes() []byte {
	if !w.sealed {
		for w.n > 0 {
			w.buf = append(w.buf, byte(w.acc>>56))
			w.acc <<= 8
			if w.n > 8 {
				w.n -= 8
			} else {
				w.n = 0
			}
		}
		w.sealed = true
	}
	return w.buf
}

// Reader consumes bits MSB-first from a byte slice.
//
// Two usage styles are supported and may be mixed:
//
//   - ReadBits/ReadBit/Skip: strict, error-checked. An over-read
//     returns ErrOutOfBits without consuming anything.
//   - Peek/Consume: the table-driven decode style. Peek returns the
//     next bits zero-padded past the end of the stream; Consume
//     advances unconditionally and sets a sticky Overread flag when it
//     runs past the end. Check Overread once per decoded run instead
//     of per bit.
type Reader struct {
	buf  []byte
	off  int    // next unread byte offset in buf
	acc  uint64 // unread bits, left-aligned (top n bits valid)
	n    uint   // number of valid bits in acc
	over bool   // a Consume ran past the end of the stream
}

// NewReader wraps buf for reading.
func NewReader(buf []byte) *Reader {
	r := &Reader{}
	r.Reset(buf)
	return r
}

// Reset re-points the reader at buf, clearing all state. It allows a
// stack- or struct-embedded Reader to be reused without allocation.
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.off = 0
	r.acc = 0
	r.n = 0
	r.over = false
	r.refill()
}

// ErrOutOfBits reports an over-read.
var ErrOutOfBits = errors.New("bitstream: read past end of stream")

// refill tops the accumulator up to at least 57 valid bits, or to the
// end of the stream, whichever comes first.
func (r *Reader) refill() {
	if r.n == 0 && r.off+8 <= len(r.buf) {
		r.acc = binary.BigEndian.Uint64(r.buf[r.off:])
		r.off += 8
		r.n = 64
		return
	}
	for r.n <= 56 && r.off < len(r.buf) {
		r.acc |= uint64(r.buf[r.off]) << (56 - r.n)
		r.off++
		r.n += 8
	}
}

// take consumes width ≤ r.n bits from the accumulator. take(0) is a
// no-op returning 0; take(64) drains a full accumulator.
func (r *Reader) take(width uint) uint64 {
	v := r.acc >> (64 - width) // Go defines x>>64 == 0, so width 0 works
	r.acc <<= width
	r.n -= width
	return v
}

// ReadBits consumes `width` bits and returns them in the low positions.
// If fewer than width bits remain, it returns ErrOutOfBits and consumes
// nothing.
func (r *Reader) ReadBits(width uint) (uint64, error) {
	if width > 64 {
		panic(fmt.Sprintf("bitstream: width %d > 64", width))
	}
	if width <= r.n {
		return r.take(width), nil
	}
	if uint(8*(len(r.buf)-r.off))+r.n < width {
		return 0, ErrOutOfBits
	}
	r.refill()
	if width <= r.n {
		return r.take(width), nil
	}
	// width ∈ [58, 64] straddling a refill boundary: drain, refill, finish.
	have := r.n
	v := r.take(have)
	r.refill()
	rest := width - have
	return v<<rest | r.take(rest), nil
}

// ReadBit consumes one bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.n == 0 {
		if r.off >= len(r.buf) {
			return 0, ErrOutOfBits
		}
		r.refill()
	}
	b := uint(r.acc >> 63)
	r.acc <<= 1
	r.n--
	return b, nil
}

// Peek returns the next `width` ≤ 56 bits without consuming them. Past
// the end of the stream the missing low bits read as zero; pair with
// Consume and check Overread to detect truncation.
func (r *Reader) Peek(width uint) uint64 {
	if r.n < width {
		r.refill()
	}
	return r.acc >> (64 - width)
}

// Consume advances past `width` bits previously examined with Peek.
// Consuming more bits than remain empties the reader and sets the
// sticky Overread flag.
func (r *Reader) Consume(width uint) {
	if r.n < width {
		r.refill()
		if r.n < width {
			r.acc, r.n, r.over = 0, 0, true
			return
		}
	}
	r.acc <<= width
	r.n -= width
}

// Overread reports whether a Consume ran past the end of the stream.
func (r *Reader) Overread() bool { return r.over }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return 8*(len(r.buf)-r.off) + int(r.n) }

// Skip advances past n ≥ 0 bits, or returns ErrOutOfBits (consuming
// nothing) if fewer remain.
func (r *Reader) Skip(n int) error {
	if n > r.Remaining() {
		return ErrOutOfBits
	}
	for n > 0 {
		if r.n == 0 {
			r.refill()
		}
		step := uint(n)
		if step > r.n {
			step = r.n
		}
		r.take(step)
		n -= int(step)
	}
	return nil
}
