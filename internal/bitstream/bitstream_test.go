package bitstream

import (
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0, 5)
	w.WriteBits(0xDEADBEEF, 32)
	w.WriteBit(1)
	if w.Bits() != 3+8+5+32+1 {
		t.Fatalf("Bits = %d", w.Bits())
	}
	r := NewReader(w.Bytes())
	for _, c := range []struct {
		width uint
		want  uint64
	}{{3, 0b101}, {8, 0xFF}, {5, 0}, {32, 0xDEADBEEF}, {1, 1}} {
		got, err := r.ReadBits(c.width)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("ReadBits(%d) = %#x, want %#x", c.width, got, c.want)
		}
	}
}

func TestWidthMasking(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xFFFF, 4) // only low 4 bits should be kept
	r := NewReader(w.Bytes())
	v, err := r.ReadBits(4)
	if err != nil || v != 0xF {
		t.Fatalf("masked write read back %#x (%v)", v, err)
	}
}

func TestZeroWidthIsNoop(t *testing.T) {
	w := NewWriter()
	w.WriteBits(123, 0)
	if w.Bits() != 0 || len(w.Bytes()) != 0 {
		t.Fatal("zero-width write must not emit anything")
	}
}

func TestFull64BitWrite(t *testing.T) {
	w := NewWriter()
	const v = 0xA5A5_5A5A_DEAD_BEEF
	w.WriteBits(v, 64)
	r := NewReader(w.Bytes())
	got, err := r.ReadBits(64)
	if err != nil || got != v {
		t.Fatalf("64-bit round trip %#x (%v)", got, err)
	}
}

func TestOverReadFails(t *testing.T) {
	w := NewWriter()
	w.WriteBits(1, 3)
	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal("padded byte should still be readable")
	}
	if _, err := r.ReadBits(1); err != ErrOutOfBits {
		t.Fatalf("over-read error = %v", err)
	}
}

func TestSkipAndRemaining(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xAB, 8)
	w.WriteBits(0xCD, 8)
	r := NewReader(w.Bytes())
	if r.Remaining() != 16 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	if err := r.Skip(8); err != nil {
		t.Fatal(err)
	}
	v, err := r.ReadBits(8)
	if err != nil || v != 0xCD {
		t.Fatalf("after skip read %#x", v)
	}
	if err := r.Skip(1); err != ErrOutOfBits {
		t.Fatal("skip past end must fail")
	}
}

// Property: any sequence of (value, width) writes reads back identically.
func TestRoundTripProperty(t *testing.T) {
	f := func(values []uint64, widths []uint8) bool {
		n := len(values)
		if len(widths) < n {
			n = len(widths)
		}
		w := NewWriter()
		type rec struct {
			v     uint64
			width uint
		}
		var recs []rec
		for i := 0; i < n; i++ {
			width := uint(widths[i] % 65)
			v := values[i]
			if width < 64 {
				v &= (1 << width) - 1
			}
			w.WriteBits(values[i], width)
			recs = append(recs, rec{v, width})
		}
		r := NewReader(w.Bytes())
		for _, rc := range recs {
			got, err := r.ReadBits(rc.width)
			if err != nil || got != rc.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
