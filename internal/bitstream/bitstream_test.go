package bitstream

import (
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0, 5)
	w.WriteBits(0xDEADBEEF, 32)
	w.WriteBit(1)
	if w.Bits() != 3+8+5+32+1 {
		t.Fatalf("Bits = %d", w.Bits())
	}
	r := NewReader(w.Bytes())
	for _, c := range []struct {
		width uint
		want  uint64
	}{{3, 0b101}, {8, 0xFF}, {5, 0}, {32, 0xDEADBEEF}, {1, 1}} {
		got, err := r.ReadBits(c.width)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("ReadBits(%d) = %#x, want %#x", c.width, got, c.want)
		}
	}
}

func TestWidthMasking(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xFFFF, 4) // only low 4 bits should be kept
	r := NewReader(w.Bytes())
	v, err := r.ReadBits(4)
	if err != nil || v != 0xF {
		t.Fatalf("masked write read back %#x (%v)", v, err)
	}
}

func TestZeroWidthIsNoop(t *testing.T) {
	w := NewWriter()
	w.WriteBits(123, 0)
	if w.Bits() != 0 || len(w.Bytes()) != 0 {
		t.Fatal("zero-width write must not emit anything")
	}
}

func TestFull64BitWrite(t *testing.T) {
	w := NewWriter()
	const v = 0xA5A5_5A5A_DEAD_BEEF
	w.WriteBits(v, 64)
	r := NewReader(w.Bytes())
	got, err := r.ReadBits(64)
	if err != nil || got != v {
		t.Fatalf("64-bit round trip %#x (%v)", got, err)
	}
}

func TestOverReadFails(t *testing.T) {
	w := NewWriter()
	w.WriteBits(1, 3)
	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal("padded byte should still be readable")
	}
	if _, err := r.ReadBits(1); err != ErrOutOfBits {
		t.Fatalf("over-read error = %v", err)
	}
}

func TestSkipAndRemaining(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xAB, 8)
	w.WriteBits(0xCD, 8)
	r := NewReader(w.Bytes())
	if r.Remaining() != 16 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	if err := r.Skip(8); err != nil {
		t.Fatal(err)
	}
	v, err := r.ReadBits(8)
	if err != nil || v != 0xCD {
		t.Fatalf("after skip read %#x", v)
	}
	if err := r.Skip(1); err != ErrOutOfBits {
		t.Fatal("skip past end must fail")
	}
}

// Property: any sequence of (value, width) writes reads back identically.
func TestRoundTripProperty(t *testing.T) {
	f := func(values []uint64, widths []uint8) bool {
		n := len(values)
		if len(widths) < n {
			n = len(widths)
		}
		w := NewWriter()
		type rec struct {
			v     uint64
			width uint
		}
		var recs []rec
		for i := 0; i < n; i++ {
			width := uint(widths[i] % 65)
			v := values[i]
			if width < 64 {
				v &= (1 << width) - 1
			}
			w.WriteBits(values[i], width)
			recs = append(recs, rec{v, width})
		}
		r := NewReader(w.Bytes())
		for _, rc := range recs {
			got, err := r.ReadBits(rc.width)
			if err != nil || got != rc.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesSealsWriter(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xAB, 8)
	b1 := w.Bytes()
	b2 := w.Bytes()
	if &b1[0] != &b2[0] || len(b1) != len(b2) {
		t.Fatal("repeated Bytes must return the same sealed buffer")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("WriteBits after Bytes must panic")
		}
	}()
	w.WriteBits(1, 1)
}

func TestResetReusesBuffer(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xDEADBEEF, 32)
	first := w.Bytes()
	if len(first) != 4 {
		t.Fatalf("len = %d", len(first))
	}
	w.Reset()
	if w.Bits() != 0 {
		t.Fatal("Reset must clear bit count")
	}
	w.WriteBits(0x12, 8)
	got := w.Bytes()
	if len(got) != 1 || got[0] != 0x12 {
		t.Fatalf("after Reset got % x", got)
	}
}

func TestWriterPool(t *testing.T) {
	w := GetWriter()
	w.WriteBits(0xFFFF, 16)
	if len(w.Bytes()) != 2 {
		t.Fatal("pooled writer broken")
	}
	PutWriter(w)
	w2 := GetWriter()
	if w2.Bits() != 0 {
		t.Fatal("pooled writer not reset")
	}
	PutWriter(w2)
}

func TestPeekConsumeOverread(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b1011, 4)
	r := NewReader(w.Bytes()) // one padded byte: 1011_0000
	if v := r.Peek(4); v != 0b1011 {
		t.Fatalf("Peek(4) = %#b", v)
	}
	// Peeking past the end zero-pads.
	if v := r.Peek(12); v != 0b1011_0000_0000 {
		t.Fatalf("Peek(12) = %#b", v)
	}
	r.Consume(8)
	if r.Overread() {
		t.Fatal("consuming the padded byte is not an overread")
	}
	r.Consume(1)
	if !r.Overread() {
		t.Fatal("consuming past the end must set Overread")
	}
	if !r.Overread() {
		t.Fatal("Overread must be sticky")
	}
}

func TestWideReadFailureConsumesNothing(t *testing.T) {
	// 60 bits available, 64 requested: the split path must pre-check
	// and leave the reader untouched on failure.
	w := NewWriter()
	w.WriteBits(^uint64(0), 56)
	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	rem := r.Remaining()
	if _, err := r.ReadBits(64); err != ErrOutOfBits {
		t.Fatalf("err = %v", err)
	}
	if r.Remaining() != rem {
		t.Fatalf("failed wide read consumed bits: %d -> %d", rem, r.Remaining())
	}
	// The remaining 53 bits must still read back intact.
	v, err := r.ReadBits(53)
	if err != nil || v != (1<<53)-1 {
		t.Fatalf("tail read %#x (%v)", v, err)
	}
}

func TestReaderReset(t *testing.T) {
	r := NewReader([]byte{0xAA})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	r.Reset([]byte{0x55, 0x55})
	if r.Remaining() != 16 || r.Overread() {
		t.Fatal("Reset must clear state")
	}
	v, err := r.ReadBits(16)
	if err != nil || v != 0x5555 {
		t.Fatalf("after Reset read %#x (%v)", v, err)
	}
}
