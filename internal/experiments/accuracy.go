// Package experiments implements the paper's evaluation harness: one
// function per table and figure. Accuracy experiments (Figs. 7, 8, 9,
// 16) train the four Table 3 benchmarks with each batch compressed and
// then decompressed before it reaches the model, exactly as §4.1
// describes; throughput experiments (Figs. 10–15, 17) sweep the
// compiled compressor graphs across the simulated accelerators.
package experiments

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Transform is applied to every training batch before the model sees it
// (compress→decompress round trip, or identity for the baseline).
type Transform struct {
	// Label names the series the way the paper's legends do.
	Label string
	// Ratio is the nominal compression ratio (1 for the baseline).
	Ratio float64
	// Apply maps a batch to its post-round-trip version.
	Apply func(x *tensor.Tensor) (*tensor.Tensor, error)
}

// Baseline is the no-compression transform ("base" in the figures).
func Baseline() Transform {
	return Transform{
		Label: "base",
		Ratio: 1,
		Apply: func(x *tensor.Tensor) (*tensor.Tensor, error) { return x, nil },
	}
}

// FromSpec builds a Transform from any registered codec spec string
// ("dctc:cf=4,sg", "zfp:rate=8", …), labeled with the canonical spec.
func FromSpec(spec string) (Transform, error) {
	c, err := codec.New(spec)
	if err != nil {
		return Transform{}, err
	}
	return Transform{Label: c.Spec(), Ratio: c.Ratio(), Apply: applyCodec(c)}, nil
}

// applyCodec adapts a registry codec's round trip (which takes the
// serialization-free batched path for dctc) to the Transform signature.
func applyCodec(c codec.Codec) func(x *tensor.Tensor) (*tensor.Tensor, error) {
	return func(x *tensor.Tensor) (*tensor.Tensor, error) {
		out, _, err := c.RoundTrip(x)
		return out, err
	}
}

// dctcAt builds a dctc codec and pre-compiles it for resolution n, so
// incompatible (config, n) pairs fail at construction exactly like
// core.NewCompressor used to.
func dctcAt(spec string, n int) (codec.Codec, error) {
	c, err := codec.New(spec)
	if err != nil {
		return nil, err
	}
	if _, err := codec.Compiler(c, n); err != nil {
		return nil, err
	}
	return c, nil
}

// Chop returns the DCT+Chop round-trip transform at the given chop
// factor for n×n inputs.
func Chop(cf, n int) (Transform, error) {
	c, err := dctcAt(fmt.Sprintf("dctc:cf=%d", cf), n)
	if err != nil {
		return Transform{}, err
	}
	return Transform{
		Label: fmt.Sprintf("%.2f", c.Ratio()),
		Ratio: c.Ratio(),
		Apply: applyCodec(c),
	}, nil
}

// SG returns the scatter/gather-variant round-trip transform (§3.5.2).
func SG(cf, n int) (Transform, error) {
	c, err := dctcAt(fmt.Sprintf("dctc:cf=%d,sg", cf), n)
	if err != nil {
		return Transform{}, err
	}
	return Transform{
		Label: fmt.Sprintf("SG %.2f", c.Ratio()),
		Ratio: c.Ratio(),
		Apply: applyCodec(c),
	}, nil
}

// JPEG returns the full JPEG-style round trip at the given quality
// factor — the Dodge & Karam [15] experiment the paper's related work
// builds on (training-data compression via JPEG QF).
func JPEG(quality int) (Transform, error) {
	c, err := codec.New(fmt.Sprintf("jpegq:q=%d", quality))
	if err != nil {
		return Transform{}, err
	}
	return Transform{
		Label: fmt.Sprintf("jpeg q%d", quality),
		// JPEG's ratio is data-dependent (the VLE stage); 0 marks it
		// unknown-until-measured in the tables.
		Ratio: 0,
		Apply: applyCodec(c),
	}, nil
}

// ZFP returns a ZFP round-trip transform at the given bits-per-value
// rate (the Fig. 9 baseline).
func ZFP(rate float64) (Transform, error) {
	c, err := codec.New(fmt.Sprintf("zfp:rate=%g", rate))
	if err != nil {
		return Transform{}, err
	}
	return Transform{
		Label: fmt.Sprintf("zfp %.2f", c.Ratio()),
		Ratio: c.Ratio(),
		Apply: applyCodec(c),
	}, nil
}

// TrainOpts sizes one accuracy run. The defaults (DefaultTrainOpts)
// scale the paper's 30-epoch benchmarks down to what a CPU-only Go
// substrate trains in minutes; DESIGN.md documents the substitution.
type TrainOpts struct {
	Epochs    int
	TrainSize int
	TestSize  int
	BatchSize int
	N         int // resolution (n×n)
	Seed      uint64
}

// DefaultTrainOpts returns the harness defaults.
func DefaultTrainOpts() TrainOpts {
	return TrainOpts{Epochs: 8, TrainSize: 192, TestSize: 64, BatchSize: 32, N: 32, Seed: 17}
}

// TrainResult is one series of Fig. 7/8: per-epoch training loss and
// test metric (accuracy for classify, loss for the others).
type TrainResult struct {
	Benchmark  string
	Label      string
	Ratio      float64
	TrainLoss  []float64
	TestMetric []float64 // per-epoch test accuracy or test loss
	// MetricIsAccuracy distinguishes the classify benchmark (higher is
	// better) from the loss-metric benchmarks (lower is better).
	MetricIsAccuracy bool
}

// Final returns the last-epoch test metric.
func (r TrainResult) Final() float64 {
	return r.TestMetric[len(r.TestMetric)-1]
}

// RunClassify trains the classify benchmark (ResNet-style CNN on the
// 10-class synthetic set) under the transform.
func RunClassify(tr Transform, o TrainOpts) (TrainResult, error) {
	gen := datagen.NewClassify(o.Seed, o.N, 10)
	trainX, trainY := gen.Batch(o.TrainSize)
	testX, testY := gen.Batch(o.TestSize)
	rng := tensor.NewRNG(o.Seed + 1)
	model := models.NewResNetS(rng, 10)
	opt := nn.NewAdam(0.002)
	res := TrainResult{Benchmark: "classify", Label: tr.Label, Ratio: tr.Ratio, MetricIsAccuracy: true}
	for epoch := 0; epoch < o.Epochs; epoch++ {
		var epochLoss float64
		batches := 0
		for lo := 0; lo < o.TrainSize; lo += o.BatchSize {
			hi := min(lo+o.BatchSize, o.TrainSize)
			x, err := tr.Apply(trainX.SliceDim0(lo, hi).Clone())
			if err != nil {
				return res, err
			}
			logits := model.Forward(x, true)
			loss, grad := nn.SoftmaxCrossEntropy(logits, trainY[lo:hi])
			model.ZeroGrad()
			model.Backward(grad)
			opt.Step(model.Params())
			epochLoss += loss
			batches++
		}
		res.TrainLoss = append(res.TrainLoss, epochLoss/float64(batches))
		logits := model.Forward(testX, false)
		res.TestMetric = append(res.TestMetric, metrics.Accuracy(logits, testY))
	}
	return res, nil
}

// RunDenoise trains the em_denoise benchmark: the encoder-decoder maps
// compressed noisy micrographs to their clean versions; test loss is
// measured on uncompressed noisy inputs.
func RunDenoise(tr Transform, o TrainOpts) (TrainResult, error) {
	gen := datagen.NewDenoise(o.Seed, o.N)
	trainNoisy, trainClean := gen.Batch(o.TrainSize)
	testNoisy, testClean := gen.Batch(o.TestSize)
	rng := tensor.NewRNG(o.Seed + 1)
	model := models.NewEncDec(rng)
	opt := nn.NewAdam(0.001)
	res := TrainResult{Benchmark: "em_denoise", Label: tr.Label, Ratio: tr.Ratio}
	for epoch := 0; epoch < o.Epochs; epoch++ {
		var epochLoss float64
		batches := 0
		for lo := 0; lo < o.TrainSize; lo += o.BatchSize {
			hi := min(lo+o.BatchSize, o.TrainSize)
			x, err := tr.Apply(trainNoisy.SliceDim0(lo, hi).Clone())
			if err != nil {
				return res, err
			}
			pred := model.Forward(x, true)
			loss, grad := nn.MSELoss(pred, trainClean.SliceDim0(lo, hi))
			model.ZeroGrad()
			model.Backward(grad)
			opt.Step(model.Params())
			epochLoss += loss
			batches++
		}
		res.TrainLoss = append(res.TrainLoss, epochLoss/float64(batches))
		pred := model.Forward(testNoisy, false)
		testLoss, _ := nn.MSELoss(pred, testClean)
		res.TestMetric = append(res.TestMetric, testLoss)
	}
	return res, nil
}

// RunOptical trains the optical_damage benchmark: the autoencoder
// reconstructs healthy beam images; the training batch (input and
// reconstruction target alike) is the compressed round trip, and test
// loss is reconstruction MSE on uncompressed healthy images.
func RunOptical(tr Transform, o TrainOpts) (TrainResult, error) {
	gen := datagen.NewOptical(o.Seed, o.N)
	trainX := gen.Batch(o.TrainSize)
	testX := gen.Batch(o.TestSize)
	rng := tensor.NewRNG(o.Seed + 1)
	model := models.NewAutoencoder(rng)
	opt := nn.NewAdam(0.001)
	res := TrainResult{Benchmark: "optical_damage", Label: tr.Label, Ratio: tr.Ratio}
	for epoch := 0; epoch < o.Epochs; epoch++ {
		var epochLoss float64
		batches := 0
		for lo := 0; lo < o.TrainSize; lo += o.BatchSize {
			hi := min(lo+o.BatchSize, o.TrainSize)
			x, err := tr.Apply(trainX.SliceDim0(lo, hi).Clone())
			if err != nil {
				return res, err
			}
			pred := model.Forward(x, true)
			loss, grad := nn.MSELoss(pred, x)
			model.ZeroGrad()
			model.Backward(grad)
			opt.Step(model.Params())
			epochLoss += loss
			batches++
		}
		res.TrainLoss = append(res.TrainLoss, epochLoss/float64(batches))
		pred := model.Forward(testX, false)
		testLoss, _ := nn.MSELoss(pred, testX)
		res.TestMetric = append(res.TestMetric, testLoss)
	}
	return res, nil
}

// RunCloud trains the slstr_cloud benchmark: the UNet segments cloud
// pixels from compressed multi-channel scenes; masks stay uncompressed.
func RunCloud(tr Transform, o TrainOpts) (TrainResult, error) {
	const channels = 3 // scaled from the paper's 9-channel stacks
	gen := datagen.NewCloudSeg(o.Seed, o.N, channels)
	trainX, trainM := gen.Batch(o.TrainSize)
	testX, testM := gen.Batch(o.TestSize)
	rng := tensor.NewRNG(o.Seed + 1)
	model := models.NewUNet(rng, channels, 4)
	opt := nn.NewAdam(0.002)
	res := TrainResult{Benchmark: "slstr_cloud", Label: tr.Label, Ratio: tr.Ratio}
	zero := func() {
		for _, p := range model.Params() {
			p.Grad.Zero()
		}
	}
	for epoch := 0; epoch < o.Epochs; epoch++ {
		var epochLoss float64
		batches := 0
		for lo := 0; lo < o.TrainSize; lo += o.BatchSize {
			hi := min(lo+o.BatchSize, o.TrainSize)
			x, err := tr.Apply(trainX.SliceDim0(lo, hi).Clone())
			if err != nil {
				return res, err
			}
			logits := model.Forward(x, true)
			loss, grad := nn.BCEWithLogits(logits, trainM.SliceDim0(lo, hi))
			zero()
			model.Backward(grad)
			opt.Step(model.Params())
			epochLoss += loss
			batches++
		}
		res.TrainLoss = append(res.TrainLoss, epochLoss/float64(batches))
		logits := model.Forward(testX, false)
		testLoss, _ := nn.BCEWithLogits(logits, testM)
		res.TestMetric = append(res.TestMetric, testLoss)
	}
	return res, nil
}

// Runner is one benchmark's training entry point.
type Runner func(Transform, TrainOpts) (TrainResult, error)

// Benchmarks maps benchmark name to runner, in Table 3 order.
func Benchmarks() []struct {
	Name string
	Run  Runner
} {
	return []struct {
		Name string
		Run  Runner
	}{
		{"classify", RunClassify},
		{"em_denoise", RunDenoise},
		{"optical_damage", RunOptical},
		{"slstr_cloud", RunCloud},
	}
}

// PercentDiffSeries converts a result into the Fig. 8 y-axis: per-epoch
// percent difference of the test metric against the baseline run.
func PercentDiffSeries(r, base TrainResult) []float64 {
	out := make([]float64, len(r.TestMetric))
	for i := range out {
		out[i] = metrics.PercentDiff(r.TestMetric[i], base.TestMetric[i])
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ChopZFP4 returns the future-work ZFP-block-transform round trip at
// the given chop factor (block size 4, CR = 16/CF²).
func ChopZFP4(cf, n int) (Transform, error) {
	c, err := dctcAt(fmt.Sprintf("dctc:cf=%d,transform=zfp4", cf), n)
	if err != nil {
		return Transform{}, err
	}
	return Transform{
		Label: fmt.Sprintf("zfp4 %.2f", c.Ratio()),
		Ratio: c.Ratio(),
		Apply: applyCodec(c),
	}, nil
}
