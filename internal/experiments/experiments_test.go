package experiments

import (
	"math"
	"strings"
	"testing"

	"fmt"

	"repro/internal/accel"
	"repro/internal/accel/graphcore"
	"repro/internal/accel/platforms"
	"repro/internal/core"
	"repro/internal/tensor"
)

// tinyOpts keeps the unit-test training runs to a couple of seconds.
func tinyOpts() TrainOpts {
	return TrainOpts{Epochs: 2, TrainSize: 32, TestSize: 16, BatchSize: 16, N: 16, Seed: 5}
}

func TestTransformsConstruct(t *testing.T) {
	if _, err := Chop(4, 32); err != nil {
		t.Fatal(err)
	}
	if _, err := Chop(9, 32); err == nil {
		t.Fatal("invalid chop factor must be rejected")
	}
	if _, err := SG(4, 32); err != nil {
		t.Fatal(err)
	}
	if _, err := ZFP(8); err != nil {
		t.Fatal(err)
	}
	if _, err := ZFP(0); err == nil {
		t.Fatal("invalid rate must be rejected")
	}
	b := Baseline()
	if b.Ratio != 1 || b.Label != "base" {
		t.Fatalf("baseline %+v", b)
	}
	r := tensor.NewRNG(1)
	x := r.Uniform(0, 1, 1, 1, 8, 8)
	out, err := b.Apply(x)
	if err != nil || !out.Equal(x) {
		t.Fatal("baseline must be identity")
	}
}

func TestChopTransformMatchesCompressor(t *testing.T) {
	tr, err := Chop(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewCompressor(core.Config{ChopFactor: 4, Serialization: 1}, 16)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(2)
	x := r.Uniform(-1, 1, 2, 3, 16, 16)
	got, err := tr.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.RoundTrip(x)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("Chop transform must be the compressor round trip")
	}
	if tr.Ratio != 4 {
		t.Fatalf("ratio %g", tr.Ratio)
	}
}

func TestAllBenchmarksRun(t *testing.T) {
	o := tinyOpts()
	tr, err := Chop(4, o.N)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range Benchmarks() {
		res, err := b.Run(tr, o)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if len(res.TrainLoss) != o.Epochs || len(res.TestMetric) != o.Epochs {
			t.Fatalf("%s: series lengths %d/%d", b.Name, len(res.TrainLoss), len(res.TestMetric))
		}
		if res.Benchmark != b.Name {
			t.Fatalf("%s: benchmark label %q", b.Name, res.Benchmark)
		}
		if (res.Benchmark == "classify") != res.MetricIsAccuracy {
			t.Fatalf("%s: MetricIsAccuracy = %v", b.Name, res.MetricIsAccuracy)
		}
	}
}

func TestTrainingIsDeterministic(t *testing.T) {
	o := tinyOpts()
	a, err := RunClassify(Baseline(), o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunClassify(Baseline(), o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.TrainLoss {
		if a.TrainLoss[i] != b.TrainLoss[i] {
			t.Fatal("same seed must reproduce the training curve exactly")
		}
	}
}

func TestTrainingLossDecreases(t *testing.T) {
	o := tinyOpts()
	o.Epochs = 4
	o.TrainSize = 64
	res, err := RunClassify(Baseline(), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainLoss[len(res.TrainLoss)-1] >= res.TrainLoss[0] {
		t.Fatalf("classify training loss did not decrease: %v", res.TrainLoss)
	}
}

func TestPercentDiffSeries(t *testing.T) {
	base := TrainResult{TestMetric: []float64{0.5, 0.4}}
	r := TrainResult{TestMetric: []float64{0.55, 0.3}}
	diffs := PercentDiffSeries(r, base)
	if math.Abs(diffs[0]-10) > 1e-9 || math.Abs(diffs[1]+25) > 1e-9 {
		t.Fatalf("diffs %v", diffs)
	}
}

func TestMeasureCompilesAndTimes(t *testing.T) {
	dev := graphcore.New()
	row := Measure(dev, core.Config{ChopFactor: 4, Serialization: 1}, Decompress, 64, 10, 3)
	if row.CompileErr != "" {
		t.Fatalf("compile error: %s", row.CompileErr)
	}
	if row.SimTime <= 0 || row.Throughput <= 0 {
		t.Fatalf("row %+v", row)
	}
	if row.PayloadBytes() != 4*10*3*64*64 {
		t.Fatalf("payload %d", row.PayloadBytes())
	}
}

func TestMeasureRecordsCompileFailure(t *testing.T) {
	sn30 := platforms.ByName("SN30")
	row := Measure(sn30, core.Config{ChopFactor: 4, Serialization: 1}, Compress, 512, 100, 3)
	if row.CompileErr == "" {
		t.Fatal("SN30 at 512 must record a compile failure")
	}
	if !strings.Contains(row.CompileErr, "memory") {
		t.Fatalf("unexpected failure: %s", row.CompileErr)
	}
	if row.SimTime != 0 {
		t.Fatal("failed compiles must not report a time")
	}
}

func TestPartialSerializationTimesScaleByChunks(t *testing.T) {
	// s=2 issues 4 chunk runs: its time must be ≈4× the single-chunk
	// graph time at the chunk resolution.
	dev := graphcore.New()
	ps := Measure(dev, core.Config{ChopFactor: 4, Serialization: 2}, Decompress, 512, 100, 3)
	chunk := Measure(dev, core.Config{ChopFactor: 4, Serialization: 1}, Decompress, 256, 100, 3)
	if ps.CompileErr != "" || chunk.CompileErr != "" {
		t.Fatalf("unexpected compile failure: %q %q", ps.CompileErr, chunk.CompileErr)
	}
	ratio := float64(ps.SimTime) / float64(chunk.SimTime)
	if ratio < 3.99 || ratio > 4.01 {
		t.Fatalf("PS time ratio %g, want 4", ratio)
	}
}

func TestFig15Shape(t *testing.T) {
	// §4.2.3: s=2 512×512 decompression compiles on SN30 and IPU
	// (unlike no-serialization 512 on SN30) and is only ≈2.5–4× slower
	// than the corresponding 256×256 runs of Fig. 11 despite 4× the
	// data and 4× the matmuls.
	for _, name := range []string{"SN30", "IPU"} {
		dev := platforms.ByName(name)
		rows := SweepPartialSerialization([]*accel.Device{dev}, []int{7, 4, 2})
		if len(rows) != 3 {
			t.Fatalf("%s: %d rows", name, len(rows))
		}
		for _, row := range rows {
			if row.CompileErr != "" {
				t.Fatalf("%s cf=%d: %s", name, row.Config.ChopFactor, row.CompileErr)
			}
			base := Measure(dev, core.Config{ChopFactor: row.Config.ChopFactor, Serialization: 1}, Decompress, 256, 100, 3)
			slowdown := float64(row.SimTime) / float64(base.SimTime)
			if slowdown < 2 || slowdown > 4.5 {
				t.Errorf("%s cf=%d: PS slowdown %.2f vs paper's 2.5–3.8×", name, row.Config.ChopFactor, slowdown)
			}
		}
	}
}

func TestSweepResolutionCoversFailures(t *testing.T) {
	rows := SweepResolution(platforms.Accelerators(), Compress, []int{256, 512}, []int{4})
	byDevN := map[string]ThroughputRow{}
	for _, r := range rows {
		byDevN[r.Device+"/"+itoa(r.N)] = r
	}
	// The paper's compile outcomes at 512.
	if byDevN["SN30/512"].CompileErr == "" {
		t.Error("SN30 at 512 must fail")
	}
	if byDevN["GroqChip/512"].CompileErr == "" {
		t.Error("GroqChip at 512 must fail")
	}
	if byDevN["CS-2/512"].CompileErr != "" {
		t.Error("CS-2 at 512 must compile")
	}
	if byDevN["IPU/512"].CompileErr != "" {
		t.Error("IPU at 512 must compile")
	}
}

func TestSweepBatchGroqWall(t *testing.T) {
	rows := SweepBatch([]*accel.Device{platforms.ByName("GroqChip")}, Compress, []int{1000, 2000}, []int{4})
	if rows[0].CompileErr != "" {
		t.Errorf("Groq batch 1000 must compile: %s", rows[0].CompileErr)
	}
	if rows[1].CompileErr == "" {
		t.Error("Groq batch 2000 must fail")
	}
}

func TestSweepSGThroughputTradeoff(t *testing.T) {
	// Fig. 17: SG is slower than chop at equal CF (1.5–2.7×) but has
	// higher CR.
	rows := SweepSG(graphcore.New(), []int{2, 4, 7})
	byKey := map[string]ThroughputRow{}
	for _, r := range rows {
		byKey[itoa(r.Config.ChopFactor)+r.Config.Mode.String()] = r
	}
	for _, cf := range []int{2, 4, 7} {
		chop := byKey[itoa(cf)+core.ModeChop.String()]
		sg := byKey[itoa(cf)+core.ModeSG.String()]
		if chop.CompileErr != "" || sg.CompileErr != "" {
			t.Fatalf("cf=%d compile errors: %q %q", cf, chop.CompileErr, sg.CompileErr)
		}
		if sg.Config.Ratio() <= chop.Config.Ratio() {
			t.Errorf("cf=%d: SG ratio %g not above chop %g", cf, sg.Config.Ratio(), chop.Config.Ratio())
		}
		slowdown := float64(sg.SimTime) / float64(chop.SimTime)
		if slowdown < 1.3 || slowdown > 3.5 {
			t.Errorf("cf=%d: SG slowdown %.2f outside the paper's 1.5–2.7× band", cf, slowdown)
		}
	}
}

func itoa(n int) string {
	return fmt.Sprintf("%d", n)
}

func TestPipelineOverlapMasksCompression(t *testing.T) {
	// §4.2.2: decompression throughput dwarfs the forward/backward pass
	// on the dataflow machines ("the overhead of the compressor is
	// masked in the dataflow pipeline").
	rows := PipelineOverlap(platforms.Accelerators())
	byName := map[string]OverlapRow{}
	for _, r := range rows {
		if r.Err != "" {
			t.Fatalf("%s: %s", r.Device, r.Err)
		}
		byName[r.Device] = r
	}
	for _, name := range []string{"CS-2", "SN30"} {
		r := byName[name]
		if !r.Masked {
			t.Errorf("%s: decompression (%.0f samples/s) does not mask training (%.0f samples/s)", name, r.DecompSamplesPerSec, r.TrainSamplesPerSec)
		}
		if r.Ratio < 10 {
			t.Errorf("%s: masking ratio %.1f; the paper reports orders of magnitude", name, r.Ratio)
		}
	}
	// Devices without cited training rates still report decompression.
	if byName["IPU"].DecompSamplesPerSec <= 0 || byName["IPU"].TrainSamplesPerSec != 0 {
		t.Error("IPU row malformed")
	}
}

func TestZFP4TransformInTraining(t *testing.T) {
	// The future-work transform slots into the accuracy harness too.
	o := tinyOpts()
	tr, err := ChopZFP4(2, o.N)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunClassify(tr, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TrainLoss) != o.Epochs {
		t.Fatal("ZFP4 training did not run")
	}
	if res.Ratio != 4 {
		t.Fatalf("ZFP4 cf=2 ratio %g, want 4", res.Ratio)
	}
}
