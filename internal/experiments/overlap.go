package experiments

import (
	"repro/internal/accel"
	"repro/internal/core"
)

// TrainingThroughput holds the paper's cited end-to-end training rates
// (§4.2.2): "the CS-2 can process ≈205 samples per second during
// training" and the SN30 "backward/forward pass throughput of ≈570
// samples per second", both for ResNet34 on CIFAR10 batches of 100.
var TrainingThroughput = map[string]float64{
	"CS-2": 205,
	"SN30": 570,
}

// OverlapRow quantifies whether decompression can hide inside the
// training pipeline on one device: the §4.2.2 argument that "the
// overhead of the compressor is masked in the dataflow pipeline"
// requires decompression throughput ≥ the forward/backward throughput.
type OverlapRow struct {
	Device string
	// DecompSamplesPerSec is the simulated decompression rate for
	// CIFAR10-shaped batches (100×3×32×32, CF=5 as in the paper's
	// accuracy sweet spot).
	DecompSamplesPerSec float64
	// TrainSamplesPerSec is the paper's cited training rate (0 when the
	// paper gives none for this device).
	TrainSamplesPerSec float64
	// Ratio is decompression rate over training rate (0 when unknown).
	Ratio float64
	// Masked reports whether decompression outpaces training, i.e. the
	// compressor never stalls the pipeline.
	Masked bool
	Err    string
}

// PipelineOverlap evaluates the masking argument on each device for the
// paper's ResNet34/CIFAR10 scenario.
func PipelineOverlap(devs []*accel.Device) []OverlapRow {
	const batch, channels, n, cf = 100, 3, 32, 5
	rows := make([]OverlapRow, 0, len(devs))
	for _, d := range devs {
		row := OverlapRow{Device: d.Name()}
		m := Measure(d, core.Config{ChopFactor: cf, Serialization: 1}, Decompress, n, batch, channels)
		if m.CompileErr != "" {
			row.Err = m.CompileErr
			rows = append(rows, row)
			continue
		}
		row.DecompSamplesPerSec = float64(batch) / m.SimTime.Seconds()
		if train, ok := TrainingThroughput[d.Name()]; ok {
			row.TrainSamplesPerSec = train
			row.Ratio = row.DecompSamplesPerSec / train
			row.Masked = row.Ratio >= 1
		}
		rows = append(rows, row)
	}
	return rows
}
