package experiments

import (
	"time"

	"repro/internal/accel"
	"repro/internal/core"
)

// Op selects the compressor direction under test.
type Op string

// Compress and Decompress are the two measured directions.
const (
	Compress   Op = "compress"
	Decompress Op = "decompress"
)

// ThroughputRow is one point of Figs. 10–15/17: a (device, config,
// workload) triple with its simulated time, or the compile error that
// the paper's corresponding configuration also hits.
type ThroughputRow struct {
	Device     string
	Op         Op
	Config     core.Config
	N          int
	Batch      int
	Channels   int
	SimTime    time.Duration
	Throughput float64 // GB/s over the uncompressed payload
	CompileErr string  // non-empty when compilation failed
}

// PayloadBytes is the uncompressed batch footprint the paper's
// throughput metric divides by.
func (r ThroughputRow) PayloadBytes() int {
	return 4 * r.Batch * r.Channels * r.N * r.N
}

// Measure compiles the configured compressor graph for one direction on
// one device and returns its simulated execution. Partial serialization
// issues the chunk graph s² times, serially (§3.5.1), so its time is
// s² × the chunk-graph time.
func Measure(dev *accel.Device, cfg core.Config, op Op, n, batch, channels int) ThroughputRow {
	row := ThroughputRow{
		Device: dev.Name(), Op: op, Config: cfg,
		N: n, Batch: batch, Channels: channels,
	}
	comp, err := core.NewCompressor(cfg, n)
	if err != nil {
		row.CompileErr = err.Error()
		return row
	}
	build := comp.BuildCompressGraph
	if op == Decompress {
		build = comp.BuildDecompressGraph
	}
	graph, err := build(batch, channels)
	if err != nil {
		row.CompileErr = err.Error()
		return row
	}
	prog, err := dev.Compile(graph)
	if err != nil {
		row.CompileErr = err.Error()
		return row
	}
	runs := cfg.Serialization * cfg.Serialization
	row.SimTime = time.Duration(runs) * prog.Estimate().SimTime
	if sec := row.SimTime.Seconds(); sec > 0 {
		row.Throughput = float64(row.PayloadBytes()) / sec / 1e9
	}
	return row
}

// SweepResolution reproduces Figs. 10/11 (and 14 when given the GPU):
// 100 three-channel samples, resolution swept over the paper's grid,
// chop factor swept 2–7.
func SweepResolution(devs []*accel.Device, op Op, resolutions, cfs []int) []ThroughputRow {
	var rows []ThroughputRow
	for _, d := range devs {
		for _, cf := range cfs {
			for _, n := range resolutions {
				cfg := core.Config{ChopFactor: cf, Serialization: 1}
				rows = append(rows, Measure(d, cfg, op, n, 100, 3))
			}
		}
	}
	return rows
}

// SweepBatch reproduces Figs. 12/13: 64×64 three-channel samples with
// batch size swept over the paper's grid.
func SweepBatch(devs []*accel.Device, op Op, batches, cfs []int) []ThroughputRow {
	var rows []ThroughputRow
	for _, d := range devs {
		for _, cf := range cfs {
			for _, bd := range batches {
				cfg := core.Config{ChopFactor: cf, Serialization: 1}
				rows = append(rows, Measure(d, cfg, op, 64, bd, 3))
			}
		}
	}
	return rows
}

// SweepPartialSerialization reproduces Fig. 15: decompression throughput
// with s=2 on 100 three-channel 512×512 images, chop factor swept
// 7 → 2 (the figure's x-axis order).
func SweepPartialSerialization(devs []*accel.Device, cfs []int) []ThroughputRow {
	var rows []ThroughputRow
	for _, d := range devs {
		for _, cf := range cfs {
			cfg := core.Config{ChopFactor: cf, Serialization: 2}
			rows = append(rows, Measure(d, cfg, Decompress, 512, 100, 3))
		}
	}
	return rows
}

// SweepSG reproduces Fig. 17: DCT+Chop versus the scatter/gather
// optimization for decompression of 100 three-channel 32×32 images on
// the IPU.
func SweepSG(dev *accel.Device, cfs []int) []ThroughputRow {
	var rows []ThroughputRow
	for _, cf := range cfs {
		for _, mode := range []core.Mode{core.ModeChop, core.ModeSG} {
			cfg := core.Config{ChopFactor: cf, Mode: mode, Serialization: 1}
			rows = append(rows, Measure(dev, cfg, Decompress, 32, 100, 3))
		}
	}
	return rows
}
