package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/tensor"
)

// Compressed is the output of Compressor.Compress: one payload tensor
// per spatial chunk (s×s chunks for partial serialization; exactly one
// for s=1). Chop-mode payloads are [BD, C, m, m]; SG payloads are
// [BD, C, L] with L = nblks²·CF(CF+1)/2.
type Compressed struct {
	Config    Config
	BatchSize int
	Channels  int
	N         int // original resolution
	Chunks    []*tensor.Tensor
}

// CompressedBytes is the storage footprint of the payload.
func (c *Compressed) CompressedBytes() int {
	total := 0
	for _, ch := range c.Chunks {
		total += ch.SizeBytes()
	}
	return total
}

// OriginalBytes is the footprint of the uncompressed batch.
func (c *Compressed) OriginalBytes() int {
	return 4 * c.BatchSize * c.Channels * c.N * c.N
}

// EffectiveRatio is the measured ratio OriginalBytes/CompressedBytes;
// it equals Config.Ratio() up to block-count rounding.
func (c *Compressed) EffectiveRatio() float64 {
	return float64(c.OriginalBytes()) / float64(c.CompressedBytes())
}

// serializedMagic identifies the on-disk format of WriteTo/ReadFrom.
const serializedMagic = 0x44435443 // "DCTC"

// WriteTo serializes the compressed payload (little-endian) so the CLI
// can persist compressed datasets. Layout: magic, config, dims, then
// each chunk's raw float32 data.
func (c *Compressed) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(v uint32) error {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
		n += 4
		return nil
	}
	header := []uint32{
		serializedMagic,
		uint32(c.Config.ChopFactor),
		uint32(c.Config.Mode),
		uint32(c.Config.Serialization),
		uint32(c.BatchSize),
		uint32(c.Channels),
		uint32(c.N),
		uint32(len(c.Chunks)),
	}
	for _, h := range header {
		if err := write(h); err != nil {
			return n, err
		}
	}
	for _, chunk := range c.Chunks {
		shape := chunk.Shape()
		if err := write(uint32(len(shape))); err != nil {
			return n, err
		}
		for _, d := range shape {
			if err := write(uint32(d)); err != nil {
				return n, err
			}
		}
		for _, v := range chunk.Data() {
			if err := write(math.Float32bits(v)); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// ReadCompressed deserializes a payload written by WriteTo.
func ReadCompressed(r io.Reader) (*Compressed, error) {
	read := func() (uint32, error) {
		var v uint32
		err := binary.Read(r, binary.LittleEndian, &v)
		return v, err
	}
	magic, err := read()
	if err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if magic != serializedMagic {
		return nil, fmt.Errorf("core: bad magic %#x", magic)
	}
	var h [7]uint32
	for i := range h {
		if h[i], err = read(); err != nil {
			return nil, fmt.Errorf("core: reading header: %w", err)
		}
	}
	c := &Compressed{
		Config: Config{
			ChopFactor:    int(h[0]),
			Mode:          Mode(h[1]),
			Serialization: int(h[2]),
		},
		BatchSize: int(h[3]),
		Channels:  int(h[4]),
		N:         int(h[5]),
	}
	nchunks := int(h[6])
	const maxChunks = 1 << 16
	if nchunks <= 0 || nchunks > maxChunks {
		return nil, fmt.Errorf("core: implausible chunk count %d", nchunks)
	}
	for i := 0; i < nchunks; i++ {
		rank, err := read()
		if err != nil {
			return nil, fmt.Errorf("core: chunk %d rank: %w", i, err)
		}
		if rank == 0 || rank > 8 {
			return nil, fmt.Errorf("core: chunk %d implausible rank %d", i, rank)
		}
		shape := make([]int, rank)
		total := 1
		for d := range shape {
			v, err := read()
			if err != nil {
				return nil, fmt.Errorf("core: chunk %d shape: %w", i, err)
			}
			shape[d] = int(v)
			total *= int(v)
		}
		const maxElems = 1 << 28
		if total < 0 || total > maxElems {
			return nil, fmt.Errorf("core: chunk %d implausible size %d", i, total)
		}
		data := make([]float32, total)
		for j := range data {
			v, err := read()
			if err != nil {
				return nil, fmt.Errorf("core: chunk %d data: %w", i, err)
			}
			data[j] = math.Float32frombits(v)
		}
		c.Chunks = append(c.Chunks, tensor.FromSlice(data, shape...))
	}
	return c, nil
}
