package core

import (
	"fmt"

	"repro/internal/tensor"
)

// FlatRoundTripper applies DCT+Chop to tensors of any shape by packing
// their values row-major into fixed-size square planes (zero-padding the
// tail), round-tripping the planes, and unpacking. This is the adapter
// the paper's future-work targets need: weights, activations and
// gradients are not n×n image batches, but the compressor's compiled
// plane shape must stay static (§3.1), so arbitrary tensors are
// reshaped to it instead.
//
// Padding zeros compress losslessly under DCT (they are a constant
// block), so the only fidelity cost is the chop itself.
type FlatRoundTripper struct {
	comp   *Compressor
	planeN int
}

// NewFlatRoundTripper compiles an adapter with the given configuration
// and plane size (planeN×planeN values per plane; must satisfy the
// config's block/serialization divisibility).
func NewFlatRoundTripper(cfg Config, planeN int) (*FlatRoundTripper, error) {
	comp, err := NewCompressor(cfg, planeN)
	if err != nil {
		return nil, err
	}
	return &FlatRoundTripper{comp: comp, planeN: planeN}, nil
}

// Config returns the underlying compressor configuration.
func (f *FlatRoundTripper) Config() Config { return f.comp.Config() }

// PlaneBytes returns the compiled plane footprint in bytes.
func (f *FlatRoundTripper) PlaneBytes() int { return 4 * f.planeN * f.planeN }

// RoundTrip compresses and decompresses values in place semantics-wise:
// it returns a new slice of the same length holding the lossy
// reconstruction, plus the compressed payload size in bytes.
func (f *FlatRoundTripper) RoundTrip(values []float32) ([]float32, int, error) {
	if len(values) == 0 {
		return nil, 0, fmt.Errorf("core: FlatRoundTripper on empty slice")
	}
	plane := f.planeN * f.planeN
	nplanes := (len(values) + plane - 1) / plane
	packed := tensor.New(nplanes, 1, f.planeN, f.planeN)
	copy(packed.Data(), values)
	y, err := f.comp.Compress(packed)
	if err != nil {
		return nil, 0, err
	}
	back, err := f.comp.Decompress(y)
	if err != nil {
		return nil, 0, err
	}
	out := make([]float32, len(values))
	copy(out, back.Data()[:len(values)])
	return out, y.CompressedBytes(), nil
}

// RoundTripTensor is RoundTrip for a tensor, preserving its shape.
func (f *FlatRoundTripper) RoundTripTensor(t *tensor.Tensor) (*tensor.Tensor, int, error) {
	vals, bytes, err := f.RoundTrip(t.Data())
	if err != nil {
		return nil, 0, err
	}
	return tensor.FromSlice(vals, t.Shape()...), bytes, nil
}
