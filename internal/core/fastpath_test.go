package core

import (
	"fmt"
	"testing"

	"repro/internal/tensor"
)

// fastPathConfigs enumerates every configuration class the fast kernel
// must reproduce: all chop factors of both transforms, both retention
// modes, and serialization factors 1, 2 and 4.
func fastPathConfigs() []Config {
	var cfgs []Config
	for _, tr := range []TransformKind{TransformDCT8, TransformZFP4} {
		bs := tr.BlockSizeOf()
		for cf := 1; cf <= bs; cf++ {
			for _, mode := range []Mode{ModeChop, ModeSG} {
				for _, s := range []int{1, 2, 4} {
					cfgs = append(cfgs, Config{ChopFactor: cf, Mode: mode, Serialization: s, Transform: tr})
				}
			}
		}
	}
	return cfgs
}

// TestFastPathMatchesDense is the equivalence suite of the fast-kernel
// execution path: for every cf/s/sg/transform combination, the payload
// produced by Compress and the reconstruction produced by Decompress
// must match the dense-matmul reference oracle to ≤1e-5 max abs error.
func TestFastPathMatchesDense(t *testing.T) {
	const n, bd, ch = 32, 2, 3
	r := tensor.NewRNG(17)
	x := r.Uniform(-1, 1, bd, ch, n, n)
	for _, cfg := range fastPathConfigs() {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			c, err := NewCompressor(cfg, n)
			if err != nil {
				t.Fatal(err)
			}
			want, err := c.CompressDense(x)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Compress(x)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Chunks) != len(want.Chunks) {
				t.Fatalf("fast path produced %d chunks, dense %d", len(got.Chunks), len(want.Chunks))
			}
			for i := range got.Chunks {
				if !got.Chunks[i].SameShape(want.Chunks[i]) {
					t.Fatalf("chunk %d shape %v, dense %v", i, got.Chunks[i].Shape(), want.Chunks[i].Shape())
				}
				if d := got.Chunks[i].MaxAbsDiff(want.Chunks[i]); d > 1e-5 {
					t.Fatalf("chunk %d payload diverges from dense: max abs diff %g", i, d)
				}
			}

			wantBack, err := c.DecompressDense(want)
			if err != nil {
				t.Fatal(err)
			}
			gotBack, err := c.Decompress(got)
			if err != nil {
				t.Fatal(err)
			}
			if d := gotBack.MaxAbsDiff(wantBack); d > 1e-5 {
				t.Fatalf("reconstruction diverges from dense: max abs diff %g", d)
			}

			// The decompressors must also agree on each other's payloads
			// (the container format does not record which path wrote it).
			crossBack, err := c.Decompress(want)
			if err != nil {
				t.Fatal(err)
			}
			if d := crossBack.MaxAbsDiff(wantBack); d > 1e-5 {
				t.Fatalf("fast decompress of dense payload diverges: max abs diff %g", d)
			}
		})
	}
}

// TestRoundTripIntoMatchesRoundTrip checks the pooled, allocation-free
// entry point returns the same reconstruction as the allocating one.
func TestRoundTripIntoMatchesRoundTrip(t *testing.T) {
	const n = 32
	r := tensor.NewRNG(5)
	x := r.Uniform(0, 1, 2, 3, n, n)
	for _, cfg := range []Config{
		{ChopFactor: 4, Serialization: 1},
		{ChopFactor: 3, Mode: ModeSG, Serialization: 2},
	} {
		c, err := NewCompressor(cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := c.RoundTrip(x)
		if err != nil {
			t.Fatal(err)
		}
		dst := tensor.New(2, 3, n, n)
		// Run twice so the second pass reuses pooled state.
		for pass := 0; pass < 2; pass++ {
			if err := c.RoundTripInto(dst, x); err != nil {
				t.Fatal(err)
			}
			if !dst.Equal(want) {
				t.Fatalf("pass %d: RoundTripInto differs from RoundTrip", pass)
			}
		}
	}
}

// TestCompressIntoReshapesDst verifies a payload compiled for one batch
// shape is re-shaped (not corrupted) when reused for another.
func TestCompressIntoReshapesDst(t *testing.T) {
	const n = 16
	c, err := NewCompressor(Config{ChopFactor: 4, Serialization: 2}, n)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(3)
	dst := &Compressed{}
	for _, bd := range []int{1, 3, 2} {
		x := r.Uniform(0, 1, bd, 2, n, n)
		if err := c.CompressInto(dst, x); err != nil {
			t.Fatal(err)
		}
		if dst.BatchSize != bd || dst.Channels != 2 {
			t.Fatalf("dst dims %dx%d after bd=%d", dst.BatchSize, dst.Channels, bd)
		}
		back, err := c.Decompress(dst)
		if err != nil {
			t.Fatal(err)
		}
		want, err := c.RoundTripDense(x)
		if err != nil {
			t.Fatal(err)
		}
		if d := back.MaxAbsDiff(want); d > 1e-5 {
			t.Fatalf("bd=%d: reshaped payload round trip diverges (max %g)", bd, d)
		}
	}
}

// TestIntoPathZeroAllocs is the allocation regression suite: after
// warm-up, CompressInto and DecompressInto must not allocate at all —
// the guarantee every steady-state training loop inherits.
func TestIntoPathZeroAllocs(t *testing.T) {
	const n = 32
	for _, cfg := range []Config{
		{ChopFactor: 4, Serialization: 1},
		{ChopFactor: 4, Serialization: 2},
		{ChopFactor: 4, Mode: ModeSG, Serialization: 1},
		{ChopFactor: 2, Mode: ModeSG, Serialization: 2, Transform: TransformZFP4},
	} {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			c, err := NewCompressor(cfg, n)
			if err != nil {
				t.Fatal(err)
			}
			r := tensor.NewRNG(11)
			x := r.Uniform(0, 1, 2, 3, n, n)
			dst := c.NewCompressed(2, 3)
			out := tensor.New(2, 3, n, n)
			// Warm up pools and chunk buffers.
			if err := c.CompressInto(dst, x); err != nil {
				t.Fatal(err)
			}
			if err := c.DecompressInto(out, dst); err != nil {
				t.Fatal(err)
			}
			if allocs := testing.AllocsPerRun(50, func() {
				if err := c.CompressInto(dst, x); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("CompressInto allocates %.1f objects/op, want 0", allocs)
			}
			if allocs := testing.AllocsPerRun(50, func() {
				if err := c.DecompressInto(out, dst); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("DecompressInto allocates %.1f objects/op, want 0", allocs)
			}
		})
	}
}

// TestDecompressIntoValidates pins the error paths: wrong destination
// shape and short payload chunks must fail before any kernel work.
func TestDecompressIntoValidates(t *testing.T) {
	const n = 16
	c, err := NewCompressor(Config{ChopFactor: 4, Serialization: 1}, n)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(2)
	x := r.Uniform(0, 1, 1, 1, n, n)
	y, err := c.Compress(x)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DecompressInto(tensor.New(1, 1, n, 2*n), y); err == nil {
		t.Error("mis-shaped destination accepted")
	}
	y.Chunks[0] = tensor.New(1, 1, 2, 2)
	if err := c.DecompressInto(tensor.New(1, 1, n, n), y); err == nil {
		t.Error("short payload chunk accepted")
	}
}

func ExampleCompressor_CompressInto() {
	c, _ := NewCompressor(Config{ChopFactor: 4, Serialization: 1}, 16)
	x := tensor.New(1, 1, 16, 16)
	dst := c.NewCompressed(1, 1)
	_ = c.CompressInto(dst, x)
	fmt.Println(dst.Chunks[0].Shape())
	// Output: [1 1 8 8]
}
