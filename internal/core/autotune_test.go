package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/tensor"
)

func TestChooseChopFactorMeetsTarget(t *testing.T) {
	r := tensor.NewRNG(1)
	sample := smoothBatch(r, 2, 3, 32)
	base := Config{Serialization: 1}
	cfg, psnr, err := ChooseChopFactor(sample, 25, base)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 25 {
		t.Fatalf("returned PSNR %g below target", psnr)
	}
	// Verify the choice is tight: one CF lower must miss the target.
	if cfg.ChopFactor > 1 {
		lower := base
		lower.ChopFactor = cfg.ChopFactor - 1
		comp, err := NewCompressor(lower, 32)
		if err != nil {
			t.Fatal(err)
		}
		back, err := comp.RoundTrip(sample)
		if err != nil {
			t.Fatal(err)
		}
		if metrics.PSNR(sample, back) >= 25 {
			t.Fatalf("CF=%d already meets the target; ChooseChopFactor was not minimal", lower.ChopFactor)
		}
	}
}

func TestChooseChopFactorHigherTargetHigherCF(t *testing.T) {
	r := tensor.NewRNG(2)
	sample := smoothBatch(r, 2, 1, 32)
	base := Config{Serialization: 1}
	loose, _, err := ChooseChopFactor(sample, 20, base)
	if err != nil {
		t.Fatal(err)
	}
	tight, _, err := ChooseChopFactor(sample, 45, base)
	if err != nil {
		t.Fatal(err)
	}
	if tight.ChopFactor < loose.ChopFactor {
		t.Fatalf("tighter target chose smaller CF (%d < %d)", tight.ChopFactor, loose.ChopFactor)
	}
	if loose.Ratio() < tight.Ratio() {
		t.Fatal("looser target must yield at least as much compression")
	}
}

func TestChooseChopFactorUnreachable(t *testing.T) {
	r := tensor.NewRNG(3)
	sample := r.Uniform(-1, 1, 1, 1, 16, 16) // white noise
	_, _, err := ChooseChopFactor(sample, 500, Config{Serialization: 1})
	if !errors.Is(err, ErrTargetUnreachable) {
		t.Fatalf("err = %v, want ErrTargetUnreachable", err)
	}
}

func TestChooseChopFactorRespectsBaseConfig(t *testing.T) {
	r := tensor.NewRNG(4)
	sample := smoothBatch(r, 1, 1, 32)
	base := Config{Serialization: 2, Transform: TransformZFP4}
	cfg, _, err := ChooseChopFactor(sample, 30, base)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Serialization != 2 || cfg.Transform != TransformZFP4 {
		t.Fatalf("base fields not preserved: %+v", cfg)
	}
	if cfg.ChopFactor > 4 {
		t.Fatalf("ZFP4 chop factor %d exceeds block size", cfg.ChopFactor)
	}
}

func TestChooseChopFactorRejectsBadSample(t *testing.T) {
	if _, _, err := ChooseChopFactor(tensor.New(8, 8), 20, Config{Serialization: 1}); err == nil {
		t.Fatal("non-4D sample must be rejected")
	}
}

func TestChooseChopFactorInfTargetOnLosslessData(t *testing.T) {
	// A constant batch is reconstructed exactly at any CF (pure DC), so
	// even absurd finite targets resolve to CF=1.
	sample := tensor.Full(2.5, 1, 1, 16, 16)
	cfg, psnr, err := ChooseChopFactor(sample, 100, Config{Serialization: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ChopFactor != 1 {
		t.Fatalf("constant data should compress at CF=1, got %d", cfg.ChopFactor)
	}
	if !math.IsInf(psnr, 1) && psnr < 100 {
		t.Fatalf("PSNR %g", psnr)
	}
}
