package core

import (
	"math"
	"testing"

	"repro/internal/dct"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

func zfpCfg(cf int) Config {
	return Config{ChopFactor: cf, Serialization: 1, Transform: TransformZFP4}
}

func TestZFPTransformMatrixInvertible(t *testing.T) {
	l := dct.ZFPBlockTransform()
	inv, err := tensor.Inverse(l)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MatMul(l, inv).MaxAbsDiff(tensor.Eye(4)); d > 1e-5 {
		t.Fatalf("L·L⁻¹ deviates from I by %g", d)
	}
	// The defining property that forces the dlhs/drhs split: the ZFP
	// transform is NOT orthogonal.
	if tensor.MatMul(l, l.Transpose()).MaxAbsDiff(tensor.Eye(4)) < 1e-3 {
		t.Fatal("ZFP transform unexpectedly orthogonal — the DCT path would suffice")
	}
}

func TestZFPTransformDCIsMean(t *testing.T) {
	// First row of L is [1/4,...]: the DC output of L·a is the mean ×1.
	l := dct.ZFPBlockTransform()
	a := tensor.FromSlice([]float32{1, 2, 3, 6}, 4, 1)
	d := tensor.MatMul(l, a)
	if math.Abs(float64(d.At2(0, 0))-3) > 1e-6 {
		t.Fatalf("DC = %g, want mean 3", d.At2(0, 0))
	}
}

func TestZFPVariantValidation(t *testing.T) {
	// Block size 4: CF ≤ 4, resolution multiple of 4.
	if err := zfpCfg(5).Validate(32); err == nil {
		t.Fatal("CF=5 must be rejected at block size 4")
	}
	if err := zfpCfg(3).Validate(30); err == nil {
		t.Fatal("resolution 30 must be rejected")
	}
	if err := zfpCfg(3).Validate(28); err != nil {
		t.Fatalf("28 is a multiple of 4: %v", err)
	}
	if (Config{ChopFactor: 2, Serialization: 1, Transform: TransformKind(9)}).Validate(32) == nil {
		t.Fatal("unknown transform must be rejected")
	}
}

func TestZFPVariantRatio(t *testing.T) {
	// CR = 16/CF² at block size 4.
	want := map[int]float64{1: 16, 2: 4, 3: 16.0 / 9, 4: 1}
	for cf, w := range want {
		if got := zfpCfg(cf).Ratio(); math.Abs(got-w) > 1e-9 {
			t.Errorf("CF=%d ratio %g, want %g", cf, got, w)
		}
	}
}

func TestZFPVariantLosslessAtFullChop(t *testing.T) {
	// CF=4 keeps every coefficient; with the exact inverse the round
	// trip is identity up to float32 precision.
	c, err := NewCompressor(zfpCfg(4), 32)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(3)
	x := r.Uniform(-1, 1, 2, 3, 32, 32)
	back, err := c.RoundTrip(x)
	if err != nil {
		t.Fatal(err)
	}
	if d := back.MaxAbsDiff(x); d > 1e-4 {
		t.Fatalf("ZFP4 CF=4 round-trip error %g", d)
	}
}

func TestZFPVariantQualityOrdering(t *testing.T) {
	r := tensor.NewRNG(5)
	x := smoothBatch(r, 2, 1, 32)
	prev := -math.MaxFloat64
	for cf := 1; cf <= 4; cf++ {
		c, err := NewCompressor(zfpCfg(cf), 32)
		if err != nil {
			t.Fatal(err)
		}
		back, err := c.RoundTrip(x)
		if err != nil {
			t.Fatal(err)
		}
		p := metrics.PSNR(x, back)
		if p < prev-1e-6 {
			t.Fatalf("PSNR not monotone in CF: cf=%d %g < %g", cf, p, prev)
		}
		prev = p
	}
	if prev < 100 {
		t.Fatalf("CF=4 PSNR %g too low for lossless-up-to-float32", prev)
	}
}

func TestZFPVariantMatchesBlockwiseReference(t *testing.T) {
	// The fused pipeline must equal per-block L·A·Lᵀ with the corner
	// chopped and the exact inverse applied.
	cfg := zfpCfg(2)
	c, err := NewCompressor(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(7)
	x := r.Uniform(-1, 1, 1, 1, 8, 8)
	y, err := c.Compress(x)
	if err != nil {
		t.Fatal(err)
	}
	l := dct.ZFPBlockTransform()
	lt := l.Transpose()
	plane := x.Index(0).Index(0)
	comp := y.Chunks[0].Index(0).Index(0)
	for bi := 0; bi < 2; bi++ {
		for bj := 0; bj < 2; bj++ {
			block := tensor.New(4, 4)
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					block.Set2(plane.At2(bi*4+i, bj*4+j), i, j)
				}
			}
			d := tensor.MatMul(tensor.MatMul(l, block), lt)
			for i := 0; i < 2; i++ {
				for j := 0; j < 2; j++ {
					got := comp.At2(bi*2+i, bj*2+j)
					want := d.At2(i, j)
					if math.Abs(float64(got-want)) > 1e-5 {
						t.Fatalf("block (%d,%d) coeff (%d,%d): %g vs %g", bi, bj, i, j, got, want)
					}
				}
			}
		}
	}
}

func TestZFPVariantGraphsExecute(t *testing.T) {
	// The variant stays matmul-only, so it must lower to graphs that
	// compile like the DCT version (the point of the future-work item).
	c, err := NewCompressor(zfpCfg(2), 16)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := c.BuildCompressGraph(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := c.BuildDecompressGraph(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(9)
	x := r.Uniform(-1, 1, 2, 3, 16, 16)
	want, err := c.Compress(x)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := cg.Execute(map[string]*tensor.Tensor{"A": x})
	if err != nil {
		t.Fatal(err)
	}
	// Graph = dense matmuls, host = fast kernel: compare within the
	// kernel equivalence tolerance, not bit-exactly.
	if !outs[0].AllClose(want.Chunks[0], 1e-5) {
		t.Fatal("compress graph disagrees with host compressor")
	}
	wantBack, err := c.Decompress(want)
	if err != nil {
		t.Fatal(err)
	}
	backOuts, err := dg.Execute(map[string]*tensor.Tensor{"Y": want.Chunks[0]})
	if err != nil {
		t.Fatal(err)
	}
	if !backOuts[0].AllClose(wantBack, 1e-5) {
		t.Fatal("decompress graph disagrees with host compressor")
	}
}

func TestZFPVariantWithSerializationAndSG(t *testing.T) {
	r := tensor.NewRNG(11)
	x := r.Uniform(-1, 1, 1, 2, 32, 32)
	// PS: s=2 must reconstruct identically to s=1 (aligned chunks).
	base, err := NewCompressor(zfpCfg(2), 32)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewCompressor(Config{ChopFactor: 2, Serialization: 2, Transform: TransformZFP4}, 32)
	if err != nil {
		t.Fatal(err)
	}
	a, err := base.RoundTrip(x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ps.RoundTrip(x)
	if err != nil {
		t.Fatal(err)
	}
	if d := a.MaxAbsDiff(b); d > 1e-4 {
		t.Fatalf("ZFP4 PS deviates by %g", d)
	}
	// SG: triangle retention with block size 4.
	sg, err := NewCompressor(Config{ChopFactor: 3, Mode: ModeSG, Serialization: 1, Transform: TransformZFP4}, 32)
	if err != nil {
		t.Fatal(err)
	}
	y, err := sg.Compress(x)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := (32 / 4) * (32 / 4) * dct.TriangleCount(3)
	if y.Chunks[0].Dim(2) != wantLen {
		t.Fatalf("SG payload %d, want %d", y.Chunks[0].Dim(2), wantLen)
	}
	if _, err := sg.Decompress(y); err != nil {
		t.Fatal(err)
	}
}

func TestDCTVsZFPTransformFidelity(t *testing.T) {
	// On smooth data at matched CR=4, both transforms should land in a
	// sane PSNR band; record the comparison direction (the future-work
	// hypothesis is that ZFP's transform suits general floating-point
	// data, DCT suits images).
	r := tensor.NewRNG(13)
	x := smoothBatch(r, 2, 1, 32)
	dctC, err := NewCompressor(Config{ChopFactor: 4, Serialization: 1}, 32)
	if err != nil {
		t.Fatal(err)
	}
	zfpC, err := NewCompressor(zfpCfg(2), 32)
	if err != nil {
		t.Fatal(err)
	}
	outD, err := dctC.RoundTrip(x)
	if err != nil {
		t.Fatal(err)
	}
	outZ, err := zfpC.RoundTrip(x)
	if err != nil {
		t.Fatal(err)
	}
	pd, pz := metrics.PSNR(x, outD), metrics.PSNR(x, outZ)
	if pd < 20 || pz < 20 {
		t.Fatalf("matched-CR PSNR too low: DCT %g, ZFP %g", pd, pz)
	}
}
