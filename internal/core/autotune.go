package core

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/tensor"
)

// ChooseChopFactor picks the most aggressive chop factor (highest
// compression ratio) whose compress→decompress round trip on a
// calibration batch still meets the given PSNR target — a quality-driven
// configuration step in the spirit of SZ's error-bounded mode (§2.2),
// adapted to DCT+Chop's compile-time constraint: the search happens
// once, offline, and the chosen CF is then fixed for compilation.
//
// base supplies the non-CF fields (mode, serialization, transform);
// sample must match the resolution the compressor will be compiled for.
// If even the largest CF misses the target, the lossless-up-to-float32
// full-block configuration is returned along with ErrTargetUnreachable.
func ChooseChopFactor(sample *tensor.Tensor, targetPSNR float64, base Config) (Config, float64, error) {
	if sample.Dims() != 4 {
		return Config{}, 0, fmt.Errorf("core: calibration batch must be [BD,C,n,n], got %v", sample.Shape())
	}
	n := sample.Dim(2)
	bs := base.Transform.BlockSizeOf()
	var lastPSNR float64
	for cf := 1; cf <= bs; cf++ {
		cfg := base
		cfg.ChopFactor = cf
		comp, err := NewCompressor(cfg, n)
		if err != nil {
			return Config{}, 0, err
		}
		back, err := comp.RoundTrip(sample)
		if err != nil {
			return Config{}, 0, err
		}
		lastPSNR = metrics.PSNR(sample, back)
		if lastPSNR >= targetPSNR {
			return cfg, lastPSNR, nil
		}
	}
	full := base
	full.ChopFactor = bs
	return full, lastPSNR, fmt.Errorf("core: %w: best achievable PSNR %.2f dB < target %.2f dB", ErrTargetUnreachable, lastPSNR, targetPSNR)
}

// ErrTargetUnreachable reports that no chop factor meets the requested
// quality target on the calibration data.
var ErrTargetUnreachable = fmt.Errorf("quality target unreachable")
