// Package core implements the paper's contribution: the DCT+Chop lossy
// compressor for AI-accelerator training pipelines. Compression is two
// matrix multiplications, Y = (M·T_L)·A·(T_Lᵀ·Mᵀ) (Eq. 4); decompression
// swaps the fused operands, A' = (T_Lᵀ·Mᵀ)·Y·(M·T_L) (Eq. 6). Both fused
// matrices are computed once, at "compile time", exactly as on the real
// accelerators where tensor sizes must be static.
//
// Two optimizations from §3.5 are included: partially-serialized
// compression (subdivide each sample spatially by a factor s and process
// the s×s chunks serially, shrinking the compile-time matrices by s×s)
// and the Graphcore scatter/gather variant (retain the upper-left
// triangle of each chopped block instead of the full square, improving
// CR by 2·CF/(CF+1)).
package core

import (
	"fmt"

	"repro/internal/dct"
	"repro/internal/tensor"
)

// Mode selects the retention scheme applied after the DCT.
type Mode int

const (
	// ModeChop retains the upper-left CF×CF square of every 8×8 block —
	// the baseline DCT+Chop design (DC in the paper's evaluation).
	ModeChop Mode = iota
	// ModeSG additionally gathers only the upper-left triangle
	// (i+j < CF) of each chopped block via precomputed indices — the
	// Graphcore torch.scatter/torch.gather optimization (SG).
	ModeSG
)

func (m Mode) String() string {
	switch m {
	case ModeChop:
		return "DCT+Chop"
	case ModeSG:
		return "DCT+Chop+SG"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// TransformKind selects the decorrelating block transform.
type TransformKind int

const (
	// TransformDCT8 is the paper's transform: DCT-II on 8×8 blocks.
	TransformDCT8 TransformKind = iota
	// TransformZFP4 is the future-work alternative (§6): the ZFP block
	// transform on 4×4 blocks — non-orthogonal but linear, so it runs
	// through the same fused two-matmul pipeline and remains portable.
	TransformZFP4
)

// BlockSizeOf returns the transform's block edge.
func (k TransformKind) BlockSizeOf() int {
	if k == TransformZFP4 {
		return dct.ZFPBlockSize
	}
	return dct.BlockSize
}

// Matrix returns the transform's b×b matrix.
func (k TransformKind) Matrix() *tensor.Tensor {
	if k == TransformZFP4 {
		return dct.ZFPBlockTransform()
	}
	return dct.Transform(dct.BlockSize)
}

func (k TransformKind) String() string {
	if k == TransformZFP4 {
		return "ZFP4"
	}
	return "DCT8"
}

// Config describes one compressor configuration. The zero value is not
// valid; use Validate (or NewCompressor, which validates) before use.
type Config struct {
	// ChopFactor is CF ∈ [1, block size]: the per-block retained corner
	// width. The paper evaluates CF ∈ [2,7] at block size 8.
	ChopFactor int
	// Mode selects square (chop) or triangle (scatter/gather) retention.
	Mode Mode
	// Serialization is the partial-serialization factor s (§3.5.1);
	// s=1 disables subdivision. The input resolution must be divisible
	// by blocksize·s so every chunk is a whole number of blocks.
	Serialization int
	// Transform selects the block transform; the zero value is the
	// paper's 8×8 DCT-II.
	Transform TransformKind
}

// BlockSize is the paper's DCT block size.
const BlockSize = dct.BlockSize

// blockSize returns the configured transform's block edge.
func (c Config) blockSize() int { return c.Transform.BlockSizeOf() }

// Validate checks the configuration against an input resolution n
// (images are n×n).
func (c Config) Validate(n int) error {
	bs := c.blockSize()
	if c.Transform != TransformDCT8 && c.Transform != TransformZFP4 {
		return fmt.Errorf("core: unknown transform %d", int(c.Transform))
	}
	if c.ChopFactor < 1 || c.ChopFactor > bs {
		return fmt.Errorf("core: chop factor %d outside [1,%d]", c.ChopFactor, bs)
	}
	if c.Mode != ModeChop && c.Mode != ModeSG {
		return fmt.Errorf("core: unknown mode %d", int(c.Mode))
	}
	s := c.Serialization
	if s < 1 {
		return fmt.Errorf("core: serialization factor %d must be ≥ 1", s)
	}
	if n <= 0 {
		return fmt.Errorf("core: resolution %d must be positive", n)
	}
	if n%(bs*s) != 0 {
		return fmt.Errorf("core: resolution %d not divisible by block size × serialization = %d", n, bs*s)
	}
	return nil
}

// Ratio returns the compression ratio of this configuration: bs²/CF²
// for chop (Eq. 3 at bs=8 gives 64/CF²), bs²/(CF(CF+1)/2) for the SG
// triangle variant. Serialization does not change the ratio.
func (c Config) Ratio() float64 {
	area := float64(c.blockSize() * c.blockSize())
	switch c.Mode {
	case ModeSG:
		return area / float64(dct.TriangleCount(c.ChopFactor))
	default:
		return area / float64(c.ChopFactor*c.ChopFactor)
	}
}

// SGRatioGain returns the CR improvement factor of SG over plain chop at
// the same CF: 2·CF/(CF+1) (§3.5.2).
func SGRatioGain(cf int) float64 {
	return 2 * float64(cf) / float64(cf+1)
}

// CompressFLOPs returns the total floating-point operations to compress
// a BD×C×n×n batch at this configuration (Eq. 5 per plane-chunk for the
// DCT-8 transform, the dense fused form for ZFP-4, times the number of
// chunks and planes).
func (c Config) CompressFLOPs(bd, channels, n int) float64 {
	s := c.Serialization
	var perChunk float64
	if c.Transform == TransformZFP4 {
		cn := n / s
		perChunk = dct.DenseCompressFLOPs(cn, c.ChopFactor*cn/c.blockSize())
	} else {
		perChunk = dct.CompressFLOPs(n/s, c.ChopFactor)
	}
	return float64(bd*channels) * float64(s*s) * perChunk
}

// DecompressFLOPs is the Eq. 7 analogue of CompressFLOPs.
func (c Config) DecompressFLOPs(bd, channels, n int) float64 {
	s := c.Serialization
	var perChunk float64
	if c.Transform == TransformZFP4 {
		cn := n / s
		perChunk = dct.DenseCompressFLOPs(cn, c.ChopFactor*cn/c.blockSize())
	} else {
		perChunk = dct.DecompressFLOPs(n/s, c.ChopFactor)
	}
	return float64(bd*channels) * float64(s*s) * perChunk
}

// String renders the configuration the way the paper's figures label
// series ("CF=4 CR=4.00 DCT+Chop s=2").
func (c Config) String() string {
	s := fmt.Sprintf("CF=%d CR=%.2f %s", c.ChopFactor, c.Ratio(), c.Mode)
	if c.Serialization > 1 {
		s += fmt.Sprintf(" s=%d", c.Serialization)
	}
	if c.Transform != TransformDCT8 {
		s += " " + c.Transform.String()
	}
	return s
}
