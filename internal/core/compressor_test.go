package core

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dct"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

func mustCompressor(t *testing.T, cfg Config, n int) *Compressor {
	t.Helper()
	c, err := NewCompressor(cfg, n)
	if err != nil {
		t.Fatalf("NewCompressor(%v, %d): %v", cfg, n, err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		n   int
		ok  bool
	}{
		{Config{ChopFactor: 4, Serialization: 1}, 32, true},
		{Config{ChopFactor: 8, Serialization: 1}, 64, true},
		{Config{ChopFactor: 0, Serialization: 1}, 32, false},
		{Config{ChopFactor: 9, Serialization: 1}, 32, false},
		{Config{ChopFactor: 4, Serialization: 0}, 32, false},
		{Config{ChopFactor: 4, Serialization: 2}, 32, true},
		{Config{ChopFactor: 4, Serialization: 2}, 24, false}, // 24 % 16 != 0
		{Config{ChopFactor: 4, Serialization: 1}, 20, false}, // not /8
		{Config{ChopFactor: 4, Serialization: 1}, 0, false},
		{Config{ChopFactor: 4, Mode: Mode(9), Serialization: 1}, 32, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate(tc.n)
		if (err == nil) != tc.ok {
			t.Errorf("Validate(%+v, n=%d) = %v, want ok=%v", tc.cfg, tc.n, err, tc.ok)
		}
	}
}

func TestRatioFormulas(t *testing.T) {
	// Eq. 3 at the paper's CF values (legend CRs of Figs. 7-13).
	wantChop := map[int]float64{2: 16.0, 3: 64.0 / 9, 4: 4.0, 5: 2.56, 6: 64.0 / 36, 7: 64.0 / 49}
	for cf, want := range wantChop {
		got := Config{ChopFactor: cf, Serialization: 1}.Ratio()
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("chop CF=%d ratio %g, want %g", cf, got, want)
		}
	}
	// SG: 64/(CF(CF+1)/2), improvement factor 2CF/(CF+1).
	for cf := 1; cf <= 8; cf++ {
		chop := Config{ChopFactor: cf, Serialization: 1}.Ratio()
		sg := Config{ChopFactor: cf, Mode: ModeSG, Serialization: 1}.Ratio()
		if math.Abs(sg/chop-SGRatioGain(cf)) > 1e-9 {
			t.Errorf("CF=%d: SG gain %g, want %g", cf, sg/chop, SGRatioGain(cf))
		}
	}
	// §3.5.2: SG improves CR by 1.3–1.75× over chop for CF ∈ [2,7] —
	// wait, gain 2CF/(CF+1) at CF=2 is 1.33, at CF=7 is 1.75.
	if g := SGRatioGain(2); math.Abs(g-4.0/3) > 1e-9 {
		t.Errorf("SGRatioGain(2) = %g", g)
	}
	if g := SGRatioGain(7); math.Abs(g-1.75) > 1e-9 {
		t.Errorf("SGRatioGain(7) = %g", g)
	}
}

func TestCompressShapes(t *testing.T) {
	c := mustCompressor(t, Config{ChopFactor: 4, Serialization: 1}, 32)
	r := tensor.NewRNG(1)
	x := r.Uniform(0, 1, 5, 3, 32, 32)
	y, err := c.Compress(x)
	if err != nil {
		t.Fatal(err)
	}
	// m = CF·n/8 = 16 → payload [5,3,16,16].
	got := y.Chunks[0].Shape()
	want := []int{5, 3, 16, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("compressed shape %v, want %v", got, want)
		}
	}
	if math.Abs(y.EffectiveRatio()-4.0) > 1e-9 {
		t.Fatalf("effective ratio %g, want 4", y.EffectiveRatio())
	}
}

func TestCF8IsLossless(t *testing.T) {
	// Retaining all 64 coefficients makes DCT+Chop an orthonormal
	// change of basis: reconstruction must match to float32 precision.
	c := mustCompressor(t, Config{ChopFactor: 8, Serialization: 1}, 32)
	r := tensor.NewRNG(2)
	x := r.Uniform(-1, 1, 2, 3, 32, 32)
	back, err := c.RoundTrip(x)
	if err != nil {
		t.Fatal(err)
	}
	if d := back.MaxAbsDiff(x); d > 1e-4 {
		t.Fatalf("CF=8 round-trip error %g", d)
	}
}

func TestCompressionMatchesBlockwiseReference(t *testing.T) {
	// The fused two-matmul form (Eq. 4) must equal chopping each 8×8
	// block's DCT independently.
	cfg := Config{ChopFactor: 3, Serialization: 1}
	c := mustCompressor(t, cfg, 16)
	r := tensor.NewRNG(3)
	x := r.Uniform(-1, 1, 1, 1, 16, 16)
	y, err := c.Compress(x)
	if err != nil {
		t.Fatal(err)
	}
	plane := x.Index(0).Index(0)
	comp := y.Chunks[0].Index(0).Index(0)
	for bi := 0; bi < 2; bi++ {
		for bj := 0; bj < 2; bj++ {
			block := tensor.New(8, 8)
			for i := 0; i < 8; i++ {
				for j := 0; j < 8; j++ {
					block.Set2(plane.At2(bi*8+i, bj*8+j), i, j)
				}
			}
			d := dct.Apply2D(block)
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					got := comp.At2(bi*3+i, bj*3+j)
					want := d.At2(i, j)
					if math.Abs(float64(got-want)) > 1e-4 {
						t.Fatalf("block (%d,%d) coeff (%d,%d): fused %g vs reference %g", bi, bj, i, j, got, want)
					}
				}
			}
		}
	}
}

func TestDecompressionQualityOrdering(t *testing.T) {
	// Higher CF keeps more coefficients → PSNR must be non-decreasing in
	// CF on smooth data.
	r := tensor.NewRNG(4)
	x := smoothBatch(r, 2, 3, 32)
	prev := -math.MaxFloat64
	for cf := 1; cf <= 8; cf++ {
		c := mustCompressor(t, Config{ChopFactor: cf, Serialization: 1}, 32)
		back, err := c.RoundTrip(x)
		if err != nil {
			t.Fatal(err)
		}
		p := metrics.PSNR(x, back)
		if p < prev-1e-6 {
			t.Fatalf("PSNR not monotone: CF=%d gives %g < %g", cf, p, prev)
		}
		prev = p
	}
}

// smoothBatch generates low-frequency image-like data for which DCT
// compaction behaves as on natural images.
func smoothBatch(r *tensor.RNG, bd, ch, n int) *tensor.Tensor {
	x := tensor.New(bd, ch, n, n)
	for b := 0; b < bd; b++ {
		for c := 0; c < ch; c++ {
			fx := 1 + r.Float64()*2
			fy := 1 + r.Float64()*2
			phase := r.Float64() * math.Pi
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					v := math.Sin(fx*float64(i)/float64(n)*math.Pi+phase) *
						math.Cos(fy*float64(j)/float64(n)*math.Pi)
					x.Set4(float32(v), b, c, i, j)
				}
			}
		}
	}
	return x
}

func TestPartialSerializationEquivalence(t *testing.T) {
	// §3.5.1: PS changes the working-set size, not the math. A chunked
	// compressor must reconstruct with the same fidelity as s=1 — note
	// results differ only at chunk boundaries that change block
	// alignment, so we pick n where blocks align: n=32, s=2 → chunks of
	// 16, both multiples of 8, so the 8×8 block grid is identical and
	// reconstruction must match exactly.
	r := tensor.NewRNG(5)
	x := r.Uniform(-1, 1, 2, 3, 32, 32)
	base := mustCompressor(t, Config{ChopFactor: 4, Serialization: 1}, 32)
	ps := mustCompressor(t, Config{ChopFactor: 4, Serialization: 2}, 32)
	wantOut, err := base.RoundTrip(x)
	if err != nil {
		t.Fatal(err)
	}
	gotOut, err := ps.RoundTrip(x)
	if err != nil {
		t.Fatal(err)
	}
	if d := gotOut.MaxAbsDiff(wantOut); d > 1e-4 {
		t.Fatalf("PS s=2 reconstruction deviates from s=1 by %g", d)
	}
}

func TestPartialSerializationShrinksMatrices(t *testing.T) {
	// s=2 must shrink LHS from (CF·n/8)×n to (CF·n/16)×(n/2): 4× fewer
	// elements, the memory saving that lets 512×512 compile on SN30/IPU.
	base := mustCompressor(t, Config{ChopFactor: 4, Serialization: 1}, 512)
	ps := mustCompressor(t, Config{ChopFactor: 4, Serialization: 2}, 512)
	if base.LHS().Len() != 4*ps.LHS().Len() {
		t.Fatalf("LHS elements: s=1 %d vs s=2 %d, want 4×", base.LHS().Len(), ps.LHS().Len())
	}
	if len(base.LHS().Data())*4 != 4*len(ps.LHS().Data())*4 {
		t.Fatal("byte accounting inconsistent")
	}
}

func TestPartialSerializationChunkCount(t *testing.T) {
	ps := mustCompressor(t, Config{ChopFactor: 2, Serialization: 4}, 64)
	r := tensor.NewRNG(6)
	x := r.Uniform(0, 1, 1, 1, 64, 64)
	y, err := ps.Compress(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(y.Chunks) != 16 {
		t.Fatalf("s=4 produced %d chunks, want 16", len(y.Chunks))
	}
	if math.Abs(y.EffectiveRatio()-16) > 1e-9 {
		t.Fatalf("PS ratio %g, want 16", y.EffectiveRatio())
	}
}

func TestSGPayloadSmaller(t *testing.T) {
	r := tensor.NewRNG(7)
	x := r.Uniform(-1, 1, 2, 3, 32, 32)
	for cf := 2; cf <= 7; cf++ {
		chop := mustCompressor(t, Config{ChopFactor: cf, Serialization: 1}, 32)
		sg := mustCompressor(t, Config{ChopFactor: cf, Mode: ModeSG, Serialization: 1}, 32)
		yc, err := chop.Compress(x)
		if err != nil {
			t.Fatal(err)
		}
		ys, err := sg.Compress(x)
		if err != nil {
			t.Fatal(err)
		}
		gain := float64(yc.CompressedBytes()) / float64(ys.CompressedBytes())
		if math.Abs(gain-SGRatioGain(cf)) > 1e-9 {
			t.Fatalf("CF=%d: SG payload gain %g, want %g", cf, gain, SGRatioGain(cf))
		}
	}
}

func TestSGDecompressionMatchesTriangleZeroing(t *testing.T) {
	// SG must reconstruct exactly as chop-with-triangle-zeroed: gather
	// then scatter restores triangle cells and zeroes the rest of the
	// cf×cf square.
	cfg := Config{ChopFactor: 4, Mode: ModeSG, Serialization: 1}
	sg := mustCompressor(t, cfg, 16)
	chop := mustCompressor(t, Config{ChopFactor: 4, Serialization: 1}, 16)
	r := tensor.NewRNG(8)
	x := r.Uniform(-1, 1, 1, 1, 16, 16)

	ySG, err := sg.Compress(x)
	if err != nil {
		t.Fatal(err)
	}
	outSG, err := sg.Decompress(ySG)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: chop-compress, zero the non-triangle cells per block,
	// chop-decompress.
	yChop, err := chop.Compress(x)
	if err != nil {
		t.Fatal(err)
	}
	plane := yChop.Chunks[0]
	m := plane.Dim(2)
	for bi := 0; bi < m/4; bi++ {
		for bj := 0; bj < m/4; bj++ {
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					if i+j >= 4 {
						plane.Set4(0, 0, 0, bi*4+i, bj*4+j)
					}
				}
			}
		}
	}
	want, err := chop.Decompress(yChop)
	if err != nil {
		t.Fatal(err)
	}
	if d := outSG.MaxAbsDiff(want); d > 1e-5 {
		t.Fatalf("SG reconstruction deviates from triangle-zero reference by %g", d)
	}
}

func TestSGLowerFidelityThanChop(t *testing.T) {
	// SG discards strictly more coefficients than chop at the same CF.
	r := tensor.NewRNG(9)
	x := smoothBatch(r, 2, 1, 32)
	for cf := 2; cf <= 7; cf++ {
		chop := mustCompressor(t, Config{ChopFactor: cf, Serialization: 1}, 32)
		sg := mustCompressor(t, Config{ChopFactor: cf, Mode: ModeSG, Serialization: 1}, 32)
		outC, err := chop.RoundTrip(x)
		if err != nil {
			t.Fatal(err)
		}
		outS, err := sg.RoundTrip(x)
		if err != nil {
			t.Fatal(err)
		}
		if metrics.MSE(x, outS) < metrics.MSE(x, outC)-1e-12 {
			t.Fatalf("CF=%d: SG MSE lower than chop", cf)
		}
	}
}

func TestInputValidation(t *testing.T) {
	c := mustCompressor(t, Config{ChopFactor: 4, Serialization: 1}, 32)
	r := tensor.NewRNG(10)
	if _, err := c.Compress(r.Uniform(0, 1, 2, 3, 16, 16)); err == nil {
		t.Fatal("wrong resolution must be rejected (compile-time shapes)")
	}
	if _, err := c.Compress(r.Uniform(0, 1, 32, 32)); err == nil {
		t.Fatal("non-4D input must be rejected")
	}
	y, err := c.Compress(r.Uniform(0, 1, 1, 1, 32, 32))
	if err != nil {
		t.Fatal(err)
	}
	other := mustCompressor(t, Config{ChopFactor: 5, Serialization: 1}, 32)
	if _, err := other.Decompress(y); err == nil {
		t.Fatal("config mismatch on Decompress must be rejected")
	}
}

func TestBatchAndChannelParallelism(t *testing.T) {
	// §3.2: every channel of every sample compresses independently —
	// compressing a batch must equal compressing each sample alone.
	c := mustCompressor(t, Config{ChopFactor: 5, Serialization: 1}, 16)
	r := tensor.NewRNG(11)
	x := r.Uniform(-1, 1, 4, 3, 16, 16)
	whole, err := c.RoundTrip(x)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 4; b++ {
		single := tensor.New(1, 3, 16, 16)
		single.CopyFrom(x.SliceDim0(b, b+1))
		out, err := c.RoundTrip(single)
		if err != nil {
			t.Fatal(err)
		}
		if d := out.Index(0).MaxAbsDiff(whole.Index(b)); d > 1e-6 {
			t.Fatalf("sample %d differs when compressed alone: %g", b, d)
		}
	}
}

func TestCompressedSerializationRoundTrip(t *testing.T) {
	for _, cfg := range []Config{
		{ChopFactor: 4, Serialization: 1},
		{ChopFactor: 3, Serialization: 2},
		{ChopFactor: 5, Mode: ModeSG, Serialization: 1},
	} {
		c := mustCompressor(t, cfg, 32)
		r := tensor.NewRNG(12)
		x := r.Uniform(-1, 1, 2, 2, 32, 32)
		y, err := c.Compress(x)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := y.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCompressed(&buf)
		if err != nil {
			t.Fatalf("%v: ReadCompressed: %v", cfg, err)
		}
		if back.Config != y.Config || back.N != y.N || len(back.Chunks) != len(y.Chunks) {
			t.Fatalf("%v: header mismatch", cfg)
		}
		for i := range y.Chunks {
			if !back.Chunks[i].Equal(y.Chunks[i]) {
				t.Fatalf("%v: chunk %d payload mismatch", cfg, i)
			}
		}
		// And the deserialized payload must decompress identically.
		a1, err := c.Decompress(y)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := c.Decompress(back)
		if err != nil {
			t.Fatal(err)
		}
		if !a1.Equal(a2) {
			t.Fatalf("%v: decompression differs after serialization", cfg)
		}
	}
}

func TestReadCompressedRejectsGarbage(t *testing.T) {
	if _, err := ReadCompressed(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("short input must fail")
	}
	if _, err := ReadCompressed(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("zero magic must fail")
	}
}

// Property: round-trip error is bounded and shrinks to zero at CF=8 for
// arbitrary data; effective ratio always matches Eq. 3.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, rawCF, rawBD uint8) bool {
		cf := int(rawCF%8) + 1
		bd := int(rawBD%3) + 1
		cfg := Config{ChopFactor: cf, Serialization: 1}
		c, err := NewCompressor(cfg, 16)
		if err != nil {
			return false
		}
		r := tensor.NewRNG(seed)
		x := r.Uniform(-1, 1, bd, 2, 16, 16)
		y, err := c.Compress(x)
		if err != nil {
			return false
		}
		if math.Abs(y.EffectiveRatio()-cfg.Ratio()) > 1e-9 {
			return false
		}
		back, err := c.Decompress(y)
		if err != nil {
			return false
		}
		if cf == 8 {
			return back.MaxAbsDiff(x) < 1e-4
		}
		// Energy argument: error norm can never exceed input norm.
		return back.Sub(x).Norm2() <= x.Norm2()+1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: compression is linear (it is a pair of matmuls), so
// roundtrip(αx + βy) = α·roundtrip(x) + β·roundtrip(y).
func TestLinearityProperty(t *testing.T) {
	c, err := NewCompressor(Config{ChopFactor: 3, Serialization: 1}, 16)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, rawA, rawB int8) bool {
		alpha := float32(rawA) / 16
		beta := float32(rawB) / 16
		r := tensor.NewRNG(seed)
		x := r.Uniform(-1, 1, 1, 1, 16, 16)
		y := r.Uniform(-1, 1, 1, 1, 16, 16)
		mix := x.Scale(alpha).Add(y.Scale(beta))
		outMix, err := c.RoundTrip(mix)
		if err != nil {
			return false
		}
		outX, err := c.RoundTrip(x)
		if err != nil {
			return false
		}
		outY, err := c.RoundTrip(y)
		if err != nil {
			return false
		}
		want := outX.Scale(alpha).Add(outY.Scale(beta))
		return outMix.MaxAbsDiff(want) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFLOPAccounting(t *testing.T) {
	cfg := Config{ChopFactor: 4, Serialization: 2}
	// 2 samples × 3 channels × 4 chunks of 16×16 planes.
	got := cfg.CompressFLOPs(2, 3, 32)
	want := 6.0 * 4 * dct.CompressFLOPs(16, 4)
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("CompressFLOPs = %g, want %g", got, want)
	}
	if cfg.DecompressFLOPs(2, 3, 32) >= got {
		t.Fatal("decompress FLOPs must be lower than compress for CF<8")
	}
}

func TestConfigString(t *testing.T) {
	s := Config{ChopFactor: 4, Serialization: 2}.String()
	if s == "" || s == "Mode(0)" {
		t.Fatalf("Config.String = %q", s)
	}
	if (Config{ChopFactor: 4, Mode: ModeSG, Serialization: 1}).String() == s {
		t.Fatal("distinct configs must render distinctly")
	}
}

// Property: for any valid configuration, the lowered graphs execute
// bit-identically to the host compressor — the guarantee that what a
// device runs is what the library computes.
func TestGraphHostEquivalenceProperty(t *testing.T) {
	f := func(seed uint64, rawCF, rawMode, rawTrans, rawBD uint8) bool {
		trans := TransformKind(rawTrans % 2)
		bs := trans.BlockSizeOf()
		cf := int(rawCF)%bs + 1
		mode := Mode(rawMode % 2)
		bd := int(rawBD)%3 + 1
		n := 2 * bs * 2 // two blocks per axis, doubled for variety
		cfg := Config{ChopFactor: cf, Mode: mode, Serialization: 1, Transform: trans}
		c, err := NewCompressor(cfg, n)
		if err != nil {
			return false
		}
		r := tensor.NewRNG(seed)
		x := r.Uniform(-1, 1, bd, 2, n, n)
		want, err := c.Compress(x)
		if err != nil {
			return false
		}
		cg, err := c.BuildCompressGraph(bd, 2)
		if err != nil {
			return false
		}
		outs, err := cg.Execute(map[string]*tensor.Tensor{"A": x})
		// The graph runs the dense fused matmuls; the host compressor runs
		// the structure-aware fast kernel. Same math, different summation
		// order, so compare within the kernel's conformance tolerance.
		if err != nil || outs[0].MaxAbsDiff(want.Chunks[0]) > 1e-5 {
			return false
		}
		dg, err := c.BuildDecompressGraph(bd, 2)
		if err != nil {
			return false
		}
		back, err := dg.Execute(map[string]*tensor.Tensor{"Y": want.Chunks[0]})
		if err != nil {
			return false
		}
		hostBack, err := c.Decompress(want)
		if err != nil {
			return false
		}
		return back[0].MaxAbsDiff(hostBack) <= 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
