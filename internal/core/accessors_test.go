package core

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestCompressorAccessors(t *testing.T) {
	cfg := Config{ChopFactor: 4, Serialization: 1}
	c := mustCompressor(t, cfg, 32)
	if c.Config() != cfg {
		t.Fatalf("Config() = %v", c.Config())
	}
	if c.Resolution() != 32 {
		t.Fatalf("Resolution = %d", c.Resolution())
	}
	shape := c.CompressedPlaneShape()
	if len(shape) != 2 || shape[0] != 16 || shape[1] != 16 {
		t.Fatalf("CompressedPlaneShape = %v", shape)
	}
	if c.TriangleIndices() != nil {
		t.Fatal("chop mode has no triangle indices")
	}
	// RHS is LHSᵀ for the orthonormal DCT.
	if d := c.RHS().MaxAbsDiff(c.LHS().Transpose()); d != 0 {
		t.Fatalf("RHS != LHSᵀ by %g", d)
	}

	sg := mustCompressor(t, Config{ChopFactor: 3, Mode: ModeSG, Serialization: 1}, 32)
	sgShape := sg.CompressedPlaneShape()
	if len(sgShape) != 1 || sgShape[0] != 16*6 {
		t.Fatalf("SG plane shape %v, want [96]", sgShape)
	}
	if len(sg.TriangleIndices()) != 96 {
		t.Fatalf("SG triangle indices %d", len(sg.TriangleIndices()))
	}
}

func TestFlatRoundTripperAccessors(t *testing.T) {
	cfg := Config{ChopFactor: 4, Serialization: 1}
	rt, err := NewFlatRoundTripper(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Config() != cfg {
		t.Fatalf("Config = %v", rt.Config())
	}
	if rt.PlaneBytes() != 4*16*16 {
		t.Fatalf("PlaneBytes = %d", rt.PlaneBytes())
	}
	if _, err := NewFlatRoundTripper(cfg, 17); err == nil {
		t.Fatal("plane size not divisible by block must fail")
	}
}

func TestFlatRoundTripperTensor(t *testing.T) {
	rt, err := NewFlatRoundTripper(Config{ChopFactor: 8, Serialization: 1}, 16)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(1)
	x := r.Uniform(-1, 1, 3, 5, 7) // deliberately non-plane shape
	out, bytes, err := rt.RoundTripTensor(x)
	if err != nil {
		t.Fatal(err)
	}
	if !out.SameShape(x) {
		t.Fatalf("shape %v", out.Shape())
	}
	if bytes <= 0 {
		t.Fatalf("bytes %d", bytes)
	}
	if d := out.MaxAbsDiff(x); d > 1e-4 {
		t.Fatalf("CF=8 tensor round trip error %g", d)
	}
}

func TestConfigStringVariants(t *testing.T) {
	cases := map[string]Config{
		"CF=4 CR=4.00 DCT+Chop":         {ChopFactor: 4, Serialization: 1},
		"CF=4 CR=6.40 DCT+Chop+SG":      {ChopFactor: 4, Mode: ModeSG, Serialization: 1},
		"CF=4 CR=4.00 DCT+Chop s=2":     {ChopFactor: 4, Serialization: 2},
		"CF=2 CR=4.00 DCT+Chop ZFP4":    {ChopFactor: 2, Serialization: 1, Transform: TransformZFP4},
		"CF=2 CR=5.33 DCT+Chop+SG ZFP4": {ChopFactor: 2, Mode: ModeSG, Serialization: 1, Transform: TransformZFP4},
	}
	for want, cfg := range cases {
		if got := cfg.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if ModeChop.String() != "DCT+Chop" || ModeSG.String() != "DCT+Chop+SG" {
		t.Fatal("mode strings wrong")
	}
	if Mode(7).String() == "" || TransformKind(9).String() == "" {
		t.Fatal("unknown enums must still render")
	}
}

func TestFLOPsZFPVariant(t *testing.T) {
	cfg := Config{ChopFactor: 2, Serialization: 1, Transform: TransformZFP4}
	// Dense fused cost: 2mn² + 2m²n per plane with m = cf·n/4.
	n := 16
	m := 2 * n / 4
	want := 2.0 * (2*float64(m)*float64(n)*float64(n) + 2*float64(m)*float64(m)*float64(n)) * 3
	if got := cfg.CompressFLOPs(2, 3, n); math.Abs(got-want) > 1e-6 {
		t.Fatalf("ZFP4 CompressFLOPs = %g, want %g", got, want)
	}
	if cfg.DecompressFLOPs(2, 3, n) != cfg.CompressFLOPs(2, 3, n) {
		t.Fatal("dense fused cost is symmetric for the ZFP4 variant")
	}
}
