package core

import (
	"fmt"

	"repro/internal/graph"
)

// BuildCompressGraph lowers this compressor's compression pass to the
// static graph IR for a [bd, channels, n/s, n/s] chunk. With s=1 the
// graph covers whole samples and is issued once per batch; with s>1 the
// harness issues it s² times, once per spatial chunk, which is exactly
// the partial-serialization execution model (§3.5.1).
//
// The graph is the paper's final PyTorch form verbatim:
//
//	Y = torch.matmul(LHS, torch.matmul(A, RHS))
//
// with LHS/RHS embedded as compile-time constants, plus the gather stage
// in SG mode.
func (c *Compressor) BuildCompressGraph(bd, channels int) (*graph.Graph, error) {
	if bd <= 0 || channels <= 0 {
		return nil, fmt.Errorf("core: graph dims must be positive, got bd=%d channels=%d", bd, channels)
	}
	b := graph.NewBuilder(fmt.Sprintf("compress-%s-n%d", c.cfg, c.n))
	a := b.Input("A", bd, channels, c.chunkN, c.chunkN)
	lhs := b.Const("LHS", c.lhs)
	rhs := b.Const("RHS", c.rhs)
	y := b.MatMulRight(b.MatMulLeft(lhs, a), rhs)
	if c.cfg.Mode == ModeSG {
		flat := b.Reshape(y, bd, channels, c.m*c.m)
		y = b.Gather(flat, c.triIdx)
	}
	b.Output(y)
	return b.Finish()
}

// BuildDecompressGraph lowers the decompression pass:
//
//	A' = torch.matmul(RHS, torch.matmul(Y, LHS))
//
// preceded by the scatter stage in SG mode.
func (c *Compressor) BuildDecompressGraph(bd, channels int) (*graph.Graph, error) {
	if bd <= 0 || channels <= 0 {
		return nil, fmt.Errorf("core: graph dims must be positive, got bd=%d channels=%d", bd, channels)
	}
	b := graph.NewBuilder(fmt.Sprintf("decompress-%s-n%d", c.cfg, c.n))
	var y *graph.Node
	if c.cfg.Mode == ModeSG {
		in := b.Input("Y", bd, channels, len(c.triIdx))
		y = b.Reshape(b.Scatter(in, c.triIdx, c.m*c.m), bd, channels, c.m, c.m)
	} else {
		y = b.Input("Y", bd, channels, c.m, c.m)
	}
	dlhs := b.Const("DLHS", c.dlhs)
	drhs := b.Const("DRHS", c.drhs)
	b.Output(b.MatMulRight(b.MatMulLeft(dlhs, y), drhs))
	return b.Finish()
}
