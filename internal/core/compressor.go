package core

import (
	"fmt"
	"sync"

	"repro/internal/dct"
	"repro/internal/tensor"
)

// Compressor is a compiled DCT+Chop compressor for a fixed input
// resolution. Mirroring the accelerators' compile-time constraints
// (§3.1 "Tensor Sizes"), the fused LHS/RHS matrices — and for SG the
// gather indices — are precomputed in NewCompressor and the resolution
// cannot vary afterwards; only the batch and channel dimensions are
// free, because they batch identical plane-level products.
//
// Two execution paths exist. The hot path (Compress, Decompress,
// CompressInto, DecompressInto, RoundTrip) runs the structure-aware
// separable dct.Kernel, which skips the chopped rows of the fused
// matrices entirely and reuses pooled scratch so the Into variants
// allocate nothing in steady state. The dense path (CompressDense,
// DecompressDense, RoundTripDense) runs the paper's literal two batched
// matmuls against the full LHS/RHS and is kept as the reference oracle
// the fast kernel is validated against.
type Compressor struct {
	cfg Config
	n   int // full input resolution (images are n×n)

	// Chunk-level compiled state; chunk resolution is n/s.
	chunkN int
	m      int            // compressed plane width: CF·chunkN/blocksize
	lhs    *tensor.Tensor // M·T_L, m×chunkN (compression left operand)
	rhs    *tensor.Tensor // T_Lᵀ·Mᵀ = LHSᵀ, chunkN×m (compression right)
	// Decompression operands. For the orthonormal DCT these alias
	// rhs/lhs (the paper's Eq. 6 swap); for the non-orthogonal ZFP
	// transform they are built from T_L⁻¹ instead of T_Lᵀ:
	// A' = (T_L⁻¹·Mᵀ)·Y·(T_L⁻¹·Mᵀ)ᵀ.
	dlhs *tensor.Tensor // chunkN×m (decompression left operand)
	drhs *tensor.Tensor // m×chunkN (decompression right operand)

	// SG state: flat per-plane indices of the retained triangle cells in
	// the m×m chopped plane, precomputed at compile time (§3.5.2: "the
	// indices can be computed at compile time and need not be stored").
	triIdx []int

	// Fast-path state: the separable block kernel plus free lists of
	// per-plane scratch and job descriptors. The free lists are plain
	// mutex-guarded slices rather than sync.Pools so warm buffers are
	// never dropped by the GC — the zero-allocation guarantee of the
	// Into methods is deterministic.
	kern      *dct.Kernel
	scratchMu sync.Mutex
	scratches []*kernScratch
	jobs      []*planeJob
	compPool  sync.Pool // *Compressed for Acquire/ReleaseCompressed
}

// kernScratch is one plane-worker's reusable working set.
type kernScratch struct {
	buf []float32 // half-transformed plane, chunkN×m (forward) / m×chunkN (inverse)
	sq  []float32 // full m×m chopped plane, SG gather/scatter staging (nil in chop mode)
}

// NewCompressor compiles a compressor for n×n inputs under cfg.
func NewCompressor(cfg Config, n int) (*Compressor, error) {
	if err := cfg.Validate(n); err != nil {
		return nil, err
	}
	bs := cfg.blockSize()
	chunkN := n / cfg.Serialization
	nblks := chunkN / bs
	c := &Compressor{
		cfg:    cfg,
		n:      n,
		chunkN: chunkN,
		m:      cfg.ChopFactor * nblks,
	}
	c.compPool.New = func() any { return new(Compressed) }
	tmat := cfg.Transform.Matrix()
	mask := dct.ChopMask(chunkN, cfg.ChopFactor, bs)
	tl := dct.BlockDiag(tmat, nblks)
	c.lhs = tensor.MatMul(mask, tl)
	c.rhs = c.lhs.Transpose()
	if cfg.Transform == TransformDCT8 {
		// Orthonormal transform: T_L⁻¹ = T_Lᵀ, so decompression reuses
		// the compression operands swapped — the paper's formulation.
		c.dlhs = c.rhs
		c.drhs = c.lhs
		c.kern = dct.NewKernel(tmat, tmat.Transpose(), cfg.ChopFactor)
	} else {
		inv, err := tensor.Inverse(tmat)
		if err != nil {
			return nil, fmt.Errorf("core: transform not invertible: %w", err)
		}
		c.dlhs = tensor.MatMul(dct.BlockDiag(inv, nblks), mask.Transpose())
		c.drhs = c.dlhs.Transpose()
		c.kern = dct.NewKernel(tmat, inv, cfg.ChopFactor)
	}
	if cfg.Mode == ModeSG {
		c.triIdx = triangleFlatIndices(cfg.ChopFactor, nblks)
	}
	return c, nil
}

// triangleFlatIndices returns the flat offsets, within an m×m chopped
// plane (m = cf·nblks), of the upper-left-triangle cells of every cf×cf
// block, in block-major row-major order.
func triangleFlatIndices(cf, nblks int) []int {
	m := cf * nblks
	tri := dct.TriangleIndices(cf, cf) // i*cf+j with i+j<cf
	idx := make([]int, 0, nblks*nblks*len(tri))
	for bi := 0; bi < nblks; bi++ {
		for bj := 0; bj < nblks; bj++ {
			for _, t := range tri {
				i, j := t/cf, t%cf
				idx = append(idx, (bi*cf+i)*m+(bj*cf+j))
			}
		}
	}
	return idx
}

// Config returns the compressor's configuration.
func (c *Compressor) Config() Config { return c.cfg }

// Resolution returns the compiled input resolution n.
func (c *Compressor) Resolution() int { return c.n }

// CompressedPlaneShape reports the per-chunk compressed layout: for chop
// mode an m×m matrix, for SG a flat vector of triangle values.
func (c *Compressor) CompressedPlaneShape() []int {
	if c.cfg.Mode == ModeSG {
		return []int{len(c.triIdx)}
	}
	return []int{c.m, c.m}
}

// ChunkValues returns the number of float32 values in one chunk's
// payload per plane (BD = C = 1): m² for chop mode, the triangle count
// for SG. The total per-plane payload is s²·ChunkValues values.
func (c *Compressor) ChunkValues() int {
	if c.cfg.Mode == ModeSG {
		return len(c.triIdx)
	}
	return c.m * c.m
}

// LHS exposes the fused compression matrix (read-only by convention);
// the accelerator graph builder ships it to devices as a constant.
func (c *Compressor) LHS() *tensor.Tensor { return c.lhs }

// RHS exposes the fused decompression-side matrix.
func (c *Compressor) RHS() *tensor.Tensor { return c.rhs }

// TriangleIndices exposes the SG gather indices (nil in chop mode).
func (c *Compressor) TriangleIndices() []int { return c.triIdx }

// getScratch pops (or grows) a plane working set. The free list never
// shrinks, so after every worker has been through one plane the steady
// state performs no allocation.
func (c *Compressor) getScratch() *kernScratch {
	c.scratchMu.Lock()
	if n := len(c.scratches); n > 0 {
		s := c.scratches[n-1]
		c.scratches = c.scratches[:n-1]
		c.scratchMu.Unlock()
		return s
	}
	c.scratchMu.Unlock()
	s := &kernScratch{buf: make([]float32, c.kern.ScratchLen(c.chunkN))}
	if c.cfg.Mode == ModeSG {
		s.sq = make([]float32, c.m*c.m)
	}
	return s
}

func (c *Compressor) putScratch(s *kernScratch) {
	c.scratchMu.Lock()
	c.scratches = append(c.scratches, s)
	c.scratchMu.Unlock()
}

func (c *Compressor) getJob() *planeJob {
	c.scratchMu.Lock()
	defer c.scratchMu.Unlock()
	if n := len(c.jobs); n > 0 {
		j := c.jobs[n-1]
		c.jobs = c.jobs[:n-1]
		return j
	}
	return &planeJob{c: c}
}

func (c *Compressor) putJob(j *planeJob) {
	j.x, j.y = nil, nil
	c.scratchMu.Lock()
	c.jobs = append(c.jobs, j)
	c.scratchMu.Unlock()
}

// planeJob is one CompressInto/DecompressInto invocation's work
// descriptor: plane p of tensor.ParallelPlanes maps to (sample-channel
// plane, spatial chunk). It is pooled and passed by pointer so the
// interface conversion does not allocate.
type planeJob struct {
	c      *Compressor
	x      []float32 // full-resolution batch data (input or output)
	y      *Compressed
	decomp bool
}

// RunPlane transforms one spatial chunk of one sample-channel plane.
// For s>1 the chunk is addressed in place inside the parent plane via
// the kernel's row stride — no chunk copy is materialized (the dense
// path's SpatialChunk/SpatialUnchunk disappear from the hot loop).
func (j *planeJob) RunPlane(p int) {
	c := j.c
	s := c.cfg.Serialization
	ss := s * s
	pi, ci := p/ss, p%ss
	r, q := ci/s, ci%s
	n, cn, m := c.n, c.chunkN, c.m
	base := pi*n*n + r*cn*n + q*cn
	vals := c.ChunkValues()
	payload := j.y.Chunks[ci].Data()[pi*vals : (pi+1)*vals]
	sc := c.getScratch()
	switch {
	case !j.decomp && c.cfg.Mode == ModeSG:
		c.kern.Forward(sc.sq, m, j.x[base:], n, cn, sc.buf)
		for k, ix := range c.triIdx {
			payload[k] = sc.sq[ix]
		}
	case !j.decomp:
		c.kern.Forward(payload, m, j.x[base:], n, cn, sc.buf)
	case c.cfg.Mode == ModeSG:
		for i := range sc.sq {
			sc.sq[i] = 0
		}
		for k, ix := range c.triIdx {
			sc.sq[ix] = payload[k]
		}
		c.kern.Inverse(j.x[base:], n, sc.sq, m, cn, sc.buf)
	default:
		c.kern.Inverse(j.x[base:], n, payload, m, cn, sc.buf)
	}
	c.putScratch(sc)
}

// chunkFits reports whether t can hold one chunk's payload for a bd×ch
// batch without reallocation (shape and layout both match).
func (c *Compressor) chunkFits(t *tensor.Tensor, bd, ch int) bool {
	if t == nil || t.Dim(0) != bd || t.Dim(1) != ch {
		return false
	}
	if c.cfg.Mode == ModeSG {
		return t.Dims() == 3 && t.Dim(2) == len(c.triIdx)
	}
	return t.Dims() == 4 && t.Dim(2) == c.m && t.Dim(3) == c.m
}

// prepareCompressed shapes dst for a bd×ch batch, reusing its chunk
// tensors whenever they already fit. Only the first call (or a batch
// shape change) allocates.
func (c *Compressor) prepareCompressed(dst *Compressed, bd, ch int) {
	dst.Config = c.cfg
	dst.BatchSize = bd
	dst.Channels = ch
	dst.N = c.n
	ss := c.cfg.Serialization * c.cfg.Serialization
	if cap(dst.Chunks) < ss {
		dst.Chunks = make([]*tensor.Tensor, ss)
	}
	dst.Chunks = dst.Chunks[:ss]
	for i, chunk := range dst.Chunks {
		if chunk != nil && chunk.Dims() >= 2 && c.chunkFits(chunk, bd, ch) {
			continue
		}
		if c.cfg.Mode == ModeSG {
			dst.Chunks[i] = tensor.New(bd, ch, len(c.triIdx))
		} else {
			dst.Chunks[i] = tensor.New(bd, ch, c.m, c.m)
		}
	}
}

// NewCompressed returns a freshly allocated payload sized for a bd×ch
// batch, ready for CompressInto.
func (c *Compressor) NewCompressed(bd, ch int) *Compressed {
	dst := &Compressed{}
	c.prepareCompressed(dst, bd, ch)
	return dst
}

// AcquireCompressed returns a pooled payload buffer (shaped by the next
// CompressInto). Pair with ReleaseCompressed once the payload is no
// longer referenced; the pool keeps steady-state round trips from
// allocating payload storage per batch.
func (c *Compressor) AcquireCompressed() *Compressed {
	return c.compPool.Get().(*Compressed)
}

// ReleaseCompressed returns a payload obtained from AcquireCompressed
// (or any Compressed produced by this compressor that the caller no
// longer uses) to the pool.
func (c *Compressor) ReleaseCompressed(y *Compressed) {
	c.compPool.Put(y)
}

// Compress compresses a [BD, C, n, n] batch on the fast-kernel path. For
// s=1 this is exactly the paper's fused transform; for s>1 the s×s
// spatial chunks are transformed in place within each plane (Fig. 5).
func (c *Compressor) Compress(x *tensor.Tensor) (*Compressed, error) {
	if err := c.checkInput(x); err != nil {
		return nil, err
	}
	dst := &Compressed{}
	if err := c.CompressInto(dst, x); err != nil {
		return nil, err
	}
	return dst, nil
}

// CompressInto compresses x into dst, reusing dst's payload tensors when
// they fit. After the first call with a given batch shape, subsequent
// calls perform no heap allocation.
func (c *Compressor) CompressInto(dst *Compressed, x *tensor.Tensor) error {
	if err := c.checkInput(x); err != nil {
		return err
	}
	bd, ch := x.Dim(0), x.Dim(1)
	c.prepareCompressed(dst, bd, ch)
	j := c.getJob()
	j.x = x.Data()
	j.y = dst
	j.decomp = false
	tensor.ParallelPlanes(bd*ch*len(dst.Chunks), j)
	c.putJob(j)
	return nil
}

// Decompress reconstructs a [BD, C, n, n] batch from compressed form on
// the fast-kernel path.
func (c *Compressor) Decompress(y *Compressed) (*tensor.Tensor, error) {
	if err := c.checkCompressed(y); err != nil {
		return nil, err
	}
	out := tensor.New(y.BatchSize, y.Channels, c.n, c.n)
	if err := c.DecompressInto(out, y); err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressInto reconstructs y into dst, which must already have shape
// [BD, C, n, n] matching y. It performs no heap allocation in steady
// state.
func (c *Compressor) DecompressInto(dst *tensor.Tensor, y *Compressed) error {
	if err := c.checkCompressed(y); err != nil {
		return err
	}
	bd, ch := y.BatchSize, y.Channels
	if dst.Dims() != 4 || dst.Dim(0) != bd || dst.Dim(1) != ch || dst.Dim(2) != c.n || dst.Dim(3) != c.n {
		return fmt.Errorf("core: DecompressInto dst %v, want [%d,%d,%d,%d]", dst.Shape(), bd, ch, c.n, c.n)
	}
	vals := bd * ch * c.ChunkValues()
	for i, chunk := range y.Chunks {
		if chunk.Len() != vals {
			return fmt.Errorf("core: compressed chunk %d holds %d values, want %d", i, chunk.Len(), vals)
		}
	}
	j := c.getJob()
	j.x = dst.Data()
	j.y = y
	j.decomp = true
	tensor.ParallelPlanes(bd*ch*len(y.Chunks), j)
	c.putJob(j)
	return nil
}

// RoundTrip compresses then decompresses x, returning the reconstruction —
// the exact operation the training harness applies to each batch. The
// intermediate payload comes from the compressor's pool, so only the
// output tensor is allocated.
func (c *Compressor) RoundTrip(x *tensor.Tensor) (*tensor.Tensor, error) {
	if err := c.checkInput(x); err != nil {
		return nil, err
	}
	out := tensor.New(x.Dim(0), x.Dim(1), c.n, c.n)
	if err := c.RoundTripInto(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// RoundTripInto is the allocation-free round trip: compress x with a
// pooled payload, decompress into dst.
func (c *Compressor) RoundTripInto(dst, x *tensor.Tensor) error {
	y := c.AcquireCompressed()
	defer c.ReleaseCompressed(y)
	if err := c.CompressInto(y, x); err != nil {
		return err
	}
	return c.DecompressInto(dst, y)
}

// CompressDense is the reference oracle: the paper's literal two batched
// matmuls against the full fused LHS/RHS, with s×s chunks materialized
// serially (Fig. 5). The fast kernel is validated against it; benches
// measure what the structure-aware path buys over it.
func (c *Compressor) CompressDense(x *tensor.Tensor) (*Compressed, error) {
	if err := c.checkInput(x); err != nil {
		return nil, err
	}
	s := c.cfg.Serialization
	var chunks []*tensor.Tensor
	if s == 1 {
		chunks = []*tensor.Tensor{c.compressChunkDense(x)}
	} else {
		// Serial by design: the point of the optimization is that only
		// one chunk's working set is resident at a time.
		chunks = make([]*tensor.Tensor, 0, s*s)
		for _, sub := range tensor.SpatialChunk(x, s) {
			chunks = append(chunks, c.compressChunkDense(sub))
		}
	}
	return &Compressed{
		Config:    c.cfg,
		BatchSize: x.Dim(0),
		Channels:  x.Dim(1),
		N:         c.n,
		Chunks:    chunks,
	}, nil
}

// compressChunkDense runs Y = LHS·A·RHS on one [BD, C, cn, cn] chunk,
// then in SG mode gathers the triangle payload.
func (c *Compressor) compressChunkDense(x *tensor.Tensor) *tensor.Tensor {
	y := tensor.BatchedMatMul(tensor.BatchedMatMulLeft(c.lhs, x), c.rhs)
	if c.cfg.Mode != ModeSG {
		return y
	}
	bd, ch := y.Dim(0), y.Dim(1)
	flat := y.Reshape(bd, ch, c.m*c.m)
	return tensor.GatherLast(flat, c.triIdx)
}

// DecompressDense is the dense-matmul reference decompression.
func (c *Compressor) DecompressDense(y *Compressed) (*tensor.Tensor, error) {
	if err := c.checkCompressed(y); err != nil {
		return nil, err
	}
	s := c.cfg.Serialization
	if s == 1 {
		return c.decompressChunkDense(y.Chunks[0]), nil
	}
	out := make([]*tensor.Tensor, len(y.Chunks))
	for i, chunk := range y.Chunks {
		out[i] = c.decompressChunkDense(chunk)
	}
	return tensor.SpatialUnchunk(out, s), nil
}

func (c *Compressor) decompressChunkDense(y *tensor.Tensor) *tensor.Tensor {
	if c.cfg.Mode == ModeSG {
		bd, ch := y.Dim(0), y.Dim(1)
		restored := tensor.ScatterLast(y, c.triIdx, c.m*c.m)
		y = restored.Reshape(bd, ch, c.m, c.m)
	}
	return tensor.BatchedMatMul(tensor.BatchedMatMulLeft(c.dlhs, y), c.drhs)
}

// RoundTripDense is the dense-path round trip, the pre-kernel behaviour.
func (c *Compressor) RoundTripDense(x *tensor.Tensor) (*tensor.Tensor, error) {
	y, err := c.CompressDense(x)
	if err != nil {
		return nil, err
	}
	return c.DecompressDense(y)
}

func (c *Compressor) checkInput(x *tensor.Tensor) error {
	if x.Dims() != 4 {
		return fmt.Errorf("core: input must be [BD,C,n,n], got %v", x.Shape())
	}
	if x.Dim(2) != c.n || x.Dim(3) != c.n {
		return fmt.Errorf("core: input resolution %dx%d does not match compiled resolution %d (tensor sizes are fixed at compile time)", x.Dim(2), x.Dim(3), c.n)
	}
	return nil
}

func (c *Compressor) checkCompressed(y *Compressed) error {
	if y.Config != c.cfg {
		return fmt.Errorf("core: compressed config %v does not match compressor %v", y.Config, c.cfg)
	}
	if y.N != c.n {
		return fmt.Errorf("core: compressed resolution %d does not match compiled resolution %d", y.N, c.n)
	}
	s := c.cfg.Serialization
	if len(y.Chunks) != s*s {
		return fmt.Errorf("core: compressed has %d chunks, want %d", len(y.Chunks), s*s)
	}
	return nil
}
