package core

import (
	"fmt"

	"repro/internal/dct"
	"repro/internal/tensor"
)

// Compressor is a compiled DCT+Chop compressor for a fixed input
// resolution. Mirroring the accelerators' compile-time constraints
// (§3.1 "Tensor Sizes"), the fused LHS/RHS matrices — and for SG the
// gather indices — are precomputed in NewCompressor and the resolution
// cannot vary afterwards; only the batch and channel dimensions are
// free, because they batch identical plane-level products.
type Compressor struct {
	cfg Config
	n   int // full input resolution (images are n×n)

	// Chunk-level compiled state; chunk resolution is n/s.
	chunkN int
	m      int            // compressed plane width: CF·chunkN/blocksize
	lhs    *tensor.Tensor // M·T_L, m×chunkN (compression left operand)
	rhs    *tensor.Tensor // T_Lᵀ·Mᵀ = LHSᵀ, chunkN×m (compression right)
	// Decompression operands. For the orthonormal DCT these alias
	// rhs/lhs (the paper's Eq. 6 swap); for the non-orthogonal ZFP
	// transform they are built from T_L⁻¹ instead of T_Lᵀ:
	// A' = (T_L⁻¹·Mᵀ)·Y·(T_L⁻¹·Mᵀ)ᵀ.
	dlhs *tensor.Tensor // chunkN×m (decompression left operand)
	drhs *tensor.Tensor // m×chunkN (decompression right operand)

	// SG state: flat per-plane indices of the retained triangle cells in
	// the m×m chopped plane, precomputed at compile time (§3.5.2: "the
	// indices can be computed at compile time and need not be stored").
	triIdx []int
}

// NewCompressor compiles a compressor for n×n inputs under cfg.
func NewCompressor(cfg Config, n int) (*Compressor, error) {
	if err := cfg.Validate(n); err != nil {
		return nil, err
	}
	bs := cfg.blockSize()
	chunkN := n / cfg.Serialization
	nblks := chunkN / bs
	c := &Compressor{
		cfg:    cfg,
		n:      n,
		chunkN: chunkN,
		m:      cfg.ChopFactor * nblks,
	}
	mask := dct.ChopMask(chunkN, cfg.ChopFactor, bs)
	tl := dct.BlockDiag(cfg.Transform.Matrix(), nblks)
	c.lhs = tensor.MatMul(mask, tl)
	c.rhs = c.lhs.Transpose()
	if cfg.Transform == TransformDCT8 {
		// Orthonormal transform: T_L⁻¹ = T_Lᵀ, so decompression reuses
		// the compression operands swapped — the paper's formulation.
		c.dlhs = c.rhs
		c.drhs = c.lhs
	} else {
		inv, err := tensor.Inverse(cfg.Transform.Matrix())
		if err != nil {
			return nil, fmt.Errorf("core: transform not invertible: %w", err)
		}
		c.dlhs = tensor.MatMul(dct.BlockDiag(inv, nblks), mask.Transpose())
		c.drhs = c.dlhs.Transpose()
	}
	if cfg.Mode == ModeSG {
		c.triIdx = triangleFlatIndices(cfg.ChopFactor, nblks)
	}
	return c, nil
}

// triangleFlatIndices returns the flat offsets, within an m×m chopped
// plane (m = cf·nblks), of the upper-left-triangle cells of every cf×cf
// block, in block-major row-major order.
func triangleFlatIndices(cf, nblks int) []int {
	m := cf * nblks
	tri := dct.TriangleIndices(cf, cf) // i*cf+j with i+j<cf
	idx := make([]int, 0, nblks*nblks*len(tri))
	for bi := 0; bi < nblks; bi++ {
		for bj := 0; bj < nblks; bj++ {
			for _, t := range tri {
				i, j := t/cf, t%cf
				idx = append(idx, (bi*cf+i)*m+(bj*cf+j))
			}
		}
	}
	return idx
}

// Config returns the compressor's configuration.
func (c *Compressor) Config() Config { return c.cfg }

// Resolution returns the compiled input resolution n.
func (c *Compressor) Resolution() int { return c.n }

// CompressedPlaneShape reports the per-chunk compressed layout: for chop
// mode an m×m matrix, for SG a flat vector of triangle values.
func (c *Compressor) CompressedPlaneShape() []int {
	if c.cfg.Mode == ModeSG {
		return []int{len(c.triIdx)}
	}
	return []int{c.m, c.m}
}

// ChunkValues returns the number of float32 values in one chunk's
// payload per plane (BD = C = 1): m² for chop mode, the triangle count
// for SG. The total per-plane payload is s²·ChunkValues values.
func (c *Compressor) ChunkValues() int {
	if c.cfg.Mode == ModeSG {
		return len(c.triIdx)
	}
	return c.m * c.m
}

// LHS exposes the fused compression matrix (read-only by convention);
// the accelerator graph builder ships it to devices as a constant.
func (c *Compressor) LHS() *tensor.Tensor { return c.lhs }

// RHS exposes the fused decompression-side matrix.
func (c *Compressor) RHS() *tensor.Tensor { return c.rhs }

// TriangleIndices exposes the SG gather indices (nil in chop mode).
func (c *Compressor) TriangleIndices() []int { return c.triIdx }

// Compress compresses a [BD, C, n, n] batch. For s=1 this is exactly the
// paper's two batched matmuls; for s>1 the s×s spatial chunks are
// compressed serially (Fig. 5), each with the smaller chunk-level
// matrices.
func (c *Compressor) Compress(x *tensor.Tensor) (*Compressed, error) {
	if err := c.checkInput(x); err != nil {
		return nil, err
	}
	s := c.cfg.Serialization
	var chunks []*tensor.Tensor
	if s == 1 {
		chunks = []*tensor.Tensor{c.compressChunk(x)}
	} else {
		// Serial by design: the point of the optimization is that only
		// one chunk's working set is resident at a time.
		chunks = make([]*tensor.Tensor, 0, s*s)
		for _, sub := range tensor.SpatialChunk(x, s) {
			chunks = append(chunks, c.compressChunk(sub))
		}
	}
	return &Compressed{
		Config:    c.cfg,
		BatchSize: x.Dim(0),
		Channels:  x.Dim(1),
		N:         c.n,
		Chunks:    chunks,
	}, nil
}

// compressChunk runs Y = LHS·A·RHS on one [BD, C, cn, cn] chunk, then in
// SG mode gathers the triangle payload.
func (c *Compressor) compressChunk(x *tensor.Tensor) *tensor.Tensor {
	y := tensor.BatchedMatMul(tensor.BatchedMatMulLeft(c.lhs, x), c.rhs)
	if c.cfg.Mode != ModeSG {
		return y
	}
	bd, ch := y.Dim(0), y.Dim(1)
	flat := y.Reshape(bd, ch, c.m*c.m)
	return tensor.GatherLast(flat, c.triIdx)
}

// Decompress reconstructs a [BD, C, n, n] batch from compressed form.
func (c *Compressor) Decompress(y *Compressed) (*tensor.Tensor, error) {
	if err := c.checkCompressed(y); err != nil {
		return nil, err
	}
	s := c.cfg.Serialization
	if s == 1 {
		return c.decompressChunk(y.Chunks[0]), nil
	}
	out := make([]*tensor.Tensor, len(y.Chunks))
	for i, chunk := range y.Chunks {
		out[i] = c.decompressChunk(chunk)
	}
	return tensor.SpatialUnchunk(out, s), nil
}

func (c *Compressor) decompressChunk(y *tensor.Tensor) *tensor.Tensor {
	if c.cfg.Mode == ModeSG {
		bd, ch := y.Dim(0), y.Dim(1)
		restored := tensor.ScatterLast(y, c.triIdx, c.m*c.m)
		y = restored.Reshape(bd, ch, c.m, c.m)
	}
	return tensor.BatchedMatMul(tensor.BatchedMatMulLeft(c.dlhs, y), c.drhs)
}

// RoundTrip compresses then decompresses x, returning the reconstruction —
// the exact operation the training harness applies to each batch.
func (c *Compressor) RoundTrip(x *tensor.Tensor) (*tensor.Tensor, error) {
	y, err := c.Compress(x)
	if err != nil {
		return nil, err
	}
	return c.Decompress(y)
}

func (c *Compressor) checkInput(x *tensor.Tensor) error {
	if x.Dims() != 4 {
		return fmt.Errorf("core: input must be [BD,C,n,n], got %v", x.Shape())
	}
	if x.Dim(2) != c.n || x.Dim(3) != c.n {
		return fmt.Errorf("core: input resolution %dx%d does not match compiled resolution %d (tensor sizes are fixed at compile time)", x.Dim(2), x.Dim(3), c.n)
	}
	return nil
}

func (c *Compressor) checkCompressed(y *Compressed) error {
	if y.Config != c.cfg {
		return fmt.Errorf("core: compressed config %v does not match compressor %v", y.Config, c.cfg)
	}
	if y.N != c.n {
		return fmt.Errorf("core: compressed resolution %d does not match compiled resolution %d", y.N, c.n)
	}
	s := c.cfg.Serialization
	if len(y.Chunks) != s*s {
		return fmt.Errorf("core: compressed has %d chunks, want %d", len(y.Chunks), s*s)
	}
	return nil
}
