package core

import (
	"bytes"
	"testing"

	"repro/internal/tensor"
)

// FuzzReadCompressed hardens the payload deserializer against arbitrary
// bytes: it must either return an error or a structurally sound payload,
// never panic or allocate absurdly.
func FuzzReadCompressed(f *testing.F) {
	// Seed with a valid payload and some mutations.
	comp, err := NewCompressor(Config{ChopFactor: 3, Serialization: 1}, 16)
	if err != nil {
		f.Fatal(err)
	}
	r := tensor.NewRNG(1)
	y, err := comp.Compress(r.Uniform(-1, 1, 1, 2, 16, 16))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := y.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{0x44, 0x43, 0x54, 0x43})
	truncatedHeader := append([]byte(nil), valid[:16]...)
	f.Add(truncatedHeader)
	corrupted := append([]byte(nil), valid...)
	corrupted[9] = 0xFF
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCompressed(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed payload must be internally consistent.
		if len(c.Chunks) == 0 {
			t.Fatal("parsed payload with no chunks")
		}
		for _, chunk := range c.Chunks {
			if chunk.Len() < 0 {
				t.Fatal("negative chunk size")
			}
		}
	})
}
