package metrics

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestMSEAndRMSE(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2, 3, 4}, 4)
	b := tensor.FromSlice([]float32{1, 2, 3, 6}, 4)
	if got := MSE(a, b); got != 1 {
		t.Fatalf("MSE = %g", got)
	}
	if got := RMSE(a, b); got != 1 {
		t.Fatalf("RMSE = %g", got)
	}
	if MaxError(a, b) != 2 {
		t.Fatalf("MaxError = %g", MaxError(a, b))
	}
}

func TestMSEShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MSE(tensor.New(2), tensor.New(3))
}

func TestPSNR(t *testing.T) {
	a := tensor.FromSlice([]float32{0, 1}, 2) // peak = 1
	if !math.IsInf(PSNR(a, a.Clone()), 1) {
		t.Fatal("identical tensors must have infinite PSNR")
	}
	b := tensor.FromSlice([]float32{0.1, 0.9}, 2) // MSE = 0.01
	want := -10 * math.Log10(0.01)
	if got := PSNR(a, b); math.Abs(got-want) > 1e-5 {
		t.Fatalf("PSNR = %g, want %g", got, want)
	}
	// Halving the error raises PSNR.
	c := tensor.FromSlice([]float32{0.05, 0.95}, 2)
	if PSNR(a, c) <= PSNR(a, b) {
		t.Fatal("smaller error must yield higher PSNR")
	}
}

func TestPSNRConstantReference(t *testing.T) {
	// Zero dynamic range falls back to peak 1 instead of -Inf.
	a := tensor.Full(5, 4)
	b := tensor.Full(5.1, 4)
	if v := PSNR(a, b); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("PSNR = %g", v)
	}
}

func TestSSIM(t *testing.T) {
	r := tensor.NewRNG(1)
	a := r.Uniform(0, 1, 64)
	if s := SSIM(a, a.Clone()); math.Abs(s-1) > 1e-6 {
		t.Fatalf("self-SSIM = %g", s)
	}
	// Adding noise lowers SSIM; inverting the signal lowers it further.
	noisy := a.Add(r.Normal(0, 0.2, 64))
	inverted := a.Scale(-1).AddScalar(1)
	if SSIM(a, noisy) >= 1 {
		t.Fatal("noisy SSIM must drop below 1")
	}
	if SSIM(a, inverted) >= SSIM(a, noisy) {
		t.Fatal("anti-correlated signal must score below noisy copy")
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		0.9, 0.1, // → 0
		0.2, 0.8, // → 1
		0.6, 0.4, // → 0
	}, 3, 2)
	if got := Accuracy(logits, []int{0, 1, 1}); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("Accuracy = %g", got)
	}
}

func TestAccuracyLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Accuracy(tensor.New(2, 3), []int{0})
}

func TestPercentDiff(t *testing.T) {
	if got := PercentDiff(1.1, 1.0); math.Abs(got-10) > 1e-9 {
		t.Fatalf("PercentDiff = %g", got)
	}
	// v − base = 1.9 against |base| = 1 → +190%.
	if got := PercentDiff(0.9, -1.0); math.Abs(got-190) > 1e-9 {
		t.Fatalf("PercentDiff vs negative base = %g", got)
	}
	if PercentDiff(0, 0) != 0 {
		t.Fatal("0 vs 0 must be 0")
	}
	if !math.IsInf(PercentDiff(1, 0), 1) {
		t.Fatal("nonzero vs zero base must be +Inf")
	}
}
