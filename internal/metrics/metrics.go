// Package metrics provides the data-fidelity and model-quality measures
// used across the evaluation: MSE, RMSE, PSNR, maximum pointwise error,
// a windowless SSIM variant, and classification accuracy.
package metrics

import (
	"math"

	"repro/internal/tensor"
)

// MSE returns the mean squared error between a and b.
func MSE(a, b *tensor.Tensor) float64 {
	if !a.SameShape(b) {
		panic("metrics: MSE shape mismatch")
	}
	var s float64
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		d := float64(ad[i]) - float64(bd[i])
		s += d * d
	}
	return s / float64(len(ad))
}

// RMSE returns the root mean squared error.
func RMSE(a, b *tensor.Tensor) float64 { return math.Sqrt(MSE(a, b)) }

// MaxError returns the largest absolute pointwise error.
func MaxError(a, b *tensor.Tensor) float64 { return a.MaxAbsDiff(b) }

// PSNR returns the peak signal-to-noise ratio in dB, using the dynamic
// range of the reference a. Identical tensors yield +Inf.
func PSNR(a, b *tensor.Tensor) float64 {
	mse := MSE(a, b)
	if mse == 0 {
		return math.Inf(1)
	}
	peak := float64(a.Max() - a.Min())
	if peak == 0 {
		peak = 1
	}
	return 20*math.Log10(peak) - 10*math.Log10(mse)
}

// SSIM returns a global (single-window) structural-similarity index in
// [-1, 1]; 1 means structurally identical. The windowless form is
// sufficient for comparing whole reconstructed planes.
func SSIM(a, b *tensor.Tensor) float64 {
	if !a.SameShape(b) {
		panic("metrics: SSIM shape mismatch")
	}
	n := float64(a.Len())
	muA, muB := a.Mean(), b.Mean()
	var varA, varB, cov float64
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		da := float64(ad[i]) - muA
		db := float64(bd[i]) - muB
		varA += da * da
		varB += db * db
		cov += da * db
	}
	varA /= n
	varB /= n
	cov /= n
	l := float64(a.Max() - a.Min())
	if l == 0 {
		l = 1
	}
	c1 := (0.01 * l) * (0.01 * l)
	c2 := (0.03 * l) * (0.03 * l)
	return ((2*muA*muB + c1) * (2*cov + c2)) /
		((muA*muA + muB*muB + c1) * (varA + varB + c2))
}

// Accuracy returns the fraction of rows of logits (shape [BD, classes])
// whose argmax equals the integer label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	bd := logits.Dim(0)
	if bd != len(labels) {
		panic("metrics: Accuracy batch/label length mismatch")
	}
	correct := 0
	for i := 0; i < bd; i++ {
		if logits.Index(i).Argmax() == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(bd)
}

// PercentDiff returns 100·(v−base)/|base|, the paper's Fig. 8/9/16
// y-axis (percent difference from the no-compression baseline).
func PercentDiff(v, base float64) float64 {
	if base == 0 {
		if v == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return 100 * (v - base) / math.Abs(base)
}
