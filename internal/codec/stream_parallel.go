package codec

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/pprof"
	"sync"

	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// This file holds the concurrent halves of the ACCF v2 stream engine:
//
//   - swEngine: the StreamWriter's pipelined encoder. WriteTensor
//     becomes an admission step (bounded by a byte budget and a job
//     quota); a worker pool encodes records concurrently; a single
//     emitter goroutine writes them strictly in submission order, so
//     the stream is byte-identical to the serial writer's.
//   - readAhead: the StreamReader's prefetcher. One goroutine runs the
//     parse→CRC-verify→decode pipeline ahead of the consumer, so record
//     N+1 decodes while the caller is still working on record N.
//
// Neither changes a single wire byte: both v1 containers and v2
// streams are produced and parsed by the same code as the serial
// paths.

// defaultMaxInFlightBytes bounds the uncompressed bytes of records
// admitted to the pipelined writer but not yet emitted. 64 MiB keeps a
// handful of large training batches in flight without letting a slow
// sink grow the heap unboundedly.
const defaultMaxInFlightBytes = 64 << 20

// SetConcurrency configures the writer's encode parallelism. n == 1
// restores the default serial behavior; n > 1 enables the pipelined
// engine with exactly n workers; n == 0 enables it with one worker per
// runtime.GOMAXPROCS(0) at the time the first record is submitted.
// Must be called before the first WriteTensor.
//
// With the engine enabled, WriteTensor returns as soon as the record is
// admitted: encode errors surface on a later WriteTensor or on Close,
// and the caller must not mutate a submitted tensor until Close
// returns. Any error poisons the writer (the same sticky contract as
// the reader): every subsequent call returns the first failure and the
// end-of-stream marker is withheld.
func (sw *StreamWriter) SetConcurrency(n int) error {
	if sw.locked || sw.closed {
		return fmt.Errorf("codec: SetConcurrency must be called before the first WriteTensor")
	}
	if n < 0 {
		return fmt.Errorf("codec: negative concurrency %d", n)
	}
	if n == 1 {
		sw.eng = nil
		return nil
	}
	budget := int64(defaultMaxInFlightBytes)
	if sw.eng != nil {
		budget = sw.eng.budget
	}
	sw.eng = &swEngine{sw: sw, workers: n, budget: budget}
	sw.eng.cond = sync.NewCond(&sw.eng.mu)
	return nil
}

// SetMaxInFlightBytes caps the uncompressed bytes of records the
// pipelined writer holds between admission and emission — the
// back-pressure knob: when a slow sink stalls the emitter, WriteTensor
// blocks instead of queueing unboundedly. A record larger than the cap
// is still admitted, but only once it is alone in the pipeline.
// Must be called before the first WriteTensor; no-op without
// SetConcurrency.
func (sw *StreamWriter) SetMaxInFlightBytes(n int64) error {
	if sw.locked || sw.closed {
		return fmt.Errorf("codec: SetMaxInFlightBytes must be called before the first WriteTensor")
	}
	if n < 1 {
		return fmt.Errorf("codec: non-positive in-flight byte budget %d", n)
	}
	if sw.eng != nil {
		sw.eng.budget = n
	}
	return nil
}

// swJob is one record moving through the pipelined writer.
type swJob struct {
	c       *codecImpl // full codec: workers run the stage chain too
	ctx     context.Context
	x       *tensor.Tensor
	spec    string
	shape   []int
	cost    int64
	seq     int64 // 1-based admission sequence (the trace record id)
	payload []byte
	err     error
	done    chan struct{} // closed by the worker that finishes the job
}

// swEngine is the pipelined record encoder behind a StreamWriter.
type swEngine struct {
	sw      *StreamWriter
	workers int   // requested; 0 = GOMAXPROCS at start
	budget  int64 // max in-flight uncompressed bytes

	running  bool
	work     chan *swJob   // claimed by encode workers
	pending  chan *swJob   // FIFO driving ordered emission
	slots    chan struct{} // admission quota: bounds outstanding jobs
	stop     chan struct{} // closed on first failure
	stopOnce sync.Once
	emitDone chan struct{}
	wg       sync.WaitGroup

	mu          sync.Mutex
	cond        *sync.Cond // budget waiters; broadcast on release/failure
	err         error      // first failure, sticky
	inflight    int64
	maxInFlight int64 // high-water mark (observability, tested invariant)
}

// start spins up the workers and the emitter on first use.
func (e *swEngine) start() {
	if e.running {
		return
	}
	e.running = true
	w := e.workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	// The job quota bounds records between admission and emission; 2×
	// workers keeps every worker busy while the emitter drains without
	// letting tiny records queue without limit under the byte budget.
	quota := 2 * w
	e.work = make(chan *swJob, quota)
	e.pending = make(chan *swJob, quota)
	e.slots = make(chan struct{}, quota)
	e.stop = make(chan struct{})
	e.emitDone = make(chan struct{})
	e.wg.Add(w)
	streamM.wBudget.Set(e.budget)
	// pprof labels tag the engine's goroutines in CPU and goroutine
	// profiles, so encode work is attributable per role under
	// /debug/pprof even when the stack alone is ambiguous.
	for i := 0; i < w; i++ {
		go pprof.Do(context.Background(), pprof.Labels("acc_role", "stream-encode-worker"), func(context.Context) { e.worker() })
	}
	go pprof.Do(context.Background(), pprof.Labels("acc_role", "stream-emitter"), func(context.Context) { e.emitter() })
}

// Err returns the engine's sticky failure.
func (e *swEngine) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// fail latches the first failure, closes the stop gate so workers quit
// claiming encode work, and wakes budget waiters so blocked WriteTensor
// calls return the error instead of deadlocking.
func (e *swEngine) fail(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.cond.Broadcast()
	e.mu.Unlock()
	e.stopOnce.Do(func() { close(e.stop) })
}

// submit admits one record: it blocks while the pipeline is at its byte
// budget or job quota (back-pressure), then hands the encode to the
// worker pool and returns. The tensor is referenced, not copied, until
// its record is emitted.
func (e *swEngine) submit(ctx context.Context, impl *codecImpl, shape []int, x *tensor.Tensor) error {
	e.start()
	cost := int64(x.SizeBytes())
	if err := e.acquire(ctx, cost); err != nil {
		return err
	}
	job := &swJob{
		c:     impl,
		ctx:   ctx,
		x:     x,
		spec:  impl.spec,
		shape: shape,
		cost:  cost,
		seq:   e.sw.noteAdmitted(cost),
		done:  make(chan struct{}),
	}
	// Both sends are guaranteed non-blocking: the slot acquired above
	// bounds outstanding jobs to the channels' capacity.
	e.pending <- job
	e.work <- job
	return nil
}

// acquire takes one job slot and cost bytes of the in-flight budget,
// blocking under back-pressure until the emitter releases capacity, the
// engine fails, or ctx is cancelled.
func (e *swEngine) acquire(ctx context.Context, cost int64) error {
	select {
	case e.slots <- struct{}{}:
	case <-e.stop:
		return e.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
	e.mu.Lock()
	if e.err == nil && e.inflight > 0 && e.inflight+cost > e.budget {
		// About to block on the budget: arrange a wake-up if ctx dies
		// while we wait (cond.Wait cannot select on a channel).
		watchDone := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				e.mu.Lock()
				e.cond.Broadcast()
				e.mu.Unlock()
			case <-watchDone:
			}
		}()
		for e.err == nil && ctx.Err() == nil && e.inflight > 0 && e.inflight+cost > e.budget {
			e.cond.Wait()
		}
		close(watchDone)
	}
	if e.err != nil {
		err := e.err
		e.mu.Unlock()
		<-e.slots
		return err
	}
	if err := ctx.Err(); err != nil {
		e.mu.Unlock()
		<-e.slots
		return err
	}
	e.inflight += cost
	if e.inflight > e.maxInFlight {
		e.maxInFlight = e.inflight
	}
	e.mu.Unlock()
	streamM.wInflight.Add(cost)
	return nil
}

// release returns a job's budget and slot after emission (or after the
// job is dropped on failure).
func (e *swEngine) release(cost int64) {
	e.mu.Lock()
	e.inflight -= cost
	e.cond.Broadcast()
	e.mu.Unlock()
	streamM.wInflight.Add(-cost)
	<-e.slots
}

// worker encodes claimed jobs until the work channel closes. After a
// failure the pool stops encoding: remaining jobs are claimed only to
// be marked aborted, so cancellation or a sink error stops the
// pipeline's compute promptly mid-stream.
func (e *swEngine) worker() {
	defer e.wg.Done()
	for job := range e.work {
		select {
		case <-e.stop:
			job.err = e.Err()
			close(job.done)
			continue
		default:
		}
		streamM.wWorkers.Add(1)
		ts := telemetry.NowNanos()
		payload, err := job.c.encodePayload(job.ctx, job.x)
		streamM.wEncodeNs.ObserveSince(ts)
		streamM.wWorkers.Add(-1)
		if err == nil && len(payload) > maxPayload {
			err = fmt.Errorf("codec: payload %d bytes exceeds limit %d", len(payload), maxPayload)
		}
		if err == nil {
			telemetry.TraceRecord(job.seq, telemetry.PhaseEncoded)
		}
		job.payload, job.err = payload, err
		close(job.done)
		if err != nil {
			e.fail(err)
		}
	}
}

// emitter writes finished records in submission order. On failure it
// keeps draining (releasing budget so blocked submitters wake and see
// the sticky error) but writes nothing further.
func (e *swEngine) emitter() {
	defer close(e.emitDone)
	for job := range e.pending {
		<-job.done
		if job.err != nil {
			e.fail(job.err)
		} else if e.Err() == nil {
			if err := e.sw.emitRecord(job.spec, job.shape, job.payload); err != nil {
				e.fail(err)
			}
		}
		job.payload = nil
		job.x = nil
		e.release(job.cost)
	}
}

// drain ends the pipeline: no further submissions are accepted, every
// in-flight record finishes (or is dropped after a failure), and the
// first error — encode, sink, or cancellation — is returned.
func (e *swEngine) drain() error {
	if !e.running {
		return nil
	}
	close(e.work)
	close(e.pending)
	e.wg.Wait()
	<-e.emitDone
	e.running = false
	return e.Err()
}

// maxInFlightBytes reports the engine's in-flight high-water mark (for
// tests and diagnostics).
func (e *swEngine) maxInFlightBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.maxInFlight
}

// ---------------------------------------------------------------------
// StreamReader read-ahead.

// raEntry is one prefetched record: its header and decoded tensor, or
// the error that ended the stream (io.EOF for a clean end).
type raEntry struct {
	hdr Header
	out *tensor.Tensor
	err error
}

// readAhead is the prefetch state. Once enabled, the prefetch goroutine
// owns the StreamReader's parsing fields outright and the public
// methods serve from the queue, so there is no shared mutable state.
type readAhead struct {
	ch  chan raEntry
	cur *raEntry // delivered by Next, pending Decode/Skip
	err error    // consumer-side sticky error (io.EOF after clean end)
}

// SetReadAhead enables background prefetch: a goroutine parses,
// CRC-verifies and decodes up to depth records ahead of the consumer,
// overlapping record N+1's verify+decode with the caller's processing
// of record N. Must be called before the first Next.
//
// ctx governs the background decodes; cancelling it aborts the
// prefetcher (in-flight Next/Decode calls then return an error wrapping
// ctx.Err()). The ctx passed to Decode is still checked, but the decode
// work itself has already happened under this one. The error contract
// is unchanged: Next returns exactly io.EOF at a clean end of stream,
// and any other error is sticky.
func (sr *StreamReader) SetReadAhead(ctx context.Context, depth int) error {
	if sr.ra != nil {
		return fmt.Errorf("codec: read-ahead already enabled")
	}
	if sr.rec != 0 || sr.cur != nil || sr.err != nil {
		return fmt.Errorf("codec: SetReadAhead must be called before the first Next")
	}
	if depth < 1 {
		depth = 1
	}
	sr.ra = &readAhead{ch: make(chan raEntry, depth)}
	go pprof.Do(context.Background(), pprof.Labels("acc_role", "stream-readahead"), func(context.Context) { sr.prefetch(ctx) })
	return nil
}

// prefetch runs the parse→decode loop ahead of the consumer, ending on
// the first error (io.EOF included) or when ctx is cancelled.
func (sr *StreamReader) prefetch(ctx context.Context) {
	defer close(sr.ra.ch)
	for {
		hdr, err := sr.nextRecord()
		if err == nil {
			if cerr := ctx.Err(); cerr != nil {
				err = fmt.Errorf("codec: read-ahead aborted: %w", cerr)
			}
		}
		var out *tensor.Tensor
		if err == nil {
			out, err = sr.decodeRecord(ctx)
			if err == nil {
				select {
				case sr.ra.ch <- raEntry{hdr: hdr, out: out}:
					continue
				case <-ctx.Done():
					return
				}
			}
		}
		select {
		case sr.ra.ch <- raEntry{err: err}:
		case <-ctx.Done():
		}
		return
	}
}

// Next advances to the next record and returns its header; see
// nextRecord for the error contract. In read-ahead mode the record —
// already decoded in the background — is served from the prefetch
// queue, and an unconsumed previous record is dropped (its CRCs were
// verified during the prefetch decode).
func (sr *StreamReader) Next() (Header, error) {
	if sr.ra == nil {
		return sr.nextRecord()
	}
	if sr.ra.err != nil {
		return Header{}, sr.ra.err
	}
	sr.ra.cur = nil
	// A non-empty queue means the prefetcher stayed ahead of the
	// consumer; an empty one means this Next will block on it.
	if len(sr.ra.ch) > 0 {
		sr.nRAHits.Add(1)
		streamM.rRAHits.Inc()
	} else {
		sr.nRAMiss.Add(1)
		streamM.rRAMiss.Inc()
	}
	ent, ok := <-sr.ra.ch
	if !ok {
		// Prefetcher aborted by its context before reporting an error.
		sr.ra.err = fmt.Errorf("codec: read-ahead aborted: %w", context.Canceled)
		return Header{}, sr.ra.err
	}
	if ent.err != nil {
		sr.ra.err = ent.err
		if ent.err == io.EOF {
			return Header{}, io.EOF
		}
		return Header{}, ent.err
	}
	sr.ra.cur = &ent
	return ent.hdr, nil
}

// Decode decompresses the pending record into a tensor; see
// decodeRecord. In read-ahead mode the decode already happened in the
// background and the tensor is handed over directly.
func (sr *StreamReader) Decode(ctx context.Context) (*tensor.Tensor, error) {
	if sr.ra == nil {
		return sr.decodeRecord(ctx)
	}
	if sr.ra.err != nil {
		return nil, sr.ra.err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if sr.ra.cur == nil {
		return nil, fmt.Errorf("codec: no pending record (call Next first)")
	}
	out := sr.ra.cur.out
	sr.ra.cur = nil
	return out, nil
}

// Skip discards the pending record's payload; see skipRecord. In
// read-ahead mode the record was already decoded and CRC-verified, so
// Skip just drops it.
func (sr *StreamReader) Skip() error {
	if sr.ra == nil {
		return sr.skipRecord()
	}
	if sr.ra.err != nil {
		return sr.ra.err
	}
	sr.ra.cur = nil
	return nil
}
