package codec

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// The optional index footer makes an ACCF v2 stream seekable: a
// CRC-protected table of every record's byte offset, payload length,
// spec, and shape, written by StreamWriter.SetIndex immediately before
// the end-of-stream marker. It is length-suffixed with a trailing magic
// (the s2/seekable-zstd convention) so a random-access reader finds it
// from the tail in one bounded read, while the sequential StreamReader —
// and every pre-index reader of footer-less streams — keeps working:
// the footer is just one more marker-framed record to verify and skip.
//
// Footer layout, all fields little-endian, at stream offset F:
//
//	F+0     1   marker 'I' (0x49)
//	F+1     4   body length N (u32)
//	F+5     N   body:
//	              u32 record count R
//	              R entries, each:
//	                u64 record offset (of the record's marker byte)
//	                u64 payload length
//	                u8  record marker ('T' or 'S')
//	                u16 spec length L, then L spec bytes
//	                u8  rank K, then K × u32 dims
//	F+5+N   4   CRC32 (IEEE) over F+0 .. F+5+N (marker through body)
//	F+9+N   4   footer size S = N + 17 (u32)
//	F+13+N  4   index magic "ACCX"
//	F+17+N  1   end-of-stream marker 'E' (the stream's own, not the
//	            footer's: the footer always sits last, so the stream's
//	            final 13 bytes are CRC | S | magic | 'E' and
//	            F = size − 1 − S)
//
// Offsets and payload lengths are u64 on the wire; readers validate
// them against the stream size and maxPayload before ever converting to
// int, so 32-bit hosts reject rather than truncate (the same discipline
// as the PR 3 u32-length fixes).
//
// Trust model: the footer's CRC protects against corruption, not
// forgery — CRC32 is not cryptographic, and an attacker who can rewrite
// the footer can rewrite the records too. OpenIndexedStream therefore
// (a) statically validates every entry at load, (b) re-verifies the
// record header CRC at the entry's offset on every seek, and (c)
// cross-checks the entry's spec/shape/payload length against that
// CRC-verified header, returning ErrIndex on disagreement. An index
// that fails (a) — or whose CRC/framing fails — is discarded and the
// index is rebuilt from the records themselves.
const (
	// indexMagic trails the footer ("ACCX" on disk): the tail probe that
	// distinguishes an indexed stream from a plain one.
	indexMagic = 0x58434341
	// indexFooterOverhead is the footer's fixed framing: marker (1) +
	// body length (4) + CRC (4) + size (4) + magic (4).
	indexFooterOverhead = 17
	// minIndexFooter is the size of a footer with an empty table (the
	// body is just its u32 record count).
	minIndexFooter = indexFooterOverhead + 4
	// maxIndexBody bounds the footer body a stream may claim (64 MiB:
	// beyond 200k records even at the maximum entry size).
	maxIndexBody = 1 << 26
	// minIndexEntry is the smallest possible entry: offset (8) + payload
	// length (8) + marker (1) + spec length (2) + spec (≥1) + rank (1) +
	// dims (≥4). Used to bound the claimed record count against the body
	// length before anything is allocated.
	minIndexEntry = 25
)

// indexEntry is one record's row in the index, both as accumulated by
// the writer and as loaded (or rebuilt) by IndexedStream.
type indexEntry struct {
	off    int64 // stream offset of the record's marker byte
	payLen int64
	marker byte
	spec   string
	shape  []int
}

// encodeIndexFooter serializes the footer for a set of entries.
// Factored out of writeIndexFooter so tests can build forged footers.
func encodeIndexFooter(entries []indexEntry) ([]byte, error) {
	body := make([]byte, 0, 4+40*len(entries))
	body = binary.LittleEndian.AppendUint32(body, uint32(len(entries)))
	for _, e := range entries {
		body = binary.LittleEndian.AppendUint64(body, uint64(e.off))
		body = binary.LittleEndian.AppendUint64(body, uint64(e.payLen))
		body = append(body, e.marker)
		body = binary.LittleEndian.AppendUint16(body, uint16(len(e.spec)))
		body = append(body, e.spec...)
		body = append(body, byte(len(e.shape)))
		for _, d := range e.shape {
			body = binary.LittleEndian.AppendUint32(body, uint32(d))
		}
	}
	if len(body) > maxIndexBody {
		return nil, fmt.Errorf("codec: index footer body %d bytes exceeds limit %d", len(body), maxIndexBody)
	}
	foot := make([]byte, 0, len(body)+indexFooterOverhead)
	foot = append(foot, recIndex)
	foot = binary.LittleEndian.AppendUint32(foot, uint32(len(body)))
	foot = append(foot, body...)
	foot = binary.LittleEndian.AppendUint32(foot, crc32.ChecksumIEEE(foot))
	foot = binary.LittleEndian.AppendUint32(foot, uint32(len(body)+indexFooterOverhead))
	foot = binary.LittleEndian.AppendUint32(foot, indexMagic)
	return foot, nil
}

// writeIndexFooter emits the accumulated index as the stream's last
// record before the end marker. Called by Close with the pipelined
// engine already drained, so sw.index and sw.off are settled.
func (sw *StreamWriter) writeIndexFooter() error {
	foot, err := encodeIndexFooter(sw.index)
	if err != nil {
		return err
	}
	if _, err := sw.w.Write(foot); err != nil {
		return fmt.Errorf("codec: writing index footer: %w", err)
	}
	sw.off += int64(len(foot))
	return nil
}

// skipIndexFooter verifies and discards an index footer mid-stream: the
// sequential reader has no use for the table, but its CRC and framing
// are still enforced so corruption never passes silently. The marker
// byte has already been consumed (it is covered by the footer CRC).
func (sr *StreamReader) skipIndexFooter() error {
	crc := crc32.ChecksumIEEE([]byte{recIndex})
	var lenBuf [4]byte
	if err := sr.readFull(lenBuf[:]); err != nil {
		return sr.posw("reading index footer length", noEOF(err))
	}
	crc = crc32.Update(crc, crc32.IEEETable, lenBuf[:])
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < 4 || n > maxIndexBody {
		return sr.posf("index footer body %d bytes outside [4,%d]", n, maxIndexBody)
	}
	// Stream the body through the CRC in bounded pieces; the sequential
	// reader never materializes the table.
	buf := getByteScratch(32 << 10)
	remaining := int64(n)
	for remaining > 0 {
		k := int64(len(buf))
		if k > remaining {
			k = remaining
		}
		if err := sr.readFull(buf[:k]); err != nil {
			putByteScratch(buf)
			return sr.posw("reading index footer body", noEOF(err))
		}
		crc = crc32.Update(crc, crc32.IEEETable, buf[:k])
		remaining -= k
	}
	putByteScratch(buf)
	var tail [12]byte
	if err := sr.readFull(tail[:]); err != nil {
		return sr.posw("reading index footer trailer", noEOF(err))
	}
	if want := binary.LittleEndian.Uint32(tail[0:]); want != crc {
		sr.nCRCFail.Add(1)
		streamM.rCRCFail.Inc()
		return sr.poskf(ErrCRC, "index footer CRC mismatch (stored %#x, computed %#x)", want, crc)
	}
	if s := binary.LittleEndian.Uint32(tail[4:]); uint64(s) != uint64(n)+indexFooterOverhead {
		return sr.posf("index footer size %d does not match body length %d", s, n)
	}
	if m := binary.LittleEndian.Uint32(tail[8:]); m != indexMagic {
		return sr.posf("bad index footer magic %#x", m)
	}
	return nil
}

// probeIndex loads the index footer from a seekable source before any
// sequential read, enabling the O(1) seek path in Skip. The stream may
// start anywhere in the source (the current position is the stream's
// byte 0); entry offsets stay stream-relative throughout. Every probe
// failure — short source, no trailing magic, bad framing or CRC,
// invalid entries — silently leaves seekIdx nil: the sequential walk
// still verifies the footer inline when it reaches the 'I' record, so
// nothing is lost but the fast skips. Only a failure to restore the
// source position is fatal (the reader would otherwise consume from
// the wrong offset).
func (sr *StreamReader) probeIndex(rs io.ReadSeeker) error {
	base, err := rs.Seek(0, io.SeekCurrent)
	if err != nil {
		return nil // claims io.Seeker but cannot seek: stay sequential
	}
	sr.rs = rs
	end, err := rs.Seek(0, io.SeekEnd)
	probe := func() {
		if err != nil || end-base < 8+minIndexFooter+1 {
			return
		}
		// Indexed tail: CRC | size S | magic | 'E'; the magic is the
		// discriminator (see loadFooter, which this mirrors for the
		// sequential reader).
		var tail [13]byte
		if _, err := rs.Seek(end-13, io.SeekStart); err != nil {
			return
		}
		if _, err := io.ReadFull(rs, tail[:]); err != nil {
			return
		}
		if tail[12] != recEnd || binary.LittleEndian.Uint32(tail[8:12]) != indexMagic {
			return
		}
		s := int64(binary.LittleEndian.Uint32(tail[4:8]))
		if s < minIndexFooter || s-indexFooterOverhead > maxIndexBody {
			return
		}
		footOff := end - 1 - s
		if footOff < base+8 {
			return
		}
		foot := make([]byte, s)
		if _, err := rs.Seek(footOff, io.SeekStart); err != nil {
			return
		}
		if _, err := io.ReadFull(rs, foot); err != nil {
			return
		}
		n := int64(binary.LittleEndian.Uint32(foot[1:5]))
		if foot[0] != recIndex || n != s-indexFooterOverhead {
			return
		}
		if crc32.ChecksumIEEE(foot[:5+n]) != binary.LittleEndian.Uint32(foot[5+n:]) {
			return
		}
		entries, err := parseIndexBody(foot[5:5+n], footOff-base)
		if err != nil {
			return
		}
		sr.seekIdx = entries
		sr.footIdxOff = footOff - base
	}
	probe()
	if _, err := rs.Seek(base, io.SeekStart); err != nil {
		return fmt.Errorf("codec: restoring stream position after index probe: %w", err)
	}
	return nil
}

// checkStreamHeader validates the fixed 8-byte ACCF v2 stream header.
func checkStreamHeader(fixed []byte) error {
	if m := binary.LittleEndian.Uint32(fixed[0:]); m != containerMagic {
		return fmt.Errorf("codec: bad magic %#x (not an ACCF stream)", m)
	}
	if v := binary.LittleEndian.Uint16(fixed[4:]); v != streamVersion {
		return fmt.Errorf("codec: unsupported stream version %d (want %d)", v, streamVersion)
	}
	if rsv := binary.LittleEndian.Uint16(fixed[6:]); rsv != 0 {
		return fmt.Errorf("codec: nonzero reserved field %#x in stream header", rsv)
	}
	return nil
}

// errNoFooter signals OpenIndexedStream's internal fallback: the stream
// carries no loadable footer, so the index must be rebuilt by walking
// the records. Never returned to callers.
var errNoFooter = errors.New("codec: no index footer")

// IndexedStream is the random-access view of an ACCF v2 stream: a
// loaded (or rebuilt) record index over an io.ReaderAt, with O(1)
// per-record seeks and a bounded-parallel range decoder. Methods are
// safe for concurrent use; decoded codecs are cached per spec and
// shared across all seeks.
type IndexedStream struct {
	r       io.ReaderAt
	size    int64
	entries []indexEntry
	rebuilt bool
	workers int

	mu     sync.RWMutex
	codecs map[string]Codec
}

// OpenIndexedStream opens a stream for random access. r must cover the
// whole stream: size is its total byte length (io.ReaderAt carries no
// length of its own — pass the file size, or len of the backing slice).
//
// If the stream ends with an index footer, it is loaded and validated
// with two tail reads, independent of stream length. Otherwise — no
// footer, or a footer whose CRC, framing, or entries fail validation —
// the index is rebuilt by sequentially walking the record headers
// (reading headers and chunk framing only, not payloads; see Rebuilt).
func OpenIndexedStream(r io.ReaderAt, size int64) (*IndexedStream, error) {
	// Minimum well-formed stream: the 8-byte header plus the end marker.
	if size < 9 {
		return nil, markErr(ErrTruncated, fmt.Errorf("codec: stream size %d below minimum 9", size))
	}
	var fixed [8]byte
	if _, err := r.ReadAt(fixed[:], 0); err != nil {
		return nil, fmt.Errorf("codec: reading stream header: %w", noEOF(err))
	}
	if err := checkStreamHeader(fixed[:]); err != nil {
		return nil, err
	}
	ix := &IndexedStream{r: r, size: size, codecs: make(map[string]Codec)}
	if err := ix.loadFooter(); err == nil {
		streamM.iLoads.Inc()
		return ix, nil
	} else if !errors.Is(err, errNoFooter) {
		// A read error from the medium itself (not a malformed footer)
		// would fail the rebuild too; surface it now.
		var readErr *indexReadError
		if errors.As(err, &readErr) {
			return nil, readErr.err
		}
	}
	entries, err := ix.rebuild()
	if err != nil {
		return nil, err
	}
	ix.entries = entries
	ix.rebuilt = true
	streamM.iRebuilds.Inc()
	return ix, nil
}

// indexReadError distinguishes an I/O failure while probing the footer
// from a malformed footer: the latter falls back to a rebuild, the
// former aborts the open.
type indexReadError struct{ err error }

func (e *indexReadError) Error() string { return e.err.Error() }

// loadFooter probes the stream tail for the footer and, if present,
// validates and parses it into ix.entries. Any malformation returns an
// error wrapping errNoFooter, which the caller answers with a rebuild.
func (ix *IndexedStream) loadFooter() error {
	if ix.size < 8+minIndexFooter+1 {
		return errNoFooter
	}
	// The stream's last 13 bytes of an indexed stream: CRC | size S |
	// magic | 'E'. The magic is the discriminator; a plain stream ends
	// with arbitrary record bytes before its 'E'.
	var tail [13]byte
	if _, err := ix.r.ReadAt(tail[:], ix.size-13); err != nil {
		return &indexReadError{err: fmt.Errorf("codec: reading stream tail: %w", noEOF(err))}
	}
	if tail[12] != recEnd || binary.LittleEndian.Uint32(tail[8:12]) != indexMagic {
		return errNoFooter
	}
	s := int64(binary.LittleEndian.Uint32(tail[4:8]))
	if s < minIndexFooter || s-indexFooterOverhead > maxIndexBody {
		return fmt.Errorf("%w: implausible footer size %d", errNoFooter, s)
	}
	footOff := ix.size - 1 - s
	if footOff < 8 {
		return fmt.Errorf("%w: footer size %d overruns the stream", errNoFooter, s)
	}
	foot := make([]byte, s)
	if _, err := ix.r.ReadAt(foot, footOff); err != nil {
		return &indexReadError{err: fmt.Errorf("codec: reading index footer at offset %d: %w", footOff, noEOF(err))}
	}
	n := int64(binary.LittleEndian.Uint32(foot[1:5]))
	if foot[0] != recIndex || n != s-indexFooterOverhead {
		return fmt.Errorf("%w: malformed footer framing at offset %d", errNoFooter, footOff)
	}
	if got, want := crc32.ChecksumIEEE(foot[:5+n]), binary.LittleEndian.Uint32(foot[5+n:]); got != want {
		return fmt.Errorf("%w: footer CRC mismatch at offset %d (stored %#x, computed %#x)", errNoFooter, footOff, want, got)
	}
	entries, err := parseIndexBody(foot[5:5+n], footOff)
	if err != nil {
		return fmt.Errorf("%w: %s", errNoFooter, err)
	}
	ix.entries = entries
	return nil
}

// parseIndexBody decodes and validates the footer's entry table.
// footOff is where the footer starts: every record the table describes
// must lie in [8, footOff). All wire fields are validated as unsigned
// before any int conversion.
func parseIndexBody(body []byte, footOff int64) ([]indexEntry, error) {
	count := binary.LittleEndian.Uint32(body[0:4])
	// Bound the claimed count against the body before allocating.
	if uint64(count)*minIndexEntry > uint64(len(body)-4) {
		return nil, fmt.Errorf("codec: index claims %d entries in a %d-byte body", count, len(body))
	}
	entries := make([]indexEntry, 0, count)
	p := 4
	prev := int64(7) // records start at offset 8, strictly increasing
	for i := 0; i < int(count); i++ {
		if len(body)-p < minIndexEntry {
			return nil, fmt.Errorf("codec: index entry %d truncated", i)
		}
		off64 := binary.LittleEndian.Uint64(body[p:])
		pay64 := binary.LittleEndian.Uint64(body[p+8:])
		marker := body[p+16]
		specLen := int(binary.LittleEndian.Uint16(body[p+17:]))
		p += 19
		// footOff ≥ 8 and fits int64, so the unsigned comparison both
		// bounds the offset and licenses the conversion.
		if off64 >= uint64(footOff) {
			return nil, fmt.Errorf("codec: index entry %d offset %d beyond footer at %d", i, off64, footOff)
		}
		off := int64(off64)
		if off <= prev {
			return nil, fmt.Errorf("codec: index entry %d offset %d not increasing past %d", i, off, prev)
		}
		if pay64 > maxPayload {
			return nil, fmt.Errorf("codec: index entry %d payload %d bytes exceeds limit %d", i, pay64, maxPayload)
		}
		if marker != recTensor && marker != recStaged {
			return nil, fmt.Errorf("codec: index entry %d bad record marker %#x", i, marker)
		}
		if specLen == 0 || specLen > maxSpecLen {
			return nil, fmt.Errorf("codec: index entry %d spec length %d outside [1,%d]", i, specLen, maxSpecLen)
		}
		if len(body)-p < specLen+1 {
			return nil, fmt.Errorf("codec: index entry %d truncated", i)
		}
		spec := string(body[p : p+specLen])
		rank := int(body[p+specLen])
		p += specLen + 1
		if staged := specHasStages(spec); staged != (marker == recStaged) {
			return nil, fmt.Errorf("codec: index entry %d marker %#x does not match spec %q", i, marker, spec)
		}
		if rank == 0 || rank > maxRank {
			return nil, fmt.Errorf("codec: index entry %d rank %d outside [1,%d]", i, rank, maxRank)
		}
		if len(body)-p < 4*rank {
			return nil, fmt.Errorf("codec: index entry %d truncated", i)
		}
		shape := make([]int, rank)
		elems := uint64(1)
		for k := range shape {
			d := binary.LittleEndian.Uint32(body[p+4*k:])
			if d < 1 || d > maxDim {
				return nil, fmt.Errorf("codec: index entry %d dimension %d outside [1,%d]", i, d, maxDim)
			}
			shape[k] = int(d)
			elems *= uint64(d)
			if elems > maxElems {
				return nil, fmt.Errorf("codec: index entry %d shape %v exceeds %d elements", i, shape, maxElems)
			}
		}
		p += 4 * rank
		entries = append(entries, indexEntry{off: off, payLen: int64(pay64), marker: marker, spec: spec, shape: shape})
		prev = off
	}
	if p != len(body) {
		return nil, fmt.Errorf("codec: %d trailing bytes after index entries", len(body)-p)
	}
	return entries, nil
}

// newRecordReader positions a sequential StreamReader at an absolute
// record offset via an io.SectionReader window, sharing the stream's
// codec cache. rec seeds the 0-based record count so position-bearing
// errors report the true record number.
func (ix *IndexedStream) newRecordReader(off int64, rec, bufSize int) *StreamReader {
	sec := io.NewSectionReader(ix.r, off, ix.size-off)
	return &StreamReader{
		br:     bufio.NewReaderSize(sec, bufSize),
		off:    off,
		rec:    rec,
		shared: ix,
	}
}

// rebuild reconstructs the index by walking the records sequentially:
// each header is parsed and CRC-verified through the same code path as
// the sequential reader, then the payload is skipped by hopping chunk
// headers — payload bytes themselves are never read, so a rebuild costs
// O(records + chunks) reads, not O(stream bytes). A footer encountered
// on the walk is skipped structurally (its length field and position
// only): a corrupt footer is exactly why the rebuild is running.
func (ix *IndexedStream) rebuild() ([]indexEntry, error) {
	var entries []indexEntry
	off := int64(8)
	sawFooter := false
	for {
		if off >= ix.size {
			return nil, markErr(ErrTruncated, fmt.Errorf("codec: stream offset %d (record %d): missing end-of-stream marker", off, len(entries)))
		}
		var mb [1]byte
		if _, err := ix.r.ReadAt(mb[:], off); err != nil {
			return nil, fmt.Errorf("codec: stream offset %d (record %d): reading record marker: %w", off, len(entries), noEOF(err))
		}
		switch mb[0] {
		case recEnd:
			if off != ix.size-1 {
				return nil, fmt.Errorf("codec: stream offset %d (record %d): trailing data after end-of-stream marker", off+1, len(entries))
			}
			return entries, nil
		case recIndex:
			if sawFooter {
				return nil, fmt.Errorf("codec: stream offset %d (record %d): duplicate index footer", off+1, len(entries))
			}
			var lenBuf [4]byte
			if _, err := ix.r.ReadAt(lenBuf[:], off+1); err != nil {
				return nil, fmt.Errorf("codec: stream offset %d (record %d): reading index footer length: %w", off+1, len(entries), noEOF(err))
			}
			n := binary.LittleEndian.Uint32(lenBuf[:])
			if n < 4 || n > maxIndexBody {
				return nil, fmt.Errorf("codec: stream offset %d (record %d): index footer body %d bytes outside [4,%d]", off+5, len(entries), n, maxIndexBody)
			}
			// The footer must run exactly to the end marker.
			if off+int64(n)+indexFooterOverhead != ix.size-1 {
				return nil, fmt.Errorf("codec: stream offset %d (record %d): index footer does not reach the end marker", off+5, len(entries))
			}
			sawFooter = true
			off = ix.size - 1
		case recTensor, recStaged:
			if sawFooter {
				return nil, fmt.Errorf("codec: stream offset %d (record %d): tensor record after index footer", off+1, len(entries))
			}
			// Small window: a rebuild touches one header per record, and
			// the maximum header is ~300 bytes.
			sr := ix.newRecordReader(off, len(entries), 512)
			hdr, err := sr.nextRecord()
			if err != nil {
				return nil, err
			}
			payLen := int64(sr.cur.len())
			entries = append(entries, indexEntry{
				off:    off,
				payLen: payLen,
				marker: mb[0],
				spec:   hdr.Spec,
				shape:  hdr.Shape,
			})
			// Hop the chunk framing without reading payload bytes.
			pos := off + int64(hdr.wireSize)
			for remaining := payLen; remaining > 0; {
				var ch [8]byte
				if _, err := ix.r.ReadAt(ch[:], pos); err != nil {
					return nil, markErr(ErrTruncated, fmt.Errorf("codec: stream offset %d (record %d): reading chunk header: %w", pos, len(entries), noEOF(err)))
				}
				clen := binary.LittleEndian.Uint32(ch[0:])
				if clen == 0 || clen > maxStreamChunk || int64(clen) > remaining {
					return nil, fmt.Errorf("codec: stream offset %d (record %d): chunk length %d outside [1,%d] with %d payload bytes left", pos+8, len(entries), clen, maxStreamChunk, remaining)
				}
				pos += 8 + int64(clen)
				remaining -= int64(clen)
			}
			if pos > ix.size {
				return nil, markErr(ErrTruncated, fmt.Errorf("codec: stream offset %d (record %d): record overruns the stream", ix.size, len(entries)))
			}
			off = pos
		default:
			return nil, fmt.Errorf("codec: stream offset %d (record %d): bad record marker %#x", off+1, len(entries), mb[0])
		}
	}
}

// Len reports the number of records in the index.
func (ix *IndexedStream) Len() int { return len(ix.entries) }

// Rebuilt reports whether the index was reconstructed by walking the
// records (no footer, or a footer that failed validation) rather than
// loaded from the footer.
func (ix *IndexedStream) Rebuilt() bool { return ix.rebuilt }

// Header returns record i's spec and shape from the index, without
// touching the stream. The shape is a fresh copy.
func (ix *IndexedStream) Header(i int) (Header, error) {
	if i < 0 || i >= len(ix.entries) {
		return Header{}, fmt.Errorf("codec: record index %d outside [0,%d)", i, len(ix.entries))
	}
	e := ix.entries[i]
	return Header{Spec: e.spec, Shape: append([]int(nil), e.shape...)}, nil
}

// SetConcurrency caps DecodeRange's worker pool. n == 0 (the default)
// means one worker per runtime.GOMAXPROCS(0); n ≥ 1 sets an explicit
// cap. Unlike the sequential engines this may be changed at any time —
// it only affects subsequent DecodeRange calls.
func (ix *IndexedStream) SetConcurrency(n int) error {
	if n < 0 {
		return fmt.Errorf("codec: negative concurrency %d", n)
	}
	ix.workers = n
	return nil
}

// DecodeAt decodes record i with a single seek: the record's header is
// re-parsed and CRC-verified at the indexed offset, cross-checked
// against the index entry (ErrIndex on disagreement — a forged or stale
// index never yields a wrong tensor silently), and the payload decoded
// through the same chunk-CRC-verified path as the sequential reader.
// Safe for concurrent use.
func (ix *IndexedStream) DecodeAt(ctx context.Context, i int) (*tensor.Tensor, error) {
	if i < 0 || i >= len(ix.entries) {
		return nil, fmt.Errorf("codec: record index %d outside [0,%d)", i, len(ix.entries))
	}
	start := telemetry.NowNanos()
	streamM.iSeeks.Inc()
	e := ix.entries[i]
	// Size the buffered window to the record itself (header + payload +
	// chunk framing slack), so a seek's reads are proportional to the
	// record, not to a fixed window that may span half the stream.
	bufSize := 64 << 10
	if n := int(e.payLen) + 1024; n < bufSize {
		bufSize = n
	}
	sr := ix.newRecordReader(e.off, i, bufSize)
	hdr, err := sr.nextRecord()
	if err != nil {
		return nil, err
	}
	if hdr.Spec != e.spec || int64(sr.cur.len()) != e.payLen || !equalShape(hdr.Shape, e.shape) {
		return nil, markErr(ErrIndex, fmt.Errorf(
			"codec: stream offset %d (record %d): index entry disagrees with record header (entry %q %v %d payload bytes, record %q %v %d)",
			e.off, i+1, e.spec, e.shape, e.payLen, hdr.Spec, hdr.Shape, sr.cur.len()))
	}
	out, err := sr.decodeRecord(ctx)
	if err != nil {
		return nil, err
	}
	streamM.iSeekNs.ObserveSince(start)
	return out, nil
}

// equalShape reports whether two shapes match exactly.
func equalShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DecodeRange decodes records [lo, hi) concurrently on a bounded worker
// pool (see SetConcurrency) and returns them in record order. On
// failure the in-flight decodes are cancelled and the lowest-indexed
// causal error is returned (cancellation fallout from sibling workers
// does not mask it).
func (ix *IndexedStream) DecodeRange(ctx context.Context, lo, hi int) ([]*tensor.Tensor, error) {
	if lo < 0 || hi > len(ix.entries) || lo > hi {
		return nil, fmt.Errorf("codec: record range [%d,%d) outside [0,%d)", lo, hi, len(ix.entries))
	}
	n := hi - lo
	if n == 0 {
		return nil, ctx.Err()
	}
	workers := ix.workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]*tensor.Tensor, n)
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || wctx.Err() != nil {
					return
				}
				t, err := ix.DecodeAt(wctx, lo+i)
				if err != nil {
					errs[i] = err
					cancel()
					return
				}
				out[i] = t
				streamM.iRangeRecords.Inc()
			}
		}()
	}
	wg.Wait()
	// Deterministic error selection: prefer the lowest-indexed causal
	// failure; a sibling's cancellation fallout only surfaces when no
	// worker recorded anything else.
	var firstCancel error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if ErrorKind(err) != "canceled" {
			return nil, err
		}
		if firstCancel == nil {
			firstCancel = err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, markErr(ErrCanceled, fmt.Errorf("codec: range decode aborted: %w", err))
	}
	if firstCancel != nil {
		return nil, firstCancel
	}
	return out, nil
}

// lookupCodec resolves (and caches) a codec by spec under the stream's
// lock, so concurrent DecodeAt calls share compiled codec state.
func (ix *IndexedStream) lookupCodec(spec string) (Codec, error) {
	ix.mu.RLock()
	c, ok := ix.codecs[spec]
	ix.mu.RUnlock()
	if ok {
		return c, nil
	}
	c, err := New(spec)
	if err != nil {
		return nil, err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if prev, ok := ix.codecs[spec]; ok {
		return prev, nil
	}
	ix.codecs[spec] = c
	return c, nil
}
