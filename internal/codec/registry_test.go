package codec

import (
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("dctc:cf=4, s=2 ,sg")
	if err != nil {
		t.Fatal(err)
	}
	if s.Family != "dctc" {
		t.Fatalf("family %q", s.Family)
	}
	if s.kv["cf"] != "4" || s.kv["s"] != "2" || s.kv["sg"] != "true" {
		t.Fatalf("options %v", s.kv)
	}
	if _, err := ParseSpec(""); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := ParseSpec("dctc:cf=4,cf=5"); err == nil || !strings.Contains(err.Error(), `"cf"`) {
		t.Fatalf("duplicate key not named: %v", err)
	}
	if _, err := ParseSpec("zfp:=8"); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestNewErrorsNameBadKeys(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring the error must contain
	}{
		{"nosuch:z=1", `unknown family "nosuch"`},
		{"zfp:rat=8", `[rat]`},                 // unknown key named
		{"zfp:rate=abc", `"rate"`},             // bad value names key
		{"zfp:rate=64", `"rate"`},              // out-of-range rate
		{"dctc:cf=99", "chop factor"},          // invalid chop factor
		{"dctc:transform=webp", `"transform"`}, // invalid transform
		{"dctc:sg=maybe", `"sg"`},              // bad boolean
		{"sz:eb=-1", `"eb"`},                   // invalid bound
		{"jpegq:q=0", `"q"`},                   // invalid quality
		{"dctc:planen=7", `"planen"`},          // incompatible plane edge
	}
	for _, tc := range cases {
		_, err := New(tc.spec)
		if err == nil {
			t.Errorf("New(%q): no error", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("New(%q) error %q does not mention %q", tc.spec, err, tc.want)
		}
	}
}

func TestCanonicalSpecRebuilds(t *testing.T) {
	for _, spec := range []string{
		"dctc", "dctc:cf=4,s=2,sg", "dctc:sg,cf=2", "dctc:cf=3,transform=zfp4",
		"zfp", "zfp:rate=16", "sz", "sz:eb=0.01", "jpegq", "jpegq:q=75",
	} {
		c, err := New(spec)
		if err != nil {
			t.Fatalf("New(%q): %v", spec, err)
		}
		again, err := New(c.Spec())
		if err != nil {
			t.Fatalf("New(canonical %q): %v", c.Spec(), err)
		}
		if again.Spec() != c.Spec() {
			t.Errorf("canonical spec not a fixed point: %q -> %q -> %q", spec, c.Spec(), again.Spec())
		}
		if c.Name() == "" || c.Spec() == "" {
			t.Errorf("New(%q): empty name or spec", spec)
		}
	}
}

func TestFamilies(t *testing.T) {
	fams := Families()
	want := []string{"dctc", "jpegq", "lossless", "sz", "zfp"}
	if len(fams) != len(want) {
		t.Fatalf("families %v, want %v", fams, want)
	}
	for i := range want {
		if fams[i] != want[i] {
			t.Fatalf("families %v, want %v", fams, want)
		}
	}
}
