package codec

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/tensor"
)

// parallelCases mixes codec families, shapes, and payload sizes so the
// pipelined writer is exercised across records that encode at very
// different speeds (ordering would scramble under a naive pool).
var parallelCases = []struct {
	spec  string
	shape []int
}{
	{"dctc:cf=4", []int{2, 1, 16, 16}},
	{"zfp:rate=8", []int{3, 8, 8}},
	{"sz:eb=1e-3", []int{3, 5, 7}},
	{"jpegq:q=50", []int{1, 2, 8, 8}},
	{"dctc:cf=4", []int{100}},
	{"zfp:rate=8", []int{4, 32, 32}},
	{"sz:eb=1e-3", []int{64}},
	{"zfp:rate=8", []int{100}},
	{"dctc:cf=4", []int{1, 1, 32, 32}},
	{"jpegq:q=90", []int{2, 1, 8, 8}},
	{"sz:eb=1e-2", []int{5, 6, 6}},
	{"zfp:rate=16", []int{2, 16, 16}},
}

// writeParallelStream writes parallelCases through sw and closes it.
func writeParallelStream(t *testing.T, sw *StreamWriter) {
	t.Helper()
	ctx := context.Background()
	for _, tc := range parallelCases {
		c, err := New(tc.spec)
		if err != nil {
			t.Fatalf("New(%q): %v", tc.spec, err)
		}
		if err := sw.WriteTensor(ctx, c, mkStreamTensor(tc.shape...)); err != nil {
			t.Fatalf("WriteTensor(%q): %v", tc.spec, err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestParallelStreamWriterByteIdentical is the tentpole contract: the
// pipelined writer's output must equal the serial writer's byte for
// byte, across worker counts and under a byte budget tight enough to
// force back-pressure mid-stream.
func TestParallelStreamWriterByteIdentical(t *testing.T) {
	var serial bytes.Buffer
	sw := NewStreamWriter(&serial)
	sw.SetChunkSize(4 << 10)
	writeParallelStream(t, sw)

	for _, workers := range []int{0, 2, 4, 7} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var par bytes.Buffer
			pw := NewStreamWriter(&par)
			pw.SetChunkSize(4 << 10)
			if err := pw.SetConcurrency(workers); err != nil {
				t.Fatal(err)
			}
			if err := pw.SetMaxInFlightBytes(8 << 10); err != nil {
				t.Fatal(err)
			}
			writeParallelStream(t, pw)
			if !bytes.Equal(par.Bytes(), serial.Bytes()) {
				t.Fatalf("parallel stream (%d bytes) differs from serial stream (%d bytes)", par.Len(), serial.Len())
			}
			if pw.Records() != len(parallelCases) {
				t.Fatalf("Records() = %d, want %d", pw.Records(), len(parallelCases))
			}
		})
	}
}

// slowSink delays every Write, modeling a saturated disk or socket so
// the emitter falls behind the encoders.
type slowSink struct {
	delay time.Duration
	buf   bytes.Buffer
}

func (s *slowSink) Write(p []byte) (int, error) {
	time.Sleep(s.delay)
	return s.buf.Write(p)
}

// TestStreamWriterBackPressure drives the pipelined writer into a slow
// sink with a small in-flight budget and verifies the admission gate
// held: the engine's high-water mark never exceeded the budget, i.e. a
// stalled emitter blocks WriteTensor instead of queueing payloads.
func TestStreamWriterBackPressure(t *testing.T) {
	c, err := New("zfp:rate=8")
	if err != nil {
		t.Fatal(err)
	}
	x := mkStreamTensor(4, 16, 16) // 4 KiB uncompressed
	const budget = 10 << 10        // room for two records, never three
	sink := &slowSink{delay: 2 * time.Millisecond}
	sw := NewStreamWriter(sink)
	if err := sw.SetConcurrency(4); err != nil {
		t.Fatal(err)
	}
	if err := sw.SetMaxInFlightBytes(budget); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const records = 12
	for i := 0; i < records; i++ {
		if err := sw.WriteTensor(ctx, c, x); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	hi := sw.eng.maxInFlightBytes()
	if hi > budget {
		t.Fatalf("in-flight high-water mark %d bytes exceeds the %d-byte budget", hi, budget)
	}
	if hi < int64(x.SizeBytes()) {
		t.Fatalf("high-water mark %d below a single record's %d bytes — the gate never admitted anything?", hi, x.SizeBytes())
	}
	sr, err := NewStreamReader(bytes.NewReader(sink.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if _, err := sr.Next(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if _, err := sr.Decode(ctx); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("Next after last record: %v, want io.EOF", err)
	}
}

// gateBackend is a test backend whose encode blocks until the job's
// context dies or the gate opens, counting encode starts — the probe
// for "workers stop claiming work after a failure".
type gateBackend struct {
	starts atomic.Int64
	gate   chan struct{}
}

func (g *gateBackend) name() string   { return "gate" }
func (g *gateBackend) ratio() float64 { return 1 }
func (g *gateBackend) encode(ctx context.Context, x *tensor.Tensor) ([]byte, error) {
	g.starts.Add(1)
	select {
	case <-g.gate:
		return []byte{1, 2, 3}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
func (g *gateBackend) decode(ctx context.Context, payload []byte, shape []int) (*tensor.Tensor, error) {
	return tensor.New(shape...), nil
}

// TestParallelStreamWriterCancellation cancels the context while the
// pipeline is saturated and verifies the abort contract: blocked and
// subsequent WriteTensor calls fail with an error wrapping
// context.Canceled, the error is sticky through Close, workers stop
// starting encodes, and nothing is written after the failure.
func TestParallelStreamWriterCancellation(t *testing.T) {
	g := &gateBackend{gate: make(chan struct{})}
	c := &codecImpl{spec: "dctc:cf=4", b: g}
	x := mkStreamTensor(4, 4)

	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	const workers = 2
	if err := sw.SetConcurrency(workers); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Fill the pipeline: the job quota is 2×workers, so these all admit
	// without blocking while every encode sits parked on the gate.
	for i := 0; i < 2*workers; i++ {
		if err := sw.WriteTensor(ctx, c, x); err != nil {
			t.Fatalf("record %d admitted with error: %v", i, err)
		}
	}
	// The next submission blocks on the quota; cancel while it waits.
	errCh := make(chan error, 1)
	go func() {
		errCh <- sw.WriteTensor(ctx, c, x)
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("blocked WriteTensor returned %v, want context.Canceled", err)
	}
	// The sticky failure must surface on later calls and on Close.
	var stickyErr error
	for i := 0; i < 100; i++ {
		if stickyErr = sw.WriteTensor(context.Background(), c, x); stickyErr != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(stickyErr, context.Canceled) {
		t.Fatalf("WriteTensor after cancellation returned %v, want sticky context.Canceled", stickyErr)
	}
	if err := sw.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close returned %v, want sticky context.Canceled", err)
	}
	// Workers claimed at most the encodes that had started before the
	// cancellation; the quota'd tail jobs were aborted unencoded.
	if n := g.starts.Load(); n > workers {
		t.Fatalf("%d encodes started; want at most %d (workers must stop claiming after the failure)", n, workers)
	}
	// The poisoned stream carries no end marker (truncation is visible).
	if buf.Len() != 0 && buf.Bytes()[buf.Len()-1] == recEnd {
		t.Fatal("poisoned stream ends with a clean end-of-stream marker")
	}
}

// errSink fails after n bytes, modeling a full disk mid-stream.
type errSink struct {
	n       int
	written int
}

func (s *errSink) Write(p []byte) (int, error) {
	if s.written+len(p) > s.n {
		return 0, fmt.Errorf("sink full after %d bytes", s.written)
	}
	s.written += len(p)
	return len(p), nil
}

// TestParallelStreamWriterSinkError verifies a sink failure poisons the
// pipelined writer exactly like an encode failure.
func TestParallelStreamWriterSinkError(t *testing.T) {
	c, err := New("zfp:rate=8")
	if err != nil {
		t.Fatal(err)
	}
	x := mkStreamTensor(4, 16, 16)
	sw := NewStreamWriter(&errSink{n: 600})
	if err := sw.SetConcurrency(3); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var firstErr error
	for i := 0; i < 50; i++ {
		if firstErr = sw.WriteTensor(ctx, c, x); firstErr != nil {
			break
		}
	}
	closeErr := sw.Close()
	if firstErr == nil && closeErr == nil {
		t.Fatal("sink failure surfaced neither on WriteTensor nor on Close")
	}
	if closeErr == nil {
		t.Fatal("Close on a poisoned writer returned nil")
	}
	if err := sw.WriteTensor(ctx, c, x); err == nil {
		t.Fatal("WriteTensor after Close returned nil")
	}
}

// TestStreamWriterConfigAfterStart locks the configuration window:
// concurrency and budget are immutable once the first record is in.
func TestStreamWriterConfigAfterStart(t *testing.T) {
	c, err := New("sz:eb=1e-3")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	if err := sw.SetConcurrency(2); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteTensor(context.Background(), c, mkStreamTensor(2, 4, 4)); err != nil {
		t.Fatal(err)
	}
	if err := sw.SetConcurrency(4); err == nil {
		t.Fatal("SetConcurrency after first WriteTensor succeeded")
	}
	if err := sw.SetMaxInFlightBytes(1 << 20); err == nil {
		t.Fatal("SetMaxInFlightBytes after first WriteTensor succeeded")
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamReadAhead verifies the prefetching reader returns exactly
// the records and errors the synchronous reader does, across Decode,
// Skip, and the io.EOF tail contract.
func TestStreamReadAhead(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	sw.SetChunkSize(4 << 10)
	writeParallelStream(t, sw)
	ctx := context.Background()

	// Reference pass: synchronous reader.
	sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var want []*tensor.Tensor
	for {
		if _, err := sr.Next(); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
		out, err := sr.Decode(ctx)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, out)
	}

	for _, depth := range []int{1, 3} {
		t.Run(fmt.Sprintf("depth=%d", depth), func(t *testing.T) {
			ra, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if err := ra.SetReadAhead(ctx, depth); err != nil {
				t.Fatal(err)
			}
			if err := ra.SetReadAhead(ctx, depth); err == nil {
				t.Fatal("second SetReadAhead succeeded")
			}
			for i, w := range want {
				hdr, err := ra.Next()
				if err != nil {
					t.Fatalf("record %d: Next: %v", i, err)
				}
				if hdr.Spec == "" || hdr.Elems() != w.Len() {
					t.Fatalf("record %d: header %+v, want %d elements", i, hdr, w.Len())
				}
				if i == 3 {
					if err := ra.Skip(); err != nil {
						t.Fatalf("record %d: Skip: %v", i, err)
					}
					continue
				}
				out, err := ra.Decode(ctx)
				if err != nil {
					t.Fatalf("record %d: Decode: %v", i, err)
				}
				for j, v := range out.Data() {
					if v != w.Data()[j] {
						t.Fatalf("record %d: value %d = %g, synchronous reader got %g", i, j, v, w.Data()[j])
					}
				}
			}
			if _, err := ra.Next(); err != io.EOF {
				t.Fatalf("Next after last record: %v, want io.EOF", err)
			}
			if _, err := ra.Next(); err != io.EOF {
				t.Fatalf("repeated Next after EOF: %v, want io.EOF", err)
			}
		})
	}
}

// TestStreamReadAheadError verifies prefetch reports a corrupted stream
// with the same sticky-error behavior as the synchronous reader.
func TestStreamReadAheadError(t *testing.T) {
	ctx := context.Background()
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	c, err := New("sz:eb=1e-3")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sw.WriteTensor(ctx, c, mkStreamTensor(3, 8, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	data[len(data)/2] ^= 0x40 // corrupt a payload byte mid-stream

	sr, err := NewStreamReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.SetReadAhead(ctx, 2); err != nil {
		t.Fatal(err)
	}
	var firstErr error
	for i := 0; i < 4; i++ {
		if _, firstErr = sr.Next(); firstErr != nil {
			break
		}
		if _, firstErr = sr.Decode(ctx); firstErr != nil {
			break
		}
	}
	if firstErr == nil || firstErr == io.EOF {
		t.Fatalf("corrupted stream decoded cleanly (err %v)", firstErr)
	}
	if _, err := sr.Next(); err != firstErr {
		t.Fatalf("error not sticky: second Next returned %v, first failure was %v", err, firstErr)
	}
}

// TestStreamReadAheadCancellation verifies cancelling the prefetch
// context aborts the reader with an error wrapping context.Canceled.
func TestStreamReadAheadCancellation(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	writeParallelStream(t, sw)

	ctx, cancel := context.WithCancel(context.Background())
	sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.SetReadAhead(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Decode(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	var raErr error
	for i := 0; i < len(parallelCases); i++ {
		if _, raErr = sr.Next(); raErr != nil {
			break
		}
		if _, raErr = sr.Decode(context.Background()); raErr != nil {
			break
		}
	}
	if !errors.Is(raErr, context.Canceled) {
		t.Fatalf("reader after cancellation returned %v, want an error wrapping context.Canceled", raErr)
	}
}
