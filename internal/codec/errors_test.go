package codec

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestErrorKindBadSpec(t *testing.T) {
	for _, spec := range []string{"", "nosuchfamily", "zfp:rat=8", "dctc:cf=4+nosuchstage"} {
		_, err := New(spec)
		if err == nil {
			t.Fatalf("New(%q) succeeded, want error", spec)
		}
		if !errors.Is(err, ErrBadSpec) {
			t.Errorf("New(%q) error %v does not match ErrBadSpec", spec, err)
		}
		if kind := ErrorKind(err); kind != "bad_spec" {
			t.Errorf("New(%q) kind %q, want bad_spec", spec, kind)
		}
	}
	if _, err := ParseSpec(""); !errors.Is(err, ErrBadSpec) {
		t.Errorf("ParseSpec error %v does not match ErrBadSpec", err)
	}
}

func TestErrorKindContainerCRC(t *testing.T) {
	c, err := New("zfp:rate=8")
	if err != nil {
		t.Fatal(err)
	}
	data, err := c.Compress(mkStreamTensor(3, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte: the container CRC must catch it and the error
	// must carry the CRC kind on top of the existing message.
	data[len(data)-1] ^= 0xFF
	_, _, err = DecodeBytes(data)
	if err == nil {
		t.Fatal("corrupted container decoded successfully")
	}
	if !errors.Is(err, ErrCRC) {
		t.Errorf("error %v does not match ErrCRC", err)
	}
	if kind := ErrorKind(err); kind != "crc" {
		t.Errorf("kind %q, want crc", kind)
	}
	if !strings.Contains(err.Error(), "CRC mismatch") {
		t.Errorf("message reworded: %v", err)
	}
}

func TestErrorKindContainerTruncated(t *testing.T) {
	c, err := New("zfp:rate=8")
	if err != nil {
		t.Fatal(err)
	}
	data, err := c.Compress(mkStreamTensor(3, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{4, 10, len(data) - 3} {
		_, _, err = DecodeBytes(data[:cut])
		if err == nil {
			t.Fatalf("truncated container (%d bytes) decoded successfully", cut)
		}
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("cut=%d: error %v does not match ErrTruncated", cut, err)
		}
	}
}

func TestErrorKindCanceled(t *testing.T) {
	c, err := New("zfp:rate=8")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = c.CompressCtx(ctx, mkStreamTensor(3, 8, 8))
	if err == nil {
		t.Fatal("CompressCtx with canceled context succeeded")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("error %v does not match ErrCanceled", err)
	}
	// The original chain must survive the kind marker: callers matching
	// context.Canceled directly keep working.
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v no longer matches context.Canceled", err)
	}
}

func TestErrorKindStream(t *testing.T) {
	ctx := context.Background()
	c, err := New("zfp:rate=8")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	if err := sw.WriteTensor(ctx, c, mkStreamTensor(3, 8, 8)); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("chunk-crc", func(t *testing.T) {
		data := append([]byte(nil), good...)
		data[len(data)-2] ^= 0xFF // last payload byte, before the end marker
		sr, err := NewStreamReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sr.Next(); err != nil {
			t.Fatal(err)
		}
		_, err = sr.Decode(ctx)
		if err == nil {
			t.Fatal("corrupted record decoded successfully")
		}
		if !errors.Is(err, ErrCRC) {
			t.Errorf("error %v does not match ErrCRC", err)
		}
	})

	t.Run("header-crc", func(t *testing.T) {
		data := append([]byte(nil), good...)
		data[11] ^= 0xFF // inside the record header's spec bytes
		sr, err := NewStreamReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sr.Next(); !errors.Is(err, ErrCRC) {
			t.Errorf("error %v does not match ErrCRC", err)
		}
	})

	t.Run("truncated", func(t *testing.T) {
		sr, err := NewStreamReader(bytes.NewReader(good[:len(good)/2]))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sr.Next(); err != nil {
			if !errors.Is(err, ErrTruncated) {
				t.Errorf("Next error %v does not match ErrTruncated", err)
			}
			return
		}
		_, err = sr.Decode(ctx)
		if err == nil {
			t.Fatal("truncated record decoded successfully")
		}
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("Decode error %v does not match ErrTruncated", err)
		}
	})

	t.Run("missing-end-marker", func(t *testing.T) {
		sr, err := NewStreamReader(bytes.NewReader(good[:len(good)-1]))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sr.Next(); err != nil {
			t.Fatal(err)
		}
		if _, err := sr.Decode(ctx); err != nil {
			t.Fatal(err)
		}
		_, err = sr.Next()
		if err == nil || err == io.EOF {
			t.Fatalf("stream without end marker ended cleanly (err=%v)", err)
		}
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("error %v does not match ErrTruncated", err)
		}
	})
}

func TestErrorKindClassifiesPlainErrors(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{io.ErrUnexpectedEOF, "truncated"},
		{context.Canceled, "canceled"},
		{context.DeadlineExceeded, "canceled"},
		{errors.New("mystery"), "other"},
		{ErrCRC, "crc"},
		{ErrBadSpec, "bad_spec"},
	}
	for _, c := range cases {
		if got := ErrorKind(c.err); got != c.want {
			t.Errorf("ErrorKind(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// TestKindErrorMessageUnchanged pins the compatibility contract: the
// kind marker must not alter the error text callers and tests match on.
func TestKindErrorMessageUnchanged(t *testing.T) {
	inner := errors.New("codec: stream offset 42 (record 7): something broke")
	marked := markErr(ErrCRC, inner)
	if marked.Error() != inner.Error() {
		t.Errorf("markErr changed the message:\n got %q\nwant %q", marked.Error(), inner.Error())
	}
	if !errors.Is(marked, inner) {
		t.Error("marked error no longer matches the inner error")
	}
	if !errors.Is(marked, ErrCRC) {
		t.Error("marked error does not match its kind")
	}
}
