package codec

import (
	"context"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// losslessBackend is the exact (bit-preserving) codec family for
// tensors that cannot tolerate loss — checkpoints, optimizer state,
// weights shipped for resumption. Spec: "lossless:bg=4" with byte
// groups bg ∈ {1, 2, 4}.
//
// It performs no quantization at all: the payload is the float32
// stream's little-endian bytes, transposed into bg byte-group lanes
// (bg=4: lane k holds byte k of every value). Grouping same-significance
// bytes — in the spirit of ZipNN's exponent/mantissa split — turns the
// highly skewed sign+exponent byte and the near-uniform mantissa bytes
// into separate runs, which is exactly the layout the "+fse" entropy
// stage compresses well; "lossless:bg=4+fse" is the intended full spec.
// Alone, the family is a ratio-1 identity with exact round-trip.
type losslessBackend struct {
	bg int
}

func init() {
	register("lossless", func(o *Options) (backend, error) {
		bg := o.Int("bg", 4)
		if bg != 1 && bg != 2 && bg != 4 {
			return nil, fmt.Errorf("codec: lossless: invalid value %d for key %q (want 1, 2, or 4)", bg, "bg")
		}
		return &losslessBackend{bg: bg}, nil
	})
}

func (b *losslessBackend) name() string   { return "lossless" }
func (b *losslessBackend) ratio() float64 { return 1 }

func (b *losslessBackend) canonical() string {
	return fmt.Sprintf("bg=%d", b.bg)
}

func (b *losslessBackend) encode(ctx context.Context, x *tensor.Tensor) ([]byte, error) {
	if x.Len() == 0 {
		return nil, fmt.Errorf("lossless: empty tensor")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	elems := x.Len()
	data := x.Data()
	out := make([]byte, 4*elems)
	group := 4 / b.bg
	for lane := 0; lane < b.bg; lane++ {
		dst := out[lane*group*elems:]
		shift := uint(8 * lane * group)
		for i, v := range data {
			bits := math.Float32bits(v) >> shift
			for k := 0; k < group; k++ {
				dst[i*group+k] = byte(bits >> uint(8*k))
			}
		}
	}
	return out, nil
}

func (b *losslessBackend) decode(ctx context.Context, payload []byte, shape []int) (*tensor.Tensor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	elems := 1
	for _, d := range shape {
		elems *= d
	}
	if len(payload) != 4*elems {
		return nil, fmt.Errorf("lossless: payload is %d bytes, shape %v needs exactly %d", len(payload), shape, 4*elems)
	}
	out := tensor.New(shape...)
	data := out.Data()
	group := 4 / b.bg
	// Element-outer assembly: every value is reconstructed as a uint32
	// and stored exactly once, so arbitrary bit patterns (NaN payloads
	// included) survive bit-for-bit.
	for i := range data {
		var bits uint32
		for lane := 0; lane < b.bg; lane++ {
			src := payload[lane*group*elems:]
			for k := 0; k < group; k++ {
				bits |= uint32(src[i*group+k]) << uint(8*(lane*group+k))
			}
		}
		data[i] = math.Float32frombits(bits)
	}
	return out, nil
}
