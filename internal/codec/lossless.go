package codec

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// losslessBackend is the exact (bit-preserving) codec family for
// tensors that cannot tolerate loss — checkpoints, optimizer state,
// weights shipped for resumption. Spec: "lossless:bg=4" with byte
// groups bg ∈ {1, 2, 4}.
//
// It performs no quantization at all: the payload is the float32
// stream's little-endian bytes, transposed into bg byte-group lanes
// (bg=4: lane k holds byte k of every value). Grouping same-significance
// bytes — in the spirit of ZipNN's exponent/mantissa split — turns the
// highly skewed sign+exponent byte and the near-uniform mantissa bytes
// into separate runs, which is exactly the layout the "+fse" entropy
// stage compresses well; "lossless:bg=4+fse" is the intended full spec.
// Alone, the family is a ratio-1 identity with exact round-trip.
type losslessBackend struct {
	bg int
}

func init() {
	register("lossless", func(o *Options) (backend, error) {
		bg := o.Int("bg", 4)
		if bg != 1 && bg != 2 && bg != 4 {
			return nil, fmt.Errorf("codec: lossless: invalid value %d for key %q (want 1, 2, or 4)", bg, "bg")
		}
		return &losslessBackend{bg: bg}, nil
	})
}

func (b *losslessBackend) name() string   { return "lossless" }
func (b *losslessBackend) ratio() float64 { return 1 }

func (b *losslessBackend) canonical() string {
	return fmt.Sprintf("bg=%d", b.bg)
}

// payloadSegments marks the byte-group lane boundaries for segment-
// aware entropy stages: lane k occupies [k·n/bg, (k+1)·n/bg), so each
// lane's run of same-significance bytes gets its own block statistics
// instead of blocks straddling an exponent/mantissa boundary.
func (b *losslessBackend) payloadSegments(payloadLen int) []int {
	bounds := make([]int, b.bg)
	for i := range bounds {
		bounds[i] = (i + 1) * payloadLen / b.bg
	}
	return bounds
}

func (b *losslessBackend) encode(ctx context.Context, x *tensor.Tensor) ([]byte, error) {
	if x.Len() == 0 {
		return nil, fmt.Errorf("lossless: empty tensor")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	elems := x.Len()
	data := x.Data()
	out := make([]byte, 4*elems)
	// One flat loop per bg: the lane slices are hoisted and every
	// element is split with shifts only, so the transpose runs at
	// memory speed instead of re-slicing per element.
	switch b.bg {
	case 4:
		l0, l1 := out[:elems], out[elems:2*elems]
		l2, l3 := out[2*elems:3*elems], out[3*elems:4*elems]
		for i, v := range data {
			bits := math.Float32bits(v)
			l0[i] = byte(bits)
			l1[i] = byte(bits >> 8)
			l2[i] = byte(bits >> 16)
			l3[i] = byte(bits >> 24)
		}
	case 2:
		l0, l1 := out[:2*elems], out[2*elems:4*elems]
		for i, v := range data {
			bits := math.Float32bits(v)
			l0[2*i] = byte(bits)
			l0[2*i+1] = byte(bits >> 8)
			l1[2*i] = byte(bits >> 16)
			l1[2*i+1] = byte(bits >> 24)
		}
	default: // bg=1: the little-endian byte stream unchanged
		for i, v := range data {
			binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
		}
	}
	return out, nil
}

func (b *losslessBackend) decode(ctx context.Context, payload []byte, shape []int) (*tensor.Tensor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	elems := 1
	for _, d := range shape {
		elems *= d
	}
	if len(payload) != 4*elems {
		return nil, fmt.Errorf("lossless: payload is %d bytes, shape %v needs exactly %d", len(payload), shape, 4*elems)
	}
	out := tensor.New(shape...)
	data := out.Data()
	// Element-outer assembly, one flat loop per bg: every value is
	// reconstructed as a uint32 and stored exactly once, so arbitrary
	// bit patterns (NaN payloads included) survive bit-for-bit.
	switch b.bg {
	case 4:
		l0, l1 := payload[:elems], payload[elems:2*elems]
		l2, l3 := payload[2*elems:3*elems], payload[3*elems:4*elems]
		for i := range data {
			bits := uint32(l0[i]) | uint32(l1[i])<<8 | uint32(l2[i])<<16 | uint32(l3[i])<<24
			data[i] = math.Float32frombits(bits)
		}
	case 2:
		l0, l1 := payload[:2*elems], payload[2*elems:4*elems]
		for i := range data {
			bits := uint32(l0[2*i]) | uint32(l0[2*i+1])<<8 |
				uint32(l1[2*i])<<16 | uint32(l1[2*i+1])<<24
			data[i] = math.Float32frombits(bits)
		}
	default: // bg=1
		for i := range data {
			data[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
		}
	}
	return out, nil
}
