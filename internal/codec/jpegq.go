package codec

import (
	"fmt"

	"repro/internal/jpegq"
	"repro/internal/tensor"
)

// jpegqBackend adapts the JPEG-style quantization pipeline. Spec:
// "jpegq:q=50" (quality factor 1–100).
//
// The codec is image-specific: it requires [BD, C, n, n] batches with
// values nominally in [0,1] and block-aligned resolutions. Channel 0
// of every sample quantizes with the luminance table and the remaining
// channels with chrominance, exactly as the whole-batch jpegq.Codec
// does; each plane is a standalone RLE+Huffman stream on the shared
// pipeline.
type jpegqBackend struct {
	codec *jpegq.Codec
}

func init() {
	register("jpegq", func(o *Options) (backend, error) {
		q := o.Int("q", 50)
		c, err := jpegq.NewCodec(q)
		if err != nil {
			return nil, fmt.Errorf("codec: jpegq: invalid value %d for key %q: %w", q, "q", err)
		}
		return &jpegqBackend{codec: c}, nil
	})
}

func (b *jpegqBackend) name() string   { return "jpegq" }
func (b *jpegqBackend) ratio() float64 { return 0 } // data-dependent (VLE stage)

func (b *jpegqBackend) canonical() string {
	return fmt.Sprintf("q=%d", b.codec.Quality)
}

// checkShape validates the image-batch constraint, returning (C, h, w).
func (b *jpegqBackend) checkShape(shape []int) (int, int, int, error) {
	if len(shape) != 4 {
		return 0, 0, 0, fmt.Errorf("jpegq: needs [BD,C,n,n] image batches, got shape %v", shape)
	}
	h, w := shape[2], shape[3]
	if h%jpegq.BlockSize != 0 || w%jpegq.BlockSize != 0 {
		return 0, 0, 0, fmt.Errorf("jpegq: resolution %dx%d not a multiple of %d", h, w, jpegq.BlockSize)
	}
	return shape[1], h, w, nil
}

func (b *jpegqBackend) encode(x *tensor.Tensor) ([]byte, error) {
	ch, h, w, err := b.checkShape(x.Shape())
	if err != nil {
		return nil, err
	}
	return compressPlanes(x, h, w, func(p int, plane *tensor.Tensor) ([]byte, error) {
		return b.codec.EncodePlane(plane, p%ch)
	})
}

func (b *jpegqBackend) decode(payload []byte, shape []int) (*tensor.Tensor, error) {
	ch, h, w, err := b.checkShape(shape)
	if err != nil {
		return nil, err
	}
	parts, err := splitPlanePayloads(payload, shape[0]*ch)
	if err != nil {
		return nil, err
	}
	out := tensor.New(shape...)
	if err := decompressPlanes(out, h, w, parts, func(p int, data []byte, plane *tensor.Tensor) error {
		return b.codec.DecodePlane(data, plane, p%ch)
	}); err != nil {
		return nil, err
	}
	return out, nil
}
