package codec

import (
	"context"
	"fmt"

	"repro/internal/jpegq"
	"repro/internal/tensor"
)

// jpegqBackend adapts the JPEG-style quantization pipeline. Spec:
// "jpegq:q=50" (quality factor 1–100).
//
// The codec is image-specific: it requires [BD, C, n, n] batches with
// values nominally in [0,1] and block-aligned resolutions. Channel 0
// of every sample quantizes with the luminance table and the remaining
// channels with chrominance, exactly as the whole-batch jpegq.Codec
// does; each plane is a standalone RLE+Huffman stream on the shared
// pipeline.
type jpegqBackend struct {
	codec *jpegq.Codec
}

// maxJPEGQExpansion bounds the output elements a jpegq payload byte may
// claim. The entropy coder spends a few bits per 8×8 block even on
// all-zero planes, so genuine streams stay far below 512 values/byte;
// a corrupted header claiming a huge shape over a tiny payload fails
// here before the output allocation.
const maxJPEGQExpansion = 512

func init() {
	register("jpegq", func(o *Options) (backend, error) {
		q := o.Int("q", 50)
		c, err := jpegq.NewCodec(q)
		if err != nil {
			return nil, fmt.Errorf("codec: jpegq: invalid value %d for key %q: %w", q, "q", err)
		}
		return &jpegqBackend{codec: c}, nil
	})
}

func (b *jpegqBackend) name() string   { return "jpegq" }
func (b *jpegqBackend) ratio() float64 { return 0 } // data-dependent (VLE stage)

func (b *jpegqBackend) canonical() string {
	return fmt.Sprintf("q=%d", b.codec.Quality)
}

// checkShape validates the image-batch constraint, returning (C, h, w).
func (b *jpegqBackend) checkShape(shape []int) (int, int, int, error) {
	if len(shape) != 4 {
		return 0, 0, 0, fmt.Errorf("jpegq: needs [BD,C,n,n] image batches, got shape %v", shape)
	}
	h, w := shape[2], shape[3]
	if h%jpegq.BlockSize != 0 || w%jpegq.BlockSize != 0 {
		return 0, 0, 0, fmt.Errorf("jpegq: resolution %dx%d not a multiple of %d", h, w, jpegq.BlockSize)
	}
	return shape[1], h, w, nil
}

func (b *jpegqBackend) encode(ctx context.Context, x *tensor.Tensor) ([]byte, error) {
	ch, h, w, err := b.checkShape(x.Shape())
	if err != nil {
		return nil, err
	}
	return compressPlanes(ctx, x, h, w, func(p int, plane *tensor.Tensor) ([]byte, error) {
		return b.codec.EncodePlane(plane, p%ch)
	})
}

func (b *jpegqBackend) decode(ctx context.Context, payload []byte, shape []int) (*tensor.Tensor, error) {
	ch, h, w, err := b.checkShape(shape)
	if err != nil {
		return nil, err
	}
	if elems := shape[0] * ch * h * w; elems > maxJPEGQExpansion*len(payload) {
		return nil, fmt.Errorf("jpegq: %d-byte payload implausibly small for %d elements", len(payload), elems)
	}
	parts, err := splitPlanePayloads(payload, shape[0]*ch)
	if err != nil {
		return nil, err
	}
	out := tensor.New(shape...)
	if err := decompressPlanes(ctx, out, h, w, parts, b.planeDec(ch)); err != nil {
		return nil, err
	}
	return out, nil
}

// planeDec returns the per-plane decode closure; the channel index
// picks the quantization table, exactly as in encode.
func (b *jpegqBackend) planeDec(ch int) func(p int, data []byte, plane *tensor.Tensor) error {
	return func(p int, data []byte, plane *tensor.Tensor) error {
		return b.codec.DecodePlane(data, plane, p%ch)
	}
}

// fastRoundTripInto round-trips every plane through the codec's pooled
// quantize→entropy→reconstruct path; the compressed bytes never leave
// the entropy coder's pooled buffers. The reported size matches the
// serialize path's payload: the plane frame plus each plane's stream.
func (b *jpegqBackend) fastRoundTripInto(dst, x *tensor.Tensor) (int, error) {
	// Dim/Dims instead of Shape(): Shape clones its slice, and this
	// path must stay allocation-free. Shape() is only reached on the
	// error path, where the clone is harmless.
	if x.Dims() != 4 {
		_, _, _, err := b.checkShape(x.Shape())
		return 0, err
	}
	h, w := x.Dim(2), x.Dim(3)
	if h%jpegq.BlockSize != 0 || w%jpegq.BlockSize != 0 {
		_, _, _, err := b.checkShape(x.Shape())
		return 0, err
	}
	ch := x.Dim(1)
	planes := x.Dim(0) * ch
	total := 4 + 4*planes // plane-frame header
	xd, dd := x.Data(), dst.Data()
	for p := 0; p < planes; p++ {
		n, err := b.codec.RoundTripPlane(dd[p*h*w:(p+1)*h*w], xd[p*h*w:(p+1)*h*w], h, w, p%ch)
		if err != nil {
			return 0, fmt.Errorf("jpegq: plane %d: %w", p, err)
		}
		total += n
	}
	return total, nil
}

// fastRoundTrip keeps Codec.RoundTrip off the container path.
func (b *jpegqBackend) fastRoundTrip(x *tensor.Tensor) (*tensor.Tensor, int, error) {
	out := tensor.New(x.Shape()...)
	n, err := b.fastRoundTripInto(out, x)
	if err != nil {
		return nil, 0, err
	}
	return out, n, nil
}

// decodeStream decodes a jpegq record incrementally, one plane-group at
// a time (jpegq payloads have no mode byte — the plane framing starts
// immediately).
func (b *jpegqBackend) decodeStream(ctx context.Context, r *payloadReader, shape []int) (*tensor.Tensor, error) {
	ch, h, w, err := b.checkShape(shape)
	if err != nil {
		return nil, err
	}
	if elems := shape[0] * ch * h * w; elems > maxJPEGQExpansion*r.len() {
		return nil, fmt.Errorf("jpegq: %d-byte payload implausibly small for %d elements", r.len(), elems)
	}
	out := tensor.New(shape...)
	if err := decodePlaneStream(ctx, r, out, h, w, nil, b.planeDec(ch)); err != nil {
		return nil, err
	}
	return out, nil
}
