//go:build race

package codec

// raceEnabled reports whether the race detector is compiled in; the
// large-stream memory test skips under race, where the shadow memory
// and instrumented kernels make a 100 MB+ roundtrip impractical.
const raceEnabled = true
