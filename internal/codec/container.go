package codec

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// The framed container makes every compressed stream self-describing:
// the header carries the codec spec and the original tensor shape, so
// Decompress needs no out-of-band configuration. Layout, all fields
// little-endian:
//
//	offset  size      field
//	0       4         magic "ACCF"
//	4       2         format version (currently 1)
//	6       2         spec length L
//	8       L         codec spec string (UTF-8, e.g. "dctc:cf=4,sg")
//	8+L     1         tensor rank R
//	9+L     4·R       dims (uint32 each)
//	…       4         payload length P
//	…       4         CRC32 (IEEE) of the payload
//	…       P         codec-specific payload
const (
	containerMagic   = 0x46434341 // "ACCF" on disk
	containerVersion = 1
	// containerVersionStaged marks a container whose spec carries a
	// stage chain ("family:…+stage"): the layout is identical to v1, but
	// pre-stage readers must fail on the version instead of handing a
	// staged payload to a family decoder. (Version 2 is the record
	// stream; see stream.go.) Unstaged specs keep writing version 1, so
	// their bytes — and the golden recordings pinning them — are
	// unchanged.
	containerVersionStaged = 3

	// maxSpecLen bounds the spec string a header may claim.
	maxSpecLen = 256
	// maxRank bounds the tensor rank a header may claim.
	maxRank = 8
	// maxDim bounds any single dimension.
	maxDim = 1 << 24
	// maxElems bounds the total element count (256 Mi float32 = 1 GiB).
	maxElems = 1 << 28
	// maxPayload bounds the payload size a header may claim.
	maxPayload = 1 << 30
)

// Header is the decoded container header.
type Header struct {
	Spec  string
	Shape []int

	// wireSize is the exact on-wire byte count of the frame this header
	// was parsed from (v1 container: header + payload; v2 record: header
	// only). The exact-length decode paths use it to reject trailing
	// garbage after a supposedly single container.
	wireSize int
}

// Elems returns the product of the header's dimensions.
func (h Header) Elems() int {
	n := 1
	for _, d := range h.Shape {
		n *= d
	}
	return n
}

// validateFrame checks the spec/shape/payload-length limits shared by
// the v1 container writer and the v2 stream record writer.
func validateFrame(spec string, shape []int, payloadLen int) error {
	if len(spec) == 0 || len(spec) > maxSpecLen {
		return fmt.Errorf("codec: spec length %d outside [1,%d]", len(spec), maxSpecLen)
	}
	if len(shape) == 0 || len(shape) > maxRank {
		return fmt.Errorf("codec: rank %d outside [1,%d]", len(shape), maxRank)
	}
	// The element product accumulates in uint64: each factor is ≤ 2²⁴ and
	// the running product ≤ 2²⁸, so the intermediate can reach 2⁵², which
	// a 32-bit int would wrap straight past the maxElems check.
	elems := uint64(1)
	for _, d := range shape {
		if d < 1 || d > maxDim {
			return fmt.Errorf("codec: dimension %d outside [1,%d]", d, maxDim)
		}
		elems *= uint64(d)
		if elems > maxElems {
			return fmt.Errorf("codec: shape %v exceeds %d elements", shape, maxElems)
		}
	}
	if payloadLen > maxPayload {
		return fmt.Errorf("codec: payload %d bytes exceeds limit %d", payloadLen, maxPayload)
	}
	return nil
}

// WriteContainer frames a payload under the given spec and shape.
func WriteContainer(w io.Writer, spec string, shape []int, payload []byte) (int64, error) {
	if err := validateFrame(spec, shape, len(payload)); err != nil {
		return 0, err
	}
	version := uint16(containerVersion)
	if specHasStages(spec) {
		version = containerVersionStaged
	}
	buf := make([]byte, 0, 16+len(spec)+4*len(shape)+len(payload))
	buf = binary.LittleEndian.AppendUint32(buf, containerMagic)
	buf = binary.LittleEndian.AppendUint16(buf, version)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(spec)))
	buf = append(buf, spec...)
	buf = append(buf, byte(len(shape)))
	for _, d := range shape {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	buf = append(buf, payload...)
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadContainer parses one container from r, verifying magic, version,
// header plausibility, and the payload CRC.
func ReadContainer(r io.Reader) (Header, []byte, error) {
	br := bufio.NewReader(r)
	var hdr Header
	var fixed [8]byte
	if _, err := io.ReadFull(br, fixed[:]); err != nil {
		return hdr, nil, markIOTruncation(fmt.Errorf("codec: reading container header: %w", err))
	}
	if m := binary.LittleEndian.Uint32(fixed[0:]); m != containerMagic {
		return hdr, nil, fmt.Errorf("codec: bad magic %#x (not an ACCF container)", m)
	}
	version := binary.LittleEndian.Uint16(fixed[4:])
	if version != containerVersion && version != containerVersionStaged {
		return hdr, nil, fmt.Errorf("codec: unsupported container version %d", version)
	}
	specLen := int(binary.LittleEndian.Uint16(fixed[6:]))
	if specLen == 0 || specLen > maxSpecLen {
		return hdr, nil, fmt.Errorf("codec: spec length %d outside [1,%d]", specLen, maxSpecLen)
	}
	spec := make([]byte, specLen)
	if _, err := io.ReadFull(br, spec); err != nil {
		return hdr, nil, markIOTruncation(fmt.Errorf("codec: reading spec: %w", err))
	}
	hdr.Spec = string(spec)
	// The version byte and the spec's stage chain must agree: a v1
	// frame smuggling a staged spec (or the reverse) is a forgery, not
	// a decodable container.
	if staged := specHasStages(hdr.Spec); staged != (version == containerVersionStaged) {
		return hdr, nil, fmt.Errorf("codec: container version %d does not match spec %q", version, hdr.Spec)
	}
	rank, err := br.ReadByte()
	if err != nil {
		return hdr, nil, markIOTruncation(fmt.Errorf("codec: reading rank: %w", err))
	}
	if rank == 0 || int(rank) > maxRank {
		return hdr, nil, fmt.Errorf("codec: rank %d outside [1,%d]", rank, maxRank)
	}
	dims := make([]byte, 4*int(rank))
	if _, err := io.ReadFull(br, dims); err != nil {
		return hdr, nil, markIOTruncation(fmt.Errorf("codec: reading dims: %w", err))
	}
	hdr.Shape = make([]int, rank)
	// uint64 accumulator for the same 32-bit wrap reason as validateFrame:
	// the intermediate product can reach 2⁵² before the bound check.
	elems := uint64(1)
	for i := range hdr.Shape {
		d := int(binary.LittleEndian.Uint32(dims[4*i:]))
		if d < 1 || d > maxDim {
			return hdr, nil, fmt.Errorf("codec: dimension %d outside [1,%d]", d, maxDim)
		}
		hdr.Shape[i] = d
		elems *= uint64(d)
		if elems > maxElems {
			return hdr, nil, fmt.Errorf("codec: shape %v exceeds %d elements", hdr.Shape, maxElems)
		}
	}
	var trailer [8]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return hdr, nil, markIOTruncation(fmt.Errorf("codec: reading payload header: %w", err))
	}
	// Validate the claimed length as uint32 before converting: on 32-bit
	// platforms int(uint32 ≥ 2³¹) wraps negative, which would slip past
	// a signed upper-bound check.
	payLen32 := binary.LittleEndian.Uint32(trailer[0:])
	wantCRC := binary.LittleEndian.Uint32(trailer[4:])
	if payLen32 > maxPayload {
		return hdr, nil, fmt.Errorf("codec: payload %d bytes exceeds limit %d", payLen32, maxPayload)
	}
	payLen := int(payLen32)
	// Copy incrementally rather than pre-allocating the claimed length,
	// so truncated streams fail before a large allocation.
	var payBuf bytes.Buffer
	if _, err := io.CopyN(&payBuf, br, int64(payLen)); err != nil {
		return hdr, nil, markIOTruncation(fmt.Errorf("codec: reading %d-byte payload: %w", payLen, err))
	}
	payload := payBuf.Bytes()
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return hdr, nil, markErr(ErrCRC, fmt.Errorf("codec: payload CRC mismatch (stored %#x, computed %#x)", wantCRC, got))
	}
	hdr.wireSize = 17 + specLen + 4*int(rank) + payLen
	return hdr, payload, nil
}
