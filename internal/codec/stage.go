package codec

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/entropy"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// This file is the stage layer of the codec pipeline: composable
// payload transforms that ride behind any codec family. A spec string
// names a family plus zero or more stage suffixes —
//
//	dctc:cf=4+fse      DCT+Chop, then the shared entropy backend
//	lossless:bg=4+fse  byte-group transpose, then entropy
//
// — and the framing layer applies the stages in order on encode
// (payload → stage 1 → … → stage N) and in reverse on decode. Stages
// see opaque byte payloads only: they compose with every family, and a
// new family composes with every stage, without either knowing the
// other exists.
//
// On the wire, a staged spec rides in the same header field as before
// (the spec string IS the stage chain), and staged frames are marked so
// pre-stage readers fail cleanly instead of feeding an entropy-coded
// payload to a family decoder: v1 containers become version 3, and v2
// stream records use the 'S' marker in place of 'T'. Unstaged output is
// byte-identical to pre-stage writers.

// Stage is one composable payload transform. Implementations must be
// safe for concurrent use (the stream engines run them on worker
// pools) and are expected to use pooled scratch so steady-state
// encode/decode stays allocation-light.
type Stage interface {
	// Name is the stage's registry name ("fse").
	Name() string
	// Spec is the canonical spec fragment that rebuilds the stage.
	Spec() string
	// Forward transforms a payload on the encode path. It must not
	// retain or modify payload.
	Forward(ctx context.Context, payload []byte) ([]byte, error)
	// Inverse undoes Forward on the decode path. sizeHint is an upper
	// bound on the plausible output size for the tensor being decoded;
	// stages whose inverse can expand must fail rather than exceed it,
	// so corrupted frames die before the allocation, not after.
	Inverse(ctx context.Context, payload []byte, sizeHint int) ([]byte, error)
}

var (
	stageMu       sync.RWMutex
	stageRegistry = map[string]func() (Stage, error){}
)

// registerStage installs a stage builder; stages self-register in init.
func registerStage(name string, build func() (Stage, error)) {
	stageMu.Lock()
	defer stageMu.Unlock()
	if _, dup := stageRegistry[name]; dup {
		panic(fmt.Sprintf("codec: duplicate stage %q", name))
	}
	stageRegistry[name] = build
}

// StageNames lists the registered stage names, sorted.
func StageNames() []string {
	stageMu.RLock()
	defer stageMu.RUnlock()
	out := make([]string, 0, len(stageRegistry))
	for n := range stageRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// newStage resolves one stage token from a spec's "+" chain.
func newStage(token string) (Stage, error) {
	if strings.ContainsAny(token, ":=,") {
		return nil, fmt.Errorf("codec: stage %q: stages take no options", token)
	}
	stageMu.RLock()
	build, ok := stageRegistry[token]
	stageMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("codec: unknown stage %q (registered: %v)", token, StageNames())
	}
	return build()
}

// isStageSep reports whether the '+' at s[i] separates a stage suffix.
// Only a '+' followed by a letter splits, so '+' inside numeric option
// values ("sz:eb=1e+3", "…=1e+06") stays part of the value.
func isStageSep(s string, i int) bool {
	if s[i] != '+' || i+1 >= len(s) {
		return false
	}
	c := s[i+1]
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// splitSpecStages splits a spec string into its family half and stage
// tokens: "dctc:cf=4+fse" → ("dctc:cf=4", ["fse"]).
func splitSpecStages(s string) (string, []string) {
	cut := -1
	for i := 0; i < len(s); i++ {
		if isStageSep(s, i) {
			cut = i
			break
		}
	}
	if cut < 0 {
		return s, nil
	}
	base, rest := s[:cut], s[cut+1:]
	var stages []string
	start := 0
	for i := 0; i < len(rest); i++ {
		if isStageSep(rest, i) {
			stages = append(stages, rest[start:i])
			start = i + 1
		}
	}
	return base, append(stages, rest[start:])
}

// specHasStages reports whether a spec string carries a stage chain —
// the predicate that picks the staged container version and record
// marker. It must agree with ParseSpec's grammar, so it shares
// splitSpecStages rather than searching for '+' directly.
func specHasStages(spec string) bool {
	_, stages := splitSpecStages(spec)
	return len(stages) > 0
}

// stagedSizeHint bounds the plausible pre-stage payload size for a
// tensor shape: no family's serialized payload comes near 8 bytes per
// float32 element, and small tensors get a fixed floor for framing.
// Stage inverses use it to reject decompression bombs.
func stagedSizeHint(shape []int) int {
	elems := 1
	for _, d := range shape {
		elems *= d
	}
	hint := 8*elems + (64 << 10)
	if hint > maxPayload {
		hint = maxPayload
	}
	return hint
}

// encodePayload runs the family encoder, then each stage forward. It is
// the compress-side metric choke point: every Compress, stream record
// encode, and staged round trip passes through here.
func (c *codecImpl) encodePayload(ctx context.Context, x *tensor.Tensor) ([]byte, error) {
	start := telemetry.NowNanos()
	payload, err := c.b.encode(ctx, x)
	if err != nil {
		c.m.countErr(err)
		return nil, err
	}
	for i, st := range c.chain {
		ts := telemetry.NowNanos()
		if seg, lanes := segmentsFor(c, st, i, len(payload)); lanes != nil {
			payload, err = seg.ForwardSegments(ctx, payload, lanes)
		} else {
			payload, err = st.Forward(ctx, payload)
		}
		if err != nil {
			c.m.countErr(err)
			return nil, fmt.Errorf("codec: stage %s forward: %w", st.Name(), err)
		}
		c.stageM[i].forwardNs.ObserveSince(ts)
	}
	c.m.compressCalls.Inc()
	c.m.compressNs.ObserveSince(start)
	c.m.inputBytes.Add(uint64(x.SizeBytes()))
	c.m.payloadBytes.Add(uint64(len(payload)))
	return payload, nil
}

// decodePayload runs the stages inverse in reverse order, then the
// family decoder — the decompress-side metric choke point.
func (c *codecImpl) decodePayload(ctx context.Context, payload []byte, shape []int) (*tensor.Tensor, error) {
	start := telemetry.NowNanos()
	inBytes := len(payload)
	if len(c.chain) > 0 {
		hint := stagedSizeHint(shape)
		var err error
		for i := len(c.chain) - 1; i >= 0; i-- {
			st := c.chain[i]
			ts := telemetry.NowNanos()
			if payload, err = st.Inverse(ctx, payload, hint); err != nil {
				c.m.countErr(err)
				return nil, fmt.Errorf("codec: stage %s inverse: %w", st.Name(), err)
			}
			c.stageM[i].inverseNs.ObserveSince(ts)
		}
	}
	out, err := c.b.decode(ctx, payload, shape)
	if err != nil {
		c.m.countErr(err)
		return nil, err
	}
	c.m.decompressCalls.Inc()
	c.m.decompressNs.ObserveSince(start)
	c.m.decodeBytes.Add(uint64(inBytes))
	c.m.outputBytes.Add(uint64(out.SizeBytes()))
	return out, nil
}

// laneSegmenter is implemented by backends whose payload is a
// concatenation of lanes with distinct statistics (the lossless
// byte-group family). payloadSegments returns the cumulative end
// offsets of the lanes, the last equal to payloadLen.
type laneSegmenter interface {
	payloadSegments(payloadLen int) []int
}

// segmentedStage is implemented by stages that can restart their block
// statistics at given payload offsets. ForwardSegments encodes each
// [prev, bound) range as an independent block sequence; the output must
// decode through the stage's ordinary Inverse (entropy blocks are
// self-delimiting, so concatenated per-lane streams need no extra
// framing on the wire).
type segmentedStage interface {
	ForwardSegments(ctx context.Context, payload []byte, bounds []int) ([]byte, error)
}

// segmentsFor reports whether stage st should see a per-lane segmented
// payload: only the first stage in the chain (later stages see
// entropy-coded bytes whose lane structure is gone), only when both the
// backend and the stage opt in, and only when there is more than one
// lane.
func segmentsFor(c *codecImpl, st Stage, idx, payloadLen int) (segmentedStage, []int) {
	if idx != 0 {
		return nil, nil
	}
	seg, ok := st.(segmentedStage)
	if !ok {
		return nil, nil
	}
	ls, ok := c.b.(laneSegmenter)
	if !ok {
		return nil, nil
	}
	lanes := ls.payloadSegments(payloadLen)
	if len(lanes) < 2 {
		return nil, nil
	}
	return seg, lanes
}

// ---------------------------------------------------------------------
// The fse stage: the shared entropy backend as a payload transform.

// fseStage appends the internal/entropy coder as a final stage. It is
// stateless — all scratch is pooled inside the entropy package — so one
// instance serves every codec.
type fseStage struct{}

func init() {
	registerStage("fse", func() (Stage, error) { return fseStage{}, nil })
}

func (fseStage) Name() string { return "fse" }
func (fseStage) Spec() string { return "fse" }

// stageDst sizes a destination buffer for an entropy-coded payload:
// the coder never expands a block by more than its framing overhead
// (≤ 4 bytes per 64 KiB block plus slack for the last short block), so
// one up-front allocation replaces the append-growth ladder.
func stageDst(payloadLen int) []byte {
	return make([]byte, 0, payloadLen+4*(payloadLen>>16)+16)
}

func (fseStage) Forward(ctx context.Context, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return entropy.Compress(stageDst(len(payload)), payload), nil
}

func (fseStage) Inverse(ctx context.Context, payload []byte, sizeHint int) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return entropy.DecompressCap(nil, payload, sizeHint)
}

// ---------------------------------------------------------------------
// The huf stage: the multi-symbol entropy fast path as a payload
// transform.

// hufStage appends the entropy coder through its huf-selecting encoder:
// per 64 KiB block the cheaper of raw/rle/fse/huf is chosen, so "+huf"
// is never worse than "+fse" by more than the per-block mode slack and
// decodes through the same entropy stream reader ("+huf" and "+fse"
// frames are mutually decodable at the block layer; the spec suffix
// records which encoder produced the stream). Stateless, like fseStage.
type hufStage struct{}

func init() {
	registerStage("huf", func() (Stage, error) { return hufStage{}, nil })
}

func (hufStage) Name() string { return "huf" }
func (hufStage) Spec() string { return "huf" }

func (hufStage) Forward(ctx context.Context, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return entropy.CompressHuf(stageDst(len(payload)), payload), nil
}

// ForwardSegments restarts block statistics at each lane boundary, so a
// byte-group payload gets per-lane tables instead of blocks straddling
// lanes with mixed distributions. The output is a plain entropy stream:
// Inverse decodes it with no knowledge of the lane cuts.
func (hufStage) ForwardSegments(ctx context.Context, payload []byte, bounds []int) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := stageDst(len(payload) + 4*len(bounds))
	prev := 0
	for _, b := range bounds {
		out = entropy.CompressHuf(out, payload[prev:b])
		prev = b
	}
	return out, nil
}

func (hufStage) Inverse(ctx context.Context, payload []byte, sizeHint int) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return entropy.DecompressCap(nil, payload, sizeHint)
}
