package codec

import (
	"fmt"

	"repro/internal/sz"
	"repro/internal/tensor"
)

// szBackend adapts the error-bounded SZ-style baseline. Spec:
// "sz:eb=1e-3" (absolute pointwise error bound).
//
// Rank ≥ 2 tensors take the planar path — one pipeline job per trailing
// 2-D plane, any plane size. Rank-1 tensors are viewed as a single
// 1×len plane.
type szBackend struct {
	codec *sz.Codec
}

const (
	szModePlanar = 0
	szModeFlat   = 1
)

func init() {
	register("sz", func(o *Options) (backend, error) {
		eb := o.Float("eb", 1e-3)
		c, err := sz.New(eb)
		if err != nil {
			return nil, fmt.Errorf("codec: sz: invalid value %g for key %q: %w", eb, "eb", err)
		}
		return &szBackend{codec: c}, nil
	})
}

func (b *szBackend) name() string   { return "sz" }
func (b *szBackend) ratio() float64 { return 0 } // data-dependent (VLE stage)

func (b *szBackend) canonical() string {
	return fmt.Sprintf("eb=%g", b.codec.ErrorBound)
}

func (b *szBackend) encode(x *tensor.Tensor) ([]byte, error) {
	if x.Len() == 0 {
		return nil, fmt.Errorf("sz: empty tensor")
	}
	mode := byte(szModePlanar)
	h, w := 0, 0
	if x.Dims() >= 2 {
		h, w = x.Dim(-2), x.Dim(-1)
	} else {
		mode, h, w = szModeFlat, 1, x.Len()
		x = x.Reshape(1, w)
	}
	framed, err := compressPlanes(x, h, w, func(p int, plane *tensor.Tensor) ([]byte, error) {
		return b.codec.Compress(plane)
	})
	if err != nil {
		return nil, err
	}
	return append([]byte{mode}, framed...), nil
}

func (b *szBackend) decode(payload []byte, shape []int) (*tensor.Tensor, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("sz: empty payload")
	}
	mode, payload := payload[0], payload[1:]
	elems := 1
	for _, d := range shape {
		elems *= d
	}
	var h, w int
	switch {
	case mode == szModePlanar && len(shape) >= 2:
		h, w = shape[len(shape)-2], shape[len(shape)-1]
	case mode == szModeFlat && len(shape) == 1:
		h, w = 1, elems
	default:
		return nil, fmt.Errorf("sz: payload mode %d does not match shape %v", mode, shape)
	}
	parts, err := splitPlanePayloads(payload, elems/(h*w))
	if err != nil {
		return nil, err
	}
	// Validate each plane stream's recorded geometry before allocating.
	for p, part := range parts {
		planes, sh, sw, err := sz.StreamDims(part)
		if err != nil {
			return nil, fmt.Errorf("sz: plane %d: %w", p, err)
		}
		if planes != 1 || sh != h || sw != w {
			return nil, fmt.Errorf("sz: plane %d stream is %d×%dx%d, want 1×%dx%d", p, planes, sh, sw, h, w)
		}
	}
	out := tensor.New(shape...)
	view := out
	if mode == szModeFlat {
		view = out.Reshape(1, w)
	}
	if err := decompressPlanes(view, h, w, parts, func(p int, data []byte, plane *tensor.Tensor) error {
		back, err := b.codec.Decompress(data, plane.Shape()...)
		if err != nil {
			return err
		}
		copy(plane.Data(), back.Data())
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}
