package codec

import (
	"context"
	"fmt"

	"repro/internal/sz"
	"repro/internal/tensor"
)

// szBackend adapts the error-bounded SZ-style baseline. Spec:
// "sz:eb=1e-3" (absolute pointwise error bound).
//
// Rank ≥ 2 tensors take the planar path — one pipeline job per trailing
// 2-D plane, any plane size. Rank-1 tensors are viewed as a single
// 1×len plane.
type szBackend struct {
	codec *sz.Codec
}

const (
	szModePlanar = 0
	szModeFlat   = 1
)

func init() {
	register("sz", func(o *Options) (backend, error) {
		eb := o.Float("eb", 1e-3)
		c, err := sz.New(eb)
		if err != nil {
			return nil, fmt.Errorf("codec: sz: invalid value %g for key %q: %w", eb, "eb", err)
		}
		return &szBackend{codec: c}, nil
	})
}

func (b *szBackend) name() string   { return "sz" }
func (b *szBackend) ratio() float64 { return 0 } // data-dependent (VLE stage)

func (b *szBackend) canonical() string {
	return fmt.Sprintf("eb=%g", b.codec.ErrorBound)
}

func (b *szBackend) encode(ctx context.Context, x *tensor.Tensor) ([]byte, error) {
	if x.Len() == 0 {
		return nil, fmt.Errorf("sz: empty tensor")
	}
	mode := byte(szModePlanar)
	h, w := 0, 0
	if x.Dims() >= 2 {
		h, w = x.Dim(-2), x.Dim(-1)
	} else {
		mode, h, w = szModeFlat, 1, x.Len()
		x = x.Reshape(1, w)
	}
	framed, err := compressPlanes(ctx, x, h, w, func(p int, plane *tensor.Tensor) ([]byte, error) {
		return b.codec.Compress(plane)
	})
	if err != nil {
		return nil, err
	}
	return append([]byte{mode}, framed...), nil
}

// planeGeometry resolves the plane size for a payload mode and target
// shape, shared by the buffered and streaming decode paths.
func (b *szBackend) planeGeometry(mode byte, shape []int) (h, w, elems int, err error) {
	elems = 1
	for _, d := range shape {
		elems *= d
	}
	switch {
	case mode == szModePlanar && len(shape) >= 2:
		h, w = shape[len(shape)-2], shape[len(shape)-1]
	case mode == szModeFlat && len(shape) == 1:
		h, w = 1, elems
	default:
		return 0, 0, 0, fmt.Errorf("sz: payload mode %d does not match shape %v", mode, shape)
	}
	return h, w, elems, nil
}

// planeDec returns the per-plane decode closure: it re-validates the
// plane stream's recorded geometry (the sz stream is itself
// self-describing) before decompressing into the output plane.
func (b *szBackend) planeDec(h, w int) func(p int, data []byte, plane *tensor.Tensor) error {
	return func(p int, data []byte, plane *tensor.Tensor) error {
		planes, sh, sw, err := sz.StreamDims(data)
		if err != nil {
			return err
		}
		if planes != 1 || sh != h || sw != w {
			return fmt.Errorf("sz: stream is %d×%dx%d, want 1×%dx%d", planes, sh, sw, h, w)
		}
		// Decode straight into the output plane — no staging tensor.
		return b.codec.DecompressInto(plane.Data(), data, h, w)
	}
}

func (b *szBackend) decode(ctx context.Context, payload []byte, shape []int) (*tensor.Tensor, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("sz: empty payload")
	}
	mode, payload := payload[0], payload[1:]
	h, w, elems, err := b.planeGeometry(mode, shape)
	if err != nil {
		return nil, err
	}
	parts, err := splitPlanePayloads(payload, elems/(h*w))
	if err != nil {
		return nil, err
	}
	// Validate each plane stream's recorded geometry before allocating.
	for p, part := range parts {
		planes, sh, sw, err := sz.StreamDims(part)
		if err != nil {
			return nil, fmt.Errorf("sz: plane %d: %w", p, err)
		}
		if planes != 1 || sh != h || sw != w {
			return nil, fmt.Errorf("sz: plane %d stream is %d×%dx%d, want 1×%dx%d", p, planes, sh, sw, h, w)
		}
	}
	out := tensor.New(shape...)
	view := out
	if mode == szModeFlat {
		view = out.Reshape(1, w)
	}
	if err := decompressPlanes(ctx, view, h, w, parts, b.planeDec(h, w)); err != nil {
		return nil, err
	}
	return out, nil
}

// decodeStream decodes an sz record incrementally, one plane-group at a
// time. Per-plane geometry validation happens as each group's streams
// arrive (the shape itself is CRC-protected by the v2 record header).
func (b *szBackend) decodeStream(ctx context.Context, r *payloadReader, shape []int) (*tensor.Tensor, error) {
	mode, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("sz: reading payload mode: %w", err)
	}
	h, w, _, err := b.planeGeometry(mode, shape)
	if err != nil {
		return nil, err
	}
	out := tensor.New(shape...)
	view := out
	if mode == szModeFlat {
		view = out.Reshape(1, w)
	}
	if err := decodePlaneStream(ctx, r, view, h, w, nil, b.planeDec(h, w)); err != nil {
		return nil, err
	}
	return out, nil
}
