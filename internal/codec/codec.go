// Package codec unifies the repository's four codec families — the
// paper's DCT+Chop compressor (core), the fixed-rate ZFP-style baseline
// (zfp), the error-bounded SZ-style baseline (sz), and the JPEG-style
// quantization pipeline (jpegq) — behind one interface, one spec-string
// registry, and one self-describing container format.
//
// A codec is named by a spec string, "family:key=val,key=val,flag":
//
//	dctc:cf=4,s=2,sg          DCT+Chop, chop factor 4, serialization 2,
//	                          scatter/gather triangle retention
//	dctc:cf=3,transform=zfp4  DCT+Chop over the ZFP 4×4 block transform
//	zfp:rate=8                fixed-rate ZFP-style at 8 bits/value
//	sz:eb=1e-3                error-bounded SZ-style, |err| ≤ 1e-3
//	jpegq:q=50                JPEG-style pipeline at quality factor 50
//
// Compress output is a framed container (see container.go) carrying the
// spec and the tensor shape, so Decode reconstructs the tensor from the
// bytes alone — no out-of-band configuration. Multi-tensor streams use
// the ACCF v2 record format (see stream.go).
package codec

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Codec is one configured compressor. Implementations are safe for
// concurrent use.
type Codec interface {
	// Name is the codec family ("dctc", "zfp", "sz", "jpegq").
	Name() string
	// Spec is the canonical spec string that rebuilds this codec.
	Spec() string
	// Ratio is the nominal compression ratio; 0 means data-dependent
	// (unknown until measured).
	Ratio() float64
	// Compress encodes x into a self-describing container.
	Compress(x *tensor.Tensor) ([]byte, error)
	// CompressCtx is Compress under a context: cancelling ctx aborts the
	// plane pipeline between planes, returning an error that wraps
	// ctx.Err().
	CompressCtx(ctx context.Context, x *tensor.Tensor) ([]byte, error)
	// Decompress reconstructs a tensor from a container produced by any
	// codec of the same family; shape and options come from the header.
	Decompress(data []byte) (*tensor.Tensor, error)
	// DecompressCtx is Decompress under a context (see CompressCtx).
	DecompressCtx(ctx context.Context, data []byte) (*tensor.Tensor, error)
	// RoundTrip compresses then decompresses x, returning the
	// reconstruction and the compressed payload size in bytes.
	RoundTrip(x *tensor.Tensor) (*tensor.Tensor, int, error)
}

// backend is the family-specific half of a codec: raw payload encode /
// decode, with framing handled by the shared wrapper. Both halves honor
// the context for mid-batch cancellation.
type backend interface {
	name() string
	ratio() float64
	encode(ctx context.Context, x *tensor.Tensor) ([]byte, error)
	decode(ctx context.Context, payload []byte, shape []int) (*tensor.Tensor, error)
}

// streamDecoder is implemented by backends that can decode their
// payload incrementally from a v2 record's chunked payload reader,
// materializing at most one plane-group of compressed bytes at a time.
// Backends without it fall back to buffering the record payload.
type streamDecoder interface {
	decodeStream(ctx context.Context, r *payloadReader, shape []int) (*tensor.Tensor, error)
}

// fastRoundTripper is implemented by backends that can round-trip
// without materializing the serialized payload (the hot path for the
// training experiments, which round-trip every batch).
type fastRoundTripper interface {
	fastRoundTrip(x *tensor.Tensor) (*tensor.Tensor, int, error)
}

// fastRoundTripperInto is implemented by backends that can round-trip
// into a caller-provided tensor with pooled scratch only — the
// steady-state form of fastRoundTripper (zero allocations per call on
// a single-worker pipeline).
type fastRoundTripperInto interface {
	fastRoundTripInto(dst, x *tensor.Tensor) (int, error)
}

// slowRoundTripInto is the fallback for backends (or shapes) without a
// pooled in-place path: serialize, decode, copy. Backends call it from
// their fast paths, which only run on an empty stage chain; staged
// codecs go through stagedRoundTripInto instead.
func slowRoundTripInto(b backend, dst, x *tensor.Tensor) (int, error) {
	ctx := context.Background()
	payload, err := b.encode(ctx, x)
	if err != nil {
		return 0, err
	}
	out, err := b.decode(ctx, payload, x.Shape())
	if err != nil {
		return 0, err
	}
	copy(dst.Data(), out.Data())
	return len(payload), nil
}

// stagedRoundTripInto round-trips through the full stage chain; the
// reported size is the staged (post-chain) payload size.
func stagedRoundTripInto(c *codecImpl, dst, x *tensor.Tensor) (int, error) {
	ctx := context.Background()
	payload, err := c.encodePayload(ctx, x)
	if err != nil {
		return 0, err
	}
	out, err := c.decodePayload(ctx, payload, x.Shape())
	if err != nil {
		return 0, err
	}
	copy(dst.Data(), out.Data())
	return len(payload), nil
}

// RoundTripInto compresses and decompresses x into dst, which must
// have x's element count, returning the compressed payload size. For
// codecs with a pooled in-place path (zfp, jpegq) the steady state
// allocates nothing; others fall back to serialize-decode-copy.
func RoundTripInto(c Codec, dst, x *tensor.Tensor) (int, error) {
	if dst.Len() != x.Len() {
		return 0, fmt.Errorf("codec: RoundTripInto dst holds %d values, x holds %d", dst.Len(), x.Len())
	}
	impl, ok := c.(*codecImpl)
	if !ok {
		return 0, fmt.Errorf("codec: %T is not a registry codec", c)
	}
	start := telemetry.NowNanos()
	var (
		n   int
		err error
	)
	if fast, ok := impl.b.(fastRoundTripperInto); ok && len(impl.chain) == 0 {
		n, err = fast.fastRoundTripInto(dst, x)
		if err != nil {
			// The fused path bypasses encodePayload/decodePayload, so the
			// error is counted here; the staged path counts at the choke
			// points and must not double-count.
			impl.m.countErr(err)
			return n, err
		}
		impl.m.inputBytes.Add(uint64(x.SizeBytes()))
		impl.m.payloadBytes.Add(uint64(n))
	} else {
		if n, err = stagedRoundTripInto(impl, dst, x); err != nil {
			return n, err
		}
	}
	impl.m.roundTripCalls.Inc()
	impl.m.roundTripNs.ObserveSince(start)
	return n, nil
}

// codecImpl frames a backend plus its stage chain behind the Codec
// interface. The chain is applied to the backend's payload in order on
// encode and in reverse on decode (see stage.go); an empty chain keeps
// every path — and every wire byte — identical to the pre-stage codec.
type codecImpl struct {
	spec  string
	b     backend
	chain []Stage

	// Metric handles, resolved once at construction (see metrics.go).
	// Nil on hand-constructed impls in tests: every recording call is
	// nil-safe, so unwired codecs simply record nothing.
	m      *codecMetrics
	stageM []*stageMetrics
}

func (c *codecImpl) Name() string   { return c.b.name() }
func (c *codecImpl) Spec() string   { return c.spec }
func (c *codecImpl) Ratio() float64 { return c.b.ratio() }

func (c *codecImpl) Compress(x *tensor.Tensor) ([]byte, error) {
	return c.CompressCtx(context.Background(), x)
}

func (c *codecImpl) CompressCtx(ctx context.Context, x *tensor.Tensor) ([]byte, error) {
	payload, err := c.encodePayload(ctx, x)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := WriteContainer(&buf, c.spec, x.Shape(), payload); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (c *codecImpl) Decompress(data []byte) (*tensor.Tensor, error) {
	return c.DecompressCtx(context.Background(), data)
}

func (c *codecImpl) DecompressCtx(ctx context.Context, data []byte) (*tensor.Tensor, error) {
	hdr, payload, err := ReadContainer(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if hdr.wireSize != len(data) {
		return nil, fmt.Errorf("codec: %d trailing bytes after container", len(data)-hdr.wireSize)
	}
	spec, err := ParseSpec(hdr.Spec)
	if err != nil {
		return nil, fmt.Errorf("codec: container spec: %w", err)
	}
	if spec.Family != c.Name() {
		return nil, fmt.Errorf("codec: container holds %q data, this codec is %q (use Decode for spec-directed decoding)", spec.Family, c.Name())
	}
	// Honor the container's own options (self-describing wins over the
	// instance's): rebuild when the specs differ.
	impl := c
	if hdr.Spec != c.spec {
		other, err := New(hdr.Spec)
		if err != nil {
			return nil, fmt.Errorf("codec: rebuilding from container spec %q: %w", hdr.Spec, err)
		}
		impl = other.(*codecImpl)
	}
	return impl.decodePayload(ctx, payload, hdr.Shape)
}

func (c *codecImpl) RoundTrip(x *tensor.Tensor) (*tensor.Tensor, int, error) {
	// The in-place fast paths skip payload serialization, which a stage
	// chain requires: staged codecs always take the serialize path, and
	// the reported size is the staged (post-chain) payload size.
	start := telemetry.NowNanos()
	if fast, ok := c.b.(fastRoundTripper); ok && len(c.chain) == 0 {
		out, n, err := fast.fastRoundTrip(x)
		if err != nil {
			c.m.countErr(err)
			return out, n, err
		}
		c.m.inputBytes.Add(uint64(x.SizeBytes()))
		c.m.payloadBytes.Add(uint64(n))
		c.m.roundTripCalls.Inc()
		c.m.roundTripNs.ObserveSince(start)
		return out, n, nil
	}
	ctx := context.Background()
	payload, err := c.encodePayload(ctx, x)
	if err != nil {
		return nil, 0, err
	}
	out, err := c.decodePayload(ctx, payload, x.Shape())
	if err != nil {
		return nil, 0, err
	}
	c.m.roundTripCalls.Inc()
	c.m.roundTripNs.ObserveSince(start)
	return out, len(payload), nil
}

// builder constructs a family's backend from parsed options.
type builder func(o *Options) (backend, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]builder{}
)

// register installs a family builder; families self-register in init.
func register(family string, build builder) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[family]; dup {
		panic(fmt.Sprintf("codec: duplicate family %q", family))
	}
	registry[family] = build
}

// Families lists the registered codec families, sorted.
func Families() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for f := range registry {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// New builds a codec from a spec string via the registry. Option errors
// name the offending key; every failure carries the ErrBadSpec kind.
func New(spec string) (Codec, error) {
	c, err := newCodec(spec)
	if err != nil {
		return nil, markErr(ErrBadSpec, err)
	}
	return c, nil
}

func newCodec(spec string) (Codec, error) {
	parsed, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	registryMu.RLock()
	build, ok := registry[parsed.Family]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("codec: unknown family %q (registered: %v)", parsed.Family, Families())
	}
	opts := parsed.options()
	b, err := build(opts)
	if err != nil {
		return nil, err
	}
	if err := opts.finish(); err != nil {
		return nil, err
	}
	chain := make([]Stage, 0, len(parsed.Stages))
	for _, name := range parsed.Stages {
		st, err := newStage(name)
		if err != nil {
			return nil, err
		}
		chain = append(chain, st)
	}
	impl := &codecImpl{spec: canonicalSpec(parsed.Family, b, chain), b: b, chain: chain}
	impl.m = metricsFor(impl.spec)
	impl.stageM = make([]*stageMetrics, len(chain))
	for i, st := range chain {
		impl.stageM[i] = stageMetricsFor(st.Name())
	}
	return impl, nil
}

// ValidKeys reports the option keys a family's builder consults — the
// key list CLI error messages print next to a rejected spec. It runs
// the builder over an empty option set and collects what it read.
func ValidKeys(family string) ([]string, error) {
	registryMu.RLock()
	build, ok := registry[family]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("codec: unknown family %q (registered: %v)", family, Families())
	}
	opts := Spec{Family: family, kv: map[string]string{}}.options()
	if _, err := build(opts); err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(opts.used))
	for k := range opts.used {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// canonicalizer lets a backend print its canonical option string.
type canonicalizer interface{ canonical() string }

// canonicalSpec renders the spec that exactly rebuilds b and its stage
// chain.
func canonicalSpec(family string, b backend, chain []Stage) string {
	s := family
	if c, ok := b.(canonicalizer); ok {
		if opts := c.canonical(); opts != "" {
			s = family + ":" + opts
		}
	}
	for _, st := range chain {
		s += "+" + st.Spec()
	}
	return s
}

// Decode reads one container from r and reconstructs its tensor, with
// the codec resolved entirely from the header — the fully
// self-describing path the CLI decompress mode uses. It returns the
// tensor and the codec that decoded it.
func Decode(r io.Reader) (*tensor.Tensor, Codec, error) {
	return DecodeCtx(context.Background(), r)
}

// DecodeCtx is Decode under a context: cancelling ctx aborts the plane
// pipeline between planes.
func DecodeCtx(ctx context.Context, r io.Reader) (*tensor.Tensor, Codec, error) {
	hdr, payload, err := ReadContainer(r)
	if err != nil {
		return nil, nil, err
	}
	c, err := New(hdr.Spec)
	if err != nil {
		return nil, nil, fmt.Errorf("codec: container spec %q: %w", hdr.Spec, err)
	}
	out, err := c.(*codecImpl).decodePayload(ctx, payload, hdr.Shape)
	if err != nil {
		return nil, nil, err
	}
	return out, c, nil
}

// DecodeBytes is Decode over an in-memory container. Unlike Decode on a
// stream, it requires the container to span data exactly — trailing
// bytes after a single container are rejected.
func DecodeBytes(data []byte) (*tensor.Tensor, Codec, error) {
	return DecodeBytesCtx(context.Background(), data)
}

// DecodeBytesCtx is DecodeBytes under a context.
func DecodeBytesCtx(ctx context.Context, data []byte) (*tensor.Tensor, Codec, error) {
	hdr, payload, err := ReadContainer(bytes.NewReader(data))
	if err != nil {
		return nil, nil, err
	}
	if hdr.wireSize != len(data) {
		return nil, nil, fmt.Errorf("codec: %d trailing bytes after container", len(data)-hdr.wireSize)
	}
	c, err := New(hdr.Spec)
	if err != nil {
		return nil, nil, fmt.Errorf("codec: container spec %q: %w", hdr.Spec, err)
	}
	out, err := c.(*codecImpl).decodePayload(ctx, payload, hdr.Shape)
	if err != nil {
		return nil, nil, err
	}
	return out, c, nil
}

// DecodeFile is Decode over a container file on disk. The file must
// hold exactly one container: trailing bytes are rejected (multi-tensor
// files are ACCF v2 streams — use NewStreamReader). A v1 container's
// payload is fully resident during decode anyway, so reading the file
// whole costs no extra peak memory.
func DecodeFile(path string) (*tensor.Tensor, Codec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return DecodeBytes(data)
}
