package codec

import (
	"sync"

	"repro/internal/telemetry"
)

// This file wires the codec layer into internal/telemetry. Metric
// handles are resolved once — per spec at New, per stage at chain
// construction, once at init for the stream engine — so the hot paths
// record through pre-fetched pointers (one or two atomic adds each) and
// stay 0 allocs/op. Every recording call is gated on the global
// telemetry switch; with ACC_TELEMETRY=0 (or -tags acc_notelemetry)
// nothing is recorded and nothing is timed.
//
// Naming (see the telemetry package doc for the scheme):
//
//	codec.<spec>.compress_calls / decompress_calls / roundtrip_calls
//	codec.<spec>.compress_ns / decompress_ns / roundtrip_ns
//	codec.<spec>.input_bytes / payload_bytes    (live ratio = in/payload)
//	codec.<spec>.decode_bytes / output_bytes
//	codec.<spec>.errors.{crc,truncated,bad_spec,canceled,other}
//	stage.<name>.forward_ns / inverse_ns
//	stream.writer.* / stream.reader.*           (see stream metrics below)
//
// input_bytes/payload_bytes tick on every encode-equivalent operation —
// Compress, a stream record encode, or a fused RoundTripInto — so the
// live compression ratio covers the fast paths that never materialize a
// container.

// codecMetrics is one spec's metric family. All fields are nil-safe to
// record into (telemetry nil-receiver semantics), and a nil
// *codecMetrics records nothing, so hand-constructed codecImpls in
// tests need no wiring.
type codecMetrics struct {
	compressCalls   *telemetry.Counter
	decompressCalls *telemetry.Counter
	roundTripCalls  *telemetry.Counter
	compressNs      *telemetry.Histogram
	decompressNs    *telemetry.Histogram
	roundTripNs     *telemetry.Histogram
	inputBytes      *telemetry.Counter
	payloadBytes    *telemetry.Counter
	decodeBytes     *telemetry.Counter
	outputBytes     *telemetry.Counter

	errCRC       *telemetry.Counter
	errTruncated *telemetry.Counter
	errBadSpec   *telemetry.Counter
	errCanceled  *telemetry.Counter
	errOther     *telemetry.Counter
}

var (
	codecMetricsMu sync.Mutex
	codecMetricsBy = map[string]*codecMetrics{}
)

// metricsFor returns the (shared) metric family for a canonical spec,
// creating it on first use. Called from New only — never on a hot path.
func metricsFor(spec string) *codecMetrics {
	codecMetricsMu.Lock()
	defer codecMetricsMu.Unlock()
	if m, ok := codecMetricsBy[spec]; ok {
		return m
	}
	p := "codec." + spec + "."
	m := &codecMetrics{
		compressCalls:   telemetry.NewCounter(p + "compress_calls"),
		decompressCalls: telemetry.NewCounter(p + "decompress_calls"),
		roundTripCalls:  telemetry.NewCounter(p + "roundtrip_calls"),
		compressNs:      telemetry.NewHistogram(p + "compress_ns"),
		decompressNs:    telemetry.NewHistogram(p + "decompress_ns"),
		roundTripNs:     telemetry.NewHistogram(p + "roundtrip_ns"),
		inputBytes:      telemetry.NewCounter(p + "input_bytes"),
		payloadBytes:    telemetry.NewCounter(p + "payload_bytes"),
		decodeBytes:     telemetry.NewCounter(p + "decode_bytes"),
		outputBytes:     telemetry.NewCounter(p + "output_bytes"),
		errCRC:          telemetry.NewCounter(p + "errors.crc"),
		errTruncated:    telemetry.NewCounter(p + "errors.truncated"),
		errBadSpec:      telemetry.NewCounter(p + "errors.bad_spec"),
		errCanceled:     telemetry.NewCounter(p + "errors.canceled"),
		errOther:        telemetry.NewCounter(p + "errors.other"),
	}
	codecMetricsBy[spec] = m
	return m
}

// countErr bumps the error counter matching err's kind (see ErrorKind).
func (m *codecMetrics) countErr(err error) {
	if m == nil || err == nil || !telemetry.Enabled() {
		return
	}
	switch ErrorKind(err) {
	case "crc":
		m.errCRC.Inc()
	case "truncated":
		m.errTruncated.Inc()
	case "bad_spec":
		m.errBadSpec.Inc()
	case "canceled":
		m.errCanceled.Inc()
	default:
		m.errOther.Inc()
	}
}

// stageMetrics is one stage name's timing pair; resolved per chain slot
// at codec construction.
type stageMetrics struct {
	forwardNs *telemetry.Histogram
	inverseNs *telemetry.Histogram
}

var (
	stageMetricsMu sync.Mutex
	stageMetricsBy = map[string]*stageMetrics{}
)

// stageMetricsFor returns the metric pair for a stage name.
func stageMetricsFor(name string) *stageMetrics {
	stageMetricsMu.Lock()
	defer stageMetricsMu.Unlock()
	if m, ok := stageMetricsBy[name]; ok {
		return m
	}
	m := &stageMetrics{
		forwardNs: telemetry.NewHistogram("stage." + name + ".forward_ns"),
		inverseNs: telemetry.NewHistogram("stage." + name + ".inverse_ns"),
	}
	stageMetricsBy[name] = m
	return m
}

// streamM is the stream engine's global metric set; per-writer and
// per-reader views come from the engines' own atomics via Stats().
// Writer gauges aggregate across concurrently open writers (in-flight
// deltas add; the budget gauge is last-writer-wins) — see DESIGN.md §7
// for the semantics.
var streamM = struct {
	wAdmitted *telemetry.Counter   // records accepted by WriteTensor
	wRecords  *telemetry.Counter   // records emitted to the sink
	wBytesIn  *telemetry.Counter   // uncompressed bytes admitted
	wBytesOut *telemetry.Counter   // encoded payload bytes emitted
	wInflight *telemetry.Gauge     // bytes admitted but not yet emitted
	wBudget   *telemetry.Gauge     // SetMaxInFlightBytes budget
	wWorkers  *telemetry.Gauge     // encode workers currently busy
	wEncodeNs *telemetry.Histogram // per-record encode latency

	rRecords  *telemetry.Counter // records parsed (header verified)
	rChunks   *telemetry.Counter // payload chunks delivered
	rBytes    *telemetry.Counter // payload bytes delivered
	rDecoded  *telemetry.Counter // uncompressed bytes decoded
	rCRCFail  *telemetry.Counter // CRC mismatches (header or chunk)
	rRAHits   *telemetry.Counter // Next served without waiting
	rRAMiss   *telemetry.Counter // Next had to wait on the prefetcher
	rDecodeNs *telemetry.Histogram

	iLoads        *telemetry.Counter   // index footers loaded by OpenIndexedStream
	iRebuilds     *telemetry.Counter   // indexes rebuilt by sequential header walk
	iSeeks        *telemetry.Counter   // DecodeAt calls (incl. those fanned out by DecodeRange)
	iRangeRecords *telemetry.Counter   // records decoded through DecodeRange
	iFooterSkips  *telemetry.Counter   // sequential Skips served by a footer seek
	iSeekNs       *telemetry.Histogram // per-record seek+decode latency
}{
	wAdmitted: telemetry.NewCounter("stream.writer.records_admitted"),
	wRecords:  telemetry.NewCounter("stream.writer.records_emitted"),
	wBytesIn:  telemetry.NewCounter("stream.writer.uncompressed_bytes"),
	wBytesOut: telemetry.NewCounter("stream.writer.payload_bytes"),
	wInflight: telemetry.NewGauge("stream.writer.inflight_bytes"),
	wBudget:   telemetry.NewGauge("stream.writer.budget_bytes"),
	wWorkers:  telemetry.NewGauge("stream.writer.busy_workers"),
	wEncodeNs: telemetry.NewHistogram("stream.writer.encode_ns"),

	rRecords:  telemetry.NewCounter("stream.reader.records"),
	rChunks:   telemetry.NewCounter("stream.reader.chunks"),
	rBytes:    telemetry.NewCounter("stream.reader.payload_bytes"),
	rDecoded:  telemetry.NewCounter("stream.reader.decoded_bytes"),
	rCRCFail:  telemetry.NewCounter("stream.reader.crc_failures"),
	rRAHits:   telemetry.NewCounter("stream.reader.readahead_hits"),
	rRAMiss:   telemetry.NewCounter("stream.reader.readahead_misses"),
	rDecodeNs: telemetry.NewHistogram("stream.reader.decode_ns"),

	iLoads:        telemetry.NewCounter("stream.index.footer_loads"),
	iRebuilds:     telemetry.NewCounter("stream.index.rebuilds"),
	iSeeks:        telemetry.NewCounter("stream.index.seeks"),
	iRangeRecords: telemetry.NewCounter("stream.index.range_records"),
	iFooterSkips:  telemetry.NewCounter("stream.index.footer_skips"),
	iSeekNs:       telemetry.NewHistogram("stream.index.seek_ns"),
}
