package codec

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync/atomic"

	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// ACCF v2 is the streaming multi-tensor container: a sequence of
// independently decodable, CRC-protected records framing one tensor
// each. Unlike the v1 container (one monolithic payload, CRC over the
// payload only), v2 protects the record header itself with a CRC and
// splits the payload into CRC-protected chunks, so decode can stream
// with bounded memory and corruption is reported with a byte position.
//
// Layout, all fields little-endian:
//
//	stream header:
//	  0   4   magic "ACCF"
//	  4   2   format version (2)
//	  6   2   reserved (0)
//	record, repeated:
//	  +0  1   marker: 'T' (0x54) tensor record, 'S' (0x53) staged
//	          tensor record (spec carries a "+stage" chain), 'E' (0x45)
//	          end of stream
//	tensor record, after the marker:
//	  +0  2   spec length L
//	  +2  L   codec spec string
//	  +2+L 1  tensor rank R
//	  …   4·R dims (uint32 each)
//	  …   4   payload length P
//	  …   4   header CRC32 (IEEE) over marker..payload-length
//	  …       chunked payload until P bytes delivered:
//	            u32 chunk length C (1..min(P remaining, 64 MiB))
//	            u32 chunk CRC32 (IEEE)
//	            C bytes
//	end-of-stream record: the marker alone; nothing may follow it.
//
// The reader never buffers a whole payload: chunk bytes flow straight
// into the decoder's plane-group scratch, with CRCs verified as the
// bytes pass through. A corrupted chunk therefore surfaces before its
// group's Decode call can return success.
const (
	streamVersion = 2

	recTensor = 0x54 // 'T'
	recEnd    = 0x45 // 'E'
	// recStaged ('S') frames a tensor record whose spec carries a stage
	// chain ("family:…+stage"). The record layout after the marker is
	// identical to 'T'; the distinct marker makes pre-stage readers fail
	// on "bad record marker" instead of feeding an entropy-coded payload
	// to a family decoder. Unstaged records keep the 'T' marker, so
	// pre-stage streams are byte-identical.
	recStaged = 0x53 // 'S'
	// recIndex ('I') frames the optional index footer: a CRC-protected
	// table of every record's offset, payload length, spec, and shape,
	// written immediately before the end marker (see stream_index.go for
	// the wire layout and the random-access reader built on it).
	recIndex = 0x49 // 'I'

	// maxStreamChunk bounds a chunk length a record may claim.
	maxStreamChunk = 1 << 26
	// defaultStreamChunk is the writer's chunk size.
	defaultStreamChunk = 1 << 20
	// minStreamChunk floors configurable chunk sizes.
	minStreamChunk = 4 << 10
)

// planeGroupBytes is the target size of one streamed plane-group read —
// the decoder's peak transient buffer. A single plane larger than this
// forms a group of one.
const planeGroupBytes = 1 << 20

// StreamWriter frames a sequence of tensors as ACCF v2 records on w.
// By default records are encoded serially as WriteTensor is called,
// buffering one record's payload at a time (peak memory is bounded by
// the largest single tensor's payload), never the stream.
// SetConcurrency enables the pipelined engine: records encode on a
// worker pool and are emitted strictly in WriteTensor order, producing
// a byte-identical stream (see stream_parallel.go).
type StreamWriter struct {
	w       io.Writer
	chunk   int
	started bool
	closed  bool
	// locked flips on the first WriteTensor and freezes configuration.
	// It is owned by the caller's goroutine — unlike started, which the
	// pipelined engine's emitter goroutine writes.
	locked  bool
	records atomic.Int64
	eng     *swEngine

	// off is the running byte offset of the stream: every write to w
	// passes through writeStreamHeader, emitRecord, or Close, each of
	// which advances it. With the pipelined engine only the emitter
	// goroutine touches it mid-stream; Close reads it after drain.
	off int64
	// indexOn, set by SetIndex, makes Close emit the index footer;
	// emitRecord accumulates one index entry per record while it is set.
	indexOn bool
	index   []indexEntry

	// Per-writer statistics (see Stats). These count unconditionally —
	// they are plain atomics with no allocation — while the matching
	// global telemetry metrics honor the telemetry enable switch.
	admitted atomic.Int64 // records accepted by WriteTensor
	bytesIn  atomic.Int64 // uncompressed bytes admitted
	bytesOut atomic.Int64 // encoded payload bytes emitted
}

// StreamWriterStats is a point-in-time snapshot of one writer's
// counters and back-pressure state. With the pipelined engine enabled,
// RecordsAdmitted can lead RecordsEmitted by up to the job quota;
// InFlightBytes is the uncompressed bytes of records admitted but not
// yet emitted, bounded by BudgetBytes (see SetMaxInFlightBytes) except
// that one oversized record may exceed the budget while alone in the
// pipeline. For the serial writer the three engine fields are zero.
type StreamWriterStats struct {
	RecordsAdmitted   int64
	RecordsEmitted    int64
	UncompressedBytes int64
	PayloadBytes      int64
	InFlightBytes     int64
	MaxInFlightBytes  int64 // high-water mark of InFlightBytes
	BudgetBytes       int64
}

// Stats returns the writer's current statistics. Safe to call
// concurrently with WriteTensor, including from other goroutines while
// the pipelined engine is running.
func (sw *StreamWriter) Stats() StreamWriterStats {
	s := StreamWriterStats{
		RecordsAdmitted:   sw.admitted.Load(),
		RecordsEmitted:    sw.records.Load(),
		UncompressedBytes: sw.bytesIn.Load(),
		PayloadBytes:      sw.bytesOut.Load(),
	}
	if sw.eng != nil {
		sw.eng.mu.Lock()
		s.InFlightBytes = sw.eng.inflight
		s.MaxInFlightBytes = sw.eng.maxInFlight
		s.BudgetBytes = sw.eng.budget
		sw.eng.mu.Unlock()
	}
	return s
}

// noteAdmitted records one accepted record and returns its 1-based
// sequence number (the trace record id). Called by the serial
// WriteTensor path and by the engine once admission succeeds.
func (sw *StreamWriter) noteAdmitted(cost int64) int64 {
	seq := sw.admitted.Add(1)
	sw.bytesIn.Add(cost)
	streamM.wAdmitted.Inc()
	streamM.wBytesIn.Add(uint64(cost))
	telemetry.TraceRecord(seq, telemetry.PhaseAdmitted)
	return seq
}

// NewStreamWriter returns a StreamWriter targeting w. The stream header
// is written lazily on the first record (or Close).
func NewStreamWriter(w io.Writer) *StreamWriter {
	return &StreamWriter{w: w, chunk: defaultStreamChunk}
}

// SetChunkSize overrides the payload chunk size, clamped to
// [4 KiB, 64 MiB]. Smaller chunks localize corruption and lower the
// reader's transient buffer; larger chunks shave framing overhead.
// Must be called before the first WriteTensor (later calls are
// ignored: with the pipelined engine the emitter goroutine owns the
// chunk size once records are in flight).
func (sw *StreamWriter) SetChunkSize(n int) {
	if sw.locked {
		return
	}
	if n < minStreamChunk {
		n = minStreamChunk
	}
	if n > maxStreamChunk {
		n = maxStreamChunk
	}
	sw.chunk = n
}

// Records reports how many tensor records have been written. With the
// pipelined engine enabled this counts emitted records, which may trail
// WriteTensor calls until Close.
func (sw *StreamWriter) Records() int { return int(sw.records.Load()) }

// SetIndex enables (or disables) the index footer: with it on, Close
// emits a CRC-protected table of every record's byte offset, payload
// length, spec, and shape just before the end-of-stream marker, which
// OpenIndexedStream uses for O(1) record seeks. The footer is
// self-describing and optional: a plain StreamReader verifies and skips
// it, and streams written without it are byte-identical to pre-index
// writers. Must be called before the first WriteTensor.
func (sw *StreamWriter) SetIndex(on bool) error {
	if sw.locked || sw.closed {
		return fmt.Errorf("codec: SetIndex must be called before the first WriteTensor")
	}
	sw.indexOn = on
	return nil
}

func (sw *StreamWriter) writeStreamHeader() error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], containerMagic)
	binary.LittleEndian.PutUint16(hdr[4:], streamVersion)
	binary.LittleEndian.PutUint16(hdr[6:], 0)
	if _, err := sw.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("codec: writing stream header: %w", err)
	}
	sw.off += int64(len(hdr))
	sw.started = true
	return nil
}

// WriteTensor appends one tensor record, encoded with c (which must be
// a registry codec). The record is self-describing: spec and shape ride
// in its CRC-protected header.
func (sw *StreamWriter) WriteTensor(ctx context.Context, c Codec, x *tensor.Tensor) error {
	if sw.closed {
		return fmt.Errorf("codec: stream writer is closed")
	}
	sw.locked = true
	impl, ok := c.(*codecImpl)
	if !ok {
		return fmt.Errorf("codec: %T is not a registry codec", c)
	}
	shape := x.Shape()
	if err := validateFrame(impl.spec, shape, 0); err != nil {
		return err
	}
	if sw.eng != nil {
		return sw.eng.submit(ctx, impl, shape, x)
	}
	seq := sw.noteAdmitted(int64(x.SizeBytes()))
	payload, err := impl.encodePayload(ctx, x)
	if err != nil {
		return err
	}
	telemetry.TraceRecord(seq, telemetry.PhaseEncoded)
	return sw.emitRecord(impl.spec, shape, payload)
}

// emitRecord frames one encoded payload as a tensor record: the lazily
// written stream header, the CRC-protected record header, then the
// chunked payload. Both the serial path and the pipelined engine's
// ordered emitter call this, so their byte output is identical by
// construction.
func (sw *StreamWriter) emitRecord(spec string, shape []int, payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("codec: payload %d bytes exceeds limit %d", len(payload), maxPayload)
	}
	if !sw.started {
		if err := sw.writeStreamHeader(); err != nil {
			return err
		}
	}
	marker := byte(recTensor)
	if specHasStages(spec) {
		marker = recStaged
	}
	recOff := sw.off // offset of the record's marker byte, for the index
	// Record header: marker..payload-length, then its CRC.
	hdr := make([]byte, 0, 12+len(spec)+4*len(shape))
	hdr = append(hdr, marker)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(spec)))
	hdr = append(hdr, spec...)
	hdr = append(hdr, byte(len(shape)))
	for _, d := range shape {
		hdr = binary.LittleEndian.AppendUint32(hdr, uint32(d))
	}
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(payload)))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(hdr))
	if _, err := sw.w.Write(hdr); err != nil {
		return fmt.Errorf("codec: writing record header: %w", err)
	}
	sw.off += int64(len(hdr))
	for off := 0; off < len(payload); {
		n := len(payload) - off
		if n > sw.chunk {
			n = sw.chunk
		}
		chunk := payload[off : off+n]
		var ch [8]byte
		binary.LittleEndian.PutUint32(ch[0:], uint32(n))
		binary.LittleEndian.PutUint32(ch[4:], crc32.ChecksumIEEE(chunk))
		if _, err := sw.w.Write(ch[:]); err != nil {
			return fmt.Errorf("codec: writing chunk header: %w", err)
		}
		if _, err := sw.w.Write(chunk); err != nil {
			return fmt.Errorf("codec: writing chunk: %w", err)
		}
		sw.off += int64(len(ch)) + int64(n)
		off += n
	}
	if sw.indexOn {
		sw.index = append(sw.index, indexEntry{
			off:    recOff,
			payLen: int64(len(payload)),
			marker: marker,
			spec:   spec,
			shape:  append([]int(nil), shape...),
		})
	}
	seq := sw.records.Add(1)
	sw.bytesOut.Add(int64(len(payload)))
	streamM.wRecords.Inc()
	streamM.wBytesOut.Add(uint64(len(payload)))
	// Emission is strictly in admission order, so the emitted record's
	// sequence number equals the running emit count.
	telemetry.TraceRecord(seq, telemetry.PhaseEmitted)
	return nil
}

// Close terminates the stream with the end-of-stream marker. With the
// pipelined engine enabled it first waits for every in-flight record to
// encode and emit; an engine failure is returned here (and the end
// marker withheld, so the truncation is visible to readers). It does
// not close the underlying writer.
func (sw *StreamWriter) Close() error {
	if sw.closed {
		return nil
	}
	if sw.eng != nil {
		if err := sw.eng.drain(); err != nil {
			sw.closed = true
			return err
		}
	}
	if !sw.started {
		if err := sw.writeStreamHeader(); err != nil {
			return err
		}
	}
	if sw.indexOn {
		if err := sw.writeIndexFooter(); err != nil {
			return err
		}
	}
	if _, err := sw.w.Write([]byte{recEnd}); err != nil {
		return fmt.Errorf("codec: writing end-of-stream marker: %w", err)
	}
	sw.off++
	sw.closed = true
	return nil
}

// StreamReader decodes an ACCF v2 stream record by record: Next parses
// and returns the next record's header, then Decode (or Skip) consumes
// its payload. Peak extra memory during Decode is one plane-group
// buffer, not the record payload. All errors carry the stream byte
// offset; any error other than the clean io.EOF from Next is sticky —
// a corrupted stream cannot be resynchronized.
type StreamReader struct {
	br  *bufio.Reader
	off int64 // bytes consumed from the underlying stream
	rec int   // records seen (1-based once Next succeeds)
	hdr Header
	cur *payloadReader // pending record payload, nil between records
	err error          // sticky failure (or io.EOF after the end marker)
	// sawFooter flips once an index footer has been verified and
	// skipped; only the end marker may follow it.
	sawFooter bool
	// rs is the underlying source when it supports seeking; with a
	// preloaded index (seekIdx) Skip can then seek past a payload in
	// O(1) instead of draining its chunks.
	rs io.ReadSeeker
	// seekIdx is the index footer's entry table, loaded by a tail probe
	// at construction (nil when the source is unseekable, the stream
	// carries no footer, or the footer fails validation — all of which
	// leave the reader in plain sequential mode).
	seekIdx []indexEntry
	// footIdxOff is the stream-relative byte offset of the footer's 'I'
	// marker: the skip target after the last indexed record.
	footIdxOff int64
	// markOff is the stream-relative offset of the pending record's
	// marker byte, cross-checked against seekIdx before any seek-skip.
	markOff int64
	// codecs caches resolved codecs by spec: multi-record streams
	// typically repeat one spec, and some backends (dctc) compile
	// per-resolution state that must not be rebuilt per record.
	codecs map[string]Codec
	// shared, when non-nil, replaces the per-reader codec cache with the
	// owning IndexedStream's mutex-guarded one, so the per-seek readers
	// DecodeAt constructs share compiled codec state (see
	// stream_index.go).
	shared *IndexedStream
	// ra, when non-nil, is the background read-ahead state: the
	// prefetch goroutine owns every field above and the public methods
	// serve from ra's queue instead (see stream_parallel.go).
	ra *readAhead

	// Per-reader statistics (see Stats). Atomics, because in read-ahead
	// mode the prefetch goroutine updates them while the consumer reads.
	nRecords      atomic.Int64
	nChunks       atomic.Int64
	nPayloadBytes atomic.Int64
	nDecodedBytes atomic.Int64
	nCRCFail      atomic.Int64
	nRAHits       atomic.Int64
	nRAMiss       atomic.Int64
	nFooterSkips  atomic.Int64
}

// StreamReaderStats is a point-in-time snapshot of one reader's
// counters. In read-ahead mode Records/Chunks/PayloadBytes/DecodedBytes
// track the background prefetcher, so they can lead the records the
// consumer has taken from Next; ReadAheadHits counts Next calls served
// without blocking on the prefetcher, ReadAheadMisses the calls that
// had to wait (both zero without SetReadAhead). FooterSkips counts the
// Skips served by an index-footer seek: those records' payload chunks
// are never read, so they appear in none of Chunks, PayloadBytes, or
// CRCFailures.
type StreamReaderStats struct {
	Records         int64
	Chunks          int64
	PayloadBytes    int64
	DecodedBytes    int64
	CRCFailures     int64
	ReadAheadHits   int64
	ReadAheadMisses int64
	FooterSkips     int64
}

// Stats returns the reader's current statistics. Safe to call
// concurrently with the read-ahead prefetcher.
func (sr *StreamReader) Stats() StreamReaderStats {
	return StreamReaderStats{
		Records:         sr.nRecords.Load(),
		Chunks:          sr.nChunks.Load(),
		PayloadBytes:    sr.nPayloadBytes.Load(),
		DecodedBytes:    sr.nDecodedBytes.Load(),
		CRCFailures:     sr.nCRCFail.Load(),
		ReadAheadHits:   sr.nRAHits.Load(),
		ReadAheadMisses: sr.nRAMiss.Load(),
		FooterSkips:     sr.nFooterSkips.Load(),
	}
}

// NewStreamReader validates the stream header and returns a reader
// positioned before the first record.
//
// When r also implements io.Seeker, the constructor probes the stream
// tail for the optional index footer before the first sequential read:
// with the footer loaded, Skip seeks directly past a record's payload
// instead of draining its chunks. The probe is best-effort — a missing
// or malformed footer just leaves the reader in plain sequential mode.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	sr := &StreamReader{codecs: make(map[string]Codec)}
	if rs, ok := r.(io.ReadSeeker); ok {
		if err := sr.probeIndex(rs); err != nil {
			return nil, err
		}
	}
	sr.br = bufio.NewReaderSize(r, 64<<10)
	var fixed [8]byte
	if err := sr.readFull(fixed[:]); err != nil {
		return nil, fmt.Errorf("codec: reading stream header: %w", err)
	}
	if err := checkStreamHeader(fixed[:]); err != nil {
		return nil, err
	}
	return sr, nil
}

// readFull reads exactly len(p) bytes, tracking the stream offset.
func (sr *StreamReader) readFull(p []byte) error {
	n, err := io.ReadFull(sr.br, p)
	sr.off += int64(n)
	return err
}

// posf builds a position-bearing error and latches it as the reader's
// sticky failure.
func (sr *StreamReader) posf(format string, args ...any) error {
	err := fmt.Errorf("codec: stream offset %d (record %d): %s", sr.off, sr.rec, fmt.Sprintf(format, args...))
	sr.err = err
	return err
}

// poskf is posf with a typed error kind attached (see errors.go): the
// message is identical, errors.Is additionally matches the kind.
func (sr *StreamReader) poskf(kind error, format string, args ...any) error {
	err := markErr(kind, fmt.Errorf("codec: stream offset %d (record %d): %s", sr.off, sr.rec, fmt.Sprintf(format, args...)))
	sr.err = err
	return err
}

// posw wraps an underlying error with the stream position and latches
// it, preserving the chain for errors.Is/As.
func (sr *StreamReader) posw(context string, err error) error {
	wrapped := fmt.Errorf("codec: stream offset %d (record %d): %s: %w", sr.off, sr.rec, context, err)
	sr.err = wrapped
	return wrapped
}

// nextRecord advances to the next record and returns its header. It
// returns io.EOF (exactly, not wrapped) after a well-formed
// end-of-stream marker; a stream that simply stops without the marker
// is a truncation error. An unconsumed previous payload is skipped
// (CRC-verified) first.
func (sr *StreamReader) nextRecord() (Header, error) {
	if sr.err != nil {
		return Header{}, sr.err
	}
	if sr.cur != nil {
		if err := sr.skipRecord(); err != nil {
			return Header{}, err
		}
	}
	var marker byte
	for {
		var err error
		marker, err = sr.br.ReadByte()
		if err != nil {
			return Header{}, sr.posw("reading record marker", noEOF(err))
		}
		sr.off++
		switch marker {
		case recEnd:
			// Nothing may follow the end marker: a concatenation or a
			// duplicated tail is a framing error, not silently ignored.
			if _, err := sr.br.ReadByte(); err == nil {
				return Header{}, sr.posf("trailing data after end-of-stream marker")
			} else if err != io.EOF {
				return Header{}, sr.posw("probing for end of stream", err)
			}
			sr.err = io.EOF
			return Header{}, io.EOF
		case recIndex:
			// The index footer is for random-access readers; the
			// sequential reader verifies its CRC and framing, then skips
			// it. It must be the last record before the end marker.
			if sr.sawFooter {
				return Header{}, sr.posf("duplicate index footer")
			}
			if err := sr.skipIndexFooter(); err != nil {
				return Header{}, err
			}
			sr.sawFooter = true
			continue
		case recTensor, recStaged:
			if sr.sawFooter {
				return Header{}, sr.posf("tensor record after index footer")
			}
		default:
			return Header{}, sr.posf("bad record marker %#x", marker)
		}
		break
	}
	sr.markOff = sr.off - 1
	sr.rec++

	// Accumulate the variable-length header exactly as written so the
	// CRC can be verified before the fields are trusted.
	raw := make([]byte, 3, 64)
	raw[0] = marker
	if err := sr.readFull(raw[1:3]); err != nil {
		return Header{}, sr.posw("reading spec length", noEOF(err))
	}
	specLen := int(binary.LittleEndian.Uint16(raw[1:3]))
	if specLen == 0 || specLen > maxSpecLen {
		return Header{}, sr.posf("spec length %d outside [1,%d]", specLen, maxSpecLen)
	}
	raw = append(raw, make([]byte, specLen+1)...)
	if err := sr.readFull(raw[3:]); err != nil {
		return Header{}, sr.posw("reading spec", noEOF(err))
	}
	rank := int(raw[len(raw)-1])
	if rank == 0 || rank > maxRank {
		return Header{}, sr.posf("rank %d outside [1,%d]", rank, maxRank)
	}
	base := len(raw)
	raw = append(raw, make([]byte, 4*rank+4)...)
	if err := sr.readFull(raw[base:]); err != nil {
		return Header{}, sr.posw("reading dims", noEOF(err))
	}
	var crcBuf [4]byte
	if err := sr.readFull(crcBuf[:]); err != nil {
		return Header{}, sr.posw("reading header CRC", noEOF(err))
	}
	if want, got := binary.LittleEndian.Uint32(crcBuf[:]), crc32.ChecksumIEEE(raw); want != got {
		sr.nCRCFail.Add(1)
		streamM.rCRCFail.Inc()
		return Header{}, sr.poskf(ErrCRC, "record header CRC mismatch (stored %#x, computed %#x)", want, got)
	}

	hdr := Header{Spec: string(raw[3 : 3+specLen])}
	// The marker and the spec's stage chain must agree — a 'T' record
	// smuggling a staged spec (or the reverse) is a forgery.
	if staged := specHasStages(hdr.Spec); staged != (marker == recStaged) {
		return Header{}, sr.posf("record marker %#x does not match spec %q", marker, hdr.Spec)
	}
	hdr.Shape = make([]int, rank)
	// The element product accumulates in uint64: dims are validated to
	// ≤ 2²⁴ and the running product to ≤ 2²⁸ before each multiply, so the
	// intermediate stays ≤ 2⁵², which a 32-bit int would wrap straight
	// past the maxElems check.
	elems := uint64(1)
	for i := range hdr.Shape {
		d := binary.LittleEndian.Uint32(raw[base+4*i:])
		if d < 1 || d > maxDim {
			return Header{}, sr.posf("dimension %d outside [1,%d]", d, maxDim)
		}
		hdr.Shape[i] = int(d)
		elems *= uint64(d)
		if elems > maxElems {
			return Header{}, sr.posf("shape %v exceeds %d elements", hdr.Shape, maxElems)
		}
	}
	payLen := binary.LittleEndian.Uint32(raw[base+4*rank:])
	if payLen > maxPayload {
		return Header{}, sr.posf("payload %d bytes exceeds limit %d", payLen, maxPayload)
	}
	hdr.wireSize = len(raw) + 4
	sr.hdr = hdr
	sr.cur = &payloadReader{sr: sr, remaining: int(payLen)}
	sr.nRecords.Add(1)
	streamM.rRecords.Inc()
	// The caller gets its own copy of the shape: the reader keeps using
	// sr.hdr.Shape for the decode, so a caller mutating the returned
	// header cannot redirect it (and nothing the reader does later can
	// touch the caller's slice).
	ret := hdr
	ret.Shape = append([]int(nil), hdr.Shape...)
	return ret, nil
}

// lookupCodec resolves a codec for spec through the reader's cache — or,
// for the per-seek readers an IndexedStream constructs, through the
// stream's shared mutex-guarded cache, so compiled per-resolution codec
// state is built once no matter how many parallel seeks hit the spec.
func (sr *StreamReader) lookupCodec(spec string) (Codec, error) {
	if sr.shared != nil {
		return sr.shared.lookupCodec(spec)
	}
	if c, ok := sr.codecs[spec]; ok {
		return c, nil
	}
	c, err := New(spec)
	if err != nil {
		return nil, err
	}
	sr.codecs[spec] = c
	return c, nil
}

// decodeRecord decompresses the pending record into a tensor, streaming
// the payload through at most one plane-group of scratch at a time. The
// codec is resolved from the record's (CRC-verified) spec.
func (sr *StreamReader) decodeRecord(ctx context.Context) (*tensor.Tensor, error) {
	if sr.err != nil {
		return nil, sr.err
	}
	if sr.cur == nil {
		return nil, fmt.Errorf("codec: no pending record (call Next first)")
	}
	start := telemetry.NowNanos()
	c, err := sr.lookupCodec(sr.hdr.Spec)
	if err != nil {
		return nil, sr.posw(fmt.Sprintf("record spec %q", sr.hdr.Spec), err)
	}
	impl := c.(*codecImpl)
	var out *tensor.Tensor
	if sd, ok := impl.b.(streamDecoder); ok && len(impl.chain) == 0 {
		out, err = sd.decodeStream(ctx, sr.cur, sr.hdr.Shape)
	} else {
		// Staged records (the chain must invert over the whole payload)
		// and backends without streaming support buffer the one record.
		// The buffer grows as chunk data actually arrives rather than
		// being pre-allocated at the claimed payload length: a forged
		// (CRC-valid) header claiming maxPayload would otherwise force a
		// 1 GiB allocation before the first truncated chunk could fail.
		var buf bytes.Buffer
		if _, err = io.Copy(&buf, sr.cur); err == nil {
			out, err = impl.decodePayload(ctx, buf.Bytes(), sr.hdr.Shape)
		}
	}
	if err != nil {
		if sr.err == nil {
			return nil, sr.posw("decoding record", err)
		}
		return nil, sr.err
	}
	if sr.cur.len() != 0 {
		return nil, sr.posf("%d trailing payload bytes after decode", sr.cur.len())
	}
	sr.cur = nil
	sr.nDecodedBytes.Add(int64(out.SizeBytes()))
	streamM.rDecoded.Add(uint64(out.SizeBytes()))
	streamM.rDecodeNs.ObserveSince(start)
	return out, nil
}

// skipRecord discards the pending record's payload. With an index
// footer preloaded from a seekable source it seeks straight to the
// next record boundary in O(1); otherwise it drains the chunks,
// verifying every chunk CRC along the way.
func (sr *StreamReader) skipRecord() error {
	if sr.err != nil {
		return sr.err
	}
	if sr.cur == nil {
		return nil
	}
	if sr.trySeekSkip() {
		return nil
	}
	buf := getByteScratch(32 << 10)
	defer putByteScratch(buf)
	for sr.cur.len() > 0 {
		n := sr.cur.len()
		if n > len(buf) {
			n = len(buf)
		}
		if err := sr.cur.readFull(buf[:n]); err != nil {
			return err
		}
	}
	sr.cur = nil
	return nil
}

// trySeekSkip serves a Skip from the preloaded index: the next record's
// offset (or the footer's, after the last record) is in the table, so
// the pending payload's chunks need not be read at all. Returns false —
// leaving the payload for the sequential CRC-verifying drain — when no
// index is loaded, the record is beyond the table, or the table
// disagrees with the record the reader actually parsed. The skipped
// chunk CRCs go unverified by construction; a lying footer cannot
// produce wrong output, because whatever the seek lands on must still
// parse as a record marker with a CRC-verified header.
func (sr *StreamReader) trySeekSkip() bool {
	i := sr.rec - 1 // entries are in record order; rec is 1-based
	if sr.seekIdx == nil || i < 0 || i >= len(sr.seekIdx) {
		return false
	}
	if sr.seekIdx[i].off != sr.markOff {
		return false
	}
	next := sr.footIdxOff
	if i+1 < len(sr.seekIdx) {
		next = sr.seekIdx[i+1].off
	}
	skip := next - sr.off
	// The gap must at least hold the undelivered payload plus one chunk
	// header per pending chunk; anything less means the table and the
	// stream disagree.
	if skip < int64(sr.cur.len()) {
		return false
	}
	buffered := int64(sr.br.Buffered())
	if skip <= buffered {
		sr.br.Discard(int(skip))
	} else {
		// The source sits buffered bytes ahead of the reader's logical
		// position; seek the difference, then drop the stale buffer.
		if _, err := sr.rs.Seek(skip-buffered, io.SeekCurrent); err != nil {
			return false // source untouched on failure: drain instead
		}
		sr.br.Reset(sr.rs)
	}
	sr.off = next
	sr.cur = nil
	sr.nFooterSkips.Add(1)
	streamM.iFooterSkips.Inc()
	return true
}

// noEOF maps a bare io.EOF to io.ErrUnexpectedEOF: inside a record (or
// before the end marker) running out of bytes is a truncation, and a
// bare io.EOF would masquerade as a clean end of stream. Either way the
// result carries the ErrTruncated kind.
func noEOF(err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return markIOTruncation(err)
}

// payloadReader streams one record's chunked payload. It implements
// io.Reader; bytes flow straight from the underlying stream into the
// caller's buffer while a running CRC is folded per chunk — the reader
// itself buffers nothing beyond the stream's bufio window.
type payloadReader struct {
	sr        *StreamReader
	remaining int    // payload bytes not yet delivered
	chunkLeft int    // bytes left in the current chunk
	crc       uint32 // running CRC of the current chunk
	wantCRC   uint32
	chunkOff  int64 // stream offset of the current chunk's first byte
}

// len reports the payload bytes not yet delivered.
func (r *payloadReader) len() int { return r.remaining }

func (r *payloadReader) Read(p []byte) (int, error) {
	if r.sr.err != nil {
		return 0, r.sr.err
	}
	if r.remaining == 0 {
		return 0, io.EOF
	}
	if len(p) == 0 {
		return 0, nil
	}
	if r.chunkLeft == 0 {
		var ch [8]byte
		if err := r.sr.readFull(ch[:]); err != nil {
			return 0, r.sr.posw("reading chunk header", noEOF(err))
		}
		clen := binary.LittleEndian.Uint32(ch[0:])
		if clen == 0 || clen > maxStreamChunk || uint64(clen) > uint64(r.remaining) {
			return 0, r.sr.posf("chunk length %d outside [1,%d] with %d payload bytes left", clen, maxStreamChunk, r.remaining)
		}
		r.chunkLeft = int(clen)
		r.wantCRC = binary.LittleEndian.Uint32(ch[4:])
		r.crc = 0
		r.chunkOff = r.sr.off
		r.sr.nChunks.Add(1)
		streamM.rChunks.Inc()
	}
	n := len(p)
	if n > r.chunkLeft {
		n = r.chunkLeft
	}
	if err := r.sr.readFull(p[:n]); err != nil {
		return 0, r.sr.posw("reading chunk", noEOF(err))
	}
	r.crc = crc32.Update(r.crc, crc32.IEEETable, p[:n])
	r.chunkLeft -= n
	r.remaining -= n
	r.sr.nPayloadBytes.Add(int64(n))
	streamM.rBytes.Add(uint64(n))
	if r.chunkLeft == 0 && r.crc != r.wantCRC {
		r.sr.nCRCFail.Add(1)
		streamM.rCRCFail.Inc()
		return 0, r.sr.poskf(ErrCRC, "chunk at offset %d CRC mismatch (stored %#x, computed %#x)", r.chunkOff, r.wantCRC, r.crc)
	}
	return n, nil
}

// ReadByte reads one payload byte.
func (r *payloadReader) ReadByte() (byte, error) {
	var b [1]byte
	if err := r.readFull(b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// readFull fills p from the payload, treating a short payload as an
// error.
func (r *payloadReader) readFull(p []byte) error {
	off := 0
	for off < len(p) {
		n, err := r.Read(p[off:])
		if err != nil {
			if err == io.EOF {
				return r.sr.poskf(ErrTruncated, "payload truncated: want %d more bytes", len(p)-off)
			}
			return err
		}
		off += n
	}
	return nil
}

// decodePlaneStream incrementally decodes a plane-framed payload from r
// into out's h×w planes: the plane length table is read and validated
// first (checkLen, when non-nil, vets each entry before any plane data
// arrives), then planes are read and decoded one plane-group at a time
// — the group buffer is the decoder's only transient allocation.
func decodePlaneStream(ctx context.Context, r *payloadReader, out *tensor.Tensor, h, w int, checkLen func(p, n int) error, dec func(p int, data []byte, plane *tensor.Tensor) error) error {
	want := out.Len() / (h * w)
	var head [4]byte
	if err := r.readFull(head[:]); err != nil {
		return fmt.Errorf("codec: reading plane count: %w", err)
	}
	if got := binary.LittleEndian.Uint32(head[:]); got != uint32(want) {
		return fmt.Errorf("codec: payload holds %d planes, shape implies %d", got, want)
	}
	table := getByteScratch(4 * want)
	defer putByteScratch(table)
	if err := r.readFull(table); err != nil {
		return fmt.Errorf("codec: reading plane length table: %w", err)
	}
	lens := make([]int, want)
	var total uint64
	for p := range lens {
		n32 := binary.LittleEndian.Uint32(table[4*p:])
		total += uint64(n32)
		if total > uint64(r.len()) {
			return fmt.Errorf("codec: plane %d payload (%d bytes) overruns record", p, n32)
		}
		lens[p] = int(n32)
		if checkLen != nil {
			if err := checkLen(p, lens[p]); err != nil {
				return err
			}
		}
	}
	if total != uint64(r.len()) {
		return fmt.Errorf("codec: %d trailing bytes after plane payloads", uint64(r.len())-total)
	}
	for p0 := 0; p0 < want; {
		gBytes := lens[p0]
		p1 := p0 + 1
		for p1 < want && gBytes+lens[p1] <= planeGroupBytes {
			gBytes += lens[p1]
			p1++
		}
		buf := getByteScratch(gBytes)
		if err := r.readFull(buf); err != nil {
			putByteScratch(buf)
			return fmt.Errorf("codec: reading plane group [%d,%d): %w", p0, p1, err)
		}
		parts := make([][]byte, p1-p0)
		off := 0
		for i := range parts {
			parts[i] = buf[off : off+lens[p0+i]]
			off += lens[p0+i]
		}
		err := decompressPlaneRange(ctx, out, h, w, p0, parts, dec)
		putByteScratch(buf)
		if err != nil {
			return err
		}
		p0 = p1
	}
	return nil
}
