package codec

import (
	"bytes"
	"context"
	"io"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// withTelemetry runs fn with the global telemetry switch forced to v,
// restoring the previous state after. Tests that need telemetry ON are
// skipped under -tags acc_notelemetry, where it cannot be enabled.
func withTelemetry(t *testing.T, v bool, fn func()) {
	t.Helper()
	prev := telemetry.SetEnabled(v)
	defer telemetry.SetEnabled(prev)
	if v && !telemetry.Enabled() {
		t.Skip("telemetry compiled out (acc_notelemetry)")
	}
	fn()
}

// encodeAll compresses the batch with each spec and returns the
// concatenated container bytes plus a serial stream of the batch.
func encodeAll(t *testing.T, specs []string, x *tensor.Tensor) []byte {
	t.Helper()
	var out bytes.Buffer
	for _, spec := range specs {
		c, err := New(spec)
		if err != nil {
			t.Fatalf("New(%q): %v", spec, err)
		}
		data, err := c.Compress(x)
		if err != nil {
			t.Fatalf("Compress(%q): %v", spec, err)
		}
		out.Write(data)
		sw := NewStreamWriter(&out)
		if err := sw.WriteTensor(context.Background(), c, x); err != nil {
			t.Fatalf("WriteTensor(%q): %v", spec, err)
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return out.Bytes()
}

// TestTelemetryByteNeutral proves instrumentation never changes output
// bytes: the same inputs encode identically with telemetry on and off.
func TestTelemetryByteNeutral(t *testing.T) {
	specs := []string{"dctc:cf=4", "zfp:rate=8", "jpegq:q=50", "sz:eb=1e-3", "lossless:bg=4+fse"}
	x := conformanceBatch()
	var on, off []byte
	withTelemetry(t, true, func() { on = encodeAll(t, specs, x) })
	withTelemetry(t, false, func() { off = encodeAll(t, specs, x) })
	if !bytes.Equal(on, off) {
		t.Fatalf("telemetry changed encoded bytes: %d vs %d bytes", len(on), len(off))
	}
}

// TestCodecMetricsRecorded checks the per-spec counters move by the
// right amounts across a compress/decompress pair.
func TestCodecMetricsRecorded(t *testing.T) {
	withTelemetry(t, true, func() {
		c, err := New("zfp:rate=8")
		if err != nil {
			t.Fatal(err)
		}
		x := mkStreamTensor(2, 16, 16)
		before := telemetry.Default().Snapshot()
		data, err := c.Compress(x)
		if err != nil {
			t.Fatal(err)
		}
		back, _, err := DecodeBytes(data)
		if err != nil {
			t.Fatal(err)
		}
		d := telemetry.Default().Snapshot().Delta(before)
		p := "codec." + c.Spec() + "."
		wantCounters := map[string]uint64{
			p + "compress_calls":   1,
			p + "decompress_calls": 1,
			p + "input_bytes":      uint64(x.SizeBytes()),
			p + "output_bytes":     uint64(back.SizeBytes()),
		}
		for name, want := range wantCounters {
			if got := d.Counters[name]; got != want {
				t.Errorf("%s = %d, want %d", name, got, want)
			}
		}
		if d.Counters[p+"payload_bytes"] == 0 {
			t.Errorf("%spayload_bytes did not move", p)
		}
		for _, h := range []string{p + "compress_ns", p + "decompress_ns"} {
			if d.Histograms[h].Count == 0 {
				t.Errorf("%s recorded no observations", h)
			}
		}
	})
}

// TestCodecErrorCounters checks that a canceled compression lands in
// the errors.canceled counter of its spec.
func TestCodecErrorCounters(t *testing.T) {
	withTelemetry(t, true, func() {
		c, err := New("zfp:rate=8")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		before := telemetry.Default().Snapshot()
		if _, err := c.CompressCtx(ctx, mkStreamTensor(2, 16, 16)); err == nil {
			t.Fatal("canceled compress succeeded")
		}
		d := telemetry.Default().Snapshot().Delta(before)
		name := "codec." + c.Spec() + ".errors.canceled"
		if got := d.Counters[name]; got != 1 {
			t.Errorf("%s = %d, want 1", name, got)
		}
	})
}

// TestStreamWriterStatsSerial checks per-writer stats on the serial path.
func TestStreamWriterStatsSerial(t *testing.T) {
	c, err := New("zfp:rate=8")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	x := mkStreamTensor(3, 16, 16)
	const n = 3
	for i := 0; i < n; i++ {
		if err := sw.WriteTensor(context.Background(), c, x); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	s := sw.Stats()
	if s.RecordsAdmitted != n || s.RecordsEmitted != n {
		t.Errorf("admitted/emitted = %d/%d, want %d/%d", s.RecordsAdmitted, s.RecordsEmitted, n, n)
	}
	if want := int64(n * x.SizeBytes()); s.UncompressedBytes != want {
		t.Errorf("UncompressedBytes = %d, want %d", s.UncompressedBytes, want)
	}
	if s.PayloadBytes <= 0 || s.PayloadBytes >= int64(buf.Len()) {
		t.Errorf("PayloadBytes = %d, want in (0, %d)", s.PayloadBytes, buf.Len())
	}
	if s.InFlightBytes != 0 || s.BudgetBytes != 0 {
		t.Errorf("serial writer reports engine gauges: %+v", s)
	}
}

// TestStreamWriterStatsPipelined checks the engine gauges: budget set,
// in-flight drained to zero at Close, high-water mark recorded.
func TestStreamWriterStatsPipelined(t *testing.T) {
	c, err := New("zfp:rate=8")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	if err := sw.SetConcurrency(2); err != nil {
		t.Fatal(err)
	}
	if err := sw.SetMaxInFlightBytes(1 << 20); err != nil {
		t.Fatal(err)
	}
	x := mkStreamTensor(3, 16, 16)
	const n = 5
	for i := 0; i < n; i++ {
		if err := sw.WriteTensor(context.Background(), c, x); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	s := sw.Stats()
	if s.RecordsAdmitted != n || s.RecordsEmitted != n {
		t.Errorf("admitted/emitted = %d/%d, want %d/%d", s.RecordsAdmitted, s.RecordsEmitted, n, n)
	}
	if s.InFlightBytes != 0 {
		t.Errorf("InFlightBytes = %d after Close, want 0", s.InFlightBytes)
	}
	if s.BudgetBytes != 1<<20 {
		t.Errorf("BudgetBytes = %d, want %d", s.BudgetBytes, 1<<20)
	}
	if s.MaxInFlightBytes < int64(x.SizeBytes()) {
		t.Errorf("MaxInFlightBytes = %d, want >= one record (%d)", s.MaxInFlightBytes, x.SizeBytes())
	}
}

// TestStreamReaderStats checks reader-side counting, including the
// read-ahead hit/miss split and CRC-failure accounting.
func TestStreamReaderStats(t *testing.T) {
	ctx := context.Background()
	c, err := New("zfp:rate=8")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	x := mkStreamTensor(3, 16, 16)
	const n = 4
	for i := 0; i < n; i++ {
		if err := sw.WriteTensor(ctx, c, x); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("plain", func(t *testing.T) {
		sr, err := NewStreamReader(bytes.NewReader(good))
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := sr.Next(); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
			if _, err := sr.Decode(ctx); err != nil {
				t.Fatal(err)
			}
		}
		s := sr.Stats()
		if s.Records != n {
			t.Errorf("Records = %d, want %d", s.Records, n)
		}
		if s.Chunks < n {
			t.Errorf("Chunks = %d, want >= %d", s.Chunks, n)
		}
		if s.PayloadBytes <= 0 || s.PayloadBytes >= int64(len(good)) {
			t.Errorf("PayloadBytes = %d, want in (0, %d)", s.PayloadBytes, len(good))
		}
		if want := int64(n * x.SizeBytes()); s.DecodedBytes != want {
			t.Errorf("DecodedBytes = %d, want %d", s.DecodedBytes, want)
		}
		if s.CRCFailures != 0 {
			t.Errorf("CRCFailures = %d, want 0", s.CRCFailures)
		}
		if s.ReadAheadHits != 0 || s.ReadAheadMisses != 0 {
			t.Errorf("read-ahead counters moved without read-ahead: %+v", s)
		}
	})

	t.Run("readahead", func(t *testing.T) {
		sr, err := NewStreamReader(bytes.NewReader(good))
		if err != nil {
			t.Fatal(err)
		}
		if err := sr.SetReadAhead(ctx, 2); err != nil {
			t.Fatal(err)
		}
		reads := int64(0)
		for {
			if _, err := sr.Next(); err == io.EOF {
				reads++
				break
			} else if err != nil {
				t.Fatal(err)
			}
			reads++
			if _, err := sr.Decode(ctx); err != nil {
				t.Fatal(err)
			}
		}
		s := sr.Stats()
		if s.Records != n {
			t.Errorf("Records = %d, want %d", s.Records, n)
		}
		if got := s.ReadAheadHits + s.ReadAheadMisses; got != reads {
			t.Errorf("hits+misses = %d, want %d (one per Next)", got, reads)
		}
	})

	t.Run("crc-failure", func(t *testing.T) {
		data := append([]byte(nil), good...)
		data[len(data)-2] ^= 0xFF
		sr, err := NewStreamReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		var decodeErr error
		for {
			if _, err := sr.Next(); err != nil {
				if err != io.EOF {
					decodeErr = err
				}
				break
			}
			if _, err := sr.Decode(ctx); err != nil {
				decodeErr = err
				break
			}
		}
		if decodeErr == nil {
			t.Fatal("corrupted stream read cleanly")
		}
		if s := sr.Stats(); s.CRCFailures != 1 {
			t.Errorf("CRCFailures = %d, want 1", s.CRCFailures)
		}
	})
}

// TestStreamTraceLifecycle checks every record leaves admitted →
// encoded → emitted events in the trace ring, on both the serial and
// the pipelined path.
func TestStreamTraceLifecycle(t *testing.T) {
	withTelemetry(t, true, func() {
		prevTrace := telemetry.SetTraceEnabled(true)
		defer telemetry.SetTraceEnabled(prevTrace)
		for _, conc := range []int{0, 3} {
			telemetry.ResetTrace()
			c, err := New("zfp:rate=8")
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			sw := NewStreamWriter(&buf)
			if conc > 0 {
				if err := sw.SetConcurrency(conc); err != nil {
					t.Fatal(err)
				}
			}
			x := mkStreamTensor(3, 16, 16)
			const n = 4
			for i := 0; i < n; i++ {
				if err := sw.WriteTensor(context.Background(), c, x); err != nil {
					t.Fatal(err)
				}
			}
			if err := sw.Close(); err != nil {
				t.Fatal(err)
			}
			phases := map[int64]map[string]bool{}
			for _, ev := range telemetry.TraceEvents() {
				if phases[ev.Record] == nil {
					phases[ev.Record] = map[string]bool{}
				}
				phases[ev.Record][ev.Phase] = true
			}
			for rec := int64(1); rec <= n; rec++ {
				for _, ph := range []string{"admitted", "encoded", "emitted"} {
					if !phases[rec][ph] {
						t.Errorf("conc=%d: record %d missing %q event (events: %v)", conc, rec, ph, phases[rec])
					}
				}
			}
		}
	})
}

// TestInstrumentedRoundTripIntoAllocs is the alloc-regression gate for
// the fused hot path WITH telemetry explicitly enabled: metric handles
// are pre-resolved, so recording must not allocate.
func TestInstrumentedRoundTripIntoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	withTelemetry(t, true, func() {
		prev := SetMaxWorkers(1)
		defer SetMaxWorkers(prev)
		x := conformanceBatch()
		for _, spec := range []string{"zfp:rate=8", "jpegq:q=50"} {
			c, err := New(spec)
			if err != nil {
				t.Fatal(err)
			}
			out := tensor.New(x.Shape()...)
			if _, err := RoundTripInto(c, out, x); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(20, func() {
				if _, err := RoundTripInto(c, out, x); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("%s: RoundTripInto with telemetry enabled allocates %.1f/op, want 0", spec, allocs)
			}
		}
	})
}

// TestStreamEngineTelemetryAllocNeutral is the alloc-regression gate
// for the pipelined stream engine: a full write run with telemetry
// enabled must allocate no more than the same run with it disabled
// (the engine itself allocates — jobs, channels, goroutines — but the
// instrumentation must add zero).
func TestStreamEngineTelemetryAllocNeutral(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	prevOn := telemetry.SetEnabled(true)
	compiledIn := telemetry.Enabled()
	telemetry.SetEnabled(prevOn)
	if !compiledIn {
		t.Skip("telemetry compiled out (acc_notelemetry)")
	}
	x := mkStreamTensor(3, 16, 16)
	run := func() {
		c, err := New("zfp:rate=8")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		sw := NewStreamWriter(&buf)
		if err := sw.SetConcurrency(2); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			if err := sw.WriteTensor(context.Background(), c, x); err != nil {
				t.Fatal(err)
			}
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	measure := func(on bool) float64 {
		prev := telemetry.SetEnabled(on)
		defer telemetry.SetEnabled(prev)
		run() // warm pools and the engine's lazy setup
		return testing.AllocsPerRun(10, run)
	}
	off := measure(false)
	on := measure(true)
	// Goroutine scheduling makes engine runs noisy by a few allocations;
	// the gate is that instrumentation adds nothing beyond that noise.
	const slack = 4
	if on > off+slack {
		t.Errorf("telemetry adds allocations to the stream engine: on=%.1f off=%.1f", on, off)
	}
}
