package codec

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/tensor"
)

// writeIndexedStream writes every streamCases record with the index
// footer enabled, returning the bytes and the expected decodes (via the
// bit-identical v1 container path, as in TestStreamRoundTrip).
func writeIndexedStream(t *testing.T, parallel bool) ([]byte, []*tensor.Tensor) {
	t.Helper()
	ctx := context.Background()
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	sw.SetChunkSize(4 << 10)
	if err := sw.SetIndex(true); err != nil {
		t.Fatalf("SetIndex: %v", err)
	}
	if parallel {
		if err := sw.SetConcurrency(4); err != nil {
			t.Fatalf("SetConcurrency: %v", err)
		}
	}
	want := make([]*tensor.Tensor, len(streamCases))
	for i, tc := range streamCases {
		c, err := New(tc.spec)
		if err != nil {
			t.Fatalf("New(%q): %v", tc.spec, err)
		}
		x := mkStreamTensor(tc.shape...)
		if err := sw.WriteTensor(ctx, c, x); err != nil {
			t.Fatalf("WriteTensor(%q): %v", tc.spec, err)
		}
		data, err := c.Compress(x)
		if err != nil {
			t.Fatalf("Compress(%q): %v", tc.spec, err)
		}
		if want[i], _, err = DecodeBytes(data); err != nil {
			t.Fatalf("DecodeBytes(%q): %v", tc.spec, err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes(), want
}

func requireSameTensor(t *testing.T, what string, got, want *tensor.Tensor) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d elements, want %d", what, got.Len(), want.Len())
	}
	for j, v := range got.Data() {
		if v != want.Data()[j] {
			t.Fatalf("%s: value %d = %g, want %g", what, j, v, want.Data()[j])
		}
	}
}

// TestIndexFooterRoundTrip: an indexed stream decodes identically
// through the sequential reader (which verifies and skips the footer)
// and loads — not rebuilds — through OpenIndexedStream, whose seeks
// reproduce the container-path decodes bit for bit in any order.
func TestIndexFooterRoundTrip(t *testing.T) {
	ctx := context.Background()
	data, want := writeIndexedStream(t, false)

	// Sequential pass: footer skipped, records identical.
	sr, err := NewStreamReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewStreamReader: %v", err)
	}
	for i := range streamCases {
		if _, err := sr.Next(); err != nil {
			t.Fatalf("record %d: Next: %v", i, err)
		}
		out, err := sr.Decode(ctx)
		if err != nil {
			t.Fatalf("record %d: Decode: %v", i, err)
		}
		requireSameTensor(t, "sequential record", out, want[i])
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("Next after last record: %v, want io.EOF", err)
	}

	// Random-access pass, reverse order.
	ix, err := OpenIndexedStream(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatalf("OpenIndexedStream: %v", err)
	}
	if ix.Rebuilt() {
		t.Fatal("footer present but index was rebuilt")
	}
	if ix.Len() != len(streamCases) {
		t.Fatalf("Len() = %d, want %d", ix.Len(), len(streamCases))
	}
	for i := ix.Len() - 1; i >= 0; i-- {
		hdr, err := ix.Header(i)
		if err != nil {
			t.Fatalf("Header(%d): %v", i, err)
		}
		if hdr.Elems() != want[i].Len() {
			t.Fatalf("Header(%d) claims %d elements, want %d", i, hdr.Elems(), want[i].Len())
		}
		out, err := ix.DecodeAt(ctx, i)
		if err != nil {
			t.Fatalf("DecodeAt(%d): %v", i, err)
		}
		requireSameTensor(t, "seeked record", out, want[i])
	}
	if _, err := ix.Header(ix.Len()); err == nil {
		t.Fatal("Header past the end did not error")
	}
	if _, err := ix.DecodeAt(ctx, -1); err == nil {
		t.Fatal("DecodeAt(-1) did not error")
	}
}

// TestIndexedParallelWriterByteIdentical: the pipelined writer with the
// index enabled produces byte-identical output to the serial writer —
// offsets accumulated through the emitter goroutine match the serial
// path's exactly.
func TestIndexedParallelWriterByteIdentical(t *testing.T) {
	serial, _ := writeIndexedStream(t, false)
	parallel, _ := writeIndexedStream(t, true)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel indexed stream (%d bytes) differs from serial (%d bytes)", len(parallel), len(serial))
	}
}

// TestIndexedMatchesSequential is the conformance gate check.sh runs:
// the indexed and sequential decodes of one stream must be
// tensor-identical, through both DecodeAt and a concurrent DecodeRange.
func TestIndexedMatchesSequential(t *testing.T) {
	ctx := context.Background()
	data, want := writeIndexedStream(t, false)
	ix, err := OpenIndexedStream(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatalf("OpenIndexedStream: %v", err)
	}
	if err := ix.SetConcurrency(4); err != nil {
		t.Fatalf("SetConcurrency: %v", err)
	}
	outs, err := ix.DecodeRange(ctx, 0, ix.Len())
	if err != nil {
		t.Fatalf("DecodeRange: %v", err)
	}
	if len(outs) != len(want) {
		t.Fatalf("DecodeRange returned %d tensors, want %d", len(outs), len(want))
	}
	for i := range outs {
		requireSameTensor(t, "ranged record", outs[i], want[i])
	}
	// Sub-range, serial workers.
	if err := ix.SetConcurrency(1); err != nil {
		t.Fatal(err)
	}
	sub, err := ix.DecodeRange(ctx, 1, 3)
	if err != nil {
		t.Fatalf("DecodeRange(1,3): %v", err)
	}
	requireSameTensor(t, "sub-range record 1", sub[0], want[1])
	requireSameTensor(t, "sub-range record 2", sub[1], want[2])
	if empty, err := ix.DecodeRange(ctx, 2, 2); err != nil || empty != nil {
		t.Fatalf("empty range: %v tensors, err %v", empty, err)
	}
	if _, err := ix.DecodeRange(ctx, 3, 1); err == nil {
		t.Fatal("inverted range did not error")
	}
}

// countingReaderAt wraps an io.ReaderAt and counts calls and bytes.
type countingReaderAt struct {
	r     io.ReaderAt
	reads atomic.Int64
	bytes atomic.Int64
}

func (c *countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := c.r.ReadAt(p, off)
	c.reads.Add(1)
	c.bytes.Add(int64(n))
	return n, err
}

// TestIndexedSeekIsO1 proves the acceptance criterion: on a
// 120-record stream, opening the index costs a bounded tail read and
// DecodeAt(i) reads O(record) bytes — no full-prefix scan.
func TestIndexedSeekIsO1(t *testing.T) {
	ctx := context.Background()
	const records = 120
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	if err := sw.SetIndex(true); err != nil {
		t.Fatal(err)
	}
	c, err := New("sz:eb=1e-3")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if err := sw.WriteTensor(ctx, c, mkStreamTensor(1, 1, 32, 32)); err != nil {
			t.Fatalf("WriteTensor %d: %v", i, err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if len(data) < 100<<10 {
		t.Fatalf("stream only %d bytes; too small for the O(1) bound to mean anything", len(data))
	}

	cr := &countingReaderAt{r: bytes.NewReader(data)}
	ix, err := OpenIndexedStream(cr, int64(len(data)))
	if err != nil {
		t.Fatalf("OpenIndexedStream: %v", err)
	}
	if ix.Rebuilt() {
		t.Fatal("footer present but index was rebuilt")
	}
	if ix.Len() != records {
		t.Fatalf("Len() = %d, want %d", ix.Len(), records)
	}
	// Open cost: the 8-byte header probe, the 13-byte tail probe, and
	// the footer itself — not the records.
	footerBudget := int64(records*64 + 1024)
	if got := cr.bytes.Load(); got > footerBudget {
		t.Fatalf("open read %d bytes, budget %d (footer + probes only)", got, footerBudget)
	}
	if got := cr.reads.Load(); got > 4 {
		t.Fatalf("open issued %d reads, want at most 4", got)
	}

	// Seek cost, first and last record alike: proportional to one
	// record, far below the stream size.
	perRecord := int64(len(data)/records) + 8<<10
	for _, i := range []int{0, records / 2, records - 1} {
		cr.reads.Store(0)
		cr.bytes.Store(0)
		if _, err := ix.DecodeAt(ctx, i); err != nil {
			t.Fatalf("DecodeAt(%d): %v", i, err)
		}
		if got := cr.bytes.Load(); got > perRecord {
			t.Fatalf("DecodeAt(%d) read %d bytes, budget %d (stream is %d)", i, got, perRecord, len(data))
		}
	}
}

// TestIndexRebuildFallback: a footer-less stream and a stream whose
// footer CRC is corrupted both open via the rebuild walk and decode
// identically to the footer-loaded index.
func TestIndexRebuildFallback(t *testing.T) {
	ctx := context.Background()
	data, want := writeIndexedStream(t, false)

	// Footer-less: the plain writer's output.
	var plain bytes.Buffer
	sw := NewStreamWriter(&plain)
	sw.SetChunkSize(4 << 10)
	for _, tc := range streamCases {
		c, err := New(tc.spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.WriteTensor(ctx, c, mkStreamTensor(tc.shape...)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	ix, err := OpenIndexedStream(bytes.NewReader(plain.Bytes()), int64(plain.Len()))
	if err != nil {
		t.Fatalf("OpenIndexedStream(footer-less): %v", err)
	}
	if !ix.Rebuilt() {
		t.Fatal("footer-less stream did not report a rebuilt index")
	}
	if ix.Len() != len(streamCases) {
		t.Fatalf("rebuilt Len() = %d, want %d", ix.Len(), len(streamCases))
	}
	for i := range streamCases {
		out, err := ix.DecodeAt(ctx, i)
		if err != nil {
			t.Fatalf("rebuilt DecodeAt(%d): %v", i, err)
		}
		requireSameTensor(t, "rebuilt-index record", out, want[i])
	}

	// Corrupt footer CRC: the loaded index is rejected, the rebuild
	// serves the (untouched) records.
	mut := append([]byte(nil), data...)
	s := binary.LittleEndian.Uint32(mut[len(mut)-9:])
	footOff := len(mut) - 1 - int(s)
	n := int(binary.LittleEndian.Uint32(mut[footOff+1:]))
	mut[footOff+5+n] ^= 0xFF // low CRC byte
	ix2, err := OpenIndexedStream(bytes.NewReader(mut), int64(len(mut)))
	if err != nil {
		t.Fatalf("OpenIndexedStream(corrupt footer CRC): %v", err)
	}
	if !ix2.Rebuilt() {
		t.Fatal("corrupt-CRC footer was not rejected in favor of a rebuild")
	}
	for i := range streamCases {
		out, err := ix2.DecodeAt(ctx, i)
		if err != nil {
			t.Fatalf("corrupt-footer DecodeAt(%d): %v", i, err)
		}
		requireSameTensor(t, "corrupt-footer record", out, want[i])
	}

	// Truncated mid-stream (no end marker): the rebuild must fail with a
	// truncation, not loop or misindex.
	if _, err := OpenIndexedStream(bytes.NewReader(data[:len(data)/2]), int64(len(data)/2)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated stream: err %v, want ErrTruncated", err)
	}
}

// spliceFooter replaces a pristine indexed stream's footer with one
// encoding the given entries, recomputing all footer framing.
func spliceFooter(t *testing.T, data []byte, entries []indexEntry) []byte {
	t.Helper()
	s := binary.LittleEndian.Uint32(data[len(data)-9:])
	footOff := len(data) - 1 - int(s)
	foot, err := encodeIndexFooter(entries)
	if err != nil {
		t.Fatalf("encodeIndexFooter: %v", err)
	}
	out := append([]byte(nil), data[:footOff]...)
	out = append(out, foot...)
	return append(out, recEnd)
}

// TestForgedIndexEntries: index entries that lie about the stream —
// under a perfectly valid footer CRC — must never produce a wrong
// tensor. Entries pointing at non-record bytes fail the seek-time
// header re-verification; entries pointing at a real record but
// claiming a different spec/shape/length fail the cross-check with
// ErrIndex; entries that fail static validation are discarded wholesale
// in favor of a rebuild.
func TestForgedIndexEntries(t *testing.T) {
	ctx := context.Background()
	data, want := writeIndexedStream(t, false)
	pristine, err := OpenIndexedStream(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	real := append([]indexEntry(nil), pristine.entries...)

	forge := func(mutate func(es []indexEntry)) *IndexedStream {
		t.Helper()
		es := make([]indexEntry, len(real))
		for i, e := range real {
			es[i] = e
			es[i].shape = append([]int(nil), e.shape...)
		}
		mutate(es)
		mut := spliceFooter(t, data, es)
		ix, err := OpenIndexedStream(bytes.NewReader(mut), int64(len(mut)))
		if err != nil {
			t.Fatalf("forged stream failed to open: %v", err)
		}
		return ix
	}

	// Offset into another record's payload: the bytes there are not a
	// CRC-valid record header.
	ix := forge(func(es []indexEntry) { es[1].off = real[0].off + 40 })
	if ix.Rebuilt() {
		t.Fatal("statically plausible forged footer unexpectedly rejected at load")
	}
	out, err := ix.DecodeAt(ctx, 1)
	if err == nil {
		requireSameTensor(t, "forged-offset record", out, want[1]) // fails: wrong tensor got through
		t.Fatal("forged offset decoded without error")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("offset")) {
		t.Fatalf("forged-offset error lacks a stream offset: %v", err)
	}
	// Untouched entries still decode.
	if out, err := ix.DecodeAt(ctx, 0); err != nil {
		t.Fatalf("DecodeAt(0) beside a forged sibling: %v", err)
	} else {
		requireSameTensor(t, "intact sibling", out, want[0])
	}

	// Offset of a different (real) record: header CRC passes, but the
	// entry's spec/shape disagree with the record found there.
	ix = forge(func(es []indexEntry) { es[0].off = real[1].off })
	// Static validation may or may not catch this (offsets must stay
	// increasing); entry 0 pointing at record 1 keeps order, so the
	// forgery survives to seek time.
	if !ix.Rebuilt() {
		_, err := ix.DecodeAt(ctx, 0)
		if !errors.Is(err, ErrIndex) {
			t.Fatalf("cross-record forgery: err %v, want ErrIndex", err)
		}
		if ErrorKind(err) != "index" {
			t.Fatalf("cross-record forgery: ErrorKind %q, want \"index\"", ErrorKind(err))
		}
	}

	// Wrong payload length against the right record.
	ix = forge(func(es []indexEntry) { es[2].payLen += 4 })
	if !ix.Rebuilt() {
		if _, err := ix.DecodeAt(ctx, 2); !errors.Is(err, ErrIndex) {
			t.Fatalf("forged payload length: err %v, want ErrIndex", err)
		}
	}

	// Wrong shape against the right record.
	ix = forge(func(es []indexEntry) { es[0].shape[0]++ })
	if !ix.Rebuilt() {
		if _, err := ix.DecodeAt(ctx, 0); !errors.Is(err, ErrIndex) {
			t.Fatalf("forged shape: err %v, want ErrIndex", err)
		}
	}

	// Statically invalid table (offsets out of order): rejected at load,
	// rebuilt, and every record still decodes correctly.
	ix = forge(func(es []indexEntry) { es[0].off, es[1].off = es[1].off, es[0].off })
	if !ix.Rebuilt() {
		t.Fatal("out-of-order offsets accepted at load")
	}
	for i := range streamCases {
		out, err := ix.DecodeAt(ctx, i)
		if err != nil {
			t.Fatalf("rebuilt-after-forgery DecodeAt(%d): %v", i, err)
		}
		requireSameTensor(t, "rebuilt-after-forgery record", out, want[i])
	}
}

// TestHeaderShapeNoAliasing: the Header returned by Next must not share
// its Shape slice with reader-internal state — a caller mutating it
// cannot redirect the subsequent Decode, in either reading mode.
func TestHeaderShapeNoAliasing(t *testing.T) {
	ctx := context.Background()
	for _, readAhead := range []bool{false, true} {
		name := "plain"
		if readAhead {
			name = "readahead"
		}
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			sw := NewStreamWriter(&buf)
			c, err := New("sz:eb=1e-3")
			if err != nil {
				t.Fatal(err)
			}
			x := mkStreamTensor(3, 5, 7)
			y := mkStreamTensor(64)
			if err := sw.WriteTensor(ctx, c, x); err != nil {
				t.Fatal(err)
			}
			if err := sw.WriteTensor(ctx, c, y); err != nil {
				t.Fatal(err)
			}
			if err := sw.Close(); err != nil {
				t.Fatal(err)
			}
			sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if readAhead {
				if err := sr.SetReadAhead(ctx, 2); err != nil {
					t.Fatal(err)
				}
			}
			hdr, err := sr.Next()
			if err != nil {
				t.Fatal(err)
			}
			held := append([]int(nil), hdr.Shape...)
			hdr.Shape[0] = 1 << 20 // hostile caller scribbles on the header
			out, err := sr.Decode(ctx)
			if err != nil {
				t.Fatalf("Decode after header mutation: %v", err)
			}
			if out.Len() != 3*5*7 {
				t.Fatalf("decode redirected by caller-mutated header: %d elements", out.Len())
			}
			// The second Next must not scribble on the first header either.
			hdr2, err := sr.Next()
			if err != nil {
				t.Fatal(err)
			}
			if hdr.Shape[0] != 1<<20 {
				t.Fatalf("later Next mutated caller-held shape: %v", hdr.Shape)
			}
			_ = held
			if len(hdr2.Shape) != 1 || hdr2.Shape[0] != 64 {
				t.Fatalf("second header shape %v, want [64]", hdr2.Shape)
			}
			if _, err := sr.Decode(ctx); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSkipUnderReadAheadStats: skipping prefetched records keeps the
// reader's statistics consistent — every Next call that touched the
// queue counts as exactly one hit or miss, prefetcher-side record
// counts are exact, and nothing double-counts or wedges. Run with -race
// (the suite default) this also exercises the consumer/prefetcher
// boundary.
func TestSkipUnderReadAheadStats(t *testing.T) {
	ctx := context.Background()
	const records = 8
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	c, err := New("sz:eb=1e-3")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if err := sw.WriteTensor(ctx, c, mkStreamTensor(64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.SetReadAhead(ctx, 2); err != nil {
		t.Fatal(err)
	}
	nexts := 0
	for i := 0; ; i++ {
		_, err := sr.Next()
		if err == io.EOF {
			nexts++ // the EOF-delivering Next still polls the queue
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		nexts++
		if i%2 == 0 {
			if err := sr.Skip(); err != nil {
				t.Fatalf("Skip(%d): %v", i, err)
			}
		} else {
			if _, err := sr.Decode(ctx); err != nil {
				t.Fatalf("Decode(%d): %v", i, err)
			}
		}
	}
	stats := sr.Stats()
	if stats.Records != records {
		t.Fatalf("Records = %d, want %d", stats.Records, records)
	}
	if got := stats.ReadAheadHits + stats.ReadAheadMisses; got != int64(nexts) {
		t.Fatalf("hits(%d)+misses(%d) = %d, want one per Next = %d",
			stats.ReadAheadHits, stats.ReadAheadMisses, got, nexts)
	}
	// Post-EOF calls must not move the counters.
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("Next after EOF: %v", err)
	}
	if err := sr.Skip(); err != io.EOF {
		t.Fatalf("Skip after EOF: %v", err)
	}
	after := sr.Stats()
	if after.ReadAheadHits+after.ReadAheadMisses != stats.ReadAheadHits+stats.ReadAheadMisses {
		t.Fatal("post-EOF Next/Skip moved the hit/miss counters")
	}
}

// forgeEntryOffset shifts index entry idx's offset field by delta and
// recomputes the footer CRC: a structurally valid footer that lies
// about where a record starts.
func forgeEntryOffset(tb testing.TB, data []byte, idx int, delta uint64) []byte {
	tb.Helper()
	mut := append([]byte(nil), data...)
	s := binary.LittleEndian.Uint32(mut[len(mut)-9:])
	footOff := len(mut) - 1 - int(s)
	n := int(binary.LittleEndian.Uint32(mut[footOff+1:]))
	p := footOff + 5 + 4 // past marker, body length, entry count
	for i := 0; i < idx; i++ {
		specLen := int(binary.LittleEndian.Uint16(mut[p+17:]))
		rank := int(mut[p+19+specLen])
		p += 19 + specLen + 1 + 4*rank
	}
	off := binary.LittleEndian.Uint64(mut[p:])
	binary.LittleEndian.PutUint64(mut[p:], off+delta)
	binary.LittleEndian.PutUint32(mut[footOff+5+n:], crc32.ChecksumIEEE(mut[footOff:footOff+5+n]))
	return mut
}

// TestFooterAwareSkip: with a seekable source and an index footer, Skip
// seeks past payloads in O(1) — the skipped chunks are never read, so
// they stay out of the chunk/byte stats — while unseekable sources keep
// the CRC-verifying drain. A forged footer may cost a fast skip or kill
// the stream with a position-bearing error, but never yields wrong
// output.
func TestFooterAwareSkip(t *testing.T) {
	ctx := context.Background()
	data, want := writeIndexedStream(t, false)

	type result struct {
		outs  map[int]*tensor.Tensor
		stats StreamReaderStats
	}
	run := func(t *testing.T, r io.Reader) result {
		t.Helper()
		sr, err := NewStreamReader(r)
		if err != nil {
			t.Fatal(err)
		}
		res := result{outs: map[int]*tensor.Tensor{}}
		for i := 0; ; i++ {
			_, err := sr.Next()
			if err == io.EOF {
				if i != len(want) {
					t.Fatalf("reader saw %d records, want %d", i, len(want))
				}
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if i%2 == 0 {
				if err := sr.Skip(); err != nil {
					t.Fatalf("Skip(%d): %v", i, err)
				}
				continue
			}
			out, err := sr.Decode(ctx)
			if err != nil {
				t.Fatalf("Decode(%d): %v", i, err)
			}
			res.outs[i] = out
		}
		res.stats = sr.Stats()
		return res
	}

	seek := run(t, bytes.NewReader(data))                       // seekable: tail probe loads the footer
	drain := run(t, struct{ io.Reader }{bytes.NewReader(data)}) // unseekable: sequential drain

	skips := int64((len(want) + 1) / 2)
	if seek.stats.FooterSkips != skips {
		t.Errorf("seekable reader FooterSkips = %d, want %d", seek.stats.FooterSkips, skips)
	}
	if drain.stats.FooterSkips != 0 {
		t.Errorf("unseekable reader FooterSkips = %d, want 0", drain.stats.FooterSkips)
	}
	// Stats exactness: the drain reads (and counts) every chunk of every
	// record; the seek path must count only the decoded records' chunks.
	if drain.stats.Chunks < int64(len(want)) {
		t.Fatalf("drain path saw %d chunks across %d records", drain.stats.Chunks, len(want))
	}
	if seek.stats.Chunks >= drain.stats.Chunks {
		t.Errorf("seek path counted %d chunks, drain %d: skipped chunks leaked into the stats", seek.stats.Chunks, drain.stats.Chunks)
	}
	if seek.stats.PayloadBytes >= drain.stats.PayloadBytes {
		t.Errorf("seek path counted %d payload bytes, drain %d", seek.stats.PayloadBytes, drain.stats.PayloadBytes)
	}
	if seek.stats.Records != int64(len(want)) || drain.stats.Records != int64(len(want)) {
		t.Errorf("Records = %d (seek) / %d (drain), want %d", seek.stats.Records, drain.stats.Records, len(want))
	}
	// Decodes after a seek-skip are unaffected.
	for i, out := range seek.outs {
		requireSameTensor(t, fmt.Sprintf("record %d after seek-skip", i), out, want[i])
		requireSameTensor(t, fmt.Sprintf("record %d drain/seek agreement", i), out, drain.outs[i])
	}

	// Forged footer, case 1: the entry for the record being skipped lies
	// about its own offset. The marker-offset cross-check rejects the
	// seek and the CRC-verifying drain takes over; everything decodes.
	f0 := run(t, bytes.NewReader(forgeEntryOffset(t, data, 0, 3)))
	if f0.stats.FooterSkips != skips-1 {
		t.Errorf("forged-entry0 FooterSkips = %d, want %d (record 0 must fall back to the drain)", f0.stats.FooterSkips, skips-1)
	}
	for i, out := range f0.outs {
		requireSameTensor(t, fmt.Sprintf("record %d under forged entry0", i), out, want[i])
	}

	// Forged footer, case 2: the *next* record's entry lies, so the seek
	// lands inside record 1's header. The next read must die on a
	// position-bearing framing error — wrong output is not an option.
	sr, err := NewStreamReader(bytes.NewReader(forgeEntryOffset(t, data, 1, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); err != nil {
		t.Fatal(err)
	}
	if err := sr.Skip(); err != nil { // the seek itself cannot tell
		t.Fatalf("Skip toward a forged target: %v", err)
	}
	if _, err := sr.Next(); err == nil || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("Next after a forged-offset seek: err %v, want a position-bearing error", err)
	}
}

// TestDecodeRangeCancellation: a cancelled context aborts the fan-out
// with a cancellation-kinded error.
func TestDecodeRangeCancellation(t *testing.T) {
	data, _ := writeIndexedStream(t, false)
	ix, err := OpenIndexedStream(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.DecodeRange(ctx, 0, ix.Len()); ErrorKind(err) != "canceled" {
		t.Fatalf("cancelled DecodeRange: err %v (kind %q), want canceled", err, ErrorKind(err))
	}
}

// TestStreamShapeOverflowRejected: a record header whose dims product
// overflows 32-bit arithmetic (but carries a valid CRC) must be
// rejected by the element bound, which accumulates in uint64 exactly so
// this cannot wrap on 386.
func TestStreamShapeOverflowRejected(t *testing.T) {
	spec := "sz:eb=1e-3"
	var buf bytes.Buffer
	buf.Write([]byte{0x41, 0x43, 0x43, 0x46, 2, 0, 0, 0})
	hdr := []byte{recTensor}
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(spec)))
	hdr = append(hdr, spec...)
	hdr = append(hdr, 2) // rank
	hdr = binary.LittleEndian.AppendUint32(hdr, 1<<24)
	hdr = binary.LittleEndian.AppendUint32(hdr, 1<<24) // product 2⁴⁸: wraps int32
	hdr = binary.LittleEndian.AppendUint32(hdr, 0)     // payload length
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(hdr))
	buf.Write(hdr)
	buf.WriteByte(recEnd)
	sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sr.Next()
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("exceeds")) {
		t.Fatalf("overflowing shape: err %v, want element-bound rejection", err)
	}
}

// TestSetIndexLocking: SetIndex after the first record is refused, and
// a writer with the index off stays byte-identical to the pre-index
// format (the golden fixture pins this globally; here we pin the local
// writer object's behavior).
func TestSetIndexLocking(t *testing.T) {
	ctx := context.Background()
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	c, err := New("sz:eb=1e-3")
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteTensor(ctx, c, mkStreamTensor(64)); err != nil {
		t.Fatal(err)
	}
	if err := sw.SetIndex(true); err == nil {
		t.Fatal("SetIndex after the first record did not error")
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	// No footer: the tail is just the last chunk and the end marker.
	data := buf.Bytes()
	if len(data) >= 13 && binary.LittleEndian.Uint32(data[len(data)-5:]) == indexMagic {
		t.Fatal("index footer written without SetIndex")
	}
}
