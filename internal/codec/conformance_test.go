package codec

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/tensor"
)

// conformanceSpecs is every registered family/variant the suite
// round-trips, with a minimum reconstruction PSNR (dB) on the smooth
// deterministic batch and an optional absolute error bound.
var conformanceSpecs = []struct {
	spec    string
	minPSNR float64
	maxErr  float64 // 0 = no pointwise bound
}{
	{"dctc:cf=4", 20, 0},
	{"dctc:cf=4,sg", 15, 0},
	{"dctc:cf=4,s=2", 20, 0},
	{"dctc:cf=3,transform=zfp4", 15, 0},
	{"zfp:rate=8", 30, 0},
	{"sz:eb=1e-3", 40, 1e-3},
	{"jpegq:q=50", 20, 0},
	// Staged variants: the entropy stage must be error-transparent, so
	// each inherits its base spec's floors.
	{"dctc:cf=4+fse", 20, 0},
	{"zfp:rate=8+fse", 30, 0},
	{"sz:eb=1e-3+fse", 40, 1e-3},
	{"jpegq:q=50+fse", 20, 0},
	{"dctc:cf=4+huf", 20, 0},
	{"zfp:rate=8+huf", 30, 0},
	{"sz:eb=1e-3+huf", 40, 1e-3},
	{"jpegq:q=50+huf", 20, 0},
	// Bit-exact family: any finite floor holds; 140 dB is far above
	// every lossy codec and PSNR may legitimately return +Inf here.
	{"lossless:bg=4+huf", 140, 0},
}

// conformanceBatch builds the deterministic smooth [2,3,16,16] batch
// (values in [0,1]) every spec must round-trip: low-frequency sinusoids
// so the lossy transforms retain most of the energy, plus a small
// deterministic ripple so no plane is constant.
func conformanceBatch() *tensor.Tensor {
	const bd, ch, n = 2, 3, 16
	x := tensor.New(bd, ch, n, n)
	d := x.Data()
	idx := 0
	for s := 0; s < bd; s++ {
		for c := 0; c < ch; c++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					v := 0.5 +
						0.3*math.Sin(2*math.Pi*float64(i)/float64(n)+float64(s)) +
						0.15*math.Cos(2*math.Pi*float64(j)/float64(n)+float64(c)) +
						0.02*math.Sin(float64(i*j)/7)
					if v < 0 {
						v = 0
					}
					if v > 1 {
						v = 1
					}
					d[idx] = float32(v)
					idx++
				}
			}
		}
	}
	return x
}

// TestConformanceRoundTrip round-trips the same deterministic batch
// through every registered spec, asserting shape fidelity, per-codec
// error bounds, and container re-decodability from the bytes alone.
func TestConformanceRoundTrip(t *testing.T) {
	x := conformanceBatch()
	for _, tc := range conformanceSpecs {
		tc := tc
		t.Run(tc.spec, func(t *testing.T) {
			t.Parallel()
			c, err := New(tc.spec)
			if err != nil {
				t.Fatal(err)
			}

			// Container path: Compress → self-describing Decode.
			data, err := c.Compress(x)
			if err != nil {
				t.Fatal(err)
			}
			back, decoded, err := DecodeBytes(data)
			if err != nil {
				t.Fatal(err)
			}
			if decoded.Spec() != c.Spec() {
				t.Errorf("container decoded with spec %q, compressed with %q", decoded.Spec(), c.Spec())
			}
			if !back.SameShape(x) {
				t.Fatalf("shape %v, want %v", back.Shape(), x.Shape())
			}
			psnr := metrics.PSNR(x, back)
			if psnr < tc.minPSNR {
				t.Errorf("PSNR %.2f dB below conformance floor %.2f dB", psnr, tc.minPSNR)
			}
			if tc.maxErr > 0 {
				if maxe := metrics.MaxError(x, back); maxe > tc.maxErr*(1+1e-6) {
					t.Errorf("max error %g exceeds bound %g", maxe, tc.maxErr)
				}
			}

			// Re-decodability: the same container decodes again (the
			// reader must not consume shared state).
			again, _, err := DecodeBytes(data)
			if err != nil {
				t.Fatalf("second decode: %v", err)
			}
			if !again.Equal(back) {
				t.Error("second decode differs from first")
			}

			// Instance Decompress agrees with registry Decode.
			viaInstance, err := c.Decompress(data)
			if err != nil {
				t.Fatal(err)
			}
			if !viaInstance.Equal(back) {
				t.Error("Codec.Decompress differs from registry Decode")
			}

			// RoundTrip (which may take a serialization-free fast path)
			// matches the container path.
			rt, bytes, err := c.RoundTrip(x)
			if err != nil {
				t.Fatal(err)
			}
			if !rt.SameShape(x) {
				t.Fatalf("RoundTrip shape %v", rt.Shape())
			}
			if bytes <= 0 || bytes >= x.SizeBytes() {
				t.Errorf("RoundTrip payload %d bytes vs original %d", bytes, x.SizeBytes())
			}
			if !rt.AllClose(back, 1e-5) {
				t.Errorf("RoundTrip fast path diverges from container path (max diff %g)", rt.MaxAbsDiff(back))
			}
		})
	}
}

// TestStageBackendEquivalence pairs "+fse" against "+huf" across all
// five families: both stages are lossless payload transforms, so the
// decoded tensors must be bit-identical — equal to each other and (for
// the lossless family) to the original, arbitrary NaN payloads
// included.
func TestStageBackendEquivalence(t *testing.T) {
	smooth := conformanceBatch()

	// A hostile bit-pattern tensor for the lossless family: quiet and
	// signaling NaN payloads, ±Inf, ±0, denormals, and trained-weight-
	// like values.
	hostile := tensor.New(2, 3, 16, 16)
	hd := hostile.Data()
	patterns := []uint32{
		0x7FC00001, 0xFFC0BEEF, 0x7F800001, 0x7F800000, 0xFF800000,
		0x80000000, 0x00000000, 0x00000001, 0x807FFFFF, 0x3F800000,
	}
	for i := range hd {
		if i%3 == 0 {
			hd[i] = math.Float32frombits(patterns[i%len(patterns)] ^ uint32(i)<<13)
		} else {
			hd[i] = float32(math.Sin(float64(i)/17)) * 1e-3
		}
	}

	cases := []struct {
		base string
		x    *tensor.Tensor
		// exact: decoded bits must equal the input bits (lossless family).
		exact bool
	}{
		{"dctc:cf=4", smooth, false},
		{"zfp:rate=8", smooth, false},
		{"sz:eb=1e-3", smooth, false},
		{"jpegq:q=50", smooth, false},
		{"lossless:bg=1", hostile, true},
		{"lossless:bg=2", hostile, true},
		{"lossless:bg=4", hostile, true},
	}
	for _, tc := range cases {
		t.Run(tc.base, func(t *testing.T) {
			decode := func(stage string) *tensor.Tensor {
				c, err := New(tc.base + stage)
				if err != nil {
					t.Fatal(err)
				}
				data, err := c.Compress(tc.x)
				if err != nil {
					t.Fatalf("%s%s compress: %v", tc.base, stage, err)
				}
				back, _, err := DecodeBytes(data)
				if err != nil {
					t.Fatalf("%s%s decode: %v", tc.base, stage, err)
				}
				return back
			}
			viaFSE, viaHUF := decode("+fse"), decode("+huf")
			fb, hb := viaFSE.Data(), viaHUF.Data()
			for i := range fb {
				if math.Float32bits(fb[i]) != math.Float32bits(hb[i]) {
					t.Fatalf("element %d: +fse decodes %08x, +huf decodes %08x", i, math.Float32bits(fb[i]), math.Float32bits(hb[i]))
				}
			}
			if tc.exact {
				xd := tc.x.Data()
				for i := range xd {
					if math.Float32bits(xd[i]) != math.Float32bits(hb[i]) {
						t.Fatalf("element %d: input bits %08x came back %08x", i, math.Float32bits(xd[i]), math.Float32bits(hb[i]))
					}
				}
			}
		})
	}
}

// TestConformanceNonPlaneShapes round-trips shapes that are not n×n
// image batches through the families that support them (jpegq is
// image-only and must say so).
func TestConformanceNonPlaneShapes(t *testing.T) {
	shapes := [][]int{{100}, {7, 13}, {3, 5, 9}}
	// Flat-packed rows break the 2-D correlation DCT+Chop exploits, so
	// its floor is looser than the pointwise-bounded codecs'.
	floors := map[string]float64{"dctc:cf=4": 8, "dctc:cf=4,sg": 8, "zfp:rate=8": 15, "sz:eb=1e-3": 40}
	for _, spec := range []string{"dctc:cf=4", "dctc:cf=4,sg", "zfp:rate=8", "sz:eb=1e-3"} {
		c, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, shape := range shapes {
			x := tensor.New(shape...)
			for i := range x.Data() {
				x.Data()[i] = float32(math.Sin(float64(i) / 9))
			}
			data, err := c.Compress(x)
			if err != nil {
				t.Fatalf("%s %v: %v", spec, shape, err)
			}
			back, _, err := DecodeBytes(data)
			if err != nil {
				t.Fatalf("%s %v: %v", spec, shape, err)
			}
			if !back.SameShape(x) {
				t.Fatalf("%s: shape %v, want %v", spec, back.Shape(), shape)
			}
			if psnr := metrics.PSNR(x, back); psnr < floors[spec] {
				t.Errorf("%s %v: PSNR %.2f dB below floor %.1f", spec, shape, psnr, floors[spec])
			}
		}
	}

	jq, err := New("jpegq:q=50")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jq.Compress(tensor.New(7, 13)); err == nil || !strings.Contains(err.Error(), "[BD,C,n,n]") {
		t.Errorf("jpegq non-image error: %v", err)
	}
}

// TestDecompressFamilyMismatch verifies a codec refuses containers from
// another family but accepts other options of its own family.
func TestDecompressFamilyMismatch(t *testing.T) {
	x := conformanceBatch()
	z, _ := New("zfp:rate=8")
	s, _ := New("sz:eb=1e-2")
	data, err := z.Compress(x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Decompress(data); err == nil || !strings.Contains(err.Error(), `"zfp"`) {
		t.Errorf("family mismatch: %v", err)
	}
	// Same family, different options: header's options win.
	z16, _ := New("zfp:rate=16")
	back, err := z16.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.SameShape(x) {
		t.Fatal("shape lost")
	}
	if psnr := metrics.PSNR(x, back); psnr < 30 {
		t.Errorf("self-describing decode ignored header rate (PSNR %.2f)", psnr)
	}
}

// TestDecodeFile exercises the io.Reader path end to end on disk —
// exactly what acc-compress decompress mode does.
func TestDecodeFile(t *testing.T) {
	x := conformanceBatch()
	c, err := New("dctc:cf=4,s=2,sg")
	if err != nil {
		t.Fatal(err)
	}
	data, err := c.Compress(x)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "batch.accf")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	back, decoded, err := DecodeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Spec() != c.Spec() || !back.SameShape(x) {
		t.Fatalf("spec %q shape %v", decoded.Spec(), back.Shape())
	}
}
