package codec

import (
	"bytes"
	"strings"
	"testing"
)

func TestContainerRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5}
	var buf bytes.Buffer
	if _, err := WriteContainer(&buf, "zfp:rate=8", []int{2, 3, 16, 16}, payload); err != nil {
		t.Fatal(err)
	}
	hdr, got, err := ReadContainer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Spec != "zfp:rate=8" {
		t.Errorf("spec %q", hdr.Spec)
	}
	if len(hdr.Shape) != 4 || hdr.Elems() != 2*3*16*16 {
		t.Errorf("shape %v", hdr.Shape)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload %v", got)
	}
}

func TestContainerRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteContainer(&buf, "sz:eb=0.001", []int{8, 8}, []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), valid...)
	bad[0] ^= 0xFF
	if _, _, err := ReadContainer(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: %v", err)
	}

	// Payload bit flip fails the CRC.
	bad = append([]byte(nil), valid...)
	bad[len(bad)-2] ^= 0x10
	if _, _, err := ReadContainer(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Errorf("payload corruption: %v", err)
	}

	// Truncations at every prefix length fail without panicking.
	for cut := 0; cut < len(valid); cut++ {
		if _, _, err := ReadContainer(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestContainerWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteContainer(&buf, "", []int{4}, nil); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := WriteContainer(&buf, "x", nil, nil); err == nil {
		t.Error("empty shape accepted")
	}
	if _, err := WriteContainer(&buf, "x", []int{0}, nil); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := WriteContainer(&buf, "x", make([]int, 9), nil); err == nil {
		t.Error("rank 9 accepted")
	}
}
