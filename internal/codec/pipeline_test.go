package codec

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/tensor"
)

func TestForEachPlaneRunsAll(t *testing.T) {
	const planes = 137
	var hits [planes]atomic.Int32
	if err := forEachPlane(context.Background(), planes, func(p int) error {
		hits[p].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for p := range hits {
		if got := hits[p].Load(); got != 1 {
			t.Fatalf("plane %d ran %d times", p, got)
		}
	}
}

func TestForEachPlanePropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := forEachPlane(context.Background(), 64, func(p int) error {
		if p == 13 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
}

func TestPlaneFramingRoundTrip(t *testing.T) {
	x := tensor.New(5, 4, 4)
	for i := range x.Data() {
		x.Data()[i] = float32(i)
	}
	payload, err := compressPlanes(context.Background(), x, 4, 4, func(p int, plane *tensor.Tensor) ([]byte, error) {
		// Variable-length per-plane payload: p+1 copies of byte p.
		out := make([]byte, p+1)
		for i := range out {
			out[i] = byte(p)
		}
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := splitPlanePayloads(payload, 5)
	if err != nil {
		t.Fatal(err)
	}
	for p, part := range parts {
		if len(part) != p+1 {
			t.Fatalf("plane %d length %d", p, len(part))
		}
		for _, b := range part {
			if b != byte(p) {
				t.Fatalf("plane %d payload corrupted", p)
			}
		}
	}
}

func TestSplitPlanePayloadsRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":           {},
		"short header":    {1, 0},
		"truncated table": binary.LittleEndian.AppendUint32(nil, 3),
		"overrun length": func() []byte {
			b := binary.LittleEndian.AppendUint32(nil, 1)
			b = binary.LittleEndian.AppendUint32(b, 100)
			return append(b, 1, 2, 3)
		}(),
		"trailing bytes": func() []byte {
			b := binary.LittleEndian.AppendUint32(nil, 1)
			b = binary.LittleEndian.AppendUint32(b, 1)
			return append(b, 1, 2)
		}(),
	}
	for name, payload := range cases {
		if _, err := splitPlanePayloads(payload, wantPlanesFor(name)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Plane-count mismatch against the shape-implied count.
	good := binary.LittleEndian.AppendUint32(nil, 2)
	good = binary.LittleEndian.AppendUint32(good, 0)
	good = binary.LittleEndian.AppendUint32(good, 0)
	if _, err := splitPlanePayloads(good, 3); err == nil {
		t.Error("plane-count mismatch accepted")
	}
}

// wantPlanesFor keeps the malformed-payload cases honest: each claims
// the count its header would imply, so the failure is structural.
func wantPlanesFor(name string) int {
	switch name {
	case "truncated table":
		return 3
	default:
		return 1
	}
}

func TestScratchPoolReuse(t *testing.T) {
	a := getScratch(64)
	for i := range a {
		a[i] = 42
	}
	putScratch(a)
	b := getScratch(32)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("scratch not zeroed at %d: %g", i, v)
		}
	}
	putScratch(b)
}

func BenchmarkPipelineZFPPlanar(b *testing.B) {
	c, err := New("zfp:rate=8")
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.New(16, 3, 64, 64)
	for i := range x.Data() {
		x.Data()[i] = float32(i%97) / 97
	}
	b.SetBytes(int64(x.SizeBytes()))
	for i := 0; i < b.N; i++ {
		if _, _, err := c.RoundTrip(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineDCTCPlanar(b *testing.B) {
	for _, spec := range []string{"dctc:cf=4", "dctc:cf=4,sg"} {
		b.Run(spec, func(b *testing.B) {
			c, err := New(spec)
			if err != nil {
				b.Fatal(err)
			}
			x := tensor.New(16, 3, 64, 64)
			for i := range x.Data() {
				x.Data()[i] = float32(i%89) / 89
			}
			b.SetBytes(int64(x.SizeBytes()))
			for i := 0; i < b.N; i++ {
				data, err := c.Compress(x)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.Decompress(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func ExampleNew() {
	c, _ := New("dctc:cf=4,sg")
	fmt.Println(c.Name(), c.Spec())
	// Output: dctc dctc:cf=4,sg
}

// TestForEachPlaneLowestIndexedError pins the determinism contract:
// when several planes fail concurrently, the pipeline reports the
// lowest-indexed failure no matter which worker finishes first. Plane 3
// is made the slowest failure by spinning until every other plane is
// claimed, so a first-error-wins implementation would report plane 40.
func TestForEachPlaneLowestIndexedError(t *testing.T) {
	defer SetMaxWorkers(SetMaxWorkers(4)) // force the concurrent path
	const planes = 64
	var claimed atomic.Int64
	err3 := errors.New("plane 3 failed")
	err40 := errors.New("plane 40 failed")
	err := forEachPlane(context.Background(), planes, func(p int) error {
		claimed.Add(1)
		switch p {
		case 3:
			for claimed.Load() < planes {
				// Wait until the whole batch is claimed, so plane 40's
				// error lands first in wall-clock order.
				runtime.Gosched()
			}
			return err3
		case 40:
			return err40
		}
		return nil
	})
	if !errors.Is(err, err3) {
		t.Fatalf("got %v, want the lowest-indexed failure (plane 3)", err)
	}
}

// TestCompressPlanesRaggedLength: a tensor that is not a whole number
// of planes must be rejected, not silently truncated.
func TestCompressPlanesRaggedLength(t *testing.T) {
	x := tensor.New(100)
	_, err := compressPlanes(context.Background(), x, 3, 3, func(p int, plane *tensor.Tensor) ([]byte, error) {
		return []byte{0}, nil
	})
	if err == nil {
		t.Fatal("100 values over 3×3 planes compressed without error")
	}
	if want := "1 trailing values"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name the trailing values", err)
	}
}

// TestGetScratchNoZero checks the no-zero variant really skips the
// clear (the zeroing variant is the one with the stronger contract, so
// reuse must surface stale data here, not zeros).
func TestGetScratchNoZero(t *testing.T) {
	a := getScratchNoZero(64)
	for i := range a {
		a[i] = 42
	}
	putScratch(a)
	b := getScratchNoZero(64)
	defer putScratch(b)
	// sync.Pool may or may not hand back the same buffer; only assert
	// when it did.
	if &a[0] == &b[0] {
		if b[0] != 42 {
			t.Fatal("no-zero scratch was cleared")
		}
	}
}
