package codec

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/codec/tensorio"
	"repro/internal/core"
	"repro/internal/tensor"
)

// dctcBackend adapts the paper's DCT+Chop compressor (internal/core) to
// the registry. Spec: "dctc:cf=4,s=2,sg,transform=zfp4,planen=64" (all
// keys optional).
//
// Image batches [BD, C, n, n] whose resolution satisfies the config's
// block/serialization divisibility take the planar path: each plane is
// compressed independently on the shared pipeline and the payload is
// the raw float32 chunk data (size known from the config, so no
// per-plane headers). Every other shape takes the flat path — values
// are packed row-major into planeN×planeN planes with a zero-padded
// tail, exactly the FlatRoundTripper packing — marked by the payload's
// mode byte.
type dctcBackend struct {
	cfg    core.Config
	planeN int // flat-path plane edge (0 = auto)

	mu    sync.Mutex
	comps map[int]*core.Compressor       // compiled per resolution
	frts  map[int]*core.FlatRoundTripper // compiled per flat plane edge
}

const (
	dctcModePlanar = 0
	dctcModeFlat   = 1
)

func init() {
	register("dctc", func(o *Options) (backend, error) {
		cfg := core.Config{
			ChopFactor:    o.Int("cf", 4),
			Serialization: o.Int("s", 1),
		}
		if o.Bool("sg", false) {
			cfg.Mode = core.ModeSG
		}
		switch tr := o.String("transform", "dct8"); tr {
		case "dct8":
		case "zfp4":
			cfg.Transform = core.TransformZFP4
		default:
			return nil, fmt.Errorf("codec: dctc: invalid value %q for key %q (want dct8 or zfp4)", tr, "transform")
		}
		b := &dctcBackend{
			cfg:    cfg,
			planeN: o.Int("planen", 0),
			comps:  map[int]*core.Compressor{},
			frts:   map[int]*core.FlatRoundTripper{},
		}
		// Validate eagerly against the smallest legal resolution so bad
		// options fail at New, not at first Compress.
		bs := cfg.Transform.BlockSizeOf()
		if cfg.Serialization < 1 {
			return nil, fmt.Errorf("codec: dctc: invalid value %d for key %q (want ≥ 1)", cfg.Serialization, "s")
		}
		if err := cfg.Validate(bs * cfg.Serialization); err != nil {
			return nil, fmt.Errorf("codec: dctc: %w", err)
		}
		if b.planeN != 0 {
			if err := cfg.Validate(b.planeN); err != nil {
				return nil, fmt.Errorf("codec: dctc: invalid value %d for key %q: %w", b.planeN, "planen", err)
			}
		}
		return b, nil
	})
}

func (b *dctcBackend) name() string   { return "dctc" }
func (b *dctcBackend) ratio() float64 { return b.cfg.Ratio() }

func (b *dctcBackend) canonical() string {
	s := fmt.Sprintf("cf=%d", b.cfg.ChopFactor)
	if b.cfg.Serialization > 1 {
		s += fmt.Sprintf(",s=%d", b.cfg.Serialization)
	}
	if b.cfg.Mode == core.ModeSG {
		s += ",sg"
	}
	if b.cfg.Transform == core.TransformZFP4 {
		s += ",transform=zfp4"
	}
	if b.planeN != 0 {
		s += fmt.Sprintf(",planen=%d", b.planeN)
	}
	return s
}

// compilerFor returns the cached compiled compressor for resolution n.
func (b *dctcBackend) compilerFor(n int) (*core.Compressor, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if c, ok := b.comps[n]; ok {
		return c, nil
	}
	c, err := core.NewCompressor(b.cfg, n)
	if err != nil {
		return nil, err
	}
	b.comps[n] = c
	return c, nil
}

// planar reports whether shape takes the planar path, returning n.
func (b *dctcBackend) planar(shape []int) (int, bool) {
	if len(shape) != 4 || shape[2] != shape[3] {
		return 0, false
	}
	n := shape[2]
	return n, b.cfg.Validate(n) == nil
}

// flatPlaneN picks the flat-path plane edge for a value count: the
// spec's planen when set, else the smallest legal multiple of
// blocksize·s whose square covers the values, capped at 256.
func (b *dctcBackend) flatPlaneN(values int) int {
	if b.planeN != 0 {
		return b.planeN
	}
	step := b.cfg.Transform.BlockSizeOf() * b.cfg.Serialization
	n := step
	for n*n < values && n+step <= 256 {
		n += step
	}
	return n
}

func (b *dctcBackend) encode(ctx context.Context, x *tensor.Tensor) ([]byte, error) {
	if n, ok := b.planar(x.Shape()); ok {
		comp, err := b.compilerFor(n)
		if err != nil {
			return nil, err
		}
		framed, err := b.encodePlanar(ctx, comp, x, n)
		if err != nil {
			return nil, err
		}
		return append([]byte{dctcModePlanar}, framed...), nil
	}
	if x.Len() == 0 {
		return nil, fmt.Errorf("dctc: empty tensor")
	}
	planeN := b.flatPlaneN(x.Len())
	comp, err := b.compilerFor(planeN)
	if err != nil {
		return nil, err
	}
	plane := planeN * planeN
	nplanes := (x.Len() + plane - 1) / plane
	// The padded tail beyond x.Len() is compressed along with the data,
	// so this scratch must be zeroed.
	scratch := getScratch(nplanes * plane)
	defer putScratch(scratch)
	copy(scratch, x.Data())
	packed := tensor.FromSlice(scratch, nplanes, 1, planeN, planeN)
	framed, err := b.encodePlanar(ctx, comp, packed, planeN)
	if err != nil {
		return nil, err
	}
	// The flat header records the exact element count alongside the
	// plane edge: nplanes alone cannot distinguish claimed lengths
	// within one padded plane, so without it a corrupted (v1,
	// un-CRC'd) dims field could round-trip to a silently wrong
	// tensor.
	head := []byte{dctcModeFlat, 0, 0, 0, 0, 0, 0, 0, 0}
	binary.LittleEndian.PutUint32(head[1:], uint32(planeN))
	binary.LittleEndian.PutUint32(head[5:], uint32(x.Len()))
	return append(head, framed...), nil
}

// encodePlanar fans x's planes across the pipeline; each plane payload
// is the concatenated raw float32 chunk data of its core.Compressed.
// The per-plane payload tensors come from the compressor's pool, so the
// only per-plane allocation is the output byte slice itself.
func (b *dctcBackend) encodePlanar(ctx context.Context, comp *core.Compressor, x *tensor.Tensor, n int) ([]byte, error) {
	return compressPlanes(ctx, x, n, n, func(p int, plane *tensor.Tensor) ([]byte, error) {
		y := comp.AcquireCompressed()
		defer comp.ReleaseCompressed(y)
		if err := comp.CompressInto(y, plane.Reshape(1, 1, n, n)); err != nil {
			return nil, err
		}
		out := make([]byte, 0, y.CompressedBytes())
		for _, chunk := range y.Chunks {
			out = tensorio.Float32sToBytes(out, chunk.Data())
		}
		return out, nil
	})
}

func (b *dctcBackend) decode(ctx context.Context, payload []byte, shape []int) (*tensor.Tensor, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("dctc: empty payload")
	}
	mode, payload := payload[0], payload[1:]
	elems := 1
	for _, d := range shape {
		elems *= d
	}
	switch mode {
	case dctcModePlanar:
		n, ok := b.planar(shape)
		if !ok {
			return nil, fmt.Errorf("dctc: planar payload but shape %v is not a compatible [BD,C,n,n] batch", shape)
		}
		comp, err := b.compilerFor(n)
		if err != nil {
			return nil, err
		}
		// Split and length-check every plane before allocating the
		// output, so a tiny corrupted payload claiming a huge shape
		// fails without the large allocation.
		parts, err := splitPlanePayloads(payload, elems/(n*n))
		if err != nil {
			return nil, err
		}
		wantBytes, dec := b.planeDec(comp, n)
		for p, part := range parts {
			if len(part) != wantBytes {
				return nil, fmt.Errorf("dctc: plane %d payload %d bytes, want %d", p, len(part), wantBytes)
			}
		}
		out := tensor.New(shape...)
		if err := decompressPlanes(ctx, out, n, n, parts, dec); err != nil {
			return nil, err
		}
		return out, nil
	case dctcModeFlat:
		if len(payload) < 8 {
			return nil, fmt.Errorf("dctc: flat payload truncated")
		}
		planeN := int(binary.LittleEndian.Uint32(payload))
		encElems := binary.LittleEndian.Uint32(payload[4:])
		payload = payload[8:]
		if planeN < 1 || planeN > 1<<12 {
			return nil, fmt.Errorf("dctc: implausible flat plane edge %d", planeN)
		}
		if encElems != uint32(elems) {
			return nil, fmt.Errorf("dctc: flat payload holds %d values, shape %v implies %d", encElems, shape, elems)
		}
		comp, err := b.compilerFor(planeN)
		if err != nil {
			return nil, err
		}
		plane := planeN * planeN
		nplanes := (elems + plane - 1) / plane
		parts, err := splitPlanePayloads(payload, nplanes)
		if err != nil {
			return nil, err
		}
		wantBytes, dec := b.planeDec(comp, planeN)
		for p, part := range parts {
			if len(part) != wantBytes {
				return nil, fmt.Errorf("dctc: plane %d payload %d bytes, want %d", p, len(part), wantBytes)
			}
		}
		out := tensor.New(shape...)
		// Every plane, padded tail included, is decoded into the
		// scratch before the copy-out, so no zeroing is needed.
		scratch := getScratchNoZero(nplanes * plane)
		defer putScratch(scratch)
		packed := tensor.FromSlice(scratch, nplanes, 1, planeN, planeN)
		if err := decompressPlanes(ctx, packed, planeN, planeN, parts, dec); err != nil {
			return nil, err
		}
		copy(out.Data(), scratch[:out.Len()])
		return out, nil
	default:
		return nil, fmt.Errorf("dctc: unknown payload mode %d", mode)
	}
}

// planeDec returns the fixed per-plane payload size for resolution n
// and the decode closure that rebuilds a plane's core.Compressed from
// its raw chunk floats and decompresses it in place — shared by the
// buffered and streaming decode paths.
func (b *dctcBackend) planeDec(comp *core.Compressor, n int) (int, func(p int, data []byte, plane *tensor.Tensor) error) {
	s := b.cfg.Serialization
	chunkVals := comp.ChunkValues()
	wantBytes := 4 * s * s * chunkVals
	chunkShape := append([]int{1, 1}, comp.CompressedPlaneShape()...)
	dec := func(p int, data []byte, plane *tensor.Tensor) error {
		if len(data) != wantBytes {
			return fmt.Errorf("dctc: plane payload %d bytes, want %d", len(data), wantBytes)
		}
		// The whole buffer is overwritten by DecodeFloat32s — no-zero
		// scratch variant.
		vals := getScratchNoZero(s * s * chunkVals)
		defer putScratch(vals)
		tensorio.DecodeFloat32s(vals, data)
		y := &core.Compressed{Config: b.cfg, BatchSize: 1, Channels: 1, N: n}
		for ci := 0; ci < s*s; ci++ {
			y.Chunks = append(y.Chunks, tensor.FromSlice(vals[ci*chunkVals:(ci+1)*chunkVals], chunkShape...))
		}
		// Decompress straight into the output plane view — the fast
		// kernel writes the reconstruction in place, no staging copy.
		return comp.DecompressInto(plane.Reshape(1, 1, n, n), y)
	}
	return wantBytes, dec
}

// decodeStream decodes a planar dctc record incrementally: the exact
// payload size is checked against the shape before the output tensor is
// allocated, then planes stream through one plane-group at a time. The
// flat mode packs into small (≤256×256) scratch planes, so it simply
// buffers the record payload and reuses the in-memory path.
func (b *dctcBackend) decodeStream(ctx context.Context, r *payloadReader, shape []int) (*tensor.Tensor, error) {
	mode, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("dctc: reading payload mode: %w", err)
	}
	if mode != dctcModePlanar {
		buf := make([]byte, 1+r.len())
		buf[0] = mode
		if err := r.readFull(buf[1:]); err != nil {
			return nil, fmt.Errorf("dctc: buffering non-planar payload: %w", err)
		}
		return b.decode(ctx, buf, shape)
	}
	n, ok := b.planar(shape)
	if !ok {
		return nil, fmt.Errorf("dctc: planar payload but shape %v is not a compatible [BD,C,n,n] batch", shape)
	}
	comp, err := b.compilerFor(n)
	if err != nil {
		return nil, err
	}
	elems := 1
	for _, d := range shape {
		elems *= d
	}
	planes := elems / (n * n)
	wantBytes, dec := b.planeDec(comp, n)
	if want := 4 + planes*(4+wantBytes); want != r.len() {
		return nil, fmt.Errorf("dctc: planar payload %d bytes, want %d for %d planes", r.len(), want, planes)
	}
	out := tensor.New(shape...)
	err = decodePlaneStream(ctx, r, out, n, n, func(p, ln int) error {
		if ln != wantBytes {
			return fmt.Errorf("dctc: plane %d payload %d bytes, want %d", p, ln, wantBytes)
		}
		return nil
	}, dec)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Compiler exposes the compiled core.Compressor behind a dctc codec at
// resolution n — the device-simulation path in cmd/acc-compress needs
// the raw compress graph to hand to an accelerator backend. It errors
// for codecs of any other family.
func Compiler(c Codec, n int) (*core.Compressor, error) {
	impl, ok := c.(*codecImpl)
	if !ok {
		return nil, fmt.Errorf("codec: %T is not a registry codec", c)
	}
	b, ok := impl.b.(*dctcBackend)
	if !ok {
		return nil, fmt.Errorf("codec: device simulation requires a dctc codec, got %q", c.Name())
	}
	return b.compilerFor(n)
}

// fastRoundTrip keeps the training experiments on the paper's batched
// two-matmul path: no payload serialization, the whole batch in one
// batched multiply.
func (b *dctcBackend) fastRoundTrip(x *tensor.Tensor) (*tensor.Tensor, int, error) {
	if n, ok := b.planar(x.Shape()); ok {
		comp, err := b.compilerFor(n)
		if err != nil {
			return nil, 0, err
		}
		y, err := comp.Compress(x)
		if err != nil {
			return nil, 0, err
		}
		back, err := comp.Decompress(y)
		if err != nil {
			return nil, 0, err
		}
		return back, y.CompressedBytes(), nil
	}
	planeN := b.flatPlaneN(x.Len())
	b.mu.Lock()
	frt, ok := b.frts[planeN]
	if !ok {
		var err error
		frt, err = core.NewFlatRoundTripper(b.cfg, planeN)
		if err != nil {
			b.mu.Unlock()
			return nil, 0, err
		}
		b.frts[planeN] = frt
	}
	b.mu.Unlock()
	return frt.RoundTripTensor(x)
}
