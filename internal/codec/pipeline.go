package codec

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
)

// This file is the shared batch pipeline: every adapter whose codec is
// plane-independent (all four families — DCT+Chop, ZFP, SZ and JPEG all
// process trailing 2-D planes independently) fans a tensor's planes
// across a GOMAXPROCS-bounded worker pool, with sync.Pool-reused
// float32 scratch buffers for the packing/staging copies.
//
// Plane-framed payload layout (little-endian):
//
//	u32 plane count
//	u32 × count  per-plane payload lengths
//	concatenated per-plane payloads

// maxWorkers bounds pipeline concurrency. It tracks the scheduler's
// actual parallelism budget — runtime.GOMAXPROCS(0), not NumCPU — so a
// process confined to fewer Ps than cores does not oversubscribe.
var maxWorkers = runtime.GOMAXPROCS(0)

// SetMaxWorkers overrides the pipeline worker cap and returns the
// previous value. n < 1 resets to runtime.GOMAXPROCS(0). Tests pin the
// cap to 1 to make plane execution order deterministic; restore the
// returned value when done. Not safe to call concurrently with
// in-flight compressions.
func SetMaxWorkers(n int) int {
	prev := maxWorkers
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers = n
	return prev
}

// forEachPlane runs fn(p) for p in [0, planes) on a bounded worker
// pool, returning the first error (remaining planes may still run).
func forEachPlane(planes int, fn func(p int) error) error {
	if planes <= 0 {
		return nil
	}
	workers := maxWorkers
	if workers > planes {
		workers = planes
	}
	if workers <= 1 {
		for p := 0; p < planes; p++ {
			if err := fn(p); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		firstErr atomic.Value
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				p := int(next.Add(1)) - 1
				if p >= planes || firstErr.Load() != nil {
					return
				}
				if err := fn(p); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		return err.(error)
	}
	return nil
}

// scratchPool recycles float32 staging buffers across planes and calls.
var scratchPool = sync.Pool{New: func() any { return new([]float32) }}

// getScratch returns a zeroed scratch buffer of length n.
func getScratch(n int) []float32 {
	bp := scratchPool.Get().(*[]float32)
	if cap(*bp) < n {
		*bp = make([]float32, n)
	}
	buf := (*bp)[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// putScratch returns a buffer to the pool.
func putScratch(buf []float32) {
	scratchPool.Put(&buf)
}

// compressPlanes encodes every h×w plane of x concurrently with enc and
// assembles the plane-framed payload. Plane p is the zero-copy view of
// x.Data()[p·h·w : (p+1)·h·w] shaped [h, w].
func compressPlanes(x *tensor.Tensor, h, w int, enc func(p int, plane *tensor.Tensor) ([]byte, error)) ([]byte, error) {
	planes := x.Len() / (h * w)
	parts := make([][]byte, planes)
	err := forEachPlane(planes, func(p int) error {
		plane := tensor.FromSlice(x.Data()[p*h*w:(p+1)*h*w], h, w)
		out, err := enc(p, plane)
		if err != nil {
			return fmt.Errorf("codec: plane %d: %w", p, err)
		}
		parts[p] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 4 + 4*planes
	for _, part := range parts {
		total += len(part)
	}
	payload := make([]byte, 0, total)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(planes))
	for _, part := range parts {
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(part)))
	}
	for _, part := range parts {
		payload = append(payload, part...)
	}
	return payload, nil
}

// splitPlanePayloads validates a plane-framed payload against the
// expected plane count and returns the per-plane slices (views into
// payload). Called before any output allocation, so implausible frames
// fail cheaply.
func splitPlanePayloads(payload []byte, wantPlanes int) ([][]byte, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("codec: plane-framed payload truncated (%d bytes)", len(payload))
	}
	planes := int(binary.LittleEndian.Uint32(payload))
	if planes != wantPlanes {
		return nil, fmt.Errorf("codec: payload holds %d planes, shape implies %d", planes, wantPlanes)
	}
	if len(payload) < 4+4*planes {
		return nil, fmt.Errorf("codec: plane length table truncated")
	}
	parts := make([][]byte, planes)
	off := 4 + 4*planes
	for p := 0; p < planes; p++ {
		plen := int(binary.LittleEndian.Uint32(payload[4+4*p:]))
		if plen < 0 || off+plen > len(payload) {
			return nil, fmt.Errorf("codec: plane %d payload (%d bytes at offset %d) overruns frame", p, plen, off)
		}
		parts[p] = payload[off : off+plen]
		off += plen
	}
	if off != len(payload) {
		return nil, fmt.Errorf("codec: %d trailing bytes after plane payloads", len(payload)-off)
	}
	return parts, nil
}

// decompressPlanes decodes pre-split plane payloads concurrently into
// out's h×w planes. dec receives a zero-copy view of plane p; planes
// are disjoint, so concurrent writes are race-free.
func decompressPlanes(out *tensor.Tensor, h, w int, parts [][]byte, dec func(p int, data []byte, plane *tensor.Tensor) error) error {
	if want := out.Len() / (h * w); want != len(parts) {
		return fmt.Errorf("codec: %d plane payloads for %d planes", len(parts), want)
	}
	return forEachPlane(len(parts), func(p int) error {
		plane := tensor.FromSlice(out.Data()[p*h*w:(p+1)*h*w], h, w)
		if err := dec(p, parts[p], plane); err != nil {
			return fmt.Errorf("codec: plane %d: %w", p, err)
		}
		return nil
	})
}
