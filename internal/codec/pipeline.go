package codec

import (
	"context"
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
)

// This file is the shared batch pipeline: every adapter whose codec is
// plane-independent (all four families — DCT+Chop, ZFP, SZ and JPEG all
// process trailing 2-D planes independently) fans a tensor's planes
// across a GOMAXPROCS-bounded worker pool, with sync.Pool-reused
// float32 scratch buffers for the packing/staging copies.
//
// Plane-framed payload layout (little-endian):
//
//	u32 plane count
//	u32 × count  per-plane payload lengths
//	concatenated per-plane payloads

// maxWorkers bounds pipeline concurrency. It tracks the scheduler's
// actual parallelism budget — runtime.GOMAXPROCS(0), not NumCPU — so a
// process confined to fewer Ps than cores does not oversubscribe.
var maxWorkers = runtime.GOMAXPROCS(0)

// SetMaxWorkers overrides the pipeline worker cap and returns the
// previous value. n < 1 resets to runtime.GOMAXPROCS(0). Tests pin the
// cap to 1 to make plane execution order deterministic; restore the
// returned value when done. Not safe to call concurrently with
// in-flight compressions.
func SetMaxWorkers(n int) int {
	prev := maxWorkers
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers = n
	return prev
}

// forEachPlane runs fn(p) for p in [0, planes) on a bounded worker
// pool. Every claimed plane runs to completion and errors are collected
// per plane, so the same bad input always reports the lowest-indexed
// failing plane regardless of worker scheduling. Cancelling ctx is the
// one early exit: workers stop claiming planes and the context error is
// returned (wrapped, satisfying errors.Is) unless a plane that already
// ran failed first.
func forEachPlane(ctx context.Context, planes int, fn func(p int) error) error {
	if planes <= 0 {
		return nil
	}
	// context.Background and friends have a nil Done channel; skip the
	// per-plane cancellation checks entirely for them.
	cancellable := ctx.Done() != nil
	if cancellable && ctx.Err() != nil {
		return markErr(ErrCanceled, fmt.Errorf("codec: plane pipeline: %w", ctx.Err()))
	}
	workers := maxWorkers
	if workers > planes {
		workers = planes
	}
	if workers <= 1 {
		for p := 0; p < planes; p++ {
			if cancellable && ctx.Err() != nil {
				return markErr(ErrCanceled, fmt.Errorf("codec: plane pipeline cancelled before plane %d: %w", p, ctx.Err()))
			}
			if err := fn(p); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	// Each worker writes only the slots it claimed; wg.Wait orders every
	// write before the scan below, so the slice needs no further locking.
	errs := make([]error, planes)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if cancellable && ctx.Err() != nil {
					return
				}
				p := int(next.Add(1)) - 1
				if p >= planes {
					return
				}
				errs[p] = fn(p)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if cancellable {
		if err := ctx.Err(); err != nil {
			claimed := int(next.Load())
			if claimed > planes {
				claimed = planes
			}
			return markErr(ErrCanceled, fmt.Errorf("codec: plane pipeline cancelled after claiming %d of %d planes: %w", claimed, planes, err))
		}
	}
	return nil
}

// scratchPool recycles float32 staging buffers across planes and calls.
var scratchPool = sync.Pool{New: func() any { return new([]float32) }}

// getScratchNoZero returns a scratch buffer of length n with arbitrary
// contents — for callers that overwrite every element before reading
// any (the flat decode paths decode into every plane, padded tail
// included, before copying out).
func getScratchNoZero(n int) []float32 {
	bp := scratchPool.Get().(*[]float32)
	if cap(*bp) < n {
		*bp = make([]float32, n)
	}
	return (*bp)[:n]
}

// getScratch returns a zeroed scratch buffer of length n — for callers
// that read elements they never wrote, like the flat encode paths whose
// zero-padded tail is compressed along with the data.
func getScratch(n int) []float32 {
	buf := getScratchNoZero(n)
	clear(buf)
	return buf
}

// putScratch returns a buffer to the pool.
func putScratch(buf []float32) {
	scratchPool.Put(&buf)
}

// byteScratchPool recycles byte staging buffers (plane-group reads,
// length tables) across streaming decodes.
var byteScratchPool = sync.Pool{New: func() any { return new([]byte) }}

// getByteScratch returns a byte buffer of length n with arbitrary
// contents.
func getByteScratch(n int) []byte {
	bp := byteScratchPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	return (*bp)[:n]
}

// putByteScratch returns a buffer to the pool.
func putByteScratch(buf []byte) {
	byteScratchPool.Put(&buf)
}

// compressPlanes encodes every h×w plane of x concurrently with enc and
// assembles the plane-framed payload. Plane p is the zero-copy view of
// x.Data()[p·h·w : (p+1)·h·w] shaped [h, w]. A tensor whose length is
// not a whole number of planes is an error — silently truncating the
// tail would decode to a different tensor.
func compressPlanes(ctx context.Context, x *tensor.Tensor, h, w int, enc func(p int, plane *tensor.Tensor) ([]byte, error)) ([]byte, error) {
	if h < 1 || w < 1 {
		return nil, fmt.Errorf("codec: invalid plane size %d×%d", h, w)
	}
	if x.Len()%(h*w) != 0 {
		return nil, fmt.Errorf("codec: tensor length %d is not a whole number of %d×%d planes (%d trailing values)", x.Len(), h, w, x.Len()%(h*w))
	}
	planes := x.Len() / (h * w)
	parts := make([][]byte, planes)
	err := forEachPlane(ctx, planes, func(p int) error {
		plane := tensor.FromSlice(x.Data()[p*h*w:(p+1)*h*w], h, w)
		out, err := enc(p, plane)
		if err != nil {
			return fmt.Errorf("codec: plane %d: %w", p, err)
		}
		parts[p] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 4 + 4*planes
	for _, part := range parts {
		total += len(part)
	}
	payload := make([]byte, 0, total)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(planes))
	for _, part := range parts {
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(part)))
	}
	for _, part := range parts {
		payload = append(payload, part...)
	}
	return payload, nil
}

// splitPlanePayloads validates a plane-framed payload against the
// expected plane count and returns the per-plane slices (views into
// payload). Called before any output allocation, so implausible frames
// fail cheaply. Lengths are validated as uint32 before conversion — on
// 32-bit platforms a length ≥ 2³¹ must not wrap negative.
func splitPlanePayloads(payload []byte, wantPlanes int) ([][]byte, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("codec: plane-framed payload truncated (%d bytes)", len(payload))
	}
	planeCount := binary.LittleEndian.Uint32(payload)
	if wantPlanes < 0 || planeCount != uint32(wantPlanes) {
		return nil, fmt.Errorf("codec: payload holds %d planes, shape implies %d", planeCount, wantPlanes)
	}
	planes := wantPlanes
	if len(payload) < 4+4*planes {
		return nil, fmt.Errorf("codec: plane length table truncated")
	}
	parts := make([][]byte, planes)
	off := 4 + 4*planes
	for p := 0; p < planes; p++ {
		plen32 := binary.LittleEndian.Uint32(payload[4+4*p:])
		if uint64(plen32) > uint64(len(payload)-off) {
			return nil, fmt.Errorf("codec: plane %d payload (%d bytes at offset %d) overruns frame", p, plen32, off)
		}
		plen := int(plen32)
		parts[p] = payload[off : off+plen]
		off += plen
	}
	if off != len(payload) {
		return nil, fmt.Errorf("codec: %d trailing bytes after plane payloads", len(payload)-off)
	}
	return parts, nil
}

// decompressPlanes decodes pre-split plane payloads concurrently into
// out's h×w planes. dec receives a zero-copy view of plane p; planes
// are disjoint, so concurrent writes are race-free.
func decompressPlanes(ctx context.Context, out *tensor.Tensor, h, w int, parts [][]byte, dec func(p int, data []byte, plane *tensor.Tensor) error) error {
	if want := out.Len() / (h * w); want != len(parts) {
		return fmt.Errorf("codec: %d plane payloads for %d planes", len(parts), want)
	}
	return decompressPlaneRange(ctx, out, h, w, 0, parts, dec)
}

// decompressPlaneRange decodes parts into out's planes
// [first, first+len(parts)) — the streaming decoder hands groups of
// planes through here as their bytes arrive, so out fills incrementally
// without the whole payload ever being resident.
func decompressPlaneRange(ctx context.Context, out *tensor.Tensor, h, w, first int, parts [][]byte, dec func(p int, data []byte, plane *tensor.Tensor) error) error {
	if last := first + len(parts); first < 0 || last > out.Len()/(h*w) {
		return fmt.Errorf("codec: plane range [%d,%d) outside tensor's %d planes", first, last, out.Len()/(h*w))
	}
	return forEachPlane(ctx, len(parts), func(i int) error {
		p := first + i
		plane := tensor.FromSlice(out.Data()[p*h*w:(p+1)*h*w], h, w)
		if err := dec(p, parts[i], plane); err != nil {
			return fmt.Errorf("codec: plane %d: %w", p, err)
		}
		return nil
	})
}
