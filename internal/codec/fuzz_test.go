package codec

import (
	"testing"

	"repro/internal/tensor"
)

// FuzzContainerDecode hardens the self-describing decode path — header
// parsing, spec resolution, plane framing, and every family's payload
// decoder — against arbitrary byte streams: error or success, never a
// panic, runaway allocation, or a tensor inconsistent with its header.
func FuzzContainerDecode(f *testing.F) {
	// Seed with genuine containers from every family plus mutations.
	x := tensor.New(1, 1, 16, 16)
	for i := range x.Data() {
		x.Data()[i] = float32(i%31) / 31
	}
	small := tensor.New(5)
	copy(small.Data(), []float32{1, 2, 3, 4, 5})
	for _, spec := range []string{"dctc:cf=4", "dctc:cf=2,sg", "zfp:rate=8", "sz:eb=1e-2", "jpegq:q=50"} {
		c, err := New(spec)
		if err != nil {
			f.Fatal(err)
		}
		data, err := c.Compress(x)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2])
		flip := append([]byte(nil), data...)
		flip[len(flip)/3] ^= 0x20
		f.Add(flip)
		if spec != "jpegq:q=50" {
			flat, err := c.Compress(small)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(flat)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("ACCF"))
	f.Add([]byte{0x41, 0x43, 0x43, 0x46, 1, 0, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		out, c, err := DecodeBytes(data)
		if err != nil {
			return
		}
		if out == nil || c == nil {
			t.Fatal("nil result without error")
		}
		if out.Len() > maxElems {
			t.Fatalf("implausible tensor size %d accepted", out.Len())
		}
		if out.Dims() == 0 || out.Dims() > maxRank {
			t.Fatalf("implausible rank %d accepted", out.Dims())
		}
	})
}
